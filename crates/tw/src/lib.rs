//! # hp-tw
//!
//! The graph-combinatorics substrate of Atserias–Dawar–Kolaitis (PODS 2004):
//! tree decompositions and treewidth (§2.1), graph minors (§2.1), the
//! Erdős–Rado Sunflower Lemma (Theorem 4.1), and the paper's central
//! **scattered-set extraction algorithms**:
//!
//! - Lemma 3.4 — in a graph of degree ≤ k, any `m·k^d + 1` vertices contain a
//!   d-scattered set of size m ([`scattered::bounded_degree`]);
//! - Lemma 4.2 — in a graph of treewidth < k, a deletion set `B` of ≤ k
//!   vertices makes room for a d-scattered set
//!   ([`scattered::bounded_treewidth`]);
//! - Lemma 5.2 — the bipartite step for `K_k`-minor-free graphs
//!   ([`scattered::bipartite_step`]);
//! - Theorem 5.3 — the iterated construction for `K_k`-minor-free graphs
//!   ([`scattered::excluded_minor`]).
//!
//! Each extraction either returns the promised sets or an **explicit minor
//! witness** ([`minor::MinorWitness`]) refuting the caller's claim that the
//! input excluded the minor — mirroring the proofs, which derive a `K_k`
//! minor whenever the construction stalls.
//!
//! The paper's worst-case size thresholds (`N = k(m−1)^M`, Ramsey towers,
//! …) are computed by [`bounds`] in saturating arithmetic: they overflow
//! fast — that is part of the story the experiments tell (measured
//! thresholds are astronomically smaller).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod decomposition;
pub mod elimination;
pub mod minor;
pub mod planarity;
pub mod scattered;
pub mod sunflower;

pub use decomposition::TreeDecomposition;
pub use minor::MinorWitness;
pub use scattered::ScatteredError;
