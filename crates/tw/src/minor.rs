//! Clique minors: witnesses, verification, and exact search (§2.1, §5).

use hp_structures::{BitSet, Graph};

/// An explicit witness that `K_h` is a minor of a graph: `h` *connected
/// patches* (disjoint connected vertex sets, §2.1) that are pairwise joined
/// by an edge.
#[derive(Clone, Debug)]
pub struct MinorWitness {
    /// The branch sets, one per clique vertex.
    pub patches: Vec<Vec<u32>>,
}

impl MinorWitness {
    /// Number of clique vertices witnessed.
    pub fn order(&self) -> usize {
        self.patches.len()
    }

    /// Check the witness against `g`: patches non-empty, disjoint,
    /// connected, and pairwise adjacent.
    pub fn verify(&self, g: &Graph) -> Result<(), String> {
        let n = g.vertex_count();
        let mut owner = vec![usize::MAX; n];
        for (i, p) in self.patches.iter().enumerate() {
            if p.is_empty() {
                return Err(format!("patch {i} is empty"));
            }
            for &v in p {
                if v as usize >= n {
                    return Err(format!("patch {i} mentions vertex {v} outside the graph"));
                }
                if owner[v as usize] != usize::MAX {
                    return Err(format!("vertex {v} appears in two patches"));
                }
                owner[v as usize] = i;
            }
        }
        // Connectivity of each patch.
        for (i, p) in self.patches.iter().enumerate() {
            let inset: BitSet = p.iter().map(|&v| v as usize).collect::<BitSet>();
            let mut seen = BitSet::new(n);
            let mut stack = vec![p[0]];
            seen.insert(p[0] as usize);
            let mut cnt = 0;
            while let Some(u) = stack.pop() {
                cnt += 1;
                for &w in g.neighbors(u) {
                    if (w as usize) < inset.capacity()
                        && inset.contains(w as usize)
                        && seen.insert(w as usize)
                    {
                        stack.push(w);
                    }
                }
            }
            if cnt != p.len() {
                return Err(format!("patch {i} is not connected"));
            }
        }
        // Pairwise adjacency.
        for i in 0..self.patches.len() {
            for j in (i + 1)..self.patches.len() {
                let adj = self.patches[i]
                    .iter()
                    .any(|&u| g.neighbors(u).iter().any(|&w| owner[w as usize] == j));
                if !adj {
                    return Err(format!("patches {i} and {j} are not adjacent"));
                }
            }
        }
        Ok(())
    }
}

/// Result of a bounded exact minor search.
#[derive(Clone, Debug)]
pub enum MinorSearch {
    /// A verified witness was found.
    Found(MinorWitness),
    /// Exhaustive search proved there is no `K_h` minor.
    Absent,
    /// The node budget ran out before the search concluded.
    Unknown,
}

impl MinorSearch {
    /// True when a witness was found.
    pub fn is_found(&self) -> bool {
        matches!(self, MinorSearch::Found(_))
    }

    /// True when absence was proved.
    pub fn is_absent(&self) -> bool {
        matches!(self, MinorSearch::Absent)
    }
}

/// Exact search for a `K_h` minor, with a branching-node budget.
///
/// The search enumerates seed sets `s₁ < ⋯ < s_h` (each seed the minimum
/// vertex of its branch set, a symmetry reduction), then grows patches
/// toward the first non-adjacent pair, pruning with a reachability check.
/// Exponential in the worst case — use for small graphs and gadget
/// cross-validation; the scattered-set constructions of §5 never *search*
/// for minors, they only emit witnesses.
pub fn find_clique_minor(g: &Graph, h: usize, budget: usize) -> MinorSearch {
    if h == 0 {
        return MinorSearch::Found(MinorWitness { patches: vec![] });
    }
    let n = g.vertex_count();
    if h == 1 {
        return if n > 0 {
            MinorSearch::Found(MinorWitness {
                patches: vec![vec![0]],
            })
        } else {
            MinorSearch::Absent
        };
    }
    if n < h {
        return MinorSearch::Absent;
    }
    // Quick win: enough edges for K_h as a subgraph of small graphs is not
    // required; just run the search.
    let mut budget = budget;
    let mut owner: Vec<usize> = vec![usize::MAX; n];
    let mut patches: Vec<Vec<u32>> = Vec::new();
    match grow(g, h, &mut patches, &mut owner, 0, &mut budget) {
        Some(true) => {
            let w = MinorWitness { patches };
            debug_assert!(w.verify(g).is_ok());
            MinorSearch::Found(w)
        }
        Some(false) => MinorSearch::Absent,
        None => MinorSearch::Unknown,
    }
}

/// Returns Some(true) on success, Some(false) on exhaustive failure, None on
/// budget exhaustion.
fn grow(
    g: &Graph,
    h: usize,
    patches: &mut Vec<Vec<u32>>,
    owner: &mut Vec<usize>,
    min_seed: u32,
    budget: &mut usize,
) -> Option<bool> {
    if *budget == 0 {
        return None;
    }
    *budget -= 1;
    // Seed remaining patches lazily: all seeds first (increasing), then fix
    // adjacency.
    if patches.len() < h {
        let mut exhausted = true;
        for v in min_seed..g.vertex_count() as u32 {
            if owner[v as usize] != usize::MAX {
                continue;
            }
            patches.push(vec![v]);
            owner[v as usize] = patches.len() - 1;
            match grow(g, h, patches, owner, v + 1, budget) {
                Some(true) => return Some(true),
                Some(false) => {}
                None => {
                    exhausted = false;
                }
            }
            owner[v as usize] = usize::MAX;
            patches.pop();
        }
        return if exhausted { Some(false) } else { None };
    }
    // All patches seeded: find the first non-adjacent pair.
    let pair = first_nonadjacent_pair(g, patches, owner);
    let Some((i, j)) = pair else {
        return Some(true);
    };
    // Prune: i and j must be connectable through unassigned vertices.
    if !connectable(g, patches, owner, i, j) {
        return Some(false);
    }
    // Branch: grow patch i or patch j by one adjacent unassigned vertex.
    let mut exhausted = true;
    for &(p, q) in &[(i, j), (j, i)] {
        let frontier: Vec<u32> = patches[p]
            .iter()
            .flat_map(|&u| g.neighbors(u).iter().copied())
            .filter(|&w| owner[w as usize] == usize::MAX)
            .collect();
        let mut tried = BitSet::new(g.vertex_count());
        for w in frontier {
            if !tried.insert(w as usize) {
                continue;
            }
            patches[p].push(w);
            owner[w as usize] = p;
            match grow(g, h, patches, owner, u32::MAX, budget) {
                Some(true) => return Some(true),
                Some(false) => {}
                None => {
                    exhausted = false;
                }
            }
            owner[w as usize] = usize::MAX;
            patches[p].pop();
        }
        let _ = q;
    }
    if exhausted {
        Some(false)
    } else {
        None
    }
}

fn first_nonadjacent_pair(
    g: &Graph,
    patches: &[Vec<u32>],
    owner: &[usize],
) -> Option<(usize, usize)> {
    let h = patches.len();
    let mut adj = vec![vec![false; h]; h];
    for (i, p) in patches.iter().enumerate() {
        for &u in p {
            for &w in g.neighbors(u) {
                let o = owner[w as usize];
                if o != usize::MAX && o != i {
                    adj[i][o] = true;
                    adj[o][i] = true;
                }
            }
        }
    }
    #[allow(clippy::needless_range_loop)] // symmetric pair scan reads best as indices
    for i in 0..h {
        for j in (i + 1)..h {
            if !adj[i][j] {
                return Some((i, j));
            }
        }
    }
    None
}

/// Can patches `i` and `j` be joined via unassigned vertices (BFS from patch
/// i through unassigned territory to a neighbor of patch j)?
fn connectable(g: &Graph, patches: &[Vec<u32>], owner: &[usize], i: usize, j: usize) -> bool {
    let n = g.vertex_count();
    let mut seen = BitSet::new(n);
    let mut stack: Vec<u32> = patches[i].clone();
    for &v in &stack {
        seen.insert(v as usize);
    }
    while let Some(u) = stack.pop() {
        for &w in g.neighbors(u) {
            let o = owner[w as usize];
            if o == j {
                return true;
            }
            if o == usize::MAX && seen.insert(w as usize) {
                stack.push(w);
            }
        }
    }
    false
}

/// Convenience: does `g` contain a `K_h` minor? Panics on budget exhaustion
/// — use [`find_clique_minor`] directly to handle `Unknown`.
pub fn has_clique_minor(g: &Graph, h: usize) -> bool {
    match find_clique_minor(g, h, 2_000_000) {
        MinorSearch::Found(_) => true,
        MinorSearch::Absent => false,
        MinorSearch::Unknown => panic!("minor search budget exhausted; call find_clique_minor"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hp_structures::generators::{
        clique, complete_bipartite, cycle, expanded_clique_degree3, grid, ktree, path, star, wheel,
    };

    #[test]
    fn clique_contains_itself() {
        for h in 1..=5 {
            assert!(has_clique_minor(&clique(5), h), "K_5 ⊇ K_{h} minor");
        }
        assert!(!has_clique_minor(&clique(5), 6));
    }

    #[test]
    fn paths_and_trees_only_k2() {
        assert!(has_clique_minor(&path(5), 2));
        assert!(!has_clique_minor(&path(5), 3));
        assert!(!has_clique_minor(&star(6), 3));
    }

    #[test]
    fn cycles_have_k3_not_k4() {
        assert!(has_clique_minor(&cycle(7), 3));
        assert!(!has_clique_minor(&cycle(7), 4));
    }

    #[test]
    fn paper_fact_kk_minor_of_complete_bipartite() {
        // §2.1: K_k is a minor of K_{k-1,k-1}.
        for k in 3..=5 {
            assert!(
                has_clique_minor(&complete_bipartite(k - 1, k - 1), k),
                "K_{k} should be a minor of K_{{{},{}}}",
                k - 1,
                k - 1
            );
        }
        // And K_{k+1} is not (treewidth of K_{a,a} is a).
        assert!(!has_clique_minor(&complete_bipartite(3, 3), 5));
    }

    #[test]
    fn grids_are_planar_no_k5() {
        // Planar graphs exclude K_5; grids contain K_4 minors once big
        // enough (2x2 block with a detour)? A 3x3 grid: K_4 minor exists?
        // Planar 3-connected... 3x3 grid has a K_4 minor (contract a corner
        // path). Check absence of K_5 on small grids exactly.
        assert!(!has_clique_minor(&grid(3, 3), 5));
        assert!(!has_clique_minor(&grid(2, 4), 4)); // outerplanar-ish strip: K4-free
        assert!(has_clique_minor(&grid(3, 3), 4));
    }

    #[test]
    fn wheel_has_k4() {
        assert!(has_clique_minor(&wheel(5), 4));
        assert!(!has_clique_minor(&wheel(5), 5));
    }

    #[test]
    fn ktree_minors() {
        // Treewidth k ⇒ no K_{k+2} minor; contains K_{k+1} subgraph.
        let g = ktree(2, 8);
        assert!(has_clique_minor(&g, 3));
        assert!(!has_clique_minor(&g, 4));
    }

    #[test]
    fn paper_remark_degree3_graph_with_kk_minor() {
        // §5 closing remark: bounded degree does not exclude minors.
        // (k = 5 also holds but needs a deeper search than unit tests allow;
        // the benchmarks exercise it with a larger budget.)
        for k in 3..=4 {
            let g = expanded_clique_degree3(k);
            assert!(g.max_degree() <= 3);
            let r = find_clique_minor(&g, k, 5_000_000);
            assert!(r.is_found(), "K_{k} minor should exist in the gadget");
            if let MinorSearch::Found(w) = r {
                w.verify(&g).unwrap();
            }
        }
    }

    #[test]
    fn witness_verification_rejects_bad_witnesses() {
        let g = cycle(6);
        // Overlapping patches.
        let w = MinorWitness {
            patches: vec![vec![0, 1], vec![1, 2]],
        };
        assert!(w.verify(&g).is_err());
        // Disconnected patch.
        let w = MinorWitness {
            patches: vec![vec![0, 3], vec![1]],
        };
        assert!(w.verify(&g).is_err());
        // Non-adjacent patches.
        let w = MinorWitness {
            patches: vec![vec![0], vec![3]],
        };
        assert!(w.verify(&g).is_err());
        // A good witness.
        let w = MinorWitness {
            patches: vec![vec![0], vec![1, 2]],
        };
        w.verify(&g).unwrap();
    }

    #[test]
    fn budget_exhaustion_reports_unknown() {
        let g = grid(4, 4);
        match find_clique_minor(&g, 5, 3) {
            MinorSearch::Unknown => {}
            other => panic!("tiny budget should exhaust, got {other:?}"),
        }
    }

    #[test]
    fn trivial_cases() {
        let empty = hp_structures::Graph::new(0);
        assert!(!has_clique_minor(&empty, 1));
        assert!(has_clique_minor(&hp_structures::Graph::new(1), 1));
        assert!(has_clique_minor(&path(2), 0));
    }
}
