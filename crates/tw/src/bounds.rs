//! The paper's worst-case size thresholds, in saturating arithmetic.
//!
//! Every theorem in §§3–5 has the form "there exists `N` such that every
//! structure larger than `N` contains a scattered set …". The proofs give
//! explicit but astronomically large `N`s (factorials, Ramsey towers,
//! iterated exponentials). This module computes them exactly while they fit
//! in `u128` and reports [`Bound::Astronomical`] beyond — the experiment
//! tables print them next to the *measured* thresholds, which is the
//! quantitative story of the reproduction.

use std::fmt;
use std::ops::{Add, Mul};

/// A possibly-astronomical non-negative integer bound.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Bound {
    /// An exact value.
    Finite(u128),
    /// Overflowed `u128` — beyond ~3.4 × 10³⁸.
    Astronomical,
}

impl Bound {
    /// Exact value if finite.
    pub fn finite(self) -> Option<u128> {
        match self {
            Bound::Finite(v) => Some(v),
            Bound::Astronomical => None,
        }
    }

    /// Saturating exponentiation.
    pub fn pow(self, exp: Bound) -> Bound {
        match (self, exp) {
            (Bound::Finite(0), Bound::Finite(0)) => Bound::Finite(1),
            (Bound::Finite(0), _) => Bound::Finite(0),
            (Bound::Finite(1), _) => Bound::Finite(1),
            (_, Bound::Finite(0)) => Bound::Finite(1),
            (Bound::Finite(b), Bound::Finite(e)) => {
                if e > 170 {
                    // 2^171 > u128::MAX, and b >= 2 here.
                    return Bound::Astronomical;
                }
                let mut acc: u128 = 1;
                for _ in 0..e {
                    acc = match acc.checked_mul(b) {
                        Some(v) => v,
                        None => return Bound::Astronomical,
                    };
                }
                Bound::Finite(acc)
            }
            _ => Bound::Astronomical,
        }
    }

    /// Saturating factorial.
    pub fn factorial(self) -> Bound {
        match self {
            Bound::Finite(n) => {
                if n > 34 {
                    return Bound::Astronomical; // 35! > u128::MAX
                }
                let mut acc: u128 = 1;
                for i in 2..=n {
                    acc = match acc.checked_mul(i) {
                        Some(v) => v,
                        None => return Bound::Astronomical,
                    };
                }
                Bound::Finite(acc)
            }
            Bound::Astronomical => Bound::Astronomical,
        }
    }
}

impl From<u128> for Bound {
    fn from(v: u128) -> Self {
        Bound::Finite(v)
    }
}

impl From<usize> for Bound {
    fn from(v: usize) -> Self {
        Bound::Finite(v as u128)
    }
}

impl Add for Bound {
    type Output = Bound;
    fn add(self, rhs: Bound) -> Bound {
        match (self, rhs) {
            (Bound::Finite(a), Bound::Finite(b)) => {
                a.checked_add(b).map_or(Bound::Astronomical, Bound::Finite)
            }
            _ => Bound::Astronomical,
        }
    }
}

impl Mul for Bound {
    type Output = Bound;
    fn mul(self, rhs: Bound) -> Bound {
        match (self, rhs) {
            (Bound::Finite(a), Bound::Finite(b)) => {
                a.checked_mul(b).map_or(Bound::Astronomical, Bound::Finite)
            }
            _ => Bound::Astronomical,
        }
    }
}

impl fmt::Display for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Go through `pad` so alignment/width format specs work.
        match self {
            Bound::Finite(v) => f.pad(&v.to_string()),
            Bound::Astronomical => f.pad(">10^38"),
        }
    }
}

/// Lemma 3.4's threshold: `N = m · k^d` (degree ≤ k, d-scattered set of
/// size m exists in any graph with more than N vertices).
pub fn lemma_3_4(k: usize, d: usize, m: usize) -> Bound {
    Bound::from(m) * Bound::from(k).pow(Bound::from(d))
}

/// Theorem 4.1's (Sunflower Lemma) family-size threshold: `k!(p−1)^k`.
pub fn sunflower_threshold(k: usize, p: usize) -> Bound {
    Bound::from(k).factorial() * Bound::from(p.saturating_sub(1)).pow(Bound::from(k))
}

/// Lemma 4.2's sunflower petal count: `p = (m−1)(2d+1) + 1`.
pub fn lemma_4_2_petals(d: usize, m: usize) -> usize {
    m.saturating_sub(1) * (2 * d + 1) + 1
}

/// Lemma 4.2's threshold: `N = k(m−1)^M` with `M = k!(p−1)^k`,
/// `p = (m−1)(2d+1)+1` (treewidth < k).
pub fn lemma_4_2(k: usize, d: usize, m: usize) -> Bound {
    let p = lemma_4_2_petals(d, m);
    let big_m = sunflower_threshold(k, p);
    Bound::from(k) * Bound::from(m.saturating_sub(1)).pow(big_m)
}

/// An upper bound on the hypergraph Ramsey number `r(l, k, m)` of Theorem
/// 5.1 (colorings of k-subsets with l colors, monochromatic set of size
/// exceeding m), via the Erdős–Rado stepping-up recurrence
/// `r(l, 1, m) = l·m` and `r(l, k, m) ≤ l^( r(l, k−1, m) choose k−1 ) + k`.
/// Only the order of magnitude matters — the experiments print it as a
/// point of comparison.
pub fn ramsey_upper(l: usize, k: usize, m: usize) -> Bound {
    if k == 0 {
        return Bound::from(m);
    }
    if k == 1 {
        return Bound::from(l) * Bound::from(m);
    }
    let prev = ramsey_upper(l, k - 1, m);
    let choose = match prev {
        Bound::Finite(v) => binom(v, (k - 1) as u128),
        Bound::Astronomical => Bound::Astronomical,
    };
    Bound::from(l).pow(choose) + Bound::from(k)
}

fn binom(n: u128, k: u128) -> Bound {
    if k > n {
        return Bound::Finite(0);
    }
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = match acc.checked_mul(n - i) {
            Some(v) => v / (i + 1),
            None => return Bound::Astronomical,
        };
    }
    Bound::Finite(acc)
}

/// Lemma 5.2's stage function `b(n) = r(k+1, k, (k−2)n + k − 2)` and its
/// iterate `b^{k−2}(m)` — the bipartite-step threshold.
pub fn lemma_5_2(k: usize, m: usize) -> Bound {
    if k <= 2 {
        return Bound::from(m);
    }
    let mut cur = Bound::from(m);
    for _ in 0..(k - 2) {
        cur = match cur {
            Bound::Finite(n) => {
                let target = Bound::from(k - 2) * Bound::Finite(n) + Bound::from(k - 2);
                match target {
                    Bound::Finite(t) => ramsey_upper(k + 1, k, t as usize),
                    Bound::Astronomical => Bound::Astronomical,
                }
            }
            Bound::Astronomical => Bound::Astronomical,
        };
    }
    cur
}

/// Theorem 5.3's threshold `N = c^d(m)` with `c(n) = r(2, 2, b^{k−2}(n))`.
pub fn theorem_5_3(k: usize, d: usize, m: usize) -> Bound {
    let mut cur = Bound::from(m);
    for _ in 0..d {
        cur = match cur {
            Bound::Finite(n) => {
                let b = lemma_5_2(k, n as usize);
                match b {
                    Bound::Finite(t) => ramsey_upper(2, 2, t as usize),
                    Bound::Astronomical => Bound::Astronomical,
                }
            }
            Bound::Astronomical => Bound::Astronomical,
        };
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_arithmetic() {
        assert_eq!(Bound::from(3usize) * Bound::from(4usize), Bound::Finite(12));
        assert_eq!(
            Bound::from(2usize).pow(Bound::from(10usize)),
            Bound::Finite(1024)
        );
        assert_eq!(Bound::from(5usize).factorial(), Bound::Finite(120));
        assert_eq!(
            Bound::from(2usize).pow(Bound::from(200usize)),
            Bound::Astronomical
        );
        assert_eq!(Bound::from(40usize).factorial(), Bound::Astronomical);
        assert_eq!(
            Bound::Astronomical + Bound::from(1usize),
            Bound::Astronomical
        );
        assert_eq!(format!("{}", Bound::Astronomical), ">10^38");
    }

    #[test]
    fn pow_edge_cases() {
        assert_eq!(
            Bound::from(0usize).pow(Bound::from(0usize)),
            Bound::Finite(1)
        );
        assert_eq!(
            Bound::from(0usize).pow(Bound::from(5usize)),
            Bound::Finite(0)
        );
        assert_eq!(
            Bound::from(1usize).pow(Bound::Astronomical),
            Bound::Finite(1)
        );
        assert_eq!(
            Bound::from(7usize).pow(Bound::from(0usize)),
            Bound::Finite(1)
        );
    }

    #[test]
    fn lemma_3_4_values() {
        // k=3, d=2, m=4: N = 4 * 9 = 36 — pleasantly small.
        assert_eq!(lemma_3_4(3, 2, 4), Bound::Finite(36));
        assert_eq!(lemma_3_4(2, 10, 1), Bound::Finite(1024));
    }

    #[test]
    fn sunflower_threshold_values() {
        assert_eq!(sunflower_threshold(2, 3), Bound::Finite(8)); // 2!·2²
        assert_eq!(sunflower_threshold(3, 4), Bound::Finite(6 * 27));
    }

    #[test]
    fn lemma_4_2_blows_up_quickly() {
        // k=2, d=1, m=3: p = 2·3+1 = 7, M = 2!·6² = 72, N = 2·2^72 — big
        // but still finite in u128.
        let b = lemma_4_2(2, 1, 3);
        assert_eq!(b, Bound::Finite(2 * (1u128 << 72)));
        // Slightly larger parameters overflow.
        assert_eq!(lemma_4_2(3, 2, 5), Bound::Astronomical);
    }

    #[test]
    fn ramsey_tower_saturates() {
        // r(2,1,m) = 2m (pigeonhole).
        assert_eq!(ramsey_upper(2, 1, 5), Bound::Finite(10));
        // Graph Ramsey upper: r(2,2,m) = 2^(2m) + 2 via this recurrence.
        assert_eq!(ramsey_upper(2, 2, 3), Bound::Finite((1 << 6) + 2));
        // Higher uniformity towers off.
        assert_eq!(ramsey_upper(4, 3, 10), Bound::Astronomical);
    }

    #[test]
    fn lemma_5_2_and_theorem_5_3() {
        // k=2: trivial case, N = m.
        assert_eq!(lemma_5_2(2, 7), Bound::Finite(7));
        assert_eq!(theorem_5_3(2, 0, 7), Bound::Finite(7));
        // k=3: b(m) = r(4, 3, m+1): astronomically large already.
        assert_eq!(lemma_5_2(3, 5), Bound::Astronomical);
        assert_eq!(theorem_5_3(3, 2, 5), Bound::Astronomical);
    }

    #[test]
    fn petal_counts() {
        assert_eq!(lemma_4_2_petals(1, 3), 7);
        assert_eq!(lemma_4_2_petals(0, 5), 5);
        assert_eq!(lemma_4_2_petals(2, 1), 1);
    }
}
