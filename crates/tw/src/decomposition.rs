//! Tree decompositions (§2.1) with full validity checking.

use hp_structures::{BitSet, Graph};

/// A tree decomposition of a graph: a tree whose nodes are labelled with
/// vertex sets (*bags*), satisfying the three conditions of §2.1:
///
/// 1. every bag is a subset of the vertices (and, following the paper,
///    non-empty — except that we allow a single empty bag for the edgeless
///    empty graph);
/// 2. every edge is contained in some bag;
/// 3. for every vertex, the set of bags containing it induces a connected
///    subtree.
#[derive(Clone, Debug)]
pub struct TreeDecomposition {
    /// `bags[i]` is the label of tree node `i` (sorted vertex lists).
    bags: Vec<Vec<u32>>,
    /// Undirected tree edges between node indices.
    edges: Vec<(usize, usize)>,
}

impl TreeDecomposition {
    /// Build from raw bags and tree edges. Bags are sorted and deduped;
    /// structural validity (is it a tree? does it cover the graph?) is
    /// checked by [`validate`](Self::validate).
    pub fn new(bags: Vec<Vec<u32>>, edges: Vec<(usize, usize)>) -> Self {
        let mut bags = bags;
        for b in &mut bags {
            b.sort_unstable();
            b.dedup();
        }
        TreeDecomposition { bags, edges }
    }

    /// The trivial decomposition: one bag containing every vertex.
    pub fn trivial(g: &Graph) -> Self {
        TreeDecomposition {
            bags: vec![g.vertices().collect()],
            edges: Vec::new(),
        }
    }

    /// The bags.
    pub fn bags(&self) -> &[Vec<u32>] {
        &self.bags
    }

    /// The tree edges.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Number of tree nodes.
    pub fn len(&self) -> usize {
        self.bags.len()
    }

    /// True when there are no bags.
    pub fn is_empty(&self) -> bool {
        self.bags.is_empty()
    }

    /// Width: maximum bag size − 1.
    pub fn width(&self) -> usize {
        self.bags
            .iter()
            .map(Vec::len)
            .max()
            .unwrap_or(0)
            .saturating_sub(1)
    }

    /// Neighbor lists of the decomposition tree.
    pub fn tree_adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.bags.len()];
        for &(a, b) in &self.edges {
            adj[a].push(b);
            adj[b].push(a);
        }
        adj
    }

    /// Check all tree-decomposition conditions against `g`. Returns a
    /// human-readable reason on failure.
    pub fn validate(&self, g: &Graph) -> Result<(), String> {
        let n = g.vertex_count();
        if self.bags.is_empty() {
            return if n == 0 {
                Ok(())
            } else {
                Err("no bags for a non-empty graph".into())
            };
        }
        // The label tree must be a tree: connected with |V|-1 edges.
        if self.edges.len() + 1 != self.bags.len() {
            return Err(format!(
                "not a tree: {} nodes, {} edges",
                self.bags.len(),
                self.edges.len()
            ));
        }
        let adj = self.tree_adjacency();
        let mut seen = vec![false; self.bags.len()];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 0;
        while let Some(u) = stack.pop() {
            count += 1;
            for &v in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        if count != self.bags.len() {
            return Err("decomposition tree is disconnected".into());
        }
        // Condition 1: bags within range (non-emptiness is relaxed; the
        // paper's normalization removes empty bags, ours tolerates them).
        for (i, b) in self.bags.iter().enumerate() {
            if b.iter().any(|&v| v as usize >= n) {
                return Err(format!("bag {i} mentions a vertex outside the graph"));
            }
        }
        // Every vertex in some bag.
        let mut covered = BitSet::new(n);
        for b in &self.bags {
            for &v in b {
                covered.insert(v as usize);
            }
        }
        if covered.len() != n {
            return Err("some vertex appears in no bag".into());
        }
        // Condition 2: every edge inside some bag.
        'edges: for (u, v) in g.edges() {
            for b in &self.bags {
                if b.binary_search(&u).is_ok() && b.binary_search(&v).is_ok() {
                    continue 'edges;
                }
            }
            return Err(format!("edge ({u},{v}) not covered by any bag"));
        }
        // Condition 3: occurrence sets are connected subtrees.
        for x in 0..n as u32 {
            let nodes: Vec<usize> = (0..self.bags.len())
                .filter(|&i| self.bags[i].binary_search(&x).is_ok())
                .collect();
            if nodes.is_empty() {
                continue;
            }
            let inset: BitSet = nodes.iter().copied().collect::<BitSet>();
            let mut seen2 = vec![false; self.bags.len()];
            let mut stack = vec![nodes[0]];
            seen2[nodes[0]] = true;
            let mut cnt = 0;
            while let Some(u) = stack.pop() {
                cnt += 1;
                for &v in &adj[u] {
                    if !seen2[v] && v < inset.capacity() && inset.contains(v) {
                        seen2[v] = true;
                        stack.push(v);
                    }
                }
            }
            if cnt != nodes.len() {
                return Err(format!("occurrences of vertex {x} are not connected"));
            }
        }
        Ok(())
    }

    /// Normalize so that **adjacent bags are incomparable** (for every tree
    /// edge `{u, v}`, both `S_u − S_v` and `S_v − S_u` are non-empty) — the
    /// "standard manipulation" the proof of Lemma 4.2 assumes. Contracts any
    /// tree edge whose bags are comparable. By the connectivity condition,
    /// this also makes **all pairs** of bags incomparable along tree paths.
    pub fn normalized(&self) -> TreeDecomposition {
        let mut bags = self.bags.clone();
        let mut edges = self.edges.clone();
        loop {
            let mut contract: Option<(usize, usize)> = None;
            for &(a, b) in &edges {
                let sa = &bags[a];
                let sb = &bags[b];
                let a_in_b = sa.iter().all(|x| sb.binary_search(x).is_ok());
                let b_in_a = sb.iter().all(|x| sa.binary_search(x).is_ok());
                if a_in_b {
                    contract = Some((a, b)); // drop a, keep b
                    break;
                }
                if b_in_a {
                    contract = Some((b, a));
                    break;
                }
            }
            let Some((drop, keep)) = contract else { break };
            // Redirect drop's edges to keep, remove node `drop`.
            let mut new_edges = Vec::with_capacity(edges.len().saturating_sub(1));
            for &(a, b) in &edges {
                let (mut a, mut b) = (a, b);
                if a == drop {
                    a = keep;
                }
                if b == drop {
                    b = keep;
                }
                if a != b {
                    new_edges.push((a, b));
                }
            }
            // Renumber: remove index `drop`.
            bags.remove(drop);
            let fix = |i: usize| if i > drop { i - 1 } else { i };
            edges = new_edges
                .into_iter()
                .map(|(a, b)| (fix(a), fix(b)))
                .collect();
            edges.sort_unstable();
            edges.dedup();
        }
        TreeDecomposition { bags, edges }
    }

    /// The longest path in the decomposition tree, as a list of node
    /// indices (via double BFS). Used by the Lemma 4.2 Case-2 argument.
    pub fn longest_tree_path(&self) -> Vec<usize> {
        if self.bags.is_empty() {
            return Vec::new();
        }
        let adj = self.tree_adjacency();
        let bfs_far = |start: usize| -> (usize, Vec<usize>) {
            let mut parent = vec![usize::MAX; self.bags.len()];
            let mut dist = vec![usize::MAX; self.bags.len()];
            dist[start] = 0;
            let mut q = std::collections::VecDeque::from([start]);
            let mut far = start;
            while let Some(u) = q.pop_front() {
                if dist[u] > dist[far] {
                    far = u;
                }
                for &v in &adj[u] {
                    if dist[v] == usize::MAX {
                        dist[v] = dist[u] + 1;
                        parent[v] = u;
                        q.push_back(v);
                    }
                }
            }
            (far, parent)
        };
        let (a, _) = bfs_far(0);
        let (b, parent) = bfs_far(a);
        let mut path = vec![b];
        let mut cur = b;
        while parent[cur] != usize::MAX {
            cur = parent[cur];
            path.push(cur);
        }
        path.reverse();
        path
    }

    /// Maximum degree of any decomposition tree node.
    pub fn max_tree_degree(&self) -> usize {
        self.tree_adjacency()
            .iter()
            .map(Vec::len)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hp_structures::generators::{cycle, path, star};

    fn path_decomposition(n: usize) -> TreeDecomposition {
        // Bags {i, i+1} in a path.
        let bags: Vec<Vec<u32>> = (0..n - 1).map(|i| vec![i as u32, i as u32 + 1]).collect();
        let edges: Vec<(usize, usize)> = (1..n - 1).map(|i| (i - 1, i)).collect();
        TreeDecomposition::new(bags, edges)
    }

    #[test]
    fn valid_path_decomposition() {
        let g = path(6);
        let td = path_decomposition(6);
        td.validate(&g).unwrap();
        assert_eq!(td.width(), 1);
        assert_eq!(td.longest_tree_path().len(), 5);
    }

    #[test]
    fn trivial_decomposition_always_valid() {
        for g in [path(4), cycle(5), star(4)] {
            let td = TreeDecomposition::trivial(&g);
            td.validate(&g).unwrap();
            assert_eq!(td.width(), g.vertex_count() - 1);
        }
    }

    #[test]
    fn detects_uncovered_edge() {
        let g = cycle(4);
        // Path decomposition of the path 0-1-2-3 misses the closing edge.
        let td = path_decomposition(4);
        let err = td.validate(&g).unwrap_err();
        assert!(err.contains("not covered"));
    }

    #[test]
    fn detects_disconnected_occurrence() {
        let g = path(3);
        // Vertex 0 appears in bags 0 and 2 but not 1.
        let td = TreeDecomposition::new(
            vec![vec![0, 1], vec![1, 2], vec![0, 2]],
            vec![(0, 1), (1, 2)],
        );
        let err = td.validate(&g).unwrap_err();
        assert!(err.contains("not connected"));
    }

    #[test]
    fn detects_non_tree() {
        let g = path(3);
        let td = TreeDecomposition::new(vec![vec![0, 1], vec![1, 2]], vec![(0, 1), (1, 0)]);
        assert!(td.validate(&g).is_err());
    }

    #[test]
    fn detects_missing_vertex() {
        let g = path(3); // vertices 0,1,2
        let td = TreeDecomposition::new(vec![vec![0, 1]], vec![]);
        let err = td.validate(&g).unwrap_err();
        assert!(err.contains("no bag") || err.contains("not covered"));
    }

    #[test]
    fn normalization_contracts_subset_bags() {
        let g = path(4);
        // Redundant decomposition with duplicate/subset bags.
        let td = TreeDecomposition::new(
            vec![vec![0, 1], vec![1], vec![1, 2], vec![1, 2], vec![2, 3]],
            vec![(0, 1), (1, 2), (2, 3), (3, 4)],
        );
        td.validate(&g).unwrap();
        let nd = td.normalized();
        nd.validate(&g).unwrap();
        assert_eq!(nd.len(), 3);
        // All adjacent pairs incomparable now.
        for &(a, b) in nd.edges() {
            let sa = &nd.bags()[a];
            let sb = &nd.bags()[b];
            assert!(sa.iter().any(|x| sb.binary_search(x).is_err()));
            assert!(sb.iter().any(|x| sa.binary_search(x).is_err()));
        }
    }

    #[test]
    fn star_decomposition_tree_degree() {
        // Star decomposition: center bag {0}, leaf bags {0, i}.
        let g = star(5);
        let mut bags = vec![vec![0u32]];
        let mut edges = Vec::new();
        for i in 1..=5u32 {
            bags.push(vec![0, i]);
            edges.push((0, i as usize));
        }
        let td = TreeDecomposition::new(bags, edges);
        td.validate(&g).unwrap();
        assert_eq!(td.max_tree_degree(), 5);
        let nd = td.normalized();
        nd.validate(&g).unwrap();
        assert_eq!(nd.len(), 5); // the {0} bag contracts away
    }

    #[test]
    fn empty_graph_decompositions() {
        let g = hp_structures::Graph::new(0);
        let td = TreeDecomposition::new(vec![], vec![]);
        td.validate(&g).unwrap();
        let g1 = hp_structures::Graph::new(1);
        let td1 = TreeDecomposition::new(vec![vec![0]], vec![]);
        td1.validate(&g1).unwrap();
        assert_eq!(td1.width(), 0);
    }
}
