//! The Erdős–Rado **Sunflower Lemma** (Theorem 4.1), as an algorithm.
//!
//! A *sunflower* with `p` petals in a family of sets is a subfamily
//! `X₁, …, X_p` with a common pairwise intersection `B` (the *core*):
//! `Xᵢ ∩ Xⱼ = B` for all `i ≠ j`. Theorem 4.1: any family of more than
//! `k!(p−1)^k` sets, each of size ≤ `k`, contains a sunflower with `p`
//! petals.

use std::collections::BTreeSet;

use hp_guard::{Budget, Budgeted, Gauge, Stop};

/// A sunflower found in a family of sets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Sunflower {
    /// Indices (into the input family) of the petal sets.
    pub petals: Vec<usize>,
    /// The common core `B = Xᵢ ∩ Xⱼ`.
    pub core: Vec<u32>,
}

impl Sunflower {
    /// Verify the sunflower against the family it was extracted from.
    pub fn verify(&self, family: &[Vec<u32>]) -> Result<(), String> {
        let core: BTreeSet<u32> = self.core.iter().copied().collect();
        for (a, &i) in self.petals.iter().enumerate() {
            let si: BTreeSet<u32> = family[i].iter().copied().collect();
            if !core.is_subset(&si) {
                return Err(format!("core not contained in petal set {i}"));
            }
            for &j in &self.petals[a + 1..] {
                let sj: BTreeSet<u32> = family[j].iter().copied().collect();
                let inter: BTreeSet<u32> = si.intersection(&sj).copied().collect();
                if inter != core {
                    return Err(format!(
                        "sets {i} and {j} intersect in {inter:?}, expected core {:?}",
                        core
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Find a sunflower with at least `p` petals in `family`, following the
/// constructive proof of the Sunflower Lemma:
///
/// 1. take a maximal pairwise-disjoint subfamily; if it has ≥ `p` sets,
///    it is a sunflower with empty core;
/// 2. otherwise its union `U` (at most `k·(p−1)` elements) intersects every
///    set; some element `x ∈ U` lies in at least `|F| / (k(p−1))` sets —
///    recurse on those sets with `x` removed, and add `x` to the core.
///
/// Returns `None` if no sunflower with `p` petals is found by this strategy
/// (guaranteed to succeed when `|family| > k!(p−1)^k` with all sets of size
/// ≤ `k`; may also succeed far below that bound, which is exactly what the
/// E4 experiment measures).
pub fn find_sunflower(family: &[Vec<u32>], p: usize) -> Option<Sunflower> {
    let mut gauge = Budget::unlimited().gauge();
    find_sunflower_gauged(family, p, &mut gauge)
        .unwrap_or_else(|_| unreachable!("an unlimited budget cannot exhaust"))
}

/// Budgeted [`find_sunflower`]: charges one fuel unit per live set
/// examined in each recursion level of the constructive proof. An
/// `Ok(Some(..))`/`Ok(None)` answer is exactly what [`find_sunflower`]
/// would return; exhaustion means the search was cut short and nothing
/// was decided (the partial is `()`).
pub fn find_sunflower_with_budget(
    family: &[Vec<u32>],
    p: usize,
    budget: &Budget,
) -> Budgeted<Option<Sunflower>, ()> {
    let mut gauge = budget.gauge();
    find_sunflower_gauged(family, p, &mut gauge).map_err(|stop| stop.with_partial(()))
}

/// Gauge-threaded entry shared by [`find_sunflower`],
/// [`find_sunflower_with_budget`], and the scattered-set extractions that
/// run sunflower searches under one shared budget.
pub(crate) fn find_sunflower_gauged(
    family: &[Vec<u32>],
    p: usize,
    gauge: &mut Gauge,
) -> Result<Option<Sunflower>, Stop> {
    if p == 0 {
        return Ok(Some(Sunflower {
            petals: vec![],
            core: vec![],
        }));
    }
    let indices: Vec<usize> = (0..family.len()).collect();
    find_rec(family, &indices, p, &mut Vec::new(), gauge)
}

fn find_rec(
    family: &[Vec<u32>],
    live: &[usize],
    p: usize,
    core: &mut Vec<u32>,
    gauge: &mut Gauge,
) -> Result<Option<Sunflower>, Stop> {
    gauge.tick(1 + live.len() as u64)?;
    // Greedy maximal disjoint subfamily (over elements not in `core` —
    // callers have already removed core elements from consideration by
    // filtering; here we compute disjointness of the residual sets).
    let residual = |i: usize| -> BTreeSet<u32> {
        family[i]
            .iter()
            .copied()
            .filter(|x| !core.contains(x))
            .collect()
    };
    let mut chosen: Vec<usize> = Vec::new();
    let mut used: BTreeSet<u32> = BTreeSet::new();
    for &i in live {
        let r = residual(i);
        if r.iter().all(|x| !used.contains(x)) {
            used.extend(r.iter().copied());
            chosen.push(i);
        }
    }
    if chosen.len() >= p {
        chosen.truncate(p);
        let sf = Sunflower {
            petals: chosen,
            core: core.clone(),
        };
        debug_assert!(sf.verify(family).is_ok());
        return Ok(Some(sf));
    }
    if used.is_empty() {
        // All residual sets are empty: every live set equals the core, so
        // they pairwise intersect exactly in the core — any p of them form
        // a degenerate sunflower.
        if live.len() >= p {
            let sf = Sunflower {
                petals: live[..p].to_vec(),
                core: core.clone(),
            };
            debug_assert!(sf.verify(family).is_ok());
            return Ok(Some(sf));
        }
        return Ok(None);
    }
    // Find the most popular element of the union among live residual sets.
    let mut best: Option<(u32, usize)> = None;
    for &x in &used {
        let cnt = live.iter().filter(|&&i| residual(i).contains(&x)).count();
        if best.is_none_or(|(_, c)| cnt > c) {
            best = Some((x, cnt));
        }
    }
    let (x, _) = best.expect("invariant: used is non-empty, so some element was counted");
    let next: Vec<usize> = live
        .iter()
        .copied()
        .filter(|&i| residual(i).contains(&x))
        .collect();
    core.push(x);
    let out = find_rec(family, &next, p, core, gauge);
    core.pop();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_family_is_its_own_sunflower() {
        let fam = vec![vec![0, 1], vec![2, 3], vec![4, 5], vec![6]];
        let sf = find_sunflower(&fam, 3).unwrap();
        assert_eq!(sf.core, Vec::<u32>::new());
        assert_eq!(sf.petals.len(), 3);
        sf.verify(&fam).unwrap();
    }

    #[test]
    fn common_element_becomes_core() {
        let fam = vec![vec![9, 1], vec![9, 2], vec![9, 3], vec![9, 4]];
        let sf = find_sunflower(&fam, 4).unwrap();
        assert_eq!(sf.core, vec![9]);
        sf.verify(&fam).unwrap();
    }

    #[test]
    fn identical_sets_form_degenerate_sunflower() {
        let fam = vec![vec![1, 2], vec![1, 2], vec![1, 2]];
        let sf = find_sunflower(&fam, 3).unwrap();
        assert_eq!(sf.core, vec![1, 2]);
        sf.verify(&fam).unwrap();
    }

    #[test]
    fn erdos_rado_bound_is_sufficient() {
        // k = 2, p = 3: any family of > 2!(3-1)^2 = 8 two-element sets has a
        // 3-petal sunflower. Try an adversarial-ish family: edges of K_5
        // (10 sets of size 2).
        let mut fam = Vec::new();
        for a in 0..5u32 {
            for b in (a + 1)..5 {
                fam.push(vec![a, b]);
            }
        }
        assert!(fam.len() > 8);
        let sf = find_sunflower(&fam, 3).expect("Erdős–Rado guarantees this");
        sf.verify(&fam).unwrap();
        assert_eq!(sf.petals.len(), 3);
    }

    #[test]
    fn no_sunflower_when_family_too_small() {
        let fam = vec![vec![0, 1], vec![1, 2]];
        assert!(find_sunflower(&fam, 3).is_none());
    }

    #[test]
    fn mixed_core_and_petals() {
        // Sets {c, x_i} ∪ {c, d}: sunflower with core {c}.
        let fam = vec![
            vec![100, 1],
            vec![100, 2],
            vec![100, 3, 4],
            vec![5, 6], // disjoint distractor
        ];
        let sf = find_sunflower(&fam, 3).unwrap();
        sf.verify(&fam).unwrap();
    }

    #[test]
    fn budgeted_search_matches_and_exhausts() {
        use hp_guard::Resource;
        let fam = vec![vec![9, 1], vec![9, 2], vec![9, 3], vec![9, 4]];
        let full = find_sunflower(&fam, 4);
        assert_eq!(
            find_sunflower_with_budget(&fam, 4, &Budget::unlimited()).unwrap(),
            full
        );
        let e = find_sunflower_with_budget(&fam, 4, &Budget::fuel(1))
            .expect_err("one fuel unit cannot scan four sets");
        assert_eq!(e.resource, Resource::Fuel);
    }

    #[test]
    fn zero_petals_trivial() {
        let sf = find_sunflower(&[], 0).unwrap();
        assert!(sf.petals.is_empty());
    }

    #[test]
    fn empty_sets_are_universal_petals() {
        let fam = vec![vec![], vec![], vec![]];
        let sf = find_sunflower(&fam, 3).unwrap();
        assert_eq!(sf.core, Vec::<u32>::new());
        sf.verify(&fam).unwrap();
    }
}
