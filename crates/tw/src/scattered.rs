//! Scattered-set extraction — the combinatorial engines of §§3–5.
//!
//! A set `S` of vertices is **d-scattered** in `G` when the d-neighborhoods
//! of its members are pairwise disjoint (equivalently: pairwise distance
//! exceeding 2d). The paper's theorems all reduce to: *in every sufficiently large
//! graph of the class, after deleting a small set `B`, a large d-scattered
//! set exists.* Each function here implements one such extraction,
//! returning the promised `(B, S)` — or, for the excluded-minor
//! constructions, an explicit [`MinorWitness`] when the input turns out to
//! contain the forbidden minor after all (mirroring the proofs, which
//! derive a `K_k` minor whenever the construction stalls).

use hp_guard::{Budget, Budgeted, Gauge, Stop};
use hp_structures::{BitSet, Graph, Neighborhoods};

use crate::decomposition::TreeDecomposition;
use crate::minor::MinorWitness;
use crate::sunflower::{find_sunflower_gauged, Sunflower};

/// A user-facing parameter error from the §5 constructions (the internal
/// invariants stay as `expect`s; these are the inputs a caller can get
/// wrong).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScatteredError {
    /// The excluded-minor order `k` must be at least 2 — excluding `K_0`
    /// or `K_1` is vacuous and the constructions' `k − 1` arithmetic
    /// underflows.
    MinorOrderTooSmall {
        /// The rejected order.
        k: usize,
    },
}

impl std::fmt::Display for ScatteredError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScatteredError::MinorOrderTooSmall { k } => {
                write!(f, "excluded-minor order k = {k} is too small (need k >= 2)")
            }
        }
    }
}

impl std::error::Error for ScatteredError {}

/// The outcome of a deletion-based extraction: the deleted set `B` and a
/// d-scattered set `S` of `G − B`, **expressed in the original graph's
/// vertex numbering**.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScatteredSet {
    /// Deleted vertices (the paper's `B` or `Z`).
    pub deleted: Vec<u32>,
    /// The d-scattered set found in `G − deleted`.
    pub set: Vec<u32>,
}

impl ScatteredSet {
    /// Verify against the original graph: `set` must be d-scattered in
    /// `G − deleted` and disjoint from `deleted`.
    pub fn verify(&self, g: &Graph, d: usize) -> Result<(), String> {
        let n = g.vertex_count();
        let removed: BitSet = BitSet::from_indices(n, self.deleted.iter().map(|&v| v as usize));
        for &v in &self.set {
            if removed.contains(v as usize) {
                return Err(format!("scattered vertex {v} was deleted"));
            }
        }
        let (h, old_of_new) = g.minus(&removed);
        let mut new_of_old = vec![u32::MAX; n];
        for (new, &old) in old_of_new.iter().enumerate() {
            new_of_old[old as usize] = new as u32;
        }
        let mapped: Vec<u32> = self.set.iter().map(|&v| new_of_old[v as usize]).collect();
        if !hp_structures::is_d_scattered(&h, d, &mapped) {
            return Err("set is not d-scattered after deletion".into());
        }
        Ok(())
    }
}

/// Greedy maximal d-scattered set (no deletions): scan vertices in order,
/// keep those whose d-neighborhood avoids the 2d-neighborhoods of kept
/// vertices. Linear-ish and effective on bounded-degree graphs.
pub fn greedy_scattered(g: &Graph, d: usize) -> Vec<u32> {
    let n = g.vertex_count();
    let mut blocked = BitSet::new(n);
    let mut out = Vec::new();
    for v in g.vertices() {
        if blocked.contains(v as usize) {
            continue;
        }
        out.push(v);
        // Block everything within distance 2d of v.
        let nb = g.neighborhood(v, 2 * d);
        blocked.union_with(&nb);
    }
    out
}

/// **Lemma 3.4** (bounded degree, `s = 0`): in a graph of maximum degree
/// ≤ k with more than `m·k^d` vertices, a d-scattered set of size `m`
/// exists. Returns the set found by the greedy sweep, or `None` if the
/// greedy sweep finds fewer than `m` (possible only below the bound).
pub fn bounded_degree(g: &Graph, d: usize, m: usize) -> Option<Vec<u32>> {
    let s = greedy_scattered(g, d);
    if s.len() >= m {
        Some(s[..m].to_vec())
    } else {
        None
    }
}

/// **Lemma 4.2** (treewidth < k): find a deletion set `B` with `|B| ≤ k`
/// and a d-scattered set of size `m` in `G − B`.
///
/// Follows the proof on the *normalized* decomposition:
///
/// - **Case 1** — some decomposition-tree node has degree ≥ m: delete its
///   bag; the remaining graph splits into ≥ m components, one vertex of
///   each is d-scattered.
/// - **Case 2** — the tree has a long path: the bags along it, by the
///   Sunflower Lemma, contain `p = (m−1)(2d+1)+1` petals with common core
///   `B`; picking one vertex from every `(2d+1)`-th petal yields a
///   d-scattered set of `G − B` (Claim 4.3).
///
/// Both cases are attempted (Case 1 on the max-degree node; Case 2 on the
/// longest tree path); returns `None` when neither yields `m` vertices —
/// the paper guarantees success once `|V| > k(m−1)^M`, but in practice far
/// smaller graphs succeed, which experiment E4 quantifies.
pub fn bounded_treewidth(
    g: &Graph,
    td: &TreeDecomposition,
    d: usize,
    m: usize,
) -> Option<ScatteredSet> {
    let mut gauge = Budget::unlimited().gauge();
    bounded_treewidth_gauged(g, td, d, m, &mut gauge)
        .unwrap_or_else(|_| unreachable!("an unlimited budget cannot exhaust"))
}

/// Budgeted [`bounded_treewidth`]: one shared budget across the Case 1
/// component scan and the Case 2 sunflower search (one fuel unit per tree
/// node / per live sunflower set examined). Exhaustion means the
/// extraction was cut short with nothing decided (the partial is `()`).
pub fn bounded_treewidth_with_budget(
    g: &Graph,
    td: &TreeDecomposition,
    d: usize,
    m: usize,
    budget: &Budget,
) -> Budgeted<Option<ScatteredSet>, ()> {
    let mut gauge = budget.gauge();
    bounded_treewidth_gauged(g, td, d, m, &mut gauge).map_err(|stop| stop.with_partial(()))
}

fn bounded_treewidth_gauged(
    g: &Graph,
    td: &TreeDecomposition,
    d: usize,
    m: usize,
    gauge: &mut Gauge,
) -> Result<Option<ScatteredSet>, Stop> {
    let td = td.normalized();
    if m == 0 {
        return Ok(Some(ScatteredSet {
            deleted: vec![],
            set: vec![],
        }));
    }
    // ---- Case 1: high-degree tree node.
    gauge.tick(1 + td.len() as u64)?;
    let adj = td.tree_adjacency();
    if let Some(v) = (0..td.len()).max_by_key(|&v| adj[v].len()) {
        if adj[v].len() >= m {
            let deleted = td.bags()[v].clone();
            let removed: BitSet =
                BitSet::from_indices(g.vertex_count(), deleted.iter().map(|&x| x as usize));
            let (h, old_of_new) = g.minus(&removed);
            let comps = h.components();
            if comps.len() >= m {
                let set: Vec<u32> = comps
                    .iter()
                    .take(m)
                    .map(|c| old_of_new[c[0] as usize])
                    .collect();
                let out = ScatteredSet { deleted, set };
                debug_assert!(out.verify(g, d).is_ok());
                return Ok(Some(out));
            }
        }
    }
    // ---- Case 2: sunflower along the longest tree path.
    let path = td.longest_tree_path();
    let family: Vec<Vec<u32>> = path.iter().map(|&i| td.bags()[i].clone()).collect();
    let p = crate::bounds::lemma_4_2_petals(d, m);
    let sf: Sunflower = match find_sunflower_gauged(&family, p, gauge)? {
        Some(sf) => sf,
        None => return Ok(None),
    };
    // Petals in path order.
    let mut petals = sf.petals.clone();
    petals.sort_unstable();
    let core: Vec<u32> = sf.core.clone();
    let removed: BitSet = BitSet::from_indices(g.vertex_count(), core.iter().map(|&x| x as usize));
    // T_i = S_{u_i} − B must be non-empty (normalization guarantees bags
    // pairwise incomparable, hence petal residuals non-empty).
    let mut set = Vec::with_capacity(m);
    let mut i = 0;
    while set.len() < m && i < petals.len() {
        let bag = &family[petals[i]];
        if let Some(&x) = bag.iter().find(|&&x| !removed.contains(x as usize)) {
            set.push(x);
        }
        i += 2 * d + 1;
    }
    if set.len() < m {
        return Ok(None);
    }
    let out = ScatteredSet { deleted: core, set };
    debug_assert!(out.verify(g, d).is_ok(), "Claim 4.3 violated");
    Ok(Some(out))
}

/// The outcome of the §5 constructions: either the promised sets, or an
/// explicit `K_k`-ish minor witness showing the input did not satisfy the
/// hypothesis.
#[derive(Clone, Debug)]
pub enum MinorFreeOutcome {
    /// Extraction succeeded.
    Scattered(ScatteredSet),
    /// The construction stalled and, exactly as in the proof, produced a
    /// clique-minor witness (of the order recorded in the witness).
    Minor(MinorWitness),
}

/// **Lemma 5.2** (bipartite step): given a bipartite graph
/// `H = (A ∪ B, E ⊆ A × B)` presented as `g` with `side_a` marking the `A`
/// side, and the promise that `H` has no `K_k` minor, find `A′ ⊆ A` with
/// `|A′| ≥ m` and `B′ ⊆ B` with `|B′| < k−1` such that `A′ × B′ ⊆ E` and
/// `A′` is 1-scattered in `H − B′`.
///
/// Implementation mirrors the proof's stage structure, replacing the
/// Ramsey appeals with direct greedy searches (the Ramsey step only serves
/// to *guarantee* one of the three cases fires; algorithmically we try the
/// cases directly):
///
/// - **Case 1** — look for a large subset of `A` with pairwise no common
///   neighbor outside `B′` (greedy): done.
/// - **Case 3** — otherwise pick the vertex `z ∈ B − B′` covering the most
///   of the current `A`-set, add it to `B′`, and restrict to its neighbors.
/// - If `B′` would reach `k − 1` elements, the proof exhibits a
///   `K_{k−1,k−1}` and hence a `K_k` minor: we return the bipartite clique
///   witness instead.
pub fn bipartite_step(g: &Graph, side_a: &BitSet, k: usize, m: usize) -> MinorFreeOutcome {
    try_bipartite_step(g, side_a, k, m).unwrap_or_else(|e| panic!("{e}"))
}

/// Non-panicking [`bipartite_step`]: rejects `k < 2` as a typed
/// [`ScatteredError`] instead of asserting.
pub fn try_bipartite_step(
    g: &Graph,
    side_a: &BitSet,
    k: usize,
    m: usize,
) -> Result<MinorFreeOutcome, ScatteredError> {
    if k < 2 {
        return Err(ScatteredError::MinorOrderTooSmall { k });
    }
    let mut gauge = Budget::unlimited().gauge();
    Ok(bipartite_step_gauged(g, side_a, k, m, &mut gauge)
        .unwrap_or_else(|_| unreachable!("an unlimited budget cannot exhaust")))
}

/// The absorption loop of Lemma 5.2 with a gauge: charges one fuel unit
/// per surviving `A`-vertex each round. On exhaustion returns the best
/// scattered set recorded so far (if any round completed) with the stop.
fn bipartite_step_gauged(
    g: &Graph,
    side_a: &BitSet,
    k: usize,
    m: usize,
    gauge: &mut Gauge,
) -> Result<MinorFreeOutcome, (Option<ScatteredSet>, Stop)> {
    debug_assert!(k >= 2, "callers validate k (try_bipartite_step)");
    let mut a_cur: Vec<u32> = side_a.iter().map(|v| v as u32).collect();
    let mut b_prime: Vec<u32> = Vec::new();
    // The largest 1-scattered set seen over all absorption rounds, with the
    // B′ it was scattered under.
    let mut best_found: Option<ScatteredSet> = None;
    loop {
        if let Err(stop) = gauge.tick(1 + a_cur.len() as u64) {
            return Err((best_found, stop));
        }
        // Case 1: greedy 1-scattered subset of a_cur in H − B'.
        let mut chosen: Vec<u32> = Vec::new();
        let mut blocked = BitSet::new(g.vertex_count());
        for &a in &a_cur {
            if blocked.contains(a as usize) {
                continue;
            }
            chosen.push(a);
            // Block A-vertices sharing a neighbor with `a` outside B'.
            for &b in g.neighbors(a) {
                if b_prime.contains(&b) {
                    continue;
                }
                blocked.insert(b as usize);
                for &a2 in g.neighbors(b) {
                    blocked.insert(a2 as usize);
                }
            }
        }
        if chosen.len() >= m {
            chosen.truncate(m);
            let out = ScatteredSet {
                deleted: b_prime,
                set: chosen,
            };
            return Ok(MinorFreeOutcome::Scattered(out));
        }
        if best_found
            .as_ref()
            .is_none_or(|b| chosen.len() > b.set.len())
        {
            best_found = Some(ScatteredSet {
                deleted: b_prime.clone(),
                set: chosen.clone(),
            });
        }
        // Case 3: absorb the most popular remaining B-vertex.
        let mut best: Option<(u32, usize)> = None;
        let a_set: BitSet =
            BitSet::from_indices(g.vertex_count(), a_cur.iter().map(|&v| v as usize));
        let mut seen_b = BitSet::new(g.vertex_count());
        for &a in &a_cur {
            for &b in g.neighbors(a) {
                if b_prime.contains(&b) || !seen_b.insert(b as usize) {
                    continue;
                }
                let cnt = g
                    .neighbors(b)
                    .iter()
                    .filter(|&&x| a_set.contains(x as usize))
                    .count();
                if best.is_none_or(|(_, c)| cnt > c) {
                    best = Some((b, cnt));
                }
            }
        }
        let Some((z, cnt)) = best else {
            // No B-vertices left at all: a_cur is vacuously 1-scattered.
            if a_cur.len() > best_found.as_ref().map_or(0, |b| b.set.len()) {
                best_found = Some(ScatteredSet {
                    deleted: b_prime,
                    set: a_cur,
                });
            }
            return Ok(MinorFreeOutcome::Scattered(best_found.expect(
                "invariant: best_found is recorded before the first absorption",
            )));
        };
        if cnt < 2 || a_cur.len() < 2 {
            // Cannot shrink usefully; return the best set seen (the caller
            // checks sizes against the paper bound).
            return Ok(MinorFreeOutcome::Scattered(best_found.expect(
                "invariant: best_found is recorded before the first absorption",
            )));
        }
        b_prime.push(z);
        a_cur.retain(|&a| g.has_edge(a, z));
        if b_prime.len() >= k - 1 && a_cur.len() >= k - 1 {
            // K_{k−1,k−1} found: b_prime × a_cur ⊆ E. Emit the K_k witness
            // via the §2.1 matching-contraction construction: patches are
            // {b_i, a_i} pairs for i < k−2, plus the two leftovers.
            let mut patches: Vec<Vec<u32>> = Vec::new();
            for i in 0..(k - 2) {
                patches.push(vec![b_prime[i], a_cur[i]]);
            }
            patches.push(vec![b_prime[k - 2]]);
            patches.push(vec![a_cur[k - 2]]);
            let w = MinorWitness { patches };
            debug_assert!(w.verify(g).is_ok(), "K_{{k-1,k-1}} contraction failed");
            return Ok(MinorFreeOutcome::Minor(w));
        }
    }
}

/// **Theorem 5.3** (excluded minor): in a graph with no `K_k` minor, find
/// `Z` with `|Z| < k−1` and a d-scattered set `S` of size ≥ m in `G − Z`.
///
/// The proof's d-stage iteration, with each Ramsey appeal replaced by a
/// greedy search and each "contradiction" branch emitting the clique-minor
/// witness the proof constructs at that point:
///
/// - stage i holds an i-scattered set `S_i` of `G − Z_i`;
/// - the i-neighborhood intersection graph on `S_i` either has a big clique
///   (→ `K_k` minor witness from the neighborhood patches) or a big
///   independent set `I` (greedy);
/// - the bipartite graph between `I`'s neighborhoods and their outside
///   neighbors goes through [`bipartite_step`], upgrading `I` to an
///   (i+1)-scattered set after deleting `B′ ⊆ Z`.
pub fn excluded_minor(g: &Graph, k: usize, d: usize, m: usize) -> MinorFreeOutcome {
    try_excluded_minor(g, k, d, m).unwrap_or_else(|e| panic!("{e}"))
}

/// Non-panicking [`excluded_minor`]: rejects `k < 2` as a typed
/// [`ScatteredError`] instead of asserting.
pub fn try_excluded_minor(
    g: &Graph,
    k: usize,
    d: usize,
    m: usize,
) -> Result<MinorFreeOutcome, ScatteredError> {
    if k < 2 {
        return Err(ScatteredError::MinorOrderTooSmall { k });
    }
    let mut gauge = Budget::unlimited().gauge();
    Ok(excluded_minor_gauged(g, k, d, m, &mut gauge)
        .unwrap_or_else(|_| unreachable!("an unlimited budget cannot exhaust")))
}

/// Budgeted [`excluded_minor`]: the stage iteration and its inner
/// bipartite absorption loops charge one shared budget (a fuel unit per
/// surviving vertex per round). On exhaustion the partial is the
/// extraction's progress so far, **downgraded to a valid answer**: the
/// accumulated deletion set `Z` with the largest d-scattered subset of the
/// current survivors (so `partial.verify(g, d)` always holds), possibly
/// smaller than the `m` a completed run would reach.
pub fn excluded_minor_with_budget(
    g: &Graph,
    k: usize,
    d: usize,
    m: usize,
    budget: &Budget,
) -> Result<Budgeted<MinorFreeOutcome, ScatteredSet>, ScatteredError> {
    if k < 2 {
        return Err(ScatteredError::MinorOrderTooSmall { k });
    }
    let mut gauge = budget.gauge();
    Ok(excluded_minor_gauged(g, k, d, m, &mut gauge)
        .map_err(|(partial, stop)| stop.with_partial(partial)))
}

fn excluded_minor_gauged(
    g: &Graph,
    k: usize,
    d: usize,
    m: usize,
    gauge: &mut Gauge,
) -> Result<MinorFreeOutcome, (ScatteredSet, Stop)> {
    let n = g.vertex_count();
    let mut z: Vec<u32> = Vec::new();
    let mut s: Vec<u32> = g.vertices().collect();
    for stage in 0..d {
        let i = stage; // S is currently i-scattered in G − Z.
                       // Progress downgraded to a d-scattered answer, for exhaustion
                       // partials at this stage.
        let partial_now = |z: &[u32], s: &[u32]| {
            let removed: BitSet = BitSet::from_indices(n, z.iter().map(|&v| v as usize));
            let (h, old_of_new) = g.minus(&removed);
            let mut new_of_old = vec![u32::MAX; n];
            for (new, &old) in old_of_new.iter().enumerate() {
                new_of_old[old as usize] = new as u32;
            }
            let s_h: Vec<u32> = s
                .iter()
                .map(|&v| new_of_old[v as usize])
                .filter(|&v| v != u32::MAX)
                .collect();
            let set = filter_d_scattered(&h, &s_h, d)
                .into_iter()
                .map(|u| old_of_new[u as usize])
                .collect();
            ScatteredSet {
                deleted: z.to_vec(),
                set,
            }
        };
        if let Err(stop) = gauge.tick(1 + s.len() as u64) {
            return Err((partial_now(&z, &s), stop));
        }
        let removed: BitSet = BitSet::from_indices(n, z.iter().map(|&v| v as usize));
        let (h, old_of_new) = g.minus(&removed);
        let mut new_of_old = vec![u32::MAX; n];
        for (new, &old) in old_of_new.iter().enumerate() {
            new_of_old[old as usize] = new as u32;
        }
        // i-neighborhoods (in G − Z) of the current S.
        let s_h: Vec<u32> = s
            .iter()
            .map(|&v| new_of_old[v as usize])
            .filter(|&v| v != u32::MAX)
            .collect();
        let nbhd = Neighborhoods::compute(&h, i);
        // Independent set in the neighborhood-intersection-or-adjacency
        // graph (greedy): keep u if N_i(u) ∪ its boundary avoids all kept
        // neighborhoods — i.e. kept neighborhoods pairwise non-adjacent.
        let mut kept: Vec<u32> = Vec::new();
        let mut blocked_region = BitSet::new(h.vertex_count());
        for &u in &s_h {
            let nu = nbhd.of(u);
            // Check: nu and its 1-boundary must avoid every kept
            // neighborhood; equivalently N_{i+1}(u) ∩ kept-neighborhoods=∅.
            let nu1 = h.neighborhood(u, i + 1);
            if nu1.is_disjoint(&blocked_region) {
                kept.push(u);
                blocked_region.union_with(nu);
            } else {
                let _ = nu;
            }
        }
        // (The clique branch of the Ramsey dichotomy: if the greedy
        // independent set is small because neighborhoods massively overlap,
        // the paper finds a K_k minor among the patches. We detect the
        // specific situation the bipartite step reports instead.)
        if kept.len() < m {
            // Not enough material; the input was too small (or minor-laden
            // in a way the bipartite step will expose next round). Report
            // the largest d-scattered subset of the survivors so the
            // promise ("the returned set is d-scattered in G − Z") holds
            // even on under-sized inputs.
            let set = filter_d_scattered(&h, &kept, d)
                .into_iter()
                .map(|u| old_of_new[u as usize])
                .collect();
            return Ok(MinorFreeOutcome::Scattered(ScatteredSet {
                deleted: z,
                set,
            }));
        }
        // Bipartite graph: A = kept (as neighborhood super-vertices),
        // B = outside neighbors of those neighborhoods. Build it explicitly
        // as a graph on h's vertices: A-side uses the *center* u as the
        // representative; edges u–b when b is adjacent to N_i(u).
        let mut bip = Graph::new(h.vertex_count());
        let mut a_side = BitSet::new(h.vertex_count());
        for &u in &kept {
            a_side.insert(u as usize);
            let nu = nbhd.of(u);
            for x in nu.iter() {
                for &b in h.neighbors(x as u32) {
                    if !nu.contains(b as usize) {
                        bip.add_edge(u, b);
                    }
                }
            }
        }
        // Intermediate stages keep as many survivors as possible; only
        // the final stage may stop at the target m.
        let stage_target = if stage + 1 == d { m } else { usize::MAX };
        let step = match bipartite_step_gauged(&bip, &a_side, k, stage_target, gauge) {
            Ok(step) => step,
            Err((_, stop)) => return Err((partial_now(&z, &s), stop)),
        };
        match step {
            MinorFreeOutcome::Scattered(ss) => {
                // Map back: deleted B' are h-vertices → original ids.
                for &b in &ss.deleted {
                    z.push(old_of_new[b as usize]);
                }
                s = ss.set.iter().map(|&u| old_of_new[u as usize]).collect();
                if z.len() >= k - 1 {
                    // The accumulated Z is adjacent to every neighborhood:
                    // the proof's closing K_{k−1,k−1} argument. Build the
                    // witness in the ORIGINAL graph: patches = i-neighbor-
                    // hoods of k−1 survivors (+ their centers), paired with
                    // the Z elements via the matching contraction.
                    if let Some(w) = closing_minor_witness(g, &z, &s, i + 1, k) {
                        return Ok(MinorFreeOutcome::Minor(w));
                    }
                    // Couldn't assemble the witness (can happen when Z
                    // accumulated across stages without full adjacency —
                    // our greedy deviates from the proof's exact sets);
                    // fall through and report the scattered set anyway.
                }
            }
            MinorFreeOutcome::Minor(w) => {
                // Witness is in `bip`'s coordinates = h's coordinates;
                // translate to original ids. Its edges exist in `bip`, not
                // necessarily in g — expand each bip-edge patch through the
                // neighborhood structure: patch {u, b} means b adjacent to
                // N_i(u), so take the whole N_i(u) ∪ {b} as the patch.
                let mut patches = Vec::new();
                for p in &w.patches {
                    let mut patch = BitSet::new(h.vertex_count());
                    for &v in p {
                        if a_side.contains(v as usize) {
                            patch.union_with(nbhd.of(v));
                        } else {
                            patch.insert(v as usize);
                        }
                    }
                    patches.push(patch.iter().map(|x| old_of_new[x]).collect::<Vec<u32>>());
                }
                let w2 = MinorWitness { patches };
                if w2.verify(g).is_ok() {
                    return Ok(MinorFreeOutcome::Minor(w2));
                }
                // Witness didn't survive translation (greedy drift): stop
                // with the largest d-scattered subset of the survivors.
                let set = filter_d_scattered(&h, &kept, d)
                    .into_iter()
                    .map(|u| old_of_new[u as usize])
                    .collect();
                return Ok(MinorFreeOutcome::Scattered(ScatteredSet {
                    deleted: z,
                    set,
                }));
            }
        }
    }
    if s.len() > m {
        s.truncate(m);
    }
    Ok(MinorFreeOutcome::Scattered(ScatteredSet {
        deleted: z,
        set: s,
    }))
}

/// Greedily filter `candidates` down to a d-scattered subset of `g`.
fn filter_d_scattered(g: &Graph, candidates: &[u32], d: usize) -> Vec<u32> {
    let mut out: Vec<u32> = Vec::new();
    let mut blocked = BitSet::new(g.vertex_count());
    for &v in candidates {
        if blocked.contains(v as usize) {
            continue;
        }
        out.push(v);
        blocked.union_with(&g.neighborhood(v, 2 * d));
    }
    out
}

/// Assemble the proof's closing `K_{k−1,k−1} ⇒ K_k` witness: `k−1`
/// neighborhood patches around survivors, each adjacent to all of `z`.
fn closing_minor_witness(
    g: &Graph,
    z: &[u32],
    survivors: &[u32],
    radius: usize,
    k: usize,
) -> Option<MinorWitness> {
    if z.len() < k - 1 || survivors.len() < k - 1 {
        return None;
    }
    let removed: BitSet = BitSet::from_indices(g.vertex_count(), z.iter().map(|&v| v as usize));
    let (h, old_of_new) = g.minus(&removed);
    let mut new_of_old = vec![u32::MAX; g.vertex_count()];
    for (new, &old) in old_of_new.iter().enumerate() {
        new_of_old[old as usize] = new as u32;
    }
    // Patches: neighborhoods of the first k−1 survivors (in G − Z),
    // translated back; sides paired by the matching contraction.
    let mut a_patches: Vec<Vec<u32>> = Vec::new();
    for &sv in survivors.iter().take(k - 1) {
        let c = new_of_old[sv as usize];
        if c == u32::MAX {
            return None;
        }
        let nb = h.neighborhood(c, radius);
        a_patches.push(nb.iter().map(|x| old_of_new[x]).collect());
    }
    let mut patches: Vec<Vec<u32>> = Vec::new();
    for i in 0..(k - 2) {
        let mut p = a_patches[i].clone();
        p.push(z[i]);
        patches.push(p);
    }
    patches.push(a_patches[k - 2].clone());
    patches.push(vec![z[k - 2]]);
    let w = MinorWitness { patches };
    w.verify(g).ok().map(|_| w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elimination::treewidth_upper_bound;
    use hp_structures::generators::{
        complete_bipartite, cycle, grid, ktree, path, random_bounded_degree, random_partial_ktree,
        random_tree, star,
    };

    #[test]
    fn greedy_scattered_on_path() {
        // Path of 13 vertices, d=1: greedy takes 0, 3, 6, 9, 12.
        let g = path(13);
        let s = greedy_scattered(&g, 1);
        assert_eq!(s, vec![0, 3, 6, 9, 12]);
        assert!(hp_structures::is_d_scattered(&g, 1, &s));
    }

    #[test]
    fn lemma_3_4_bounded_degree() {
        // Degree ≤ 3 graphs above the bound always yield the set.
        for seed in 0..5 {
            let g = random_bounded_degree(200, 3, 2000, seed);
            let (d, m) = (2, 4);
            // Paper bound: m·k^d = 36 < 200 vertices, guaranteed.
            let s = bounded_degree(&g, d, m).expect("above the Lemma 3.4 bound");
            assert_eq!(s.len(), m);
            assert!(hp_structures::is_d_scattered(&g, d, &s));
        }
    }

    #[test]
    fn star_needs_deletion() {
        // The paper's motivating example: S_n has no 2-scattered pair, but
        // deleting the hub scatters everything. Lemma 4.2 with the obvious
        // star decomposition must delete the hub.
        let g = star(30);
        let mut bags = vec![vec![0u32]];
        let mut edges = Vec::new();
        for i in 1..=30u32 {
            bags.push(vec![0, i]);
            edges.push((0, i as usize));
        }
        let td = TreeDecomposition::new(bags, edges);
        td.validate(&g).unwrap();
        let out = bounded_treewidth(&g, &td, 2, 5).expect("star case");
        assert!(out.deleted.contains(&0), "must delete the hub");
        assert_eq!(out.set.len(), 5);
        out.verify(&g, 2).unwrap();
    }

    #[test]
    fn long_path_uses_sunflower_case() {
        let g = path(100);
        let bags: Vec<Vec<u32>> = (0..99).map(|i| vec![i as u32, i as u32 + 1]).collect();
        let edges: Vec<(usize, usize)> = (1..99).map(|i| (i - 1, i)).collect();
        let td = TreeDecomposition::new(bags, edges);
        let out = bounded_treewidth(&g, &td, 2, 6).expect("long path scatters");
        assert!(out.deleted.len() <= 2); // k = 2 for width-1 decompositions
        assert!(out.set.len() == 6);
        out.verify(&g, 2).unwrap();
    }

    #[test]
    fn lemma_4_2_on_random_partial_ktrees() {
        for seed in 0..4 {
            let g = random_partial_ktree(2, 150, 0.7, seed);
            let (w, td) = treewidth_upper_bound(&g);
            assert!(w <= 2);
            if let Some(out) = bounded_treewidth(&g, &td, 1, 4) {
                assert!(out.deleted.len() <= w + 1, "deleted {:?}", out.deleted);
                out.verify(&g, 1).unwrap();
            } else {
                panic!("150-vertex partial 2-tree should scatter (seed {seed})");
            }
        }
    }

    #[test]
    fn lemma_4_2_on_random_trees() {
        for seed in 0..5 {
            let g = random_tree(120, seed);
            let (_, td) = treewidth_upper_bound(&g);
            let out = bounded_treewidth(&g, &td, 1, 5)
                .unwrap_or_else(|| panic!("tree of 120 vertices, seed {seed}"));
            assert!(out.deleted.len() <= 2);
            out.verify(&g, 1).unwrap();
        }
    }

    #[test]
    fn bipartite_step_on_minor_free_input() {
        // A perfect matching n×n: no K_3 minor (it's a forest), so the step
        // with k=3 must succeed with B' empty-ish.
        let n = 10;
        let mut g = Graph::new(2 * n);
        for i in 0..n as u32 {
            g.add_edge(i, n as u32 + i);
        }
        let a: BitSet = BitSet::from_indices(2 * n, 0..n);
        match bipartite_step(&g, &a, 3, 5) {
            MinorFreeOutcome::Scattered(ss) => {
                assert!(ss.deleted.len() < 2);
                assert!(ss.set.len() >= 5);
                ss.verify(&g, 1).unwrap();
            }
            MinorFreeOutcome::Minor(_) => panic!("matching has no K_3 minor"),
        }
    }

    #[test]
    fn bipartite_step_with_universal_vertex() {
        // A on the left, single universal b: all of A shares b; the step
        // must put b into B' and then A is 1-scattered.
        let n = 12;
        let mut g = Graph::new(n + 1);
        for i in 0..n as u32 {
            g.add_edge(i, n as u32);
        }
        let a: BitSet = BitSet::from_indices(n + 1, 0..n);
        match bipartite_step(&g, &a, 4, 8) {
            MinorFreeOutcome::Scattered(ss) => {
                assert_eq!(ss.deleted, vec![n as u32]);
                assert!(ss.set.len() >= 8);
                ss.verify(&g, 1).unwrap();
            }
            MinorFreeOutcome::Minor(_) => panic!("star has no K_4 minor"),
        }
    }

    #[test]
    fn bipartite_step_detects_dense_minor() {
        // K_{3,3} with k = 4 (K_4 ≼ K_{3,3}): the step must report a minor
        // witness rather than fabricate a scattered set.
        let g = complete_bipartite(4, 4);
        let a: BitSet = BitSet::from_indices(8, 0..4);
        match bipartite_step(&g, &a, 4, 4) {
            MinorFreeOutcome::Minor(w) => {
                assert_eq!(w.order(), 4);
                w.verify(&g).unwrap();
            }
            MinorFreeOutcome::Scattered(ss) => {
                panic!("expected K_4 witness, got scattered {ss:?}")
            }
        }
    }

    #[test]
    fn theorem_5_3_on_grids() {
        // Grids are planar ⇒ no K_5 minor. d=1, m=6 on a 12×12 grid.
        let g = grid(12, 12);
        match excluded_minor(&g, 5, 1, 6) {
            MinorFreeOutcome::Scattered(ss) => {
                assert!(ss.deleted.len() < 4, "|Z| must stay < k−1");
                assert!(ss.set.len() >= 6, "got {}", ss.set.len());
                ss.verify(&g, 1).unwrap();
            }
            MinorFreeOutcome::Minor(w) => {
                panic!("grid is K_5-minor-free but got witness {w:?}")
            }
        }
    }

    #[test]
    fn theorem_5_3_deeper_scatter_on_grid() {
        let g = grid(16, 16);
        match excluded_minor(&g, 5, 2, 4) {
            MinorFreeOutcome::Scattered(ss) => {
                assert!(ss.set.len() >= 4, "got {}", ss.set.len());
                ss.verify(&g, 2).unwrap();
            }
            MinorFreeOutcome::Minor(w) => panic!("unexpected witness {w:?}"),
        }
    }

    #[test]
    fn theorem_5_3_trees_scatter_easily() {
        for seed in 0..3 {
            let g = random_tree(150, seed);
            match excluded_minor(&g, 3, 1, 6) {
                MinorFreeOutcome::Scattered(ss) => {
                    assert!(ss.deleted.len() < 2);
                    assert!(ss.set.len() >= 6);
                    ss.verify(&g, 1).unwrap();
                }
                MinorFreeOutcome::Minor(w) => panic!("tree has no K_3 minor: {w:?}"),
            }
        }
    }

    #[test]
    fn scattered_set_verify_rejects_bad() {
        let g = cycle(6);
        let bad = ScatteredSet {
            deleted: vec![],
            set: vec![0, 1],
        };
        assert!(bad.verify(&g, 1).is_err());
        let deleted_overlap = ScatteredSet {
            deleted: vec![0],
            set: vec![0, 3],
        };
        assert!(deleted_overlap.verify(&g, 1).is_err());
        let good = ScatteredSet {
            deleted: vec![],
            set: vec![0, 3],
        };
        good.verify(&g, 1).unwrap();
    }

    #[test]
    fn ktree_scattering_with_deletion() {
        let g = ktree(3, 80);
        let (w, td) = treewidth_upper_bound(&g);
        assert_eq!(w, 3);
        // The canonical 3-tree is "path-like": its decomposition has a long
        // path, so Lemma 4.2 should fire with |B| ≤ 4.
        if let Some(out) = bounded_treewidth(&g, &td, 1, 3) {
            assert!(out.deleted.len() <= 4);
            out.verify(&g, 1).unwrap();
        }
        // (None is acceptable for small m only if the sunflower misses —
        // assert it actually succeeded:)
        assert!(bounded_treewidth(&g, &td, 1, 3).is_some());
    }

    #[test]
    fn try_fns_reject_small_minor_order() {
        let g = grid(4, 4);
        let a: BitSet = BitSet::from_indices(16, 0..4);
        let e = try_bipartite_step(&g, &a, 1, 2).expect_err("k = 1 is malformed");
        assert_eq!(e, ScatteredError::MinorOrderTooSmall { k: 1 });
        assert!(e.to_string().contains("k = 1"));
        assert!(try_excluded_minor(&g, 0, 1, 2).is_err());
        assert!(excluded_minor_with_budget(&g, 1, 1, 2, &Budget::unlimited()).is_err());
    }

    #[test]
    fn budgeted_bounded_treewidth_matches_unbudgeted() {
        let g = path(100);
        let bags: Vec<Vec<u32>> = (0..99).map(|i| vec![i as u32, i as u32 + 1]).collect();
        let edges: Vec<(usize, usize)> = (1..99).map(|i| (i - 1, i)).collect();
        let td = TreeDecomposition::new(bags, edges);
        let full = bounded_treewidth(&g, &td, 2, 6);
        assert_eq!(
            bounded_treewidth_with_budget(&g, &td, 2, 6, &Budget::unlimited()).unwrap(),
            full
        );
        let e = bounded_treewidth_with_budget(&g, &td, 2, 6, &Budget::fuel(1))
            .expect_err("one fuel unit cannot scan the decomposition");
        assert_eq!(e.resource, hp_guard::Resource::Fuel);
    }

    #[test]
    fn budgeted_excluded_minor_partial_is_valid_scattered_set() {
        let g = grid(12, 12);
        // Unlimited budget agrees with the unbudgeted extraction.
        match excluded_minor_with_budget(&g, 5, 1, 6, &Budget::unlimited()).unwrap() {
            Ok(MinorFreeOutcome::Scattered(ss)) => ss.verify(&g, 1).unwrap(),
            other => panic!("expected scattered outcome, got {other:?}"),
        }
        // Starved budgets at every small fuel level: the run either finishes
        // or yields a partial that is itself a valid 1-scattered answer.
        let mut exhausted_at_least_once = false;
        for fuel in [1u64, 10, 50, 200, 1000] {
            match excluded_minor_with_budget(&g, 5, 1, 6, &Budget::fuel(fuel)).unwrap() {
                Ok(_) => {}
                Err(e) => {
                    exhausted_at_least_once = true;
                    e.partial.verify(&g, 1).unwrap();
                }
            }
        }
        assert!(exhausted_at_least_once, "tiny fuel must exhaust on a grid");
    }
}
