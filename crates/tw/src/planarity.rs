//! Planarity testing (Demoucron–Malgrange–Pertuiset).
//!
//! §5 of the paper: *"the collection of planar graphs … by Kuratowski's
//! Theorem, exclude K₅ and K₃,₃ as minors, but have unbounded treewidth"*
//! — the flagship example of Theorem 5.4 beyond bounded treewidth. This
//! module decides planarity exactly, so the experiments can validate class
//! membership of their inputs instead of trusting the generators.
//!
//! Algorithm: Demoucron's incremental face-embedding, run per biconnected
//! component (a graph is planar iff each biconnected component is), with
//! the Euler-formula edge-count cut-off as a fast rejection.

use hp_structures::{BitSet, Graph};

/// Is `g` planar?
pub fn is_planar(g: &Graph) -> bool {
    let n = g.vertex_count();
    if n <= 4 {
        return true;
    }
    if g.edge_count() > 3 * n - 6 {
        return false;
    }
    for comp in biconnected_components(g) {
        if !demoucron(&comp) {
            return false;
        }
    }
    true
}

/// The biconnected components of `g`, as edge-induced subgraphs re-indexed
/// densely (Hopcroft–Tarjan lowpoint algorithm, iterative).
pub fn biconnected_components(g: &Graph) -> Vec<Graph> {
    let n = g.vertex_count();
    let mut disc = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut timer = 0usize;
    let mut estack: Vec<(u32, u32)> = Vec::new();
    let mut comps: Vec<Vec<(u32, u32)>> = Vec::new();

    #[derive(Clone)]
    struct Frame {
        v: u32,
        parent: u32,
        next: usize,
    }
    for root in 0..n as u32 {
        if disc[root as usize] != usize::MAX {
            continue;
        }
        let mut stack = vec![Frame {
            v: root,
            parent: u32::MAX,
            next: 0,
        }];
        disc[root as usize] = timer;
        low[root as usize] = timer;
        timer += 1;
        while let Some(top) = stack.last().cloned() {
            let v = top.v;
            let nbrs = g.neighbors(v);
            if top.next < nbrs.len() {
                stack.last_mut().expect("nonempty").next += 1;
                let w = nbrs[top.next];
                if disc[w as usize] == usize::MAX {
                    estack.push((v, w));
                    disc[w as usize] = timer;
                    low[w as usize] = timer;
                    timer += 1;
                    stack.push(Frame {
                        v: w,
                        parent: v,
                        next: 0,
                    });
                } else if w != top.parent && disc[w as usize] < disc[v as usize] {
                    estack.push((v, w));
                    low[v as usize] = low[v as usize].min(disc[w as usize]);
                }
            } else {
                stack.pop();
                if let Some(up) = stack.last() {
                    let u = up.v;
                    low[u as usize] = low[u as usize].min(low[v as usize]);
                    if low[v as usize] >= disc[u as usize] {
                        // u is an articulation point (or root): pop the
                        // component's edges.
                        let mut comp = Vec::new();
                        while let Some(&(a, b)) = estack.last() {
                            if disc[a as usize] >= disc[v as usize] || (a == u && b == v) {
                                comp.push((a, b));
                                estack.pop();
                                if a == u && b == v {
                                    break;
                                }
                            } else {
                                break;
                            }
                        }
                        if !comp.is_empty() {
                            comps.push(comp);
                        }
                    }
                }
            }
        }
        // Leftover edges (shouldn't happen, but be safe).
        if !estack.is_empty() {
            comps.push(std::mem::take(&mut estack));
        }
    }
    // Re-index each component densely.
    comps
        .into_iter()
        .map(|edges| {
            let mut verts: Vec<u32> = edges.iter().flat_map(|&(a, b)| [a, b]).collect();
            verts.sort_unstable();
            verts.dedup();
            let pos = |x: u32| verts.binary_search(&x).expect("vertex present") as u32;
            let mut h = Graph::new(verts.len());
            for (a, b) in edges {
                h.add_edge(pos(a), pos(b));
            }
            h
        })
        .collect()
}

/// Demoucron's algorithm on a biconnected graph.
fn demoucron(g: &Graph) -> bool {
    let n = g.vertex_count();
    let m = g.edge_count();
    if m <= 3 || n <= 3 {
        return true;
    }
    if m > 3 * n - 6 {
        return false;
    }
    // 1. Find a cycle (exists: biconnected with ≥ 2 edges beyond a tree).
    let Some(cycle) = find_cycle(g) else {
        return true; // acyclic ⇒ planar
    };
    // Embedded subgraph state.
    let mut embedded_v = BitSet::new(n);
    let mut embedded_e: std::collections::BTreeSet<(u32, u32)> = Default::default();
    let mut faces: Vec<Vec<u32>> = Vec::new();
    let key = |a: u32, b: u32| if a < b { (a, b) } else { (b, a) };
    for &v in &cycle {
        embedded_v.insert(v as usize);
    }
    for i in 0..cycle.len() {
        embedded_e.insert(key(cycle[i], cycle[(i + 1) % cycle.len()]));
    }
    faces.push(cycle.clone());
    faces.push(cycle.clone());
    // 2. Iterate: fragments → admissible faces → embed a path.
    loop {
        if embedded_e.len() == m {
            return true;
        }
        let fragments = compute_fragments(g, &embedded_v, &embedded_e);
        if fragments.is_empty() {
            return true;
        }
        // Admissible faces per fragment.
        let mut chosen: Option<(usize, usize)> = None; // (fragment, face)
        let mut single_choice: Option<(usize, usize)> = None;
        for (fi, frag) in fragments.iter().enumerate() {
            let mut admissible = Vec::new();
            for (face_i, face) in faces.iter().enumerate() {
                let all_in = frag.attachments.iter().all(|&a| face.contains(&a));
                if all_in {
                    admissible.push(face_i);
                }
            }
            match admissible.len() {
                0 => return false, // stuck: nonplanar
                1 => {
                    single_choice = Some((fi, admissible[0]));
                }
                _ => {
                    if chosen.is_none() {
                        chosen = Some((fi, admissible[0]));
                    }
                }
            }
        }
        let (fi, face_i) = single_choice.or(chosen).expect("some fragment");
        let frag = &fragments[fi];
        // 3. A path through the fragment between two attachment points.
        let path = fragment_path(g, frag, &embedded_v);
        // 4. Embed: split the face.
        let face = faces[face_i].clone();
        let (u, v) = (path[0], *path.last().expect("path nonempty"));
        let iu = face.iter().position(|&x| x == u).expect("u on face");
        let iv = face.iter().position(|&x| x == v).expect("v on face");
        let (lo, hi) = if iu <= iv { (iu, iv) } else { (iv, iu) };
        // Arc 1: face[lo..=hi]; Arc 2: face[hi..] + face[..=lo].
        let arc1: Vec<u32> = face[lo..=hi].to_vec();
        let mut arc2: Vec<u32> = face[hi..].to_vec();
        arc2.extend_from_slice(&face[..=lo]);
        // Path oriented from face[lo]'s endpoint to face[hi]'s endpoint.
        let mut p = path.clone();
        if p[0] != face[lo] {
            p.reverse();
        }
        let interior: Vec<u32> = p[1..p.len() - 1].to_vec();
        // New faces: arc1 + reversed interior, arc2 + interior.
        let mut f1 = arc1;
        f1.extend(interior.iter().rev());
        let mut f2 = arc2;
        f2.extend(interior.iter());
        faces[face_i] = f1;
        faces.push(f2);
        // Mark path embedded.
        for w in &p {
            embedded_v.insert(*w as usize);
        }
        for wpair in p.windows(2) {
            embedded_e.insert(key(wpair[0], wpair[1]));
        }
    }
}

/// A fragment (bridge) relative to the embedded subgraph.
struct Fragment {
    /// Attachment vertices (embedded vertices incident to the fragment).
    attachments: Vec<u32>,
    /// Non-embedded vertices of the fragment (empty for a chord).
    interior: Vec<u32>,
    /// A representative chord, when the fragment is a single edge.
    chord: Option<(u32, u32)>,
}

fn compute_fragments(
    g: &Graph,
    embedded_v: &BitSet,
    embedded_e: &std::collections::BTreeSet<(u32, u32)>,
) -> Vec<Fragment> {
    let n = g.vertex_count();
    let key = |a: u32, b: u32| if a < b { (a, b) } else { (b, a) };
    let mut fragments = Vec::new();
    // Chords: non-embedded edges between embedded vertices.
    for (a, b) in g.edges() {
        if embedded_v.contains(a as usize)
            && embedded_v.contains(b as usize)
            && !embedded_e.contains(&key(a, b))
        {
            fragments.push(Fragment {
                attachments: vec![a, b],
                interior: vec![],
                chord: Some((a, b)),
            });
        }
    }
    // Components of G − embedded vertices, plus their attachments.
    let mut seen = BitSet::new(n);
    for s in 0..n as u32 {
        if embedded_v.contains(s as usize) || seen.contains(s as usize) {
            continue;
        }
        let mut comp = vec![s];
        let mut attach: Vec<u32> = Vec::new();
        seen.insert(s as usize);
        let mut stack = vec![s];
        while let Some(x) = stack.pop() {
            for &y in g.neighbors(x) {
                if embedded_v.contains(y as usize) {
                    if !attach.contains(&y) {
                        attach.push(y);
                    }
                } else if seen.insert(y as usize) {
                    comp.push(y);
                    stack.push(y);
                }
            }
        }
        attach.sort_unstable();
        fragments.push(Fragment {
            attachments: attach,
            interior: comp,
            chord: None,
        });
    }
    fragments
}

/// A path between two attachment vertices through the fragment.
fn fragment_path(g: &Graph, frag: &Fragment, embedded_v: &BitSet) -> Vec<u32> {
    if let Some((a, b)) = frag.chord {
        return vec![a, b];
    }
    // BFS from one attachment through interior vertices to another
    // attachment.
    let start = frag.attachments[0];
    let n = g.vertex_count();
    let interior: BitSet = frag
        .interior
        .iter()
        .map(|&v| v as usize)
        .collect::<Vec<_>>()
        .into_iter()
        .fold(BitSet::new(n), |mut s, i| {
            s.insert(i);
            s
        });
    let mut parent = vec![u32::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    // Seed: interior neighbors of `start`.
    for &y in g.neighbors(start) {
        if interior.contains(y as usize) && parent[y as usize] == u32::MAX {
            parent[y as usize] = start;
            queue.push_back(y);
        }
    }
    while let Some(x) = queue.pop_front() {
        for &y in g.neighbors(x) {
            if embedded_v.contains(y as usize) {
                if frag.attachments.contains(&y) && y != start {
                    // Reconstruct path start → … → y.
                    let mut path = vec![y, x];
                    let mut cur = x;
                    while parent[cur as usize] != start {
                        cur = parent[cur as usize];
                        path.push(cur);
                    }
                    path.push(start);
                    path.reverse();
                    return path;
                }
            } else if interior.contains(y as usize) && parent[y as usize] == u32::MAX {
                parent[y as usize] = x;
                queue.push_back(y);
            }
        }
    }
    // Single-attachment fragment on a biconnected graph cannot happen; a
    // degenerate fallback keeps us total.
    vec![start]
}

/// Find any cycle in `g`, as a vertex list.
fn find_cycle(g: &Graph) -> Option<Vec<u32>> {
    let n = g.vertex_count();
    let mut parent = vec![u32::MAX; n];
    let mut state = vec![0u8; n]; // 0 unseen, 1 active, 2 done
    for root in 0..n as u32 {
        if state[root as usize] != 0 {
            continue;
        }
        let mut stack = vec![(root, u32::MAX, 0usize)];
        state[root as usize] = 1;
        while let Some(&mut (v, p, ref mut next)) = stack.last_mut() {
            let nbrs = g.neighbors(v);
            if *next < nbrs.len() {
                let w = nbrs[*next];
                *next += 1;
                if w == p {
                    continue;
                }
                if state[w as usize] == 1 {
                    // Cycle: w … v.
                    let mut cycle = vec![v];
                    let mut cur = v;
                    while cur != w {
                        cur = parent[cur as usize];
                        cycle.push(cur);
                    }
                    cycle.reverse();
                    return Some(cycle);
                }
                if state[w as usize] == 0 {
                    state[w as usize] = 1;
                    parent[w as usize] = v;
                    stack.push((w, v, 0));
                }
            } else {
                state[v as usize] = 2;
                stack.pop();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use hp_structures::generators::{
        bicycle, clique, complete_bipartite, cycle, grid, ktree, path, random_partial_ktree,
        random_tree, star, wheel,
    };

    #[test]
    fn small_graphs_planar() {
        assert!(is_planar(&path(5)));
        assert!(is_planar(&cycle(6)));
        assert!(is_planar(&star(8)));
        assert!(is_planar(&clique(4)));
    }

    #[test]
    fn kuratowski_graphs_nonplanar() {
        assert!(!is_planar(&clique(5)));
        assert!(!is_planar(&complete_bipartite(3, 3)));
        assert!(!is_planar(&clique(6)));
        assert!(!is_planar(&complete_bipartite(3, 4)));
    }

    #[test]
    fn k5_minus_edge_planar() {
        let mut g = clique(5);
        g.remove_edge(0, 1);
        assert!(is_planar(&g));
        // K33 minus an edge too.
        let mut h = complete_bipartite(3, 3);
        h.remove_edge(0, 3);
        assert!(is_planar(&h));
    }

    #[test]
    fn grids_planar() {
        assert!(is_planar(&grid(4, 4)));
        assert!(is_planar(&grid(6, 7)));
        assert!(is_planar(&grid(10, 10)));
    }

    #[test]
    fn wheels_and_bicycles_planar() {
        for n in [3usize, 5, 8, 12] {
            assert!(is_planar(&wheel(n)), "W_{n}");
        }
        assert!(is_planar(&bicycle(7)));
    }

    #[test]
    fn petersen_nonplanar() {
        // The Petersen graph: outer C5, inner 5-star polygon, spokes.
        let mut g = Graph::new(10);
        for i in 0..5u32 {
            g.add_edge(i, (i + 1) % 5);
            g.add_edge(5 + i, 5 + (i + 2) % 5);
            g.add_edge(i, 5 + i);
        }
        assert_eq!(g.edge_count(), 15);
        assert!(!is_planar(&g));
    }

    #[test]
    fn partial_2trees_planar() {
        // Series-parallel graphs (treewidth ≤ 2) are planar.
        for seed in 0..6 {
            let g = random_partial_ktree(2, 40, 0.9, seed);
            assert!(is_planar(&g), "seed {seed}");
        }
    }

    #[test]
    fn k4_trees_can_be_nonplanar() {
        // The canonical 4-tree contains K5 (first 5 vertices).
        let g = ktree(4, 10);
        assert!(!is_planar(&g));
    }

    #[test]
    fn trees_and_forests_planar() {
        for seed in 0..4 {
            assert!(is_planar(&random_tree(30, seed)));
        }
        let mut forest = Graph::new(9);
        forest.add_edge(0, 1);
        forest.add_edge(3, 4);
        forest.add_edge(6, 7);
        assert!(is_planar(&forest));
    }

    #[test]
    fn biconnected_components_structure() {
        // Two triangles sharing a vertex: 2 biconnected components.
        let mut g = Graph::new(5);
        for (a, b) in [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)] {
            g.add_edge(a, b);
        }
        let comps = biconnected_components(&g);
        assert_eq!(comps.len(), 2);
        for c in &comps {
            assert_eq!(c.vertex_count(), 3);
            assert_eq!(c.edge_count(), 3);
        }
        // A path: every edge its own component.
        assert_eq!(biconnected_components(&path(5)).len(), 4);
        // A cycle: one component.
        assert_eq!(biconnected_components(&cycle(7)).len(), 1);
    }

    #[test]
    fn nonplanar_glued_at_cut_vertex() {
        // K5 and a long path glued at a vertex: still nonplanar.
        let mut g = Graph::new(9);
        for a in 0..5u32 {
            for b in (a + 1)..5 {
                g.add_edge(a, b);
            }
        }
        for i in 4..8u32 {
            g.add_edge(i, i + 1);
        }
        assert!(!is_planar(&g));
    }

    #[test]
    fn dense_planar_triangulation() {
        // A maximal planar graph: the octahedron (K_{2,2,2}), 6 vertices,
        // 12 = 3·6 − 6 edges.
        let mut g = Graph::new(6);
        for a in 0..6u32 {
            for b in (a + 1)..6 {
                // Opposite pairs (0,3), (1,4), (2,5) are the non-edges.
                if b != a + 3 {
                    g.add_edge(a, b);
                }
            }
        }
        assert_eq!(g.edge_count(), 12);
        assert!(is_planar(&g));
    }

    #[test]
    fn planar_matches_k5_and_k33_minor_freeness_small() {
        // Cross-validate with the exact minor search on small graphs:
        // planar ⇒ no K5 minor.
        use crate::minor::{find_clique_minor, MinorSearch};
        for g in [grid(3, 3), wheel(6), cycle(8)] {
            assert!(is_planar(&g));
            assert!(matches!(
                find_clique_minor(&g, 5, 1_000_000),
                MinorSearch::Absent
            ));
        }
    }
}
