//! Treewidth via elimination orderings: heuristics, exact branch-and-bound,
//! and lower bounds.

use hp_guard::{Budget, Budgeted, Gauge, Stop};
use hp_structures::{BitSet, Graph};

use crate::decomposition::TreeDecomposition;

/// Build the tree decomposition induced by an elimination order.
///
/// Eliminating vertex `v` forms the bag `{v} ∪ N(v)` in the current (fill-in
/// accumulated) graph, connects the bag to the bag of the first later-
/// eliminated neighbor, and turns `N(v)` into a clique.
pub fn decomposition_from_order(g: &Graph, order: &[u32]) -> TreeDecomposition {
    let n = g.vertex_count();
    assert_eq!(order.len(), n, "order must list every vertex once");
    if n == 0 {
        return TreeDecomposition::new(vec![], vec![]);
    }
    let mut pos = vec![0usize; n];
    for (i, &v) in order.iter().enumerate() {
        pos[v as usize] = i;
    }
    // Dense adjacency we can add fill edges to.
    let mut adj: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();
    for (u, v) in g.edges() {
        adj[u as usize].insert(v as usize);
        adj[v as usize].insert(u as usize);
    }
    let mut bags: Vec<Vec<u32>> = Vec::with_capacity(n);
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut eliminated = BitSet::new(n);
    for (i, &v) in order.iter().enumerate() {
        let later: Vec<u32> = adj[v as usize]
            .iter()
            .filter(|&u| !eliminated.contains(u))
            .map(|u| u as u32)
            .collect();
        let mut bag = later.clone();
        bag.push(v);
        bags.push(bag);
        // Fill-in among later neighbors.
        for a in 0..later.len() {
            for b in (a + 1)..later.len() {
                adj[later[a] as usize].insert(later[b] as usize);
                adj[later[b] as usize].insert(later[a] as usize);
            }
        }
        eliminated.insert(v as usize);
        // Tree edge: connect to the earliest-later neighbor's bag.
        if let Some(&next) = later.iter().min_by_key(|&&u| pos[u as usize]) {
            edges.push((i, pos[next as usize]));
        } else if i + 1 < n {
            // Disconnected remainder: chain to the next bag to keep a tree.
            edges.push((i, i + 1));
        }
    }
    TreeDecomposition::new(bags, edges)
}

/// Width of the elimination order (max back-degree with fill-in), computed
/// without materializing the decomposition.
pub fn order_width(g: &Graph, order: &[u32]) -> usize {
    let n = g.vertex_count();
    let mut adj: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();
    for (u, v) in g.edges() {
        adj[u as usize].insert(v as usize);
        adj[v as usize].insert(u as usize);
    }
    let mut eliminated = BitSet::new(n);
    let mut width = 0;
    for &v in order {
        let later: Vec<usize> = adj[v as usize]
            .iter()
            .filter(|&u| !eliminated.contains(u))
            .collect();
        width = width.max(later.len());
        for a in 0..later.len() {
            for b in (a + 1)..later.len() {
                adj[later[a]].insert(later[b]);
                adj[later[b]].insert(later[a]);
            }
        }
        eliminated.insert(v as usize);
    }
    width
}

/// Greedy **min-degree** elimination heuristic: an upper bound on treewidth
/// plus the witnessing decomposition.
pub fn min_degree_order(g: &Graph) -> Vec<u32> {
    greedy_order(g, |later_deg, _fill| later_deg)
}

/// Greedy **min-fill** elimination heuristic (usually tighter than
/// min-degree).
pub fn min_fill_order(g: &Graph) -> Vec<u32> {
    greedy_order(g, |_later_deg, fill| fill)
}

fn greedy_order(g: &Graph, score: impl Fn(usize, usize) -> usize) -> Vec<u32> {
    let n = g.vertex_count();
    let mut adj: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();
    for (u, v) in g.edges() {
        adj[u as usize].insert(v as usize);
        adj[v as usize].insert(u as usize);
    }
    let mut alive = BitSet::full(n);
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        // Pick the alive vertex with the best score.
        let mut best: Option<(usize, usize)> = None;
        for v in alive.iter() {
            let nbrs: Vec<usize> = adj[v].iter().filter(|&u| alive.contains(u)).collect();
            let deg = nbrs.len();
            let mut fill = 0;
            for a in 0..nbrs.len() {
                for b in (a + 1)..nbrs.len() {
                    if !adj[nbrs[a]].contains(nbrs[b]) {
                        fill += 1;
                    }
                }
            }
            let s = score(deg, fill);
            if best.is_none_or(|(_, bs)| s < bs) {
                best = Some((v, s));
            }
        }
        let (v, _) = best.expect("alive vertex exists");
        let nbrs: Vec<usize> = adj[v].iter().filter(|&u| alive.contains(u)).collect();
        for a in 0..nbrs.len() {
            for b in (a + 1)..nbrs.len() {
                adj[nbrs[a]].insert(nbrs[b]);
                adj[nbrs[b]].insert(nbrs[a]);
            }
        }
        alive.remove(v);
        order.push(v as u32);
    }
    order
}

/// Upper bound on the treewidth of `g`, with a validated decomposition: the
/// better of min-degree and min-fill.
pub fn treewidth_upper_bound(g: &Graph) -> (usize, TreeDecomposition) {
    let o1 = min_fill_order(g);
    let o2 = min_degree_order(g);
    let (w1, w2) = (order_width(g, &o1), order_width(g, &o2));
    let order = if w1 <= w2 { o1 } else { o2 };
    let td = decomposition_from_order(g, &order);
    (td.width(), td)
}

/// The **degeneracy** of `g` (max over subgraphs of the min degree): a lower
/// bound on treewidth, computed by repeatedly removing a minimum-degree
/// vertex.
pub fn degeneracy(g: &Graph) -> usize {
    let n = g.vertex_count();
    let mut alive = BitSet::full(n);
    let mut deg: Vec<usize> = (0..n).map(|v| g.degree(v as u32)).collect();
    let mut best = 0;
    for _ in 0..n {
        let v = alive
            .iter()
            .min_by_key(|&v| deg[v])
            .expect("alive vertex exists");
        best = best.max(deg[v]);
        alive.remove(v);
        for &u in g.neighbors(v as u32) {
            if alive.contains(u as usize) {
                deg[u as usize] -= 1;
            }
        }
    }
    best
}

/// Exact treewidth by branch-and-bound over elimination orders (QuickBB
/// style, with simplicial-vertex shortcuts and upper/lower-bound pruning).
///
/// Exponential; intended for graphs up to ~25 vertices (canonical structures
/// of `CQ^k` formulas, minor gadgets, small random models).
pub fn treewidth_exact(g: &Graph) -> usize {
    treewidth_exact_with_budget(g, &Budget::unlimited())
        .unwrap_or_else(|_| unreachable!("an unlimited budget cannot exhaust"))
}

/// Budgeted [`treewidth_exact`]: the branch-and-bound charges one fuel
/// unit per search node. On exhaustion the partial is the **treewidth
/// bracket** `(lower, upper)` established so far — `lower` from
/// degeneracy, `upper` from the heuristics improved by every completed
/// branch — so an interrupted run still reports rigorous bounds.
pub fn treewidth_exact_with_budget(g: &Graph, budget: &Budget) -> Budgeted<usize, (usize, usize)> {
    let n = g.vertex_count();
    if n == 0 {
        return Ok(0);
    }
    let (mut ub, _) = treewidth_upper_bound(g);
    let lb = degeneracy(g);
    if lb >= ub {
        return Ok(ub);
    }
    let mut adj: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();
    for (u, v) in g.edges() {
        adj[u as usize].insert(v as usize);
        adj[v as usize].insert(u as usize);
    }
    let alive = BitSet::full(n);
    fn bb(
        adj: &mut Vec<BitSet>,
        alive: &BitSet,
        width_so_far: usize,
        ub: &mut usize,
        lb: usize,
        gauge: &mut Gauge,
    ) -> Result<(), Stop> {
        gauge.tick(1)?;
        if width_so_far >= *ub {
            return Ok(());
        }
        let live: Vec<usize> = alive.iter().collect();
        if live.len() <= 1 {
            *ub = (*ub).min(width_so_far);
            return Ok(());
        }
        // If everything alive fits under width_so_far as one clique bag:
        if live.len() - 1 <= width_so_far {
            *ub = (*ub).min(width_so_far);
            return Ok(());
        }
        // Simplicial shortcut: a vertex whose alive neighborhood is a clique
        // can always be eliminated first, without loss.
        for &v in &live {
            let nbrs: Vec<usize> = adj[v].iter().filter(|&u| alive.contains(u)).collect();
            let is_clique = nbrs
                .iter()
                .enumerate()
                .all(|(i, &a)| nbrs[i + 1..].iter().all(|&b| adj[a].contains(b)));
            if is_clique {
                let w = width_so_far.max(nbrs.len());
                if w >= *ub {
                    return Ok(());
                }
                let mut alive2 = alive.clone();
                alive2.remove(v);
                return bb(adj, &alive2, w, ub, lb, gauge);
            }
        }
        // Branch on each alive vertex.
        for &v in &live {
            let nbrs: Vec<usize> = adj[v].iter().filter(|&u| alive.contains(u)).collect();
            let w = width_so_far.max(nbrs.len());
            if w >= *ub {
                continue;
            }
            // Apply fill-in, remember which edges were added.
            let mut added: Vec<(usize, usize)> = Vec::new();
            for a in 0..nbrs.len() {
                for b in (a + 1)..nbrs.len() {
                    if !adj[nbrs[a]].contains(nbrs[b]) {
                        adj[nbrs[a]].insert(nbrs[b]);
                        adj[nbrs[b]].insert(nbrs[a]);
                        added.push((nbrs[a], nbrs[b]));
                    }
                }
            }
            let mut alive2 = alive.clone();
            alive2.remove(v);
            let branch = bb(adj, &alive2, w, ub, lb, gauge);
            for (a, b) in added {
                adj[a].remove(b);
                adj[b].remove(a);
            }
            branch?;
            if *ub <= lb {
                return Ok(());
            }
        }
        Ok(())
    }
    let mut gauge = budget.gauge();
    match bb(&mut adj, &alive, 0, &mut ub, lb, &mut gauge) {
        Ok(()) => Ok(ub),
        Err(stop) => Err(stop.with_partial((lb, ub))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hp_structures::generators::{
        binary_tree, clique, complete_bipartite, cycle, grid, ktree, path, random_tree, star, wheel,
    };

    #[test]
    fn path_has_treewidth_1() {
        let g = path(8);
        assert_eq!(treewidth_exact(&g), 1);
        let (ub, td) = treewidth_upper_bound(&g);
        assert_eq!(ub, 1);
        td.validate(&g).unwrap();
    }

    #[test]
    fn trees_have_treewidth_1() {
        for seed in 0..4 {
            let g = random_tree(20, seed);
            assert_eq!(treewidth_exact(&g), 1, "seed {seed}");
        }
        assert_eq!(treewidth_exact(&binary_tree(3)), 1);
        assert_eq!(treewidth_exact(&star(7)), 1);
    }

    #[test]
    fn cycles_have_treewidth_2() {
        for n in [3usize, 5, 8] {
            assert_eq!(treewidth_exact(&cycle(n)), 2, "C_{n}");
        }
    }

    #[test]
    fn cliques_have_treewidth_n_minus_1() {
        for n in 2..7 {
            assert_eq!(treewidth_exact(&clique(n)), n - 1, "K_{n}");
        }
    }

    #[test]
    fn ktrees_have_treewidth_k() {
        assert_eq!(treewidth_exact(&ktree(2, 10)), 2);
        assert_eq!(treewidth_exact(&ktree(3, 9)), 3);
    }

    #[test]
    fn grids_have_treewidth_min_side() {
        assert_eq!(treewidth_exact(&grid(2, 5)), 2);
        assert_eq!(treewidth_exact(&grid(3, 3)), 3);
        assert_eq!(treewidth_exact(&grid(3, 4)), 3);
    }

    #[test]
    fn complete_bipartite_treewidth() {
        // tw(K_{a,b}) = min(a,b) for a,b >= 1.
        assert_eq!(treewidth_exact(&complete_bipartite(2, 4)), 2);
        assert_eq!(treewidth_exact(&complete_bipartite(3, 3)), 3);
    }

    #[test]
    fn wheels_have_treewidth_3() {
        for n in [3usize, 5, 8] {
            assert_eq!(treewidth_exact(&wheel(n)), 3, "W_{n}");
        }
    }

    #[test]
    fn upper_bound_decompositions_are_valid() {
        for g in [grid(3, 4), cycle(7), ktree(3, 12), complete_bipartite(3, 5)] {
            let (w, td) = treewidth_upper_bound(&g);
            td.validate(&g).unwrap();
            assert_eq!(td.width(), w);
            assert!(w >= degeneracy(&g));
        }
    }

    #[test]
    fn degeneracy_lower_bound() {
        assert_eq!(degeneracy(&clique(5)), 4);
        assert_eq!(degeneracy(&path(6)), 1);
        assert_eq!(degeneracy(&cycle(6)), 2);
        assert_eq!(degeneracy(&grid(3, 3)), 2); // grids are 2-degenerate
    }

    #[test]
    fn order_width_matches_decomposition_width() {
        let g = grid(3, 3);
        for order in [min_degree_order(&g), min_fill_order(&g)] {
            let w = order_width(&g, &order);
            let td = decomposition_from_order(&g, &order);
            td.validate(&g).unwrap();
            assert_eq!(td.width(), w);
        }
    }

    #[test]
    fn disconnected_graphs_handled() {
        // Two disjoint triangles.
        let mut g = hp_structures::Graph::new(6);
        for (a, b) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            g.add_edge(a, b);
        }
        assert_eq!(treewidth_exact(&g), 2);
        let (w, td) = treewidth_upper_bound(&g);
        assert_eq!(w, 2);
        td.validate(&g).unwrap();
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(treewidth_exact(&hp_structures::Graph::new(0)), 0);
        assert_eq!(treewidth_exact(&hp_structures::Graph::new(1)), 0);
        assert_eq!(treewidth_exact(&hp_structures::Graph::new(5)), 0); // edgeless
    }
}

/// Find an elimination order of width ≤ `target`, if one exists — the
/// witness-producing companion to [`treewidth_exact`] (call with
/// `target = treewidth_exact(g)` for an optimal order; feed the result to
/// [`decomposition_from_order`] for the optimal tree decomposition).
pub fn elimination_order_of_width(g: &Graph, target: usize) -> Option<Vec<u32>> {
    let n = g.vertex_count();
    if n == 0 {
        return Some(Vec::new());
    }
    let mut adj: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();
    for (u, v) in g.edges() {
        adj[u as usize].insert(v as usize);
        adj[v as usize].insert(u as usize);
    }
    let alive = BitSet::full(n);
    fn dfs(adj: &mut Vec<BitSet>, alive: &BitSet, target: usize, prefix: &mut Vec<u32>) -> bool {
        let live: Vec<usize> = alive.iter().collect();
        if live.len() <= target + 1 {
            prefix.extend(live.iter().map(|&v| v as u32));
            return true;
        }
        // Simplicial shortcut (safe: always optimal to eliminate first).
        for &v in &live {
            let nbrs: Vec<usize> = adj[v].iter().filter(|&u| alive.contains(u)).collect();
            if nbrs.len() > target {
                continue;
            }
            let is_clique = nbrs
                .iter()
                .enumerate()
                .all(|(i, &a)| nbrs[i + 1..].iter().all(|&b| adj[a].contains(b)));
            if is_clique {
                let mut alive2 = alive.clone();
                alive2.remove(v);
                prefix.push(v as u32);
                if dfs(adj, &alive2, target, prefix) {
                    return true;
                }
                prefix.pop();
                return false;
            }
        }
        for &v in &live {
            let nbrs: Vec<usize> = adj[v].iter().filter(|&u| alive.contains(u)).collect();
            if nbrs.len() > target {
                continue;
            }
            let mut added: Vec<(usize, usize)> = Vec::new();
            for a in 0..nbrs.len() {
                for b in (a + 1)..nbrs.len() {
                    if !adj[nbrs[a]].contains(nbrs[b]) {
                        adj[nbrs[a]].insert(nbrs[b]);
                        adj[nbrs[b]].insert(nbrs[a]);
                        added.push((nbrs[a], nbrs[b]));
                    }
                }
            }
            let mut alive2 = alive.clone();
            alive2.remove(v);
            prefix.push(v as u32);
            if dfs(adj, &alive2, target, prefix) {
                return true;
            }
            prefix.pop();
            for (a, b) in added {
                adj[a].remove(b);
                adj[b].remove(a);
            }
        }
        false
    }
    let mut prefix = Vec::new();
    let mut adj2 = adj;
    if dfs(&mut adj2, &alive, target, &mut prefix) {
        Some(prefix)
    } else {
        None
    }
}

/// Exact treewidth **with the optimal tree decomposition** as a witness.
pub fn treewidth_exact_decomposition(g: &Graph) -> (usize, TreeDecomposition) {
    let w = treewidth_exact(g);
    let order =
        elimination_order_of_width(g, w).expect("an order of the exact width always exists");
    let td = decomposition_from_order(g, &order);
    debug_assert_eq!(td.width(), w);
    (w, td)
}

#[cfg(test)]
mod witness_tests {
    use super::*;
    use hp_structures::generators::{cycle, grid, ktree, random_partial_ktree, wheel};

    #[test]
    fn exact_decomposition_witnesses_known_families() {
        for (g, w) in [
            (cycle(7), 2usize),
            (grid(3, 3), 3),
            (ktree(3, 9), 3),
            (wheel(6), 3),
        ] {
            let (found, td) = treewidth_exact_decomposition(&g);
            assert_eq!(found, w);
            td.validate(&g).unwrap();
            assert_eq!(td.width(), w);
        }
    }

    #[test]
    fn order_of_width_rejects_too_small_targets() {
        let g = grid(3, 3); // treewidth 3
        assert!(elimination_order_of_width(&g, 2).is_none());
        assert!(elimination_order_of_width(&g, 3).is_some());
    }

    #[test]
    fn exact_decomposition_on_random_partial_ktrees() {
        for seed in 0..3 {
            let g = random_partial_ktree(2, 14, 0.85, seed);
            let (w, td) = treewidth_exact_decomposition(&g);
            assert!(w <= 2);
            td.validate(&g).unwrap();
            assert_eq!(td.width(), w);
        }
    }

    #[test]
    fn budgeted_exact_treewidth_brackets_on_exhaustion() {
        let g = grid(4, 4); // treewidth 4, nontrivial branch-and-bound
        let exact = treewidth_exact(&g);
        assert_eq!(
            treewidth_exact_with_budget(&g, &Budget::unlimited()).unwrap(),
            exact
        );
        let e = treewidth_exact_with_budget(&g, &Budget::fuel(1))
            .expect_err("one search node cannot close a 4x4 grid");
        assert_eq!(e.resource, hp_guard::Resource::Fuel);
        let (lb, ub) = e.partial;
        assert!(
            lb <= exact && exact <= ub,
            "bracket [{lb}, {ub}] vs {exact}"
        );
    }
}
