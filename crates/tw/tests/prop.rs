//! Property-based tests for hp-tw: elimination orders always yield valid
//! decompositions, normalization preserves validity, sunflowers verify,
//! scattered-set extractions verify, and minor witnesses verify.

use proptest::prelude::*;

use hp_structures::{generators, BitSet, Graph};
use hp_tw::decomposition::TreeDecomposition;
use hp_tw::elimination::{
    decomposition_from_order, degeneracy, min_degree_order, min_fill_order, order_width,
    treewidth_exact, treewidth_upper_bound,
};
use hp_tw::minor::{find_clique_minor, MinorSearch};
use hp_tw::scattered::{self, MinorFreeOutcome};
use hp_tw::sunflower::find_sunflower;

fn graph_strategy(max_n: usize, max_m: usize) -> impl Strategy<Value = Graph> {
    (
        1..=max_n,
        prop::collection::vec((0usize..max_n, 0usize..max_n), 0..max_m),
    )
        .prop_map(move |(n, edges)| {
            let mut g = Graph::new(n);
            for (u, v) in edges {
                let (u, v) = ((u % n) as u32, (v % n) as u32);
                if u != v {
                    g.add_edge(u, v);
                }
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every elimination order yields a valid tree decomposition whose
    /// width matches order_width.
    #[test]
    fn elimination_orders_valid(g in graph_strategy(10, 24)) {
        for order in [min_degree_order(&g), min_fill_order(&g)] {
            let td = decomposition_from_order(&g, &order);
            prop_assert!(td.validate(&g).is_ok(), "{:?}", td.validate(&g));
            prop_assert_eq!(td.width(), order_width(&g, &order));
        }
    }

    /// Exact treewidth is sandwiched between degeneracy and the heuristic.
    #[test]
    fn treewidth_sandwich(g in graph_strategy(9, 18)) {
        let exact = treewidth_exact(&g);
        let (ub, td) = treewidth_upper_bound(&g);
        prop_assert!(degeneracy(&g) <= exact);
        prop_assert!(exact <= ub);
        prop_assert!(td.validate(&g).is_ok());
    }

    /// Normalization preserves validity and never increases width.
    #[test]
    fn normalization_sound(g in graph_strategy(9, 20)) {
        let (_, td) = treewidth_upper_bound(&g);
        let nd = td.normalized();
        prop_assert!(nd.validate(&g).is_ok());
        prop_assert!(nd.width() <= td.width());
        // Adjacent bags pairwise incomparable.
        for &(a, b) in nd.edges() {
            let sa = &nd.bags()[a];
            let sb = &nd.bags()[b];
            prop_assert!(sa.iter().any(|x| sb.binary_search(x).is_err()));
            prop_assert!(sb.iter().any(|x| sa.binary_search(x).is_err()));
        }
    }

    /// Sunflowers found are genuine sunflowers, and the Erdős–Rado bound
    /// guarantees success.
    #[test]
    fn sunflower_verified(family in prop::collection::vec(
        prop::collection::btree_set(0u32..12, 1..4), 1..20
    ), p in 1usize..4) {
        let fam: Vec<Vec<u32>> = family.iter().map(|s| s.iter().copied().collect()).collect();
        if let Some(sf) = find_sunflower(&fam, p) {
            prop_assert!(sf.verify(&fam).is_ok());
            prop_assert_eq!(sf.petals.len(), p);
        } else {
            // Erdős–Rado: with k = 3, failure requires |F| ≤ 3!(p−1)³.
            prop_assert!(fam.len() <= 6 * (p - 1).pow(3).max(1),
                "sunflower missed above the Erdős–Rado bound");
        }
    }

    /// Lemma 4.2 outputs verify whenever they are produced.
    #[test]
    fn lemma_4_2_outputs_verify(g in graph_strategy(12, 20), d in 0usize..3, m in 1usize..5) {
        let (_, td) = treewidth_upper_bound(&g);
        if let Some(out) = scattered::bounded_treewidth(&g, &td, d, m) {
            prop_assert!(out.verify(&g, d).is_ok());
            prop_assert_eq!(out.set.len(), m);
        }
    }

    /// Theorem 5.3 outputs verify; minor witnesses verify.
    #[test]
    fn excluded_minor_outputs_verify(g in graph_strategy(12, 22), k in 3usize..6) {
        match scattered::excluded_minor(&g, k, 1, 3) {
            MinorFreeOutcome::Scattered(s) => prop_assert!(s.verify(&g, 1).is_ok()),
            MinorFreeOutcome::Minor(w) => prop_assert!(w.verify(&g).is_ok()),
        }
    }

    /// Bipartite-step outputs verify on random bipartite graphs.
    #[test]
    fn bipartite_step_outputs_verify(
        edges in prop::collection::vec((0u32..6, 0u32..6), 0..18),
        k in 3usize..5,
        m in 1usize..5,
    ) {
        let mut g = Graph::new(12);
        let mut a_side = BitSet::new(12);
        for i in 0..6 {
            a_side.insert(i);
        }
        for (u, v) in edges {
            g.add_edge(u, 6 + v);
        }
        match scattered::bipartite_step(&g, &a_side, k, m) {
            MinorFreeOutcome::Scattered(s) => {
                prop_assert!(s.verify(&g, 1).is_ok());
                prop_assert!(s.deleted.len() < k - 1);
            }
            MinorFreeOutcome::Minor(w) => prop_assert!(w.verify(&g).is_ok()),
        }
    }

    /// Minor search consistency: a found K_h implies K_{h-1} is also found,
    /// and treewidth < h−1 implies K_h is absent.
    #[test]
    fn minor_search_consistency(g in graph_strategy(8, 16), h in 2usize..5) {
        match find_clique_minor(&g, h, 300_000) {
            MinorSearch::Found(w) => {
                prop_assert!(w.verify(&g).is_ok());
                prop_assert!(matches!(
                    find_clique_minor(&g, h - 1, 300_000),
                    MinorSearch::Found(_)
                ));
                // K_h minor forces treewidth ≥ h−1.
                prop_assert!(treewidth_exact(&g) >= h - 1);
            }
            MinorSearch::Absent => {
                // Contrapositive of "tw ≥ clique-minor order − 1" is not
                // exact, but tw < h−1 ⇒ no K_h: check that direction.
            }
            MinorSearch::Unknown => {}
        }
        if treewidth_exact(&g) < h - 1 {
            prop_assert!(!matches!(
                find_clique_minor(&g, h, 300_000),
                MinorSearch::Found(_)
            ));
        }
    }

    /// Greedy scattered sets are always d-scattered; exactness of spacing.
    #[test]
    fn greedy_scattered_valid(g in graph_strategy(14, 30), d in 0usize..4) {
        let s = scattered::greedy_scattered(&g, d);
        prop_assert!(hp_structures::is_d_scattered(&g, d, &s));
        prop_assert!(!s.is_empty());
    }

    /// Contraction reduces vertex count by one and preserves minor-order:
    /// any K_h minor of G/e is a K_h minor of G.
    #[test]
    fn contraction_monotone(g in graph_strategy(7, 14), h in 2usize..4) {
        if g.edge_count() == 0 {
            return Ok(());
        }
        let (u, v) = g.edges().next().unwrap();
        let contracted = g.contract(u, v);
        prop_assert_eq!(contracted.vertex_count(), g.vertex_count() - 1);
        if matches!(find_clique_minor(&contracted, h, 200_000), MinorSearch::Found(_)) {
            prop_assert!(matches!(
                find_clique_minor(&g, h, 2_000_000),
                MinorSearch::Found(_)
            ), "minor monotonicity under contraction violated");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Known treewidth values on generated families, randomized sizes.
    #[test]
    fn treewidth_of_known_families(n in 4usize..10, k in 1usize..4) {
        if n > k + 1 {
            prop_assert_eq!(treewidth_exact(&generators::ktree(k, n)), k);
        }
        prop_assert_eq!(treewidth_exact(&generators::cycle(n.max(3))), 2);
        prop_assert_eq!(treewidth_exact(&generators::random_tree(n, 42)), 1);
    }

    /// TreeDecomposition::trivial always validates.
    #[test]
    fn trivial_validates(g in graph_strategy(8, 20)) {
        prop_assert!(TreeDecomposition::trivial(&g).validate(&g).is_ok());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Planarity is monotone under edge deletion, and biconnected
    /// components partition the edge set.
    #[test]
    fn planarity_monotone_and_bcc_partition(g in graph_strategy(10, 22)) {
        use hp_tw::planarity::{biconnected_components, is_planar};
        let comps = biconnected_components(&g);
        let edge_total: usize = comps.iter().map(|c| c.edge_count()).sum();
        prop_assert_eq!(edge_total, g.edge_count(), "BCCs must partition edges");
        if is_planar(&g) {
            // Deleting any edge preserves planarity.
            if let Some((u, v)) = g.edges().next() {
                let mut h = g.clone();
                h.remove_edge(u, v);
                prop_assert!(is_planar(&h));
            }
        }
    }

    /// Planar ⇒ Euler bound m ≤ 3n − 6 (for n ≥ 3); K5-subgraph ⇒ nonplanar.
    #[test]
    fn planarity_euler_consistency(g in graph_strategy(9, 30)) {
        use hp_tw::planarity::is_planar;
        let n = g.vertex_count();
        if n >= 3 && is_planar(&g) {
            prop_assert!(g.edge_count() <= 3 * n - 6);
        }
        // Planarity agrees with K5-minor absence on graphs small enough
        // for the exact search — one direction (K5 minor ⇒ nonplanar).
        if matches!(
            find_clique_minor(&g, 5, 300_000),
            MinorSearch::Found(_)
        ) {
            prop_assert!(!is_planar(&g));
        }
    }

    /// Subdivision preserves planarity status in both directions.
    #[test]
    fn subdivision_preserves_planarity(g in graph_strategy(7, 14), times in 1usize..3) {
        use hp_tw::planarity::is_planar;
        prop_assert_eq!(is_planar(&g), is_planar(&g.subdivided(times)));
    }
}
