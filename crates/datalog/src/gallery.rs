//! A gallery of named Datalog programs used across the experiments:
//! classical recursive queries (transitive closure, same generation,
//! reachability) and bounded/unbounded specimens for the Ajtai–Gurevich
//! analyses.

use hp_structures::Vocabulary;

use crate::ast::Program;

/// The paper's example 3-Datalog program: transitive closure over `{E/2}`.
pub fn transitive_closure() -> Program {
    Program::parse(
        "T(x,y) :- E(x,y).\nT(x,y) :- E(x,z), T(z,y).",
        &Vocabulary::digraph(),
    )
    .expect("well-formed")
}

/// Cycle detection: `Goal() :- T(x,x)` over transitive closure — the query
/// of Proposition 7.9 in Datalog form.
pub fn cycle_detection() -> Program {
    Program::parse(
        "T(x,y) :- E(x,y).\nT(x,y) :- E(x,z), T(z,y).\nGoal() :- T(x,x).",
        &Vocabulary::digraph(),
    )
    .expect("well-formed")
}

/// The vocabulary `{Down/2, Leaf/1}` used by the tree workloads.
pub fn tree_vocabulary() -> Vocabulary {
    Vocabulary::from_pairs([("Down", 2), ("Leaf", 1)])
}

/// Reach-a-leaf over `{Down/2, Leaf/1}` with a Boolean goal.
pub fn reach_leaf() -> Program {
    Program::parse(
        "Reach(x) :- Leaf(x).\nReach(x) :- Down(x,y), Reach(y).\nGoal() :- Reach(x).",
        &tree_vocabulary(),
    )
    .expect("well-formed")
}

/// Same generation: classic doubly recursive query over `{Down/2}` parents.
pub fn same_generation() -> Program {
    Program::parse(
        "SG(x,y) :- Down(z,x), Down(z,y).\nSG(x,y) :- Down(u,x), SG(u,v), Down(v,y).",
        &tree_vocabulary(),
    )
    .expect("well-formed")
}

/// A non-recursive (hence bounded) program: pairs at distance exactly two.
pub fn two_hop() -> Program {
    Program::parse("P2(x,y) :- E(x,z), E(z,y).", &Vocabulary::digraph()).expect("well-formed")
}

/// A syntactically recursive but semantically bounded program: the
/// recursion folds into the base case (bounded at stage 1).
pub fn absorbed_recursion() -> Program {
    Program::parse(
        "R(x) :- E(x,x).\nR(x) :- E(x,y), R(y), E(x,x).",
        &Vocabulary::digraph(),
    )
    .expect("well-formed")
}

/// Non-reachability over `{E/2, Node/1}`: the complement of transitive
/// closure, restricted to marked nodes — the sparse-class query of
/// Dawar–Eleftheriadis. Two strata: `T` (positive, stratum 0), then
/// `NonReach` behind the negated guard (stratum 1).
pub fn non_reachability() -> Program {
    let v = Vocabulary::from_pairs([("E", 2), ("Node", 1)]);
    Program::parse(
        "T(x,y) :- E(x,y).\n\
         T(x,y) :- E(x,z), T(z,y).\n\
         NonReach(x,y) :- Node(x), Node(y), not T(x,y).",
        &v,
    )
    .expect("well-formed")
}

/// Set difference over `{R/2, S/2}`: `D = R \\ S` as one stratified rule
/// with a negated EDB guard (a single stratum — negation of an EDB
/// relation adds no dependency edge).
pub fn set_difference() -> Program {
    let v = Vocabulary::from_pairs([("R", 2), ("S", 2)]);
    Program::parse("D(x,y) :- R(x,y), not S(x,y).", &v).expect("well-formed")
}

/// The win/lose game over `{Move/2, Pos/1}`, unrolled to `k` stratified
/// layers. The natural `Win(x) :- Move(x,y), not Win(y)` is
/// unstratifiable; the standard stratified rendering alternates layers:
///
/// - `Lose0(x)`: positions with no escape at all — approximated layer by
///   layer via `Escape_i(x) :- Move(x,y), not Win_i(y)` and
///   `Lose_{i+1}(x) :- Pos(x), not Escape_i(x)`;
/// - `Win_{i+1}(x) :- Move(x,y), Lose_i(y)`.
///
/// Each layer adds two strata (`Lose_k` sits at negation depth `2k + 1`),
/// so the program exercises a `2k + 2`-deep stratification; on DAG move
/// graphs of depth `< k` the top layer is the exact game value.
pub fn win_move(k: usize) -> Program {
    let v = Vocabulary::from_pairs([("Move", 2), ("Pos", 1)]);
    let mut text = String::new();
    // Layer 0: no position is known winning yet, so every position with a
    // move has an escape; positions with no move at all lose immediately.
    text.push_str("Escape0(x) :- Move(x,y).\n");
    text.push_str("Lose0(x) :- Pos(x), not Escape0(x).\n");
    for i in 0..k {
        let j = i + 1;
        text.push_str(&format!("Win{j}(x) :- Move(x,y), Lose{i}(y).\n"));
        text.push_str(&format!("Escape{j}(x) :- Move(x,y), not Win{j}(y).\n"));
        text.push_str(&format!("Lose{j}(x) :- Pos(x), not Escape{j}(x).\n"));
    }
    Program::parse(&text, &v).expect("well-formed")
}

/// The unrolled "reach a marked element within `h` hops" program over
/// `{E/2, M/1}` — bounded at stage 1 with `h+2` IDB rules, for boundedness
/// sweeps.
pub fn bounded_reach(h: usize) -> Program {
    let v = Vocabulary::from_pairs([("E", 2), ("M", 1)]);
    let mut text = String::from("R(x0) :- M(x0).\n");
    for i in 1..=h {
        let mut body = Vec::new();
        for j in 0..i {
            body.push(format!("E(x{j},x{})", j + 1));
        }
        body.push(format!("M(x{i})"));
        text.push_str(&format!("R(x0) :- {}.\n", body.join(", ")));
    }
    text.push_str("Goal() :- R(x).");
    Program::parse(&text, &v).expect("well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounded::certified_boundedness;
    use hp_structures::generators::{directed_path, down_tree};

    #[test]
    fn gallery_programs_parse_and_run() {
        let t = down_tree(3);
        assert!(!reach_leaf().evaluate(&t).relations[1].is_empty());
        let sg = same_generation().evaluate(&t);
        // Leaves of a complete binary tree are pairwise same-generation.
        assert!(sg.relations[0].len() >= 8 * 8 - 8);
        assert_eq!(transitive_closure().total_variable_count(), 3);
    }

    #[test]
    fn cycle_detection_goal() {
        let p = cycle_detection();
        assert!(
            p.evaluate(&hp_structures::generators::directed_cycle(4))
                .relations[p.idb_index("Goal").unwrap()]
            .len()
                == 1
        );
        assert!(p.evaluate(&directed_path(4)).relations[p.idb_index("Goal").unwrap()].is_empty());
    }

    #[test]
    fn boundedness_classification() {
        assert_eq!(certified_boundedness(&two_hop(), 3).unwrap(), Some(1));
        assert_eq!(
            certified_boundedness(&absorbed_recursion(), 3).unwrap(),
            Some(1)
        );
        assert_eq!(
            certified_boundedness(&transitive_closure(), 3).unwrap(),
            None
        );
    }

    #[test]
    fn bounded_reach_certifies() {
        for h in 1..=3 {
            let p = bounded_reach(h);
            let s = certified_boundedness(&p, 3).unwrap();
            // R stabilizes at stage 1; Goal needs one more application.
            assert_eq!(s, Some(2), "h = {h}");
        }
    }

    #[test]
    fn same_generation_is_unbounded() {
        assert_eq!(certified_boundedness(&same_generation(), 2).unwrap(), None);
    }

    #[test]
    fn non_reachability_on_a_path() {
        use hp_structures::{Elem, Structure};
        let p = non_reachability();
        // Path 0 -> 1 -> 2, all three nodes marked.
        let mut s = Structure::new(p.edb().clone(), 3);
        for (a, b) in [(0u32, 1u32), (1, 2)] {
            s.add_tuple_ids(0, &[a, b]).unwrap();
        }
        for n in 0..3u32 {
            s.add_tuple_ids(1, &[n]).unwrap();
        }
        let r = p.evaluate(&s);
        let nr = &r.relations[p.idb_index("NonReach").unwrap()];
        // Reachable pairs: (0,1), (0,2), (1,2); NonReach = 9 - 3.
        assert_eq!(nr.len(), 6);
        assert!(nr.contains(&[Elem(1), Elem(0)]));
        assert!(nr.contains(&[Elem(0), Elem(0)]));
        assert!(!nr.contains(&[Elem(0), Elem(2)]));
    }

    #[test]
    fn set_difference_semantics() {
        use hp_structures::{Elem, Structure};
        let p = set_difference();
        let mut s = Structure::new(p.edb().clone(), 4);
        for (a, b) in [(0u32, 1u32), (1, 2), (2, 3)] {
            s.add_tuple_ids(0, &[a, b]).unwrap();
        }
        s.add_tuple_ids(1, &[1, 2]).unwrap();
        let r = p.evaluate(&s);
        let d = &r.relations[p.idb_index("D").unwrap()];
        assert_eq!(d.len(), 2);
        assert!(d.contains(&[Elem(0), Elem(1)]) && d.contains(&[Elem(2), Elem(3)]));
        assert!(!d.contains(&[Elem(1), Elem(2)]));
    }

    #[test]
    fn win_move_solves_a_short_game() {
        use hp_structures::{Elem, Structure};
        // Chain game 0 -> 1 -> 2 -> 3: position 3 is moveless (lost),
        // 2 wins (moves to 3), 1 loses (only move reaches a win), 0 wins.
        let p = win_move(3);
        assert_eq!(p.num_strata(), 2 * 3 + 2);
        let mut s = Structure::new(p.edb().clone(), 4);
        for (a, b) in [(0u32, 1u32), (1, 2), (2, 3)] {
            s.add_tuple_ids(0, &[a, b]).unwrap();
        }
        for n in 0..4u32 {
            s.add_tuple_ids(1, &[n]).unwrap();
        }
        let r = p.evaluate(&s);
        let win = &r.relations[p.idb_index("Win3").unwrap()];
        let lose = &r.relations[p.idb_index("Lose3").unwrap()];
        assert!(win.contains(&[Elem(2)]) && win.contains(&[Elem(0)]));
        assert!(!win.contains(&[Elem(1)]) && !win.contains(&[Elem(3)]));
        assert!(lose.contains(&[Elem(3)]) && lose.contains(&[Elem(1)]));
        assert!(!lose.contains(&[Elem(0)]) && !lose.contains(&[Elem(2)]));
    }
}
