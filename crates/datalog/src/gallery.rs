//! A gallery of named Datalog programs used across the experiments:
//! classical recursive queries (transitive closure, same generation,
//! reachability) and bounded/unbounded specimens for the Ajtai–Gurevich
//! analyses.

use hp_structures::Vocabulary;

use crate::ast::Program;

/// The paper's example 3-Datalog program: transitive closure over `{E/2}`.
pub fn transitive_closure() -> Program {
    Program::parse(
        "T(x,y) :- E(x,y).\nT(x,y) :- E(x,z), T(z,y).",
        &Vocabulary::digraph(),
    )
    .expect("well-formed")
}

/// Cycle detection: `Goal() :- T(x,x)` over transitive closure — the query
/// of Proposition 7.9 in Datalog form.
pub fn cycle_detection() -> Program {
    Program::parse(
        "T(x,y) :- E(x,y).\nT(x,y) :- E(x,z), T(z,y).\nGoal() :- T(x,x).",
        &Vocabulary::digraph(),
    )
    .expect("well-formed")
}

/// The vocabulary `{Down/2, Leaf/1}` used by the tree workloads.
pub fn tree_vocabulary() -> Vocabulary {
    Vocabulary::from_pairs([("Down", 2), ("Leaf", 1)])
}

/// Reach-a-leaf over `{Down/2, Leaf/1}` with a Boolean goal.
pub fn reach_leaf() -> Program {
    Program::parse(
        "Reach(x) :- Leaf(x).\nReach(x) :- Down(x,y), Reach(y).\nGoal() :- Reach(x).",
        &tree_vocabulary(),
    )
    .expect("well-formed")
}

/// Same generation: classic doubly recursive query over `{Down/2}` parents.
pub fn same_generation() -> Program {
    Program::parse(
        "SG(x,y) :- Down(z,x), Down(z,y).\nSG(x,y) :- Down(u,x), SG(u,v), Down(v,y).",
        &tree_vocabulary(),
    )
    .expect("well-formed")
}

/// A non-recursive (hence bounded) program: pairs at distance exactly two.
pub fn two_hop() -> Program {
    Program::parse("P2(x,y) :- E(x,z), E(z,y).", &Vocabulary::digraph()).expect("well-formed")
}

/// A syntactically recursive but semantically bounded program: the
/// recursion folds into the base case (bounded at stage 1).
pub fn absorbed_recursion() -> Program {
    Program::parse(
        "R(x) :- E(x,x).\nR(x) :- E(x,y), R(y), E(x,x).",
        &Vocabulary::digraph(),
    )
    .expect("well-formed")
}

/// The unrolled "reach a marked element within `h` hops" program over
/// `{E/2, M/1}` — bounded at stage 1 with `h+2` IDB rules, for boundedness
/// sweeps.
pub fn bounded_reach(h: usize) -> Program {
    let v = Vocabulary::from_pairs([("E", 2), ("M", 1)]);
    let mut text = String::from("R(x0) :- M(x0).\n");
    for i in 1..=h {
        let mut body = Vec::new();
        for j in 0..i {
            body.push(format!("E(x{j},x{})", j + 1));
        }
        body.push(format!("M(x{i})"));
        text.push_str(&format!("R(x0) :- {}.\n", body.join(", ")));
    }
    text.push_str("Goal() :- R(x).");
    Program::parse(&text, &v).expect("well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounded::certified_boundedness;
    use hp_structures::generators::{directed_path, down_tree};

    #[test]
    fn gallery_programs_parse_and_run() {
        let t = down_tree(3);
        assert!(!reach_leaf().evaluate(&t).relations[1].is_empty());
        let sg = same_generation().evaluate(&t);
        // Leaves of a complete binary tree are pairwise same-generation.
        assert!(sg.relations[0].len() >= 8 * 8 - 8);
        assert_eq!(transitive_closure().total_variable_count(), 3);
    }

    #[test]
    fn cycle_detection_goal() {
        let p = cycle_detection();
        assert!(
            p.evaluate(&hp_structures::generators::directed_cycle(4))
                .relations[p.idb_index("Goal").unwrap()]
            .len()
                == 1
        );
        assert!(p.evaluate(&directed_path(4)).relations[p.idb_index("Goal").unwrap()].is_empty());
    }

    #[test]
    fn boundedness_classification() {
        assert_eq!(certified_boundedness(&two_hop(), 3).unwrap(), Some(1));
        assert_eq!(
            certified_boundedness(&absorbed_recursion(), 3).unwrap(),
            Some(1)
        );
        assert_eq!(
            certified_boundedness(&transitive_closure(), 3).unwrap(),
            None
        );
    }

    #[test]
    fn bounded_reach_certifies() {
        for h in 1..=3 {
            let p = bounded_reach(h);
            let s = certified_boundedness(&p, 3).unwrap();
            // R stabilizes at stage 1; Goal needs one more application.
            assert_eq!(s, Some(2), "h = {h}");
        }
    }

    #[test]
    fn same_generation_is_unbounded() {
        assert_eq!(certified_boundedness(&same_generation(), 2).unwrap(), None);
    }
}
