//! Boundedness of Datalog programs (§7, Ajtai–Gurevich).
//!
//! A program is **bounded** when there is an `s` such that on *every*
//! finite structure the monotone operator reaches its least fixpoint within
//! `s` iterations. Theorem 7.5 says boundedness coincides with first-order
//! definability of the program's query.
//!
//! Two tools are provided:
//!
//! - [`stage_probe`] — empirical: stage counts over a family of structures
//!   (an unbounded program like transitive closure shows counts growing
//!   with the input; a bounded one plateaus);
//! - [`certified_bounded_at`] — exact: decides whether `Θ^s ≡ Θ^{s+1}` by
//!   Sagiv–Yannakakis UCQ equivalence. Since the stage formulas are
//!   monotone in `s` and `Θ^{s} ≡ Θ^{s+1}` implies `Θ^{s} ≡ Θ^{m}` for all
//!   `m ≥ s`, this certifies boundedness at `s` *on all finite structures*
//!   — the decidable criterion behind Theorem 7.5.

use std::time::Duration;

use hp_guard::{Budget, Resource};
use hp_structures::Structure;

use crate::ast::Program;
use crate::unfold::stage_ucq;

/// One row of an empirical boundedness probe.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BoundednessProbe {
    /// Universe size of the probed structure.
    pub universe: usize,
    /// Stages the naive operator needed to converge.
    pub stages: usize,
}

/// Run the program on each structure and record the stage counts.
///
/// Uses uncapped evaluation, so every recorded count is a true `m₀` (the
/// fixpoint is always reached — never a cap artefact).
pub fn stage_probe<'a, I: IntoIterator<Item = &'a Structure>>(
    p: &Program,
    structures: I,
) -> Vec<BoundednessProbe> {
    structures
        .into_iter()
        .map(|a| {
            let r = p.evaluate(a);
            debug_assert!(r.converged, "uncapped evaluation reaches the fixpoint");
            BoundednessProbe {
                universe: a.universe_size(),
                stages: r.stages,
            }
        })
        .collect()
}

/// Decide whether the program is bounded **at stage `s`**: for every IDB,
/// `Θ^s ≡ Θ^{s+1}` as queries on all finite structures (checked by UCQ
/// equivalence). Sound and complete for positive Datalog.
pub fn certified_bounded_at(p: &Program, s: usize) -> Result<bool, String> {
    for idb in 0..p.idbs().len() {
        let a = stage_ucq(p, idb, s)?;
        let b = stage_ucq(p, idb, s + 1)?;
        if !a.is_equivalent_to(&b) {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Search for the least `s ≤ max_s` at which the program is certified
/// bounded. Returns `Ok(Some(s))`, `Ok(None)` when no such stage exists up
/// to the cap (the program may be unbounded — transitive closure never
/// stabilizes), or an error from the unfolding.
pub fn certified_boundedness(p: &Program, max_s: usize) -> Result<Option<usize>, String> {
    for s in 0..=max_s {
        if certified_bounded_at(p, s)? {
            return Ok(Some(s));
        }
    }
    Ok(None)
}

/// Outcome of a budgeted boundedness search ([`certify_boundedness`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BoundednessVerdict {
    /// `Θ^s ≡ Θ^{s+1}` for every IDB: the program is bounded at stage
    /// `stage` on all finite structures, hence (Theorem 7.5) equivalent to
    /// the stage-`stage` UCQ unfolding, whose size is reported.
    Certified {
        /// The least certified stage within the budget.
        stage: usize,
        /// Disjunct count of the witnessing UCQ: the goal IDB's stage
        /// unfolding when a goal is designated, else the sum over all
        /// IDBs.
        ucq_disjuncts: usize,
    },
    /// Every stage `0..=max_stage` was tested and none certified. The
    /// program may be unbounded (like transitive closure) or bounded only
    /// beyond the cap.
    NotCertified {
        /// The inclusive cap that was exhausted.
        max_stage: usize,
    },
    /// The budget ran out before the stage search finished.
    BudgetExhausted {
        /// Stages `0..next_stage` were fully tested (and not certified);
        /// the search stopped before completing stage `next_stage`.
        next_stage: usize,
        /// Which resource ran out (fuel, wall-clock, or interrupt).
        resource: Resource,
        /// Fuel charged before the stop: one unit per per-IDB
        /// UCQ-equivalence test performed.
        fuel_spent: u64,
        /// Time actually spent.
        elapsed: Duration,
    },
}

/// Budgeted version of [`certified_boundedness`]: search for the least
/// certified stage `s ≤ max_stage` under a shared [`hp_guard::Budget`],
/// never giving a wrong answer — when the budget runs out the verdict says
/// which resource and how much fuel was spent instead of guessing. Fuel is
/// charged one unit per per-IDB UCQ-equivalence test (the NP-hard-squared
/// inner step); the wall clock and interrupt token are polled between
/// tests, so a single equivalence call can overshoot — the budget bounds
/// when the search *stops trying*, not the worst-case overshoot of one
/// test. This is the hook the `hp-analysis` boundedness pass (HP014)
/// calls.
pub fn certify_boundedness(
    p: &Program,
    max_stage: usize,
    budget: &Budget,
) -> Result<BoundednessVerdict, String> {
    let mut gauge = budget.gauge();
    for s in 0..=max_stage {
        let mut certified = true;
        for idb in 0..p.idbs().len() {
            // Charge the test about to run and poll the clock/interrupt:
            // exhaustion is reported *before* starting another NP-hard
            // equivalence check, never after one that certified a stage.
            if let Some(stop) = gauge.check().err().or_else(|| gauge.tick(1).err()) {
                return Ok(BoundednessVerdict::BudgetExhausted {
                    next_stage: s,
                    resource: stop.resource,
                    fuel_spent: stop.spent,
                    elapsed: stop.elapsed,
                });
            }
            let a = stage_ucq(p, idb, s)?;
            let b = stage_ucq(p, idb, s + 1)?;
            if !a.is_equivalent_to(&b) {
                certified = false;
                break;
            }
        }
        if certified {
            let ucq_disjuncts = match p.goal_index() {
                Some(g) => stage_ucq(p, g, s)?.len(),
                None => {
                    let mut total = 0;
                    for idb in 0..p.idbs().len() {
                        total += stage_ucq(p, idb, s)?.len();
                    }
                    total
                }
            };
            return Ok(BoundednessVerdict::Certified {
                stage: s,
                ucq_disjuncts,
            });
        }
    }
    Ok(BoundednessVerdict::NotCertified { max_stage })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hp_structures::generators::directed_path;
    use hp_structures::Vocabulary;

    fn tc() -> Program {
        Program::parse(
            "T(x,y) :- E(x,y).\nT(x,y) :- E(x,z), T(z,y).",
            &Vocabulary::digraph(),
        )
        .unwrap()
    }

    #[test]
    fn tc_probe_grows_with_diameter() {
        let p = tc();
        let paths: Vec<Structure> = (2..8).map(directed_path).collect();
        let probe = stage_probe(&p, paths.iter());
        for w in probe.windows(2) {
            assert!(w[1].stages > w[0].stages, "TC stages must grow: {probe:?}");
        }
    }

    #[test]
    fn tc_is_not_certified_bounded() {
        let p = tc();
        assert_eq!(certified_boundedness(&p, 4).unwrap(), None);
    }

    #[test]
    fn bounded_program_certified() {
        // "There is a path of length exactly 2 from x to y" via one
        // recursion level that never actually recurses... simplest bounded
        // program: P2(x,y) :- E(x,z), E(z,y). No recursion: bounded at 1.
        let p = Program::parse("P2(x,y) :- E(x,z), E(z,y).", &Vocabulary::digraph()).unwrap();
        assert_eq!(certified_boundedness(&p, 3).unwrap(), Some(1));
    }

    #[test]
    fn vacuous_recursion_is_bounded() {
        // Recursive rule that adds nothing new: T(x,y) :- E(x,y) and
        // T(x,y) :- T(x,y), E(x,y). The recursive rule is subsumed: bounded
        // at 1 (Θ² ≡ Θ¹).
        let p = Program::parse(
            "T(x,y) :- E(x,y).\nT(x,y) :- T(x,y), E(x,y).",
            &Vocabulary::digraph(),
        )
        .unwrap();
        assert_eq!(certified_boundedness(&p, 3).unwrap(), Some(1));
    }

    #[test]
    fn bounded_recursion_via_absorption() {
        // A classic bounded-looking program: reach-within-loop,
        // R(x) :- E(x,x).  R(x) :- E(x,y), R(y), E(x,x).
        // The recursive rule is absorbed: any witness already satisfies
        // E(x,x), so R = loops; bounded at... Θ¹ = loops; Θ² = loops ∨
        // (E(x,y) ∧ loop(y) ∧ E(x,x)) ⊒ contains Θ¹; containment other way:
        // each Θ² disjunct maps into Θ¹'s? The second disjunct's canonical:
        // x loop + edge to y loop... folds onto x=y? Only if hom exists:
        // canonical of disjunct 2: {x: E(x,x), E(x,y); y: E(y,y)} →
        // canonical of disjunct 1 {z: E(z,z)}: map x,y→z works! So bounded
        // at 1.
        let p = Program::parse(
            "R(x) :- E(x,x).\nR(x) :- E(x,y), R(y), E(x,x).",
            &Vocabulary::digraph(),
        )
        .unwrap();
        assert_eq!(certified_boundedness(&p, 3).unwrap(), Some(1));
    }

    #[test]
    fn zero_stage_bounded_program() {
        // A program whose IDB is always empty (no rules can ever fire
        // because the body is unsatisfiable-by-emptiness of another IDB).
        let p = Program::parse("A(x,y) :- E(x,y), B(y).\nB(x) :- A(x,x), B(x).", {
            &Vocabulary::digraph()
        })
        .unwrap();
        // Θ^s stays ⊥ for both: bounded at 0.
        assert_eq!(certified_boundedness(&p, 2).unwrap(), Some(0));
    }

    #[test]
    fn probe_on_bounded_program_plateaus() {
        let p = Program::parse("P2(x,y) :- E(x,z), E(z,y).", &Vocabulary::digraph()).unwrap();
        let paths: Vec<Structure> = (3..9).map(directed_path).collect();
        let probe = stage_probe(&p, paths.iter());
        assert!(probe.iter().all(|r| r.stages <= 1), "{probe:?}");
    }

    // --- edge cases and the budgeted search ---

    #[test]
    fn empty_program_is_bounded_at_zero() {
        let p = Program::new(Vocabulary::digraph(), vec![], vec![], vec![]).unwrap();
        assert_eq!(certified_boundedness(&p, 2).unwrap(), Some(0));
        assert_eq!(
            certify_boundedness(&p, 2, &Budget::unlimited()).unwrap(),
            BoundednessVerdict::Certified {
                stage: 0,
                ucq_disjuncts: 0
            }
        );
        // And the probe is trivially flat.
        let probe = stage_probe(&p, [directed_path(3)].iter());
        assert_eq!(
            probe,
            vec![BoundednessProbe {
                universe: 3,
                stages: 0
            }]
        );
    }

    #[test]
    fn goal_only_program_is_bounded_at_one() {
        // A single 0-ary goal rule: Θ¹ = ∃x E(x,x) = Θ².
        let p = Program::parse("Goal() :- E(x,x).", &Vocabulary::digraph()).unwrap();
        assert_eq!(certified_boundedness(&p, 2).unwrap(), Some(1));
        let v = certify_boundedness(&p, 2, &Budget::unlimited()).unwrap();
        assert_eq!(
            v,
            BoundednessVerdict::Certified {
                stage: 1,
                ucq_disjuncts: 1
            }
        );
    }

    #[test]
    fn zero_stage_verdict_carries_empty_witness() {
        // Both IDBs provably empty: certified at s = 0 with Θ⁰ = ⊥ (an
        // empty UCQ).
        let p = Program::parse("A(x,y) :- E(x,y), B(y).\nB(x) :- A(x,x), B(x).", {
            &Vocabulary::digraph()
        })
        .unwrap();
        assert_eq!(
            certify_boundedness(&p, 2, &Budget::unlimited()).unwrap(),
            BoundednessVerdict::Certified {
                stage: 0,
                ucq_disjuncts: 0
            }
        );
    }

    #[test]
    fn probe_underestimates_certified_stage() {
        // bounded_reach(2) is certified bounded at stage 2 (R stabilizes at
        // 1, Goal needs one more application), but on mark-free structures
        // no rule ever fires, so every empirical count is below the
        // certified stage: the probe alone would under-report the bound.
        let p = crate::gallery::bounded_reach(2);
        assert_eq!(certified_boundedness(&p, 3).unwrap(), Some(2));
        let vocab = p.edb().clone();
        let markless: Vec<Structure> = (2..7)
            .map(|n| {
                let mut s = Structure::new(vocab.clone(), n);
                let e = vocab.lookup("E").unwrap();
                for i in 0..n - 1 {
                    s.add_tuple(
                        e,
                        &[
                            hp_structures::Elem(i as u32),
                            hp_structures::Elem(i as u32 + 1),
                        ],
                    )
                    .unwrap();
                }
                s
            })
            .collect();
        let probe = stage_probe(&p, markless.iter());
        let empirical_max = probe.iter().map(|r| r.stages).max().unwrap();
        assert!(
            empirical_max < 2,
            "mark-free probe must undershoot the certified stage: {probe:?}"
        );
    }

    #[test]
    fn zero_time_budget_is_exhausted_not_wrong() {
        let p = tc();
        let budget = Budget::wall_clock(Duration::ZERO);
        match certify_boundedness(&p, 4, &budget).unwrap() {
            BoundednessVerdict::BudgetExhausted {
                next_stage,
                resource,
                fuel_spent,
                ..
            } => {
                assert_eq!(next_stage, 0);
                assert_eq!(resource, Resource::Time);
                assert_eq!(fuel_spent, 0);
            }
            v => panic!("expected BudgetExhausted, got {v:?}"),
        }
    }

    #[test]
    fn generous_budget_matches_unbudgeted_search() {
        let p = tc();
        let budget = Budget::wall_clock(Duration::from_secs(120));
        assert_eq!(
            certify_boundedness(&p, 3, &budget).unwrap(),
            BoundednessVerdict::NotCertified { max_stage: 3 }
        );
        let q = Program::parse("P2(x,y) :- E(x,z), E(z,y).", &Vocabulary::digraph()).unwrap();
        assert_eq!(
            certify_boundedness(&q, 3, &Budget::unlimited()).unwrap(),
            BoundednessVerdict::Certified {
                stage: 1,
                ucq_disjuncts: 1
            }
        );
    }
}
