//! Boundedness of Datalog programs (§7, Ajtai–Gurevich).
//!
//! A program is **bounded** when there is an `s` such that on *every*
//! finite structure the monotone operator reaches its least fixpoint within
//! `s` iterations. Theorem 7.5 says boundedness coincides with first-order
//! definability of the program's query.
//!
//! Two tools are provided:
//!
//! - [`stage_probe`] — empirical: stage counts over a family of structures
//!   (an unbounded program like transitive closure shows counts growing
//!   with the input; a bounded one plateaus);
//! - [`certified_bounded_at`] — exact: decides whether `Θ^s ≡ Θ^{s+1}` by
//!   Sagiv–Yannakakis UCQ equivalence. Since the stage formulas are
//!   monotone in `s` and `Θ^{s} ≡ Θ^{s+1}` implies `Θ^{s} ≡ Θ^{m}` for all
//!   `m ≥ s`, this certifies boundedness at `s` *on all finite structures*
//!   — the decidable criterion behind Theorem 7.5.

use hp_structures::Structure;

use crate::ast::Program;
use crate::unfold::stage_ucq;

/// One row of an empirical boundedness probe.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BoundednessProbe {
    /// Universe size of the probed structure.
    pub universe: usize,
    /// Stages the naive operator needed to converge.
    pub stages: usize,
}

/// Run the program on each structure and record the stage counts.
///
/// Uses uncapped evaluation, so every recorded count is a true `m₀` (the
/// fixpoint is always reached — never a cap artefact).
pub fn stage_probe<'a, I: IntoIterator<Item = &'a Structure>>(
    p: &Program,
    structures: I,
) -> Vec<BoundednessProbe> {
    structures
        .into_iter()
        .map(|a| {
            let r = p.evaluate(a);
            debug_assert!(r.converged, "uncapped evaluation reaches the fixpoint");
            BoundednessProbe {
                universe: a.universe_size(),
                stages: r.stages,
            }
        })
        .collect()
}

/// Decide whether the program is bounded **at stage `s`**: for every IDB,
/// `Θ^s ≡ Θ^{s+1}` as queries on all finite structures (checked by UCQ
/// equivalence). Sound and complete for positive Datalog.
pub fn certified_bounded_at(p: &Program, s: usize) -> Result<bool, String> {
    for idb in 0..p.idbs().len() {
        let a = stage_ucq(p, idb, s)?;
        let b = stage_ucq(p, idb, s + 1)?;
        if !a.is_equivalent_to(&b) {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Search for the least `s ≤ max_s` at which the program is certified
/// bounded. Returns `Ok(Some(s))`, `Ok(None)` when no such stage exists up
/// to the cap (the program may be unbounded — transitive closure never
/// stabilizes), or an error from the unfolding.
pub fn certified_boundedness(p: &Program, max_s: usize) -> Result<Option<usize>, String> {
    for s in 0..=max_s {
        if certified_bounded_at(p, s)? {
            return Ok(Some(s));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hp_structures::generators::directed_path;
    use hp_structures::Vocabulary;

    fn tc() -> Program {
        Program::parse(
            "T(x,y) :- E(x,y).\nT(x,y) :- E(x,z), T(z,y).",
            &Vocabulary::digraph(),
        )
        .unwrap()
    }

    #[test]
    fn tc_probe_grows_with_diameter() {
        let p = tc();
        let paths: Vec<Structure> = (2..8).map(directed_path).collect();
        let probe = stage_probe(&p, paths.iter());
        for w in probe.windows(2) {
            assert!(w[1].stages > w[0].stages, "TC stages must grow: {probe:?}");
        }
    }

    #[test]
    fn tc_is_not_certified_bounded() {
        let p = tc();
        assert_eq!(certified_boundedness(&p, 4).unwrap(), None);
    }

    #[test]
    fn bounded_program_certified() {
        // "There is a path of length exactly 2 from x to y" via one
        // recursion level that never actually recurses... simplest bounded
        // program: P2(x,y) :- E(x,z), E(z,y). No recursion: bounded at 1.
        let p = Program::parse("P2(x,y) :- E(x,z), E(z,y).", &Vocabulary::digraph()).unwrap();
        assert_eq!(certified_boundedness(&p, 3).unwrap(), Some(1));
    }

    #[test]
    fn vacuous_recursion_is_bounded() {
        // Recursive rule that adds nothing new: T(x,y) :- E(x,y) and
        // T(x,y) :- T(x,y), E(x,y). The recursive rule is subsumed: bounded
        // at 1 (Θ² ≡ Θ¹).
        let p = Program::parse(
            "T(x,y) :- E(x,y).\nT(x,y) :- T(x,y), E(x,y).",
            &Vocabulary::digraph(),
        )
        .unwrap();
        assert_eq!(certified_boundedness(&p, 3).unwrap(), Some(1));
    }

    #[test]
    fn bounded_recursion_via_absorption() {
        // A classic bounded-looking program: reach-within-loop,
        // R(x) :- E(x,x).  R(x) :- E(x,y), R(y), E(x,x).
        // The recursive rule is absorbed: any witness already satisfies
        // E(x,x), so R = loops; bounded at... Θ¹ = loops; Θ² = loops ∨
        // (E(x,y) ∧ loop(y) ∧ E(x,x)) ⊒ contains Θ¹; containment other way:
        // each Θ² disjunct maps into Θ¹'s? The second disjunct's canonical:
        // x loop + edge to y loop... folds onto x=y? Only if hom exists:
        // canonical of disjunct 2: {x: E(x,x), E(x,y); y: E(y,y)} →
        // canonical of disjunct 1 {z: E(z,z)}: map x,y→z works! So bounded
        // at 1.
        let p = Program::parse(
            "R(x) :- E(x,x).\nR(x) :- E(x,y), R(y), E(x,x).",
            &Vocabulary::digraph(),
        )
        .unwrap();
        assert_eq!(certified_boundedness(&p, 3).unwrap(), Some(1));
    }

    #[test]
    fn zero_stage_bounded_program() {
        // A program whose IDB is always empty (no rules can ever fire
        // because the body is unsatisfiable-by-emptiness of another IDB).
        let p = Program::parse("A(x,y) :- E(x,y), B(y).\nB(x) :- A(x,x), B(x).", {
            &Vocabulary::digraph()
        })
        .unwrap();
        // Θ^s stays ⊥ for both: bounded at 0.
        assert_eq!(certified_boundedness(&p, 2).unwrap(), Some(0));
    }

    #[test]
    fn probe_on_bounded_program_plateaus() {
        let p = Program::parse("P2(x,y) :- E(x,z), E(z,y).", &Vocabulary::digraph()).unwrap();
        let paths: Vec<Structure> = (3..9).map(directed_path).collect();
        let probe = stage_probe(&p, paths.iter());
        assert!(probe.iter().all(|r| r.stages <= 1), "{probe:?}");
    }
}
