//! Bottom-up evaluation: naive stages and semi-naive fixpoints.

use std::collections::BTreeSet;

use hp_structures::{Elem, Structure};

use crate::ast::{PredRef, Program, Rule};

/// An IDB relation instance: a set of tuples.
pub type IdbRelation = BTreeSet<Vec<Elem>>;

/// The result of evaluating a program on a structure.
#[derive(Clone, Debug)]
pub struct FixpointResult {
    idb_names: Vec<String>,
    /// Final relations, one per IDB.
    pub relations: Vec<IdbRelation>,
    /// Number of iterations of the simultaneous operator Φ needed to reach
    /// the least fixpoint (the `m₀` of §2.3; 0 for the empty fixpoint).
    pub stages: usize,
}

impl FixpointResult {
    /// The relation computed for a named IDB.
    pub fn idb(&self, name: &str) -> Option<&IdbRelation> {
        self.idb_names
            .iter()
            .position(|n| n == name)
            .map(|i| &self.relations[i])
    }
}

impl Program {
    /// All satisfying substitutions of a rule body against the given EDB
    /// structure and IDB state, reported as head tuples. `frontier`, when
    /// set, restricts one IDB body atom to the delta relation (semi-naive).
    fn rule_matches(
        &self,
        rule: &Rule,
        a: &Structure,
        idb: &[IdbRelation],
        delta: Option<(&[IdbRelation], usize)>,
        out: &mut IdbRelation,
    ) {
        // Variables of the rule, dense-indexed.
        let vars: Vec<u32> = rule.variables().into_iter().collect();
        let vpos = |v: u32| vars.binary_search(&v).expect("rule variable");
        let mut asg: Vec<Option<Elem>> = vec![None; vars.len()];
        // Order body atoms: delta atom first when present (cheap seed).
        let mut order: Vec<usize> = (0..rule.body.len()).collect();
        if let Some((_, di)) = delta {
            order.swap(0, di);
        }
        self.join(rule, a, idb, delta, &order, 0, &mut asg, &vpos, out);
    }

    #[allow(clippy::too_many_arguments)]
    fn join(
        &self,
        rule: &Rule,
        a: &Structure,
        idb: &[IdbRelation],
        delta: Option<(&[IdbRelation], usize)>,
        order: &[usize],
        depth: usize,
        asg: &mut Vec<Option<Elem>>,
        vpos: &dyn Fn(u32) -> usize,
        out: &mut IdbRelation,
    ) {
        if depth == order.len() {
            let tuple: Vec<Elem> = rule
                .head
                .args
                .iter()
                .map(|&v| asg[vpos(v)].expect("safe rule binds head vars"))
                .collect();
            out.insert(tuple);
            return;
        }
        let atom = &rule.body[order[depth]];
        let is_delta_atom =
            delta.is_some_and(|(_, di)| order[depth] == di) && matches!(atom.pred, PredRef::Idb(_));
        // Iterate candidate tuples for this atom.
        let try_tuple =
            |t: &[Elem], asg: &mut Vec<Option<Elem>>, s: &Program, out: &mut IdbRelation| {
                let mut touched: Vec<usize> = Vec::new();
                let mut ok = true;
                for (i, &v) in atom.args.iter().enumerate() {
                    let p = vpos(v);
                    match asg[p] {
                        Some(e) if e == t[i] => {}
                        Some(_) => {
                            ok = false;
                            break;
                        }
                        None => {
                            asg[p] = Some(t[i]);
                            touched.push(p);
                        }
                    }
                }
                if ok {
                    s.join(rule, a, idb, delta, order, depth + 1, asg, vpos, out);
                }
                for p in touched {
                    asg[p] = None;
                }
            };
        match atom.pred {
            PredRef::Edb(sym) => {
                for t in a.relation(sym).iter() {
                    try_tuple(t, asg, self, out);
                }
            }
            PredRef::Idb(i) => {
                let rel: &IdbRelation = if is_delta_atom {
                    &delta.expect("delta set").0[i]
                } else {
                    &idb[i]
                };
                // Clone-free iteration: BTreeSet iter.
                for t in rel.iter() {
                    try_tuple(t, asg, self, out);
                }
            }
        }
    }

    /// One application of the simultaneous monotone operator Φ (§2.3).
    pub fn apply_operator(&self, a: &Structure, idb: &[IdbRelation]) -> Vec<IdbRelation> {
        let mut next: Vec<IdbRelation> = vec![BTreeSet::new(); self.idbs().len()];
        for rule in self.rules() {
            let PredRef::Idb(h) = rule.head.pred else {
                unreachable!("validated")
            };
            let mut out = BTreeSet::new();
            self.rule_matches(rule, a, idb, None, &mut out);
            next[h].extend(out);
        }
        next
    }

    /// The naive stage sequence `Φ⁰ ⊆ Φ¹ ⊆ ⋯` up to (and including) the
    /// least fixpoint, capped at `max_stages` applications. Element `m` of
    /// the returned vector is `Φ^m` (so element 0 is all-empty).
    pub fn stages(&self, a: &Structure, max_stages: usize) -> Vec<Vec<IdbRelation>> {
        let mut out = vec![vec![BTreeSet::new(); self.idbs().len()]];
        for _ in 0..max_stages {
            let cur = out.last().expect("non-empty");
            let next = self.apply_operator(a, cur);
            if &next == cur {
                break;
            }
            out.push(next);
        }
        out
    }

    /// Semi-naive evaluation to the least fixpoint. Also records the stage
    /// count of the **naive** operator (which is what boundedness is about)
    /// by counting delta rounds — for Datalog the two coincide: the
    /// semi-naive rounds compute exactly the naive stages.
    pub fn evaluate(&self, a: &Structure) -> FixpointResult {
        let n_idb = self.idbs().len();
        let mut idb: Vec<IdbRelation> = vec![BTreeSet::new(); n_idb];
        let mut delta: Vec<IdbRelation> = vec![BTreeSet::new(); n_idb];
        // Round 0: rules evaluated on empty IDBs (EDB-only derivations and
        // empty-body facts).
        for rule in self.rules() {
            let PredRef::Idb(h) = rule.head.pred else {
                unreachable!()
            };
            let mut out = BTreeSet::new();
            self.rule_matches(rule, a, &idb, None, &mut out);
            for t in out {
                if !idb[h].contains(&t) {
                    delta[h].insert(t);
                }
            }
        }
        let mut stages = 0;
        while delta.iter().any(|d| !d.is_empty()) {
            stages += 1;
            for (h, d) in delta.iter().enumerate() {
                idb[h].extend(d.iter().cloned());
                let _ = h;
            }
            let mut next_delta: Vec<IdbRelation> = vec![BTreeSet::new(); n_idb];
            for rule in self.rules() {
                let PredRef::Idb(h) = rule.head.pred else {
                    unreachable!()
                };
                // For each IDB body atom, run with that atom restricted to
                // the delta (standard semi-naive split).
                for (bi, batom) in rule.body.iter().enumerate() {
                    if !matches!(batom.pred, PredRef::Idb(_)) {
                        continue;
                    }
                    let mut out = BTreeSet::new();
                    self.rule_matches(rule, a, &idb, Some((&delta, bi)), &mut out);
                    for t in out {
                        if !idb[h].contains(&t) {
                            next_delta[h].insert(t);
                        }
                    }
                }
            }
            delta = next_delta;
        }
        FixpointResult {
            idb_names: self.idbs().iter().map(|(n, _)| n.clone()).collect(),
            relations: idb,
            stages,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hp_structures::generators::{directed_cycle, directed_path, down_tree, random_digraph};
    use hp_structures::Vocabulary;

    fn tc() -> Program {
        Program::parse(
            "T(x,y) :- E(x,y).\nT(x,y) :- E(x,z), T(z,y).",
            &Vocabulary::digraph(),
        )
        .unwrap()
    }

    #[test]
    fn tc_on_path() {
        let r = tc().evaluate(&directed_path(5));
        assert_eq!(r.idb("T").unwrap().len(), 10);
        assert!(r.idb("T").unwrap().contains(&vec![Elem(0), Elem(4)]));
        assert!(!r.idb("T").unwrap().contains(&vec![Elem(4), Elem(0)]));
        assert!(r.idb("U").is_none());
    }

    #[test]
    fn tc_on_cycle_is_complete() {
        let r = tc().evaluate(&directed_cycle(4));
        assert_eq!(r.idb("T").unwrap().len(), 16);
    }

    #[test]
    fn naive_and_semi_naive_agree() {
        let p = tc();
        for seed in 0..8 {
            let a = random_digraph(7, 12, seed);
            let naive = p.stages(&a, 64);
            let fixpoint = naive.last().unwrap();
            let semi = p.evaluate(&a);
            assert_eq!(&semi.relations, fixpoint, "seed {seed}");
            // Stage counts agree: stages() returns Φ^0..Φ^{m0}.
            assert_eq!(naive.len() - 1, semi.stages, "seed {seed}");
        }
    }

    #[test]
    fn stages_grow_monotonically() {
        let p = tc();
        let a = directed_path(6);
        let st = p.stages(&a, 64);
        for w in st.windows(2) {
            for (r0, r1) in w[0].iter().zip(&w[1]) {
                assert!(r0.is_subset(r1));
            }
        }
        // Path of length 5: TC needs 5 stages.
        assert_eq!(st.len() - 1, 5);
    }

    #[test]
    fn stage_cap_respected() {
        let p = tc();
        let st = p.stages(&directed_path(10), 3);
        assert_eq!(st.len(), 4); // Φ^0..Φ^3
    }

    #[test]
    fn multi_idb_reachability() {
        let v = Vocabulary::from_pairs([("Down", 2), ("Leaf", 1)]);
        let p = Program::parse(
            "Reach(x) :- Leaf(x).\nReach(x) :- Down(x,y), Reach(y).\nGoal() :- Reach(x).",
            &v,
        )
        .unwrap();
        let t = down_tree(3);
        let r = p.evaluate(&t);
        // Every node reaches a leaf in a complete tree.
        assert_eq!(r.idb("Reach").unwrap().len(), t.universe_size());
        assert_eq!(r.idb("Goal").unwrap().len(), 1); // the empty tuple
    }

    #[test]
    fn zero_ary_goal_false_when_unreachable() {
        let p = Program::parse("Goal() :- E(x,x).", &Vocabulary::digraph()).unwrap();
        let r = p.evaluate(&directed_path(4));
        assert!(r.idb("Goal").unwrap().is_empty());
        let r2 = p.evaluate(&directed_cycle(1));
        assert_eq!(r2.idb("Goal").unwrap().len(), 1);
    }

    #[test]
    fn empty_structure_evaluates() {
        let p = tc();
        let a = Structure::new(Vocabulary::digraph(), 0);
        let r = p.evaluate(&a);
        assert!(r.idb("T").unwrap().is_empty());
        assert_eq!(r.stages, 0);
    }

    #[test]
    fn repeated_variables_in_rule() {
        // Loop detection: L(x) :- E(x,x).
        let p = Program::parse("L(x) :- E(x,x).", &Vocabulary::digraph()).unwrap();
        let mut a = directed_path(3);
        a.add_tuple_ids(0, &[1, 1]).unwrap();
        let r = p.evaluate(&a);
        assert_eq!(r.idb("L").unwrap().len(), 1);
        assert!(r.idb("L").unwrap().contains(&vec![Elem(1)]));
    }
}
