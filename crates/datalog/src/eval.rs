//! Bottom-up evaluation: naive stages and indexed, optionally sharded,
//! semi-naive fixpoints.
//!
//! The engine has two data paths:
//!
//! - **naive stages** ([`Program::stages`], [`Program::apply_operator`]) —
//!   scan-based recomputation of every stage, kept oracle-simple in
//!   [`crate::reference`]; returns a [`StageSequence`] that says whether
//!   the least fixpoint was actually verified within the cap;
//! - **semi-naive fixpoints** ([`Program::evaluate`] /
//!   [`Program::evaluate_with`]) — delta rounds driven through precomputed
//!   join plans ([`crate::plan`]) and per-predicate hash indexes
//!   ([`crate::index`]). With [`EvalConfig::threads`] > 1 each round's
//!   `(rule × delta atom × delta shard)` work items run on a hand-rolled
//!   scoped worker pool; rounds are barriers and every derived tuple lands
//!   in an ordered set, so the result — relations *and* stage counts — is
//!   bit-identical to the sequential evaluator for every thread count.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use std::fmt;

use hp_guard::{Budget, Budgeted, Gauge, GaugeState};
use hp_structures::{Elem, Relation, Row, Structure, StructureError, TupleStore};

use crate::ast::{PredRef, Program};
use crate::index::IndexPool;
use crate::plan::{JoinStep, ProgramPlan, RulePlan};

/// User-reachable misuse of the evaluation APIs, reported as a typed error
/// instead of a panic.
///
/// The resumable entry points ([`Program::resume_budgeted`], the
/// incremental-maintenance APIs on [`crate::MaterializedDb`]) accept state
/// produced by earlier calls; handing them state from a *different* program
/// or database is a caller bug that the library can detect cheaply, so it
/// refuses with a descriptive error rather than corrupting the computation
/// or asserting.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum EvalError {
    /// A checkpoint was handed to a program it did not come from (IDB
    /// count, names, or arities disagree).
    CheckpointMismatch {
        /// What disagreed between the checkpoint and the program.
        detail: String,
    },
    /// A materialized database was handed to a program it was not built
    /// from, or its vocabulary disagrees with the update batch.
    ProgramMismatch {
        /// What disagreed between the database and the program.
        detail: String,
    },
    /// An update batch contained invalid tuples (arity or element range).
    Structure(StructureError),
    /// The requested operation does not support programs with negated
    /// body literals (today: incremental view maintenance, whose
    /// counting/DRed machinery is sound only for monotone programs).
    NegationUnsupported {
        /// The operation that was refused.
        operation: String,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::CheckpointMismatch { detail } => {
                write!(f, "checkpoint does not match this program: {detail}")
            }
            EvalError::ProgramMismatch { detail } => {
                write!(f, "database does not match this program: {detail}")
            }
            EvalError::Structure(e) => write!(f, "invalid update batch: {e}"),
            EvalError::NegationUnsupported { operation } => {
                write!(
                    f,
                    "{operation} does not support stratified negation; \
                     re-evaluate the program from scratch instead"
                )
            }
        }
    }
}

impl std::error::Error for EvalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EvalError::Structure(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StructureError> for EvalError {
    fn from(e: StructureError) -> Self {
        EvalError::Structure(e)
    }
}

/// An IDB relation instance: a columnar, sorted set of tuples.
///
/// Since the arena-backed store landed this is [`hp_structures::Relation`]
/// itself — the evaluator's accumulated IDBs, deltas, and checkpoints share
/// one physical representation with EDB relations, and the per-round
/// delta-merge is a sorted-run merge instead of per-tuple set inserts.
pub type IdbRelation = Relation;

/// Configuration for [`Program::evaluate_with`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EvalConfig {
    /// Worker threads for the sharded semi-naive rounds. `1` (the default)
    /// evaluates on the calling thread; `0` uses the machine's available
    /// parallelism. Rounds seeded by few tuples skip the pool (spawn cost
    /// would dominate). Results are **bit-identical** for every setting.
    pub threads: usize,
    /// Cap on the number of Φ rounds, `None` (the default) to run to the
    /// least fixpoint. When the cap stops evaluation early the result
    /// carries the relations of stage Φ^cap and
    /// [`FixpointResult::converged`] is `false`.
    pub max_stages: Option<usize>,
    /// Rounds seeded by fewer tuples than this run on the calling thread
    /// even when `threads > 1` (worker spawn would cost more than the
    /// round's joins). Set to `0` to force every round onto the pool —
    /// results are identical either way, only wall-clock changes.
    pub parallel_min_seed: usize,
}

impl Default for EvalConfig {
    fn default() -> EvalConfig {
        EvalConfig {
            threads: 1,
            max_stages: None,
            parallel_min_seed: PARALLEL_MIN_SEED,
        }
    }
}

impl EvalConfig {
    /// The default configuration: sequential, uncapped.
    pub fn new() -> EvalConfig {
        EvalConfig::default()
    }

    /// Set the worker-thread count (`0` = available parallelism).
    pub fn with_threads(mut self, threads: usize) -> EvalConfig {
        self.threads = threads;
        self
    }

    /// Cap the number of Φ rounds.
    pub fn with_max_stages(mut self, max_stages: usize) -> EvalConfig {
        self.max_stages = Some(max_stages);
        self
    }

    /// Set the minimum seed-tuple count below which a round stays on the
    /// calling thread (`0` forces every round onto the pool).
    pub fn with_parallel_min_seed(mut self, parallel_min_seed: usize) -> EvalConfig {
        self.parallel_min_seed = parallel_min_seed;
        self
    }

    pub(crate) fn worker_count(&self) -> usize {
        match self.threads {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
    }
}

/// Measured cost of one stratum of a semi-naive evaluation.
///
/// Recorded by the budgeted and unbudgeted fixpoint entry points, one
/// entry per stratum *entered* (in ascending stratum order). Positive
/// programs have a single entry for stratum 0. The oracle-simple
/// reference evaluator and the incremental-maintenance path do not
/// profile; their results carry an empty profile.
#[derive(Clone, Debug, PartialEq)]
pub struct StratumProfile {
    /// The stratum index (ascending; 0 for positive programs).
    pub stratum: usize,
    /// Semi-naive delta rounds spent inside this stratum.
    pub stages: usize,
    /// Tuples derived by this stratum's rules (sum over rounds of the
    /// round's new-delta sizes — the same count the fuel charge uses).
    pub derived: u64,
    /// Fuel charged against the gauge while this stratum ran
    /// (`1 + derived` per round, matching the evaluator's tick schedule).
    pub fuel: u64,
    /// Wall-clock time spent inside this stratum. On a resumed run the
    /// interrupted stratum's entry covers only the post-resume work.
    pub elapsed: std::time::Duration,
}

/// The result of evaluating a program on a structure.
#[derive(Clone, Debug)]
pub struct FixpointResult {
    pub(crate) idb_names: Vec<String>,
    pub(crate) goal: Option<usize>,
    /// Final relations, one per IDB.
    pub relations: Vec<IdbRelation>,
    /// Number of iterations of the simultaneous operator Φ performed (the
    /// `m₀` of §2.3 when `converged`; 0 for the empty fixpoint).
    pub stages: usize,
    /// True when `relations` is the least fixpoint. Always true for
    /// uncapped evaluation; false when [`EvalConfig::max_stages`] stopped
    /// the rounds before the fixpoint was reached.
    pub converged: bool,
    /// Human-readable notes about degraded-mode events during evaluation —
    /// today, worker-panic recoveries in the sharded pool (the round was
    /// recomputed on the calling thread and evaluation continued
    /// single-threaded). Empty on a clean run.
    pub diagnostics: Vec<String>,
    /// Per-stratum measured cost (rounds, derived tuples, fuel,
    /// wall-clock), one entry per stratum entered. Empty for the
    /// reference evaluator and the incremental-maintenance path, which
    /// do not profile.
    pub profile: Vec<StratumProfile>,
}

impl FixpointResult {
    /// The relation computed for a named IDB.
    pub fn idb(&self, name: &str) -> Option<&IdbRelation> {
        self.idb_names
            .iter()
            .position(|n| n == name)
            .map(|i| &self.relations[i])
    }

    /// The relation of the program's designated goal IDB (`# goal:`
    /// pragma, or the IDB named `Goal` by convention), when one exists.
    pub fn goal(&self) -> Option<&IdbRelation> {
        self.goal.map(|g| &self.relations[g])
    }
}

/// The naive stage sequence `Φ⁰ ⊆ Φ¹ ⊆ ⋯` of [`Program::stages`], together
/// with whether the least fixpoint was verified.
///
/// The seed API returned a bare `Vec` that silently truncated at the cap —
/// a capped prefix was indistinguishable from a converged sequence, so a
/// wrong `m₀` could feed boundedness claims (Theorem 7.5 reasons about the
/// true least fixpoint). `converged` makes the distinction explicit; audit
/// any use of [`StageSequence::last`] against it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageSequence {
    /// Element `m` is `Φ^m` (element 0 is all-empty), up to and including
    /// the last computed stage.
    pub stages: Vec<Vec<IdbRelation>>,
    /// True when `Φ^{m+1} = Φ^m` was **observed** for the final element —
    /// i.e. the sequence provably reached the least fixpoint. False when
    /// the cap stopped iteration first (the final element may or may not be
    /// the fixpoint; it was never checked).
    pub converged: bool,
}

impl StageSequence {
    /// The last computed stage — the least fixpoint iff
    /// [`StageSequence::converged`].
    pub fn last(&self) -> &[IdbRelation] {
        self.stages.last().expect("stage 0 always present")
    }

    /// Number of operator applications performed (the `m₀` of §2.3 when
    /// converged).
    pub fn applications(&self) -> usize {
        self.stages.len() - 1
    }
}

/// A unit of per-round work: one rule, optionally seeded by one IDB body
/// atom reading the delta, restricted to one shard `(chunk, of)` of that
/// seed scan.
type WorkItem = (usize, Option<usize>, (usize, usize));

/// Default for [`EvalConfig::parallel_min_seed`]: below ~2k seed tuples a
/// round's joins are cheaper than spawning workers. The choice is a
/// function of deterministic state (the delta sizes), and both paths
/// compute identical ordered sets, so adaptivity cannot perturb results.
const PARALLEL_MIN_SEED: usize = 2048;

fn round_workers(workers: usize, min_seed: usize, seed_tuples: usize) -> usize {
    if seed_tuples < min_seed {
        1
    } else {
        workers
    }
}

/// Shared read-only state for one round's work items.
struct JoinCtx<'a> {
    a: &'a Structure,
    idb: &'a [IdbRelation],
    delta: &'a [IdbRelation],
    pool: &'a IndexPool<'a>,
}

/// A resumable snapshot of a budgeted semi-naive evaluation, returned as
/// the `partial` of an exhausted [`Program::evaluate_budgeted`] /
/// [`Program::resume_budgeted`] run.
///
/// The snapshot is taken at a **round boundary**: [`EvalCheckpoint::partial`]
/// holds the relations after `partial.stages` delta rounds (with
/// `converged == false`), and the pending delta plus the fuel position are
/// kept privately so [`Program::resume_budgeted`] can continue the very
/// same computation. Resuming with extra fuel `f2` after exhausting `f1`
/// lands at exactly the state of a single `f1 + f2` run (see
/// [`hp_guard::Budget::resume`]).
#[derive(Clone, Debug)]
pub struct EvalCheckpoint {
    /// The best-effort partial result: relations of stage Φ^{stages}, with
    /// [`FixpointResult::converged`] `false`.
    pub partial: FixpointResult,
    delta: Vec<IdbRelation>,
    /// The stratum whose delta rounds were interrupted (always 0 for
    /// positive programs).
    stratum: usize,
    fuel: GaugeState,
}

impl EvalCheckpoint {
    /// Cumulative fuel charged when the snapshot was taken (one unit per
    /// round plus one per tuple newly derived in it, across all runs of a
    /// resume chain).
    pub fn fuel_spent(&self) -> u64 {
        self.fuel.spent
    }
}

impl Program {
    /// Fresh all-empty IDB relations with the program's arities (stage Φ⁰).
    pub(crate) fn empty_idbs(&self) -> Vec<IdbRelation> {
        self.idbs()
            .iter()
            .map(|&(_, arity)| Relation::new(arity))
            .collect()
    }

    /// One application of the simultaneous monotone operator Φ (§2.3).
    pub fn apply_operator(&self, a: &Structure, idb: &[IdbRelation]) -> Vec<IdbRelation> {
        self.apply_operator_with(&ProgramPlan::new(self), a, idb)
    }

    /// The naive stage sequence `Φ⁰ ⊆ Φ¹ ⊆ ⋯`, capped at `max_stages`
    /// applications. The result says whether the least fixpoint was reached
    /// within the cap — a capped prefix no longer masquerades as `Φ^{m₀}`.
    pub fn stages(&self, a: &Structure, max_stages: usize) -> StageSequence {
        let plan = ProgramPlan::new(self);
        let mut stages = vec![self.empty_idbs()];
        let mut converged = false;
        for _ in 0..max_stages {
            let cur = stages.last().expect("non-empty");
            let next = self.apply_operator_with(&plan, a, cur);
            if &next == cur {
                converged = true;
                break;
            }
            stages.push(next);
        }
        StageSequence { stages, converged }
    }

    /// Semi-naive evaluation to the least fixpoint with the default
    /// configuration (sequential, uncapped). Also records the stage count
    /// of the **naive** operator (which is what boundedness is about) by
    /// counting delta rounds — for Datalog the two coincide: the semi-naive
    /// rounds compute exactly the naive stages.
    pub fn evaluate(&self, a: &Structure) -> FixpointResult {
        self.evaluate_with(a, &EvalConfig::default())
    }

    /// Semi-naive evaluation through the indexed join core, with optional
    /// sharded parallel rounds and an optional stage cap. See
    /// [`EvalConfig`]; results are bit-identical across thread counts.
    pub fn evaluate_with(&self, a: &Structure, cfg: &EvalConfig) -> FixpointResult {
        self.fixpoint(a, cfg, Budget::unlimited().gauge(), None)
            .unwrap_or_else(|_| unreachable!("an unlimited budget cannot exhaust"))
    }

    /// Budgeted semi-naive evaluation: like [`Program::evaluate_with`] but
    /// charged against `budget` — one fuel unit per round plus one per
    /// tuple newly derived in it, checked at round boundaries (so fuel
    /// stops are deterministic and bit-identical across thread counts; the
    /// wall clock and interrupt token are also polled there). On
    /// exhaustion the [`EvalCheckpoint`] partial holds the relations of
    /// the last completed round and can be handed to
    /// [`Program::resume_budgeted`].
    // The large Err variants below are the point of the budgeted API:
    // exhaustion carries a full checkpoint so callers can resume.
    #[allow(clippy::result_large_err)]
    pub fn evaluate_budgeted(
        &self,
        a: &Structure,
        cfg: &EvalConfig,
        budget: &Budget,
    ) -> Budgeted<FixpointResult, EvalCheckpoint> {
        self.fixpoint(a, cfg, budget.gauge(), None)
    }

    /// Continue an exhausted [`Program::evaluate_budgeted`] run from its
    /// checkpoint with a fresh allowance. The checkpoint must come from
    /// the same program and structure; a checkpoint whose IDB shape
    /// (count, names, or arities) disagrees with this program is rejected
    /// with [`EvalError::CheckpointMismatch`] instead of corrupting the
    /// resumed run. Fuel accounting is cumulative (`budget`'s fuel is
    /// added on top of the prior limit), so a run split as `f1` then `f2`
    /// stops at exactly the same rounds — and reaches the same fixpoint —
    /// as a single `f1 + f2` run.
    #[allow(clippy::result_large_err)]
    pub fn resume_budgeted(
        &self,
        a: &Structure,
        cfg: &EvalConfig,
        checkpoint: EvalCheckpoint,
        budget: &Budget,
    ) -> Result<Budgeted<FixpointResult, EvalCheckpoint>, EvalError> {
        self.check_checkpoint(&checkpoint)?;
        let gauge = budget.resume(checkpoint.fuel);
        Ok(self.fixpoint(a, cfg, gauge, Some(checkpoint)))
    }

    /// Validate that a checkpoint's IDB shape matches this program.
    fn check_checkpoint(&self, cp: &EvalCheckpoint) -> Result<(), EvalError> {
        let idbs = self.idbs();
        if cp.partial.relations.len() != idbs.len() {
            return Err(EvalError::CheckpointMismatch {
                detail: format!(
                    "checkpoint has {} IDB relations, program has {}",
                    cp.partial.relations.len(),
                    idbs.len()
                ),
            });
        }
        for (i, (name, arity)) in idbs.iter().enumerate() {
            if cp.partial.idb_names[i] != *name {
                return Err(EvalError::CheckpointMismatch {
                    detail: format!(
                        "IDB {i} is named {:?} in the checkpoint but {name:?} in the program",
                        cp.partial.idb_names[i]
                    ),
                });
            }
            if cp.partial.relations[i].arity() != *arity {
                return Err(EvalError::CheckpointMismatch {
                    detail: format!(
                        "IDB {name:?} has arity {} in the checkpoint but {arity} in the program",
                        cp.partial.relations[i].arity()
                    ),
                });
            }
        }
        if cp.stratum >= self.num_strata() {
            return Err(EvalError::CheckpointMismatch {
                detail: format!(
                    "checkpoint stopped in stratum {}, but the program has {} strata",
                    cp.stratum,
                    self.num_strata()
                ),
            });
        }
        Ok(())
    }

    /// The shared semi-naive engine behind the budgeted and unbudgeted
    /// entry points: stratum-ordered delta rounds charged against `gauge`,
    /// optionally continuing from a checkpoint taken at a round boundary.
    ///
    /// Strata run in ascending order; within each stratum the engine is
    /// the classical semi-naive loop over that stratum's rules, with
    /// same-stratum positive IDB atoms as the delta seeds. A negated
    /// literal only ever reads a strictly lower stratum, which is sealed
    /// (its delta has drained) by the time the reading stratum starts, so
    /// negation-as-complement is sound. Positive programs collapse to the
    /// single stratum 0 and take exactly the pre-negation code path: same
    /// rounds, same stage counts, same fuel tick sequence.
    #[allow(clippy::result_large_err)]
    fn fixpoint(
        &self,
        a: &Structure,
        cfg: &EvalConfig,
        mut gauge: Gauge,
        resume: Option<EvalCheckpoint>,
    ) -> Budgeted<FixpointResult, EvalCheckpoint> {
        let plan = ProgramPlan::new(self);
        let workers = cfg.worker_count().max(1);
        let chunks = workers;
        let n_idb = self.idbs().len();
        let idb_strata = self.strata();
        let num_strata = self.num_strata();
        let rule_strata: Vec<usize> = (0..plan.rules.len())
            .map(|ri| self.rule_stratum(ri))
            .collect();
        let mut pool = IndexPool::new(&plan, a);
        // A worker panic degrades the rest of the evaluation to the
        // calling thread; the diagnostics record every such recovery.
        let mut degraded = false;
        let mut diagnostics: Vec<String> = Vec::new();
        let checkpoint = |idb: Vec<IdbRelation>,
                          delta: Vec<IdbRelation>,
                          stages: usize,
                          stratum: usize,
                          diagnostics: Vec<String>,
                          profile: Vec<StratumProfile>,
                          fuel: GaugeState| {
            EvalCheckpoint {
                partial: FixpointResult {
                    idb_names: self.idbs().iter().map(|(n, _)| n.clone()).collect(),
                    goal: self.goal_index(),
                    relations: idb,
                    stages,
                    converged: false,
                    diagnostics,
                    profile,
                },
                delta,
                stratum,
                fuel,
            }
        };
        let mut profile: Vec<StratumProfile> = Vec::new();
        let (mut idb, mut delta, mut stages, start_stratum, mut mid_stratum) = match resume {
            Some(cp) => {
                // Shape validation happened in `check_checkpoint` before the
                // public entry points reached this engine.
                debug_assert_eq!(cp.partial.relations.len(), n_idb);
                // The fresh indexes must already contain the merged IDB
                // tuples; the pending delta is absorbed by the loop below
                // exactly as in an uninterrupted run.
                pool.absorb(&plan, &cp.partial.relations)
                    .unwrap_or_else(|e| panic!("{e}"));
                diagnostics = cp.partial.diagnostics;
                degraded = !diagnostics.is_empty();
                // Completed-strata costs survive the interruption; the
                // resumed stratum's entry covers only post-resume work.
                profile = cp.partial.profile;
                (
                    cp.partial.relations,
                    cp.delta,
                    cp.partial.stages,
                    cp.stratum,
                    true,
                )
            }
            None => (self.empty_idbs(), self.empty_idbs(), 0, 0, false),
        };
        let mut converged = true;
        'strata: for s in start_stratum..num_strata {
            let stratum_start = std::time::Instant::now();
            let stratum_stages_entry = stages;
            let stratum_fuel_entry = gauge.spent();
            let mut stratum_derived: u64 = 0;
            // Round 0 of stratum `s`: every rule of the stratum against the
            // IDBs accumulated so far (sealed lower strata; this stratum's
            // own predicates are still empty, so everything derived is new).
            // A resumed run re-enters its interrupted stratum directly at
            // the delta loop, pending delta in hand.
            if !std::mem::take(&mut mid_stratum) {
                delta = self.empty_idbs();
                let items: Vec<WorkItem> = (0..plan.rules.len())
                    .filter(|&ri| rule_strata[ri] == s)
                    .flat_map(|ri| (0..chunks).map(move |c| (ri, None, (c, chunks))))
                    .collect();
                let ctx = JoinCtx {
                    a,
                    idb: &idb,
                    delta: &delta,
                    pool: &pool,
                };
                let edb_tuples: usize = a.relations().map(|(_, r)| r.len()).sum();
                let w = if degraded {
                    1
                } else {
                    round_workers(workers, cfg.parallel_min_seed, edb_tuples)
                };
                let (results, recovered) = run_round(&plan, &ctx, &items, w);
                if recovered {
                    degraded = true;
                    diagnostics.push(recovery_note(stages));
                }
                for (h, out) in &results {
                    delta[*h].merge_store(out);
                }
                let derived: u64 = delta.iter().map(|d| d.len() as u64).sum();
                stratum_derived += derived;
                if let Err(stop) = gauge.tick(1 + derived) {
                    let fuel = stop.state();
                    return Err(stop.with_partial(checkpoint(
                        idb,
                        delta,
                        stages,
                        s,
                        diagnostics,
                        profile,
                        fuel,
                    )));
                }
            }
            loop {
                if delta.iter().all(|d| d.is_empty()) {
                    break; // stratum sealed; move on to the next
                }
                if cfg.max_stages.is_some_and(|cap| stages >= cap) {
                    converged = false;
                    profile.push(StratumProfile {
                        stratum: s,
                        stages: stages - stratum_stages_entry,
                        derived: stratum_derived,
                        fuel: gauge.spent() - stratum_fuel_entry,
                        elapsed: stratum_start.elapsed(),
                    });
                    break 'strata;
                }
                if let Err(stop) = gauge.check() {
                    let fuel = stop.state();
                    return Err(stop.with_partial(checkpoint(
                        idb,
                        delta,
                        stages,
                        s,
                        diagnostics,
                        profile,
                        fuel,
                    )));
                }
                stages += 1;
                // Row-id capacity exhaustion (> u32::MAX rows in one IDB
                // index arena) is unrecoverable mid-fixpoint; surface the
                // typed error loudly instead of wrapping.
                pool.absorb(&plan, &delta).unwrap_or_else(|e| panic!("{e}"));
                for (acc, d) in idb.iter_mut().zip(&delta) {
                    acc.merge(d);
                }
                // One work item per (stratum rule, same-stratum positive IDB
                // body atom, delta shard): the standard semi-naive split,
                // sharded for the pool. Lower-stratum atoms have drained
                // deltas and seed nothing.
                let items: Vec<WorkItem> = plan
                    .rules
                    .iter()
                    .enumerate()
                    .filter(|&(ri, _)| rule_strata[ri] == s)
                    .flat_map(|(ri, rp)| {
                        rp.idb_atoms
                            .iter()
                            .filter(|&&bi| match rp.atoms[bi].pred {
                                PredRef::Idb(p) => idb_strata[p] == s,
                                PredRef::Edb(_) => false,
                            })
                            .flat_map(move |&bi| {
                                (0..chunks).map(move |c| (ri, Some(bi), (c, chunks)))
                            })
                    })
                    .collect();
                let ctx = JoinCtx {
                    a,
                    idb: &idb,
                    delta: &delta,
                    pool: &pool,
                };
                let delta_tuples: usize = delta.iter().map(Relation::len).sum();
                let w = if degraded {
                    1
                } else {
                    round_workers(workers, cfg.parallel_min_seed, delta_tuples)
                };
                let (results, recovered) = run_round(&plan, &ctx, &items, w);
                if recovered {
                    degraded = true;
                    diagnostics.push(recovery_note(stages));
                }
                // New facts = (round output) \ (accumulated IDB): a galloping
                // sorted-set difference, then one sorted-run merge per head.
                let mut next_delta: Vec<IdbRelation> = self.empty_idbs();
                for (h, out) in &results {
                    let fresh = out.difference(idb[*h].store());
                    next_delta[*h].merge_store(&fresh);
                }
                delta = next_delta;
                let derived: u64 = delta.iter().map(|d| d.len() as u64).sum();
                stratum_derived += derived;
                if let Err(stop) = gauge.tick(1 + derived) {
                    let fuel = stop.state();
                    return Err(stop.with_partial(checkpoint(
                        idb,
                        delta,
                        stages,
                        s,
                        diagnostics,
                        profile,
                        fuel,
                    )));
                }
            }
            profile.push(StratumProfile {
                stratum: s,
                stages: stages - stratum_stages_entry,
                derived: stratum_derived,
                fuel: gauge.spent() - stratum_fuel_entry,
                elapsed: stratum_start.elapsed(),
            });
        }
        Ok(FixpointResult {
            idb_names: self.idbs().iter().map(|(n, _)| n.clone()).collect(),
            goal: self.goal_index(),
            relations: idb,
            stages,
            converged,
            diagnostics,
            profile,
        })
    }
}

/// The diagnostic recorded when a pool worker panicked during `round` and
/// the round was recomputed on the calling thread.
fn recovery_note(round: usize) -> String {
    format!(
        "round {round}: a pool worker panicked; the round's parallel results were \
         discarded and recomputed on the calling thread, and evaluation \
         continued single-threaded"
    )
}

/// Run one round's work items, sequentially or on the scoped pool, and
/// return each item's `(head IDB, derived tuples)` plus whether a worker
/// panic forced a sequential recovery. Items are independent and the
/// per-item outputs are ordered sets, so the merge is deterministic
/// regardless of scheduling.
///
/// Panic isolation: every item runs behind its own `catch_unwind`
/// boundary, so a panicking item can neither unwind through the scope
/// (which would abort the process from a worker) nor stall siblings at
/// the round barrier — the remaining workers drain and join normally.
/// When any item panicked, the round's parallel results are discarded
/// wholesale and the full item list is recomputed on the calling thread:
/// items are pure functions of the immutable round context, so the rerun
/// observes no state from the abandoned pass, and the returned tuples are
/// bit-identical to what an all-sequential evaluation produces.
fn run_round(
    plan: &ProgramPlan,
    ctx: &JoinCtx<'_>,
    items: &[WorkItem],
    workers: usize,
) -> (Vec<(usize, TupleStore)>, bool) {
    let run_one = |&(ri, delta_atom, chunk): &WorkItem| -> (usize, TupleStore) {
        let rp = &plan.rules[ri];
        // Derivations land in the store's pending delta (no per-tuple
        // ordering work); one seal per item sorts and dedups them.
        let mut out = TupleStore::new(rp.head_args.len());
        run_item(ctx, rp, delta_atom, chunk, &mut out);
        out.seal();
        (rp.head, out)
    };
    if workers <= 1 || items.len() <= 1 {
        return (items.iter().map(run_one).collect(), false);
    }
    // Hand-rolled scoped pool: workers pull item indices from an atomic
    // cursor (cheap dynamic load balancing) and stash `(index, result)`
    // pairs; results are re-ordered by item index afterwards so the round
    // is deterministic by construction.
    let cursor = AtomicUsize::new(0);
    let panicked = AtomicBool::new(false);
    let collected: Mutex<Vec<(usize, (usize, TupleStore))>> =
        Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|s| {
        for _ in 0..workers.min(items.len()) {
            s.spawn(|| {
                let mut local: Vec<(usize, (usize, TupleStore))> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        #[cfg(feature = "fault-inject")]
                        if hp_guard::fault::should_panic("datalog.worker", i as u64) {
                            panic!("fault injection: forced worker panic at item {i}");
                        }
                        run_one(&items[i])
                    }));
                    match result {
                        Ok(r) => local.push((i, r)),
                        Err(_) => {
                            // This round is void; stop pulling work and let
                            // the caller recover sequentially.
                            panicked.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                }
                // Tolerate a poisoned results lock: the Vec under it is
                // still well-formed, and on the recovery path it is
                // discarded anyway.
                collected
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .extend(local);
            });
        }
    });
    if panicked.load(Ordering::Relaxed) {
        return (items.iter().map(run_one).collect(), true);
    }
    let mut results = collected.into_inner().unwrap_or_else(|e| e.into_inner());
    results.sort_by_key(|&(i, _)| i);
    (results.into_iter().map(|(_, r)| r).collect(), false)
}

/// Evaluate one work item: all satisfying substitutions of the rule along
/// the precomputed join order for its seeding variant, with the seed scan
/// restricted to the item's shard.
fn run_item(
    ctx: &JoinCtx<'_>,
    rp: &RulePlan,
    delta_atom: Option<usize>,
    chunk: (usize, usize),
    out: &mut TupleStore,
) {
    let steps = match delta_atom {
        None => &rp.seed_order,
        Some(d) => rp.delta_orders[d]
            .as_ref()
            .expect("delta atom is an IDB atom"),
    };
    let mut asg = vec![Elem(0); rp.var_count];
    join(ctx, rp, steps, delta_atom, chunk, 0, &mut asg, out);
}

#[allow(clippy::too_many_arguments)]
fn join(
    ctx: &JoinCtx<'_>,
    rp: &RulePlan,
    steps: &[JoinStep],
    delta_atom: Option<usize>,
    chunk: (usize, usize),
    depth: usize,
    asg: &mut Vec<Elem>,
    out: &mut TupleStore,
) {
    if depth == steps.len() {
        // Duplicates are fine here: the item's seal dedups in one pass.
        out.push_with(|buf| buf.extend(rp.head_args.iter().map(|&s| asg[s])));
        return;
    }
    let step = &steps[depth];
    let atom = &rp.atoms[step.atom];
    if atom.negated {
        // Negated guard: the plan schedules it only once every argument is
        // bound, so the step is a single membership probe against the sealed
        // relation — the point lookup of the sorted-store complement
        // (`TupleStore::difference` restricted to one candidate). Negated
        // IDB atoms live in strictly lower strata, whose deltas drained
        // before this stratum started, so `ctx.idb` is their final value.
        let key: Vec<Elem> = step.bound.iter().map(|&(_, s)| asg[s]).collect();
        let present = match atom.pred {
            PredRef::Edb(sym) => ctx.a.relation(sym).contains(&key),
            PredRef::Idb(p) => ctx.idb[p].contains(&key),
        };
        if !present {
            join(ctx, rp, steps, delta_atom, chunk, depth + 1, asg, out);
        }
        return;
    }
    if let Some(spec) = step.index {
        // Hash probe on exactly the bound positions; candidates satisfy the
        // bound equalities by construction of the key.
        let key: Vec<Elem> = step.bound.iter().map(|&(_, s)| asg[s]).collect();
        for t in ctx.pool.get(spec).probe(&key) {
            advance(ctx, rp, steps, delta_atom, chunk, depth, asg, out, t, false);
        }
        return;
    }
    // Scan path: the whole relation (nothing bound, or this is the delta
    // atom). The seed scan at depth 0 is the sharding point: each work item
    // visits only its residue class of the scan.
    let (shard, of) = if depth == 0 { chunk } else { (0, 1) };
    match atom.pred {
        PredRef::Edb(sym) => {
            for (i, t) in ctx.a.relation(sym).iter().enumerate() {
                if i % of == shard {
                    advance(ctx, rp, steps, delta_atom, chunk, depth, asg, out, t, true);
                }
            }
        }
        PredRef::Idb(p) => {
            let rel: &IdbRelation = if delta_atom == Some(step.atom) {
                &ctx.delta[p]
            } else {
                &ctx.idb[p]
            };
            for (i, t) in rel.iter().enumerate() {
                if i % of == shard {
                    advance(ctx, rp, steps, delta_atom, chunk, depth, asg, out, t, true);
                }
            }
        }
    }
}

/// Check one candidate tuple against the step's repeat (and, for scans,
/// bound) constraints, bind its fresh variables, and recurse. No rollback
/// is needed: the plan statically guarantees deeper steps only read slots
/// bound on their prefix.
#[allow(clippy::too_many_arguments)]
fn advance<R: Row>(
    ctx: &JoinCtx<'_>,
    rp: &RulePlan,
    steps: &[JoinStep],
    delta_atom: Option<usize>,
    chunk: (usize, usize),
    depth: usize,
    asg: &mut Vec<Elem>,
    out: &mut TupleStore,
    t: R,
    check_bound: bool,
) {
    let step = &steps[depth];
    if check_bound {
        for &(i, s) in &step.bound {
            if t.at(i) != asg[s] {
                return;
            }
        }
    }
    for &(i, j) in &step.repeats {
        if t.at(i) != t.at(j) {
            return;
        }
    }
    for &(i, s) in &step.binds {
        asg[s] = t.at(i);
    }
    join(ctx, rp, steps, delta_atom, chunk, depth + 1, asg, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use hp_structures::generators::{directed_cycle, directed_path, down_tree, random_digraph};
    use hp_structures::Vocabulary;

    fn tc() -> Program {
        Program::parse(
            "T(x,y) :- E(x,y).\nT(x,y) :- E(x,z), T(z,y).",
            &Vocabulary::digraph(),
        )
        .unwrap()
    }

    #[test]
    fn tc_on_path() {
        let r = tc().evaluate(&directed_path(5));
        assert_eq!(r.idb("T").unwrap().len(), 10);
        assert!(r.idb("T").unwrap().contains(&[Elem(0), Elem(4)]));
        assert!(!r.idb("T").unwrap().contains(&[Elem(4), Elem(0)]));
        assert!(r.idb("U").is_none());
        assert!(r.converged);
    }

    #[test]
    fn tc_on_cycle_is_complete() {
        let r = tc().evaluate(&directed_cycle(4));
        assert_eq!(r.idb("T").unwrap().len(), 16);
    }

    #[test]
    fn profile_covers_every_stratum_and_sums_to_totals() {
        // Positive program: one entry for stratum 0.
        let r = tc().evaluate(&directed_path(5));
        assert_eq!(r.profile.len(), 1);
        assert_eq!(r.profile[0].stratum, 0);
        assert_eq!(r.profile[0].stages, r.stages);
        assert_eq!(r.profile[0].derived, 10);

        // Stratified negation: one entry per stratum, entries partition
        // the stage count, and the fuel charges sum to the gauge's spend.
        let p = Program::parse(
            "T(x,y) :- E(x,y).\nT(x,y) :- E(x,z), T(z,y).\nN(x,y) :- E(x,z), E(z,y), not T(x,y).\n\
             Goal(x,y) :- N(x,y).",
            &Vocabulary::digraph(),
        )
        .unwrap();
        let r = p
            .evaluate_budgeted(
                &directed_path(5),
                &EvalConfig::default(),
                &Budget::unlimited(),
            )
            .unwrap();
        assert_eq!(r.profile.len(), p.num_strata());
        assert_eq!(r.profile.iter().map(|s| s.stages).sum::<usize>(), r.stages);
        let strata: Vec<usize> = r.profile.iter().map(|s| s.stratum).collect();
        assert_eq!(strata, (0..p.num_strata()).collect::<Vec<_>>());
    }

    #[test]
    fn naive_and_semi_naive_agree() {
        let p = tc();
        for seed in 0..8 {
            let a = random_digraph(7, 12, seed);
            let naive = p.stages(&a, 64);
            assert!(naive.converged, "seed {seed}");
            let semi = p.evaluate(&a);
            assert_eq!(&semi.relations[..], naive.last(), "seed {seed}");
            // Stage counts agree: stages() returns Φ^0..Φ^{m0}.
            assert_eq!(naive.applications(), semi.stages, "seed {seed}");
        }
    }

    #[test]
    fn stages_grow_monotonically() {
        let p = tc();
        let a = directed_path(6);
        let st = p.stages(&a, 64);
        for w in st.stages.windows(2) {
            for (r0, r1) in w[0].iter().zip(&w[1]) {
                assert!(r0.is_subset(r1));
            }
        }
        // Path of length 5: TC needs 5 stages, verified as the fixpoint.
        assert_eq!(st.applications(), 5);
        assert!(st.converged);
    }

    #[test]
    fn stage_cap_is_not_silent() {
        let p = tc();
        // The old failure shape: TC of a 9-edge path needs 9 stages; a cap
        // of 3 used to hand back Φ^0..Φ^3 looking exactly like a converged
        // sequence. Now the truncation is explicit.
        let st = p.stages(&directed_path(10), 3);
        assert_eq!(st.stages.len(), 4); // Φ^0..Φ^3
        assert!(!st.converged, "cap hit must not report convergence");
        // Exactly at the fixpoint the equality check still runs: cap 9
        // computes Φ^9 but cannot verify it, cap 10 proves it.
        assert!(!p.stages(&directed_path(10), 9).converged);
        let verified = p.stages(&directed_path(10), 10);
        assert!(verified.converged);
        assert_eq!(verified.applications(), 9);
    }

    #[test]
    fn capped_evaluate_reports_non_convergence() {
        let p = tc();
        let a = directed_path(8);
        let full = p.evaluate(&a);
        assert!(full.converged);
        assert_eq!(full.stages, 7);
        for cap in 0..=7 {
            let r = p.evaluate_with(&a, &EvalConfig::new().with_max_stages(cap));
            assert_eq!(r.converged, cap >= 7, "cap {cap}");
            assert_eq!(r.stages, cap.min(7), "cap {cap}");
            // Capped relations are exactly the naive stage Φ^cap.
            let naive = p.stages(&a, cap);
            assert_eq!(&r.relations[..], naive.last(), "cap {cap}");
        }
    }

    #[test]
    fn multi_idb_reachability() {
        let v = Vocabulary::from_pairs([("Down", 2), ("Leaf", 1)]);
        let p = Program::parse(
            "Reach(x) :- Leaf(x).\nReach(x) :- Down(x,y), Reach(y).\nGoal() :- Reach(x).",
            &v,
        )
        .unwrap();
        let t = down_tree(3);
        let r = p.evaluate(&t);
        // Every node reaches a leaf in a complete tree.
        assert_eq!(r.idb("Reach").unwrap().len(), t.universe_size());
        assert_eq!(r.idb("Goal").unwrap().len(), 1); // the empty tuple
    }

    #[test]
    fn zero_ary_goal_false_when_unreachable() {
        let p = Program::parse("Goal() :- E(x,x).", &Vocabulary::digraph()).unwrap();
        let r = p.evaluate(&directed_path(4));
        assert!(r.idb("Goal").unwrap().is_empty());
        let r2 = p.evaluate(&directed_cycle(1));
        assert_eq!(r2.idb("Goal").unwrap().len(), 1);
    }

    #[test]
    fn empty_structure_evaluates() {
        let p = tc();
        let a = Structure::new(Vocabulary::digraph(), 0);
        let r = p.evaluate(&a);
        assert!(r.idb("T").unwrap().is_empty());
        assert_eq!(r.stages, 0);
        assert!(r.converged);
    }

    #[test]
    fn repeated_variables_in_rule() {
        // Loop detection: L(x) :- E(x,x).
        let p = Program::parse("L(x) :- E(x,x).", &Vocabulary::digraph()).unwrap();
        let mut a = directed_path(3);
        a.add_tuple_ids(0, &[1, 1]).unwrap();
        let r = p.evaluate(&a);
        assert_eq!(r.idb("L").unwrap().len(), 1);
        assert!(r.idb("L").unwrap().contains(&[Elem(1)]));
    }

    #[test]
    fn nonlinear_rule_with_duplicate_idb_atoms() {
        // Nonlinear TC: both body atoms are the same IDB predicate, so each
        // round runs two delta variants of the same rule.
        let p = Program::parse(
            "T(x,y) :- E(x,y).\nT(x,y) :- T(x,z), T(z,y).",
            &Vocabulary::digraph(),
        )
        .unwrap();
        let a = directed_path(6);
        let r = p.evaluate(&a);
        assert_eq!(r.idb("T").unwrap().len(), 15);
        let naive = p.stages(&a, 16);
        assert!(naive.converged);
        assert_eq!(&r.relations[..], naive.last());
        // Nonlinear TC doubles the frontier distance per round: the 5-edge
        // path converges in 4 rounds, not 5 — and semi-naive delta rounds
        // count exactly the naive stages.
        assert_eq!(r.stages, naive.applications());
        assert_eq!(r.stages, 4);
    }

    #[test]
    fn parallel_evaluation_is_bit_identical() {
        let programs = [
            tc(),
            Program::parse(
                "T(x,y) :- E(x,y).\nT(x,y) :- T(x,z), T(z,y).",
                &Vocabulary::digraph(),
            )
            .unwrap(),
            Program::parse("Goal() :- E(x,y), E(y,x).", &Vocabulary::digraph()).unwrap(),
        ];
        for p in &programs {
            for seed in 0..4 {
                let a = random_digraph(12, 30, seed);
                let sequential = p.evaluate(&a);
                for threads in [2usize, 4, 0] {
                    // min_seed 0 forces every round onto the pool — the
                    // structures here are far below the adaptive threshold.
                    let cfg = EvalConfig::new()
                        .with_threads(threads)
                        .with_parallel_min_seed(0);
                    let par = p.evaluate_with(&a, &cfg);
                    assert_eq!(par.relations, sequential.relations, "threads {threads}");
                    assert_eq!(par.stages, sequential.stages, "threads {threads}");
                    assert_eq!(par.converged, sequential.converged);
                }
            }
        }
    }

    #[test]
    fn budgeted_exhaustion_checkpoints_and_resumes_to_fixpoint() {
        let p = tc();
        let a = directed_path(8);
        let full = p.evaluate(&a);
        let cfg = EvalConfig::new();
        let e = p
            .evaluate_budgeted(&a, &cfg, &Budget::fuel(3))
            .expect_err("3 fuel cannot finish TC on a 7-edge path");
        assert_eq!(e.resource, hp_guard::Resource::Fuel);
        assert!(!e.partial.partial.converged);
        assert!(e.partial.fuel_spent() >= 3);
        // Every checkpointed relation is a subset of the true fixpoint.
        for (partial, fixed) in e.partial.partial.relations.iter().zip(&full.relations) {
            assert!(partial.is_subset(fixed));
        }
        let r = p
            .resume_budgeted(&a, &cfg, e.partial, &Budget::unlimited())
            .expect("checkpoint comes from this program")
            .expect("unlimited resume reaches the fixpoint");
        assert_eq!(r.relations, full.relations);
        assert_eq!(r.stages, full.stages);
        assert!(r.converged);
    }

    #[test]
    fn foreign_checkpoint_is_a_typed_error() {
        // A checkpoint from one program handed to another must come back as
        // `EvalError::CheckpointMismatch`, not a panic or a corrupted run.
        let p = tc();
        let a = directed_path(8);
        let cfg = EvalConfig::new();
        let e = p
            .evaluate_budgeted(&a, &cfg, &Budget::fuel(3))
            .expect_err("3 fuel cannot finish TC on a 7-edge path");

        // Different IDB count.
        let two_idbs =
            Program::parse("T(x,y) :- E(x,y).\nU(x) :- T(x,x).", &Vocabulary::digraph()).unwrap();
        let err = two_idbs
            .resume_budgeted(&a, &cfg, e.partial.clone(), &Budget::unlimited())
            .expect_err("IDB count differs");
        assert!(matches!(err, EvalError::CheckpointMismatch { .. }), "{err}");

        // Same count, different IDB name.
        let renamed = Program::parse(
            "U(x,y) :- E(x,y).\nU(x,y) :- E(x,z), U(z,y).",
            &Vocabulary::digraph(),
        )
        .unwrap();
        let err = renamed
            .resume_budgeted(&a, &cfg, e.partial.clone(), &Budget::unlimited())
            .expect_err("IDB name differs");
        assert!(matches!(err, EvalError::CheckpointMismatch { .. }), "{err}");
        assert!(err.to_string().contains("checkpoint"), "{err}");

        // Same count and name, different arity.
        let unary = Program::parse("T(x) :- E(x,x).", &Vocabulary::digraph()).unwrap();
        let err = unary
            .resume_budgeted(&a, &cfg, e.partial.clone(), &Budget::unlimited())
            .expect_err("IDB arity differs");
        assert!(matches!(err, EvalError::CheckpointMismatch { .. }), "{err}");

        // The same checkpoint still resumes cleanly on its own program.
        let r = p
            .resume_budgeted(&a, &cfg, e.partial, &Budget::unlimited())
            .expect("own checkpoint matches")
            .expect("unlimited resume finishes");
        assert_eq!(r.relations, p.evaluate(&a).relations);
    }

    #[test]
    fn fuel_split_equals_straight_run() {
        // Budget monotonicity at the engine level: for every split point,
        // f1 then f2 lands exactly where a single f1+f2 run lands.
        let p = tc();
        let a = directed_path(9);
        let cfg = EvalConfig::new();
        for f1 in 1..28u64 {
            for f2 in [1u64, 4, 17, 200] {
                let straight = p.evaluate_budgeted(&a, &cfg, &Budget::fuel(f1 + f2));
                let split = match p.evaluate_budgeted(&a, &cfg, &Budget::fuel(f1)) {
                    Ok(r) => Ok(r),
                    Err(e) => p
                        .resume_budgeted(&a, &cfg, e.partial, &Budget::fuel(f2))
                        .expect("checkpoint comes from this program"),
                };
                match (straight, split) {
                    (Ok(s), Ok(t)) => {
                        assert_eq!(s.relations, t.relations, "f1={f1} f2={f2}");
                        assert_eq!(s.stages, t.stages, "f1={f1} f2={f2}");
                    }
                    (Err(s), Err(t)) => {
                        let (s, t) = (s.partial, t.partial);
                        assert_eq!(s.partial.relations, t.partial.relations, "f1={f1} f2={f2}");
                        assert_eq!(s.partial.stages, t.partial.stages, "f1={f1} f2={f2}");
                        assert_eq!(s.delta, t.delta, "f1={f1} f2={f2}");
                        assert_eq!(s.fuel, t.fuel, "f1={f1} f2={f2}");
                    }
                    (s, t) => panic!(
                        "split and straight runs disagree on exhaustion for f1={f1} f2={f2}: \
                         straight ok={} split ok={}",
                        s.is_ok(),
                        t.is_ok()
                    ),
                }
            }
        }
    }

    #[test]
    fn budgeted_fuel_stops_are_thread_count_independent() {
        let p = tc();
        let a = random_digraph(12, 30, 1);
        let sequential_cfg = EvalConfig::new();
        let parallel_cfg = EvalConfig::new().with_threads(4).with_parallel_min_seed(0);
        for fuel in [1u64, 5, 20, 100] {
            let s = p.evaluate_budgeted(&a, &sequential_cfg, &Budget::fuel(fuel));
            let t = p.evaluate_budgeted(&a, &parallel_cfg, &Budget::fuel(fuel));
            match (s, t) {
                (Ok(s), Ok(t)) => assert_eq!(s.relations, t.relations, "fuel {fuel}"),
                (Err(s), Err(t)) => {
                    assert_eq!(
                        s.partial.partial.relations, t.partial.partial.relations,
                        "fuel {fuel}"
                    );
                    assert_eq!(
                        s.partial.fuel_spent(),
                        t.partial.fuel_spent(),
                        "fuel {fuel}"
                    );
                }
                _ => panic!("fuel stop depends on thread count at fuel {fuel}"),
            }
        }
    }

    #[test]
    fn clean_runs_carry_no_diagnostics() {
        let r = tc().evaluate(&directed_path(5));
        assert!(r.diagnostics.is_empty());
    }

    #[test]
    fn reference_evaluator_agrees_with_indexed() {
        let p = tc();
        for seed in 0..6 {
            let a = random_digraph(9, 20, seed);
            let reference = p.evaluate_reference(&a);
            let indexed = p.evaluate(&a);
            assert_eq!(reference.relations, indexed.relations, "seed {seed}");
            assert_eq!(reference.stages, indexed.stages, "seed {seed}");
        }
    }
}
