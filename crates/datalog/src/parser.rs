//! Parser for Datalog program text.
//!
//! ```text
//! # transitive closure
//! T(x,y) :- E(x,y).
//! T(x,y) :- E(x,z), T(z,y).
//! ```
//!
//! Predicates occurring in some head are IDBs (declared implicitly, arity
//! from first use); every other predicate must belong to the EDB
//! vocabulary. `#` starts a comment. Each rule ends with `.`.

use hp_structures::Vocabulary;

use crate::ast::{DatalogAtom, PredRef, Program, Rule};

pub(crate) fn parse_program(text: &str, edb: &Vocabulary) -> Result<Program, String> {
    // First pass: strip comments, split into rule chunks on '.'.
    let cleaned: String = text
        .lines()
        .map(|l| l.split('#').next().unwrap_or(""))
        .collect::<Vec<_>>()
        .join("\n");
    let mut raw_rules: Vec<(String, Option<String>)> = Vec::new();
    for chunk in cleaned.split('.') {
        let chunk = chunk.trim();
        if chunk.is_empty() {
            continue;
        }
        match chunk.split_once(":-") {
            Some((h, b)) => raw_rules.push((h.trim().to_string(), Some(b.trim().to_string()))),
            None => raw_rules.push((chunk.to_string(), None)),
        }
    }
    // Collect IDB names from heads.
    let mut idbs: Vec<(String, usize)> = Vec::new();
    let mut var_names: Vec<String> = Vec::new();
    let mut rules: Vec<Rule> = Vec::new();
    // Pre-scan heads for IDB names.
    let mut head_names: Vec<String> = Vec::new();
    for (h, _) in &raw_rules {
        let (name, _) = split_atom(h)?;
        if !head_names.contains(&name) {
            head_names.push(name);
        }
    }
    let var_id = |name: &str, vars: &mut Vec<String>| -> u32 {
        if let Some(i) = vars.iter().position(|v| v == name) {
            i as u32
        } else {
            vars.push(name.to_string());
            (vars.len() - 1) as u32
        }
    };
    let parse_atom = |s: &str,
                      idbs: &mut Vec<(String, usize)>,
                      vars: &mut Vec<String>|
     -> Result<DatalogAtom, String> {
        let (name, args) = split_atom(s)?;
        let args: Vec<u32> = args.iter().map(|a| var_id(a, vars)).collect();
        let pred = if head_names.contains(&name) {
            let idx = match idbs.iter().position(|(n, _)| *n == name) {
                Some(i) => {
                    if idbs[i].1 != args.len() {
                        return Err(format!(
                            "IDB {name} used with arities {} and {}",
                            idbs[i].1,
                            args.len()
                        ));
                    }
                    i
                }
                None => {
                    idbs.push((name.clone(), args.len()));
                    idbs.len() - 1
                }
            };
            PredRef::Idb(idx)
        } else {
            match edb.lookup(&name) {
                Some(s) => PredRef::Edb(s),
                None => return Err(format!("unknown EDB predicate {name}")),
            }
        };
        Ok(DatalogAtom { pred, args })
    };
    for (h, b) in &raw_rules {
        let head = parse_atom(h, &mut idbs, &mut var_names)?;
        let mut body = Vec::new();
        if let Some(b) = b {
            for part in split_atoms(b)? {
                body.push(parse_atom(&part, &mut idbs, &mut var_names)?);
            }
        }
        rules.push(Rule { head, body });
    }
    Program::new(edb.clone(), idbs, rules, var_names)
}

/// Split `Name(a, b, c)` into the name and argument identifiers.
fn split_atom(s: &str) -> Result<(String, Vec<String>), String> {
    let s = s.trim();
    let open = s.find('(').ok_or_else(|| format!("malformed atom {s:?}"))?;
    if !s.ends_with(')') {
        return Err(format!("malformed atom {s:?}"));
    }
    let name = s[..open].trim().to_string();
    if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return Err(format!("bad predicate name in {s:?}"));
    }
    let inner = &s[open + 1..s.len() - 1];
    let args: Vec<String> = if inner.trim().is_empty() {
        Vec::new()
    } else {
        inner.split(',').map(|a| a.trim().to_string()).collect()
    };
    for a in &args {
        if a.is_empty() || !a.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(format!("bad variable name {a:?} in {s:?}"));
        }
    }
    Ok((name, args))
}

/// Split a rule body on top-level commas (commas inside parentheses are
/// argument separators).
fn split_atoms(s: &str) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    for c in s.chars() {
        match c {
            '(' => {
                depth += 1;
                cur.push(c);
            }
            ')' => {
                depth = depth.checked_sub(1).ok_or("unbalanced parentheses")?;
                cur.push(c);
            }
            ',' if depth == 0 => {
                out.push(cur.trim().to_string());
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    if depth != 0 {
        return Err("unbalanced parentheses".into());
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_tc() {
        let p = parse_program(
            "# the paper's example\nT(x,y) :- E(x,y).\nT(x,y) :- E(x,z), T(z,y).",
            &Vocabulary::digraph(),
        )
        .unwrap();
        assert_eq!(p.rules().len(), 2);
        assert_eq!(p.total_variable_count(), 3);
    }

    #[test]
    fn parse_multi_idb() {
        let v = Vocabulary::from_pairs([("Down", 2), ("Leaf", 1)]);
        let p = parse_program(
            "Reach(x) :- Leaf(x).\nReach(x) :- Down(x,y), Reach(y).\nGoal() :- Reach(x).",
            &v,
        )
        .unwrap();
        assert_eq!(p.idbs().len(), 2);
        assert_eq!(p.idb_index("Goal"), Some(1));
    }

    #[test]
    fn error_on_unknown_edb() {
        let e = parse_program("T(x,y) :- F(x,y).", &Vocabulary::digraph()).unwrap_err();
        assert!(e.contains("unknown EDB"));
    }

    #[test]
    fn error_on_malformed() {
        assert!(parse_program("T(x,y :- E(x,y).", &Vocabulary::digraph()).is_err());
        assert!(parse_program("T(x,y) :- E(x,(y)).", &Vocabulary::digraph()).is_err());
    }

    #[test]
    fn error_on_inconsistent_idb_arity() {
        let e = parse_program("T(x,y) :- E(x,y).\nT(x) :- T(x,x).", &Vocabulary::digraph())
            .unwrap_err();
        assert!(e.contains("ar"), "{e}");
    }

    #[test]
    fn facts_with_empty_body_rejected_when_unsafe() {
        // "T(x,y)." with no body is unsafe (head vars unbound).
        assert!(parse_program("T(x,y).", &Vocabulary::digraph()).is_err());
        // A 0-ary fact is fine.
        let p = parse_program("Flag().", &Vocabulary::digraph()).unwrap();
        assert_eq!(p.idbs(), &[("Flag".to_string(), 0)]);
    }
}
