//! Parser for Datalog program text.
//!
//! ```text
//! # transitive closure
//! T(x,y) :- E(x,y).
//! T(x,y) :- E(x,z), T(z,y).
//! ```
//!
//! Predicates occurring in some head are IDBs (declared implicitly, arity
//! from first use); every other predicate must belong to the EDB
//! vocabulary. `#` starts a comment. Each rule ends with `.`. A body
//! literal may be negated with a `not` prefix (`D(x,y) :- R(x,y), not
//! S(x,y).`); the resulting program must be stratifiable and every
//! variable of a negated literal must be bound by a positive body atom.
//!
//! The parser tracks the 1-based source line on which each rule starts, so
//! every [`DatalogError`] points back into the original text (comments and
//! blank lines included), not into a concatenated, comment-stripped copy.

use hp_structures::Vocabulary;

use crate::ast::{DatalogAtom, PredRef, Program, Rule};
use crate::error::{DatalogError, DatalogErrorKind, DatalogSpan};

/// A raw rule chunk: head text, optional body text, and the 1-based line
/// on which the rule's first non-whitespace character sits.
struct RawRule {
    head: String,
    body: Option<String>,
    line: usize,
}

/// Extract the first `# goal:` pragma from the text: the 1-based line it
/// sits on and its payload. The pragma is a comment to the rule splitter,
/// so it never interferes with rule parsing.
pub(crate) fn find_goal_pragma(text: &str) -> Option<(usize, &str)> {
    for (i, line) in text.lines().enumerate() {
        let t = line.trim();
        for prefix in ["# goal:", "#goal:"] {
            if let Some(rest) = t.strip_prefix(prefix) {
                return Some((i + 1, rest.trim()));
            }
        }
    }
    None
}

/// Validate a goal pragma payload as a bare predicate name.
fn parse_goal_pragma(payload: &str, line: usize) -> Result<String, DatalogError> {
    if payload.is_empty()
        || !payload
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_')
    {
        return Err(DatalogError::new(
            DatalogErrorKind::BadGoalPragma {
                text: payload.to_string(),
            },
            DatalogSpan::line(line),
        ));
    }
    Ok(payload.to_string())
}

pub(crate) fn parse_program(text: &str, edb: &Vocabulary) -> Result<Program, DatalogError> {
    let goal_pragma = match find_goal_pragma(text) {
        Some((line, payload)) => Some((line, parse_goal_pragma(payload, line)?)),
        None => None,
    };
    let raw_rules = split_rules(text)?;
    // Collect IDB names from heads.
    let mut idbs: Vec<(String, usize)> = Vec::new();
    let mut var_names: Vec<String> = Vec::new();
    let mut rules: Vec<Rule> = Vec::new();
    let mut rule_lines: Vec<Option<usize>> = Vec::new();
    // Pre-scan heads for IDB names.
    let mut head_names: Vec<String> = Vec::new();
    for r in &raw_rules {
        if strip_not(&r.head).0 {
            return Err(DatalogError::new(
                DatalogErrorKind::NegatedHead,
                DatalogSpan::line(r.line),
            ));
        }
        let (name, _) = split_atom(&r.head).map_err(|e| e.with_line(r.line))?;
        if !head_names.contains(&name) {
            head_names.push(name);
        }
    }
    let var_id = |name: &str, vars: &mut Vec<String>| -> u32 {
        if let Some(i) = vars.iter().position(|v| v == name) {
            i as u32
        } else {
            vars.push(name.to_string());
            (vars.len() - 1) as u32
        }
    };
    let parse_atom = |s: &str,
                      idbs: &mut Vec<(String, usize)>,
                      vars: &mut Vec<String>|
     -> Result<DatalogAtom, DatalogError> {
        let (name, args) = split_atom(s)?;
        let args: Vec<u32> = args.iter().map(|a| var_id(a, vars)).collect();
        let pred = if head_names.contains(&name) {
            let idx = match idbs.iter().position(|(n, _)| *n == name) {
                Some(i) => {
                    if idbs[i].1 != args.len() {
                        return Err(DatalogError::new(
                            DatalogErrorKind::IdbArityConflict {
                                name,
                                first: idbs[i].1,
                                second: args.len(),
                            },
                            DatalogSpan::default(),
                        ));
                    }
                    i
                }
                None => {
                    idbs.push((name.clone(), args.len()));
                    idbs.len() - 1
                }
            };
            PredRef::Idb(idx)
        } else {
            match edb.lookup(&name) {
                Some(s) => PredRef::Edb(s),
                None => {
                    return Err(DatalogError::new(
                        DatalogErrorKind::UnknownEdb { name },
                        DatalogSpan::default(),
                    ))
                }
            }
        };
        Ok(DatalogAtom {
            pred,
            args,
            negated: false,
        })
    };
    for r in &raw_rules {
        let head =
            parse_atom(&r.head, &mut idbs, &mut var_names).map_err(|e| e.with_line(r.line))?;
        let mut body = Vec::new();
        if let Some(b) = &r.body {
            for part in split_atoms(b).map_err(|e| e.with_line(r.line))? {
                let (negated, atom_text) = strip_not(&part);
                let mut atom = parse_atom(atom_text, &mut idbs, &mut var_names)
                    .map_err(|e| e.with_line(r.line))?;
                atom.negated = negated;
                body.push(atom);
            }
        }
        rules.push(Rule { head, body });
        rule_lines.push(Some(r.line));
    }
    let p = Program::new_with_lines(edb.clone(), idbs, rules, var_names, rule_lines.clone())
        .map_err(|e| match e.span.rule {
            Some(ri) => match rule_lines.get(ri).copied().flatten() {
                Some(line) => e.with_line(line),
                None => e,
            },
            None => e,
        })?;
    match goal_pragma {
        Some((line, name)) => p.with_goal(&name).map_err(|e| e.with_line(line)),
        None => Ok(p),
    }
}

/// Byte ranges of the rule chunks of a program text, in rule order. Range
/// `i` starts at the first non-whitespace byte of rule `i` and ends just
/// past its terminating `.` — comments and blank lines between rules are
/// not covered. This is the hook source-rewriting tools (`hompres-lint
/// --fix`) use to delete exactly the text of a rule, and it tracks the
/// parser's own chunking (same comment and `.` handling), so range `i`
/// always corresponds to `Program::rules()[i]` when the text parses.
pub fn rule_byte_ranges(text: &str) -> Vec<std::ops::Range<usize>> {
    let mut out = Vec::new();
    let mut start: Option<usize> = None;
    let mut pos = 0usize;
    for raw_line in text.split_inclusive('\n') {
        let code_len = raw_line.find('#').unwrap_or(raw_line.len());
        for (off, c) in raw_line.char_indices() {
            if off >= code_len {
                break;
            }
            if c == '.' {
                if let Some(s) = start.take() {
                    out.push(s..pos + off + 1);
                }
            } else if !c.is_whitespace() && start.is_none() {
                start = Some(pos + off);
            }
        }
        pos += raw_line.len();
    }
    out
}

/// Byte ranges of the **body atoms** of each rule, in rule order: entry
/// `i` lists, for `Program::rules()[i]`, one range per body atom in body
/// order (facts get an empty list). Each range starts at the atom's first
/// non-whitespace code byte and ends just past its last — separating
/// commas, comments, and surrounding whitespace are not covered. Tracks
/// the parser's own chunking (same comment, `:-`, top-level-comma, and
/// `.` handling), so the ranges line up with [`Program`] indices whenever
/// the text parses. This is the hook `hompres-lint --fix` uses to delete
/// exactly the text of one redundant atom.
pub fn body_atom_byte_ranges(text: &str) -> Vec<Vec<std::ops::Range<usize>>> {
    let mut out = Vec::new();
    let mut atoms: Vec<std::ops::Range<usize>> = Vec::new();
    let mut in_body = false;
    let mut depth = 0usize;
    let mut start: Option<usize> = None;
    let mut end = 0usize;
    let mut rule_started = false;
    let mut pos = 0usize;
    for raw_line in text.split_inclusive('\n') {
        let code_len = raw_line.find('#').unwrap_or(raw_line.len());
        let mut it = raw_line[..code_len].char_indices().peekable();
        while let Some((off, c)) = it.next() {
            let at = pos + off;
            match c {
                // `.` terminates the chunk unconditionally, exactly like
                // the splitter in `split_rules`.
                '.' => {
                    if let Some(s) = start.take() {
                        atoms.push(s..end);
                    }
                    if rule_started {
                        out.push(std::mem::take(&mut atoms));
                    }
                    atoms.clear();
                    in_body = false;
                    depth = 0;
                    rule_started = false;
                }
                ':' if !in_body && matches!(it.peek(), Some((_, '-'))) => {
                    it.next();
                    in_body = true;
                }
                ',' if in_body && depth == 0 => {
                    if let Some(s) = start.take() {
                        atoms.push(s..end);
                    }
                }
                _ => {
                    match c {
                        '(' => depth += 1,
                        ')' => depth = depth.saturating_sub(1),
                        _ => {}
                    }
                    if !c.is_whitespace() {
                        rule_started = true;
                        if in_body {
                            if start.is_none() {
                                start = Some(at);
                            }
                            end = at + c.len_utf8();
                        }
                    }
                }
            }
        }
        pos += raw_line.len();
    }
    // The parser accepts a final chunk without a terminating `.`.
    if let Some(s) = start.take() {
        atoms.push(s..end);
    }
    if rule_started {
        out.push(atoms);
    }
    out
}

/// First pass: strip comments, split into rule chunks on `.`, remembering
/// the 1-based line each chunk starts on.
fn split_rules(text: &str) -> Result<Vec<RawRule>, DatalogError> {
    let mut out: Vec<RawRule> = Vec::new();
    let mut cur = String::new();
    let mut cur_line = 1usize;
    let push_chunk = |chunk: &str, line: usize, out: &mut Vec<RawRule>| {
        let chunk = chunk.trim();
        if chunk.is_empty() {
            return;
        }
        match chunk.split_once(":-") {
            Some((h, b)) => out.push(RawRule {
                head: h.trim().to_string(),
                body: Some(b.trim().to_string()),
                line,
            }),
            None => out.push(RawRule {
                head: chunk.to_string(),
                body: None,
                line,
            }),
        }
    };
    for (i, raw_line) in text.lines().enumerate() {
        let code = raw_line.split('#').next().unwrap_or("");
        for c in code.chars() {
            if c == '.' {
                push_chunk(&cur, cur_line, &mut out);
                cur.clear();
            } else {
                if !c.is_whitespace() && cur.trim().is_empty() {
                    cur_line = i + 1;
                }
                cur.push(c);
            }
        }
        cur.push('\n');
    }
    push_chunk(&cur, cur_line, &mut out);
    Ok(out)
}

/// Strip a leading `not` keyword from a literal. The keyword must be
/// followed by whitespace, so a predicate legitimately named `not` (as in
/// `not(x,y)`) is left alone.
fn strip_not(s: &str) -> (bool, &str) {
    let s = s.trim();
    match s.strip_prefix("not") {
        Some(rest) if rest.starts_with(char::is_whitespace) => (true, rest.trim_start()),
        _ => (false, s),
    }
}

/// Split `Name(a, b, c)` into the name and argument identifiers.
fn split_atom(s: &str) -> Result<(String, Vec<String>), DatalogError> {
    let err = |kind| DatalogError::new(kind, DatalogSpan::default());
    let s = s.trim();
    let open = s.find('(').ok_or_else(|| {
        err(DatalogErrorKind::MalformedAtom {
            text: s.to_string(),
        })
    })?;
    if !s.ends_with(')') {
        return Err(err(DatalogErrorKind::MalformedAtom {
            text: s.to_string(),
        }));
    }
    let name = s[..open].trim().to_string();
    if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return Err(err(DatalogErrorKind::BadPredicateName {
            text: s.to_string(),
        }));
    }
    let inner = &s[open + 1..s.len() - 1];
    let args: Vec<String> = if inner.trim().is_empty() {
        Vec::new()
    } else {
        inner.split(',').map(|a| a.trim().to_string()).collect()
    };
    for a in &args {
        if a.is_empty() || !a.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(err(DatalogErrorKind::BadVariableName {
                name: a.clone(),
                atom: s.to_string(),
            }));
        }
    }
    Ok((name, args))
}

/// Split a rule body on top-level commas (commas inside parentheses are
/// argument separators).
fn split_atoms(s: &str) -> Result<Vec<String>, DatalogError> {
    let unbalanced =
        || DatalogError::new(DatalogErrorKind::UnbalancedParens, DatalogSpan::default());
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    for c in s.chars() {
        match c {
            '(' => {
                depth += 1;
                cur.push(c);
            }
            ')' => {
                depth = depth.checked_sub(1).ok_or_else(unbalanced)?;
                cur.push(c);
            }
            ',' if depth == 0 => {
                out.push(cur.trim().to_string());
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    if depth != 0 {
        return Err(unbalanced());
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::DatalogErrorKind;

    #[test]
    fn parse_tc() {
        let p = parse_program(
            "# the paper's example\nT(x,y) :- E(x,y).\nT(x,y) :- E(x,z), T(z,y).",
            &Vocabulary::digraph(),
        )
        .unwrap();
        assert_eq!(p.rules().len(), 2);
        assert_eq!(p.total_variable_count(), 3);
        // Lines are 1-based and skip the comment line.
        assert_eq!(p.rule_line(0), Some(2));
        assert_eq!(p.rule_line(1), Some(3));
    }

    #[test]
    fn parse_multi_idb() {
        let v = Vocabulary::from_pairs([("Down", 2), ("Leaf", 1)]);
        let p = parse_program(
            "Reach(x) :- Leaf(x).\nReach(x) :- Down(x,y), Reach(y).\nGoal() :- Reach(x).",
            &v,
        )
        .unwrap();
        assert_eq!(p.idbs().len(), 2);
        assert_eq!(p.idb_index("Goal"), Some(1));
    }

    #[test]
    fn error_on_unknown_edb() {
        let e = parse_program("T(x,y) :- F(x,y).", &Vocabulary::digraph()).unwrap_err();
        assert!(matches!(e.kind, DatalogErrorKind::UnknownEdb { ref name } if name == "F"));
        assert_eq!(e.span.line, Some(1));
    }

    #[test]
    fn error_on_malformed() {
        assert!(parse_program("T(x,y :- E(x,y).", &Vocabulary::digraph()).is_err());
        assert!(parse_program("T(x,y) :- E(x,(y)).", &Vocabulary::digraph()).is_err());
    }

    #[test]
    fn error_on_inconsistent_idb_arity() {
        let e = parse_program("T(x,y) :- E(x,y).\nT(x) :- T(x,x).", &Vocabulary::digraph())
            .unwrap_err();
        assert!(
            matches!(
                e.kind,
                DatalogErrorKind::IdbArityConflict {
                    first: 2,
                    second: 1,
                    ..
                }
            ),
            "{e}"
        );
        assert_eq!(e.span.line, Some(2));
    }

    #[test]
    fn facts_with_empty_body_rejected_when_unsafe() {
        // "T(x,y)." with no body is unsafe (head vars unbound).
        assert!(parse_program("T(x,y).", &Vocabulary::digraph()).is_err());
        // A 0-ary fact is fine.
        let p = parse_program("Flag().", &Vocabulary::digraph()).unwrap();
        assert_eq!(p.idbs(), &[("Flag".to_string(), 0)]);
    }

    #[test]
    fn error_lines_point_into_original_text() {
        // Comments, blank lines, and a multi-line rule before the bad one:
        // the error must name the line of the offending rule in the
        // original text, not in a stripped/joined copy.
        let text = "# header comment\n\nT(x,y) :- E(x,y).\nT(x,y) :-\n    E(x,z),\n    T(z,y).\n\n# another comment\nT(x,w) :- Q(x,w).";
        let e = parse_program(text, &Vocabulary::digraph()).unwrap_err();
        assert!(matches!(e.kind, DatalogErrorKind::UnknownEdb { ref name } if name == "Q"));
        assert_eq!(e.span.line, Some(9));
    }

    #[test]
    fn multiline_rule_line_is_first_line() {
        let text = "T(x,y) :- E(x,y).\nT(x,y) :-\n    E(x,z),\n    T(z,y).";
        let p = parse_program(text, &Vocabulary::digraph()).unwrap();
        assert_eq!(p.rule_line(0), Some(1));
        assert_eq!(p.rule_line(1), Some(2));
    }

    #[test]
    fn body_atom_ranges_cover_exactly_the_atom_text() {
        let text = "# tc\nT(x,y) :- E(x,y).\nT(x,y) :-\n    E(x,z), # hop\n    T(z,y).\nFlag().";
        let ranges = body_atom_byte_ranges(text);
        assert_eq!(ranges.len(), 3);
        let texts: Vec<Vec<&str>> = ranges
            .iter()
            .map(|r| r.iter().map(|a| &text[a.clone()]).collect())
            .collect();
        assert_eq!(texts[0], ["E(x,y)"]);
        assert_eq!(texts[1], ["E(x,z)", "T(z,y)"]);
        assert!(texts[2].is_empty());
    }

    #[test]
    fn body_atom_ranges_align_with_parsed_rules() {
        let text = "# goal: Goal\nT(x,y) :- E(x,y).\nT(x,y) :- E(x,z), T(z,y).\nGoal() :- T(x,x)";
        let p = parse_program(text, &Vocabulary::digraph()).unwrap();
        let ranges = body_atom_byte_ranges(text);
        assert_eq!(ranges.len(), p.rules().len());
        for (ri, rule) in p.rules().iter().enumerate() {
            assert_eq!(ranges[ri].len(), rule.body.len(), "rule {ri}");
        }
        // Final chunk without a `.` still yields its atom.
        assert_eq!(&text[ranges[2][0].clone()], "T(x,x)");
    }

    #[test]
    fn goal_pragma_designates_the_goal() {
        let v = Vocabulary::from_pairs([("Down", 2), ("Leaf", 1)]);
        let p = parse_program(
            "# goal: Reach\nReach(x) :- Leaf(x).\nReach(x) :- Down(x,y), Reach(y).",
            &v,
        )
        .unwrap();
        assert_eq!(p.goal_name(), Some("Reach"));
        assert_eq!(p.goal_index(), p.idb_index("Reach"));
    }

    #[test]
    fn goal_defaults_to_conventional_name_without_pragma() {
        let p = parse_program(
            "T(x,y) :- E(x,y).\nGoal() :- T(x,x).",
            &Vocabulary::digraph(),
        )
        .unwrap();
        assert_eq!(p.goal_name(), Some("Goal"));
        let q = parse_program("T(x,y) :- E(x,y).", &Vocabulary::digraph()).unwrap();
        assert_eq!(q.goal_index(), None);
    }

    #[test]
    fn goal_pragma_overrides_conventional_name() {
        let p = parse_program(
            "# goal: T\nT(x,y) :- E(x,y).\nGoal() :- T(x,x).",
            &Vocabulary::digraph(),
        )
        .unwrap();
        assert_eq!(p.goal_name(), Some("T"));
    }

    #[test]
    fn malformed_goal_pragma_error_carries_span() {
        // Payload with a space is not a predicate name; the error must
        // point at the pragma's own line in the original text.
        let text = "# a comment\n\n# goal: Reach quickly\nT(x,y) :- E(x,y).";
        let e = parse_program(text, &Vocabulary::digraph()).unwrap_err();
        assert!(
            matches!(e.kind, DatalogErrorKind::BadGoalPragma { ref text } if text == "Reach quickly"),
            "{e}"
        );
        assert_eq!(e.span.line, Some(3));
        assert_eq!(e.span.rule, None);
        // An empty payload is malformed too.
        let e = parse_program("# goal:\nT(x,y) :- E(x,y).", &Vocabulary::digraph()).unwrap_err();
        assert!(
            matches!(e.kind, DatalogErrorKind::BadGoalPragma { .. }),
            "{e}"
        );
        assert_eq!(e.span.line, Some(1));
    }

    #[test]
    fn unknown_goal_pragma_error_carries_span() {
        let text = "T(x,y) :- E(x,y).\n# goal: Missing";
        let e = parse_program(text, &Vocabulary::digraph()).unwrap_err();
        assert!(
            matches!(e.kind, DatalogErrorKind::UnknownGoal { ref name } if name == "Missing"),
            "{e}"
        );
        assert_eq!(e.span.line, Some(2));
    }

    #[test]
    fn unsafe_rule_error_carries_line_and_rule() {
        let text = "T(x,y) :- E(x,y).\n\nT(x,q) :- E(x,x).";
        let e = parse_program(text, &Vocabulary::digraph()).unwrap_err();
        assert!(matches!(e.kind, DatalogErrorKind::UnsafeRule { ref var } if var == "q"));
        assert_eq!(e.span.rule, Some(1));
        assert_eq!(e.span.line, Some(3));
    }
}
