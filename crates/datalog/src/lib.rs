//! # hp-datalog
//!
//! A Datalog engine (§2.3) with everything §7 of Atserias–Dawar–Kolaitis
//! needs:
//!
//! - Datalog programs with EDB/IDB predicates, a text parser, and the
//!   **total-distinct-variable count** that defines k-Datalog;
//! - **stratified negation**: `not R(x,y)` body literals, validated at
//!   construction (negation safety and stratifiability are
//!   [`DatalogError`]s, so every [`Program`] value is evaluable) and run
//!   by stratum-ordered semi-naive evaluation — positive programs take
//!   the single stratum 0 and behave exactly as before;
//! - bottom-up evaluation: **naive** stages `Φ⁰, Φ¹, …` (the monotone
//!   operator of §2.3, used for stage counting — with explicit convergence
//!   reporting, see [`StageSequence`]) and **semi-naive** fixpoints driven
//!   through precomputed join plans and per-predicate hash indexes, with
//!   optional sharded parallel delta rounds ([`EvalConfig`]) that are
//!   bit-identical to sequential evaluation;
//! - **Theorem 7.1** made executable: the m-th stage of a k-Datalog program
//!   unfolded into a finite disjunction of `CQ^k` formulas
//!   ([`stage_formula`] / [`stage_ucq`]);
//! - **boundedness**: an empirical stage-count probe over structure
//!   families, and a *certified* decision procedure
//!   ([`certified_bounded_at`]) that checks `Θ^s ≡ Θ^{s+1}` by
//!   Sagiv–Yannakakis UCQ equivalence — exactly the Ajtai–Gurevich
//!   criterion of Theorem 7.5.
//!
//! ```
//! use hp_structures::{Vocabulary, generators::directed_path};
//! use hp_datalog::Program;
//!
//! // Transitive closure — the paper's example 3-Datalog program.
//! let sigma = Vocabulary::digraph();
//! let tc = Program::parse(
//!     "T(x,y) :- E(x,y).\n\
//!      T(x,y) :- E(x,z), T(z,y).",
//!     &sigma,
//! ).unwrap();
//! assert_eq!(tc.total_variable_count(), 3);
//!
//! let result = tc.evaluate(&directed_path(5));
//! // Transitive closure of a 4-edge path has 4+3+2+1 = 10 pairs.
//! assert_eq!(result.idb("T").unwrap().len(), 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod bounded;
mod error;
mod eval;
pub mod gallery;
mod incremental;
mod index;
mod parser;
mod plan;
mod reference;
mod unfold;

pub use ast::{DatalogAtom, PredRef, Program, Rule, DEFAULT_GOAL_NAME};
pub use bounded::{
    certified_bounded_at, certified_boundedness, certify_boundedness, stage_probe,
    BoundednessProbe, BoundednessVerdict,
};
pub use error::{DatalogError, DatalogErrorKind, DatalogSpan};
pub use eval::{
    EvalCheckpoint, EvalConfig, EvalError, FixpointResult, IdbRelation, StageSequence,
    StratumProfile,
};
pub use incremental::{EdbDelta, IncCheckpoint, MaterializedDb};
pub use parser::{body_atom_byte_ranges, rule_byte_ranges};
pub use unfold::{
    stage_formula, stage_formulas, stage_formulas_with_budget, stage_ucq, stage_ucq_with_budget,
    stages_agree,
};
