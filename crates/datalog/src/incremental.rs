//! Incremental view maintenance on EDB updates.
//!
//! A [`MaterializedDb`] keeps a program's least fixpoint materialized next
//! to its input structure. [`Program::evaluate_incremental`] then folds a
//! batch of EDB insertions and deletions into that fixpoint without
//! recomputing it from scratch:
//!
//! * **non-recursive strata** (singleton SCCs of the predicate dependency
//!   graph without a self-loop) are maintained by the *counting* algorithm —
//!   a per-tuple derivation count is stored beside the relation's
//!   [`TupleStore`] run in a [`CountedStore`], and a signed, telescoped
//!   delta-join pass adjusts the counts: a tuple leaves the relation exactly
//!   when its count reaches zero;
//! * **recursive SCCs** are maintained by *DRed* (delete and re-derive):
//!   an over-approximation of the deleted tuples is propagated to a
//!   fixpoint, every over-deleted tuple with a surviving alternative
//!   derivation is revived, and insertions run as a warm-started semi-naive
//!   fixpoint over the repaired state.
//!
//! Strata come from a condensation of the program's IDB dependency graph
//! (Tarjan, topologically ordered). Delta joins reuse the join-order
//! machinery of [`crate::plan`] — each rule gets one seeded order per body
//! occurrence plus a fully-prebound rederivation order — and probe permuted
//! sorted copies of the committed stores ([`TupleStore::prefix_range`])
//! instead of per-evaluation hash maps, because the committed stores
//! persist across update batches.
//!
//! Maintenance is budgeted and resumable under the same law as
//! [`Program::resume_budgeted`]: the gauge is charged at SCC boundaries, an
//! exhausted run returns an [`IncCheckpoint`] (the database keeps the
//! already-committed strata and refuses further updates until resumed), and
//! resuming with fuel `f2` after exhausting `f1` lands at exactly the state
//! of a single `f1 + f2` run.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use hp_guard::{Budget, Budgeted, Gauge, GaugeState};
use hp_structures::{
    CountedStore, Elem, Relation, RowRef, Structure, StructureError, SymbolId, TupleStore,
    Vocabulary,
};

use crate::ast::{PredRef, Program};
use crate::eval::{EvalConfig, EvalError, FixpointResult};
use crate::plan::{plan_steps, plan_steps_prebound, AtomPlan, IndexSpec, JoinStep, RulePlan};

// ---------------------------------------------------------------------------
// Update batches
// ---------------------------------------------------------------------------

/// A batch of EDB tuples to insert or delete, one [`TupleStore`] per
/// vocabulary symbol. Build two of these (insertions and deletions) and hand
/// them to [`Program::evaluate_incremental`].
///
/// Batch semantics: a tuple listed in both the insertion and the deletion
/// batch is **kept** (insertions win); inserting a present tuple and
/// deleting an absent one are no-ops.
#[derive(Clone, Debug)]
pub struct EdbDelta {
    vocab: Vocabulary,
    stores: Vec<TupleStore>,
}

impl EdbDelta {
    /// An empty batch over `vocab`.
    pub fn new(vocab: &Vocabulary) -> EdbDelta {
        EdbDelta {
            vocab: vocab.clone(),
            stores: vocab
                .iter()
                .map(|(_, s)| TupleStore::new(s.arity))
                .collect(),
        }
    }

    /// Add one tuple for symbol `sym`.
    ///
    /// # Panics
    ///
    /// If `t.len()` differs from the symbol's arity. Element range is
    /// checked later, against the target database's universe, by
    /// [`Program::evaluate_incremental`].
    pub fn push(&mut self, sym: SymbolId, t: &[Elem]) {
        assert_eq!(
            t.len(),
            self.vocab.arity(sym),
            "tuple arity does not match symbol {}",
            self.vocab.symbol(sym).name
        );
        self.stores[sym.index()].push(t);
    }

    /// Add one tuple by raw element ids — convenience for tests and
    /// examples.
    ///
    /// # Panics
    ///
    /// As [`EdbDelta::push`].
    pub fn push_ids(&mut self, sym: usize, t: &[u32]) {
        let row: Vec<Elem> = t.iter().map(|&e| Elem(e)).collect();
        self.push(SymbolId::from(sym), &row);
    }

    /// True when no tuple was added to any symbol.
    pub fn is_empty(&self) -> bool {
        self.stores.iter().all(|s| s.is_empty())
    }

    /// Total number of tuples in the batch (duplicates included).
    pub fn len(&self) -> usize {
        self.stores.iter().map(|s| s.len() + s.pending_len()).sum()
    }
}

// ---------------------------------------------------------------------------
// Maintenance plan: SCC condensation + per-rule join orders
// ---------------------------------------------------------------------------

/// One strongly connected component of the IDB dependency graph.
#[derive(Clone, Debug)]
struct SccInfo {
    /// Member IDB indices, ascending.
    members: Vec<usize>,
    /// True when the component is recursive (more than one member, or a
    /// self-loop) and must be maintained by DRed instead of counting.
    recursive: bool,
}

/// One rule, pre-planned for maintenance: the dense slotting of
/// [`RulePlan`], plus one seeded join order per body occurrence (the
/// signed-delta work items) and a fully head-prebound rederivation order.
#[derive(Clone, Debug)]
struct MaintRule {
    head: usize,
    head_args: Vec<usize>,
    /// `(later, earlier)` head argument positions carrying the same
    /// variable: a concrete head tuple must agree on them before its slots
    /// can be prebound.
    head_repeats: Vec<(usize, usize)>,
    var_count: usize,
    atoms: Vec<AtomPlan>,
    /// Naive order over all atoms — used to (re)build derivation counts.
    full_order: Vec<JoinStep>,
    /// Order seeded by body occurrence `i` scanning a delta, one per atom.
    seeded_orders: Vec<Vec<JoinStep>>,
    /// Order with every head variable prebound — the DRed rederivation
    /// probe for one concrete head tuple.
    rederive_order: Vec<JoinStep>,
}

/// Per-program maintenance metadata, built once per [`MaterializedDb`].
#[derive(Clone, Debug)]
struct MaintPlan {
    rules: Vec<MaintRule>,
    specs: Vec<IndexSpec>,
    rules_by_head: Vec<Vec<usize>>,
    /// Condensation of the IDB dependency graph, topologically ordered
    /// (producers before consumers).
    sccs: Vec<SccInfo>,
    /// SCC id of each IDB.
    scc_of: Vec<usize>,
}

impl MaintPlan {
    fn new(p: &Program) -> MaintPlan {
        let n_idb = p.idbs().len();
        let mut specs: Vec<IndexSpec> = Vec::new();
        let mut rules: Vec<MaintRule> = Vec::new();
        let mut rules_by_head: Vec<Vec<usize>> = vec![Vec::new(); n_idb];
        for (ri, rule) in p.rules().iter().enumerate() {
            // Reuse the dense slotting; the seed/delta orders interned into
            // `throwaway` are not needed for maintenance.
            let mut throwaway = Vec::new();
            let rp = RulePlan::new(rule, &mut throwaway);
            let mut head_repeats = Vec::new();
            for (i, &s) in rp.head_args.iter().enumerate() {
                if let Some(j) = rp.head_args[..i].iter().position(|&t| t == s) {
                    head_repeats.push((i, j));
                }
            }
            let full_order = plan_steps(&rp.atoms, rp.var_count, None, &mut specs);
            let seeded_orders = (0..rp.atoms.len())
                .map(|ai| plan_steps(&rp.atoms, rp.var_count, Some(ai), &mut specs))
                .collect();
            let mut prebound = vec![false; rp.var_count];
            for &s in &rp.head_args {
                prebound[s] = true;
            }
            let rederive_order =
                plan_steps_prebound(&rp.atoms, rp.var_count, &prebound, &mut specs);
            rules_by_head[rp.head].push(ri);
            rules.push(MaintRule {
                head: rp.head,
                head_args: rp.head_args,
                head_repeats,
                var_count: rp.var_count,
                atoms: rp.atoms,
                full_order,
                seeded_orders,
                rederive_order,
            });
        }
        let (sccs, scc_of) = condense(n_idb, &idb_dependencies(p));
        MaintPlan {
            rules,
            specs,
            rules_by_head,
            sccs,
            scc_of,
        }
    }
}

/// Adjacency of the IDB dependency graph: an edge `b → h` for every rule
/// with head `h` and an IDB body atom `b` (producers point at consumers).
fn idb_dependencies(p: &Program) -> Vec<Vec<usize>> {
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); p.idbs().len()];
    for rule in p.rules() {
        let PredRef::Idb(h) = rule.head.pred else {
            unreachable!("validated: rule heads are IDB atoms")
        };
        for atom in &rule.body {
            if let PredRef::Idb(b) = atom.pred {
                if !adj[b].contains(&h) {
                    adj[b].push(h);
                }
            }
        }
    }
    adj
}

/// Iterative Tarjan condensation. Components come out in topological order
/// of the condensation (with edges producer → consumer, producers first),
/// which is exactly the order maintenance must process strata in.
fn condense(n: usize, adj: &[Vec<usize>]) -> (Vec<SccInfo>, Vec<usize>) {
    const UNSEEN: usize = usize::MAX;
    let mut index = vec![UNSEEN; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next = 0usize;
    let mut comps: Vec<Vec<usize>> = Vec::new();
    for start in 0..n {
        if index[start] != UNSEEN {
            continue;
        }
        let mut call: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(frame) = call.last_mut() {
            let v = frame.0;
            if frame.1 == 0 {
                index[v] = next;
                low[v] = next;
                next += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if frame.1 < adj[v].len() {
                let w = adj[v][frame.1];
                frame.1 += 1;
                if index[w] == UNSEEN {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("Tarjan stack holds the root");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    comps.push(comp);
                }
                call.pop();
                if let Some(parent) = call.last_mut() {
                    low[parent.0] = low[parent.0].min(low[v]);
                }
            }
        }
    }
    // Tarjan pops sinks first; reversed, producers come first.
    comps.reverse();
    let mut scc_of = vec![0usize; n];
    let sccs: Vec<SccInfo> = comps
        .into_iter()
        .enumerate()
        .map(|(id, members)| {
            for &m in &members {
                scc_of[m] = id;
            }
            let recursive = members.len() > 1 || members.iter().any(|&m| adj[m].contains(&m));
            SccInfo { members, recursive }
        })
        .collect();
    (sccs, scc_of)
}

// ---------------------------------------------------------------------------
// Secondary indexes: permuted sorted copies of the committed stores
// ---------------------------------------------------------------------------

/// A persistent index for one [`IndexSpec`]: a sorted [`TupleStore`] whose
/// rows are the committed relation's rows **permuted** so the key columns
/// come first; a probe is then [`TupleStore::prefix_range`]. Unlike the
/// per-evaluation hash pool of [`crate::index`], these survive across
/// update batches and are maintained by sorted-run batch merge/difference.
#[derive(Clone, Debug)]
struct SecondaryIndex {
    arity: usize,
    /// `perm[k]` = original column stored at permuted position `k` (key
    /// columns first, remaining columns ascending).
    perm: Vec<usize>,
    /// `pos_of[i]` = permuted position of original column `i`.
    pos_of: Vec<usize>,
    store: TupleStore,
}

impl SecondaryIndex {
    fn new(spec: &IndexSpec, arity: usize) -> SecondaryIndex {
        let mut perm = spec.key_positions.clone();
        for i in 0..arity {
            if !perm.contains(&i) {
                perm.push(i);
            }
        }
        let mut pos_of = vec![0usize; arity];
        for (k, &i) in perm.iter().enumerate() {
            pos_of[i] = k;
        }
        SecondaryIndex {
            arity,
            perm,
            pos_of,
            store: TupleStore::new(arity),
        }
    }

    fn permuted(&self, rows: &TupleStore) -> TupleStore {
        let mut out = TupleStore::with_capacity(self.arity, rows.len());
        for t in rows.iter() {
            out.push_with(|buf| buf.extend(self.perm.iter().map(|&i| t.get(i))));
        }
        out.seal();
        out
    }

    /// Recover the original column order of a permuted candidate row.
    fn unpermute_into(&self, row: RowRef<'_>, out: &mut Vec<Elem>) {
        out.clear();
        out.extend((0..self.arity).map(|i| row.get(self.pos_of[i])));
    }

    fn insert_batch(&mut self, rows: &TupleStore) {
        if rows.is_empty() {
            return;
        }
        let p = self.permuted(rows);
        self.store.merge(&p);
    }

    fn remove_batch(&mut self, rows: &TupleStore) {
        if rows.is_empty() {
            return;
        }
        let p = self.permuted(rows);
        self.store = self.store.difference(&p);
    }
}

// ---------------------------------------------------------------------------
// The materialized database
// ---------------------------------------------------------------------------

/// A program's input structure together with its materialized least
/// fixpoint, derivation counts for the non-recursive strata, and the
/// persistent secondary indexes the maintenance joins probe.
///
/// Build one with [`MaterializedDb::new`], then apply update batches with
/// [`Program::evaluate_incremental`]. The database owns the structure; read
/// access goes through [`MaterializedDb::structure`] and
/// [`MaterializedDb::idb`].
#[derive(Clone, Debug)]
pub struct MaterializedDb {
    program: Program,
    plan: MaintPlan,
    structure: Structure,
    idb: Vec<Relation>,
    /// Derivation counts, `Some` exactly for non-recursive singleton SCCs.
    counts: Vec<Option<CountedStore>>,
    /// Derivation depths, `Some` exactly for members of recursive SCCs:
    /// every tuple has a derivation whose in-SCC supporters all carry
    /// strictly smaller depths. DRed's deletion phase uses them to only
    /// cascade past tuples with no shallower alternative support.
    depths: Vec<Option<DepthMap>>,
    /// Monotone upper bound over every assigned depth; fresh and revived
    /// tuples get depths above it, keeping the invariant without renumbering.
    depth_clock: u64,
    indexes: Vec<SecondaryIndex>,
    /// True while a budget-exhausted maintenance run awaits
    /// [`Program::resume_incremental`]; fresh updates are refused until
    /// then.
    in_flight: bool,
}

impl MaterializedDb {
    /// Evaluate `program` on `structure` and materialize the result for
    /// incremental maintenance, with the default [`EvalConfig`].
    pub fn new(program: &Program, structure: Structure) -> Result<MaterializedDb, EvalError> {
        MaterializedDb::new_with(program, structure, &EvalConfig::new())
    }

    /// As [`MaterializedDb::new`] with an explicit configuration.
    pub fn new_with(
        program: &Program,
        structure: Structure,
        cfg: &EvalConfig,
    ) -> Result<MaterializedDb, EvalError> {
        if program.has_negation() {
            return Err(EvalError::NegationUnsupported {
                operation: "incremental view maintenance".to_string(),
            });
        }
        if structure.vocab() != program.edb() {
            return Err(EvalError::ProgramMismatch {
                detail: "structure vocabulary differs from the program's EDB".to_string(),
            });
        }
        let full = program.evaluate_with(&structure, cfg);
        let plan = MaintPlan::new(program);
        let idb = full.relations;
        let indexes: Vec<SecondaryIndex> = plan
            .specs
            .iter()
            .map(|spec| {
                let (arity, committed) = match spec.pred {
                    PredRef::Edb(sym) => {
                        (program.edb().arity(sym), structure.relation(sym).store())
                    }
                    PredRef::Idb(i) => (program.idbs()[i].1, idb[i].store()),
                };
                let mut ix = SecondaryIndex::new(spec, arity);
                ix.insert_batch(committed);
                ix
            })
            .collect();
        let mut counts: Vec<Option<CountedStore>> = (0..idb.len()).map(|_| None).collect();
        let mut depths: Vec<Option<DepthMap>> = (0..idb.len()).map(|_| None).collect();
        let mut depth_clock = 0u64;
        {
            let deltas = Deltas::empty(program);
            let ctx = Ctx {
                plan: &plan,
                structure: &structure,
                idb: &idb,
                indexes: &indexes,
                deltas: &deltas,
                overlay: None,
                gate: None,
            };
            for (si, scc) in plan.sccs.iter().enumerate() {
                if scc.recursive {
                    depth_clock = depth_clock.max(build_depths(
                        &ctx,
                        si,
                        |p| program.idbs()[p].1,
                        &mut depths,
                    ));
                } else {
                    let p = scc.members[0];
                    counts[p] = Some(build_counts(&ctx, p, program.idbs()[p].1));
                }
            }
        }
        Ok(MaterializedDb {
            program: program.clone(),
            plan,
            structure,
            idb,
            counts,
            depths,
            depth_clock,
            indexes,
            in_flight: false,
        })
    }

    /// The current input structure (reflecting every committed batch).
    pub fn structure(&self) -> &Structure {
        &self.structure
    }

    /// The materialized relation of IDB `i`.
    pub fn idb(&self, i: usize) -> &Relation {
        &self.idb[i]
    }

    /// All materialized IDB relations, aligned with
    /// [`Program::idbs`](crate::Program::idbs).
    pub fn relations(&self) -> &[Relation] {
        &self.idb
    }

    /// True while an exhausted maintenance run awaits
    /// [`Program::resume_incremental`].
    pub fn is_in_flight(&self) -> bool {
        self.in_flight
    }
}

/// Rebuild the derivation counts for non-recursive IDB `p` from the
/// committed relations: one full (all-`New`) enumeration per rule, one
/// count unit per satisfying assignment.
fn build_counts(ctx: &Ctx<'_>, p: usize, arity: usize) -> CountedStore {
    let mut cs = CountedStore::new(arity);
    let mut head = Vec::with_capacity(arity);
    for &ri in &ctx.plan.rules_by_head[p] {
        let mr = &ctx.plan.rules[ri];
        let views = vec![View::New; mr.atoms.len()];
        let mut asg = vec![Elem(0); mr.var_count];
        let mut scratch = Vec::new();
        mjoin(
            ctx,
            mr,
            &mr.full_order,
            &views,
            0,
            &mut asg,
            &mut scratch,
            &mut |a| {
                head.clear();
                head.extend(mr.head_args.iter().map(|&s| a[s]));
                cs.push(&head, 1);
                true
            },
        );
    }
    let delta = cs.apply();
    debug_assert!(delta.removed.is_empty());
    debug_assert_eq!(delta.inserted.len(), ctx.idb[p].len());
    cs
}

/// Assign derivation depths to every tuple of recursive SCC `scc` by
/// replaying its semi-naive stages over the committed relations: stage-`r`
/// tuples derive from stage-`< r` members (read as `Cur` through a
/// shadow-everything / reveal-known overlay) and committed externals.
/// Returns the number of stages, an upper bound on every assigned depth.
fn build_depths(
    ctx: &Ctx<'_>,
    scc: usize,
    arity_of: impl Fn(usize) -> usize,
    depths: &mut [Option<DepthMap>],
) -> u64 {
    let members = &ctx.plan.sccs[scc].members;
    let n_idb = ctx.idb.len();
    let removed: Vec<TupleStore> = (0..n_idb)
        .map(|p| {
            if is_member(ctx.plan, PredRef::Idb(p), scc) {
                ctx.idb[p].store().clone()
            } else {
                TupleStore::new(arity_of(p))
            }
        })
        .collect();
    let mut known: Vec<Relation> = (0..n_idb).map(|p| Relation::new(arity_of(p))).collect();
    let added: Vec<Relation> = (0..n_idb).map(|p| Relation::new(arity_of(p))).collect();
    let mut frontier: Vec<TupleStore> = (0..n_idb).map(|p| TupleStore::new(arity_of(p))).collect();
    for &p in members {
        depths[p] = Some(DepthMap::new());
    }
    let mut round = 0u64;
    loop {
        round += 1;
        let mut cand: Vec<TupleStore> = (0..n_idb).map(|p| TupleStore::new(arity_of(p))).collect();
        {
            let rctx = Ctx {
                plan: ctx.plan,
                structure: ctx.structure,
                idb: ctx.idb,
                indexes: ctx.indexes,
                deltas: ctx.deltas,
                overlay: Some(Overlay {
                    removed: &removed,
                    revived: &known,
                    added: &added,
                }),
                gate: None,
            };
            for &p in members {
                for &ri in &ctx.plan.rules_by_head[p] {
                    let mr = &ctx.plan.rules[ri];
                    let views = scc_views(ctx.plan, mr, scc, View::New);
                    let mut head = Vec::with_capacity(arity_of(p));
                    if round == 1 {
                        let mut asg = vec![Elem(0); mr.var_count];
                        let mut scratch = Vec::new();
                        mjoin(
                            &rctx,
                            mr,
                            &mr.full_order,
                            &views,
                            0,
                            &mut asg,
                            &mut scratch,
                            &mut |a| {
                                head.clear();
                                head.extend(mr.head_args.iter().map(|&s| a[s]));
                                cand[p].push(&head);
                                true
                            },
                        );
                    } else {
                        for ai in 0..mr.atoms.len() {
                            let PredRef::Idb(q) = mr.atoms[ai].pred else {
                                continue;
                            };
                            if ctx.plan.scc_of[q] != scc || frontier[q].is_empty() {
                                continue;
                            }
                            run_seeded(
                                &rctx,
                                mr,
                                &mr.seeded_orders[ai],
                                &views,
                                &frontier[q],
                                &mut |asg| {
                                    head.clear();
                                    head.extend(mr.head_args.iter().map(|&s| asg[s]));
                                    cand[p].push(&head);
                                    true
                                },
                            );
                        }
                    }
                }
            }
        }
        let mut any = false;
        for &p in members {
            cand[p].seal();
            let fresh = cand[p].difference(known[p].store());
            let map = depths[p].as_mut().expect("member map was just created");
            for t in fresh.iter() {
                map.insert(t.to_vec().into(), round);
            }
            known[p].merge_store(&fresh);
            any = any || !fresh.is_empty();
            frontier[p] = fresh;
        }
        if !any {
            break;
        }
    }
    for &p in members {
        debug_assert_eq!(
            known[p].len(),
            ctx.idb[p].len(),
            "depth replay must reconstruct the fixpoint"
        );
    }
    round
}

// ---------------------------------------------------------------------------
// Checkpoints
// ---------------------------------------------------------------------------

/// A resumable snapshot of a budget-exhausted incremental maintenance run,
/// returned as the `partial` of [`Program::evaluate_incremental_budgeted`] /
/// [`Program::resume_incremental`].
///
/// The snapshot is taken at a **stratum boundary**: every SCC before
/// `next_scc` is fully committed to the database, none after it has been
/// touched, and the recorded per-predicate deltas let later strata
/// reconstruct their pre-update views. Resuming with fuel `f2` after
/// exhausting `f1` lands at exactly the state of a single `f1 + f2` run.
#[derive(Clone, Debug)]
pub struct IncCheckpoint {
    next_scc: usize,
    edb_plus: Vec<TupleStore>,
    edb_minus: Vec<TupleStore>,
    idb_plus: Vec<TupleStore>,
    idb_minus: Vec<TupleStore>,
    stages: usize,
    fuel: GaugeState,
}

impl IncCheckpoint {
    /// Cumulative fuel charged when the snapshot was taken, across all runs
    /// of a resume chain.
    pub fn fuel_spent(&self) -> u64 {
        self.fuel.spent
    }

    /// Number of strata already committed to the database.
    pub fn committed_strata(&self) -> usize {
        self.next_scc
    }

    /// Maintenance rounds performed so far.
    pub fn stages(&self) -> usize {
        self.stages
    }
}

// ---------------------------------------------------------------------------
// Join driver
// ---------------------------------------------------------------------------

/// Which state of a relation an atom occurrence reads during maintenance.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum View {
    /// Post-update committed state (EDB after the batch, lower strata after
    /// their maintenance).
    New,
    /// Pre-update state, reconstructed as `committed ∖ plus ∪ minus` from
    /// the recorded per-predicate deltas.
    Old,
    /// Mid-DRed state of an SCC member: committed rows that are not
    /// over-deleted (or were revived), plus the rows added so far.
    Cur,
    /// Tuples present both before and after the batch: `committed ∖ plus`.
    /// Used by the deletion-phase support check, whose witnesses must not
    /// lean on tuples this batch inserted (insertions are re-played by the
    /// insertion phase, which revives anything the check over-deleted).
    Stable,
}

/// Per-tuple derivation depths of one recursive SCC's members, keyed by the
/// tuple's row. Any assignment where every alive tuple has a derivation
/// whose in-SCC supporters all carry strictly smaller depths works; the
/// maintenance code keeps that invariant with a monotone clock.
type DepthMap = HashMap<Box<[Elem]>, u64>;

/// Depth filter applied on top of a `Cur` view during the deletion-phase
/// support check: an SCC-member candidate only counts as support when its
/// recorded depth is strictly below the examined tuple's depth. Kills then
/// propagate strictly depth-upward, so a kept tuple's witness can only be
/// invalidated by a later kill that re-triggers its examination — no
/// under-deletion.
struct DepthGate<'a> {
    depths: &'a [Option<DepthMap>],
    limit: u64,
}

impl DepthGate<'_> {
    /// May row `t` of member predicate `p` support the examined tuple?
    /// Unknown rows get depth `∞`, i.e. never support (safe: at worst an
    /// over-deletion, which the rederive phase revives).
    fn admits(&self, p: usize, t: &[Elem]) -> bool {
        self.depths[p]
            .as_ref()
            .and_then(|m| m.get(t))
            .is_some_and(|&d| d < self.limit)
    }

    /// [`DepthGate::admits`] for a decoded store row.
    fn admits_row(&self, p: usize, t: RowRef<'_>) -> bool {
        self.admits(p, &t.to_vec())
    }
}

/// Per-predicate effective deltas of one maintenance run: what actually
/// changed in the EDB, and what each already-processed stratum's
/// maintenance changed in its IDB.
struct Deltas {
    edb_plus: Vec<TupleStore>,
    edb_minus: Vec<TupleStore>,
    idb_plus: Vec<TupleStore>,
    idb_minus: Vec<TupleStore>,
}

impl Deltas {
    fn empty(p: &Program) -> Deltas {
        let edb: Vec<TupleStore> = p
            .edb()
            .iter()
            .map(|(_, s)| TupleStore::new(s.arity))
            .collect();
        let idb: Vec<TupleStore> = p.idbs().iter().map(|&(_, a)| TupleStore::new(a)).collect();
        Deltas {
            edb_plus: edb.clone(),
            edb_minus: edb,
            idb_plus: idb.clone(),
            idb_minus: idb,
        }
    }

    fn plus(&self, pred: PredRef) -> &TupleStore {
        match pred {
            PredRef::Edb(sym) => &self.edb_plus[sym.index()],
            PredRef::Idb(i) => &self.idb_plus[i],
        }
    }

    fn minus(&self, pred: PredRef) -> &TupleStore {
        match pred {
            PredRef::Edb(sym) => &self.edb_minus[sym.index()],
            PredRef::Idb(i) => &self.idb_minus[i],
        }
    }
}

/// The in-progress DRed state of one recursive SCC, overlaid on the
/// committed relations to form the `Cur` view. All three vectors are
/// indexed by IDB id; non-members stay empty.
struct Overlay<'a> {
    /// The deletion over-approximation `D`.
    removed: &'a [TupleStore],
    /// Over-deleted tuples with a surviving alternative derivation.
    revived: &'a [Relation],
    /// Tuples added by the insertion phase.
    added: &'a [Relation],
}

/// Shared read-only state for one maintenance round's join items.
struct Ctx<'a> {
    plan: &'a MaintPlan,
    structure: &'a Structure,
    idb: &'a [Relation],
    indexes: &'a [SecondaryIndex],
    deltas: &'a Deltas,
    overlay: Option<Overlay<'a>>,
    gate: Option<DepthGate<'a>>,
}

impl Ctx<'_> {
    fn committed(&self, pred: PredRef) -> &TupleStore {
        match pred {
            PredRef::Edb(sym) => self.structure.relation(sym).store(),
            PredRef::Idb(i) => self.idb[i].store(),
        }
    }
}

/// A candidate row for one join step: either an original-order store row
/// (from a delta or overlay scan) or a permuted secondary-index row read
/// through the index's position map.
#[derive(Clone, Copy)]
struct Cand<'t> {
    row: RowRef<'t>,
    map: Option<&'t [usize]>,
}

impl Cand<'_> {
    #[inline]
    fn at(&self, i: usize) -> Elem {
        match self.map {
            Some(m) => self.row.get(m[i]),
            None => self.row.get(i),
        }
    }
}

/// Check a candidate against step `depth` and, on a match, bind its fresh
/// slots and recurse. Returns `false` iff `emit` asked to stop.
#[allow(clippy::too_many_arguments)]
fn accept(
    ctx: &Ctx<'_>,
    mr: &MaintRule,
    steps: &[JoinStep],
    views: &[View],
    depth: usize,
    asg: &mut [Elem],
    scratch: &mut Vec<Elem>,
    emit: &mut dyn FnMut(&[Elem]) -> bool,
    cand: Cand<'_>,
    check_bound: bool,
) -> bool {
    let step = &steps[depth];
    if check_bound {
        for &(i, s) in &step.bound {
            if cand.at(i) != asg[s] {
                return true;
            }
        }
    }
    for &(i, j) in &step.repeats {
        if cand.at(i) != cand.at(j) {
            return true;
        }
    }
    for &(i, s) in &step.binds {
        asg[s] = cand.at(i);
    }
    mjoin(ctx, mr, steps, views, depth + 1, asg, scratch, emit)
}

/// The maintenance join core: enumerate every extension of `asg` through
/// `steps[depth..]`, reading each atom in the state its [`View`] names, and
/// call `emit` per complete assignment. Returns `false` iff `emit` stopped
/// the enumeration.
#[allow(clippy::too_many_arguments)]
fn mjoin(
    ctx: &Ctx<'_>,
    mr: &MaintRule,
    steps: &[JoinStep],
    views: &[View],
    depth: usize,
    asg: &mut [Elem],
    scratch: &mut Vec<Elem>,
    emit: &mut dyn FnMut(&[Elem]) -> bool,
) -> bool {
    if depth == steps.len() {
        return emit(asg);
    }
    let step = &steps[depth];
    let atom = &mr.atoms[step.atom];
    let view = views[step.atom];
    if let Some(si) = step.index {
        let sidx = &ctx.indexes[si];
        let mut key: Vec<Elem> = Vec::with_capacity(step.bound.len());
        key.extend(step.bound.iter().map(|&(_, s)| asg[s]));
        let range = sidx.store.prefix_range(&key);
        let map = Some(sidx.pos_of.as_slice());
        match view {
            View::New => {
                for r in range {
                    let cand = Cand {
                        row: sidx.store.row(r),
                        map,
                    };
                    if !accept(
                        ctx, mr, steps, views, depth, asg, scratch, emit, cand, false,
                    ) {
                        return false;
                    }
                }
            }
            View::Old => {
                let plus = ctx.deltas.plus(atom.pred);
                for r in range {
                    let row = sidx.store.row(r);
                    if !plus.is_empty() {
                        sidx.unpermute_into(row, scratch);
                        if plus.contains(scratch.as_slice()) {
                            continue;
                        }
                    }
                    let cand = Cand { row, map };
                    if !accept(
                        ctx, mr, steps, views, depth, asg, scratch, emit, cand, false,
                    ) {
                        return false;
                    }
                }
                for t in ctx.deltas.minus(atom.pred).iter() {
                    let cand = Cand { row: t, map: None };
                    if !accept(ctx, mr, steps, views, depth, asg, scratch, emit, cand, true) {
                        return false;
                    }
                }
            }
            View::Cur => {
                let ov = ctx.overlay.as_ref().expect("Cur view requires an overlay");
                let PredRef::Idb(p) = atom.pred else {
                    unreachable!("Cur views are only assigned to SCC members")
                };
                for r in range {
                    let row = sidx.store.row(r);
                    if !ov.removed[p].is_empty() || ctx.gate.is_some() {
                        sidx.unpermute_into(row, scratch);
                        if !ov.removed[p].is_empty()
                            && ov.removed[p].contains(scratch.as_slice())
                            && !ov.revived[p].contains(scratch.as_slice())
                        {
                            continue;
                        }
                        if let Some(g) = &ctx.gate {
                            if !g.admits(p, scratch) {
                                continue;
                            }
                        }
                    }
                    let cand = Cand { row, map };
                    if !accept(
                        ctx, mr, steps, views, depth, asg, scratch, emit, cand, false,
                    ) {
                        return false;
                    }
                }
                for t in ov.added[p].iter() {
                    if ctx.gate.as_ref().is_some_and(|g| !g.admits_row(p, t)) {
                        continue;
                    }
                    let cand = Cand { row: t, map: None };
                    if !accept(ctx, mr, steps, views, depth, asg, scratch, emit, cand, true) {
                        return false;
                    }
                }
            }
            View::Stable => {
                let plus = ctx.deltas.plus(atom.pred);
                for r in range {
                    let row = sidx.store.row(r);
                    if !plus.is_empty() {
                        sidx.unpermute_into(row, scratch);
                        if plus.contains(scratch.as_slice()) {
                            continue;
                        }
                    }
                    let cand = Cand { row, map };
                    if !accept(
                        ctx, mr, steps, views, depth, asg, scratch, emit, cand, false,
                    ) {
                        return false;
                    }
                }
            }
        }
    } else {
        // Unindexed step: scan the whole view, checking any bound positions
        // per candidate.
        match view {
            View::New => {
                for t in ctx.committed(atom.pred).iter() {
                    let cand = Cand { row: t, map: None };
                    if !accept(ctx, mr, steps, views, depth, asg, scratch, emit, cand, true) {
                        return false;
                    }
                }
            }
            View::Old => {
                let plus = ctx.deltas.plus(atom.pred);
                for t in ctx.committed(atom.pred).iter() {
                    if !plus.is_empty() && plus.contains(t) {
                        continue;
                    }
                    let cand = Cand { row: t, map: None };
                    if !accept(ctx, mr, steps, views, depth, asg, scratch, emit, cand, true) {
                        return false;
                    }
                }
                for t in ctx.deltas.minus(atom.pred).iter() {
                    let cand = Cand { row: t, map: None };
                    if !accept(ctx, mr, steps, views, depth, asg, scratch, emit, cand, true) {
                        return false;
                    }
                }
            }
            View::Cur => {
                let ov = ctx.overlay.as_ref().expect("Cur view requires an overlay");
                let PredRef::Idb(p) = atom.pred else {
                    unreachable!("Cur views are only assigned to SCC members")
                };
                for t in ctx.committed(atom.pred).iter() {
                    if !ov.removed[p].is_empty()
                        && ov.removed[p].contains(t)
                        && !ov.revived[p].contains(t)
                    {
                        continue;
                    }
                    if ctx.gate.as_ref().is_some_and(|g| !g.admits_row(p, t)) {
                        continue;
                    }
                    let cand = Cand { row: t, map: None };
                    if !accept(ctx, mr, steps, views, depth, asg, scratch, emit, cand, true) {
                        return false;
                    }
                }
                for t in ov.added[p].iter() {
                    if ctx.gate.as_ref().is_some_and(|g| !g.admits_row(p, t)) {
                        continue;
                    }
                    let cand = Cand { row: t, map: None };
                    if !accept(ctx, mr, steps, views, depth, asg, scratch, emit, cand, true) {
                        return false;
                    }
                }
            }
            View::Stable => {
                let plus = ctx.deltas.plus(atom.pred);
                for t in ctx.committed(atom.pred).iter() {
                    if !plus.is_empty() && plus.contains(t) {
                        continue;
                    }
                    let cand = Cand { row: t, map: None };
                    if !accept(ctx, mr, steps, views, depth, asg, scratch, emit, cand, true) {
                        return false;
                    }
                }
            }
        }
    }
    true
}

/// Run one seeded join item: scan `seeds` as the delta occupying
/// `steps[0]`, extend through the remaining steps, and call `emit` per
/// satisfying assignment.
fn run_seeded(
    ctx: &Ctx<'_>,
    mr: &MaintRule,
    steps: &[JoinStep],
    views: &[View],
    seeds: &TupleStore,
    emit: &mut dyn FnMut(&[Elem]) -> bool,
) {
    let step0 = &steps[0];
    debug_assert!(step0.bound.is_empty(), "seed step binds first");
    let mut asg = vec![Elem(0); mr.var_count];
    let mut scratch = Vec::new();
    'seeds: for t in seeds.iter() {
        for &(i, j) in &step0.repeats {
            if t[i] != t[j] {
                continue 'seeds;
            }
        }
        for &(i, s) in &step0.binds {
            asg[s] = t.get(i);
        }
        if !mjoin(ctx, mr, steps, views, 1, &mut asg, &mut scratch, emit) {
            return;
        }
    }
}

/// True when the over-deleted head tuple `t` of IDB `p` has a surviving
/// derivation: some rule body matches with SCC members read as `Cur`
/// (excluding `t` itself unless revived) and everything else as `New`.
fn rederives(ctx: &Ctx<'_>, scc: usize, p: usize, t: &[Elem]) -> bool {
    rederives_with(ctx, scc, p, t, View::New)
}

/// As [`rederives`], reading non-member atoms in the given view. The
/// deletion-phase support check passes [`View::Stable`] (and sets the
/// context's depth gate), so its witnesses use only pre-existing external
/// tuples and strictly shallower members.
fn rederives_with(ctx: &Ctx<'_>, scc: usize, p: usize, t: &[Elem], external: View) -> bool {
    for &ri in &ctx.plan.rules_by_head[p] {
        let mr = &ctx.plan.rules[ri];
        if mr.head_repeats.iter().any(|&(i, j)| t[i] != t[j]) {
            continue;
        }
        let views = scc_views(ctx.plan, mr, scc, external);
        let mut asg = vec![Elem(0); mr.var_count];
        for (i, &s) in mr.head_args.iter().enumerate() {
            asg[s] = t[i];
        }
        let mut found = false;
        let mut scratch = Vec::new();
        mjoin(
            ctx,
            mr,
            &mr.rederive_order,
            &views,
            0,
            &mut asg,
            &mut scratch,
            &mut |_| {
                found = true;
                false
            },
        );
        if found {
            return true;
        }
    }
    false
}

/// Views for a rule during DRed: SCC members read `Cur`, everything else
/// reads `external`.
fn scc_views(plan: &MaintPlan, mr: &MaintRule, scc: usize, external: View) -> Vec<View> {
    mr.atoms
        .iter()
        .map(|a| match a.pred {
            PredRef::Idb(q) if plan.scc_of[q] == scc => View::Cur,
            _ => external,
        })
        .collect()
}

fn is_member(plan: &MaintPlan, pred: PredRef, scc: usize) -> bool {
    matches!(pred, PredRef::Idb(q) if plan.scc_of[q] == scc)
}

// ---------------------------------------------------------------------------
// Deterministic parallel map
// ---------------------------------------------------------------------------

/// Map `f` over `0..n` on up to `workers` scoped threads. Results come back
/// in index order regardless of scheduling, so every fold over them is
/// deterministic; `workers <= 1` (the default config) runs inline.
fn par_map<T, F>(workers: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if workers <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|s| {
        for _ in 0..workers.min(n) {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i);
                results.lock().expect("no worker panicked").push((i, r));
            });
        }
    });
    let mut v = results.into_inner().expect("no worker panicked");
    v.sort_unstable_by_key(|&(i, _)| i);
    v.into_iter().map(|(_, r)| r).collect()
}

// ---------------------------------------------------------------------------
// Maintenance engine
// ---------------------------------------------------------------------------

/// Apply the update batch to the EDB: compute effective per-symbol deltas
/// against the committed structure, mutate it, and keep the EDB secondary
/// indexes in sync. Validates every inserted tuple **before** any mutation
/// so a bad batch leaves the database untouched.
fn commit_edb(
    db: &mut MaterializedDb,
    plus: &EdbDelta,
    minus: &EdbDelta,
) -> Result<Deltas, EvalError> {
    let mut deltas = Deltas::empty(&db.program);
    let universe = db.structure.universe_size();
    let n_sym = db.program.edb().len();
    let mut plus_sealed: Vec<TupleStore> = Vec::with_capacity(n_sym);
    let mut minus_sealed: Vec<TupleStore> = Vec::with_capacity(n_sym);
    for i in 0..n_sym {
        let mut p = plus.stores[i].clone();
        p.seal();
        for t in p.iter() {
            for e in t.iter() {
                if e.index() >= universe {
                    return Err(EvalError::Structure(StructureError::ElementOutOfRange {
                        element: e.0,
                        universe,
                    }));
                }
            }
        }
        let mut m = minus.stores[i].clone();
        m.seal();
        plus_sealed.push(p);
        minus_sealed.push(m);
    }
    for i in 0..n_sym {
        let sym = SymbolId::from(i);
        if plus_sealed[i].is_empty() && minus_sealed[i].is_empty() {
            continue;
        }
        let (eff_plus, eff_minus) = {
            let committed = db.structure.relation(sym).store();
            // Insertions win over same-batch deletions; already-present
            // insertions and absent deletions are no-ops.
            let eff_plus = plus_sealed[i].difference(committed);
            let eff_minus = minus_sealed[i]
                .difference(&plus_sealed[i])
                .intersection(committed);
            (eff_plus, eff_minus)
        };
        db.structure
            .extend_tuples(sym, eff_plus.iter())
            .map_err(EvalError::Structure)?;
        db.structure.remove_tuples(sym, &eff_minus);
        for (si, spec) in db.plan.specs.iter().enumerate() {
            if spec.pred == PredRef::Edb(sym) {
                db.indexes[si].remove_batch(&eff_minus);
                db.indexes[si].insert_batch(&eff_plus);
            }
        }
        deltas.edb_plus[i] = eff_plus;
        deltas.edb_minus[i] = eff_minus;
    }
    Ok(deltas)
}

/// Maintain one non-recursive singleton stratum by counting: one signed,
/// telescoped delta pass per `(rule, body occurrence)` with a non-empty
/// delta, folded into the stratum's [`CountedStore`]. Returns
/// `(rounds, changed_tuples)`.
fn counting_scc(
    db: &mut MaterializedDb,
    workers: usize,
    deltas: &mut Deltas,
    p: usize,
) -> (usize, usize) {
    let arity = db.idb[p].arity();
    let mut items: Vec<(usize, usize)> = Vec::new();
    for &ri in &db.plan.rules_by_head[p] {
        let mr = &db.plan.rules[ri];
        for ai in 0..mr.atoms.len() {
            let pred = mr.atoms[ai].pred;
            if !deltas.plus(pred).is_empty() || !deltas.minus(pred).is_empty() {
                items.push((ri, ai));
            }
        }
    }
    if items.is_empty() {
        return (0, 0);
    }
    let stores: Vec<CountedStore> = {
        let ctx = Ctx {
            plan: &db.plan,
            structure: &db.structure,
            idb: &db.idb,
            indexes: &db.indexes,
            deltas,
            overlay: None,
            gate: None,
        };
        par_map(workers, items.len(), |ix| {
            let (ri, ai) = items[ix];
            let mr = &ctx.plan.rules[ri];
            // Telescoped views: occurrences before the seed read the
            // post-update state, occurrences after it the pre-update state,
            // so summing the signed items is exactly New − Old at the
            // derivation-count level.
            let views: Vec<View> = (0..mr.atoms.len())
                .map(|j| if j < ai { View::New } else { View::Old })
                .collect();
            let steps = &mr.seeded_orders[ai];
            let pred = mr.atoms[ai].pred;
            let mut out = CountedStore::new(arity);
            let mut head = Vec::with_capacity(arity);
            for (seeds, sign) in [(ctx.deltas.minus(pred), -1i64), (ctx.deltas.plus(pred), 1)] {
                run_seeded(&ctx, mr, steps, &views, seeds, &mut |asg| {
                    head.clear();
                    head.extend(mr.head_args.iter().map(|&s| asg[s]));
                    out.push(&head, sign);
                    true
                });
            }
            out
        })
    };
    let counts = db.counts[p]
        .as_mut()
        .expect("non-recursive strata carry counts");
    for s in stores {
        counts.absorb_pending(s);
    }
    let delta = counts.apply();
    let changed = delta.inserted.len() + delta.removed.len();
    db.idb[p].remove_tuples(&delta.removed);
    db.idb[p].merge_store(&delta.inserted);
    for (si, spec) in db.plan.specs.iter().enumerate() {
        if spec.pred == PredRef::Idb(p) {
            db.indexes[si].remove_batch(&delta.removed);
            db.indexes[si].insert_batch(&delta.inserted);
        }
    }
    deltas.idb_minus[p] = delta.removed;
    deltas.idb_plus[p] = delta.inserted;
    (1, changed)
}

/// Maintain one recursive SCC by DRed. Returns `(rounds, changed_tuples)`.
fn dred_scc(
    db: &mut MaterializedDb,
    workers: usize,
    deltas: &mut Deltas,
    scc: usize,
) -> (usize, usize) {
    let n_idb = db.idb.len();
    let members: Vec<usize> = db.plan.sccs[scc].members.clone();
    let arity_of = |p: usize| db.idb[p].arity();
    let mut removed: Vec<TupleStore> = (0..n_idb).map(|p| TupleStore::new(arity_of(p))).collect();
    let mut revived: Vec<Relation> = (0..n_idb).map(|p| Relation::new(arity_of(p))).collect();
    let mut added: Vec<Relation> = (0..n_idb).map(|p| Relation::new(arity_of(p))).collect();
    let mut rounds = 0usize;
    let mut clock = db.depth_clock;

    // Phase A: propagate a deletion over-approximation `D` to a fixpoint.
    // Round 0 is seeded by the external deletions (EDB and lower strata);
    // later rounds by the tuples newly admitted to `D`, with every other
    // occurrence reading the pre-update state. A candidate only enters `D`
    // if it has no surviving support from strictly shallower members and
    // stable externals — kills propagate strictly depth-upward, so a kept
    // tuple is re-examined whenever a witness supporter dies later, and the
    // cascade stays local when alternative derivations abound.
    let mut frontier: Vec<TupleStore> = (0..n_idb).map(|p| TupleStore::new(arity_of(p))).collect();
    let mut first = true;
    loop {
        let mut items: Vec<(usize, usize)> = Vec::new();
        for &p in &members {
            for &ri in &db.plan.rules_by_head[p] {
                let mr = &db.plan.rules[ri];
                for ai in 0..mr.atoms.len() {
                    let pred = mr.atoms[ai].pred;
                    let seeded = if first {
                        !is_member(&db.plan, pred, scc) && !deltas.minus(pred).is_empty()
                    } else {
                        matches!(pred, PredRef::Idb(q) if db.plan.scc_of[q] == scc
                            && !frontier[q].is_empty())
                    };
                    if seeded {
                        items.push((ri, ai));
                    }
                }
            }
        }
        if items.is_empty() {
            break;
        }
        rounds += 1;
        let outs: Vec<TupleStore> = {
            let ctx = Ctx {
                plan: &db.plan,
                structure: &db.structure,
                idb: &db.idb,
                indexes: &db.indexes,
                deltas,
                overlay: None,
                gate: None,
            };
            let removed_ref = &removed;
            let frontier_ref = &frontier;
            par_map(workers, items.len(), |ix| {
                let (ri, ai) = items[ix];
                let mr = &ctx.plan.rules[ri];
                let h = mr.head;
                let views = vec![View::Old; mr.atoms.len()];
                let pred = mr.atoms[ai].pred;
                let seeds: &TupleStore = if first {
                    ctx.deltas.minus(pred)
                } else {
                    let PredRef::Idb(q) = pred else {
                        unreachable!()
                    };
                    &frontier_ref[q]
                };
                let mut out = TupleStore::new(arity_of(h));
                let mut head = Vec::with_capacity(arity_of(h));
                run_seeded(&ctx, mr, &mr.seeded_orders[ai], &views, seeds, &mut |asg| {
                    head.clear();
                    head.extend(mr.head_args.iter().map(|&s| asg[s]));
                    if ctx.idb[h].contains(&head) && !removed_ref[h].contains(&head) {
                        out.push(&head);
                    }
                    true
                });
                out.seal();
                out
            })
        };
        let mut cand: Vec<TupleStore> = (0..n_idb).map(|p| TupleStore::new(arity_of(p))).collect();
        for (ix, out) in outs.into_iter().enumerate() {
            let h = db.plan.rules[items[ix].0].head;
            cand[h].merge(&out);
        }
        let mut cands: Vec<(usize, Vec<Elem>)> = Vec::new();
        for &p in &members {
            for t in cand[p].difference(&removed[p]).iter() {
                cands.push((p, t.to_vec()));
            }
        }
        let supported: Vec<bool> = {
            let plan = &db.plan;
            let structure = &db.structure;
            let idb = &db.idb;
            let indexes = &db.indexes;
            let depths = &db.depths;
            let dref: &Deltas = deltas;
            let removed_ref = &removed;
            let revived_ref = &revived;
            let added_ref = &added;
            let cands_ref = &cands;
            par_map(workers, cands.len(), |i| {
                let (p, t) = &cands_ref[i];
                let limit = depths[*p]
                    .as_ref()
                    .and_then(|m| m.get(t.as_slice()))
                    .copied()
                    .unwrap_or(0);
                let gctx = Ctx {
                    plan,
                    structure,
                    idb,
                    indexes,
                    deltas: dref,
                    overlay: Some(Overlay {
                        removed: removed_ref,
                        revived: revived_ref,
                        added: added_ref,
                    }),
                    gate: Some(DepthGate { depths, limit }),
                };
                rederives_with(&gctx, scc, *p, t, View::Stable)
            })
        };
        let mut kills: Vec<TupleStore> = (0..n_idb).map(|p| TupleStore::new(arity_of(p))).collect();
        for (i, (p, t)) in cands.iter().enumerate() {
            if !supported[i] {
                kills[*p].push(t);
            }
        }
        let mut any = false;
        for &p in &members {
            kills[p].seal();
            any = any || !kills[p].is_empty();
            removed[p].merge(&kills[p]);
            frontier[p] = std::mem::replace(&mut kills[p], TupleStore::new(0));
        }
        first = false;
        if !any {
            break;
        }
    }

    // Phase B: revive every over-deleted tuple with a surviving alternative
    // derivation; revivals can support further revivals, so iterate.
    loop {
        let mut cands: Vec<(usize, Vec<Elem>)> = Vec::new();
        for &p in &members {
            for t in removed[p].difference(revived[p].store()).iter() {
                cands.push((p, t.to_vec()));
            }
        }
        if cands.is_empty() {
            break;
        }
        rounds += 1;
        let hits: Vec<bool> = {
            let ctx = Ctx {
                plan: &db.plan,
                structure: &db.structure,
                idb: &db.idb,
                indexes: &db.indexes,
                deltas,
                overlay: Some(Overlay {
                    removed: &removed,
                    revived: &revived,
                    added: &added,
                }),
                gate: None,
            };
            par_map(workers, cands.len(), |i| {
                rederives(&ctx, scc, cands[i].0, &cands[i].1)
            })
        };
        let mut any = false;
        clock += 1;
        for (i, hit) in hits.iter().enumerate() {
            if *hit {
                let (p, t) = &cands[i];
                revived[*p].insert(t);
                db.depths[*p]
                    .as_mut()
                    .expect("recursive members carry depths")
                    .insert(t.as_slice().into(), clock);
                any = true;
            }
        }
        if !any {
            break;
        }
    }

    // Phase C: warm-started semi-naive insertion over the repaired state.
    // Round 0 is seeded by the external insertions; later rounds by the
    // SCC tuples that became true last round (fresh or revived).
    let mut frontier: Vec<TupleStore> = (0..n_idb).map(|p| TupleStore::new(arity_of(p))).collect();
    let mut first = true;
    loop {
        let mut items: Vec<(usize, usize)> = Vec::new();
        for &p in &members {
            for &ri in &db.plan.rules_by_head[p] {
                let mr = &db.plan.rules[ri];
                for ai in 0..mr.atoms.len() {
                    let pred = mr.atoms[ai].pred;
                    let seeded = if first {
                        !is_member(&db.plan, pred, scc) && !deltas.plus(pred).is_empty()
                    } else {
                        matches!(pred, PredRef::Idb(q) if db.plan.scc_of[q] == scc
                            && !frontier[q].is_empty())
                    };
                    if seeded {
                        items.push((ri, ai));
                    }
                }
            }
        }
        if items.is_empty() {
            break;
        }
        rounds += 1;
        let outs: Vec<TupleStore> = {
            let ctx = Ctx {
                plan: &db.plan,
                structure: &db.structure,
                idb: &db.idb,
                indexes: &db.indexes,
                deltas,
                overlay: Some(Overlay {
                    removed: &removed,
                    revived: &revived,
                    added: &added,
                }),
                gate: None,
            };
            let frontier_ref = &frontier;
            par_map(workers, items.len(), |ix| {
                let (ri, ai) = items[ix];
                let mr = &ctx.plan.rules[ri];
                let h = mr.head;
                let views = scc_views(ctx.plan, mr, scc, View::New);
                let pred = mr.atoms[ai].pred;
                let seeds: &TupleStore = if first {
                    ctx.deltas.plus(pred)
                } else {
                    let PredRef::Idb(q) = pred else {
                        unreachable!()
                    };
                    &frontier_ref[q]
                };
                let mut out = TupleStore::new(arity_of(h));
                let mut head = Vec::with_capacity(arity_of(h));
                run_seeded(&ctx, mr, &mr.seeded_orders[ai], &views, seeds, &mut |asg| {
                    head.clear();
                    head.extend(mr.head_args.iter().map(|&s| asg[s]));
                    out.push(&head);
                    true
                });
                out.seal();
                out
            })
        };
        let mut cand: Vec<TupleStore> = (0..n_idb).map(|p| TupleStore::new(arity_of(p))).collect();
        for (ix, out) in outs.into_iter().enumerate() {
            let h = db.plan.rules[items[ix].0].head;
            cand[h].merge(&out);
        }
        let mut any = false;
        clock += 1;
        for &p in &members {
            let mut fresh = TupleStore::new(arity_of(p));
            let mut revive = TupleStore::new(arity_of(p));
            for t in cand[p].iter() {
                if added[p].contains(t) {
                    continue;
                }
                if db.idb[p].contains(t) {
                    if removed[p].contains(t) && !revived[p].contains(t) {
                        revive.push(t);
                    }
                } else {
                    fresh.push(t);
                }
            }
            fresh.seal();
            revive.seal();
            let map = db.depths[p]
                .as_mut()
                .expect("recursive members carry depths");
            for t in fresh.iter().chain(revive.iter()) {
                map.insert(t.to_vec().into(), clock);
            }
            added[p].merge_store(&fresh);
            revived[p].merge_store(&revive);
            let mut next = fresh;
            next.merge(&revive);
            any = any || !next.is_empty();
            frontier[p] = next;
        }
        first = false;
        if !any {
            break;
        }
    }

    // Commit: the confirmed deletions are `D ∖ revived`, the insertions are
    // the fresh tuples; both are recorded as this stratum's deltas for the
    // consumers downstream.
    let mut changed = 0usize;
    for &p in &members {
        let final_minus = removed[p].difference(revived[p].store());
        let final_plus = added[p].store().clone();
        changed += final_minus.len() + final_plus.len();
        let map = db.depths[p]
            .as_mut()
            .expect("recursive members carry depths");
        for t in final_minus.iter() {
            map.remove(t.to_vec().as_slice());
        }
        db.idb[p].remove_tuples(&final_minus);
        db.idb[p].merge_store(&final_plus);
        for (si, spec) in db.plan.specs.iter().enumerate() {
            if spec.pred == PredRef::Idb(p) {
                db.indexes[si].remove_batch(&final_minus);
                db.indexes[si].insert_batch(&final_plus);
            }
        }
        deltas.idb_minus[p] = final_minus;
        deltas.idb_plus[p] = final_plus;
    }
    db.depth_clock = clock;
    (rounds, changed)
}

/// Run maintenance from stratum `first_scc` on, charging the gauge at SCC
/// boundaries: a `check` before each stratum and a `tick` of
/// `1 + changed_tuples` after it commits, mirroring the per-round charge of
/// the full evaluator.
// The large Err variant is the point of the budgeted API: exhaustion
// carries a full checkpoint so callers can resume (same as eval.rs).
#[allow(clippy::result_large_err)]
fn maintain(
    db: &mut MaterializedDb,
    cfg: &EvalConfig,
    mut gauge: Gauge,
    mut deltas: Deltas,
    first_scc: usize,
    mut stages: usize,
) -> Budgeted<FixpointResult, IncCheckpoint> {
    let workers = cfg.worker_count();
    let n_scc = db.plan.sccs.len();
    for si in first_scc..n_scc {
        if let Err(stop) = gauge.check() {
            db.in_flight = true;
            return Err(stop.with_partial(checkpoint(si, &deltas, stages, &gauge)));
        }
        let (rounds, changed) = if db.plan.sccs[si].recursive {
            dred_scc(db, workers, &mut deltas, si)
        } else {
            counting_scc(db, workers, &mut deltas, db.plan.sccs[si].members[0])
        };
        stages += rounds;
        if let Err(stop) = gauge.tick(1 + changed as u64) {
            db.in_flight = true;
            return Err(stop.with_partial(checkpoint(si + 1, &deltas, stages, &gauge)));
        }
    }
    db.in_flight = false;
    Ok(FixpointResult {
        idb_names: db.program.idbs().iter().map(|(n, _)| n.clone()).collect(),
        goal: db.program.goal_index(),
        relations: db.idb.clone(),
        stages,
        converged: true,
        diagnostics: Vec::new(),
        profile: Vec::new(),
    })
}

fn checkpoint(next_scc: usize, deltas: &Deltas, stages: usize, gauge: &Gauge) -> IncCheckpoint {
    IncCheckpoint {
        next_scc,
        edb_plus: deltas.edb_plus.clone(),
        edb_minus: deltas.edb_minus.clone(),
        idb_plus: deltas.idb_plus.clone(),
        idb_minus: deltas.idb_minus.clone(),
        stages,
        fuel: gauge.state(),
    }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

impl Program {
    /// Fold an EDB update batch into a materialized database and return the
    /// maintained fixpoint — bit-identical relations to a from-scratch
    /// [`Program::evaluate`] on the updated structure.
    ///
    /// [`FixpointResult::stages`] counts *maintenance rounds* (delta
    /// passes across all strata), not the full evaluator's Φ rounds; an
    /// update nothing depends on reports 0 stages.
    pub fn evaluate_incremental(
        &self,
        db: &mut MaterializedDb,
        plus: &EdbDelta,
        minus: &EdbDelta,
    ) -> Result<FixpointResult, EvalError> {
        self.evaluate_incremental_with(db, plus, minus, &EvalConfig::new())
    }

    /// As [`Program::evaluate_incremental`] with an explicit configuration
    /// (worker threads for the per-round delta items; results are
    /// bit-identical for every thread count).
    pub fn evaluate_incremental_with(
        &self,
        db: &mut MaterializedDb,
        plus: &EdbDelta,
        minus: &EdbDelta,
        cfg: &EvalConfig,
    ) -> Result<FixpointResult, EvalError> {
        self.evaluate_incremental_budgeted(db, plus, minus, cfg, &Budget::unlimited())
            .map(|r| r.expect("unlimited budgets cannot exhaust"))
    }

    /// Budgeted incremental maintenance. On exhaustion the returned
    /// [`IncCheckpoint`] snapshots the run at a stratum boundary — already
    /// maintained strata stay committed in `db`, which refuses further
    /// update batches until [`Program::resume_incremental`] completes the
    /// run. The resume law of [`Program::resume_budgeted`] holds: fuel `f1`
    /// then `f2` is indistinguishable from a single `f1 + f2` run.
    pub fn evaluate_incremental_budgeted(
        &self,
        db: &mut MaterializedDb,
        plus: &EdbDelta,
        minus: &EdbDelta,
        cfg: &EvalConfig,
        budget: &Budget,
    ) -> Result<Budgeted<FixpointResult, IncCheckpoint>, EvalError> {
        if self.has_negation() {
            return Err(EvalError::NegationUnsupported {
                operation: "incremental view maintenance".to_string(),
            });
        }
        self.check_db(db)?;
        if db.in_flight {
            return Err(EvalError::ProgramMismatch {
                detail: "maintenance is in progress on this database; resume it first".to_string(),
            });
        }
        if plus.vocab != *self.edb() || minus.vocab != *self.edb() {
            return Err(EvalError::ProgramMismatch {
                detail: "update batch vocabulary differs from the program's EDB".to_string(),
            });
        }
        let deltas = commit_edb(db, plus, minus)?;
        Ok(maintain(db, cfg, budget.gauge(), deltas, 0, 0))
    }

    /// Resume a budget-exhausted maintenance run from its checkpoint,
    /// continuing at the first unmaintained stratum with cumulative fuel
    /// accounting.
    pub fn resume_incremental(
        &self,
        db: &mut MaterializedDb,
        checkpoint: IncCheckpoint,
        cfg: &EvalConfig,
        budget: &Budget,
    ) -> Result<Budgeted<FixpointResult, IncCheckpoint>, EvalError> {
        self.check_db(db)?;
        if !db.in_flight {
            return Err(EvalError::CheckpointMismatch {
                detail: "no maintenance run is in progress on this database".to_string(),
            });
        }
        if checkpoint.next_scc > db.plan.sccs.len()
            || checkpoint.edb_plus.len() != self.edb().len()
            || checkpoint.idb_plus.len() != self.idbs().len()
        {
            return Err(EvalError::CheckpointMismatch {
                detail: "checkpoint shape does not match this program".to_string(),
            });
        }
        let deltas = Deltas {
            edb_plus: checkpoint.edb_plus,
            edb_minus: checkpoint.edb_minus,
            idb_plus: checkpoint.idb_plus,
            idb_minus: checkpoint.idb_minus,
        };
        let gauge = budget.resume(checkpoint.fuel);
        Ok(maintain(
            db,
            cfg,
            gauge,
            deltas,
            checkpoint.next_scc,
            checkpoint.stages,
        ))
    }

    /// Cheap identity check: was `db` built for (a clone of) this program?
    fn check_db(&self, db: &MaterializedDb) -> Result<(), EvalError> {
        if self.edb() != db.program.edb()
            || self.idbs() != db.program.idbs()
            || self.rules() != db.program.rules()
        {
            return Err(EvalError::ProgramMismatch {
                detail: "materialized database was built for a different program".to_string(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gallery;
    use hp_structures::generators::directed_path;

    fn delta_pair(vocab: &Vocabulary) -> (EdbDelta, EdbDelta) {
        (EdbDelta::new(vocab), EdbDelta::new(vocab))
    }

    #[test]
    fn single_edge_insert_matches_full_eval() {
        let p = gallery::transitive_closure();
        let a = directed_path(5);
        let mut db = MaterializedDb::new(&p, a.clone()).unwrap();
        let (mut plus, minus) = delta_pair(p.edb());
        plus.push_ids(0, &[4, 0]); // close the cycle
        let r = p.evaluate_incremental(&mut db, &plus, &minus).unwrap();
        let mut b = a;
        let _ = b.add_tuple_ids(0, &[4, 0]);
        let full = p.evaluate(&b);
        assert_eq!(r.relations, full.relations);
        assert_eq!(db.relations(), &full.relations[..]);
    }

    #[test]
    fn single_edge_delete_matches_full_eval() {
        let p = gallery::transitive_closure();
        let a = directed_path(6);
        let mut db = MaterializedDb::new(&p, a.clone()).unwrap();
        let (plus, mut minus) = delta_pair(p.edb());
        minus.push_ids(0, &[2, 3]); // cut the path in the middle
        let r = p.evaluate_incremental(&mut db, &plus, &minus).unwrap();
        let mut b = a;
        assert!(b.remove_tuple(SymbolId::from(0usize), &[Elem(2), Elem(3)]));
        let full = p.evaluate(&b);
        assert_eq!(r.relations, full.relations);
    }

    #[test]
    fn delete_then_reinsert_restores_everything() {
        let p = gallery::transitive_closure();
        let a = directed_path(6);
        let mut db = MaterializedDb::new(&p, a.clone()).unwrap();
        let before: Vec<Relation> = db.relations().to_vec();
        let (plus0, mut minus0) = delta_pair(p.edb());
        minus0.push_ids(0, &[3, 4]);
        p.evaluate_incremental(&mut db, &plus0, &minus0).unwrap();
        let (mut plus1, minus1) = delta_pair(p.edb());
        plus1.push_ids(0, &[3, 4]);
        let r = p.evaluate_incremental(&mut db, &plus1, &minus1).unwrap();
        assert_eq!(r.relations, before);
        assert_eq!(db.structure().relation(SymbolId::from(0usize)).len(), 5);
    }

    #[test]
    fn nonrecursive_counting_keeps_multiply_derived_tuples() {
        // two_hop is non-recursive: H(x,y) has one derivation per length-2
        // path. Deleting one of two parallel mid-edges must keep the pair.
        let p = gallery::two_hop();
        let mut a = Structure::new(Vocabulary::digraph(), 4);
        for (u, v) in [(0u32, 1), (0, 2), (1, 3), (2, 3)] {
            let _ = a.add_tuple_ids(0, &[u, v]);
        }
        let mut db = MaterializedDb::new(&p, a.clone()).unwrap();
        let (plus, mut minus) = delta_pair(p.edb());
        minus.push_ids(0, &[1, 3]);
        let r = p.evaluate_incremental(&mut db, &plus, &minus).unwrap();
        // (0,3) survives via 0→2→3.
        assert!(r.relations[0].contains(&[Elem(0), Elem(3)]));
        let mut b = a;
        assert!(b.remove_tuple(SymbolId::from(0usize), &[Elem(1), Elem(3)]));
        assert_eq!(r.relations, p.evaluate(&b).relations);
    }

    #[test]
    fn noop_batch_reports_zero_stages() {
        let p = gallery::transitive_closure();
        let a = directed_path(4);
        let mut db = MaterializedDb::new(&p, a).unwrap();
        let (mut plus, mut minus) = delta_pair(p.edb());
        plus.push_ids(0, &[0, 1]); // already present
        minus.push_ids(0, &[3, 0]); // absent
        let r = p.evaluate_incremental(&mut db, &plus, &minus).unwrap();
        assert_eq!(r.stages, 0);
        assert!(r.converged);
    }

    #[test]
    fn mismatched_database_is_a_typed_error() {
        let p = gallery::transitive_closure();
        let q = gallery::cycle_detection();
        let mut db = MaterializedDb::new(&p, directed_path(3)).unwrap();
        let (plus, minus) = delta_pair(q.edb());
        let err = q.evaluate_incremental(&mut db, &plus, &minus).unwrap_err();
        assert!(matches!(err, EvalError::ProgramMismatch { .. }));
    }

    #[test]
    fn out_of_range_insert_is_rejected_before_mutation() {
        let p = gallery::transitive_closure();
        let a = directed_path(3);
        let mut db = MaterializedDb::new(&p, a.clone()).unwrap();
        let (mut plus, minus) = delta_pair(p.edb());
        plus.push_ids(0, &[0, 99]);
        let err = p.evaluate_incremental(&mut db, &plus, &minus).unwrap_err();
        assert!(matches!(err, EvalError::Structure(_)));
        // Untouched: a follow-up no-op batch still matches full eval.
        let (plus2, minus2) = delta_pair(p.edb());
        let r = p.evaluate_incremental(&mut db, &plus2, &minus2).unwrap();
        assert_eq!(r.relations, p.evaluate(&a).relations);
    }
}
