//! Precomputed join plans: dense per-rule variable numbering, atom join
//! orders chosen by bound-variable selectivity, and the hash-index key
//! specifications those orders probe.
//!
//! The seed evaluator recomputed `rule.variables()` (and a fresh
//! binary-search closure over it) on **every** `rule_matches` invocation of
//! every delta round. A [`ProgramPlan`] hoists all of that: it is built once
//! per evaluation and shared — immutably, so also across worker threads —
//! by every round.
//!
//! For each rule we precompute one join order per "seeding" variant: the
//! naive variant (no atom restricted to a delta, used by round 0 and the
//! naive operator) and one variant per IDB body atom (the semi-naive work
//! items, where that occurrence reads the delta relation and is scanned
//! first). Orders are greedy: after the seed, repeatedly pick the atom with
//! the most argument positions over already-bound variables (ties prefer
//! EDB atoms, then source order), so each step can be answered by a hash
//! index keyed on exactly those bound positions.

use std::cmp::Reverse;

use crate::ast::{PredRef, Program, Rule};

/// Key specification for one hash index: a predicate together with the
/// sorted tuple positions the key is drawn from. Interned per program so
/// equal specs across rules share one physical index.
#[derive(Clone, PartialEq, Eq, Debug)]
pub(crate) struct IndexSpec {
    /// Indexed predicate.
    pub pred: PredRef,
    /// Sorted tuple positions forming the key.
    pub key_positions: Vec<usize>,
}

/// One body atom with its arguments renumbered to dense rule-local slots.
#[derive(Clone, Debug)]
pub(crate) struct AtomPlan {
    /// The predicate.
    pub pred: PredRef,
    /// Dense variable slot of each argument position.
    pub args: Vec<usize>,
    /// True for a negated literal: the step is a membership *guard* —
    /// scheduled only once every argument is bound, it filters rather than
    /// binds, and it never seeds a delta order.
    pub negated: bool,
}

/// One step of a join order: which atom to join next and how each of its
/// argument positions behaves at that point of the order.
#[derive(Clone, Debug)]
pub(crate) struct JoinStep {
    /// Body atom index this step joins.
    pub atom: usize,
    /// `(argument position, slot)` pairs whose variable is already bound by
    /// earlier steps, in argument-position order — these form the probe key.
    pub bound: Vec<(usize, usize)>,
    /// `(argument position, slot)` pairs binding a variable for the first
    /// time.
    pub binds: Vec<(usize, usize)>,
    /// `(later, earlier)` argument positions carrying the same — hitherto
    /// unbound — variable within this atom: candidate tuples must agree.
    pub repeats: Vec<(usize, usize)>,
    /// Index into [`ProgramPlan::index_specs`] to probe with the values of
    /// `bound`, or `None` to scan the whole relation (nothing bound yet, or
    /// the step reads a delta relation).
    pub index: Option<usize>,
}

/// Everything the join core needs to know about one rule, precomputed.
#[derive(Clone, Debug)]
pub(crate) struct RulePlan {
    /// IDB index of the head predicate.
    pub head: usize,
    /// Dense slot of each head argument.
    pub head_args: Vec<usize>,
    /// Number of dense variable slots in the rule.
    pub var_count: usize,
    /// Body atoms with dense argument slots.
    pub atoms: Vec<AtomPlan>,
    /// Join order when no atom is restricted to a delta (round 0, naive Φ).
    pub seed_order: Vec<JoinStep>,
    /// Join order seeded by each body atom as the delta atom, aligned with
    /// `atoms`; `None` for EDB atoms.
    pub delta_orders: Vec<Option<Vec<JoinStep>>>,
    /// Body atom indices that are IDB atoms — the semi-naive work items.
    pub idb_atoms: Vec<usize>,
}

/// Per-program metadata for the indexed join core: one [`RulePlan`] per
/// rule plus the interned set of index specs the orders probe.
#[derive(Clone, Debug)]
pub(crate) struct ProgramPlan {
    /// Rule plans, aligned with [`Program::rules`].
    pub rules: Vec<RulePlan>,
    /// Interned index-key specs referenced by [`JoinStep::index`].
    pub index_specs: Vec<IndexSpec>,
    /// IDB arities, aligned with [`Program::idbs`] — the row strides the
    /// index pool's owned arenas use.
    pub idb_arities: Vec<usize>,
}

impl ProgramPlan {
    /// Build the plan for a validated program.
    pub fn new(p: &Program) -> ProgramPlan {
        let mut index_specs: Vec<IndexSpec> = Vec::new();
        let rules = p
            .rules()
            .iter()
            .map(|r| RulePlan::new(r, &mut index_specs))
            .collect();
        ProgramPlan {
            rules,
            index_specs,
            idb_arities: p.idbs().iter().map(|&(_, a)| a).collect(),
        }
    }
}

impl RulePlan {
    /// Build the plan for one rule, interning index specs into `specs`.
    /// Also used by the incremental-maintenance planner, which reuses the
    /// dense slotting and then derives its own orders with
    /// [`plan_steps`]/[`plan_steps_prebound`].
    pub(crate) fn new(rule: &Rule, specs: &mut Vec<IndexSpec>) -> RulePlan {
        let vars: Vec<u32> = rule.variables().into_iter().collect();
        let slot = |v: u32| vars.binary_search(&v).expect("rule variable");
        let atoms: Vec<AtomPlan> = rule
            .body
            .iter()
            .map(|a| AtomPlan {
                pred: a.pred,
                args: a.args.iter().map(|&v| slot(v)).collect(),
                negated: a.negated,
            })
            .collect();
        let PredRef::Idb(head) = rule.head.pred else {
            unreachable!("validated: rule heads are IDB atoms")
        };
        // Only *positive* IDB atoms are semi-naive work items: a negated
        // literal reads a sealed lower stratum, whose delta is empty by the
        // time this rule's stratum runs.
        let idb_atoms: Vec<usize> = atoms
            .iter()
            .enumerate()
            .filter(|(_, a)| matches!(a.pred, PredRef::Idb(_)) && !a.negated)
            .map(|(i, _)| i)
            .collect();
        let seed_order = plan_steps(&atoms, vars.len(), None, specs);
        let delta_orders = (0..atoms.len())
            .map(|i| {
                idb_atoms
                    .contains(&i)
                    .then(|| plan_steps(&atoms, vars.len(), Some(i), specs))
            })
            .collect();
        RulePlan {
            head,
            head_args: rule.head.args.iter().map(|&v| slot(v)).collect(),
            var_count: vars.len(),
            atoms,
            seed_order,
            delta_orders,
            idb_atoms,
        }
    }
}

/// Choose a greedy join order seeded by `seed` (the delta atom, scanned
/// first) and derive the per-step classification and index specs.
pub(crate) fn plan_steps(
    atoms: &[AtomPlan],
    var_count: usize,
    seed: Option<usize>,
    specs: &mut Vec<IndexSpec>,
) -> Vec<JoinStep> {
    plan_steps_inner(atoms, var_count, seed, &[], specs)
}

/// Like [`plan_steps`], but with some variable slots *prebound* before the
/// first step — the rederivation orders of DRed start from a fully bound
/// head tuple, so every step can be answered by an index probe on its
/// prebound-or-earlier-bound positions.
pub(crate) fn plan_steps_prebound(
    atoms: &[AtomPlan],
    var_count: usize,
    prebound: &[bool],
    specs: &mut Vec<IndexSpec>,
) -> Vec<JoinStep> {
    plan_steps_inner(atoms, var_count, None, prebound, specs)
}

fn plan_steps_inner(
    atoms: &[AtomPlan],
    var_count: usize,
    seed: Option<usize>,
    prebound: &[bool],
    specs: &mut Vec<IndexSpec>,
) -> Vec<JoinStep> {
    debug_assert!(prebound.is_empty() || prebound.len() == var_count);
    let mut order: Vec<usize> = Vec::new();
    let mut used = vec![false; atoms.len()];
    let mut bound_var = vec![false; var_count];
    for (v, &b) in prebound.iter().enumerate() {
        bound_var[v] = b;
    }
    if let Some(s) = seed {
        used[s] = true;
        order.push(s);
        for &v in &atoms[s].args {
            bound_var[v] = true;
        }
    }
    while order.len() < atoms.len() {
        // A negated atom is eligible only once all of its variables are
        // bound (guaranteed reachable: negation safety makes positive atoms
        // bind every negated variable). Among eligible atoms positive ones
        // win ties, so a scannable positive atom always opens the order
        // when one exists.
        let next = (0..atoms.len())
            .filter(|&ai| {
                !used[ai] && (!atoms[ai].negated || atoms[ai].args.iter().all(|&s| bound_var[s]))
            })
            .max_by_key(|&ai| {
                let bound = atoms[ai].args.iter().filter(|&&s| bound_var[s]).count();
                (
                    bound,
                    !atoms[ai].negated,
                    matches!(atoms[ai].pred, PredRef::Edb(_)),
                    Reverse(ai),
                )
            })
            .expect("unused atom remains");
        used[next] = true;
        order.push(next);
        for &v in &atoms[next].args {
            bound_var[v] = true;
        }
    }
    // Derive the step classifications along the chosen order.
    let mut bound_var = vec![false; var_count];
    for (v, &b) in prebound.iter().enumerate() {
        bound_var[v] = b;
    }
    order
        .iter()
        .map(|&ai| {
            let atom = &atoms[ai];
            let mut bound = Vec::new();
            let mut binds: Vec<(usize, usize)> = Vec::new();
            let mut repeats = Vec::new();
            for (i, &s) in atom.args.iter().enumerate() {
                if bound_var[s] {
                    bound.push((i, s));
                } else if let Some(&(j, _)) = binds.iter().find(|&&(_, t)| t == s) {
                    repeats.push((i, j));
                } else {
                    binds.push((i, s));
                }
            }
            for &(_, s) in &binds {
                bound_var[s] = true;
            }
            // The delta atom (always at depth 0) reads the per-round delta
            // relation, which is scanned, never indexed; a negated guard is
            // answered by a direct sorted-store membership probe, not an
            // index; any other step with at least one bound position probes
            // a hash index on exactly those positions.
            let reads_delta = seed == Some(ai);
            let index = (!bound.is_empty() && !reads_delta && !atom.negated)
                .then(|| intern(specs, atom.pred, bound.iter().map(|&(i, _)| i).collect()));
            JoinStep {
                atom: ai,
                bound,
                binds,
                repeats,
                index,
            }
        })
        .collect()
}

fn intern(specs: &mut Vec<IndexSpec>, pred: PredRef, key_positions: Vec<usize>) -> usize {
    if let Some(i) = specs
        .iter()
        .position(|s| s.pred == pred && s.key_positions == key_positions)
    {
        i
    } else {
        specs.push(IndexSpec {
            pred,
            key_positions,
        });
        specs.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hp_structures::Vocabulary;

    fn tc() -> Program {
        Program::parse(
            "T(x,y) :- E(x,y).\nT(x,y) :- E(x,z), T(z,y).",
            &Vocabulary::digraph(),
        )
        .unwrap()
    }

    #[test]
    fn tc_plan_shape() {
        let plan = ProgramPlan::new(&tc());
        assert_eq!(plan.rules.len(), 2);
        let r1 = &plan.rules[1];
        assert_eq!(r1.var_count, 3);
        assert_eq!(r1.idb_atoms, vec![1]);
        // Delta order for the T(z,y) atom: T first, then E probed on its
        // second position (z bound).
        let steps = r1.delta_orders[1].as_ref().unwrap();
        assert_eq!(steps[0].atom, 1);
        assert!(steps[0].index.is_none());
        assert_eq!(steps[1].atom, 0);
        let spec = &plan.index_specs[steps[1].index.unwrap()];
        assert_eq!(spec.key_positions, vec![1]);
    }

    #[test]
    fn repeated_variable_within_atom_is_a_repeat_check() {
        let p = Program::parse("L(x) :- E(x,x).", &Vocabulary::digraph()).unwrap();
        let plan = ProgramPlan::new(&p);
        let step = &plan.rules[0].seed_order[0];
        assert_eq!(step.binds, vec![(0, 0)]);
        assert_eq!(step.repeats, vec![(1, 0)]);
        assert!(step.bound.is_empty());
        assert!(step.index.is_none());
    }

    #[test]
    fn specs_are_interned_across_rules() {
        // Both rules probe E on position 1 after seeding from the IDB atom;
        // the spec is shared.
        let p = Program::parse(
            "A(x) :- E(x,x).\nA(x) :- E(x,y), A(y).\nB(x) :- E(x,y), B(y).\nB(x) :- E(x,x).",
            &Vocabulary::digraph(),
        )
        .unwrap();
        let plan = ProgramPlan::new(&p);
        let probe_specs: Vec<usize> = plan
            .rules
            .iter()
            .flat_map(|r| r.delta_orders.iter().flatten())
            .flat_map(|steps| steps.iter().filter_map(|s| s.index))
            .collect();
        assert!(!probe_specs.is_empty());
        assert!(probe_specs.windows(2).all(|w| w[0] == w[1]));
    }
}
