//! Scan-based reference evaluation.
//!
//! This module preserves the original nested full-relation-scan join —
//! deliberately unindexed and single-threaded — for three jobs:
//!
//! 1. the **naive** operator Φ behind [`Program::apply_operator`] and
//!    [`Program::stages`], where oracle-grade simplicity matters more than
//!    speed (stage sequences are probed on small structures);
//! 2. [`Program::evaluate_reference`], the seed semi-naive evaluator that
//!    the differential tests compare the indexed/sharded engine against
//!    (an independent implementation, not a configuration of the new one);
//! 3. the `seed` rows of the E-scale benchmark table in EXPERIMENTS.md.
//!
//! Unlike the seed code, the scan join still runs off the precomputed
//! [`ProgramPlan`] dense variable numbering — `rule.variables()` and its
//! binary-search closure are no longer rebuilt per `rule_matches` call.

use hp_structures::{Elem, Row, Structure, TupleStore};

use crate::ast::{PredRef, Program};
use crate::eval::{FixpointResult, IdbRelation};
use crate::plan::{ProgramPlan, RulePlan};

/// All satisfying substitutions of a rule body, by exhaustive scans,
/// pushed (unsorted, possibly duplicated) into `out` — the caller seals.
/// `delta`, when set, restricts body atom `di` to the delta relations.
pub(crate) fn scan_matches(
    rp: &RulePlan,
    a: &Structure,
    idb: &[IdbRelation],
    delta: Option<(&[IdbRelation], usize)>,
    out: &mut TupleStore,
) {
    // Order body atoms: positive atoms first — delta atom in front when
    // present (cheap seed), source order otherwise, exactly the seed
    // evaluator's behaviour — then the negated literals as trailing
    // membership guards, by which point negation safety has bound every
    // one of their variables.
    let mut order: Vec<usize> = (0..rp.atoms.len())
        .filter(|&i| !rp.atoms[i].negated)
        .collect();
    if let Some((_, di)) = delta {
        let pos = order
            .iter()
            .position(|&i| i == di)
            .expect("delta atom is a positive IDB atom");
        order.swap(0, pos);
    }
    order.extend((0..rp.atoms.len()).filter(|&i| rp.atoms[i].negated));
    let mut asg: Vec<Option<Elem>> = vec![None; rp.var_count];
    scan_join(rp, a, idb, delta, &order, 0, &mut asg, out);
}

#[allow(clippy::too_many_arguments)]
fn scan_join(
    rp: &RulePlan,
    a: &Structure,
    idb: &[IdbRelation],
    delta: Option<(&[IdbRelation], usize)>,
    order: &[usize],
    depth: usize,
    asg: &mut Vec<Option<Elem>>,
    out: &mut TupleStore,
) {
    if depth == order.len() {
        out.push_with(|buf| {
            buf.extend(
                rp.head_args
                    .iter()
                    .map(|&s| asg[s].expect("safe rule binds head vars")),
            )
        });
        return;
    }
    let ai = order[depth];
    let atom = &rp.atoms[ai];
    if atom.negated {
        // Trailing guard: every argument is bound, so this is one
        // membership probe against the sealed relation.
        let key: Vec<Elem> = atom
            .args
            .iter()
            .map(|&s| asg[s].expect("negation safety binds guard vars"))
            .collect();
        let present = match atom.pred {
            PredRef::Edb(sym) => a.relation(sym).contains(&key),
            PredRef::Idb(i) => idb[i].contains(&key),
        };
        if !present {
            scan_join(rp, a, idb, delta, order, depth + 1, asg, out);
        }
        return;
    }
    match atom.pred {
        PredRef::Edb(sym) => {
            for t in a.relation(sym).iter() {
                scan_try(rp, a, idb, delta, order, depth, asg, out, t);
            }
        }
        PredRef::Idb(i) => {
            let rel: &IdbRelation = match delta {
                Some((d, di)) if di == ai => &d[i],
                _ => &idb[i],
            };
            for t in rel.iter() {
                scan_try(rp, a, idb, delta, order, depth, asg, out, t);
            }
        }
    }
}

/// Unify one candidate tuple against the current assignment, recursing on
/// success and rolling the touched slots back afterwards.
#[allow(clippy::too_many_arguments)]
fn scan_try<R: Row>(
    rp: &RulePlan,
    a: &Structure,
    idb: &[IdbRelation],
    delta: Option<(&[IdbRelation], usize)>,
    order: &[usize],
    depth: usize,
    asg: &mut Vec<Option<Elem>>,
    out: &mut TupleStore,
    t: R,
) {
    let atom = &rp.atoms[order[depth]];
    let mut touched: Vec<usize> = Vec::new();
    let mut ok = true;
    for (i, &s) in atom.args.iter().enumerate() {
        match asg[s] {
            Some(e) if e == t.at(i) => {}
            Some(_) => {
                ok = false;
                break;
            }
            None => {
                asg[s] = Some(t.at(i));
                touched.push(s);
            }
        }
    }
    if ok {
        scan_join(rp, a, idb, delta, order, depth + 1, asg, out);
    }
    for s in touched {
        asg[s] = None;
    }
}

impl Program {
    /// One application of Φ driven by a prebuilt plan (shared across the
    /// stages of [`Program::stages`]).
    pub(crate) fn apply_operator_with(
        &self,
        plan: &ProgramPlan,
        a: &Structure,
        idb: &[IdbRelation],
    ) -> Vec<IdbRelation> {
        let mut next: Vec<IdbRelation> = self.empty_idbs();
        for rp in &plan.rules {
            let mut out = TupleStore::new(rp.head_args.len());
            scan_matches(rp, a, idb, None, &mut out);
            out.seal();
            next[rp.head].merge_store(&out);
        }
        next
    }

    /// The seed scan-based semi-naive evaluator, retained as the
    /// independent reference implementation: no indexes, no sharding, whole
    /// relations scanned per join step.
    ///
    /// Use [`Program::evaluate`] (or [`Program::evaluate_with`]) for real
    /// workloads; this exists so differential tests and the E-scale
    /// benchmarks can compare the optimized engine against the algorithm it
    /// replaced. Always runs to the least fixpoint.
    pub fn evaluate_reference(&self, a: &Structure) -> FixpointResult {
        let plan = ProgramPlan::new(self);
        let strata = self.strata();
        let mut idb: Vec<IdbRelation> = self.empty_idbs();
        let mut stages = 0;
        // Strata in ascending order, mirroring the indexed engine: within
        // each stratum the classical semi-naive loop over that stratum's
        // rules; negated literals read the sealed lower strata via the
        // trailing guards in `scan_matches`. One stratum (and the exact
        // pre-negation rounds) for positive programs.
        for s in 0..self.num_strata() {
            let mut delta: Vec<IdbRelation> = self.empty_idbs();
            // Round 0 of the stratum: rules evaluated with this stratum's
            // own predicates still empty (EDB-only derivations, empty-body
            // facts, and joins over sealed lower strata).
            for (ri, rp) in plan.rules.iter().enumerate() {
                if self.rule_stratum(ri) != s {
                    continue;
                }
                let mut out = TupleStore::new(rp.head_args.len());
                scan_matches(rp, a, &idb, None, &mut out);
                out.seal();
                delta[rp.head].merge_store(&out);
            }
            while delta.iter().any(|d| !d.is_empty()) {
                stages += 1;
                for (acc, d) in idb.iter_mut().zip(&delta) {
                    acc.merge(d);
                }
                let mut next_delta: Vec<IdbRelation> = self.empty_idbs();
                for (ri, rp) in plan.rules.iter().enumerate() {
                    if self.rule_stratum(ri) != s {
                        continue;
                    }
                    // For each same-stratum positive IDB body atom, run with
                    // that atom restricted to the delta (standard semi-naive
                    // split); lower-stratum atoms have drained deltas.
                    for &bi in &rp.idb_atoms {
                        let in_stratum = match rp.atoms[bi].pred {
                            PredRef::Idb(p) => strata[p] == s,
                            PredRef::Edb(_) => false,
                        };
                        if !in_stratum {
                            continue;
                        }
                        let mut out = TupleStore::new(rp.head_args.len());
                        scan_matches(rp, a, &idb, Some((&delta, bi)), &mut out);
                        out.seal();
                        next_delta[rp.head].merge_store(&out.difference(idb[rp.head].store()));
                    }
                }
                delta = next_delta;
            }
        }
        FixpointResult {
            idb_names: self.idbs().iter().map(|(n, _)| n.clone()).collect(),
            goal: self.goal_index(),
            relations: idb,
            stages,
            converged: true,
            diagnostics: Vec::new(),
            profile: Vec::new(),
        }
    }
}
