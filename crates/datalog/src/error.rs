//! Structured errors for Datalog parsing and program validation.
//!
//! Every error carries a [`DatalogSpan`]: the 1-based source line when the
//! program came from text (mirroring `StructureError::Parse` in
//! `hp-structures`), and the 0-based rule index when the offending rule is
//! known. The static-analysis layer (`hp-analysis`) maps these onto its
//! stable `HP0xx` diagnostic codes without re-parsing the message text.

use std::fmt;

/// Where in the source a Datalog error points. Both fields are optional:
/// programs built through the [`crate::Program::new`] API have no source
/// text, and lexical errors may precede rule assembly.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct DatalogSpan {
    /// 1-based line in the source text, when parsed from text.
    pub line: Option<usize>,
    /// 0-based index of the offending rule, when known.
    pub rule: Option<usize>,
}

impl DatalogSpan {
    /// A span pointing at a rule index only.
    pub fn rule(rule: usize) -> DatalogSpan {
        DatalogSpan {
            line: None,
            rule: Some(rule),
        }
    }

    /// A span pointing at a source line only.
    pub fn line(line: usize) -> DatalogSpan {
        DatalogSpan {
            line: Some(line),
            rule: None,
        }
    }
}

/// What went wrong.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DatalogErrorKind {
    /// An atom was not of the form `Name(args)`.
    MalformedAtom {
        /// The offending source fragment.
        text: String,
    },
    /// A predicate name contained invalid characters or was empty.
    BadPredicateName {
        /// The offending source fragment.
        text: String,
    },
    /// A variable name contained invalid characters or was empty.
    BadVariableName {
        /// The offending variable token.
        name: String,
        /// The atom it occurred in.
        atom: String,
    },
    /// Parentheses did not balance inside a rule body.
    UnbalancedParens,
    /// A body predicate is neither an IDB (head name) nor in the EDB
    /// vocabulary.
    UnknownEdb {
        /// The unresolved predicate name.
        name: String,
    },
    /// An IDB predicate was used with two different arities.
    IdbArityConflict {
        /// The IDB predicate name.
        name: String,
        /// Arity at first use.
        first: usize,
        /// Conflicting arity at a later use.
        second: usize,
    },
    /// An atom's argument count differs from its predicate's declared arity.
    ArityMismatch {
        /// The predicate name.
        pred: String,
        /// Declared arity.
        expected: usize,
        /// Number of arguments supplied.
        got: usize,
    },
    /// A rule is unsafe: a head variable does not occur in the body
    /// (violates range restriction, §2.3).
    UnsafeRule {
        /// Display name of the unbound head variable.
        var: String,
    },
    /// A rule's head predicate is not an IDB.
    HeadNotIdb,
    /// A rule head was negated (`not H(..) :- ..`); negation is only
    /// permitted on body literals.
    NegatedHead,
    /// A variable of a negated body atom is not bound by any positive
    /// body atom (the safety condition for stratified negation).
    UnsafeNegation {
        /// Display name of the unbound variable.
        var: String,
    },
    /// The program's predicate-dependency graph has a cycle through a
    /// negative edge, so no stratification exists.
    UnstratifiableNegation {
        /// Name of the IDB predicate whose rule closes the cycle.
        pred: String,
        /// Name of the negated IDB predicate on the cycle.
        via: String,
    },
    /// A `# goal:` pragma did not name a single well-formed predicate.
    BadGoalPragma {
        /// The offending pragma payload.
        text: String,
    },
    /// A `# goal:` pragma (or [`crate::Program::with_goal`]) named a
    /// predicate that is not an IDB of the program.
    UnknownGoal {
        /// The unresolved goal predicate name.
        name: String,
    },
}

/// A Datalog parse or validation error with source position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DatalogError {
    /// What went wrong.
    pub kind: DatalogErrorKind,
    /// Where it went wrong.
    pub span: DatalogSpan,
}

impl DatalogError {
    /// Build an error with the given kind and span.
    pub fn new(kind: DatalogErrorKind, span: DatalogSpan) -> DatalogError {
        DatalogError { kind, span }
    }

    /// Attach a source line if none is present yet.
    pub fn with_line(mut self, line: usize) -> DatalogError {
        self.span.line.get_or_insert(line);
        self
    }
}

impl fmt::Display for DatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.span.line, self.span.rule) {
            (Some(l), Some(r)) => write!(f, "line {l}, rule {r}: ")?,
            (Some(l), None) => write!(f, "line {l}: ")?,
            (None, Some(r)) => write!(f, "rule {r}: ")?,
            (None, None) => {}
        }
        match &self.kind {
            DatalogErrorKind::MalformedAtom { text } => write!(f, "malformed atom {text:?}"),
            DatalogErrorKind::BadPredicateName { text } => {
                write!(f, "bad predicate name in {text:?}")
            }
            DatalogErrorKind::BadVariableName { name, atom } => {
                write!(f, "bad variable name {name:?} in {atom:?}")
            }
            DatalogErrorKind::UnbalancedParens => write!(f, "unbalanced parentheses"),
            DatalogErrorKind::UnknownEdb { name } => write!(f, "unknown EDB predicate {name}"),
            DatalogErrorKind::IdbArityConflict {
                name,
                first,
                second,
            } => write!(f, "IDB {name} used with arities {first} and {second}"),
            DatalogErrorKind::ArityMismatch {
                pred,
                expected,
                got,
            } => write!(
                f,
                "predicate arity mismatch for {pred} ({got} args, arity {expected})"
            ),
            DatalogErrorKind::UnsafeRule { var } => {
                write!(f, "unsafe rule (head variable {var} not in body)")
            }
            DatalogErrorKind::HeadNotIdb => write!(f, "head must be an IDB predicate"),
            DatalogErrorKind::NegatedHead => {
                write!(f, "negation is only allowed on body atoms, not the head")
            }
            DatalogErrorKind::UnsafeNegation { var } => write!(
                f,
                "unsafe negation (variable {var} of a negated atom is not bound \
                 by any positive body atom)"
            ),
            DatalogErrorKind::UnstratifiableNegation { pred, via } => write!(
                f,
                "program is not stratifiable: {pred} depends on itself through \
                 a negated occurrence of {via}"
            ),
            DatalogErrorKind::BadGoalPragma { text } => {
                write!(f, "bad goal pragma {text:?} (want `# goal: Name`)")
            }
            DatalogErrorKind::UnknownGoal { name } => {
                write!(f, "goal predicate {name} is not an IDB of the program")
            }
        }
    }
}

impl std::error::Error for DatalogError {}
