//! Per-predicate hash indexes keyed on bound argument positions.
//!
//! The [`ProgramPlan`](crate::plan::ProgramPlan) knows, statically, every
//! `(predicate, bound positions)` combination the join orders probe. An
//! [`IndexPool`] materializes one [`TupleIndex`] per such spec: EDB indexes
//! are built once per evaluation (the input structure never changes), IDB
//! indexes grow **incrementally** — each delta round folds exactly the
//! newly derived tuples in, so maintaining them costs `O(Σ|Δ|)` over the
//! whole fixpoint instead of `O(rounds × |IDB|)` rebuilds.
//!
//! Since the columnar [`TupleStore`](hp_structures::TupleStore) landed, an
//! index's hash map holds **row ids** (`u32`) instead of owned tuple
//! vectors: EDB ids point straight into the input structure's sealed arena
//! (zero copies), IDB ids into a flat append-only arena the index owns —
//! stable across rounds because absorbed rows are never reordered, unlike
//! the accumulated relations whose sorted runs shift on every merge.

use std::collections::HashMap;

use hp_structures::{Elem, Relation, Structure};

use crate::ast::PredRef;
use crate::eval::IdbRelation;
use crate::plan::ProgramPlan;

/// Where a [`TupleIndex`]'s row ids point.
#[derive(Clone, Debug)]
enum Arena<'a> {
    /// EDB: rows live in the structure's relation; ids are sorted-run
    /// indexes into its arena.
    Edb(&'a Relation),
    /// IDB: rows are appended here, one `arity`-stride row per absorbed
    /// tuple, in absorption order.
    Idb { arity: usize, data: Vec<Elem> },
}

/// A hash index over one relation: key = the tuple projected to
/// `key_positions`, value = the row ids of every tuple with that key.
#[derive(Clone, Debug)]
pub(crate) struct TupleIndex<'a> {
    key_positions: Vec<usize>,
    arena: Arena<'a>,
    map: HashMap<Vec<Elem>, Vec<u32>>,
}

impl<'a> TupleIndex<'a> {
    fn new(key_positions: Vec<usize>, arena: Arena<'a>) -> TupleIndex<'a> {
        TupleIndex {
            key_positions,
            arena,
            map: HashMap::new(),
        }
    }

    /// Record `row_id` under the key projected from `t` (EDB arenas only
    /// need this; the row already lives in the structure).
    fn insert_id(&mut self, t: &[Elem], row_id: u32) {
        let key: Vec<Elem> = self.key_positions.iter().map(|&p| t[p]).collect();
        self.map.entry(key).or_default().push(row_id);
    }

    /// Append `t` to the owned IDB arena and record its fresh row id.
    fn absorb_row(&mut self, t: &[Elem]) {
        let Arena::Idb { arity, data } = &mut self.arena else {
            unreachable!("absorb_row on an EDB index");
        };
        debug_assert_eq!(t.len(), *arity);
        let rows = data.len().checked_div(*arity).unwrap_or(0);
        let row_id = u32::try_from(rows).expect("IDB index arena exceeds u32::MAX rows");
        data.extend_from_slice(t);
        let key: Vec<Elem> = self.key_positions.iter().map(|&p| t[p]).collect();
        self.map.entry(key).or_default().push(row_id);
    }

    #[inline]
    fn resolve(&self, row_id: u32) -> &[Elem] {
        match &self.arena {
            Arena::Edb(rel) => rel.tuple(row_id as usize),
            Arena::Idb { arity, data } => {
                let i = row_id as usize;
                &data[i * arity..(i + 1) * arity]
            }
        }
    }

    /// All tuples whose projection to the key positions equals `key`, as
    /// zero-copy rows resolved from the backing arena, in insertion order.
    pub fn probe<'s>(&'s self, key: &[Elem]) -> impl Iterator<Item = &'s [Elem]> {
        let ids: &[u32] = self.map.get(key).map(Vec::as_slice).unwrap_or(&[]);
        ids.iter().map(move |&id| self.resolve(id))
    }
}

/// All indexes one evaluation needs, aligned with
/// [`ProgramPlan::index_specs`]. Borrows the input structure for the
/// lifetime of the evaluation so EDB indexes can point into its arenas.
pub(crate) struct IndexPool<'a> {
    indexes: Vec<TupleIndex<'a>>,
}

impl<'a> IndexPool<'a> {
    /// Build the pool: EDB indexes are filled from the input structure,
    /// IDB indexes start empty (mirroring the empty stage Φ⁰).
    pub fn new(plan: &ProgramPlan, a: &'a Structure) -> IndexPool<'a> {
        let mut indexes: Vec<TupleIndex<'a>> = plan
            .index_specs
            .iter()
            .map(|s| {
                let arena = match s.pred {
                    PredRef::Edb(sym) => Arena::Edb(a.relation(sym)),
                    PredRef::Idb(_) => Arena::Idb {
                        arity: 0, // patched by the fill loop below
                        data: Vec::new(),
                    },
                };
                TupleIndex::new(s.key_positions.clone(), arena)
            })
            .collect();
        for (idx, spec) in plan.index_specs.iter().enumerate() {
            match spec.pred {
                PredRef::Edb(sym) => {
                    for (i, t) in a.relation(sym).iter().enumerate() {
                        let id = u32::try_from(i).expect("EDB relation exceeds u32::MAX rows");
                        indexes[idx].insert_id(t, id);
                    }
                }
                PredRef::Idb(i) => {
                    indexes[idx].arena = Arena::Idb {
                        arity: plan.idb_arities[i],
                        data: Vec::new(),
                    };
                }
            }
        }
        IndexPool { indexes }
    }

    /// Fold one round's newly derived tuples into the IDB indexes, which
    /// then mirror `idb ∪ delta`. Call exactly once per delta round, right
    /// when the delta is merged into the accumulated relations.
    pub fn absorb(&mut self, plan: &ProgramPlan, delta: &[IdbRelation]) {
        for (idx, spec) in plan.index_specs.iter().enumerate() {
            if let PredRef::Idb(i) = spec.pred {
                for t in delta[i].iter() {
                    self.indexes[idx].absorb_row(t);
                }
            }
        }
    }

    /// The index for spec `idx`.
    pub fn get(&self, idx: usize) -> &TupleIndex<'a> {
        &self.indexes[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Program;
    use hp_structures::generators::directed_path;
    use hp_structures::Vocabulary;

    #[test]
    fn edb_index_probes_by_position() {
        let p = Program::parse(
            "T(x,y) :- E(x,y).\nT(x,y) :- E(x,z), T(z,y).",
            &Vocabulary::digraph(),
        )
        .unwrap();
        let plan = ProgramPlan::new(&p);
        let a = directed_path(4);
        let pool = IndexPool::new(&plan, &a);
        // The TC delta order probes E on its second position; edges into
        // element 2 = {(1,2)}.
        let spec = plan
            .index_specs
            .iter()
            .position(|s| matches!(s.pred, PredRef::Edb(_)) && s.key_positions == vec![1])
            .expect("E indexed on position 1");
        let hits: Vec<&[Elem]> = pool.get(spec).probe(&[Elem(2)]).collect();
        assert_eq!(hits, [&[Elem(1), Elem(2)][..]]);
        assert!(pool.get(spec).probe(&[Elem(0)]).next().is_none());
    }

    #[test]
    fn idb_indexes_absorb_deltas_incrementally() {
        let p = Program::parse(
            "T(x,y) :- E(x,y).\nT(x,y) :- T(x,z), T(z,y).",
            &Vocabulary::digraph(),
        )
        .unwrap();
        let plan = ProgramPlan::new(&p);
        let a = directed_path(3);
        let mut pool = IndexPool::new(&plan, &a);
        let spec = plan
            .index_specs
            .iter()
            .position(|s| matches!(s.pred, PredRef::Idb(0)))
            .expect("T is indexed (nonlinear rule)");
        assert!(pool.get(spec).probe(&[Elem(1)]).next().is_none());
        let mut delta: Vec<IdbRelation> = vec![Relation::new(2)];
        delta[0].insert(&[Elem(0), Elem(1)]);
        pool.absorb(&plan, &delta);
        delta[0].clear();
        delta[0].insert(&[Elem(2), Elem(1)]);
        pool.absorb(&plan, &delta);
        let key = plan.index_specs[spec].key_positions.clone();
        let probe_key = if key == vec![0] { Elem(0) } else { Elem(1) };
        assert!(pool.get(spec).probe(&[probe_key]).next().is_some());
    }
}
