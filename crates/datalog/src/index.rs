//! Per-predicate probe indexes keyed on bound argument positions.
//!
//! The [`ProgramPlan`](crate::plan::ProgramPlan) knows, statically, every
//! `(predicate, bound positions)` combination the join orders probe. An
//! [`IndexPool`] materializes one [`TupleIndex`] per such spec. With the
//! column-plane [`TupleStore`](hp_structures::TupleStore) there are three
//! shapes, picked per spec:
//!
//! - **Natural** (EDB, key positions are the prefix `0..k`): no index is
//!   built at all. The relation's sealed store is already sorted
//!   lexicographically, so a probe is
//!   [`TupleStore::prefix_range`](hp_structures::TupleStore::prefix_range) —
//!   a chunked galloping search over the leading column planes. Setup cost
//!   is zero, which matters because the pool is rebuilt per evaluation.
//! - **Permuted** (EDB, any other key positions): a sorted copy of the
//!   relation with the key columns permuted to the front (remaining
//!   columns keep their relative order, so rows sharing a key enumerate in
//!   the same order the row-id hash index used to yield). One sort at
//!   setup replaces per-row hash inserts; probes are again `prefix_range`.
//! - **Idb**: a hash map from key to **row ids** (`u32`) into a flat
//!   append-only arena the index owns — stable across rounds because
//!   absorbed rows are never reordered, unlike the accumulated relations
//!   whose sorted runs shift on every merge. IDB indexes grow
//!   **incrementally**: each delta round folds exactly the newly derived
//!   tuples in, so maintaining them costs `O(Σ|Δ|)` over the whole
//!   fixpoint instead of `O(rounds × |IDB|)` rebuilds.
//!
//! Row ids are `u32`; an IDB arena that outgrows them reports a typed
//! [`StructureError::CapacityExceeded`] instead of silently wrapping (the
//! 10⁸-row audit: `2^32` rows of a binary IDB would already be a 32 GiB
//! arena, but the failure must be loud, not a corrupted join).

use std::collections::HashMap;
use std::ops::Range;

use hp_structures::{Elem, Relation, Row, RowRef, Structure, StructureError, TupleStore};

use crate::ast::PredRef;
use crate::eval::IdbRelation;
use crate::plan::ProgramPlan;

/// How a [`TupleIndex`] resolves probes.
#[derive(Clone, Debug)]
enum Arena<'a> {
    /// EDB indexed on a positional prefix: probe the relation's own sealed
    /// store, nothing materialized.
    Natural(&'a Relation),
    /// EDB indexed on non-prefix positions: a sorted permuted copy
    /// (key columns moved to the front, remaining columns ascending).
    Permuted {
        /// `pos_of[i]` = permuted position of original column `i`.
        pos_of: Vec<usize>,
        store: TupleStore,
    },
    /// IDB: rows are appended to `data` (one `arity`-stride row per
    /// absorbed tuple, in absorption order); `map` sends each key to the
    /// row ids carrying it.
    Idb {
        arity: usize,
        data: Vec<Elem>,
        map: HashMap<Vec<Elem>, Vec<u32>>,
    },
}

/// One candidate row handed out by a probe, in the atom's original column
/// order regardless of how the backing index stores it.
#[derive(Clone, Copy)]
pub(crate) enum ResolvedRow<'a> {
    /// A row of a sealed store already in original column order.
    Direct(RowRef<'a>),
    /// A permuted-index row read through the index's position map.
    Permuted {
        row: RowRef<'a>,
        pos_of: &'a [usize],
    },
    /// A row of an IDB index's flat arena.
    Slice(&'a [Elem]),
}

impl Row for ResolvedRow<'_> {
    #[inline]
    fn width(&self) -> usize {
        match self {
            ResolvedRow::Direct(r) => r.len(),
            ResolvedRow::Permuted { pos_of, .. } => pos_of.len(),
            ResolvedRow::Slice(s) => s.len(),
        }
    }

    #[inline]
    fn at(&self, i: usize) -> Elem {
        match self {
            ResolvedRow::Direct(r) => r.get(i),
            ResolvedRow::Permuted { row, pos_of } => row.get(pos_of[i]),
            ResolvedRow::Slice(s) => s[i],
        }
    }
}

/// Iterator of one probe's candidate rows.
pub(crate) enum ProbeIter<'a> {
    Rows {
        store: &'a TupleStore,
        range: Range<usize>,
    },
    Permuted {
        store: &'a TupleStore,
        pos_of: &'a [usize],
        range: Range<usize>,
    },
    Ids {
        arity: usize,
        data: &'a [Elem],
        ids: std::slice::Iter<'a, u32>,
    },
}

impl<'a> Iterator for ProbeIter<'a> {
    type Item = ResolvedRow<'a>;

    #[inline]
    fn next(&mut self) -> Option<ResolvedRow<'a>> {
        match self {
            ProbeIter::Rows { store, range } => {
                range.next().map(|r| ResolvedRow::Direct(store.row(r)))
            }
            ProbeIter::Permuted {
                store,
                pos_of,
                range,
            } => range.next().map(|r| ResolvedRow::Permuted {
                row: store.row(r),
                pos_of,
            }),
            ProbeIter::Ids { arity, data, ids } => ids.next().map(|&id| {
                let i = id as usize;
                ResolvedRow::Slice(&data[i * *arity..(i + 1) * *arity])
            }),
        }
    }
}

/// A probe index over one relation for one key-position spec.
#[derive(Clone, Debug)]
pub(crate) struct TupleIndex<'a> {
    key_positions: Vec<usize>,
    arena: Arena<'a>,
}

impl<'a> TupleIndex<'a> {
    /// Append `t` to the owned IDB arena and record its fresh row id,
    /// refusing (typed, not wrapping) once ids no longer fit in `u32`.
    fn absorb_row(&mut self, t: RowRef<'_>) -> Result<(), StructureError> {
        let Arena::Idb { arity, data, map } = &mut self.arena else {
            unreachable!("absorb_row on an EDB index");
        };
        debug_assert_eq!(t.len(), *arity);
        let rows = data.len().checked_div(*arity).unwrap_or(0);
        let row_id = u32::try_from(rows).map_err(|_| StructureError::CapacityExceeded {
            what: "IDB index row id",
            requested: rows + 1,
            limit: u32::MAX as usize,
        })?;
        t.append_to(data);
        let key: Vec<Elem> = self.key_positions.iter().map(|&p| t.get(p)).collect();
        map.entry(key).or_default().push(row_id);
        Ok(())
    }

    /// All tuples whose projection to the key positions equals `key`, in
    /// original column order. EDB probes enumerate ascending store rows,
    /// IDB probes absorption order — both match the row-id orders the
    /// hash-only pool produced, and every consumer seals its output anyway.
    pub fn probe<'s>(&'s self, key: &[Elem]) -> ProbeIter<'s> {
        match &self.arena {
            Arena::Natural(rel) => ProbeIter::Rows {
                store: rel.store(),
                range: rel.store().prefix_range(key),
            },
            Arena::Permuted { pos_of, store, .. } => ProbeIter::Permuted {
                store,
                pos_of,
                range: store.prefix_range(key),
            },
            Arena::Idb { arity, data, map } => ProbeIter::Ids {
                arity: *arity,
                data,
                ids: map.get(key).map(Vec::as_slice).unwrap_or(&[]).iter(),
            },
        }
    }
}

/// True when `key_positions` is exactly the positional prefix `0..k`, i.e.
/// the relation's own lexicographic order already serves the probe.
fn is_prefix(key_positions: &[usize]) -> bool {
    key_positions.iter().copied().eq(0..key_positions.len())
}

/// All indexes one evaluation needs, aligned with
/// [`ProgramPlan::index_specs`]. Borrows the input structure for the
/// lifetime of the evaluation so EDB indexes can point into its planes.
pub(crate) struct IndexPool<'a> {
    indexes: Vec<TupleIndex<'a>>,
}

impl<'a> IndexPool<'a> {
    /// Build the pool: prefix-keyed EDB specs borrow the relation as-is,
    /// non-prefix EDB specs sort one permuted copy, IDB indexes start
    /// empty (mirroring the empty stage Φ⁰).
    pub fn new(plan: &ProgramPlan, a: &'a Structure) -> IndexPool<'a> {
        let indexes: Vec<TupleIndex<'a>> = plan
            .index_specs
            .iter()
            .map(|s| {
                let arena = match s.pred {
                    PredRef::Edb(sym) => {
                        let rel = a.relation(sym);
                        if is_prefix(&s.key_positions) {
                            Arena::Natural(rel)
                        } else {
                            let arity = rel.arity();
                            let mut perm = s.key_positions.clone();
                            for i in 0..arity {
                                if !perm.contains(&i) {
                                    perm.push(i);
                                }
                            }
                            let mut pos_of = vec![0usize; arity];
                            for (k, &i) in perm.iter().enumerate() {
                                pos_of[i] = k;
                            }
                            let mut store = TupleStore::with_capacity(arity, rel.len());
                            for t in rel.iter() {
                                store.push_with(|buf| buf.extend(perm.iter().map(|&i| t.get(i))));
                            }
                            store.seal();
                            Arena::Permuted { pos_of, store }
                        }
                    }
                    PredRef::Idb(i) => Arena::Idb {
                        arity: plan.idb_arities[i],
                        data: Vec::new(),
                        map: HashMap::new(),
                    },
                };
                TupleIndex {
                    key_positions: s.key_positions.clone(),
                    arena,
                }
            })
            .collect();
        IndexPool { indexes }
    }

    /// Fold one round's newly derived tuples into the IDB indexes, which
    /// then mirror `idb ∪ delta`. Call exactly once per delta round, right
    /// when the delta is merged into the accumulated relations.
    pub fn absorb(
        &mut self,
        plan: &ProgramPlan,
        delta: &[IdbRelation],
    ) -> Result<(), StructureError> {
        for (idx, spec) in plan.index_specs.iter().enumerate() {
            if let PredRef::Idb(i) = spec.pred {
                for t in delta[i].iter() {
                    self.indexes[idx].absorb_row(t)?;
                }
            }
        }
        Ok(())
    }

    /// The index for spec `idx`.
    pub fn get(&self, idx: usize) -> &TupleIndex<'a> {
        &self.indexes[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Program;
    use hp_structures::generators::directed_path;
    use hp_structures::Vocabulary;

    fn collect(iter: ProbeIter<'_>) -> Vec<Vec<Elem>> {
        iter.map(|t| t.to_elems()).collect()
    }

    #[test]
    fn edb_index_probes_by_position() {
        let p = Program::parse(
            "T(x,y) :- E(x,y).\nT(x,y) :- E(x,z), T(z,y).",
            &Vocabulary::digraph(),
        )
        .unwrap();
        let plan = ProgramPlan::new(&p);
        let a = directed_path(4);
        let pool = IndexPool::new(&plan, &a);
        // The TC delta order probes E on its second position; edges into
        // element 2 = {(1,2)}.
        let spec = plan
            .index_specs
            .iter()
            .position(|s| matches!(s.pred, PredRef::Edb(_)) && s.key_positions == vec![1])
            .expect("E indexed on position 1");
        let hits = collect(pool.get(spec).probe(&[Elem(2)]));
        assert_eq!(hits, vec![vec![Elem(1), Elem(2)]]);
        assert!(pool.get(spec).probe(&[Elem(0)]).next().is_none());
    }

    #[test]
    fn prefix_specs_probe_the_relation_directly() {
        let p = Program::parse(
            "R(y) :- S(x), E(x,y).\nR(y) :- R(x), E(x,y).",
            &Vocabulary::from_pairs([("E", 2), ("S", 1)]),
        )
        .unwrap();
        let plan = ProgramPlan::new(&p);
        let mut a = hp_structures::Structure::new(p.edb().clone(), 4);
        for i in 0..3u32 {
            a.add_tuple_ids(0, &[i, i + 1]).unwrap();
        }
        a.add_tuple_ids(1, &[0]).unwrap();
        let pool = IndexPool::new(&plan, &a);
        let spec = plan
            .index_specs
            .iter()
            .position(|s| matches!(s.pred, PredRef::Edb(_)) && s.key_positions == vec![0])
            .expect("E indexed on position 0 (the linear chain probe)");
        assert!(matches!(pool.get(spec).arena, Arena::Natural(_)));
        let hits = collect(pool.get(spec).probe(&[Elem(2)]));
        assert_eq!(hits, vec![vec![Elem(2), Elem(3)]]);
    }

    #[test]
    fn permuted_rows_come_back_in_original_column_order() {
        let p = Program::parse(
            "T(x,y) :- E(x,y).\nT(x,y) :- E(x,z), T(z,y).",
            &Vocabulary::digraph(),
        )
        .unwrap();
        let plan = ProgramPlan::new(&p);
        let mut a = directed_path(4);
        a.add_tuple_ids(0, &[0, 2]).unwrap();
        a.add_tuple_ids(0, &[3, 2]).unwrap();
        let pool = IndexPool::new(&plan, &a);
        let spec = plan
            .index_specs
            .iter()
            .position(|s| matches!(s.pred, PredRef::Edb(_)) && s.key_positions == vec![1])
            .expect("E indexed on position 1");
        // Edges into 2: (0,2), (1,2), (3,2) — ascending by the remaining
        // (source) column, exactly the relation's own row order restricted
        // to the key, with every row decoded back to (src, dst).
        let hits = collect(pool.get(spec).probe(&[Elem(2)]));
        assert_eq!(
            hits,
            vec![
                vec![Elem(0), Elem(2)],
                vec![Elem(1), Elem(2)],
                vec![Elem(3), Elem(2)],
            ]
        );
    }

    #[test]
    fn idb_indexes_absorb_deltas_incrementally() {
        let p = Program::parse(
            "T(x,y) :- E(x,y).\nT(x,y) :- T(x,z), T(z,y).",
            &Vocabulary::digraph(),
        )
        .unwrap();
        let plan = ProgramPlan::new(&p);
        let a = directed_path(3);
        let mut pool = IndexPool::new(&plan, &a);
        let spec = plan
            .index_specs
            .iter()
            .position(|s| matches!(s.pred, PredRef::Idb(0)))
            .expect("T is indexed (nonlinear rule)");
        assert!(pool.get(spec).probe(&[Elem(1)]).next().is_none());
        let mut delta: Vec<IdbRelation> = vec![Relation::new(2)];
        delta[0].insert(&[Elem(0), Elem(1)]);
        pool.absorb(&plan, &delta).unwrap();
        delta[0].clear();
        delta[0].insert(&[Elem(2), Elem(1)]);
        pool.absorb(&plan, &delta).unwrap();
        let key = plan.index_specs[spec].key_positions.clone();
        let probe_key = if key == vec![0] { Elem(0) } else { Elem(1) };
        assert!(pool.get(spec).probe(&[probe_key]).next().is_some());
    }

    #[test]
    fn capacity_error_formats_the_offending_count() {
        let e = StructureError::CapacityExceeded {
            what: "IDB index row id",
            requested: 1 << 33,
            limit: u32::MAX as usize,
        };
        let msg = e.to_string();
        assert!(msg.contains("capacity exceeded"), "{msg}");
        assert!(msg.contains("IDB index row id"), "{msg}");
    }
}
