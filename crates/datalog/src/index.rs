//! Per-predicate hash indexes keyed on bound argument positions.
//!
//! The [`ProgramPlan`](crate::plan::ProgramPlan) knows, statically, every
//! `(predicate, bound positions)` combination the join orders probe. An
//! [`IndexPool`] materializes one [`TupleIndex`] per such spec: EDB indexes
//! are built once per evaluation (the input structure never changes), IDB
//! indexes grow **incrementally** — each delta round folds exactly the
//! newly derived tuples in, so maintaining them costs `O(Σ|Δ|)` over the
//! whole fixpoint instead of `O(rounds × |IDB|)` rebuilds.

use std::collections::HashMap;

use hp_structures::{Elem, Structure};

use crate::ast::PredRef;
use crate::eval::IdbRelation;
use crate::plan::ProgramPlan;

/// A hash index over one relation: key = the tuple projected to
/// `key_positions`, value = every tuple with that key.
#[derive(Clone, Debug)]
pub(crate) struct TupleIndex {
    key_positions: Vec<usize>,
    map: HashMap<Vec<Elem>, Vec<Vec<Elem>>>,
}

impl TupleIndex {
    fn new(key_positions: Vec<usize>) -> TupleIndex {
        TupleIndex {
            key_positions,
            map: HashMap::new(),
        }
    }

    fn insert(&mut self, t: &[Elem]) {
        let key: Vec<Elem> = self.key_positions.iter().map(|&p| t[p]).collect();
        self.map.entry(key).or_default().push(t.to_vec());
    }

    /// All tuples whose projection to the key positions equals `key`.
    pub fn probe(&self, key: &[Elem]) -> &[Vec<Elem>] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// All indexes one evaluation needs, aligned with
/// [`ProgramPlan::index_specs`].
pub(crate) struct IndexPool {
    indexes: Vec<TupleIndex>,
}

impl IndexPool {
    /// Build the pool: EDB indexes are filled from the input structure,
    /// IDB indexes start empty (mirroring the empty stage Φ⁰).
    pub fn new(plan: &ProgramPlan, a: &Structure) -> IndexPool {
        let mut indexes: Vec<TupleIndex> = plan
            .index_specs
            .iter()
            .map(|s| TupleIndex::new(s.key_positions.clone()))
            .collect();
        for (idx, spec) in plan.index_specs.iter().enumerate() {
            if let PredRef::Edb(sym) = spec.pred {
                for t in a.relation(sym).iter() {
                    indexes[idx].insert(t);
                }
            }
        }
        IndexPool { indexes }
    }

    /// Fold one round's newly derived tuples into the IDB indexes, which
    /// then mirror `idb ∪ delta`. Call exactly once per delta round, right
    /// when the delta is merged into the accumulated relations.
    pub fn absorb(&mut self, plan: &ProgramPlan, delta: &[IdbRelation]) {
        for (idx, spec) in plan.index_specs.iter().enumerate() {
            if let PredRef::Idb(i) = spec.pred {
                for t in &delta[i] {
                    self.indexes[idx].insert(t);
                }
            }
        }
    }

    /// The index for spec `idx`.
    pub fn get(&self, idx: usize) -> &TupleIndex {
        &self.indexes[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Program;
    use hp_structures::generators::directed_path;
    use hp_structures::Vocabulary;
    use std::collections::BTreeSet;

    #[test]
    fn edb_index_probes_by_position() {
        let p = Program::parse(
            "T(x,y) :- E(x,y).\nT(x,y) :- E(x,z), T(z,y).",
            &Vocabulary::digraph(),
        )
        .unwrap();
        let plan = ProgramPlan::new(&p);
        let a = directed_path(4);
        let pool = IndexPool::new(&plan, &a);
        // The TC delta order probes E on its second position; edges into
        // element 2 = {(1,2)}.
        let spec = plan
            .index_specs
            .iter()
            .position(|s| matches!(s.pred, PredRef::Edb(_)) && s.key_positions == vec![1])
            .expect("E indexed on position 1");
        let hits = pool.get(spec).probe(&[Elem(2)]);
        assert_eq!(hits, [vec![Elem(1), Elem(2)]]);
        assert!(pool.get(spec).probe(&[Elem(0)]).is_empty());
    }

    #[test]
    fn idb_indexes_absorb_deltas_incrementally() {
        let p = Program::parse(
            "T(x,y) :- E(x,y).\nT(x,y) :- T(x,z), T(z,y).",
            &Vocabulary::digraph(),
        )
        .unwrap();
        let plan = ProgramPlan::new(&p);
        let a = directed_path(3);
        let mut pool = IndexPool::new(&plan, &a);
        let spec = plan
            .index_specs
            .iter()
            .position(|s| matches!(s.pred, PredRef::Idb(0)))
            .expect("T is indexed (nonlinear rule)");
        assert!(pool.get(spec).probe(&[Elem(1)]).is_empty());
        let mut delta: Vec<IdbRelation> = vec![BTreeSet::new()];
        delta[0].insert(vec![Elem(0), Elem(1)]);
        pool.absorb(&plan, &delta);
        delta[0].clear();
        delta[0].insert(vec![Elem(2), Elem(1)]);
        pool.absorb(&plan, &delta);
        let key = plan.index_specs[spec].key_positions.clone();
        let probe_key = if key == vec![0] { Elem(0) } else { Elem(1) };
        assert!(!pool.get(spec).probe(&[probe_key]).is_empty());
    }
}
