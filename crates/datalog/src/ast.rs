//! Datalog programs: rules, predicates, and variable accounting.

use std::collections::BTreeSet;

use hp_structures::{SymbolId, Vocabulary};

use crate::error::{DatalogError, DatalogErrorKind, DatalogSpan};

/// Reference to a predicate: either an EDB symbol of the input vocabulary
/// or an IDB predicate of the program.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PredRef {
    /// Extensional predicate (input relation).
    Edb(SymbolId),
    /// Intensional predicate (index into [`Program::idbs`]).
    Idb(usize),
}

/// An atom in a rule: predicate applied to variables (no constants — the
/// paper's Datalog is constant-free; constants are simulated by unary EDB
/// marks when needed). Body atoms may be negated (`not R(x,y)`); heads
/// never are.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DatalogAtom {
    /// The predicate.
    pub pred: PredRef,
    /// Argument variables.
    pub args: Vec<u32>,
    /// True for a negated body literal `not R(..)`.
    pub negated: bool,
}

impl DatalogAtom {
    /// A positive atom.
    pub fn positive(pred: PredRef, args: Vec<u32>) -> DatalogAtom {
        DatalogAtom {
            pred,
            args,
            negated: false,
        }
    }
}

/// A rule `H ← B₁, …, B_m`. The head must be an IDB atom.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Rule {
    /// Head atom (IDB).
    pub head: DatalogAtom,
    /// Body atoms (EDB or IDB). An empty body makes the head
    /// unconditionally true for all variable assignments.
    pub body: Vec<DatalogAtom>,
}

impl Rule {
    /// The set of distinct variables in the rule.
    pub fn variables(&self) -> BTreeSet<u32> {
        let mut out: BTreeSet<u32> = self.head.args.iter().copied().collect();
        for a in &self.body {
            out.extend(a.args.iter().copied());
        }
        out
    }

    /// The variables bound by positive body atoms — the only variables a
    /// head or a negated literal may legally use.
    pub fn positive_body_vars(&self) -> BTreeSet<u32> {
        self.body
            .iter()
            .filter(|a| !a.negated)
            .flat_map(|a| a.args.iter().copied())
            .collect()
    }

    /// True when every head variable occurs in a **positive** body atom
    /// (range restriction / safety). Zero-arity heads are always safe.
    /// For purely positive rules this is the classical §2.3 condition.
    pub fn is_safe(&self) -> bool {
        let body_vars = self.positive_body_vars();
        self.head.args.iter().all(|v| body_vars.contains(v))
    }

    /// The first variable of a negated body literal that no positive body
    /// atom binds, if any — the witness for an unsafe negation.
    pub fn unsafe_negation_var(&self) -> Option<u32> {
        let bound = self.positive_body_vars();
        self.body
            .iter()
            .filter(|a| a.negated)
            .flat_map(|a| a.args.iter())
            .find(|v| !bound.contains(v))
            .copied()
    }

    /// True when the rule body contains a negated literal.
    pub fn has_negation(&self) -> bool {
        self.body.iter().any(|a| a.negated)
    }
}

/// A positive Datalog program over an EDB vocabulary.
#[derive(Clone, Debug)]
pub struct Program {
    edb: Vocabulary,
    idbs: Vec<(String, usize)>,
    rules: Vec<Rule>,
    /// Variable names, indexed by variable id (for display).
    var_names: Vec<String>,
    /// 1-based source line of each rule, when parsed from text.
    rule_lines: Vec<Option<usize>>,
    /// Index of the designated goal IDB, when one exists: set by a
    /// `# goal: Name` pragma when parsed from text, otherwise the IDB
    /// named [`DEFAULT_GOAL_NAME`] by convention.
    goal: Option<usize>,
    /// Stratum of each IDB (aligned with `idbs`). A purely positive
    /// program has every IDB in stratum 0; each negated dependency bumps
    /// the dependent's stratum by one. Computed (and stratifiability
    /// enforced) at construction.
    strata: Vec<usize>,
}

/// The IDB name treated as the goal when no `# goal:` pragma designates
/// one explicitly.
pub const DEFAULT_GOAL_NAME: &str = "Goal";

impl Program {
    /// Build a program from parts. Validates arities and head predicates.
    pub fn new(
        edb: Vocabulary,
        idbs: Vec<(String, usize)>,
        rules: Vec<Rule>,
        var_names: Vec<String>,
    ) -> Result<Program, DatalogError> {
        let lines = vec![None; rules.len()];
        Program::new_with_lines(edb, idbs, rules, var_names, lines)
    }

    /// Like [`Program::new`], but records the 1-based source line of each
    /// rule so validation errors (and later static-analysis diagnostics)
    /// can point back into the source text. `rule_lines` must be aligned
    /// with `rules`.
    pub fn new_with_lines(
        edb: Vocabulary,
        idbs: Vec<(String, usize)>,
        rules: Vec<Rule>,
        var_names: Vec<String>,
        rule_lines: Vec<Option<usize>>,
    ) -> Result<Program, DatalogError> {
        assert_eq!(rules.len(), rule_lines.len(), "rule_lines misaligned");
        let goal = idbs.iter().position(|(n, _)| n == DEFAULT_GOAL_NAME);
        let mut p = Program {
            edb,
            idbs,
            rules,
            var_names,
            rule_lines,
            goal,
            strata: Vec::new(),
        };
        for (ri, r) in p.rules.iter().enumerate() {
            let span = DatalogSpan {
                line: p.rule_lines[ri],
                rule: Some(ri),
            };
            if !matches!(r.head.pred, PredRef::Idb(_)) {
                return Err(DatalogError::new(DatalogErrorKind::HeadNotIdb, span));
            }
            if r.head.negated {
                return Err(DatalogError::new(DatalogErrorKind::NegatedHead, span));
            }
            if !r.is_safe() {
                let body_vars = r.positive_body_vars();
                let unbound = r
                    .head
                    .args
                    .iter()
                    .find(|v| !body_vars.contains(v))
                    .copied()
                    .unwrap_or(0);
                return Err(DatalogError::new(
                    DatalogErrorKind::UnsafeRule {
                        var: p.var_name(unbound),
                    },
                    span,
                ));
            }
            if let Some(v) = r.unsafe_negation_var() {
                return Err(DatalogError::new(
                    DatalogErrorKind::UnsafeNegation { var: p.var_name(v) },
                    span,
                ));
            }
            for a in std::iter::once(&r.head).chain(&r.body) {
                let want = p.arity(a.pred);
                if a.args.len() != want {
                    return Err(DatalogError::new(
                        DatalogErrorKind::ArityMismatch {
                            pred: p.pred_name(a.pred),
                            expected: want,
                            got: a.args.len(),
                        },
                        span,
                    ));
                }
            }
        }
        p.strata = p.compute_strata()?;
        Ok(p)
    }

    /// Stratify the program: assign each IDB its negation depth, the
    /// least `s` such that every positive dependency sits in a stratum
    /// `≤ s` and every negated dependency in a stratum `< s`. Errors with
    /// [`DatalogErrorKind::UnstratifiableNegation`] (spanned at the rule
    /// holding the offending negated literal) when a dependency cycle
    /// passes through a negative edge.
    fn compute_strata(&self) -> Result<Vec<usize>, DatalogError> {
        let n = self.idbs.len();
        let mut strata = vec![0usize; n];
        if !self.rules.iter().any(Rule::has_negation) {
            return Ok(strata); // positive program: single stratum 0
        }
        // Fixpoint of stratum(h) = max over body IDB atoms q of
        // stratum(q) + [q negated]. Diverges (stratum ≥ n) exactly when a
        // cycle passes through a negative edge.
        let mut changed = true;
        while changed {
            changed = false;
            for r in &self.rules {
                let PredRef::Idb(h) = r.head.pred else {
                    continue;
                };
                for a in &r.body {
                    let PredRef::Idb(q) = a.pred else { continue };
                    let need = strata[q] + usize::from(a.negated);
                    if strata[h] < need {
                        strata[h] = need;
                        changed = true;
                    }
                }
            }
            if strata.iter().any(|&s| s >= n) {
                // Point the error at a rule whose negated literal closes a
                // cycle: head h with negated body IDB q where q transitively
                // depends on h.
                for (ri, r) in self.rules.iter().enumerate() {
                    let PredRef::Idb(h) = r.head.pred else {
                        continue;
                    };
                    for a in r.body.iter().filter(|a| a.negated) {
                        let PredRef::Idb(q) = a.pred else { continue };
                        if self.idb_depends_on(q, h) {
                            return Err(DatalogError::new(
                                DatalogErrorKind::UnstratifiableNegation {
                                    pred: self.idbs[h].0.clone(),
                                    via: self.idbs[q].0.clone(),
                                },
                                DatalogSpan {
                                    line: self.rule_lines[ri],
                                    rule: Some(ri),
                                },
                            ));
                        }
                    }
                }
                unreachable!("divergent strata without a negative cycle");
            }
        }
        Ok(strata)
    }

    /// True when IDB `from` depends on IDB `to` through zero or more
    /// dependency edges (either polarity).
    fn idb_depends_on(&self, from: usize, to: usize) -> bool {
        let mut seen = vec![false; self.idbs.len()];
        let mut stack = vec![from];
        seen[from] = true;
        while let Some(p) = stack.pop() {
            if p == to {
                return true;
            }
            for r in self.rules.iter().filter(|r| r.head.pred == PredRef::Idb(p)) {
                for a in &r.body {
                    if let PredRef::Idb(q) = a.pred {
                        if !seen[q] {
                            seen[q] = true;
                            stack.push(q);
                        }
                    }
                }
            }
        }
        false
    }

    /// Parse a program text (grammar documented in the crate-level docs;
    /// rules like `T(x,y) :- E(x,z), T(z,y).`, `#` comments). Errors carry
    /// the 1-based source line they occurred on.
    pub fn parse(text: &str, edb: &Vocabulary) -> Result<Program, DatalogError> {
        crate::parser::parse_program(text, edb)
    }

    /// The EDB vocabulary.
    pub fn edb(&self) -> &Vocabulary {
        &self.edb
    }

    /// IDB predicates as `(name, arity)` pairs.
    pub fn idbs(&self) -> &[(String, usize)] {
        &self.idbs
    }

    /// The rules.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Look up an IDB predicate index by name.
    pub fn idb_index(&self, name: &str) -> Option<usize> {
        self.idbs.iter().position(|(n, _)| n == name)
    }

    /// Index of the designated goal IDB: the predicate named by a
    /// `# goal:` pragma when the program was parsed from text, otherwise
    /// the IDB named `Goal` when one exists.
    pub fn goal_index(&self) -> Option<usize> {
        self.goal
    }

    /// Name of the designated goal IDB, when one exists.
    pub fn goal_name(&self) -> Option<&str> {
        self.goal.map(|g| self.idbs[g].0.as_str())
    }

    /// Designate the IDB named `name` as the program's goal (the API
    /// counterpart of the `# goal:` pragma). Errors when no IDB of that
    /// name exists.
    pub fn with_goal(mut self, name: &str) -> Result<Program, DatalogError> {
        match self.idb_index(name) {
            Some(i) => {
                self.goal = Some(i);
                Ok(self)
            }
            None => Err(DatalogError::new(
                DatalogErrorKind::UnknownGoal {
                    name: name.to_string(),
                },
                DatalogSpan::default(),
            )),
        }
    }

    /// Arity of any predicate reference.
    pub fn arity(&self, p: PredRef) -> usize {
        match p {
            PredRef::Edb(s) => self.edb.arity(s),
            PredRef::Idb(i) => self.idbs[i].1,
        }
    }

    /// Display name of any predicate reference.
    pub fn pred_name(&self, p: PredRef) -> String {
        match p {
            PredRef::Edb(s) => self.edb.symbol(s).name.clone(),
            PredRef::Idb(i) => self.idbs[i].0.clone(),
        }
    }

    /// 1-based source line of rule `ri`, when the program was parsed from
    /// text (`None` for API-built programs).
    pub fn rule_line(&self, ri: usize) -> Option<usize> {
        self.rule_lines.get(ri).copied().flatten()
    }

    /// The **total number of distinct variables** in the program — the `k`
    /// of k-Datalog (§2.3: the transitive-closure program is a 3-Datalog
    /// program because it uses `x, y, z` in total).
    pub fn total_variable_count(&self) -> usize {
        let mut vars: BTreeSet<u32> = BTreeSet::new();
        for r in &self.rules {
            vars.extend(r.variables());
        }
        vars.len()
    }

    /// Variable name for display.
    pub fn var_name(&self, v: u32) -> String {
        self.var_names
            .get(v as usize)
            .cloned()
            .unwrap_or_else(|| format!("v{v}"))
    }

    /// Rules whose head is the given IDB.
    pub fn rules_for(&self, idb: usize) -> impl Iterator<Item = &Rule> {
        self.rules
            .iter()
            .filter(move |r| r.head.pred == PredRef::Idb(idb))
    }

    /// True when any rule body contains a negated literal. Positive
    /// programs take every code path they took before negation existed.
    pub fn has_negation(&self) -> bool {
        self.rules.iter().any(Rule::has_negation)
    }

    /// Stratum of IDB `i` (its negation depth). All zero for positive
    /// programs.
    pub fn stratum_of(&self, i: usize) -> usize {
        self.strata[i]
    }

    /// Stratum of each IDB, aligned with [`Program::idbs`].
    pub fn strata(&self) -> &[usize] {
        &self.strata
    }

    /// Number of strata (`1 + max stratum`; `1` for positive programs,
    /// including programs with no IDBs at all).
    pub fn num_strata(&self) -> usize {
        self.strata.iter().copied().max().unwrap_or(0) + 1
    }

    /// Stratum a rule belongs to: the stratum of its head predicate.
    pub fn rule_stratum(&self, ri: usize) -> usize {
        match self.rules[ri].head.pred {
            PredRef::Idb(i) => self.strata[i],
            PredRef::Edb(_) => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tc() -> Program {
        Program::parse(
            "T(x,y) :- E(x,y).\nT(x,y) :- E(x,z), T(z,y).",
            &Vocabulary::digraph(),
        )
        .unwrap()
    }

    #[test]
    fn tc_program_shape() {
        let p = tc();
        assert_eq!(p.idbs(), &[("T".to_string(), 2)]);
        assert_eq!(p.rules().len(), 2);
        assert_eq!(p.total_variable_count(), 3);
        assert_eq!(p.idb_index("T"), Some(0));
        assert_eq!(p.idb_index("U"), None);
    }

    #[test]
    fn safety_enforced() {
        let err = Program::parse("T(x,y) :- E(x,x).", &Vocabulary::digraph()).unwrap_err();
        assert!(
            matches!(err.kind, DatalogErrorKind::UnsafeRule { ref var } if var == "y"),
            "{err}"
        );
        assert!(err.to_string().contains("unsafe"), "{err}");
        assert_eq!(err.span.rule, Some(0));
        assert_eq!(err.span.line, Some(1));
    }

    #[test]
    fn arity_checked() {
        let err = Program::parse("T(x) :- E(x).", &Vocabulary::digraph()).unwrap_err();
        assert!(
            matches!(
                err.kind,
                DatalogErrorKind::ArityMismatch {
                    expected: 2,
                    got: 1,
                    ..
                }
            ),
            "{err}"
        );
        assert!(err.to_string().contains("arity"), "{err}");
    }

    #[test]
    fn api_built_program_has_no_lines() {
        let p = tc();
        // tc() is parsed, so its rules do carry lines.
        assert_eq!(p.rule_line(0), Some(1));
        assert_eq!(p.rule_line(1), Some(2));
        // An API-built clone via Program::new has none.
        let q = Program::new(
            p.edb().clone(),
            p.idbs().to_vec(),
            p.rules().to_vec(),
            (0..3).map(|v| p.var_name(v)).collect(),
        )
        .unwrap();
        assert_eq!(q.rule_line(0), None);
        assert_eq!(q.rule_line(7), None);
    }

    #[test]
    fn rule_variables() {
        let p = tc();
        let vars = p.rules()[1].variables();
        assert_eq!(vars.len(), 3);
    }

    #[test]
    fn zero_arity_idb_allowed() {
        let p = Program::parse("Goal() :- E(x,x).", &Vocabulary::digraph()).unwrap();
        assert_eq!(p.idbs(), &[("Goal".to_string(), 0)]);
        assert!(p.rules()[0].is_safe());
    }

    #[test]
    fn positive_programs_are_single_stratum() {
        let p = tc();
        assert!(!p.has_negation());
        assert_eq!(p.strata(), &[0]);
        assert_eq!(p.num_strata(), 1);
        assert_eq!(p.rule_stratum(0), 0);
    }

    #[test]
    fn strata_follow_negation_depth() {
        let v = Vocabulary::from_pairs([("E", 2), ("Node", 1)]);
        let p = Program::parse(
            "T(x,y) :- E(x,y).\nT(x,y) :- E(x,z), T(z,y).\n\
             NR(x,y) :- Node(x), Node(y), not T(x,y).\nGoal() :- NR(x,x).",
            &v,
        )
        .unwrap();
        assert!(p.has_negation());
        assert_eq!(p.stratum_of(p.idb_index("T").unwrap()), 0);
        assert_eq!(p.stratum_of(p.idb_index("NR").unwrap()), 1);
        // Goal depends on NR only positively: same stratum.
        assert_eq!(p.stratum_of(p.idb_index("Goal").unwrap()), 1);
        assert_eq!(p.num_strata(), 2);
    }

    #[test]
    fn negated_edb_guard_stays_in_stratum_zero() {
        let v = Vocabulary::from_pairs([("R", 2), ("S", 2)]);
        let p = Program::parse("D(x,y) :- R(x,y), not S(x,y).", &v).unwrap();
        assert!(p.has_negation());
        assert_eq!(p.strata(), &[0]);
        assert_eq!(p.num_strata(), 1);
    }

    #[test]
    fn unsafe_negation_rejected_with_witness() {
        // y occurs only under the negation: not range-restricted.
        let e = Program::parse("A(x) :- E(x,x), not E(x,y).", &Vocabulary::digraph()).unwrap_err();
        assert!(
            matches!(e.kind, DatalogErrorKind::UnsafeNegation { ref var } if var == "y"),
            "{e}"
        );
        assert_eq!(e.span.rule, Some(0));
        // A head variable bound only by a negated atom is plain-unsafe.
        let e = Program::parse("A(y) :- E(x,x), not E(x,y).", &Vocabulary::digraph()).unwrap_err();
        assert!(matches!(e.kind, DatalogErrorKind::UnsafeRule { .. }), "{e}");
    }

    #[test]
    fn cycle_through_negation_is_rejected_with_span() {
        // The naive win/lose game: Win depends negatively on itself.
        let v = Vocabulary::from_pairs([("Move", 2)]);
        let e = Program::parse("Win(x) :- Move(x,y), not Win(y).", &v).unwrap_err();
        assert!(
            matches!(
                e.kind,
                DatalogErrorKind::UnstratifiableNegation { ref pred, ref via }
                    if pred == "Win" && via == "Win"
            ),
            "{e}"
        );
        assert_eq!(e.span.rule, Some(0));
        assert_eq!(e.span.line, Some(1));
        assert!(e.to_string().contains("not stratifiable"), "{e}");
        // A longer cycle through a positive intermediary is also caught.
        let e = Program::parse(
            "P(x) :- E(x,y), not Q(y).\nQ(x) :- E(x,y), P(y).",
            &Vocabulary::digraph(),
        )
        .unwrap_err();
        assert!(
            matches!(e.kind, DatalogErrorKind::UnstratifiableNegation { .. }),
            "{e}"
        );
    }

    #[test]
    fn negation_within_scc_positive_edges_ok() {
        // Negating a *lower* stratum inside a recursive definition is fine.
        let v = Vocabulary::from_pairs([("E", 2), ("M", 1)]);
        let p = Program::parse(
            "Bad(x) :- M(x).\nReach(x) :- E(x,y), not Bad(x), M(y).\n\
             Reach(x) :- E(x,y), Reach(y), not Bad(x).",
            &v,
        )
        .unwrap();
        assert_eq!(p.stratum_of(p.idb_index("Bad").unwrap()), 0);
        assert_eq!(p.stratum_of(p.idb_index("Reach").unwrap()), 1);
    }
}
