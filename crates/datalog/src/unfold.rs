//! **Theorem 7.1 made executable**: the m-th stage of a k-Datalog program is
//! definable by a finite disjunction of `CQ^k` formulas.
//!
//! The unfolding substitutes, at each step, every IDB body atom by the
//! previous stage's formula (with free variables renamed to the atom's
//! arguments and bound variables freshened). The result for each stage is
//! an existential-positive formula using only the program's variables —
//! reused, exactly as in the `CQ^k` fragment — which
//! [`hp_logic::ucq_of_existential_positive`] then flattens to a UCQ.

use hp_guard::{Budget, Budgeted, Gauge, Stop};
use hp_logic::{ucq_of_existential_positive, Formula, Ucq};
use hp_structures::Elem;

use crate::ast::{PredRef, Program};

impl Program {
    /// The existential-positive formula `Θ^m_P` defining stage `m` of IDB
    /// `P`, with free variables `0 .. arity(P)` standing for the head
    /// positions.
    ///
    /// `Θ⁰ = ⊥`; `Θ^{m+1}_P = ⋁_{rules for P} ∃(body vars) ⋀ atoms`, with
    /// IDB atoms replaced by the previous stage's formula.
    pub fn stage_formula(&self, idb: usize, m: usize) -> Formula {
        stage_formula(self, idb, m)
    }

    /// Stage `m` of IDB `P` as a UCQ (the Theorem 7.1 disjunction of
    /// `CQ^k` sentences/formulas).
    pub fn stage_ucq(&self, idb: usize, m: usize) -> Result<Ucq, String> {
        stage_ucq(self, idb, m)
    }
}

/// Free-standing form of [`Program::stage_formula`].
///
/// Computed by iterated substitution over all IDBs simultaneously, so the
/// cost is linear in `m` (per-stage formula sizes can still grow for
/// non-linear recursions, as the normal form demands).
pub fn stage_formula(p: &Program, idb: usize, m: usize) -> Formula {
    stage_formulas(p, m).swap_remove(idb)
}

/// Stage-`m` formulas of **all** IDBs at once (dynamic programming over
/// stages).
pub fn stage_formulas(p: &Program, m: usize) -> Vec<Formula> {
    let mut gauge = Budget::unlimited().gauge();
    match stage_formulas_gauged(p, m, &mut gauge) {
        Ok(fs) => fs,
        Err(_) => unreachable!("an unlimited budget cannot exhaust"),
    }
}

/// Budgeted form of [`stage_formulas`]: unfolding sizes can grow with the
/// stage for non-linear recursions, so the iterated substitution charges
/// one fuel unit per `(IDB, stage)` unfolding step and polls the wall
/// clock / interrupt token between stages. The partial carries
/// `(m', formulas)` for the last fully-unfolded stage `m' < m` — a valid
/// Theorem 7.1 unfolding in its own right, just of an earlier stage.
pub fn stage_formulas_with_budget(
    p: &Program,
    m: usize,
    budget: &Budget,
) -> Budgeted<Vec<Formula>, (usize, Vec<Formula>)> {
    let mut gauge = budget.gauge();
    stage_formulas_gauged(p, m, &mut gauge)
        .map_err(|(stage, fs, stop)| stop.with_partial((stage, fs)))
}

/// Budgeted form of [`stage_ucq`]: the unfolding is charged as in
/// [`stage_formulas_with_budget`]; the flattening to a UCQ happens only
/// once the unfolding completed. The exhaustion partial is the index of
/// the last fully-unfolded stage. The outer `Result` reports (rare)
/// flattening failures, exactly like [`stage_ucq`].
pub fn stage_ucq_with_budget(
    p: &Program,
    idb: usize,
    m: usize,
    budget: &Budget,
) -> Result<Budgeted<Ucq, usize>, String> {
    if p.has_negation() {
        return Err("stage unfoldings are defined for positive programs only".to_string());
    }
    let mut gauge = budget.gauge();
    match stage_formulas_gauged(p, m, &mut gauge) {
        Ok(mut fs) => Ok(ucq_of_existential_positive(&fs.swap_remove(idb), p.edb()).map(Ok)?),
        Err((stage, _, stop)) => Ok(Err(stop.with_partial(stage))),
    }
}

/// The gauge-threaded DP behind the budgeted and unbudgeted unfoldings.
/// On exhaustion returns the last completed stage index, its formulas,
/// and the stop provenance.
fn stage_formulas_gauged(
    p: &Program,
    m: usize,
    gauge: &mut Gauge,
) -> Result<Vec<Formula>, (usize, Vec<Formula>, Stop)> {
    // Theorem 7.1 is a statement about the positive-existential fragment;
    // a negated literal has no existential-positive unfolding. Callers
    // (the semantic pass, boundedness certification) gate on
    // `Program::has_negation` before reaching here.
    assert!(
        !p.has_negation(),
        "stage unfoldings are defined for positive programs only"
    );
    let mut prev: Vec<Formula> = (0..p.idbs().len()).map(|_| Formula::bottom()).collect();
    for done in 0..m {
        if let Err(stop) = gauge.check() {
            return Err((done, prev, stop));
        }
        let mut next = Vec::with_capacity(p.idbs().len());
        for i in 0..p.idbs().len() {
            if let Err(stop) = gauge.tick(1) {
                return Err((done, prev, stop));
            }
            next.push(stage_step(p, i, &prev));
        }
        prev = next;
    }
    Ok(prev)
}

/// One unfolding step for one IDB given the previous stage's formulas.
fn stage_step(p: &Program, idb: usize, prev: &[Formula]) -> Formula {
    let arity = p.idbs()[idb].1;
    let mut disjuncts: Vec<Formula> = Vec::new();
    for rule in p.rules_for(idb) {
        // Variable layout for this rule instance: head variables must become
        // the canonical free variables 0..arity; all other rule variables
        // are fresh existentials placed after them.
        let rule_vars: Vec<u32> = rule.variables().into_iter().collect();
        let mut target: Vec<u32> = vec![u32::MAX; rule_vars.len()];
        let pos = |v: u32, rule_vars: &[u32]| rule_vars.binary_search(&v).expect("rule var");
        // Head args map to 0..arity. Repeated head variables map to the
        // first position they occupy; equalities pin the rest.
        let mut eqs: Vec<(u32, u32)> = Vec::new();
        for (i, &hv) in rule.head.args.iter().enumerate() {
            let pidx = pos(hv, &rule_vars);
            if target[pidx] == u32::MAX {
                target[pidx] = i as u32;
            } else {
                eqs.push((target[pidx], i as u32));
            }
        }
        let mut next_fresh = arity as u32;
        let mut exist_vars: Vec<u32> = Vec::new();
        for t in target.iter_mut() {
            if *t == u32::MAX {
                *t = next_fresh;
                exist_vars.push(next_fresh);
                next_fresh += 1;
            }
        }
        let var_of = |v: u32| target[pos(v, &rule_vars)];
        let mut conj: Vec<Formula> = eqs.iter().map(|&(a, b)| Formula::Eq(a, b)).collect();
        for atom in &rule.body {
            match atom.pred {
                PredRef::Edb(sym) => {
                    let args: Vec<u32> = atom.args.iter().map(|&v| var_of(v)).collect();
                    conj.push(Formula::atom(sym.index(), &args));
                }
                PredRef::Idb(q) => {
                    // Substitute Θ^{m−1}_Q with its free vars 0..arity(Q)
                    // renamed to this atom's arguments, binders freshened.
                    let args: Vec<u32> = atom.args.iter().map(|&v| var_of(v)).collect();
                    conj.push(substitute_free(&prev[q], &args, &mut next_fresh));
                }
            }
        }
        let mut body = Formula::And(conj);
        for &v in exist_vars.iter().rev() {
            body = Formula::exists(v, body);
        }
        disjuncts.push(body);
    }
    Formula::Or(disjuncts)
}

/// Rename the free variables `0..args.len()` of `f` to `args`, freshening
/// every binder above `*fresh` to avoid capture.
fn substitute_free(f: &Formula, args: &[u32], fresh: &mut u32) -> Formula {
    // First freshen binders apart (they get ids above all existing), then
    // apply the free-variable mapping. Since renamed_apart gives binders
    // unique ids disjoint from free ids, a single rename_vars pass is safe.
    let g = f.renamed_apart();
    let free: Vec<u32> = g.free_vars().into_iter().collect();
    debug_assert!(free.iter().all(|&v| (v as usize) < args.len()));
    // Map binder ids into the fresh range, free vars to args.
    let bound: Vec<u32> = {
        let mut b = Vec::new();
        g.visit(&mut |h| {
            if let Formula::Exists(x, _) | Formula::Forall(x, _) = h {
                b.push(*x);
            }
        });
        b
    };
    let base = *fresh;
    *fresh += bound.len() as u32;
    let map = move |v: u32| -> u32 {
        if let Some(i) = bound.iter().position(|&b| b == v) {
            base + i as u32
        } else {
            args[v as usize]
        }
    };
    g.rename_vars(&map)
}

/// Free-standing form of [`Program::stage_ucq`].
pub fn stage_ucq(p: &Program, idb: usize, m: usize) -> Result<Ucq, String> {
    if p.has_negation() {
        return Err("stage unfoldings are defined for positive programs only".to_string());
    }
    let f = stage_formula(p, idb, m);
    ucq_of_existential_positive(&f, p.edb())
}

/// Check that stage-`m` unfoldings agree with the naive operator stages on
/// a given structure (used pervasively in tests; exposed for the
/// experiment harness).
pub fn stages_agree(p: &Program, a: &hp_structures::Structure, m: usize) -> Result<(), String> {
    // A deliberately capped prefix: each computed stage is compared against
    // its unfolding, so convergence of the sequence is not required here.
    let stages = p.stages(a, m).stages;
    for (stage_idx, rels) in stages.iter().enumerate() {
        for (idb, rel) in rels.iter().enumerate().take(p.idbs().len()) {
            let u = stage_ucq(p, idb, stage_idx)?;
            let mut expected: Vec<Vec<Elem>> = rel.iter().map(|t| t.to_vec()).collect();
            expected.sort();
            let got = u.answers(a);
            if got != expected {
                return Err(format!(
                    "stage {stage_idx} of {}: unfolding gives {got:?}, operator gives {expected:?}",
                    p.idbs()[idb].0
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hp_structures::generators::{directed_cycle, directed_path, down_tree, random_digraph};
    use hp_structures::Vocabulary;

    fn tc() -> Program {
        Program::parse(
            "T(x,y) :- E(x,y).\nT(x,y) :- E(x,z), T(z,y).",
            &Vocabulary::digraph(),
        )
        .unwrap()
    }

    #[test]
    fn stage_zero_is_false() {
        let p = tc();
        let f = p.stage_formula(0, 0);
        assert_eq!(f, Formula::bottom());
        let u = p.stage_ucq(0, 0).unwrap();
        assert!(u.is_empty());
    }

    #[test]
    fn stage_one_is_the_edge_relation() {
        let p = tc();
        let u = p.stage_ucq(0, 1).unwrap();
        assert_eq!(u.len(), 1);
        let a = directed_path(4);
        assert_eq!(u.answers(&a).len(), 3);
    }

    #[test]
    fn stage_m_is_paths_up_to_length_m() {
        let p = tc();
        let a = directed_path(6);
        for m in 0..=4 {
            let u = p.stage_ucq(0, m).unwrap();
            // Pairs (i, j) with 1 ≤ j − i ≤ m.
            let expect: usize = (1..=m).map(|l| 6 - l).sum();
            assert_eq!(u.answers(&a).len(), expect, "stage {m}");
        }
    }

    #[test]
    fn unfolding_matches_operator_on_random_digraphs() {
        let p = tc();
        for seed in 0..5 {
            let a = random_digraph(5, 8, seed);
            stages_agree(&p, &a, 4).unwrap();
        }
        stages_agree(&p, &directed_cycle(4), 4).unwrap();
    }

    #[test]
    fn unfolding_variable_budget_is_programs_k() {
        // Theorem 7.1: stages of a k-Datalog program are CQ^k definable. In
        // formula terms: after minimization each disjunct's canonical
        // structure has treewidth < k — validated in integration tests; here
        // we check the UCQ is at least semantically right and the formula
        // uses few variables per disjunct *after the CQ^k rewriting*
        // (structure size can exceed k; variable REUSE is the point).
        let p = tc();
        let u = p.stage_ucq(0, 3).unwrap();
        assert_eq!(u.len(), 3);
        // Each disjunct is a path query: canonical structure = path.
        for d in u.disjuncts() {
            assert!(d.var_count() <= 3 + 1); // path of length ≤ 3 has ≤ 4 nodes
        }
    }

    #[test]
    fn multi_idb_unfolding() {
        let v = Vocabulary::from_pairs([("Down", 2), ("Leaf", 1)]);
        let p = Program::parse(
            "Reach(x) :- Leaf(x).\nReach(x) :- Down(x,y), Reach(y).\nGoal() :- Reach(x).",
            &v,
        )
        .unwrap();
        let t = down_tree(2);
        stages_agree(&p, &t, 4).unwrap();
        // Goal at stage 2 = ∃x Reach^1(x) = ∃x Leaf(x).
        let u = p.stage_ucq(1, 2).unwrap();
        assert!(u.holds_in(&t));
    }

    #[test]
    fn head_with_repeated_variables() {
        // Symmetric-pair IDB: S(x,x) :- E(x,x)... use head repetition:
        // D(x,x) :- E(x,y). The head repeats x: stage formulas must pin the
        // two free positions equal.
        let p = Program::parse("D(x,x) :- E(x,y).", &Vocabulary::digraph()).unwrap();
        let a = directed_path(3);
        let u = p.stage_ucq(0, 1).unwrap();
        let ans = u.answers(&a);
        // Sources with out-edges: 0 and 1 → (0,0), (1,1).
        assert_eq!(ans, vec![vec![Elem(0), Elem(0)], vec![Elem(1), Elem(1)]]);
        stages_agree(&p, &a, 2).unwrap();
    }

    #[test]
    fn mutual_recursion_unfolds() {
        // Even/odd-length path endpoints, mutually recursive.
        let p = Program::parse(
            "Even(x,y) :- E(x,z), Odd(z,y).\nOdd(x,y) :- E(x,y).\nOdd(x,y) :- E(x,z), Even(z,y).",
            &Vocabulary::digraph(),
        )
        .unwrap();
        let a = directed_path(6);
        stages_agree(&p, &a, 4).unwrap();
    }
}
