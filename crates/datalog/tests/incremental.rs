//! Differential suite for incremental view maintenance: random update
//! streams applied through [`Program::evaluate_incremental`] must leave the
//! materialized database bit-identical to a from-scratch evaluation of the
//! updated structure — for recursive and non-recursive gallery programs, at
//! 1, 2, and 4 worker threads — and budgeted maintenance must obey the
//! split-budget resume law.

use proptest::prelude::*;

use hp_datalog::{
    gallery, EdbDelta, EvalConfig, EvalError, FixpointResult, IncCheckpoint, MaterializedDb,
    Program,
};
use hp_guard::{Budget, Budgeted};
use hp_structures::{Elem, Structure, SymbolId, Vocabulary};

/// One EDB operation: `(symbol, insert?, raw elements)`. Elements are taken
/// modulo the universe and truncated to the symbol's arity.
type Op = (usize, bool, (usize, usize));

/// A stream of update batches.
type Stream = Vec<Vec<Op>>;

fn stream_strategy(max_batches: usize, max_ops: usize) -> impl Strategy<Value = Stream> {
    prop::collection::vec(
        prop::collection::vec(
            (0usize..4, any::<bool>(), (0usize..16, 0usize..16)),
            0..max_ops,
        ),
        0..max_batches,
    )
}

/// Random structure over `vocab`: `n` elements, `m` tuple draws per symbol
/// from a deterministic xorshift stream.
fn random_structure(vocab: &Vocabulary, n: usize, m: usize, seed: u64) -> Structure {
    let mut state = seed.wrapping_mul(2).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut s = Structure::new(vocab.clone(), n);
    for (sym, symbol) in vocab.iter() {
        for _ in 0..m {
            let t: Vec<u32> = (0..symbol.arity)
                .map(|_| (next() % n as u64) as u32)
                .collect();
            let _ = s.add_tuple_ids(sym.index(), &t);
        }
    }
    s
}

/// Split one batch of ops into insertion/deletion [`EdbDelta`]s and apply
/// the same batch semantics (insertions win) to the mirror structure.
fn apply_batch(vocab: &Vocabulary, mirror: &mut Structure, batch: &[Op]) -> (EdbDelta, EdbDelta) {
    let n = mirror.universe_size();
    let mut plus = EdbDelta::new(vocab);
    let mut minus = EdbDelta::new(vocab);
    let mut plus_rows: Vec<(usize, Vec<Elem>)> = Vec::new();
    let mut minus_rows: Vec<(usize, Vec<Elem>)> = Vec::new();
    for &(sym_raw, insert, elems) in batch {
        let sym = sym_raw % vocab.len();
        let arity = vocab.arity(SymbolId::from(sym));
        let pick = [elems.0, elems.1];
        let row: Vec<Elem> = (0..arity).map(|i| Elem((pick[i % 2] % n) as u32)).collect();
        if insert {
            plus.push(SymbolId::from(sym), &row);
            plus_rows.push((sym, row));
        } else {
            minus.push(SymbolId::from(sym), &row);
            minus_rows.push((sym, row));
        }
    }
    for (sym, row) in &minus_rows {
        if !plus_rows.iter().any(|(s, r)| s == sym && r == row) {
            mirror.remove_tuple(SymbolId::from(*sym), row);
        }
    }
    for (sym, row) in &plus_rows {
        let _ = mirror.add_tuple(SymbolId::from(*sym), row);
    }
    (plus, minus)
}

/// Drive `stream` through incremental maintenance and check, after every
/// batch, that the database matches a from-scratch evaluation of the
/// mirrored structure.
fn check_stream(p: &Program, initial: Structure, stream: &Stream, cfg: &EvalConfig) {
    let mut db = MaterializedDb::new_with(p, initial.clone(), cfg).expect("vocab matches");
    let mut mirror = initial;
    for batch in stream {
        let (plus, minus) = apply_batch(p.edb(), &mut mirror, batch);
        let inc = p
            .evaluate_incremental_with(&mut db, &plus, &minus, cfg)
            .expect("valid batch");
        let full = p.evaluate_with(&mirror, cfg);
        assert_eq!(
            inc.relations, full.relations,
            "incremental result diverged from full re-evaluation"
        );
        assert_eq!(
            db.relations(),
            &full.relations[..],
            "materialized relations diverged from full re-evaluation"
        );
        assert_eq!(db.structure().total_tuples(), mirror.total_tuples());
    }
}

fn digraph_programs() -> Vec<Program> {
    vec![
        gallery::transitive_closure(),
        gallery::cycle_detection(), // recursive SCC + nullary counting consumer
        gallery::two_hop(),         // pure counting
        gallery::absorbed_recursion(),
        // Mutual recursion: a two-member SCC.
        Program::parse(
            "Even(x,y) :- E(x,z), Odd(z,y).\nOdd(x,y) :- E(x,y).\nOdd(x,y) :- E(x,z), Even(z,y).",
            &Vocabulary::digraph(),
        )
        .unwrap(),
    ]
}

fn other_vocab_programs() -> Vec<Program> {
    vec![
        gallery::same_generation(),
        gallery::reach_leaf(),
        gallery::bounded_reach(2),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random insert/delete streams on digraph gallery programs match full
    /// re-evaluation after every batch.
    #[test]
    fn digraph_streams_match_full_eval(
        n in 1usize..8,
        m in 0usize..12,
        seed in 0u64..1000,
        stream in stream_strategy(4, 8),
    ) {
        let cfg = EvalConfig::new();
        for p in digraph_programs() {
            let a = random_structure(p.edb(), n, m, seed);
            check_stream(&p, a, &stream, &cfg);
        }
    }

    /// The same differential property over the multi-symbol vocabularies
    /// (`{Down, Leaf}`, `{E, M}`).
    #[test]
    fn multi_symbol_streams_match_full_eval(
        n in 1usize..7,
        m in 0usize..10,
        seed in 0u64..1000,
        stream in stream_strategy(4, 8),
    ) {
        let cfg = EvalConfig::new();
        for p in other_vocab_programs() {
            let a = random_structure(p.edb(), n, m, seed);
            check_stream(&p, a, &stream, &cfg);
        }
    }

    /// Worker-thread invariance: relations AND stage counts are identical
    /// at 1, 2, and 4 threads (with the parallel path forced).
    #[test]
    fn thread_counts_are_invisible(
        n in 1usize..7,
        m in 0usize..10,
        seed in 0u64..1000,
        stream in stream_strategy(3, 8),
    ) {
        let p = gallery::transitive_closure();
        let a = random_structure(p.edb(), n, m, seed);
        let configs: Vec<EvalConfig> = [1, 2, 4]
            .iter()
            .map(|&t| EvalConfig::new().with_threads(t).with_parallel_min_seed(0))
            .collect();
        let mut dbs: Vec<MaterializedDb> = configs
            .iter()
            .map(|cfg| MaterializedDb::new_with(&p, a.clone(), cfg).unwrap())
            .collect();
        let mut mirror = a;
        for batch in &stream {
            let (plus, minus) = apply_batch(p.edb(), &mut mirror, batch);
            let results: Vec<FixpointResult> = dbs
                .iter_mut()
                .zip(&configs)
                .map(|(db, cfg)| {
                    p.evaluate_incremental_with(db, &plus, &minus, cfg).unwrap()
                })
                .collect();
            for r in &results[1..] {
                prop_assert_eq!(&r.relations, &results[0].relations);
                prop_assert_eq!(r.stages, results[0].stages);
            }
            let full = p.evaluate(&mirror);
            prop_assert_eq!(&results[0].relations, &full.relations);
        }
    }

    /// Split-budget maintenance equals single-budget maintenance: fuel `f1`
    /// then `f2` leaves the database and the outcome exactly where one
    /// `f1 + f2` run does.
    #[test]
    fn incremental_fuel_split_law(
        n in 2usize..7,
        m in 1usize..10,
        seed in 0u64..1000,
        ops in prop::collection::vec((0usize..4, any::<bool>(), (0usize..16, 0usize..16)), 1..8),
        f1 in 1u64..20,
        f2 in 1u64..20,
    ) {
        let p = gallery::cycle_detection(); // two strata: a tick between them
        let cfg = EvalConfig::new();
        let a = random_structure(p.edb(), n, m, seed);
        let mut db_single = MaterializedDb::new(&p, a.clone()).unwrap();
        let mut db_split = db_single.clone();
        let mut mirror = a;
        let (plus, minus) = apply_batch(p.edb(), &mut mirror, &ops);

        let single = p
            .evaluate_incremental_budgeted(&mut db_single, &plus, &minus, &cfg, &Budget::fuel(f1 + f2))
            .expect("valid batch");
        let split = match p
            .evaluate_incremental_budgeted(&mut db_split, &plus, &minus, &cfg, &Budget::fuel(f1))
            .expect("valid batch")
        {
            Ok(done) => Ok(done),
            Err(e) => p
                .resume_incremental(&mut db_split, e.partial, &cfg, &Budget::fuel(f2))
                .expect("checkpoint comes from this run"),
        };
        prop_assert_eq!(state(split), state(single));
        prop_assert_eq!(db_split.relations(), db_single.relations());
        prop_assert_eq!(db_split.is_in_flight(), db_single.is_in_flight());
    }
}

/// Collapse a budgeted outcome into comparable state.
fn state(
    r: Budgeted<FixpointResult, IncCheckpoint>,
) -> (Vec<hp_datalog::IdbRelation>, usize, Option<(usize, u64)>) {
    match r {
        Ok(r) => (r.relations, r.stages, None),
        Err(e) => {
            let cp = e.partial;
            (
                Vec::new(),
                cp.stages(),
                Some((cp.committed_strata(), cp.fuel_spent())),
            )
        }
    }
}

/// Deleting an edge *below* a recursive derivation: the tuples it supported
/// fall out unless an alternative path revives them, and reinsertion
/// restores the original fixpoint exactly.
#[test]
fn delete_below_recursive_derivation_and_reinsert() {
    let p = gallery::transitive_closure();
    // Diamond with a tail: 0→1→3→4, 0→2→3. Deleting 1→3 keeps T(0,3),
    // T(0,4) alive through 2; deleting 2→3 afterwards kills them.
    let mut a = Structure::new(Vocabulary::digraph(), 5);
    for (u, v) in [(0u32, 1), (1, 3), (0, 2), (2, 3), (3, 4)] {
        let _ = a.add_tuple_ids(0, &[u, v]);
    }
    let mut db = MaterializedDb::new(&p, a.clone()).unwrap();
    let original = db.relations().to_vec();

    let mut minus = EdbDelta::new(p.edb());
    minus.push_ids(0, &[1, 3]);
    let r = p
        .evaluate_incremental(&mut db, &EdbDelta::new(p.edb()), &minus)
        .unwrap();
    assert!(
        r.relations[0].contains(&[Elem(0), Elem(3)]),
        "revived via 2"
    );
    assert!(r.relations[0].contains(&[Elem(0), Elem(4)]));
    assert!(!r.relations[0].contains(&[Elem(1), Elem(3)]));
    let mut b = a.clone();
    assert!(b.remove_tuple(SymbolId::from(0usize), &[Elem(1), Elem(3)]));
    assert_eq!(r.relations, p.evaluate(&b).relations);

    let mut minus2 = EdbDelta::new(p.edb());
    minus2.push_ids(0, &[2, 3]);
    let r2 = p
        .evaluate_incremental(&mut db, &EdbDelta::new(p.edb()), &minus2)
        .unwrap();
    assert!(!r2.relations[0].contains(&[Elem(0), Elem(3)]));
    assert!(!r2.relations[0].contains(&[Elem(0), Elem(4)]));

    let mut plus = EdbDelta::new(p.edb());
    plus.push_ids(0, &[1, 3]);
    plus.push_ids(0, &[2, 3]);
    let r3 = p
        .evaluate_incremental(&mut db, &plus, &EdbDelta::new(p.edb()))
        .unwrap();
    assert_eq!(r3.relations, original, "reinsertion restores the fixpoint");
}

/// An exhausted run leaves the database in-flight: fresh batches are
/// refused with a typed error until the run is resumed, and resuming a
/// database that is not in flight is refused too.
#[test]
fn in_flight_database_refuses_new_batches() {
    let p = gallery::cycle_detection();
    let mut a = Structure::new(Vocabulary::digraph(), 6);
    for v in 0..6u32 {
        let _ = a.add_tuple_ids(0, &[v, (v + 1) % 6]);
    }
    let mut db = MaterializedDb::new(&p, a).unwrap();
    let cfg = EvalConfig::new();
    let mut minus = EdbDelta::new(p.edb());
    minus.push_ids(0, &[0, 1]);
    let empty = EdbDelta::new(p.edb());
    let exhausted = p
        .evaluate_incremental_budgeted(&mut db, &empty, &minus, &cfg, &Budget::fuel(1))
        .expect("valid batch")
        .expect_err("fuel 1 cannot finish a real deletion");
    assert!(db.is_in_flight());

    let err = p
        .evaluate_incremental(&mut db, &empty, &minus)
        .expect_err("in-flight database must refuse new batches");
    assert!(matches!(err, EvalError::ProgramMismatch { .. }));

    let done = p
        .resume_incremental(&mut db, exhausted.partial, &cfg, &Budget::unlimited())
        .expect("checkpoint comes from this run")
        .expect("unlimited resume finishes");
    assert!(!db.is_in_flight());
    assert!(done.converged);

    // Resuming again, with nothing in flight, is a typed error.
    let exhausted2 = p
        .evaluate_incremental_budgeted(
            &mut db,
            &empty,
            &EdbDelta::new(p.edb()),
            &cfg,
            &Budget::fuel(1),
        )
        .expect("valid batch");
    if let Err(cp) = exhausted2 {
        // If even the no-op run exhausted, finish it first.
        p.resume_incremental(&mut db, cp.partial, &cfg, &Budget::unlimited())
            .unwrap()
            .unwrap();
    }
    let stale = IncCheckpointProbe::steal(&p, &mut db);
    let err = p
        .resume_incremental(&mut db, stale, &cfg, &Budget::unlimited())
        .expect_err("nothing is in flight");
    assert!(matches!(err, EvalError::CheckpointMismatch { .. }));
}

/// Helper: manufacture a checkpoint by exhausting a clone, leaving the
/// original database idle.
struct IncCheckpointProbe;

impl IncCheckpointProbe {
    fn steal(p: &Program, db: &mut MaterializedDb) -> IncCheckpoint {
        let mut clone = db.clone();
        let mut minus = EdbDelta::new(p.edb());
        minus.push_ids(0, &[0, 1]);
        p.evaluate_incremental_budgeted(
            &mut clone,
            &EdbDelta::new(p.edb()),
            &minus,
            &EvalConfig::new(),
            &Budget::fuel(1),
        )
        .expect("valid batch")
        .expect_err("fuel 1 cannot finish")
        .partial
    }
}

/// A database built for one program refuses batches from another, and
/// vocabulary mismatches are typed errors.
#[test]
fn mismatches_are_typed_errors() {
    let tc = gallery::transitive_closure();
    let sg = gallery::same_generation();
    let mut db = MaterializedDb::new(&tc, Structure::new(Vocabulary::digraph(), 3)).unwrap();
    let err = sg
        .evaluate_incremental(&mut db, &EdbDelta::new(sg.edb()), &EdbDelta::new(sg.edb()))
        .expect_err("different program");
    assert!(matches!(err, EvalError::ProgramMismatch { .. }));

    let err = MaterializedDb::new(&sg, Structure::new(Vocabulary::digraph(), 3))
        .expect_err("vocabulary mismatch");
    assert!(matches!(err, EvalError::ProgramMismatch { .. }));

    let err = tc
        .evaluate_incremental(&mut db, &EdbDelta::new(sg.edb()), &EdbDelta::new(sg.edb()))
        .expect_err("batch vocabulary mismatch");
    assert!(matches!(err, EvalError::ProgramMismatch { .. }));
}
