//! Differential tests for the evaluator stack: the naive stage oracle
//! ([`Program::stages`]), the scan-based seed evaluator
//! ([`Program::evaluate_reference`]), and the indexed semi-naive engine
//! ([`Program::evaluate_with`]) at every thread count in {1, 2, 4} must
//! agree **bit for bit** — relations *and* stage counts — on random
//! programs and random structures, including rules with duplicate IDB body
//! atoms, repeated variables, and 0-ary heads.

use proptest::prelude::*;

use hp_datalog::{DatalogAtom, EvalConfig, PredRef, Program, Rule};
use hp_structures::{Structure, Vocabulary};

/// IDB signature used by the random programs: `A/1`, `B/2`, `G/0`.
fn idb_signature() -> Vec<(String, usize)> {
    vec![
        ("A".to_string(), 1),
        ("B".to_string(), 2),
        ("G".to_string(), 0),
    ]
}

fn digraph_strategy(max_n: usize, max_m: usize) -> impl Strategy<Value = Structure> {
    (
        1..=max_n,
        prop::collection::vec((0usize..max_n, 0usize..max_n), 0..max_m),
    )
        .prop_map(move |(n, edges)| {
            let mut s = Structure::new(Vocabulary::digraph(), n);
            for (u, v) in edges {
                let _ = s.add_tuple_ids(0, &[(u % n) as u32, (v % n) as u32]);
            }
            s
        })
}

/// Raw atom descriptor: predicate choice 0..4 (E, A, B, G) plus two
/// variable candidates; the arity decides how many are used.
type RawAtom = (usize, (u32, u32));

/// Build a *valid* program from raw rule descriptors: head variables are
/// remapped onto body variables (safety by construction), and heads whose
/// body binds nothing collapse to the 0-ary `G`.
fn build_program(raw_rules: Vec<(usize, (u32, u32), Vec<RawAtom>)>) -> Program {
    let vocab = Vocabulary::digraph();
    let arities = [2usize, 1, 2, 0]; // E, A, B, G
    let mut rules = Vec::new();
    for (head_choice, head_vars, raw_body) in raw_rules {
        let mut body = Vec::new();
        let mut body_vars: Vec<u32> = Vec::new();
        for (pred_choice, (v0, v1)) in raw_body {
            let pred_choice = pred_choice % 4;
            let args: Vec<u32> = [v0 % 4, v1 % 4][..arities[pred_choice]].to_vec();
            body_vars.extend(&args);
            let pred = if pred_choice == 0 {
                PredRef::Edb(0usize.into())
            } else {
                PredRef::Idb(pred_choice - 1)
            };
            body.push(DatalogAtom {
                pred,
                args,
                negated: false,
            });
        }
        body_vars.sort_unstable();
        body_vars.dedup();
        // 0..3 picks A, B, or G; bodies that bind no variable force G.
        let head_idb = if body_vars.is_empty() {
            2
        } else {
            head_choice % 3
        };
        let head_arity = [1usize, 2, 0][head_idb];
        let args: Vec<u32> = [head_vars.0, head_vars.1][..head_arity]
            .iter()
            .map(|&v| body_vars[v as usize % body_vars.len()])
            .collect();
        rules.push(Rule {
            head: DatalogAtom {
                pred: PredRef::Idb(head_idb),
                args,
                negated: false,
            },
            body,
        });
    }
    Program::new(vocab, idb_signature(), rules, Vec::new()).expect("repaired rules are valid")
}

fn program_strategy() -> impl Strategy<Value = Program> {
    prop::collection::vec(
        (
            0usize..3,
            (0u32..4, 0u32..4),
            prop::collection::vec((0usize..4, (0u32..4, 0u32..4)), 1..4),
        ),
        1..5,
    )
    .prop_map(build_program)
}

/// Hand-picked programs covering the shapes the ISSUE calls out
/// explicitly: duplicate IDB body atoms, repeated variables, 0-ary heads,
/// mutual recursion, and nonlinear recursion.
fn gallery() -> Vec<Program> {
    let v = Vocabulary::digraph();
    [
        // Linear and nonlinear transitive closure (nonlinear = duplicate
        // IDB predicate in one body).
        "T(x,y) :- E(x,y).\nT(x,y) :- E(x,z), T(z,y).",
        "T(x,y) :- E(x,y).\nT(x,y) :- T(x,z), T(z,y).",
        // Literally duplicated IDB body atom plus a repeated variable.
        "A(x) :- E(x,x).\nB(x,y) :- A(x), A(x), E(x,y).",
        // 0-ary head fed by recursion.
        "A(x) :- E(x,x).\nA(x) :- E(x,y), A(y).\nG() :- A(x).",
        // Mutual recursion.
        "Even(x,y) :- E(x,z), Odd(z,y).\nOdd(x,y) :- E(x,y).\nOdd(x,y) :- E(x,z), Even(z,y).",
        // Cartesian-ish rule: disconnected body atoms.
        "B(x,y) :- E(x,x), E(y,y).",
    ]
    .iter()
    .map(|text| Program::parse(text, &v).unwrap())
    .collect()
}

/// The heart of the differential suite: every evaluator and every thread
/// count agrees with the naive stage oracle on `a`.
fn assert_all_agree(p: &Program, a: &Structure) -> Result<(), TestCaseError> {
    let naive = p.stages(a, 64);
    prop_assert!(naive.converged, "oracle must converge within 64 stages");
    let reference = p.evaluate_reference(a);
    prop_assert_eq!(&reference.relations[..], naive.last());
    prop_assert_eq!(reference.stages, naive.applications());
    prop_assert!(reference.converged);
    for threads in [1usize, 2, 4] {
        // min_seed 0 keeps the pool engaged even on these tiny structures.
        let cfg = EvalConfig::new()
            .with_threads(threads)
            .with_parallel_min_seed(0);
        let r = p.evaluate_with(a, &cfg);
        prop_assert_eq!(&r.relations, &reference.relations, "threads {}", threads);
        prop_assert_eq!(r.stages, reference.stages, "threads {}", threads);
        prop_assert!(r.converged);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random programs × random structures: naive oracle, scan reference,
    /// and the indexed engine at 1/2/4 threads are bit-identical.
    #[test]
    fn random_programs_agree(p in program_strategy(), a in digraph_strategy(6, 16)) {
        assert_all_agree(&p, &a)?;
    }

    /// The hand-picked shape gallery on random structures.
    #[test]
    fn gallery_programs_agree(a in digraph_strategy(7, 18)) {
        for p in gallery() {
            assert_all_agree(&p, &a)?;
        }
    }
}

/// Larger fixed structures so the parallel path actually distributes work
/// over non-trivial delta shards (the proptest structures are tiny).
#[test]
fn parallel_shards_agree_on_large_digraphs() {
    use hp_structures::generators::random_digraph;
    let programs = gallery();
    for seed in [3u64, 17, 40] {
        let a = random_digraph(40, 140, seed);
        for p in &programs {
            let reference = p.evaluate_reference(&a);
            for threads in [1usize, 2, 4] {
                let cfg = EvalConfig::new()
                    .with_threads(threads)
                    .with_parallel_min_seed(0);
                let r = p.evaluate_with(&a, &cfg);
                assert_eq!(r.relations, reference.relations, "threads {threads}");
                assert_eq!(r.stages, reference.stages, "threads {threads}");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Stratified negation: the indexed engine at 1/2/4 threads vs the extended
// scan-based reference oracle. The naive `stages` oracle is positive-only
// (the operator is non-monotone under negation), so here the reference
// evaluator *is* the oracle — an independent implementation with its own
// stratum loop and trailing membership guards.
// ---------------------------------------------------------------------------

/// splitmix64 — a self-contained deterministic generator for the random
/// EDB sweep (no external dependency, stable across platforms).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A random structure over an arbitrary vocabulary: `n` elements, and per
/// relation `m` tuple draws (duplicates collapse). Unary relations are
/// additionally biased to cover most of the universe so guards like
/// `Node(x)` and `Pos(x)` have substance.
fn random_edb(vocab: &Vocabulary, n: usize, m: usize, seed: u64) -> Structure {
    let mut s = Structure::new(vocab.clone(), n);
    let mut state = seed ^ 0xD1B5_4A32_D192_ED03;
    for (sym, info) in vocab.iter() {
        if info.arity == 1 {
            for e in 0..n {
                if !splitmix64(&mut state).is_multiple_of(4) {
                    s.add_tuple_ids(sym.index(), &[e as u32]).unwrap();
                }
            }
            continue;
        }
        for _ in 0..m {
            let t: Vec<u32> = (0..info.arity)
                .map(|_| (splitmix64(&mut state) % n as u64) as u32)
                .collect();
            s.add_tuple_ids(sym.index(), &t).unwrap();
        }
    }
    s
}

/// The negation program gallery the random sweep runs over.
fn negation_gallery() -> Vec<Program> {
    vec![
        hp_datalog::gallery::non_reachability(),
        hp_datalog::gallery::set_difference(),
        hp_datalog::gallery::win_move(1),
        hp_datalog::gallery::win_move(2),
        hp_datalog::gallery::win_move(3),
        // Goal over the top of a two-stratum program: a positive join
        // *after* a negated guard.
        Program::parse(
            "T(x,y) :- E(x,y).\nT(x,y) :- E(x,z), T(z,y).\n\
             NR(x,y) :- Node(x), Node(y), not T(x,y).\nGoal() :- NR(x,x).",
            &Vocabulary::from_pairs([("E", 2), ("Node", 1)]),
        )
        .unwrap(),
    ]
}

/// ~128 random EDBs: every stratifiable negation gallery program evaluates
/// bit-identically at 1/2/4 threads and matches the reference oracle —
/// relations *and* stage counts.
#[test]
fn stratified_negation_differential_sweep() {
    let programs = negation_gallery();
    let mut edbs = 0usize;
    for seed in 0..22u64 {
        for p in &programs {
            let n = 3 + (seed as usize % 5);
            let m = 2 + (seed as usize * 3) % 12;
            let a = random_edb(p.edb(), n, m, seed * 131 + 7);
            edbs += 1;
            let reference = p.evaluate_reference(&a);
            assert!(reference.converged);
            for threads in [1usize, 2, 4] {
                let cfg = EvalConfig::new()
                    .with_threads(threads)
                    .with_parallel_min_seed(0);
                let r = p.evaluate_with(&a, &cfg);
                assert_eq!(
                    r.relations, reference.relations,
                    "seed {seed} threads {threads}"
                );
                assert_eq!(r.stages, reference.stages, "seed {seed} threads {threads}");
                assert!(r.converged);
            }
        }
    }
    assert!(edbs >= 128, "sweep covered only {edbs} EDBs");
}

/// Budgeted evaluation of stratified programs obeys the exact resume law
/// across stratum boundaries: fuel `f1` then `f2` lands bit-identically on
/// a single `f1 + f2` run — relations, stage counts, pending delta, and
/// fuel state.
#[test]
fn stratified_fuel_split_equals_straight_run() {
    use hp_guard::Budget;
    let p = hp_datalog::gallery::non_reachability();
    let a = random_edb(p.edb(), 6, 10, 42);
    let cfg = EvalConfig::new();
    let full = p.evaluate(&a);
    for f1 in 1..40u64 {
        for f2 in [1u64, 3, 11, 500] {
            let straight = p.evaluate_budgeted(&a, &cfg, &Budget::fuel(f1 + f2));
            let split = match p.evaluate_budgeted(&a, &cfg, &Budget::fuel(f1)) {
                Ok(r) => Ok(r),
                Err(e) => p
                    .resume_budgeted(&a, &cfg, e.partial, &Budget::fuel(f2))
                    .expect("checkpoint comes from this program"),
            };
            match (straight, split) {
                (Ok(s), Ok(t)) => {
                    assert_eq!(s.relations, t.relations, "f1={f1} f2={f2}");
                    assert_eq!(s.stages, t.stages, "f1={f1} f2={f2}");
                    assert_eq!(s.relations, full.relations, "f1={f1} f2={f2}");
                }
                (Err(s), Err(t)) => {
                    let (s, t) = (s.partial, t.partial);
                    assert_eq!(s.partial.relations, t.partial.relations, "f1={f1} f2={f2}");
                    assert_eq!(s.partial.stages, t.partial.stages, "f1={f1} f2={f2}");
                    assert_eq!(s.fuel_spent(), t.fuel_spent(), "f1={f1} f2={f2}");
                }
                (s, t) => panic!(
                    "split and straight disagree on exhaustion for f1={f1} f2={f2}: \
                     straight ok={} split ok={}",
                    s.is_ok(),
                    t.is_ok()
                ),
            }
        }
    }
}

/// The old failure shape, demonstrated: a capped stage sequence used to be
/// indistinguishable from a converged one. `converged` now tells them
/// apart, and capped `evaluate_with` agrees.
#[test]
fn capped_runs_surface_non_convergence() {
    let p = Program::parse(
        "T(x,y) :- E(x,y).\nT(x,y) :- E(x,z), T(z,y).",
        &Vocabulary::digraph(),
    )
    .unwrap();
    let a = hp_structures::generators::directed_path(12);
    let capped = p.stages(&a, 4);
    let full = p.stages(&a, 64);
    // Pre-fix, both of these looked like "the" stage sequence.
    assert!(!capped.converged);
    assert!(full.converged);
    assert_ne!(capped.last(), full.last());
    let r = p.evaluate_with(&a, &EvalConfig::new().with_max_stages(4));
    assert!(!r.converged);
    assert_eq!(&r.relations[..], capped.last());
}
