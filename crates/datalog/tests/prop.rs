//! Property-based tests for hp-datalog: naive/semi-naive agreement on
//! random inputs, stage monotonicity, unfolding agreement, and boundedness
//! certificate soundness.

use proptest::prelude::*;

use hp_datalog::{certified_bounded_at, stage_ucq, stages_agree, Program};
use hp_structures::{Structure, Vocabulary};

fn digraph_strategy(max_n: usize, max_m: usize) -> impl Strategy<Value = Structure> {
    (
        1..=max_n,
        prop::collection::vec((0usize..max_n, 0usize..max_n), 0..max_m),
    )
        .prop_map(move |(n, edges)| {
            let mut s = Structure::new(Vocabulary::digraph(), n);
            for (u, v) in edges {
                let _ = s.add_tuple_ids(0, &[(u % n) as u32, (v % n) as u32]);
            }
            s
        })
}

fn tc() -> Program {
    Program::parse(
        "T(x,y) :- E(x,y).\nT(x,y) :- E(x,z), T(z,y).",
        &Vocabulary::digraph(),
    )
    .unwrap()
}

fn programs() -> Vec<Program> {
    let v = Vocabulary::digraph();
    vec![
        tc(),
        Program::parse("P(x,y) :- E(x,z), E(z,y).", &v).unwrap(),
        Program::parse("L(x) :- E(x,x).\nL(x) :- E(x,y), L(y).", &v).unwrap(),
        Program::parse(
            "Even(x,y) :- E(x,z), Odd(z,y).\nOdd(x,y) :- E(x,y).\nOdd(x,y) :- E(x,z), Even(z,y).",
            &v,
        )
        .unwrap(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Naive fixpoint == semi-naive fixpoint, and stage counts agree, for
    /// every program in the gallery on random digraphs.
    #[test]
    fn naive_semi_naive_agree(a in digraph_strategy(6, 14)) {
        for p in programs() {
            let naive = p.stages(&a, 64);
            prop_assert!(naive.converged);
            let semi = p.evaluate(&a);
            prop_assert!(semi.converged);
            prop_assert_eq!(&semi.relations[..], naive.last());
            prop_assert_eq!(semi.stages, naive.applications());
        }
    }

    /// Stages are monotone under Φ (least-fixpoint iteration from ∅).
    #[test]
    fn stages_monotone(a in digraph_strategy(6, 12)) {
        for p in programs() {
            let st = p.stages(&a, 32).stages;
            for w in st.windows(2) {
                for (r0, r1) in w[0].iter().zip(&w[1]) {
                    prop_assert!(r0.is_subset(r1));
                }
            }
        }
    }

    /// Theorem 7.1: unfolded stage UCQs agree with the operator stages.
    #[test]
    fn unfolding_agrees(a in digraph_strategy(5, 10)) {
        for p in programs() {
            prop_assert!(stages_agree(&p, &a, 3).is_ok());
        }
    }

    /// Fixpoints are preserved under homomorphisms elementwise: Datalog
    /// queries are (infinitary) UCQs, so if h : A → B then h(T^A) ⊆ T^B.
    #[test]
    fn fixpoint_preserved_under_homs(a in digraph_strategy(5, 8), b in digraph_strategy(5, 12)) {
        if let Some(h) = hp_hom::find_hom(&a, &b) {
            let p = tc();
            let fa = p.evaluate(&a);
            let fb = p.evaluate(&b);
            for t in &fa.relations[0] {
                let mapped: Vec<_> = t.iter().map(|e| h[e.index()]).collect();
                prop_assert!(fb.relations[0].contains(&mapped));
            }
        }
    }

    /// Soundness of the boundedness certificate: if certified at s, the
    /// fixpoint equals stage s on arbitrary random structures.
    #[test]
    fn certificate_sound(a in digraph_strategy(6, 12)) {
        let v = Vocabulary::digraph();
        let p = Program::parse(
            "R(x) :- E(x,x).\nR(x) :- E(x,y), R(y), E(x,x).",
            &v,
        ).unwrap();
        prop_assert!(certified_bounded_at(&p, 1).unwrap());
        let u = stage_ucq(&p, 0, 1).unwrap();
        let fix = p.evaluate(&a);
        let mut expected: Vec<_> = fix.relations[0].iter().map(|t| t.to_vec()).collect();
        expected.sort();
        prop_assert_eq!(u.answers(&a), expected);
    }

    /// TC is never certified bounded at small stages (completeness side on
    /// a known-unbounded program).
    #[test]
    fn tc_never_certifies(s in 0usize..4) {
        prop_assert!(!certified_bounded_at(&tc(), s).unwrap());
    }
}
