//! Property-based tests for hp-hom: solver soundness, composition laws,
//! core invariants, and isomorphism as an equivalence.

use proptest::prelude::*;

use hp_hom::{are_homomorphically_equivalent, are_isomorphic, core_of, is_core, HomSearch};
use hp_structures::{Elem, Structure, Vocabulary};

fn digraph_strategy(max_n: usize, max_m: usize) -> impl Strategy<Value = Structure> {
    (
        1..=max_n,
        prop::collection::vec((0usize..max_n, 0usize..max_n), 0..max_m),
    )
        .prop_map(move |(n, edges)| {
            let mut s = Structure::new(Vocabulary::digraph(), n);
            for (u, v) in edges {
                let _ = s.add_tuple_ids(0, &[(u % n) as u32, (v % n) as u32]);
            }
            s
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every hom the solver returns really is a homomorphism.
    #[test]
    fn solver_is_sound(a in digraph_strategy(5, 8), b in digraph_strategy(5, 10)) {
        if let Some(h) = HomSearch::new(&a, &b).solve() {
            prop_assert!(a.is_homomorphism(&h, &b));
        }
    }

    /// Completeness against brute force on tiny instances.
    #[test]
    fn solver_is_complete(a in digraph_strategy(3, 5), b in digraph_strategy(3, 6)) {
        let n = a.universe_size();
        let m = b.universe_size();
        let mut brute = false;
        let total = (m as u64).pow(n as u32);
        for code in 0..total {
            let mut c = code;
            let map: Vec<Elem> = (0..n).map(|_| {
                let e = Elem((c % m as u64) as u32);
                c /= m as u64;
                e
            }).collect();
            if a.is_homomorphism(&map, &b) {
                brute = true;
                break;
            }
        }
        prop_assert_eq!(HomSearch::new(&a, &b).exists(), brute);
    }

    /// Homomorphisms compose.
    #[test]
    fn homs_compose(
        a in digraph_strategy(4, 6),
        b in digraph_strategy(4, 8),
        c in digraph_strategy(4, 10),
    ) {
        if let (Some(h), Some(g)) = (
            HomSearch::new(&a, &b).solve(),
            HomSearch::new(&b, &c).solve(),
        ) {
            let comp: Vec<Elem> = h.iter().map(|e| g[e.index()]).collect();
            prop_assert!(a.is_homomorphism(&comp, &c));
        }
    }

    /// Enumeration count matches brute force on tiny instances.
    #[test]
    fn enumeration_is_exhaustive(a in digraph_strategy(3, 4), b in digraph_strategy(3, 5)) {
        let n = a.universe_size();
        let m = b.universe_size();
        let mut brute = 0usize;
        for code in 0..(m as u64).pow(n as u32) {
            let mut c = code;
            let map: Vec<Elem> = (0..n).map(|_| {
                let e = Elem((c % m as u64) as u32);
                c /= m as u64;
                e
            }).collect();
            if a.is_homomorphism(&map, &b) {
                brute += 1;
            }
        }
        prop_assert_eq!(HomSearch::new(&a, &b).count(usize::MAX), brute);
    }

    /// The core is a core, is unique up to iso under re-runs, and is
    /// hom-equivalent to the original.
    #[test]
    fn core_invariants(a in digraph_strategy(5, 10)) {
        let c = core_of(&a);
        prop_assert!(is_core(&c.structure));
        prop_assert!(are_homomorphically_equivalent(&a, &c.structure));
        prop_assert!(a.is_homomorphism(&c.retraction, &c.structure));
        let c2 = core_of(&c.structure);
        prop_assert!(are_isomorphic(&c.structure, &c2.structure));
    }

    /// Isomorphism is reflexive and symmetric, and implies hom-equivalence.
    #[test]
    fn iso_is_equivalence_ish(a in digraph_strategy(5, 8), perm_seed in any::<u64>()) {
        prop_assert!(are_isomorphic(&a, &a));
        // Permute the structure: still isomorphic.
        use rand::seq::SliceRandom;
        let mut r = hp_structures::generators::rng(perm_seed);
        let n = a.universe_size();
        let mut perm: Vec<u32> = (0..n as u32).collect();
        perm.shuffle(&mut r);
        let map: Vec<Elem> = perm.iter().map(|&v| Elem(v)).collect();
        let b = a.hom_image(&map, n);
        prop_assert!(are_isomorphic(&a, &b));
        prop_assert!(are_isomorphic(&b, &a));
        prop_assert!(are_homomorphically_equivalent(&a, &b));
    }

    /// Pins are honored by every reported solution.
    #[test]
    fn pins_honored(a in digraph_strategy(4, 6), b in digraph_strategy(4, 9)) {
        let x = Elem(0);
        for y in b.elements() {
            for h in HomSearch::new(&a, &b).pin(x, y).enumerate(16) {
                prop_assert_eq!(h[0], y);
            }
        }
    }

    /// Injective solutions are injective; surjective solutions cover.
    #[test]
    fn modes_honored(a in digraph_strategy(4, 6), b in digraph_strategy(4, 9)) {
        for h in HomSearch::new(&a, &b).injective().enumerate(8) {
            let mut seen = std::collections::BTreeSet::new();
            for e in &h {
                prop_assert!(seen.insert(e.0));
            }
        }
        for h in HomSearch::new(&a, &b).surjective().enumerate(8) {
            let covered: std::collections::BTreeSet<u32> = h.iter().map(|e| e.0).collect();
            prop_assert_eq!(covered.len(), b.universe_size());
        }
    }
}
