//! # hp-hom
//!
//! Homomorphisms between finite relational structures: existence, search,
//! enumeration, isomorphism, retracts, and **cores** — the algorithmic heart
//! of the Chandra–Merlin correspondence (Theorem 2.1) and of §6.2 of
//! Atserias–Dawar–Kolaitis (PODS 2004).
//!
//! Homomorphism search is implemented as a constraint-satisfaction search:
//! variables are the elements of the source structure, domains are subsets
//! of the target universe, constraints are the source tuples. The solver
//! combines generalized arc consistency over tuple constraints with
//! minimum-remaining-values branching, and supports pinned variables
//! (constants, pebbles), restricted codomains, injectivity (for
//! isomorphism), and surjectivity (for the minimal-model arguments of §7).
//!
//! ```
//! use hp_structures::generators::{directed_cycle, directed_path};
//! use hp_hom::{hom_exists, core_of};
//!
//! // A path of length 3 maps into the directed 3-cycle (wrap around)…
//! assert!(hom_exists(&directed_path(4), &directed_cycle(3)));
//! // …but the cycle does not map into the path.
//! assert!(!hom_exists(&directed_cycle(3), &directed_path(4)));
//!
//! // The core of a structure that already is a core is itself.
//! let c3 = directed_cycle(3);
//! assert_eq!(core_of(&c3).structure.universe_size(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod canon;
mod core_impl;
mod iso;
mod search;

pub use canon::{
    canonical_form, canonical_form_pointed, canonical_form_pointed_gauged,
    canonical_form_pointed_with_budget, CanonicalForm,
};
pub use core_impl::{
    core_of, core_of_with_budget, is_core, is_core_with_budget, retract_avoiding, Core,
};
pub use iso::{
    are_homomorphically_equivalent, are_isomorphic, are_isomorphic_pointed, canonical_invariant,
    endomorphism_count, is_rigid,
};
pub use search::{all_homs, find_hom, hom_exists, HomError, HomSearch};
