//! The homomorphism CSP solver.

use std::fmt;

use hp_guard::{Budget, Budgeted, Gauge, Stop};
use hp_structures::{BitSet, Elem, RowRef, Structure, SymbolId};

/// Typed error for setting up a homomorphism search from user-supplied
/// structures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HomError {
    /// The source and target structures interpret different vocabularies —
    /// no map between their universes can be a homomorphism.
    VocabularyMismatch {
        /// The source structure's vocabulary, rendered for the message.
        source: String,
        /// The target structure's vocabulary, rendered for the message.
        target: String,
    },
}

impl fmt::Display for HomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HomError::VocabularyMismatch { source, target } => write!(
                f,
                "homomorphism across vocabularies: source interprets {source}, \
                 target interprets {target}"
            ),
        }
    }
}

impl std::error::Error for HomError {}

/// One tuple constraint of the source structure: the images of `vars` must
/// form a tuple of `sym` in the target. The variable row is a borrowed
/// [`RowRef`] handle into the source structure's column planes — setting up
/// a search copies no tuples.
struct Constraint<'a> {
    sym: SymbolId,
    vars: RowRef<'a>,
}

/// A configurable homomorphism search from a source structure `A` into a
/// target structure `B`.
///
/// By default it searches for an arbitrary homomorphism. Options:
///
/// - [`pin`](HomSearch::pin): force `h(x) = y` (constants, pebble positions);
/// - [`forbid_value`](HomSearch::forbid_value) /
///   [`restrict_codomain`](HomSearch::restrict_codomain): exclude target
///   elements (used by the core algorithm's "avoid `e`" retract search);
/// - [`injective`](HomSearch::injective): require `h` injective (isomorphism
///   search);
/// - [`surjective`](HomSearch::surjective): require `h` onto `B`'s universe
///   (the surjective-image arguments of Lemma 7.3).
///
/// The solver is exact; it never reports a spurious answer. Worst-case time
/// is exponential (the problem is NP-complete), but arc consistency plus MRV
/// keeps the structures in this crate's scope fast in practice.
pub struct HomSearch<'a> {
    a: &'a Structure,
    b: &'a Structure,
    domains: Vec<BitSet>,
    constraints: Vec<Constraint<'a>>,
    var_constraints: Vec<Vec<u32>>,
    injective: bool,
    surjective: bool,
    embedding: bool,
    inconsistent: bool,
    propagation: bool,
}

impl<'a> HomSearch<'a> {
    /// Set up a search from `a` to `b`.
    ///
    /// # Panics
    /// Panics when the two structures have different vocabularies — asking
    /// for a homomorphism across vocabularies is a programming error. Use
    /// [`HomSearch::try_new`] when the structures come from user input.
    pub fn new(a: &'a Structure, b: &'a Structure) -> Self {
        Self::try_new(a, b).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`HomSearch::new`]: reports a typed
    /// [`HomError::VocabularyMismatch`] instead of panicking, for
    /// structures that come from user input.
    pub fn try_new(a: &'a Structure, b: &'a Structure) -> Result<Self, HomError> {
        if a.vocab() != b.vocab() {
            return Err(HomError::VocabularyMismatch {
                source: format!("{:?}", a.vocab()),
                target: format!("{:?}", b.vocab()),
            });
        }
        let n = a.universe_size();
        let m = b.universe_size();
        let mut constraints = Vec::new();
        let mut var_constraints = vec![Vec::new(); n];
        for (sym, rel) in a.relations() {
            for t in rel.iter() {
                let ci = constraints.len() as u32;
                for v in t.iter() {
                    if !var_constraints[v.index()].contains(&ci) {
                        var_constraints[v.index()].push(ci);
                    }
                }
                constraints.push(Constraint { sym, vars: t });
            }
        }
        Ok(HomSearch {
            a,
            b,
            domains: vec![BitSet::full(m); n],
            constraints,
            var_constraints,
            injective: false,
            surjective: false,
            embedding: false,
            inconsistent: n > 0 && m == 0,
            propagation: true,
        })
    }

    /// Force `h(x) = y`.
    pub fn pin(mut self, x: Elem, y: Elem) -> Self {
        let dom = &mut self.domains[x.index()];
        if dom.contains(y.index()) {
            dom.clear();
            dom.insert(y.index());
        } else {
            self.inconsistent = true;
        }
        self
    }

    /// Remove a single target element from every domain (no source element
    /// may map to it).
    pub fn forbid_value(mut self, y: Elem) -> Self {
        for dom in &mut self.domains {
            dom.remove(y.index());
        }
        self
    }

    /// Remove a single target element from **one** source element's domain
    /// (`h(x) ≠ y`).
    pub fn forbid_value_for(mut self, x: Elem, y: Elem) -> Self {
        self.domains[x.index()].remove(y.index());
        self
    }

    /// Restrict the codomain to `allowed` (a set over `B`'s universe).
    pub fn restrict_codomain(mut self, allowed: &BitSet) -> Self {
        for dom in &mut self.domains {
            dom.intersect_with(allowed);
        }
        self
    }

    /// Require the homomorphism to be injective.
    pub fn injective(mut self) -> Self {
        self.injective = true;
        self
    }

    /// Require the homomorphism to be surjective onto `B`'s universe.
    pub fn surjective(mut self) -> Self {
        self.surjective = true;
        self
    }

    /// Require an **induced embedding**: injective, and reflecting every
    /// relation (`h(t) ∈ R^B ⟹ t ∈ R^A` for tuples over `A`'s elements).
    /// This is "A is an induced substructure of B up to renaming" — the
    /// notion preservation-under-extensions (Łoś–Tarski) is about.
    pub fn embedding(mut self) -> Self {
        self.injective = true;
        self.embedding = true;
        self
    }

    /// **Ablation switch**: disable arc-consistency propagation, falling
    /// back to pure backtracking with a full validity check at the leaves.
    /// Exists to measure how much the GAC machinery buys (see the
    /// `ablation` benchmark); never use in production paths.
    pub fn without_propagation(mut self) -> Self {
        self.propagation = false;
        self
    }

    /// Find one homomorphism, if any.
    pub fn solve(&self) -> Option<Vec<Elem>> {
        let mut found = None;
        self.run(1, &mut |h| {
            found = Some(h.to_vec());
        });
        found
    }

    /// True when a homomorphism exists.
    pub fn exists(&self) -> bool {
        self.solve().is_some()
    }

    /// Enumerate up to `limit` homomorphisms (`usize::MAX` for all).
    pub fn enumerate(&self, limit: usize) -> Vec<Vec<Elem>> {
        let mut out = Vec::new();
        self.run(limit, &mut |h| out.push(h.to_vec()));
        out
    }

    /// Count homomorphisms, stopping at `limit`.
    pub fn count(&self, limit: usize) -> usize {
        let mut n = 0;
        self.run(limit, &mut |_| n += 1);
        n
    }

    /// Budgeted [`HomSearch::solve`]: the backtracking search charges one
    /// fuel unit per search node. On exhaustion the search was
    /// *inconclusive* — `None` was not proven, so no meaningful partial
    /// exists and the [`hp_guard::Exhausted`] carries `()`.
    pub fn solve_with_budget(&self, budget: &Budget) -> Budgeted<Option<Vec<Elem>>, ()> {
        let mut found = None;
        let mut gauge = budget.gauge();
        match self.run_gauged(1, &mut gauge, &mut |h| found = Some(h.to_vec())) {
            Ok(()) => Ok(found),
            Err(stop) => Err(stop.with_partial(())),
        }
    }

    /// Budgeted [`HomSearch::exists`]: `Ok(bool)` is exact; exhaustion
    /// means the search space was not exhausted and carries no partial.
    pub fn exists_with_budget(&self, budget: &Budget) -> Budgeted<bool, ()> {
        self.solve_with_budget(budget).map(|h| h.is_some())
    }

    /// Budgeted [`HomSearch::enumerate`]: on exhaustion the partial is the
    /// (complete and correct, but possibly not exhaustive) list of
    /// homomorphisms found before the stop.
    pub fn enumerate_with_budget(&self, limit: usize, budget: &Budget) -> Budgeted<Vec<Vec<Elem>>> {
        let mut out = Vec::new();
        let mut gauge = budget.gauge();
        match self.run_gauged(limit, &mut gauge, &mut |h| out.push(h.to_vec())) {
            Ok(()) => Ok(out),
            Err(stop) => Err(stop.with_partial(out)),
        }
    }

    /// Budgeted [`HomSearch::count`]: on exhaustion the partial is the
    /// number of homomorphisms found before the stop (a lower bound).
    pub fn count_with_budget(&self, limit: usize, budget: &Budget) -> Budgeted<usize> {
        let mut n = 0;
        let mut gauge = budget.gauge();
        match self.run_gauged(limit, &mut gauge, &mut |_| n += 1) {
            Ok(()) => Ok(n),
            Err(stop) => Err(stop.with_partial(n)),
        }
    }

    /// Find one homomorphism charging an existing gauge — lets multi-search
    /// algorithms (the core computation, CQ containment sweeps, pebble
    /// games) share one budget across their whole sequence of searches.
    pub fn solve_gauged(&self, gauge: &mut Gauge) -> Result<Option<Vec<Elem>>, Stop> {
        let mut found = None;
        self.run_gauged(1, gauge, &mut |h| found = Some(h.to_vec()))?;
        Ok(found)
    }

    fn run(&self, limit: usize, on_solution: &mut dyn FnMut(&[Elem])) {
        let mut gauge = Budget::unlimited().gauge();
        match self.run_gauged(limit, &mut gauge, on_solution) {
            Ok(()) => (),
            Err(_) => unreachable!("an unlimited budget cannot exhaust"),
        }
    }

    fn run_gauged(
        &self,
        limit: usize,
        gauge: &mut Gauge,
        on_solution: &mut dyn FnMut(&[Elem]),
    ) -> Result<(), Stop> {
        if limit == 0 || self.inconsistent {
            return Ok(());
        }
        if self.surjective && self.a.universe_size() < self.b.universe_size() {
            return Ok(());
        }
        if self.injective && self.a.universe_size() > self.b.universe_size() {
            return Ok(());
        }
        if self.domains.iter().any(BitSet::is_empty) {
            return Ok(());
        }
        let mut domains = self.domains.clone();
        // Initial propagation over every constraint.
        if self.propagation {
            let all: Vec<u32> = (0..self.constraints.len() as u32).collect();
            if !self.propagate(&mut domains, all) {
                return Ok(());
            }
        }
        let mut remaining = limit;
        self.search(&mut domains, &mut remaining, gauge, on_solution)
    }

    /// Generalized arc consistency over the tuple constraints in `queue`,
    /// then over any constraint whose variable domains shrink. Returns false
    /// on a wipe-out.
    fn propagate(&self, domains: &mut [BitSet], mut queue: Vec<u32>) -> bool {
        let m = self.b.universe_size();
        let mut queued = vec![false; self.constraints.len()];
        for &c in &queue {
            queued[c as usize] = true;
        }
        while let Some(ci) = queue.pop() {
            queued[ci as usize] = false;
            let c = &self.constraints[ci as usize];
            let rel = self.b.relation(c.sym);
            let r = c.vars.len();
            // Supported values per position.
            let mut support: Vec<BitSet> = (0..r).map(|_| BitSet::new(m)).collect();
            let mut any = false;
            'tuples: for u in rel.iter() {
                for j in 0..r {
                    if !domains[c.vars[j].index()].contains(u[j].index()) {
                        continue 'tuples;
                    }
                    // Repeated source variables must receive equal values.
                    for l in (j + 1)..r {
                        if c.vars[j] == c.vars[l] && u[j] != u[l] {
                            continue 'tuples;
                        }
                    }
                }
                any = true;
                for j in 0..r {
                    support[j].insert(u[j].index());
                }
            }
            if !any {
                // No target tuple supports this constraint; for 0-ary
                // constraints this means the target's flag is false.
                return false;
            }
            for (j, sup) in support.iter().enumerate().take(r) {
                let var = c.vars[j].index();
                let before = domains[var].len();
                domains[var].intersect_with(sup);
                let after = domains[var].len();
                if after == 0 {
                    return false;
                }
                if after < before {
                    for &c2 in &self.var_constraints[var] {
                        if c2 != ci && !queued[c2 as usize] {
                            queued[c2 as usize] = true;
                            queue.push(c2);
                        }
                    }
                }
            }
        }
        true
    }

    fn search(
        &self,
        domains: &mut [BitSet],
        remaining: &mut usize,
        gauge: &mut Gauge,
        on_solution: &mut dyn FnMut(&[Elem]),
    ) -> Result<(), Stop> {
        if *remaining == 0 {
            return Ok(());
        }
        // One fuel unit per search node, charged before expanding it.
        gauge.tick(1)?;
        // Surjectivity pruning: every uncovered target value must still
        // appear in some domain.
        if self.surjective {
            let m = self.b.universe_size();
            let mut covered = BitSet::new(m);
            for d in domains.iter() {
                covered.union_with(d);
            }
            if covered.len() < m {
                return Ok(());
            }
        }
        // MRV: pick the unassigned variable with the smallest domain > 1.
        let mut best: Option<(usize, usize)> = None;
        for (v, d) in domains.iter().enumerate() {
            let s = d.len();
            if s > 1 && best.is_none_or(|(_, bs)| s < bs) {
                best = Some((v, s));
            }
        }
        let Some((var, _)) = best else {
            // All domains singleton: a candidate solution (propagation keeps
            // it consistent); check global conditions.
            let h: Vec<Elem> = domains
                .iter()
                .map(|d| Elem::from(d.first().expect("singleton domain")))
                .collect();
            if self.injective {
                let mut seen = BitSet::new(self.b.universe_size());
                for e in &h {
                    if !seen.insert(e.index()) {
                        return Ok(());
                    }
                }
            }
            if self.surjective {
                let mut seen = BitSet::new(self.b.universe_size());
                for e in &h {
                    seen.insert(e.index());
                }
                if seen.len() < self.b.universe_size() {
                    return Ok(());
                }
            }
            if !self.propagation && !self.a.is_homomorphism(&h, self.b) {
                return Ok(());
            }
            if self.embedding && !reflects(self.a, self.b, &h) {
                return Ok(());
            }
            debug_assert!(self.a.is_homomorphism(&h, self.b));
            *remaining -= 1;
            on_solution(&h);
            return Ok(());
        };
        // Value ordering: prefer values already used by decided variables —
        // this biases the search toward *folding* maps, which is what the
        // core computation wants and costs nothing elsewhere.
        let mut used = BitSet::new(self.b.universe_size());
        if !self.injective {
            for d in domains.iter() {
                if d.len() == 1 {
                    used.insert(d.first().expect("singleton"));
                }
            }
        }
        let mut values: Vec<usize> = domains[var].iter().filter(|&v| used.contains(v)).collect();
        values.extend(domains[var].iter().filter(|&v| !used.contains(v)));
        for v in values {
            let mut child: Vec<BitSet> = domains.to_vec();
            child[var].clear();
            child[var].insert(v);
            if self.injective {
                for (w, d) in child.iter_mut().enumerate() {
                    if w != var {
                        d.remove(v);
                    }
                }
                if child.iter().any(BitSet::is_empty) {
                    continue;
                }
            }
            let affected: Vec<u32> = if self.injective {
                (0..self.constraints.len() as u32).collect()
            } else {
                self.var_constraints[var].clone()
            };
            if !self.propagation || self.propagate(&mut child, affected) {
                self.search(&mut child, remaining, gauge, on_solution)?;
                if *remaining == 0 {
                    return Ok(());
                }
            }
        }
        Ok(())
    }
}

/// Does `h` (assumed an injective homomorphism) also reflect every
/// relation, i.e. is it an induced embedding?
fn reflects(a: &Structure, b: &Structure, h: &[Elem]) -> bool {
    // Inverse image of h.
    let mut inv = vec![u32::MAX; b.universe_size()];
    for (x, y) in h.iter().enumerate() {
        inv[y.index()] = x as u32;
    }
    let mut pre: Vec<Elem> = Vec::new();
    for (sym, rel) in b.relations() {
        'tuples: for u in rel.iter() {
            pre.clear();
            for y in u.iter() {
                let x = inv[y.index()];
                if x == u32::MAX {
                    continue 'tuples;
                }
                pre.push(Elem(x));
            }
            if !a.contains_tuple(sym, &pre) {
                return false;
            }
        }
    }
    true
}

/// Find one homomorphism from `a` to `b`, if any.
pub fn find_hom(a: &Structure, b: &Structure) -> Option<Vec<Elem>> {
    HomSearch::new(a, b).solve()
}

/// True when a homomorphism from `a` to `b` exists.
pub fn hom_exists(a: &Structure, b: &Structure) -> bool {
    HomSearch::new(a, b).exists()
}

/// All homomorphisms from `a` to `b` (use with small structures only).
pub fn all_homs(a: &Structure, b: &Structure) -> Vec<Vec<Elem>> {
    HomSearch::new(a, b).enumerate(usize::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hp_structures::generators::{
        complete_digraph, directed_cycle, directed_path, self_loop, transitive_tournament,
    };
    use hp_structures::{Structure, Vocabulary};

    #[test]
    fn path_to_cycle_and_back() {
        let p = directed_path(5);
        let c = directed_cycle(3);
        let h = find_hom(&p, &c).expect("path maps into cycle");
        assert!(p.is_homomorphism(&h, &c));
        assert!(!hom_exists(&c, &p));
    }

    #[test]
    fn everything_maps_to_self_loop() {
        let l = self_loop();
        for n in 1..6 {
            assert!(hom_exists(&directed_path(n), &l));
            assert!(hom_exists(&directed_cycle(n.max(1)), &l));
        }
        // But the loop maps only to structures with a loop-reachable cycle:
        assert!(!hom_exists(&l, &directed_path(4)));
        assert!(hom_exists(&l, &self_loop()));
    }

    #[test]
    fn cycle_divisibility() {
        // C_6 → C_3 (wrap twice) but C_3 ↛ C_6 and C_4 ↛ C_3... C_4 → C_? :
        // directed cycles: C_a → C_b iff b divides a.
        assert!(hom_exists(&directed_cycle(6), &directed_cycle(3)));
        assert!(!hom_exists(&directed_cycle(3), &directed_cycle(6)));
        assert!(!hom_exists(&directed_cycle(4), &directed_cycle(3)));
        assert!(hom_exists(&directed_cycle(9), &directed_cycle(3)));
    }

    #[test]
    fn coloring_as_homomorphism() {
        // The undirected 5-cycle is 3-colorable but not 2-colorable:
        // hom(C5_sym, K3) exists, hom(C5_sym, K2) does not.
        let c5 = hp_structures::generators::cycle(5).to_structure();
        assert!(hom_exists(&c5, &complete_digraph(3)));
        assert!(!hom_exists(&c5, &complete_digraph(2)));
        // Even cycles are 2-colorable.
        let c6 = hp_structures::generators::cycle(6).to_structure();
        assert!(hom_exists(&c6, &complete_digraph(2)));
    }

    #[test]
    fn pins_respected() {
        let p = directed_path(3); // 0->1->2
        let t = transitive_tournament(4);
        // Pin start at 1: 1 -> 2 -> 3 fits in the tournament.
        let h = HomSearch::new(&p, &t)
            .pin(Elem(0), Elem(1))
            .solve()
            .expect("pinned hom exists");
        assert_eq!(h, vec![Elem(1), Elem(2), Elem(3)]);
        assert!(p.is_homomorphism(&h, &t));
        // Pin start at 2: only one forward step remains, but two are needed.
        assert!(!HomSearch::new(&p, &t).pin(Elem(0), Elem(2)).exists());
        // Pin start at 3 (the sink): impossible.
        assert!(!HomSearch::new(&p, &t).pin(Elem(0), Elem(3)).exists());
        // Contradictory pin outside the domain after restriction:
        let mut allowed = BitSet::new(4);
        allowed.insert(0);
        allowed.insert(1);
        assert!(!HomSearch::new(&p, &t)
            .restrict_codomain(&allowed)
            .pin(Elem(0), Elem(3))
            .exists());
    }

    #[test]
    fn forbid_value_blocks_retract() {
        // Path 0->1->2 into itself avoiding element 0: map i -> i doesn't
        // work (0 forbidden); need 0->? with edge into image... impossible
        // to fold a directed path of length 2 into its last edge? 0->1->2
        // avoiding 0: h(0),h(1),h(2) in {1,2} with edges h0->h1, h1->h2; only
        // edge inside {1,2} is 1->2, so h0=1,h1=2, then h1->h2 needs 2->?;
        // none. Unsatisfiable.
        let p = directed_path(3);
        assert!(!HomSearch::new(&p, &p).forbid_value(Elem(0)).exists());
        // But avoiding the *middle* is also impossible; path is a core.
        assert!(!HomSearch::new(&p, &p).forbid_value(Elem(1)).exists());
        assert!(!HomSearch::new(&p, &p).forbid_value(Elem(2)).exists());
    }

    #[test]
    fn count_homs_path_into_tournament() {
        // Homs of 0->1 into transitive tournament on 3 = number of edges = 3.
        let p = directed_path(2);
        let t = transitive_tournament(3);
        assert_eq!(HomSearch::new(&p, &t).count(usize::MAX), 3);
        // Limit respected.
        assert_eq!(HomSearch::new(&p, &t).count(2), 2);
    }

    #[test]
    fn enumerate_all_homs_of_edgeless() {
        // With no constraints, homs = all maps: 2 elements -> 3 values = 9.
        let a = Structure::new(Vocabulary::digraph(), 2);
        let b = complete_digraph(3);
        assert_eq!(all_homs(&a, &b).len(), 9);
    }

    #[test]
    fn injective_search_is_subgraph_embedding() {
        let p = directed_path(3);
        let t = transitive_tournament(3);
        // Injective homs of 0->1->2 into the tournament: only 0,1,2 in order.
        let hs = HomSearch::new(&p, &t).injective().enumerate(usize::MAX);
        assert_eq!(hs.len(), 1);
        assert_eq!(hs[0], vec![Elem(0), Elem(1), Elem(2)]);
        // Injective into a smaller structure: impossible.
        assert!(!HomSearch::new(&p, &directed_cycle(2)).injective().exists());
    }

    #[test]
    fn surjective_search() {
        let c6 = directed_cycle(6);
        let c3 = directed_cycle(3);
        let h = HomSearch::new(&c6, &c3)
            .surjective()
            .solve()
            .expect("C6 wraps onto C3");
        let mut seen = BitSet::new(3);
        for e in &h {
            seen.insert(e.index());
        }
        assert_eq!(seen.len(), 3);
        // C3 cannot surject onto C6 (too few elements).
        assert!(!HomSearch::new(&c3, &c6).surjective().exists());
        // Path(3) maps into path(4)... wait sizes: surjective from smaller
        // is pruned immediately.
        assert!(!HomSearch::new(&directed_path(2), &directed_path(3))
            .surjective()
            .exists());
    }

    #[test]
    fn try_new_reports_vocabulary_mismatch() {
        let a = Structure::new(Vocabulary::digraph(), 2);
        let b = Structure::new(Vocabulary::from_pairs([("R", 3)]), 2);
        let err = HomSearch::try_new(&a, &b).err().expect("mismatch detected");
        assert!(matches!(err, HomError::VocabularyMismatch { .. }));
        assert!(err.to_string().contains("across vocabularies"));
        assert!(HomSearch::try_new(&a, &a).is_ok());
    }

    #[test]
    fn budgeted_search_matches_unbudgeted_when_fuel_suffices() {
        use hp_guard::Budget;
        let p = directed_path(4);
        let c = directed_cycle(3);
        let s = HomSearch::new(&p, &c);
        let solved = s.solve_with_budget(&Budget::unlimited()).unwrap();
        assert_eq!(solved, s.solve());
        assert_eq!(
            s.enumerate_with_budget(usize::MAX, &Budget::unlimited())
                .unwrap(),
            s.enumerate(usize::MAX)
        );
        assert_eq!(
            s.count_with_budget(usize::MAX, &Budget::unlimited())
                .unwrap(),
            s.count(usize::MAX)
        );
        assert!(s.exists_with_budget(&Budget::fuel(1_000_000)).unwrap());
    }

    #[test]
    fn exhausted_enumeration_carries_partial_lower_bound() {
        use hp_guard::{Budget, Resource};
        // Homs of an edgeless pair into K3: 9 total; a tiny budget finds
        // some prefix of them deterministically.
        let a = Structure::new(Vocabulary::digraph(), 2);
        let b = complete_digraph(3);
        let s = HomSearch::new(&a, &b);
        let all = s.enumerate(usize::MAX);
        assert_eq!(all.len(), 9);
        let e = s
            .enumerate_with_budget(usize::MAX, &Budget::fuel(4))
            .expect_err("4 nodes cannot visit all 9 solutions");
        assert_eq!(e.resource, Resource::Fuel);
        assert!(e.partial.len() < 9);
        // The partial is a prefix of the deterministic full enumeration.
        assert_eq!(e.partial[..], all[..e.partial.len()]);
        // Deterministic for a fixed injection point.
        let e2 = s
            .enumerate_with_budget(usize::MAX, &Budget::fuel(4))
            .unwrap_err();
        assert_eq!(e.partial, e2.partial);
        assert_eq!(e.spent, e2.spent);
    }

    #[test]
    fn empty_structures() {
        let v = Vocabulary::digraph();
        let empty = Structure::new(v.clone(), 0);
        let one = Structure::new(v, 1);
        // Hom from empty structure to anything: the empty map.
        assert!(hom_exists(&empty, &one));
        assert!(hom_exists(&empty, &empty));
        // Hom from nonempty to empty: impossible.
        assert!(!hom_exists(&one, &empty));
    }

    #[test]
    fn repeated_variables_in_tuples() {
        // Source has tuple R(x, x): the image must be a loop.
        let v = Vocabulary::digraph();
        let mut a = Structure::new(v, 1);
        a.add_tuple_ids(0, &[0, 0]).unwrap();
        assert!(!hom_exists(&a, &directed_cycle(3)));
        assert!(hom_exists(&a, &self_loop()));
    }

    #[test]
    fn multi_relation_structures() {
        let v = Vocabulary::from_pairs([("E", 2), ("P", 1)]);
        let mut a = Structure::new(v.clone(), 2);
        a.add_tuple_ids(0, &[0, 1]).unwrap();
        a.add_tuple_ids(1, &[1]).unwrap(); // endpoint marked P
        let mut b = Structure::new(v.clone(), 3);
        b.add_tuple_ids(0, &[0, 1]).unwrap();
        b.add_tuple_ids(0, &[1, 2]).unwrap();
        b.add_tuple_ids(1, &[2]).unwrap(); // only 2 is P
                                           // a must map edge onto 1->2 because P forces the endpoint.
        let h = find_hom(&a, &b).unwrap();
        assert_eq!(h, vec![Elem(1), Elem(2)]);
    }
}
