//! Cores and retracts (§6.2).
//!
//! A substructure **B** of **A** is a *core of* **A** if there is a
//! homomorphism from **A** to **B** but none from **A** to any proper
//! substructure of **B**. Every finite structure has a core, unique up to
//! isomorphism, and is homomorphically equivalent to it.

use hp_guard::{Budget, Budgeted, Gauge, Stop};
use hp_structures::{BitSet, Elem, Structure};

use crate::search::HomSearch;

/// The core of a structure, together with the witnessing retraction.
#[derive(Clone, Debug)]
pub struct Core {
    /// The core itself (universe renumbered densely).
    pub structure: Structure,
    /// For each element of the *original* structure, the core element
    /// (in the core's numbering) it retracts to.
    pub retraction: Vec<Elem>,
    /// For each element of the core, the original element it came from.
    pub old_of_new: Vec<Elem>,
}

/// Try to find a retract of `a` that avoids the element `e`: a homomorphism
/// `h : a → a` whose image excludes `e`. Returns the map if one exists.
///
/// This is the elementary step of the core computation: `a` has a proper
/// retract iff some single element can be avoided (folding away one element
/// at a time reaches the core).
pub fn retract_avoiding(a: &Structure, e: Elem) -> Option<Vec<Elem>> {
    HomSearch::new(a, a).forbid_value(e).solve()
}

/// True when `a` is its own core: no homomorphism from `a` into a proper
/// substructure of `a`.
///
/// It suffices to check single-element-avoiding retracts: if `a` folds into
/// any proper substructure, the image misses some element.
pub fn is_core(a: &Structure) -> bool {
    a.elements().all(|e| retract_avoiding(a, e).is_none())
}

/// Budgeted [`is_core`]: one shared budget across all the per-element
/// retract searches (each charging one fuel unit per search node). An
/// `Ok(bool)` answer is exact; exhaustion means the remaining retract
/// searches never ran, so nothing was decided and the partial is `()`.
pub fn is_core_with_budget(a: &Structure, budget: &Budget) -> Budgeted<bool, ()> {
    let mut gauge = budget.gauge();
    for e in a.elements() {
        match HomSearch::new(a, a)
            .forbid_value(e)
            .solve_gauged(&mut gauge)
        {
            Ok(Some(_)) => return Ok(false),
            Ok(None) => {}
            Err(stop) => return Err(stop.with_partial(())),
        }
    }
    Ok(true)
}

/// Compute the core of `a` (unique up to isomorphism), with the retraction
/// map from `a` onto it.
///
/// Algorithm: repeatedly find a single-element-avoiding endo-retract, take
/// the induced substructure on its image, and compose the maps; stop when no
/// element can be avoided. Each round removes at least one element, so at
/// most `|A|` rounds run; each round is a homomorphism search.
pub fn core_of(a: &Structure) -> Core {
    let mut gauge = Budget::unlimited().gauge();
    match core_of_gauged(a, &mut gauge) {
        Ok(core) => core,
        Err(_) => unreachable!("an unlimited budget cannot exhaust"),
    }
}

/// Budgeted [`core_of`]: the retract searches charge one shared budget
/// (one fuel unit per search node). On exhaustion the partial is the
/// **partially folded core** — still a genuine retract of `a` with a valid
/// retraction map, homomorphically equivalent to `a`, just possibly not
/// minimal. Resuming is as simple as calling [`core_of_with_budget`] again
/// on `partial.structure` and composing the retractions.
// The Err variant is deliberately heavy: exhaustion carries the partially
// folded core so the caller keeps the work already done.
#[allow(clippy::result_large_err)]
pub fn core_of_with_budget(a: &Structure, budget: &Budget) -> Budgeted<Core, Core> {
    let mut gauge = budget.gauge();
    core_of_gauged(a, &mut gauge).map_err(|(partial, stop)| stop.with_partial(partial))
}

/// The gauge-threaded fold loop behind [`core_of`] and
/// [`core_of_with_budget`]. On exhaustion returns the fold state reached
/// so far as a [`Core`] (a valid retract, possibly not minimal).
#[allow(clippy::result_large_err)]
fn core_of_gauged(a: &Structure, gauge: &mut Gauge) -> Result<Core, (Core, Stop)> {
    let mut current = a.clone();
    // retraction[i] = current element that original element i maps to,
    // expressed in current's numbering.
    let mut retraction: Vec<Elem> = (0..a.universe_size()).map(Elem::from).collect();
    // old_of_new[j] = original element behind current element j.
    let mut old_of_new: Vec<Elem> = (0..a.universe_size()).map(Elem::from).collect();
    'outer: loop {
        for e in current.elements() {
            let found = match HomSearch::new(&current, &current)
                .forbid_value(e)
                .solve_gauged(gauge)
            {
                Ok(h) => h,
                Err(stop) => {
                    return Err((
                        Core {
                            structure: current,
                            retraction,
                            old_of_new,
                        },
                        stop,
                    ))
                }
            };
            if let Some(h) = found {
                // Iterate h to an idempotent power: folding maps compose,
                // so h^(2^j) shrinks the image to the h-recurrent elements
                // in O(log n) squarings — collapsing what would otherwise
                // take one search round per dropped element.
                let mut h = h;
                loop {
                    let squared: Vec<Elem> = h.iter().map(|&v| h[v.index()]).collect();
                    if squared == h {
                        break;
                    }
                    let img = |m: &[Elem]| {
                        let mut s = BitSet::new(m.len());
                        for &v in m {
                            s.insert(v.index());
                        }
                        s.len()
                    };
                    let shrink = img(&squared) < img(&h);
                    h = squared;
                    if !shrink {
                        break;
                    }
                }
                // Restrict to the image of h.
                let mut image = BitSet::new(current.universe_size());
                for &v in &h {
                    image.insert(v.index());
                }
                let (next, old_of_new_step) = current.induced(&image);
                // new_of_old over current's numbering:
                let mut new_of_old = vec![u32::MAX; current.universe_size()];
                for (new, &old) in old_of_new_step.iter().enumerate() {
                    new_of_old[old.index()] = new as u32;
                }
                for r in retraction.iter_mut() {
                    let via = h[r.index()];
                    *r = Elem(new_of_old[via.index()]);
                }
                old_of_new = old_of_new_step
                    .iter()
                    .map(|&cur| old_of_new[cur.index()])
                    .collect();
                current = next;
                continue 'outer;
            }
        }
        break;
    }
    debug_assert!(a.is_homomorphism(
        &retraction.iter().map(|e| Elem(e.0)).collect::<Vec<_>>(),
        &current
    ));
    Ok(Core {
        structure: current,
        retraction,
        old_of_new,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iso::{are_homomorphically_equivalent, are_isomorphic};
    use hp_structures::generators::{
        bicycle, clique, complete_bipartite, cycle, directed_cycle, directed_path, grid, wheel,
    };

    #[test]
    fn directed_path_is_core() {
        assert!(is_core(&directed_path(4)));
        let c = core_of(&directed_path(4));
        assert_eq!(c.structure.universe_size(), 4);
    }

    #[test]
    fn directed_cycles_are_cores() {
        for n in [1usize, 2, 3, 5, 6] {
            assert!(is_core(&directed_cycle(n)), "C_{n} should be a core");
        }
    }

    #[test]
    fn core_of_bipartite_is_k2() {
        // §6.2: the core of every non-trivial bipartite graph is K_2.
        for g in [
            complete_bipartite(3, 4),
            cycle(6),
            grid(3, 4),
            hp_structures::generators::star(5),
        ] {
            let c = core_of(&g.to_structure());
            assert_eq!(c.structure.universe_size(), 2, "bipartite core is K2");
            assert_eq!(c.structure.total_tuples(), 2); // both orientations
        }
    }

    #[test]
    fn core_of_odd_cycle_is_itself() {
        let c5 = cycle(5).to_structure();
        assert!(is_core(&c5));
        assert_eq!(core_of(&c5).structure.universe_size(), 5);
    }

    #[test]
    fn core_of_bicycle_is_k4() {
        // §6.2: B_n = W_n + K_4 has core K_4 (wheels are 4-colorable).
        for n in [3usize, 5, 6, 7] {
            let b = bicycle(n).to_structure();
            let c = core_of(&b);
            assert!(
                are_isomorphic(&c.structure, &clique(4).to_structure()),
                "core of B_{n} should be K_4"
            );
        }
    }

    #[test]
    fn odd_wheels_are_cores() {
        // §6.2: W_n is a core when n is odd (n >= 5; W_3 = K_4 is also a core).
        for n in [3usize, 5, 7] {
            assert!(is_core(&wheel(n).to_structure()), "W_{n} should be a core");
        }
        // Even wheels are NOT cores: W_4 is 3-colorable? W_4's rim C_4 is
        // 2-colorable, plus hub = 3 colors, so W_4 folds onto K_3... which is
        // its triangle subgraph.
        let w4 = wheel(4).to_structure();
        assert!(!is_core(&w4));
        let c = core_of(&w4);
        assert!(are_isomorphic(&c.structure, &clique(3).to_structure()));
    }

    #[test]
    fn retraction_is_homomorphism_onto_core() {
        let g = grid(3, 3).to_structure();
        let c = core_of(&g);
        // The retraction must be a hom from g onto the core.
        assert!(g.is_homomorphism(&c.retraction, &c.structure));
        // And the core must embed back (it's an induced substructure).
        assert!(are_homomorphically_equivalent(&g, &c.structure));
        // Idempotent: core of core is itself.
        let cc = core_of(&c.structure);
        assert!(are_isomorphic(&c.structure, &cc.structure));
        // old_of_new maps into the original universe.
        assert!(c.old_of_new.iter().all(|e| e.index() < g.universe_size()));
    }

    #[test]
    fn core_unique_up_to_iso_across_presentations() {
        // Two different bipartite graphs have isomorphic cores (K_2).
        let a = core_of(&cycle(8).to_structure());
        let b = core_of(&grid(2, 5).to_structure());
        assert!(are_isomorphic(&a.structure, &b.structure));
    }

    #[test]
    fn core_of_disjoint_union_with_absorbing_part() {
        // P3 ⊕ C3 (directed): P3 → C3, so the core is C3.
        let u = directed_path(3).disjoint_union(&directed_cycle(3)).unwrap();
        let c = core_of(&u);
        assert!(are_isomorphic(&c.structure, &directed_cycle(3)));
    }

    #[test]
    fn retract_avoiding_none_on_cores() {
        let c3 = directed_cycle(3);
        for e in c3.elements() {
            assert!(retract_avoiding(&c3, e).is_none());
        }
    }
}
