//! Deterministic canonical labelling of (pointed) structures.
//!
//! [`canonical_invariant`](crate::canonical_invariant) is a cheap but
//! *incomplete* fingerprint: non-isomorphic structures can collide. This
//! module computes a **complete** invariant — a certificate equal for two
//! pointed structures iff they are isomorphic (as pointed structures over
//! the same vocabulary) — via the classic individualization-refinement
//! scheme behind nauty-style canonical labelling:
//!
//! 1. colour elements by their positions in the distinguished tuple;
//! 2. refine the colouring to a fixpoint, where each element's new colour
//!    is determined by its old colour and the multiset of coloured tuples
//!    it occurs in (a Weisfeiler–Leman step over relation tuples);
//! 3. if the colouring is not discrete, *individualize* each member of the
//!    first smallest non-singleton class in turn, recurse, and keep the
//!    lexicographically least certificate.
//!
//! The certificate is the tuple list of the structure rewritten in the
//! canonical element order, so equal certificates literally describe the
//! same structure. Worst-case cost is factorial (highly symmetric inputs);
//! every search node charges the gauge, so callers bound the work with an
//! `hp-guard` budget and treat exhaustion as "no key" rather than a wrong
//! answer.

use hp_guard::{Budget, Budgeted, Gauge, Stop};
use hp_structures::{Elem, Structure};

/// A canonical form: the canonical relabelling together with the
/// certificate (a complete isomorphism invariant) it induces.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CanonicalForm {
    /// `order[p]` is the original element placed at canonical position `p`.
    pub order: Vec<Elem>,
    /// The structure (and distinguished tuple) rewritten in canonical
    /// numbering: equal certificates ⟺ isomorphic pointed structures
    /// (over vocabularies with identically named symbols).
    pub certificate: Vec<u64>,
}

impl CanonicalForm {
    /// A 128-bit key condensing the certificate (two independent FNV-1a
    /// lanes). Keys of isomorphic pointed structures are identical;
    /// distinct cores collide only with hash-collision probability, so
    /// exact callers (answer caches) should confirm a key hit with
    /// [`are_isomorphic_pointed`](crate::are_isomorphic_pointed) or a
    /// hom-equivalence check.
    pub fn key(&self) -> u128 {
        fnv128(&self.certificate)
    }
}

/// Canonical form of a plain (unpointed) structure.
pub fn canonical_form(a: &Structure) -> CanonicalForm {
    canonical_form_pointed(a, &[])
}

/// Canonical form of the pointed structure `(a, points)`.
///
/// Two pointed structures over equal vocabularies get equal certificates
/// iff [`are_isomorphic_pointed`](crate::are_isomorphic_pointed) holds.
pub fn canonical_form_pointed(a: &Structure, points: &[Elem]) -> CanonicalForm {
    let mut gauge = Budget::unlimited().gauge();
    match canonical_form_pointed_gauged(a, points, &mut gauge) {
        Ok(c) => c,
        Err(_) => unreachable!("an unlimited budget cannot exhaust"),
    }
}

/// Budgeted [`canonical_form_pointed`]: each refinement round and each
/// individualization branch charges the budget. Exhaustion aborts the
/// search with no partial answer (a partially explored tree proves
/// nothing about minimality).
pub fn canonical_form_pointed_with_budget(
    a: &Structure,
    points: &[Elem],
    budget: &Budget,
) -> Budgeted<CanonicalForm, ()> {
    let mut gauge = budget.gauge();
    canonical_form_pointed_gauged(a, points, &mut gauge).map_err(|stop| stop.with_partial(()))
}

/// Gauge-threaded [`canonical_form_pointed`] for callers sharing one
/// budget across many labellings (core keys, model deduplication).
pub fn canonical_form_pointed_gauged(
    a: &Structure,
    points: &[Elem],
    gauge: &mut Gauge,
) -> Result<CanonicalForm, Stop> {
    let n = a.universe_size();
    // Occurrence table: for each element, the (relation, tuple index,
    // position) triples it appears in.
    let mut occ: Vec<Vec<(usize, usize, usize)>> = vec![Vec::new(); n];
    let mut tuples: Vec<(usize, Vec<Elem>)> = Vec::new();
    for (sym, rel) in a.relations() {
        for t in rel.iter() {
            let ti = tuples.len();
            for (p, e) in t.iter().enumerate() {
                occ[e.index()].push((sym.index(), ti, p));
            }
            tuples.push((sym.index(), t.to_vec()));
        }
    }
    // Initial colours: the element's sorted list of positions in `points`
    // (distinguished elements are separated from anonymous ones and from
    // each other by where they sit in the tuple).
    let mut init: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (p, &e) in points.iter().enumerate() {
        init[e.index()].push(p);
    }
    let colors = normalize(&init.iter().map(|s| s.as_slice()).collect::<Vec<_>>());
    let mut best: Option<Vec<u64>> = None;
    let mut best_order: Vec<Elem> = Vec::new();
    search(
        a,
        points,
        &tuples,
        &occ,
        colors,
        gauge,
        &mut best,
        &mut best_order,
    )?;
    Ok(CanonicalForm {
        order: best_order,
        certificate: best.unwrap_or_default(),
    })
}

/// One individualization-refinement search node: refine, then either emit
/// a leaf certificate or branch on the first smallest non-singleton class.
#[allow(clippy::too_many_arguments)]
fn search(
    a: &Structure,
    points: &[Elem],
    tuples: &[(usize, Vec<Elem>)],
    occ: &[Vec<(usize, usize, usize)>],
    mut colors: Vec<usize>,
    gauge: &mut Gauge,
    best: &mut Option<Vec<u64>>,
    best_order: &mut Vec<Elem>,
) -> Result<(), Stop> {
    gauge.tick(1)?;
    refine(tuples, occ, &mut colors, gauge)?;
    let n = colors.len();
    let classes = color_classes(&colors);
    // Pick the first smallest class with more than one member.
    let branch = classes
        .iter()
        .filter(|c| c.len() > 1)
        .min_by_key(|c| c.len());
    let Some(class) = branch else {
        // Discrete colouring: colours are a permutation.
        let mut order: Vec<Elem> = vec![Elem(0); n];
        for (e, &c) in colors.iter().enumerate() {
            order[c] = Elem(e as u32);
        }
        let cert = certificate_of(a, points, &colors);
        let improves = match best {
            Some(b) => cert < *b,
            None => true,
        };
        if improves {
            *best = Some(cert);
            *best_order = order;
        }
        return Ok(());
    };
    // Interchangeable elements — same colour and no tuple occurrences —
    // are related by an automorphism swapping any two of them, so a single
    // branch suffices. This collapses the factorial blow-up on isolated
    // padding elements.
    let candidates: &[Elem] = if class.iter().all(|e| occ[e.index()].is_empty()) {
        &class[..1]
    } else {
        class
    };
    for &e in candidates {
        let mut child = colors.clone();
        // Individualize: give `e` a fresh colour preceding its class
        // (2c+1 for `e`, 2c+2 for everyone else — all distinct).
        for c in child.iter_mut() {
            *c = *c * 2 + 2;
        }
        child[e.index()] -= 1;
        let child = renumber(&child);
        search(a, points, tuples, occ, child, gauge, best, best_order)?;
    }
    Ok(())
}

/// Weisfeiler–Leman-style refinement to a fixpoint: an element's signature
/// is its colour plus the sorted list of (relation, position, tuple colour
/// vector) descriptors of its occurrences.
fn refine(
    tuples: &[(usize, Vec<Elem>)],
    occ: &[Vec<(usize, usize, usize)>],
    colors: &mut Vec<usize>,
    gauge: &mut Gauge,
) -> Result<(), Stop> {
    /// One occurrence descriptor: (relation, position, tuple colours).
    type Descriptor = (usize, usize, Vec<usize>);
    let n = colors.len();
    loop {
        gauge.tick(n as u64)?;
        let mut sigs: Vec<(usize, Vec<Descriptor>)> = Vec::with_capacity(n);
        for e in 0..n {
            let mut ds: Vec<Descriptor> = occ[e]
                .iter()
                .map(|&(r, ti, p)| {
                    let tc: Vec<usize> = tuples[ti].1.iter().map(|&x| colors[x.index()]).collect();
                    (r, p, tc)
                })
                .collect();
            ds.sort_unstable();
            sigs.push((colors[e], ds));
        }
        let next = normalize(&sigs.iter().collect::<Vec<_>>());
        if next == *colors {
            return Ok(());
        }
        *colors = next;
    }
}

/// Group elements by colour, in colour order.
fn color_classes(colors: &[usize]) -> Vec<Vec<Elem>> {
    let k = colors.iter().copied().max().map_or(0, |m| m + 1);
    let mut classes = vec![Vec::new(); k];
    for (e, &c) in colors.iter().enumerate() {
        classes[c].push(Elem(e as u32));
    }
    classes
}

/// Dense colour ids from arbitrary orderable signatures, by sorted rank.
fn normalize<S: Ord>(sigs: &[S]) -> Vec<usize> {
    let mut sorted: Vec<&S> = sigs.iter().collect();
    sorted.sort();
    sorted.dedup();
    sigs.iter()
        .map(|s| sorted.binary_search(&s).expect("signature present"))
        .collect()
}

/// Dense renumbering of a colour vector preserving order.
fn renumber(colors: &[usize]) -> Vec<usize> {
    normalize(colors)
}

/// The certificate induced by a discrete colouring (a permutation):
/// vocabulary shape, universe size, relabelled sorted tuples, relabelled
/// distinguished tuple.
fn certificate_of(a: &Structure, points: &[Elem], perm: &[usize]) -> Vec<u64> {
    let mut cert: Vec<u64> = vec![a.universe_size() as u64, points.len() as u64];
    for (sym, rel) in a.relations() {
        let s = a.vocab().symbol(sym);
        cert.push(fnv64(s.name.as_bytes()));
        cert.push(s.arity as u64);
        cert.push(rel.len() as u64);
        let mut rows: Vec<Vec<u64>> = rel
            .iter()
            .map(|t| t.iter().map(|e| perm[e.index()] as u64).collect())
            .collect();
        rows.sort_unstable();
        for r in rows {
            cert.extend(r);
        }
    }
    for &p in points {
        cert.push(perm[p.index()] as u64);
    }
    cert
}

/// FNV-1a over a byte slice.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Two independent 64-bit FNV-1a lanes (distinct seeds) over the
/// certificate words, packed into a `u128`.
fn fnv128(words: &[u64]) -> u128 {
    let mut lo: u64 = 0xcbf2_9ce4_8422_2325;
    let mut hi: u64 = 0x6c62_272e_07bb_0142;
    for &w in words {
        for b in w.to_le_bytes() {
            lo ^= b as u64;
            lo = lo.wrapping_mul(0x0000_0100_0000_01b3);
            hi ^= b as u64;
            hi = hi.wrapping_mul(0x0000_0100_0000_01b3);
            hi = hi.rotate_left(29);
        }
    }
    ((hi as u128) << 64) | lo as u128
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iso::are_isomorphic_pointed;
    use hp_structures::generators::{directed_cycle, directed_path};
    use hp_structures::Vocabulary;

    /// Deterministic xorshift for reproducible random structures.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    fn random_digraph(rng: &mut Rng, n: u32, edges: u32) -> Structure {
        let mut s = Structure::new(Vocabulary::digraph(), n as usize);
        for _ in 0..edges {
            let a = rng.below(n as u64) as u32;
            let b = rng.below(n as u64) as u32;
            s.add_tuple_ids(0, &[a, b]).unwrap();
        }
        s
    }

    fn relabel(a: &Structure, perm: &[u32]) -> Structure {
        let mut s = Structure::new(a.vocab().clone(), a.universe_size());
        for (sym, rel) in a.relations() {
            for t in rel.iter() {
                let m: Vec<u32> = t.iter().map(|e| perm[e.index()]).collect();
                s.add_tuple_ids(sym.index(), &m).unwrap();
            }
        }
        s
    }

    fn random_perm(rng: &mut Rng, n: usize) -> Vec<u32> {
        let mut p: Vec<u32> = (0..n as u32).collect();
        for i in (1..n).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            p.swap(i, j);
        }
        p
    }

    #[test]
    fn certificate_invariant_under_relabelling() {
        let mut rng = Rng(0x5eed);
        for round in 0..60 {
            let n = 2 + (round % 6) as u32;
            let a = random_digraph(&mut rng, n, n + 2);
            let perm = random_perm(&mut rng, n as usize);
            let b = relabel(&a, &perm);
            let pa: Vec<Elem> = vec![Elem(0), Elem(1 % n)];
            let pb: Vec<Elem> = pa.iter().map(|e| Elem(perm[e.index()])).collect();
            let ca = canonical_form_pointed(&a, &pa);
            let cb = canonical_form_pointed(&b, &pb);
            assert_eq!(ca.certificate, cb.certificate, "round {round}");
            assert_eq!(ca.key(), cb.key());
        }
    }

    #[test]
    fn certificate_agrees_with_pointed_isomorphism() {
        let mut rng = Rng(0xfeedbeef);
        let (mut same, mut diff) = (0usize, 0usize);
        for _ in 0..80 {
            let n = 2 + rng.below(4) as u32;
            let a = random_digraph(&mut rng, n, n + 1);
            let b = random_digraph(&mut rng, n, n + 1);
            let pa = vec![Elem(rng.below(n as u64) as u32)];
            let pb = vec![Elem(rng.below(n as u64) as u32)];
            let iso = are_isomorphic_pointed(&a, &pa, &b, &pb);
            let eq = canonical_form_pointed(&a, &pa).certificate
                == canonical_form_pointed(&b, &pb).certificate;
            assert_eq!(iso, eq);
            if iso {
                same += 1;
            } else {
                diff += 1;
            }
        }
        // The sample must exercise both outcomes to mean anything.
        assert!(diff > 0);
        let _ = same;
    }

    #[test]
    fn distinguishes_what_the_cheap_invariant_cannot() {
        // C_6 vs C_3 ⊕ C_3 share the cheap invariant but not the
        // certificate.
        let c6 = directed_cycle(6);
        let cc = directed_cycle(3)
            .disjoint_union(&directed_cycle(3))
            .unwrap();
        assert_eq!(
            crate::canonical_invariant(&c6),
            crate::canonical_invariant(&cc)
        );
        assert_ne!(
            canonical_form(&c6).certificate,
            canonical_form(&cc).certificate
        );
    }

    #[test]
    fn points_matter() {
        // (P_3, source) vs (P_3, sink) are not pointed-isomorphic.
        let p = directed_path(3);
        let source = canonical_form_pointed(&p, &[Elem(0)]);
        let sink = canonical_form_pointed(&p, &[Elem(2)]);
        assert_ne!(source.certificate, sink.certificate);
        // Unpointed, the path is of course self-isomorphic.
        assert_eq!(
            canonical_form(&p).certificate,
            canonical_form(&p).certificate
        );
    }

    #[test]
    fn order_is_a_permutation_realizing_the_certificate() {
        let mut rng = Rng(7);
        for _ in 0..20 {
            let a = random_digraph(&mut rng, 5, 7);
            let c = canonical_form(&a);
            let mut seen = [false; 5];
            for e in &c.order {
                assert!(!seen[e.index()]);
                seen[e.index()] = true;
            }
            // Relabelling by the canonical order reproduces the
            // certificate with the identity labelling.
            let mut inv = vec![0u32; 5];
            for (p, e) in c.order.iter().enumerate() {
                inv[e.index()] = p as u32;
            }
            let b = relabel(&a, &inv);
            let cb = canonical_form(&b);
            assert_eq!(c.certificate, cb.certificate);
        }
    }

    #[test]
    fn isolated_padding_does_not_blow_up() {
        // 12 isolated elements plus one edge: 12! leaves without the
        // interchangeability shortcut. A small fuel budget suffices.
        let mut s = Structure::new(Vocabulary::digraph(), 14);
        s.add_tuple_ids(0, &[0, 1]).unwrap();
        let c = canonical_form_pointed_with_budget(&s, &[], &Budget::fuel(10_000))
            .expect("interchangeable elements collapse to one branch");
        assert_eq!(c.order.len(), 14);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let c5 = directed_cycle(5);
        let r = canonical_form_pointed_with_budget(&c5, &[], &Budget::fuel(3));
        assert!(r.is_err());
        // And the same computation succeeds with room to breathe.
        assert!(canonical_form_pointed_with_budget(&c5, &[], &Budget::fuel(100_000)).is_ok());
    }
}
