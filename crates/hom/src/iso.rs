//! Isomorphism and homomorphic equivalence.

use hp_structures::Structure;

use crate::search::{hom_exists, HomSearch};

/// A cheap isomorphism-invariant fingerprint: universe size, per-relation
/// tuple counts, and the sorted Gaifman degree sequence. Structures with
/// different invariants are never isomorphic; equal invariants are only a
/// candidate match.
pub fn canonical_invariant(a: &Structure) -> (usize, Vec<usize>, Vec<usize>) {
    let sizes: Vec<usize> = a.relations().map(|(_, r)| r.len()).collect();
    let g = a.gaifman_graph();
    let mut degs: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();
    degs.sort_unstable();
    (a.universe_size(), sizes, degs)
}

/// Exact isomorphism test.
///
/// Uses the fact that between structures of equal universe size with equal
/// per-relation tuple counts, every **injective homomorphism is an
/// isomorphism**: an injective map sends distinct tuples to distinct tuples,
/// so `|h(R^A)| = |R^A| = |R^B|` forces `h(R^A) = R^B`, i.e. `h` also
/// reflects every relation.
pub fn are_isomorphic(a: &Structure, b: &Structure) -> bool {
    if a.vocab() != b.vocab() || canonical_invariant(a) != canonical_invariant(b) {
        return false;
    }
    if a.universe_size() == 0 {
        return true;
    }
    HomSearch::new(a, b).injective().exists()
}

/// Homomorphic equivalence (§2.1): homs both ways.
pub fn are_homomorphically_equivalent(a: &Structure, b: &Structure) -> bool {
    hom_exists(a, b) && hom_exists(b, a)
}

/// Count endomorphisms of `a` (up to `limit`). Every structure has at
/// least the identity.
pub fn endomorphism_count(a: &Structure, limit: usize) -> usize {
    HomSearch::new(a, a).count(limit)
}

/// A structure is **rigid** when its only endomorphism is the identity.
/// Rigid structures are cores (no proper retract exists when nothing moves
/// at all).
pub fn is_rigid(a: &Structure) -> bool {
    endomorphism_count(a, 2) == 1
}

/// Isomorphism of **pointed structures** `(A, ā) ≅ (B, b̄)`: an isomorphism
/// carrying the distinguished tuple pointwise. Used to deduplicate minimal
/// models of non-Boolean queries.
pub fn are_isomorphic_pointed(
    a: &Structure,
    pa: &[hp_structures::Elem],
    b: &Structure,
    pb: &[hp_structures::Elem],
) -> bool {
    if pa.len() != pb.len()
        || a.vocab() != b.vocab()
        || canonical_invariant(a) != canonical_invariant(b)
    {
        return false;
    }
    if a.universe_size() == 0 {
        return true;
    }
    let mut s = HomSearch::new(a, b).injective();
    for (&x, &y) in pa.iter().zip(pb) {
        s = s.pin(x, y);
    }
    s.exists()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hp_structures::generators::{
        cycle, directed_cycle, directed_path, grid, path, transitive_tournament,
    };
    use hp_structures::{Structure, Vocabulary};

    #[test]
    fn iso_reflexive_and_relabeling() {
        let c = directed_cycle(5);
        assert!(are_isomorphic(&c, &c));
        // Relabel the cycle: 0->2->4->1->3->0 is again a directed 5-cycle.
        let mut r = Structure::new(Vocabulary::digraph(), 5);
        let order = [0u32, 2, 4, 1, 3];
        for i in 0..5 {
            r.add_tuple_ids(0, &[order[i], order[(i + 1) % 5]]).unwrap();
        }
        assert!(are_isomorphic(&c, &r));
    }

    #[test]
    fn non_iso_same_sizes() {
        // C_6 vs two disjoint C_3's: same vertex count, same edge count,
        // same degree sequence — but not isomorphic.
        let c6 = directed_cycle(6);
        let c3 = directed_cycle(3);
        let cc = c3.disjoint_union(&c3).unwrap();
        assert_eq!(canonical_invariant(&c6), canonical_invariant(&cc));
        assert!(!are_isomorphic(&c6, &cc));
    }

    #[test]
    fn invariant_rejects_quickly() {
        let p = directed_path(4);
        let t = transitive_tournament(4);
        assert_ne!(canonical_invariant(&p), canonical_invariant(&t));
        assert!(!are_isomorphic(&p, &t));
    }

    #[test]
    fn undirected_iso() {
        assert!(are_isomorphic(
            &grid(2, 3).to_structure(),
            &grid(3, 2).to_structure()
        ));
        assert!(!are_isomorphic(
            &path(4).to_structure(),
            &cycle(4).to_structure()
        ));
    }

    #[test]
    fn hom_equivalence_examples() {
        // Directed paths: P_2 and P_5 are hom-equivalent? No: P_5 → P_2
        // fails (length-4 walk needs 4 forward steps... actually P_5 → P_2
        // cannot exist: a path of length 4 cannot fold into a path of length
        // 1 because orientations force progress). C_6 ≈ C_3? No: C_3 ↛ C_6.
        // Even undirected cycles C_4 and C_6 (as symmetric structures) are
        // hom-equivalent to K_2.
        let c4 = cycle(4).to_structure();
        let c6 = cycle(6).to_structure();
        assert!(are_homomorphically_equivalent(&c4, &c6));
        let k2 = cycle(4); // placeholder to keep types; K2:
        let _ = k2;
        let k2 = hp_structures::generators::clique(2).to_structure();
        assert!(are_homomorphically_equivalent(&c4, &k2));
        // Odd cycle is NOT hom-equivalent to K_2 (not 2-colorable).
        let c5 = cycle(5).to_structure();
        assert!(!are_homomorphically_equivalent(&c5, &k2));
    }

    #[test]
    fn rigidity_and_endomorphisms() {
        // Directed paths are rigid: the unique source pins everything.
        assert!(is_rigid(&directed_path(4)));
        // Directed cycles have exactly n endomorphisms (the rotations).
        for n in [3usize, 4, 5] {
            assert_eq!(endomorphism_count(&directed_cycle(n), usize::MAX), n);
            assert!(!is_rigid(&directed_cycle(n)));
        }
        // Rigid ⇒ core.
        assert!(crate::core_impl::is_core(&directed_path(4)));
    }

    #[test]
    fn pointed_isomorphism_respects_points() {
        use hp_structures::Elem;
        let c = directed_cycle(4);
        // (C4, 0) ≅ (C4, 2) via rotation…
        assert!(are_isomorphic_pointed(&c, &[Elem(0)], &c, &[Elem(2)]));
        // …but the pair (0, 1) (adjacent) is not isomorphic to (0, 2)
        // (opposite).
        assert!(are_isomorphic_pointed(
            &c,
            &[Elem(0), Elem(1)],
            &c,
            &[Elem(2), Elem(3)]
        ));
        assert!(!are_isomorphic_pointed(
            &c,
            &[Elem(0), Elem(1)],
            &c,
            &[Elem(0), Elem(2)]
        ));
        // Arity mismatch.
        assert!(!are_isomorphic_pointed(&c, &[Elem(0)], &c, &[]));
    }

    #[test]
    fn empty_structures_isomorphic() {
        let v = Vocabulary::digraph();
        assert!(are_isomorphic(
            &Structure::new(v.clone(), 0),
            &Structure::new(v, 0)
        ));
    }
}
