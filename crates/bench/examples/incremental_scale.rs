//! E-IVM measurement behind the "Incremental maintenance" table in
//! EXPERIMENTS.md: single-source reachability over random EDBs of
//! 10³–10⁶ edges, comparing a full from-scratch fixpoint against
//! counting/DRed maintenance of a [`MaterializedDb`] under single-edge
//! deltas.
//!
//! The workload matches `columnar_scale`: `R(x) :- S(x).` /
//! `R(y) :- R(x), E(x,y).` over `{E/2, S/1}`, `n = m/4` elements,
//! xorshift64* edge stream seeded with `0xE5CA1E`, element 0 marked.
//!
//! Per size, the materialized view is built once; then `K = 20` cycles
//! each insert one fresh random edge and delete it again (two maintenance
//! calls per cycle, so `2K` single-edge deltas total). The reported
//! incremental time is the mean per delta; the full-eval column is a
//! from-scratch `evaluate` on the same structure. After the cycles the
//! maintained IDB is asserted bit-identical to a fresh evaluation.
//!
//! Usage: `incremental_scale [MAX_EXP] [--json PATH]` — rows for
//! 10³ … 10^MAX_EXP edges (default 6; CI passes 5 to keep the smoke run
//! short). With `--json PATH` a machine-readable snapshot (the committed
//! `BENCH_incremental.json`) is written alongside the table.

use std::time::Instant;

use hp_preservation::prelude::*;

/// Deterministic xorshift64* stream, identical to the bench harness.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

fn reach_program() -> Program {
    let v = Vocabulary::from_pairs([("E", 2), ("S", 1)]);
    Program::parse("R(x) :- S(x).\nR(y) :- R(x), E(x,y).", &v).unwrap()
}

/// `n` elements, `m` random directed edges (bulk-loaded through the
/// builder), element 0 marked as the source.
fn random_reach_structure(n: usize, m: usize, seed: u64) -> Structure {
    let v = Vocabulary::from_pairs([("E", 2), ("S", 1)]);
    let mut rng = XorShift(seed | 1);
    let mut b = Structure::builder(v, n).tuple(1, &[0]);
    for _ in 0..m {
        let u = (rng.next() % n as u64) as u32;
        let w = (rng.next() % n as u64) as u32;
        b = b.tuple(0, &[u, w]);
    }
    b.build()
}

fn main() {
    let mut max_exp: u32 = 6;
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--json" {
            json_path = Some(args.next().expect("--json needs a PATH"));
        } else {
            max_exp = a.parse().expect("MAX_EXP must be a small integer");
        }
    }
    assert!((3..=7).contains(&max_exp), "MAX_EXP must be in 3..=7");
    const CYCLES: usize = 20;
    let mut json_rows: Vec<String> = Vec::new();
    let p = reach_program();
    println!(
        "{:>9} {:>9} {:>10} {:>10} {:>12} {:>10} {:>9}",
        "edges", "n", "build_ms", "full_ms", "inc_upd_ms", "speedup", "reached"
    );
    for exp in 3..=max_exp {
        let m = 10usize.pow(exp);
        let n = m / 4;
        let a = random_reach_structure(n, m, 0xE5CA1E);

        let t0 = Instant::now();
        let mut db = MaterializedDb::new(&p, a.clone()).expect("vocab matches");
        let build_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t1 = Instant::now();
        let full = p.evaluate(&a);
        let full_ms = t1.elapsed().as_secs_f64() * 1e3;

        // 20 insert-then-delete cycles of a fresh random edge: 40 deltas.
        let mut rng = XorShift(0xE5CA1E ^ m as u64);
        let empty = EdbDelta::new(p.edb());
        let mut inc_total = 0.0f64;
        let mut deltas = 0usize;
        for _ in 0..CYCLES {
            let u = (rng.next() % n as u64) as u32;
            let w = (rng.next() % n as u64) as u32;
            let mut edge = EdbDelta::new(p.edb());
            edge.push_ids(0, &[u, w]);
            let t = Instant::now();
            p.evaluate_incremental(&mut db, &edge, &empty)
                .expect("insert delta");
            p.evaluate_incremental(&mut db, &empty, &edge)
                .expect("delete delta");
            inc_total += t.elapsed().as_secs_f64() * 1e3;
            deltas += 2;
        }
        let inc_upd_ms = inc_total / deltas as f64;
        let speedup = full_ms / inc_upd_ms;

        // Insert-then-delete of the same edge is a round trip: the
        // maintained view must be bit-identical to a fresh fixpoint.
        assert_eq!(
            db.relations(),
            &full.relations[..],
            "maintained view diverged at m={m}"
        );
        println!(
            "{:>9} {:>9} {:>10.1} {:>10.1} {:>12.4} {:>9.0}x {:>9}",
            m,
            n,
            build_ms,
            full_ms,
            inc_upd_ms,
            speedup,
            full.relations[0].len()
        );
        json_rows.push(format!(
            "    {{\"edges\": {m}, \"n\": {n}, \"build_ms\": {build_ms:.3}, \
             \"full_eval_ms\": {full_ms:.3}, \"inc_upd_ms\": {inc_upd_ms:.4}, \
             \"speedup\": {speedup:.1}, \"reached\": {}}}",
            full.relations[0].len()
        ));
    }

    if let Some(path) = json_path {
        let json = format!(
            "{{\n  \"bench\": \"incremental_scale\",\n  \"workload\": \
             \"single-edge insert/delete maintenance vs full re-evaluation, \
             single-source reachability, xorshift64* edges, n = m/4\",\n  \
             \"cycles_per_size\": {CYCLES},\n  \"rows\": [\n{}\n  ]\n}}\n",
            json_rows.join(",\n")
        );
        std::fs::write(&path, json).expect("write BENCH json");
        println!("wrote {path}");
    }
}
