//! Scaling measurement behind the "Core-based minimization" table in
//! EXPERIMENTS.md: synthetic nonrecursive chain programs of growing rule
//! count, timing the semantic containment scan (HP017–HP020), the
//! certified `--fix` rewrite, and the canonical-core cache key of the
//! goal query.
//!
//! Each size-`n` program is a composition chain `P1 … Pn` over `{E/2}`
//! where every rule carries one redundant body atom (`E(x,w)` folds onto
//! an existing atom, so HP017 fires on every rule) and `P1` has one
//! subsumed extra rule (HP018). The goal `Goal() :- Pn(x,y)` unfolds to
//! an `E`-path of length `n` decorated with pendant edges; its core is
//! the bare path, so the cache key exercises `core_of` on structures of
//! `~2n` elements.
//!
//! Usage: `semantic_scale [MAX_RULES] [--json PATH]` — rows for chain
//! lengths 4, 8, … up to `MAX_RULES` (default 64; CI passes 16 to keep
//! the smoke run short). The pairwise hom-equivalence check HP019 is
//! key-first: every same-arity IDB gets one canonical-core key up front
//! and a pair runs the authoritative hom check only when the keys
//! collide, so all-distinct chains (like this family) pay the quadratic
//! pair stage as `u128` compares. Cost is dominated by computing each
//! IDB's unfolded core once — a doubling costs roughly 15–17×, down
//! from roughly 30× when every pair ran the hom check. With
//! `--json PATH` a machine-readable snapshot (the committed
//! `BENCH_semantic.json`) is written alongside the table.

use std::time::Instant;

use hp_preservation::analysis::{fix_source, goal_core_key, semantic_scan, ProgramFacts};
use hp_preservation::prelude::*;

/// The size-`n` chain program. Every rule has one redundant atom and the
/// base predicate one subsumed rule, so the scan finds `n + 1` issues
/// and the fix removes `n` atoms plus one rule.
fn chain_program_text(n: usize) -> String {
    let mut s = String::new();
    s.push_str("P1(x,y) :- E(x,y), E(x,w).\n");
    // Subsumed by the rule above: E(y,y) only restricts it.
    s.push_str("P1(x,y) :- E(x,y), E(y,y).\n");
    for i in 2..=n {
        s.push_str(&format!("P{i}(x,y) :- E(x,z), P{}(z,y), E(x,w).\n", i - 1));
    }
    s.push_str(&format!("Goal() :- P{n}(x,y).\n"));
    s
}

struct Row {
    rules: usize,
    scan_ms: f64,
    findings: usize,
    fix_ms: f64,
    removed_rules: usize,
    removed_atoms: usize,
    key_ms: f64,
    core_key: String,
}

fn measure(n: usize) -> Row {
    let vocab = Vocabulary::from_pairs([("E", 2)]);
    let text = chain_program_text(n);
    let p = Program::parse(&text, &vocab).expect("chain program parses");
    let facts = ProgramFacts::of_program(&p);

    let t0 = Instant::now();
    let findings = semantic_scan(&facts, &Budget::unlimited())
        .expect("unlimited scan cannot exhaust")
        .len();
    let scan_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t1 = Instant::now();
    let fix = fix_source(&text, Some(&vocab)).expect("chain program fixes");
    let fix_ms = t1.elapsed().as_secs_f64() * 1e3;

    let t2 = Instant::now();
    let key = goal_core_key(&p, &Budget::unlimited())
        .expect("unlimited key cannot exhaust")
        .expect("chain program is nonrecursive with a goal");
    let key_ms = t2.elapsed().as_secs_f64() * 1e3;

    Row {
        rules: p.rules().len(),
        scan_ms,
        findings,
        fix_ms,
        removed_rules: fix.removed.len(),
        removed_atoms: fix.removed_atoms.len(),
        key_ms,
        core_key: key.to_string(),
    }
}

fn main() {
    let mut max_rules: usize = 64;
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--json" {
            json_path = Some(args.next().expect("--json needs a PATH"));
        } else {
            max_rules = a.parse().expect("MAX_RULES must be a small integer");
        }
    }
    assert!(
        (4..=512).contains(&max_rules),
        "MAX_RULES must be in 4..=512"
    );

    println!(
        "{:>6} {:>9} {:>9} {:>8} {:>8} {:>8} {:>9}  core_key",
        "rules", "scan_ms", "findings", "fix_ms", "-rules", "-atoms", "key_ms"
    );
    let mut rows = Vec::new();
    let mut n = 4;
    while n <= max_rules {
        let r = measure(n);
        println!(
            "{:>6} {:>9.2} {:>9} {:>8.2} {:>8} {:>8} {:>9.2}  {}",
            r.rules,
            r.scan_ms,
            r.findings,
            r.fix_ms,
            r.removed_rules,
            r.removed_atoms,
            r.key_ms,
            r.core_key
        );
        rows.push(r);
        n *= 2;
    }

    // Every chain length folds to a bare E-path of a different length, so
    // all keys must be distinct — a cheap end-to-end sanity check on the
    // canonical-core cache key.
    let mut keys: Vec<&str> = rows.iter().map(|r| r.core_key.as_str()).collect();
    keys.sort();
    keys.dedup();
    assert_eq!(
        keys.len(),
        rows.len(),
        "core keys must be pairwise distinct"
    );

    if let Some(path) = json_path {
        let body: Vec<String> = rows
            .iter()
            .map(|r| {
                format!(
                    "    {{\"rules\": {}, \"scan_ms\": {:.3}, \"findings\": {}, \
                     \"fix_ms\": {:.3}, \"removed_rules\": {}, \"removed_atoms\": {}, \
                     \"key_ms\": {:.3}, \"core_key\": \"{}\"}}",
                    r.rules,
                    r.scan_ms,
                    r.findings,
                    r.fix_ms,
                    r.removed_rules,
                    r.removed_atoms,
                    r.key_ms,
                    r.core_key
                )
            })
            .collect();
        let json = format!(
            "{{\n  \"bench\": \"semantic_scale\",\n  \"workload\": \
             \"chain program, one redundant atom per rule, one subsumed rule\",\n  \
             \"rows\": [\n{}\n  ]\n}}\n",
            body.join(",\n")
        );
        std::fs::write(&path, json).expect("write BENCH json");
        println!("wrote {path}");
    }
}
