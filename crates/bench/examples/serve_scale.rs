//! Closed-loop load generator behind the "Query service" table in
//! EXPERIMENTS.md: `T` client threads drive a shared in-process
//! [`QueryService`] as fast as it answers, over a 64-element random
//! digraph, with the ISSUE-9 request mix:
//!
//! * 60% cacheable conjunctive queries from a pool of eight distinct
//!   shapes (the steady-state cache-hit source),
//! * 15% renamed duplicates of pool queries (hit via the canonical core),
//! * 10% `no_cache` fresh evaluations (bit-identity spot checks ride on
//!   the chaos suite; here they are the cache-miss floor),
//! *  5% recursive transitive closure (cache bypass, the heavy tail),
//! *  5% single-edge EDB updates (epoch churn: each one invalidates the
//!    cache's older epochs) — flips of a fixed 32-edge churn pool, so the
//!    graph's density stays bounded while epochs keep advancing,
//! *  5% 1-fuel queries (budget partials, the degradation ladder).
//!
//! Admission depth is capped at 4, so the 8-thread row exercises the
//! shed path under real contention. Per row the table reports throughput,
//! p50/p99 latency, cache hit rate (hits + coalesced waits over full
//! answers), and shed rate.
//!
//! Usage: `serve_scale [REQS_PER_ROW] [--json PATH]` — rows for 1, 2, 4,
//! and 8 client threads (default 60000 requests per row ≈ 2.4 × 10⁵
//! total; CI passes a smaller count for the smoke run). With `--json
//! PATH` a machine-readable snapshot (the committed `BENCH_serve.json`)
//! is written alongside the table.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use hp_preservation::prelude::*;
use hp_serve::protocol::{parse_request, CacheOutcome, Response};
use hp_serve::service::{QueryService, ServiceConfig};

/// Deterministic xorshift64* stream, identical to the bench harness.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// 64 elements, 128 random edges over `{E/2}`.
fn serve_structure() -> Structure {
    let mut rng = XorShift(0xE5CA1E | 1);
    let mut b = Structure::builder(Vocabulary::digraph(), 64);
    for _ in 0..128 {
        let u = (rng.next() % 64) as u32;
        let w = (rng.next() % 64) as u32;
        b = b.tuple(0, &[u, w]);
    }
    b.build()
}

/// The cacheable pool: eight distinct join shapes with distinct cores.
const POOL: [&str; 8] = [
    "Goal(x,y) :- E(x,y).",
    "Goal(x) :- E(x,x).",
    "Goal(x,z) :- E(x,y), E(y,z).",
    "Goal(x) :- E(x,y), E(y,x).",
    "Goal(y) :- E(x,y), E(y,z).",
    "Goal(x,w) :- E(x,y), E(y,z), E(z,w).",
    "Goal(x,y) :- E(x,y), E(x,x).",
    "Goal(x) :- E(x,y), E(x,z), E(y,z).",
];

/// The same pool under a variable renaming: identical canonical cores.
const POOL_RENAMED: [&str; 8] = [
    "Goal(u,v) :- E(u,v).",
    "Goal(u) :- E(u,u).",
    "Goal(u,w) :- E(u,v), E(v,w).",
    "Goal(u) :- E(u,v), E(v,u).",
    "Goal(v) :- E(u,v), E(v,w).",
    "Goal(u,s) :- E(u,v), E(v,w), E(w,s).",
    "Goal(u,v) :- E(u,v), E(u,u).",
    "Goal(u) :- E(u,v), E(u,w), E(v,w).",
];

const TC: &str = "T(x,y) :- E(x,y). T(x,z) :- T(x,y), E(y,z).\\n# goal: T";

/// Per-thread tallies, merged after the run.
#[derive(Default)]
struct Tally {
    latencies_us: Vec<u64>,
    answers: u64,
    hits: u64,
    sheds: u64,
    partials: u64,
    faults: u64,
}

fn client(svc: &QueryService, seed: u64, reqs: usize) -> Tally {
    let mut rng = XorShift(seed | 1);
    let mut t = Tally {
        latencies_us: Vec::with_capacity(reqs),
        ..Tally::default()
    };
    for _ in 0..reqs {
        let roll = rng.next() % 100;
        let line = match roll {
            0..=59 => format!(
                "{{\"op\":\"query\",\"program\":\"{}\"}}",
                POOL[(rng.next() % 8) as usize]
            ),
            60..=74 => format!(
                "{{\"op\":\"query\",\"program\":\"{}\"}}",
                POOL_RENAMED[(rng.next() % 8) as usize]
            ),
            75..=84 => format!(
                "{{\"op\":\"query\",\"program\":\"{}\",\"no_cache\":true}}",
                POOL[(rng.next() % 8) as usize]
            ),
            85..=89 => format!("{{\"op\":\"query\",\"program\":\"{TC}\"}}"),
            90..=94 => {
                // Flip one churn-pool edge: density stays bounded, the
                // epoch (and cache invalidation) still churns.
                let i = rng.next() % 32;
                let (u, w) = (i, (i * 7 + 13) % 64);
                let verb = if rng.next().is_multiple_of(2) {
                    "insert"
                } else {
                    "delete"
                };
                format!("{{\"op\":\"update\",\"{verb}\":{{\"E\":[[{u},{w}]]}}}}")
            }
            _ => format!(
                "{{\"op\":\"query\",\"program\":\"{}\",\"fuel\":1}}",
                POOL[(rng.next() % 8) as usize]
            ),
        };
        let req = parse_request(&line).expect("bench request lines are well-formed");
        let interrupt = Interrupt::new();
        let t0 = Instant::now();
        let resp = svc.handle(&req, &interrupt);
        t.latencies_us.push(t0.elapsed().as_micros() as u64);
        match resp {
            Response::Answer { cache, .. } => {
                t.answers += 1;
                if matches!(cache, CacheOutcome::Hit | CacheOutcome::Coalesced) {
                    t.hits += 1;
                }
            }
            Response::Overloaded(_) => t.sheds += 1,
            Response::Partial { .. } => t.partials += 1,
            Response::Fault { .. } => t.faults += 1,
            Response::Updated { .. } | Response::Stats { .. } => {}
            other @ (Response::Error { .. } | Response::Bye) => {
                panic!("unexpected response in bench loop: {other:?}")
            }
        }
    }
    t
}

fn percentile(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx] as f64 / 1e3
}

fn main() {
    let mut reqs_per_row: usize = 60_000;
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--json" {
            json_path = Some(args.next().expect("--json needs a PATH"));
        } else {
            reqs_per_row = a.parse().expect("REQS_PER_ROW must be an integer");
        }
    }
    assert!(reqs_per_row >= 8, "need at least one request per thread");

    let mut json_rows: Vec<String> = Vec::new();
    println!(
        "{:>8} {:>9} {:>10} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "threads", "requests", "req_per_s", "p50_ms", "p99_ms", "hit_rate", "sheds", "partials"
    );
    for &threads in &[1usize, 2, 4, 8] {
        let svc = Arc::new(QueryService::new(
            serve_structure(),
            ServiceConfig {
                max_depth: 4,
                ..ServiceConfig::default()
            },
        ));
        let per_thread = reqs_per_row / threads;
        let next_seed = AtomicU64::new(0xBEEF);
        let wall = Instant::now();
        let tallies: Vec<Tally> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let svc = &svc;
                    let seed = next_seed.fetch_add(0x9e37_79b9, Ordering::Relaxed);
                    s.spawn(move || client(svc, seed, per_thread))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let elapsed = wall.elapsed().as_secs_f64();

        let total: usize = per_thread * threads;
        let mut latencies: Vec<u64> = tallies
            .iter()
            .flat_map(|t| t.latencies_us.clone())
            .collect();
        latencies.sort_unstable();
        let p50 = percentile(&latencies, 0.50);
        let p99 = percentile(&latencies, 0.99);
        let answers: u64 = tallies.iter().map(|t| t.answers).sum();
        let hits: u64 = tallies.iter().map(|t| t.hits).sum();
        let sheds: u64 = tallies.iter().map(|t| t.sheds).sum();
        let partials: u64 = tallies.iter().map(|t| t.partials).sum();
        let faults: u64 = tallies.iter().map(|t| t.faults).sum();
        assert_eq!(
            faults, 0,
            "no fault plan installed: the bench must be fault-free"
        );
        let rps = total as f64 / elapsed;
        let hit_rate = if answers > 0 {
            hits as f64 / answers as f64
        } else {
            0.0
        };
        let shed_rate = sheds as f64 / total as f64;
        assert_eq!(svc.gate().depth(), 0, "admission permits must drain");

        println!(
            "{:>8} {:>9} {:>10.0} {:>9.3} {:>9.3} {:>8.1}% {:>9} {:>9}",
            threads,
            total,
            rps,
            p50,
            p99,
            hit_rate * 100.0,
            sheds,
            partials
        );
        json_rows.push(format!(
            "    {{\"threads\": {threads}, \"requests\": {total}, \
             \"req_per_s\": {rps:.0}, \"p50_ms\": {p50:.4}, \"p99_ms\": {p99:.4}, \
             \"cache_hit_rate\": {hit_rate:.4}, \"shed_rate\": {shed_rate:.6}, \
             \"sheds\": {sheds}, \"partials\": {partials}}}"
        ));
    }

    if let Some(path) = json_path {
        let json = format!(
            "{{\n  \"bench\": \"serve_scale\",\n  \"workload\": \
             \"closed-loop mixed request stream (60% pooled CQs, 15% renamed \
             duplicates, 10% no_cache, 5% recursive TC, 5% EDB updates, 5% \
             1-fuel partials) against an in-process QueryService, 64-element \
             random digraph, admission depth 4\",\n  \
             \"requests_per_row\": {reqs_per_row},\n  \"rows\": [\n{}\n  ]\n}}\n",
            json_rows.join(",\n")
        );
        std::fs::write(&path, json).expect("write BENCH json");
        println!("wrote {path}");
    }
}
