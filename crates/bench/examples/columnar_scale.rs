//! E-scale measurement behind the "Columnar tuple storage" table in
//! EXPERIMENTS.md: single-source reachability over random EDBs of
//! 10³–10⁶ edges, timing bulk load, the indexed semi-naive engine, and
//! (at the sizes where it is feasible) the scan-join reference evaluator,
//! plus the memory-footprint comparison of the arena layout against the
//! boxed-tuple model it replaced.
//!
//! The workload matches `benches/datalog.rs`: `R(x) :- S(x).` /
//! `R(y) :- R(x), E(x,y).` over `{E/2, S/1}`, `n = m/4` elements,
//! xorshift64* edge stream seeded with `0xE5CA1E`, element 0 marked.
//!
//! Usage: `columnar_scale [MAX_EXP] [--json PATH]` — rows for
//! 10³ … 10^MAX_EXP edges (default 6; CI passes 5 to keep the smoke run
//! short). With `--json PATH` a machine-readable snapshot (the committed
//! `BENCH_scale.json`) is written alongside the table.
//!
//! A second table runs the stratified-negation family: `win_move(2)`
//! (eight strata of game-value approximation over `{Move/2, Pos/1}`) on
//! random DAG move graphs of 10³–10⁵ positions, timing the stratum-
//! ordered engine at 1/2/4 threads — asserted bit-identical — and the
//! scan-join reference oracle at the sizes where it is feasible.
//!
//! The "boxed" column is the analytic footprint of the seed
//! representation (`BTreeSet<Vec<Elem>>`, counted as one 24-byte
//! `(ptr, len, cap)` header plus a separate `arity × 4`-byte heap buffer
//! per tuple, ignoring allocator rounding and B-tree node overhead — a
//! lower bound on what the old layout actually used). The "arena" column
//! is the measured `heap_bytes()` of the columnar stores.

use std::time::Instant;

use hp_preservation::datalog::gallery;
use hp_preservation::prelude::*;

/// Deterministic xorshift64* stream, identical to the bench harness.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

fn reach_program() -> Program {
    let v = Vocabulary::from_pairs([("E", 2), ("S", 1)]);
    Program::parse("R(x) :- S(x).\nR(y) :- R(x), E(x,y).", &v).unwrap()
}

/// `n` elements, `m` random directed edges (bulk-loaded through the
/// builder), element 0 marked as the source.
fn random_reach_structure(n: usize, m: usize, seed: u64) -> Structure {
    let v = Vocabulary::from_pairs([("E", 2), ("S", 1)]);
    let mut rng = XorShift(seed | 1);
    let mut b = Structure::builder(v, n).tuple(1, &[0]);
    for _ in 0..m {
        let u = (rng.next() % n as u64) as u32;
        let w = (rng.next() % n as u64) as u32;
        b = b.tuple(0, &[u, w]);
    }
    b.build()
}

/// Analytic bytes of `rows` tuples of the given arity in the seed
/// boxed-tuple representation.
fn boxed_bytes(rows: usize, arity: usize) -> usize {
    rows * (24 + 4 * arity)
}

/// Random DAG move graph over `{Move/2, Pos/1}`: every element is a
/// position and each of `m` draws adds a move oriented low → high id, so
/// the game is well-founded and `win_move(k)`'s top layer is the exact
/// value on positions within `k` moves of a sink.
fn random_game_structure(n: usize, m: usize, seed: u64) -> Structure {
    let v = Vocabulary::from_pairs([("Move", 2), ("Pos", 1)]);
    let mut rng = XorShift(seed | 1);
    let mut b = Structure::builder(v, n);
    for x in 0..n as u32 {
        b = b.tuple(1, &[x]);
    }
    for _ in 0..m {
        let u = (rng.next() % n as u64) as u32;
        let w = (rng.next() % n as u64) as u32;
        if u != w {
            b = b.tuple(0, &[u.min(w), u.max(w)]);
        }
    }
    b.build()
}

fn main() {
    let mut max_exp: u32 = 6;
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--json" {
            json_path = Some(args.next().expect("--json needs a PATH"));
        } else {
            max_exp = a.parse().expect("MAX_EXP must be a small integer");
        }
    }
    assert!((3..=7).contains(&max_exp), "MAX_EXP must be in 3..=7");
    let mut json_rows: Vec<String> = Vec::new();
    let p = reach_program();
    println!(
        "{:>9} {:>9} {:>10} {:>10} {:>10} {:>9} {:>12} {:>12}",
        "edges", "n", "load_ms", "eval_ms", "ref_ms", "R_tuples", "arena_B", "boxed_B"
    );
    for exp in 3..=max_exp {
        let m = 10usize.pow(exp);
        let n = m / 4;
        let t0 = Instant::now();
        let a = random_reach_structure(n, m, 0xE5CA1E);
        let load_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t1 = Instant::now();
        let fix = p.evaluate(&a);
        let eval_ms = t1.elapsed().as_secs_f64() * 1e3;

        // The scan-join reference is quadratic in practice; keep it to the
        // sizes where a single run stays in seconds.
        let ref_ms = if m <= 100_000 {
            let t2 = Instant::now();
            let r = p.evaluate_reference(&a);
            assert_eq!(r.relations, fix.relations, "engines disagree at m={m}");
            format!("{:.1}", t2.elapsed().as_secs_f64() * 1e3)
        } else {
            "-".to_string()
        };

        let arena: usize = a.heap_bytes()
            + fix
                .relations
                .iter()
                .map(Relation::heap_bytes)
                .sum::<usize>();
        let boxed: usize = a
            .relations()
            .map(|(sym, rel)| boxed_bytes(rel.len(), a.vocab().arity(sym)))
            .sum::<usize>()
            + fix
                .relations
                .iter()
                .map(|r| boxed_bytes(r.len(), r.arity()))
                .sum::<usize>();
        println!(
            "{:>9} {:>9} {:>10.1} {:>10.1} {:>10} {:>9} {:>12} {:>12}",
            m,
            n,
            load_ms,
            eval_ms,
            ref_ms,
            fix.relations[0].len(),
            arena,
            boxed
        );
        json_rows.push(format!(
            "    {{\"edges\": {m}, \"n\": {n}, \"load_ms\": {load_ms:.3}, \
             \"eval_ms\": {eval_ms:.3}, \"ref_ms\": {}, \"reached\": {}, \
             \"arena_bytes\": {arena}, \"boxed_bytes\": {boxed}}}",
            if ref_ms == "-" {
                "null".to_string()
            } else {
                ref_ms.clone()
            },
            fix.relations[0].len()
        ));
    }

    // Stratified-negation family: win_move(2) — eight strata, each
    // evaluated to its fixpoint before the next reads its negated guards
    // as membership probes against the sealed store.
    let wm = gallery::win_move(2);
    let t2 = EvalConfig::new().with_threads(2);
    let t4 = EvalConfig::new().with_threads(4);
    let mut wm_rows: Vec<String> = Vec::new();
    println!("\nwin_move(2): stratified negation (8 strata), random DAG move graphs, m = 2n");
    println!(
        "{:>9} {:>9} {:>10} {:>10} {:>10} {:>10} {:>9}",
        "positions", "moves", "eval1_ms", "eval2_ms", "eval4_ms", "ref_ms", "lose_top"
    );
    for exp in 3..=max_exp.min(5) {
        let n = 10usize.pow(exp);
        let m = 2 * n;
        let a = random_game_structure(n, m, 0x5712A7);

        let t0 = Instant::now();
        let fix = wm.evaluate(&a);
        let eval1_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t1 = Instant::now();
        let fix2 = wm.evaluate_with(&a, &t2);
        let eval2_ms = t1.elapsed().as_secs_f64() * 1e3;

        let t3 = Instant::now();
        let fix4 = wm.evaluate_with(&a, &t4);
        let eval4_ms = t3.elapsed().as_secs_f64() * 1e3;

        // Stratified evaluation is deterministic: the sharded engines
        // must agree bit-for-bit with the single-threaded run.
        assert_eq!(
            fix2.relations, fix.relations,
            "2-thread run diverged at n={n}"
        );
        assert_eq!(
            fix4.relations, fix.relations,
            "4-thread run diverged at n={n}"
        );

        let ref_ms = if n <= 10_000 {
            let t5 = Instant::now();
            let r = wm.evaluate_reference(&a);
            assert_eq!(r.relations, fix.relations, "oracle disagrees at n={n}");
            format!("{:.1}", t5.elapsed().as_secs_f64() * 1e3)
        } else {
            "-".to_string()
        };

        let lose_top = fix.relations.last().expect("win_move has IDBs").len();
        println!(
            "{n:>9} {m:>9} {eval1_ms:>10.1} {eval2_ms:>10.1} {eval4_ms:>10.1} {ref_ms:>10} {lose_top:>9}"
        );
        wm_rows.push(format!(
            "    {{\"positions\": {n}, \"moves\": {m}, \"eval1_ms\": {eval1_ms:.3}, \
             \"eval2_ms\": {eval2_ms:.3}, \"eval4_ms\": {eval4_ms:.3}, \"ref_ms\": {}, \
             \"lose_top\": {lose_top}}}",
            if ref_ms == "-" {
                "null".to_string()
            } else {
                ref_ms.clone()
            }
        ));
    }

    if let Some(path) = json_path {
        let json = format!(
            "{{\n  \"bench\": \"columnar_scale\",\n  \"workload\": \
             \"single-source reachability, xorshift64* edges, n = m/4\",\n  \
             \"rows\": [\n{}\n  ],\n  \"win_move\": {{\n    \"workload\": \
             \"win_move(2), 8 strata, random DAG move graphs, m = 2n\",\n    \
             \"rows\": [\n{}\n    ]\n  }}\n}}\n",
            json_rows.join(",\n"),
            wm_rows
                .iter()
                .map(|r| format!("  {r}"))
                .collect::<Vec<_>>()
                .join(",\n")
        );
        std::fs::write(&path, json).expect("write BENCH json");
        println!("wrote {path}");
    }
}
