//! E1 — Theorem 2.1 (Chandra–Merlin): the three-way equivalence
//! `hom(A,B) ⇔ B ⊨ φ_A ⇔ φ_B ⊢ φ_A`, verified across a size sweep, with
//! homomorphism-search cost as the measured series.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hp_preservation::prelude::*;

fn verify_equivalence_table() {
    println!("\n[E1] Chandra–Merlin three-way agreement (sizes 4..=16, 20 pairs each)");
    println!("{:>6} {:>8} {:>10}", "size", "pairs", "agree");
    for n in [4usize, 8, 12, 16] {
        let mut agree = 0;
        let pairs = 20;
        for seed in 0..pairs {
            let a = generators::random_digraph(n, 2 * n, seed);
            let b = generators::random_digraph(n + 2, 3 * n, seed + 1000);
            let hom = hom_exists(&a, &b);
            let sat = Cq::canonical_query(&a).holds_in(&b);
            let imp = Cq::canonical_query(&b).is_contained_in(&Cq::canonical_query(&a));
            if hom == sat && sat == imp {
                agree += 1;
            }
        }
        println!("{n:>6} {pairs:>8} {agree:>9}/{pairs}");
        assert_eq!(agree, pairs, "Chandra–Merlin equivalence must be exact");
    }
}

fn bench_hom_search(c: &mut Criterion) {
    verify_equivalence_table();
    let mut g = c.benchmark_group("hom_search");
    for n in [6usize, 10, 14, 18] {
        let a = generators::random_digraph(n, 2 * n, 7);
        let b = generators::random_digraph(2 * n, 5 * n, 8);
        g.bench_with_input(BenchmarkId::new("random", n), &n, |bch, _| {
            bch.iter(|| std::hint::black_box(hom_exists(&a, &b)))
        });
    }
    // The hard direction: cycle into path (unsatisfiable, forces search).
    for n in [6usize, 10, 14] {
        let a = generators::directed_cycle(n);
        let b = generators::directed_path(2 * n);
        g.bench_with_input(BenchmarkId::new("cycle_into_path", n), &n, |bch, _| {
            bch.iter(|| std::hint::black_box(hom_exists(&a, &b)))
        });
    }
    g.finish();
}

fn bench_cq_minimization(c: &mut Criterion) {
    let mut g = c.benchmark_group("cq_minimize");
    for len in [3usize, 5, 7] {
        // A redundant query: path ⊕ path (one folds into the other).
        let p = generators::directed_path(len + 1);
        let doubled = p.disjoint_union(&p).unwrap();
        let q = Cq::canonical_query(&doubled);
        g.bench_with_input(BenchmarkId::new("fold_double_path", len), &len, |bch, _| {
            bch.iter(|| std::hint::black_box(q.minimize().var_count()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_hom_search, bench_cq_minimization);
criterion_main!(benches);
