//! E3/E4/E5/E6 — the scattered-set extractions of Lemma 3.4, Lemma 4.2,
//! Lemma 5.2, and Theorem 5.3, with measured-vs-paper-bound tables and
//! scaling benchmarks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hp_preservation::prelude::*;
use hp_preservation::structures::BitSet;
use hp_preservation::tw::bounds::{self, Bound};

fn fmt_bound(b: Bound) -> String {
    match b {
        Bound::Finite(v) if v < 1_000_000 => format!("{v}"),
        Bound::Finite(v) => format!("~1e{}", (v as f64).log10() as u32),
        Bound::Astronomical => ">1e38".into(),
    }
}

/// Smallest n (by doubling search over a family generator) at which the
/// extraction first succeeds — the "measured threshold".
fn measured_threshold(mut try_n: impl FnMut(usize) -> bool) -> usize {
    let mut n = 2;
    while n < 100_000 && !try_n(n) {
        n *= 2;
    }
    n
}

fn tables() {
    println!("\n[E3] Lemma 3.4 (degree ≤ 3): paper bound vs measured threshold");
    println!("{:>4} {:>4} {:>12} {:>10}", "d", "m", "paper N", "measured");
    for (d, m) in [(1usize, 4usize), (2, 4), (2, 8)] {
        let paper = bounds::lemma_3_4(3, d, m);
        let measured = measured_threshold(|n| {
            let g = generators::random_bounded_degree(n, 3, 12 * n, 3);
            scattered::bounded_degree(&g, d, m).is_some()
        });
        println!("{d:>4} {m:>4} {:>12} {measured:>10}", fmt_bound(paper));
    }

    println!("\n[E4] Lemma 4.2 (partial 2-trees, k = 3): paper bound vs measured");
    println!(
        "{:>4} {:>4} {:>12} {:>10} {:>5}",
        "d", "m", "paper N", "measured", "|B|"
    );
    for (d, m) in [(1usize, 3usize), (1, 5), (2, 4)] {
        let paper = bounds::lemma_4_2(3, d, m);
        let mut last_b = 0;
        let measured = measured_threshold(|n| {
            if n < 4 {
                return false;
            }
            let g = generators::random_partial_ktree(2, n, 0.85, 5);
            let (_, td) = elimination::treewidth_upper_bound(&g);
            match scattered::bounded_treewidth(&g, &td, d, m) {
                Some(out) => {
                    last_b = out.deleted.len();
                    true
                }
                None => false,
            }
        });
        println!(
            "{d:>4} {m:>4} {:>12} {measured:>10} {last_b:>5}",
            fmt_bound(paper)
        );
    }

    println!("\n[E6] Theorem 5.3 (grids = K5-minor-free): measured |Z| and |S|");
    println!(
        "{:>8} {:>4} {:>4} {:>5} {:>5} {:>12}",
        "grid", "d", "m", "|Z|", "|S|", "paper N"
    );
    for (side, d, m) in [(8usize, 1usize, 4usize), (12, 1, 8), (16, 2, 4)] {
        let g = generators::grid(side, side);
        match scattered::excluded_minor(&g, 5, d, m) {
            scattered::MinorFreeOutcome::Scattered(s) => {
                s.verify(&g, d).unwrap();
                println!(
                    "{:>8} {d:>4} {m:>4} {:>5} {:>5} {:>12}",
                    format!("{side}x{side}"),
                    s.deleted.len(),
                    s.set.len(),
                    fmt_bound(bounds::theorem_5_3(5, d, m))
                );
            }
            scattered::MinorFreeOutcome::Minor(w) => {
                panic!("grid produced a minor witness of order {}", w.order())
            }
        }
    }

    println!("\n[E5] Lemma 5.2 bipartite step: K_{{k-1,k-1}} detection");
    for k in [3usize, 4, 5] {
        let g = generators::complete_bipartite(k - 1, k - 1);
        let mut a_side = BitSet::new(2 * (k - 1));
        for i in 0..(k - 1) {
            a_side.insert(i);
        }
        match scattered::bipartite_step(&g, &a_side, k, k) {
            scattered::MinorFreeOutcome::Minor(w) => {
                w.verify(&g).unwrap();
                println!(
                    "  k={k}: K_{k} minor witness extracted from K_{{{},{}}} ✓",
                    k - 1,
                    k - 1
                );
            }
            scattered::MinorFreeOutcome::Scattered(_) => {
                println!("  k={k}: no witness (unexpected)")
            }
        }
    }
}

fn bench_extractions(c: &mut Criterion) {
    tables();
    let mut g = c.benchmark_group("scattered");
    for n in [200usize, 800, 3200] {
        let graph = generators::random_bounded_degree(n, 3, 10 * n, 1);
        g.bench_with_input(BenchmarkId::new("lemma_3_4_greedy", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(scattered::greedy_scattered(&graph, 2).len()))
        });
    }
    for n in [100usize, 300, 900] {
        let graph = generators::random_partial_ktree(2, n, 0.85, 2);
        let (_, td) = elimination::treewidth_upper_bound(&graph);
        g.bench_with_input(BenchmarkId::new("lemma_4_2", n), &n, |b, _| {
            b.iter(|| {
                std::hint::black_box(scattered::bounded_treewidth(&graph, &td, 1, 4).is_some())
            })
        });
    }
    for side in [8usize, 12, 16] {
        let graph = generators::grid(side, side);
        g.bench_with_input(BenchmarkId::new("theorem_5_3_grid", side), &side, |b, _| {
            b.iter(|| {
                std::hint::black_box(matches!(
                    scattered::excluded_minor(&graph, 5, 1, 4),
                    scattered::MinorFreeOutcome::Scattered(_)
                ))
            })
        });
    }
    g.finish();
}

fn bench_treewidth(c: &mut Criterion) {
    let mut g = c.benchmark_group("treewidth");
    g.sample_size(20);
    for n in [12usize, 16, 20] {
        let graph = generators::random_partial_ktree(3, n, 0.9, 4);
        g.bench_with_input(BenchmarkId::new("exact", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(elimination::treewidth_exact(&graph)))
        });
    }
    for n in [100usize, 400, 1600] {
        let graph = generators::random_partial_ktree(3, n, 0.9, 4);
        g.bench_with_input(BenchmarkId::new("heuristic", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(elimination::treewidth_upper_bound(&graph).0))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_extractions, bench_treewidth);
criterion_main!(benches);
