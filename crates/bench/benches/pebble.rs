//! E12 — existential k-pebble games: the Proposition 7.9 equivalence over
//! a target-size sweep, and game-solving cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hp_preservation::prelude::*;

fn has_cycle(b: &Structure) -> bool {
    let n = b.universe_size();
    let mut indeg = vec![0usize; n];
    let mut out: Vec<Vec<usize>> = vec![vec![]; n];
    for t in b.relation(0usize.into()).iter() {
        out[t[0].index()].push(t[1].index());
        indeg[t[1].index()] += 1;
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut seen = 0;
    while let Some(u) = queue.pop() {
        seen += 1;
        for &v in &out[u] {
            indeg[v] -= 1;
            if indeg[v] == 0 {
                queue.push(v);
            }
        }
    }
    seen != n
}

fn proposition_7_9_table() {
    println!("\n[E12] Proposition 7.9: Duplicator wins ∃2-pebble(C3, B) ⇔ B cyclic");
    println!("{:>6} {:>8} {:>8}", "|B|", "samples", "agree");
    let c3 = generators::directed_cycle(3);
    for n in [4usize, 6, 8] {
        let samples = 20;
        let mut agree = 0;
        for seed in 0..samples {
            let b = generators::random_digraph(n, 2 * n, seed);
            if duplicator_wins(&c3, &b, 2) == has_cycle(&b) {
                agree += 1;
            }
        }
        println!("{n:>6} {samples:>8} {agree:>7}/{samples}");
        assert_eq!(agree, samples);
    }
}

fn bench_game(c: &mut Criterion) {
    proposition_7_9_table();
    let c3 = generators::directed_cycle(3);
    let mut g = c.benchmark_group("pebble_game");
    g.sample_size(10);
    for n in [6usize, 10, 14] {
        let cyclic = generators::random_digraph(n, 3 * n, 3);
        let acyclic = generators::random_dag(n, 3 * n, 3);
        g.bench_with_input(BenchmarkId::new("c3_vs_cyclic", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(duplicator_wins(&c3, &cyclic, 2)))
        });
        g.bench_with_input(BenchmarkId::new("c3_vs_dag", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(duplicator_wins(&c3, &acyclic, 2)))
        });
    }
    // 3-pebble game on small structures (exponentially bigger state).
    for n in [5usize, 7] {
        let a = generators::directed_cycle(3);
        let b3 = generators::random_digraph(n, 2 * n, 11);
        g.bench_with_input(BenchmarkId::new("three_pebbles", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(duplicator_wins(&a, &b3, 3)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_game);
criterion_main!(benches);
