//! E10/E11 — Datalog: semi-naive evaluation scaling, Theorem 7.1 stage
//! unfolding, and the Ajtai–Gurevich boundedness series.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hp_preservation::datalog::{stage_probe, stage_ucq};
use hp_preservation::prelude::*;

fn tc() -> Program {
    Program::parse(
        "T(x,y) :- E(x,y).\nT(x,y) :- E(x,z), T(z,y).",
        &Vocabulary::digraph(),
    )
    .unwrap()
}

fn tables() {
    let p = tc();
    println!("\n[E11] transitive-closure stage counts grow with diameter (unbounded)");
    println!("{:>8} {:>8}", "|path|", "stages");
    let paths: Vec<Structure> = [4usize, 8, 16, 32]
        .iter()
        .map(|&n| generators::directed_path(n))
        .collect();
    for row in stage_probe(&p, paths.iter()) {
        println!("{:>8} {:>8}", row.universe, row.stages);
    }
    println!("\n[E10] Theorem 7.1: stage-m unfolding sizes (TC program, k = 3)");
    println!(
        "{:>4} {:>10} {:>22}",
        "m", "disjuncts", "max disjunct tw (< 3)"
    );
    for m in 1..=5 {
        let u = stage_ucq(&p, 0, m).unwrap();
        let max_tw = u
            .disjuncts()
            .iter()
            .map(|d| elimination::treewidth_exact(&d.canonical().gaifman_graph()))
            .max()
            .unwrap_or(0);
        println!("{m:>4} {:>10} {max_tw:>22}", u.len());
        assert!(max_tw < 3);
    }
    println!("\n[E11] certified boundedness outcomes");
    let bounded = Program::parse("P2(x,y) :- E(x,z), E(z,y).", &Vocabulary::digraph()).unwrap();
    for (name, prog, cap) in [("two-hop", &bounded, 3usize), ("TC", &p, 3)] {
        match hp_preservation::datalog::certified_boundedness(prog, cap).unwrap() {
            Some(s) => println!("  {name}: bounded at stage {s}"),
            None => println!("  {name}: no certificate up to stage {cap} (unbounded)"),
        }
    }
}

fn bench_evaluation(c: &mut Criterion) {
    tables();
    let p = tc();
    let mut g = c.benchmark_group("datalog_eval");
    g.sample_size(20);
    for n in [20usize, 40, 80] {
        let a = generators::random_digraph(n, 3 * n, 9);
        g.bench_with_input(BenchmarkId::new("tc_semi_naive", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(p.evaluate(&a).relations[0].len()))
        });
    }
    for n in [16usize, 32] {
        let a = generators::directed_path(n);
        g.bench_with_input(BenchmarkId::new("tc_path_naive_stages", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(p.stages(&a, 64).len()))
        });
    }
    g.finish();
}

fn bench_unfold(c: &mut Criterion) {
    let p = tc();
    let mut g = c.benchmark_group("datalog_unfold");
    g.sample_size(10);
    for m in [2usize, 4, 6] {
        g.bench_with_input(BenchmarkId::new("stage_ucq", m), &m, |b, &m| {
            b.iter(|| std::hint::black_box(stage_ucq(&p, 0, m).unwrap().len()))
        });
    }
    g.bench_function("certified_boundedness_cap3", |b| {
        b.iter(|| {
            std::hint::black_box(hp_preservation::datalog::certified_boundedness(&p, 3).unwrap())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_evaluation, bench_unfold);
criterion_main!(benches);
