//! E10/E11/E-scale — Datalog: semi-naive evaluation scaling (seed scan
//! joins vs. indexed joins vs. sharded parallel rounds on large random
//! EDBs), Theorem 7.1 stage unfolding, and the Ajtai–Gurevich boundedness
//! series.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hp_preservation::datalog::{stage_probe, stage_ucq};
use hp_preservation::prelude::*;

fn tc() -> Program {
    Program::parse(
        "T(x,y) :- E(x,y).\nT(x,y) :- E(x,z), T(z,y).",
        &Vocabulary::digraph(),
    )
    .unwrap()
}

/// Single-source reachability over a marked-source vocabulary — the
/// linear-output workload that scales to 10⁴-element EDBs (transitive
/// closure's quadratic output would dominate the measurement there).
fn reach_program() -> Program {
    let v = Vocabulary::from_pairs([("E", 2), ("S", 1)]);
    Program::parse("R(x) :- S(x).\nR(y) :- R(x), E(x,y).", &v).unwrap()
}

/// Deterministic xorshift64* stream so the large random-EDB families need
/// no RNG dependency and are identical on every run.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// `n` elements, `m` random directed edges, element 0 marked as the source.
fn random_reach_structure(n: usize, m: usize, seed: u64) -> Structure {
    let v = Vocabulary::from_pairs([("E", 2), ("S", 1)]);
    let mut rng = XorShift(seed | 1);
    let mut a = Structure::new(v, n);
    a.add_tuple_ids(1, &[0]).unwrap();
    for _ in 0..m {
        let u = (rng.next() % n as u64) as u32;
        let w = (rng.next() % n as u64) as u32;
        let _ = a.add_tuple_ids(0, &[u, w]);
    }
    a
}

/// Random DAG move graph over `{Move/2, Pos/1}` for the stratified
/// `win_move` family: every element a position, `m` draws of a move
/// oriented low → high id (well-founded game).
fn random_game_structure(n: usize, m: usize, seed: u64) -> Structure {
    let v = Vocabulary::from_pairs([("Move", 2), ("Pos", 1)]);
    let mut rng = XorShift(seed | 1);
    let mut a = Structure::new(v, n);
    for x in 0..n as u32 {
        a.add_tuple_ids(1, &[x]).unwrap();
    }
    for _ in 0..m {
        let u = (rng.next() % n as u64) as u32;
        let w = (rng.next() % n as u64) as u32;
        if u != w {
            let _ = a.add_tuple_ids(0, &[u.min(w), u.max(w)]);
        }
    }
    a
}

fn tables() {
    let p = tc();
    println!("\n[E11] transitive-closure stage counts grow with diameter (unbounded)");
    println!("{:>8} {:>8}", "|path|", "stages");
    let paths: Vec<Structure> = [4usize, 8, 16, 32]
        .iter()
        .map(|&n| generators::directed_path(n))
        .collect();
    for row in stage_probe(&p, paths.iter()) {
        println!("{:>8} {:>8}", row.universe, row.stages);
    }
    println!("\n[E10] Theorem 7.1: stage-m unfolding sizes (TC program, k = 3)");
    println!(
        "{:>4} {:>10} {:>22}",
        "m", "disjuncts", "max disjunct tw (< 3)"
    );
    for m in 1..=5 {
        let u = stage_ucq(&p, 0, m).unwrap();
        let max_tw = u
            .disjuncts()
            .iter()
            .map(|d| elimination::treewidth_exact(&d.canonical().gaifman_graph()))
            .max()
            .unwrap_or(0);
        println!("{m:>4} {:>10} {max_tw:>22}", u.len());
        assert!(max_tw < 3);
    }
    println!("\n[E11] certified boundedness outcomes");
    let bounded = Program::parse("P2(x,y) :- E(x,z), E(z,y).", &Vocabulary::digraph()).unwrap();
    for (name, prog, cap) in [("two-hop", &bounded, 3usize), ("TC", &p, 3)] {
        match hp_preservation::datalog::certified_boundedness(prog, cap).unwrap() {
            Some(s) => println!("  {name}: bounded at stage {s}"),
            None => println!("  {name}: no certificate up to stage {cap} (unbounded)"),
        }
    }
}

fn bench_evaluation(c: &mut Criterion) {
    tables();
    let p = tc();
    let mut g = c.benchmark_group("datalog_eval");
    g.sample_size(20);
    for n in [20usize, 40, 80] {
        let a = generators::random_digraph(n, 3 * n, 9);
        g.bench_with_input(BenchmarkId::new("tc_semi_naive", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(p.evaluate(&a).relations[0].len()))
        });
    }
    for n in [16usize, 32] {
        let a = generators::directed_path(n);
        g.bench_with_input(BenchmarkId::new("tc_path_naive_stages", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(p.stages(&a, 64).stages.len()))
        });
    }
    g.finish();
}

/// E-scale: the seed scan evaluator vs. the indexed engine vs. sharded
/// parallel rounds, on path/cycle/random-digraph families from 10² to 10⁴
/// elements plus the stratified `win_move(2)` game family on random DAG
/// move graphs. All three paths are verified to produce identical
/// relations before timing.
fn bench_scale(c: &mut Criterion) {
    let sharded = EvalConfig::new().with_threads(4);
    let mut g = c.benchmark_group("datalog_scale");
    g.sample_size(10);

    let tc = tc();
    let tc_families: Vec<(&str, Vec<Structure>)> = vec![
        (
            "path_tc",
            [128usize, 512]
                .iter()
                .map(|&n| generators::directed_path(n))
                .collect(),
        ),
        (
            "cycle_tc",
            [64usize, 256]
                .iter()
                .map(|&n| generators::directed_cycle(n))
                .collect(),
        ),
    ];
    let reach = reach_program();
    let reach_inputs: Vec<Structure> = [100usize, 1_000, 10_000, 100_000]
        .iter()
        .map(|&n| random_reach_structure(n, 4 * n, 0xE5CA1E))
        .collect();
    // Stratified-negation family: win_move(2) evaluates eight strata in
    // order, reading each stratum's negated guards as membership probes
    // against the sealed lower layer. The generic loop below also gives
    // it the seed-oracle agreement assertion and all three engine rows.
    let wm = hp_preservation::datalog::gallery::win_move(2);
    let wm_inputs: Vec<Structure> = [1_000usize, 10_000]
        .iter()
        .map(|&n| random_game_structure(n, 2 * n, 0x5712A7))
        .collect();
    let all: Vec<(&str, &Program, Vec<Structure>)> = tc_families
        .iter()
        .map(|(name, f)| (*name, &tc, f.clone()))
        .chain(std::iter::once(("random_reach", &reach, reach_inputs)))
        .chain(std::iter::once(("win_move2", &wm, wm_inputs)))
        .collect();

    for (family, p, inputs) in all {
        for a in &inputs {
            let n = a.universe_size();
            // The scan-join reference is quadratic in practice; above 10⁴
            // elements only the indexed and sharded engines run (their
            // agreement at that scale is covered by the differential suite
            // and the 10⁴ assertion here).
            if n <= 10_000 {
                let expect = p.evaluate_reference(a);
                assert_eq!(p.evaluate(a).relations, expect.relations, "{family}/{n}");
                assert_eq!(
                    p.evaluate_with(a, &sharded).relations,
                    expect.relations,
                    "{family}/{n}"
                );
                g.bench_with_input(BenchmarkId::new(format!("{family}_seed"), n), &n, |b, _| {
                    b.iter(|| std::hint::black_box(p.evaluate_reference(a).relations[0].len()))
                });
            } else {
                assert_eq!(
                    p.evaluate_with(a, &sharded).relations,
                    p.evaluate(a).relations,
                    "{family}/{n}"
                );
            }
            g.bench_with_input(
                BenchmarkId::new(format!("{family}_indexed"), n),
                &n,
                |b, _| b.iter(|| std::hint::black_box(p.evaluate(a).relations[0].len())),
            );
            g.bench_with_input(
                BenchmarkId::new(format!("{family}_sharded4"), n),
                &n,
                |b, _| {
                    b.iter(|| std::hint::black_box(p.evaluate_with(a, &sharded).relations[0].len()))
                },
            );
        }
    }
    g.finish();
}

fn bench_unfold(c: &mut Criterion) {
    let p = tc();
    let mut g = c.benchmark_group("datalog_unfold");
    g.sample_size(10);
    for m in [2usize, 4, 6] {
        g.bench_with_input(BenchmarkId::new("stage_ucq", m), &m, |b, &m| {
            b.iter(|| std::hint::black_box(stage_ucq(&p, 0, m).unwrap().len()))
        });
    }
    g.bench_function("certified_boundedness_cap3", |b| {
        b.iter(|| {
            std::hint::black_box(hp_preservation::datalog::certified_boundedness(&p, 3).unwrap())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_evaluation, bench_scale, bench_unfold);
criterion_main!(benches);
