//! E7 — cores (§6.2): predicted cores on the paper's families (bipartite →
//! K₂, bicycles → K₄, odd wheels → themselves) and core-computation cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hp_preservation::prelude::*;

fn core_table() {
    println!("\n[E7] cores of the §6.2 families");
    println!(
        "{:>16} {:>8} {:>10} {:>12}",
        "family", "|A|", "|core|", "predicted"
    );
    let rows: Vec<(String, Structure, usize)> = vec![
        (
            "C6 (bipartite)".into(),
            generators::cycle(6).to_structure(),
            2,
        ),
        ("grid 3x4".into(), generators::grid(3, 4).to_structure(), 2),
        (
            "K(3,5)".into(),
            generators::complete_bipartite(3, 5).to_structure(),
            2,
        ),
        (
            "bicycle B5".into(),
            generators::bicycle(5).to_structure(),
            4,
        ),
        (
            "bicycle B9".into(),
            generators::bicycle(9).to_structure(),
            4,
        ),
        (
            "wheel W5 (core)".into(),
            generators::wheel(5).to_structure(),
            6,
        ),
        (
            "wheel W7 (core)".into(),
            generators::wheel(7).to_structure(),
            8,
        ),
        (
            "wheel W4 → K3".into(),
            generators::wheel(4).to_structure(),
            3,
        ),
        (
            "C5 (odd, core)".into(),
            generators::cycle(5).to_structure(),
            5,
        ),
    ];
    for (name, s, predicted) in rows {
        let c = core_of(&s);
        println!(
            "{name:>16} {:>8} {:>10} {predicted:>12}",
            s.universe_size(),
            c.structure.universe_size()
        );
        assert_eq!(c.structure.universe_size(), predicted, "{name}");
    }
}

fn bench_cores(c: &mut Criterion) {
    core_table();
    let mut g = c.benchmark_group("core_of");
    g.sample_size(10);
    for n in [5usize, 9, 13] {
        let b = generators::bicycle(n).to_structure();
        g.bench_with_input(BenchmarkId::new("bicycle", n), &n, |bch, _| {
            bch.iter(|| std::hint::black_box(core_of(&b).structure.universe_size()))
        });
    }
    for side in [3usize, 4] {
        let s = generators::grid(side, side + 1).to_structure();
        g.bench_with_input(BenchmarkId::new("grid", side), &side, |bch, _| {
            bch.iter(|| std::hint::black_box(core_of(&s).structure.universe_size()))
        });
    }
    for n in [4usize, 6, 8] {
        let s = generators::random_digraph(n, 2 * n, 17);
        g.bench_with_input(BenchmarkId::new("random_digraph", n), &n, |bch, _| {
            bch.iter(|| std::hint::black_box(core_of(&s).structure.universe_size()))
        });
    }
    g.finish();
}

fn bench_isomorphism(c: &mut Criterion) {
    let mut g = c.benchmark_group("isomorphism");
    for n in [8usize, 16, 32] {
        let a = generators::random_digraph(n, 3 * n, 5);
        // A relabelled copy: shift every element by one (mod n).
        let map: Vec<Elem> = (0..n).map(|i| Elem(((i + 1) % n) as u32)).collect();
        let b = a.hom_image(&map, n);
        g.bench_with_input(BenchmarkId::new("relabelled", n), &n, |bch, _| {
            bch.iter(|| std::hint::black_box(are_isomorphic(&a, &b)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_cores, bench_isomorphism);
criterion_main!(benches);
