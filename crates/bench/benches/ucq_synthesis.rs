//! E2 — Theorem 3.1: UCQ synthesis from minimal models. Tables report the
//! number of minimal models and disjuncts per query; the benchmark series
//! measures the rewriting cost as the search bound grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hp_preservation::prelude::*;
use hp_preservation::query::FoQuery;
use hp_preservation::synthesis::validate_rewrite;

fn queries() -> Vec<(&'static str, String)> {
    vec![
        (
            "path2",
            "exists x. exists y. exists z. (E(x,y) & E(y,z))".to_string(),
        ),
        (
            "loop_or_sym",
            "(exists x. E(x,x)) | (exists x. exists y. (E(x,y) & E(y,x)))".to_string(),
        ),
        (
            "closed_3_walk",
            "exists x. exists y. exists z. (E(x,y) & E(y,z) & E(z,x))".to_string(),
        ),
    ]
}

fn synthesis_table() {
    println!("\n[E2] Theorem 3.1 rewriting (search bound 3)");
    println!(
        "{:>14} {:>10} {:>10} {:>10}",
        "query", "min.models", "disjuncts", "validated"
    );
    let vocab = Vocabulary::digraph();
    for (name, text) in queries() {
        let (f, _) = parse_formula(&text, &vocab).unwrap();
        let q = FoQuery::new(f);
        let rw = rewrite_to_ucq(&q, &vocab, 3).unwrap();
        let sample: Vec<Structure> = (0..30)
            .map(|s| generators::random_digraph(5, 7, s))
            .collect();
        let ok = validate_rewrite(&q, &rw.ucq, sample.iter()).is_none();
        println!(
            "{name:>14} {:>10} {:>10} {:>10}",
            rw.minimal_models.len(),
            rw.ucq.len(),
            ok
        );
        assert!(ok);
    }
}

fn bench_rewrite(c: &mut Criterion) {
    synthesis_table();
    let vocab = Vocabulary::digraph();
    let mut g = c.benchmark_group("rewrite_to_ucq");
    g.sample_size(10);
    for bound in [2usize, 3] {
        for (name, text) in queries() {
            let (f, _) = parse_formula(&text, &vocab).unwrap();
            let q = FoQuery::new(f);
            g.bench_with_input(BenchmarkId::new(name, bound), &bound, |bch, &bound| {
                bch.iter(|| {
                    std::hint::black_box(rewrite_to_ucq(&q, &vocab, bound).unwrap().ucq.len())
                })
            });
        }
    }
    g.finish();
}

fn bench_ucq_containment(c: &mut Criterion) {
    // Sagiv–Yannakakis on unions of path queries.
    let mut g = c.benchmark_group("sagiv_yannakakis");
    for m in [4usize, 8, 12] {
        let a = Ucq::new(
            (2..2 + m)
                .map(|l| Cq::canonical_query(&generators::directed_path(l + 1)))
                .collect(),
        );
        let b = Ucq::new(
            (1..1 + m)
                .map(|l| Cq::canonical_query(&generators::directed_path(l + 1)))
                .collect(),
        );
        g.bench_with_input(BenchmarkId::new("paths", m), &m, |bch, _| {
            bch.iter(|| std::hint::black_box(a.is_contained_in(&b)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_rewrite, bench_ucq_containment);
criterion_main!(benches);
