//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! - **GAC propagation in the homomorphism solver** (on vs off) — the
//!   solver is the hot engine of everything (Chandra–Merlin, cores,
//!   containment, minimal models);
//! - **min-fill vs min-degree vs identity elimination orders** for
//!   treewidth upper bounds;
//! - **semi-naive vs naive Datalog evaluation**.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hp_preservation::hom::HomSearch;
use hp_preservation::prelude::*;

fn bench_propagation_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_propagation");
    g.sample_size(10);
    // Unsatisfiable instances show propagation's pruning best. The no-GAC
    // solver degenerates to |B|^|A| leaf checks, so its sizes are capped
    // (n = 6 is already ~9^6 ≈ half a million leaves per call).
    for n in [5usize, 7, 9, 12] {
        let a = generators::directed_cycle(n);
        let b = generators::directed_path(n + 3);
        g.bench_with_input(BenchmarkId::new("gac_on_unsat", n), &n, |bch, _| {
            bch.iter(|| std::hint::black_box(HomSearch::new(&a, &b).exists()))
        });
    }
    for n in [4usize, 5, 6] {
        let a = generators::directed_cycle(n);
        let b = generators::directed_path(n + 3);
        g.bench_with_input(BenchmarkId::new("gac_off_unsat", n), &n, |bch, _| {
            bch.iter(|| std::hint::black_box(HomSearch::new(&a, &b).without_propagation().exists()))
        });
    }
    // Satisfiable random instances (folding targets make the off-mode
    // finish by luck of value order; keep sizes tiny anyway).
    for n in [4usize, 5] {
        let a = generators::random_digraph(n, 2 * n, 3);
        let b = generators::random_digraph(2 * n, 6 * n, 4);
        g.bench_with_input(BenchmarkId::new("gac_on_sat", n), &n, |bch, _| {
            bch.iter(|| std::hint::black_box(HomSearch::new(&a, &b).exists()))
        });
        g.bench_with_input(BenchmarkId::new("gac_off_sat", n), &n, |bch, _| {
            bch.iter(|| std::hint::black_box(HomSearch::new(&a, &b).without_propagation().exists()))
        });
    }
    g.finish();
}

fn bench_elimination_ablation(c: &mut Criterion) {
    use hp_preservation::tw::elimination::{min_degree_order, min_fill_order, order_width};
    println!("\n[ablation] elimination-order quality (width found; lower is better)");
    println!(
        "{:>8} {:>10} {:>10} {:>10}",
        "n", "identity", "min-deg", "min-fill"
    );
    for n in [60usize, 150] {
        let g = generators::random_partial_ktree(3, n, 0.85, 9);
        let id_order: Vec<u32> = (0..n as u32).collect();
        println!(
            "{n:>8} {:>10} {:>10} {:>10}",
            order_width(&g, &id_order),
            order_width(&g, &min_degree_order(&g)),
            order_width(&g, &min_fill_order(&g))
        );
    }
    let mut grp = c.benchmark_group("ablate_elimination");
    for n in [100usize, 300] {
        let g = generators::random_partial_ktree(3, n, 0.85, 9);
        grp.bench_with_input(BenchmarkId::new("min_degree", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(min_degree_order(&g).len()))
        });
        grp.bench_with_input(BenchmarkId::new("min_fill", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(min_fill_order(&g).len()))
        });
    }
    grp.finish();
}

fn bench_naive_vs_semi_naive(c: &mut Criterion) {
    let p = hp_preservation::datalog::gallery::transitive_closure();
    let mut g = c.benchmark_group("ablate_datalog_eval");
    g.sample_size(10);
    for n in [20usize, 40] {
        let a = generators::random_digraph(n, 3 * n, 11);
        g.bench_with_input(BenchmarkId::new("semi_naive", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(p.evaluate(&a).relations[0].len()))
        });
        g.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| {
                let seq = p.stages(&a, usize::MAX);
                assert!(seq.converged);
                std::hint::black_box(seq.last()[0].len())
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_propagation_ablation,
    bench_elimination_ablation,
    bench_naive_vs_semi_naive
);
criterion_main!(benches);
