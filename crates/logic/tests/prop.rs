//! Property-based tests for hp-logic: random existential-positive formulas
//! against their UCQ normal forms, containment soundness, minimization, and
//! renaming invariance.

use proptest::prelude::*;

use hp_logic::{ucq_of_existential_positive, Cq, Formula, Ucq, Var};
use hp_structures::{generators, Elem, Structure, Vocabulary};

fn digraph_strategy(max_n: usize, max_m: usize) -> impl Strategy<Value = Structure> {
    (
        1..=max_n,
        prop::collection::vec((0usize..max_n, 0usize..max_n), 0..max_m),
    )
        .prop_map(move |(n, edges)| {
            let mut s = Structure::new(Vocabulary::digraph(), n);
            for (u, v) in edges {
                let _ = s.add_tuple_ids(0, &[(u % n) as u32, (v % n) as u32]);
            }
            s
        })
}

/// Random existential-positive sentences over {E/2} with ≤ 4 variables.
fn ep_sentence_strategy() -> impl Strategy<Value = Formula> {
    let leaf = (0u32..4, 0u32..4).prop_map(|(x, y)| Formula::atom(0usize, &[x, y]));
    let tree = leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..3).prop_map(Formula::And),
            prop::collection::vec(inner.clone(), 1..3).prop_map(Formula::Or),
            (0u32..4, inner.clone()).prop_map(|(v, f)| Formula::exists(v, f)),
            (0u32..4, 0u32..4).prop_map(|(x, y)| Formula::Eq(x, y)),
        ]
    });
    // Close all free variables existentially to get a sentence.
    tree.prop_map(|f| {
        let mut g = f;
        for v in g.free_vars().into_iter().rev() {
            g = Formula::exists(v, g);
        }
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The DNF/UCQ normal form agrees with direct FO evaluation.
    #[test]
    fn ucq_normal_form_agrees(f in ep_sentence_strategy(), a in digraph_strategy(4, 8)) {
        let v = Vocabulary::digraph();
        let u = ucq_of_existential_positive(&f, &v).unwrap();
        prop_assert_eq!(u.holds_in(&a), f.holds(&a), "formula {}", f);
    }

    /// renamed_apart preserves semantics.
    #[test]
    fn renamed_apart_semantics(f in ep_sentence_strategy(), a in digraph_strategy(4, 8)) {
        let g = f.renamed_apart();
        prop_assert_eq!(f.holds(&a), g.holds(&a));
        prop_assert!(g.is_sentence());
    }

    /// UCQ evaluation is preserved under homomorphisms (the defining
    /// property): if q holds in A and A → B then q holds in B.
    #[test]
    fn ucq_preserved_under_homs(
        f in ep_sentence_strategy(),
        a in digraph_strategy(4, 6),
        b in digraph_strategy(4, 9),
    ) {
        let v = Vocabulary::digraph();
        let u = ucq_of_existential_positive(&f, &v).unwrap();
        if u.holds_in(&a) && hp_hom::hom_exists(&a, &b) {
            prop_assert!(u.holds_in(&b), "preservation violated by {}", f);
        }
    }

    /// CQ minimization preserves equivalence and never grows.
    #[test]
    fn cq_minimize_sound(a in digraph_strategy(5, 8)) {
        let q = Cq::canonical_query(&a);
        let m = q.minimize();
        prop_assert!(m.var_count() <= q.var_count());
        prop_assert!(m.is_equivalent_to(&q));
        // Minimization is idempotent up to size.
        prop_assert_eq!(m.minimize().var_count(), m.var_count());
    }

    /// Containment is sound: q1 ⊑ q2 implies truth transfer on samples.
    #[test]
    fn containment_sound(
        a in digraph_strategy(4, 6),
        b in digraph_strategy(4, 6),
        w in digraph_strategy(5, 10),
    ) {
        let q1 = Cq::canonical_query(&a);
        let q2 = Cq::canonical_query(&b);
        if q1.is_contained_in(&q2) && q1.holds_in(&w) {
            prop_assert!(q2.holds_in(&w));
        }
    }

    /// Sagiv–Yannakakis equals semantic containment on exhaustive tiny
    /// structures (up to 3 elements, all edge sets — 512 structures).
    #[test]
    fn sagiv_yannakakis_semantically_exact(
        a in digraph_strategy(3, 4),
        b in digraph_strategy(3, 4),
        c in digraph_strategy(3, 4),
    ) {
        let u1 = Ucq::new(vec![Cq::canonical_query(&a)]);
        let u2 = Ucq::new(vec![Cq::canonical_query(&b), Cq::canonical_query(&c)]);
        let syntactic = u1.is_contained_in(&u2);
        // Semantic check over all digraphs with ≤ 3 elements.
        let mut semantic = true;
        'outer: for n in 0..=3usize {
            for mask in 0u32..(1 << (n * n)) {
                let mut s = Structure::new(Vocabulary::digraph(), n);
                for bit in 0..(n * n) {
                    if mask & (1 << bit) != 0 {
                        s.add_tuple_ids(0, &[(bit / n) as u32, (bit % n) as u32]).unwrap();
                    }
                }
                if u1.holds_in(&s) && !u2.holds_in(&s) {
                    semantic = false;
                    break 'outer;
                }
            }
        }
        // Syntactic containment is sound & complete for UCQs — but the
        // semantic check above only covers ≤ 3 elements, so we can only
        // assert one direction universally and the other on the bound:
        if syntactic {
            prop_assert!(semantic, "SY says contained but a small countermodel exists");
        }
        // Completeness: countermodels for UCQ containment have at most
        // max-canonical-size elements, which is ≤ 3 here, so:
        if semantic {
            prop_assert!(syntactic, "no small countermodel yet SY denies containment");
        }
    }

    /// Cq::to_formula round-trips semantics.
    #[test]
    fn cq_formula_roundtrip(a in digraph_strategy(4, 6), w in digraph_strategy(4, 8)) {
        let q = Cq::canonical_query(&a);
        let f = q.to_formula();
        prop_assert_eq!(f.holds(&w), q.holds_in(&w));
    }

    /// Ucq::to_formula round-trips semantics (Boolean and with answers).
    #[test]
    fn ucq_formula_roundtrip(
        a in digraph_strategy(3, 5),
        b in digraph_strategy(3, 5),
        w in digraph_strategy(4, 8),
    ) {
        let u = Ucq::new(vec![Cq::canonical_query(&a), Cq::canonical_query(&b)]);
        let f = u.to_formula();
        prop_assert_eq!(f.holds(&w), u.holds_in(&w));
    }

    /// Ucq::minimize preserves equivalence.
    #[test]
    fn ucq_minimize_equivalent(
        a in digraph_strategy(3, 5),
        b in digraph_strategy(3, 5),
        c in digraph_strategy(3, 5),
    ) {
        let u = Ucq::new(vec![
            Cq::canonical_query(&a),
            Cq::canonical_query(&b),
            Cq::canonical_query(&c),
        ]);
        let m = u.minimize();
        prop_assert!(m.len() <= u.len());
        prop_assert!(m.is_equivalent_to(&u));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Parser round-trip: display output of parsed formulas re-parses to
    /// the same AST (via a canonical variable naming).
    #[test]
    fn answers_match_between_fo_and_cq(w in digraph_strategy(4, 8)) {
        // E(x,y) as FO and as a free CQ agree on answers.
        let v = Vocabulary::digraph();
        let f = Formula::atom(0usize, &[0 as Var, 1 as Var]);
        let q = Cq::from_formula(&f, &v).unwrap();
        let fo: Vec<Vec<Elem>> = f.answers(&w);
        prop_assert_eq!(q.answers(&w), fo);
    }

    /// The canonical structure of the canonical query is the structure.
    #[test]
    fn canonical_fixed_point(n in 1usize..6, seed in any::<u64>()) {
        let s = generators::random_digraph(n, 2 * n, seed);
        let q = Cq::canonical_query(&s);
        prop_assert_eq!(q.canonical(), &s);
    }

    /// CQ² path sentences: Lemma 7.2 invariants hold for every length —
    /// canonical structure is the path, decomposition width < 2, evaluation
    /// agrees with the plain FO semantics.
    #[test]
    fn cqk_path_family(len in 1usize..7, w in digraph_strategy(5, 10)) {
        let v = Vocabulary::digraph();
        let q = hp_logic::path_cq2(len);
        prop_assert_eq!(q.formula().distinct_var_count(), 2);
        let (cq, td) = q.canonical(&v);
        prop_assert_eq!(cq.canonical().universe_size(), len + 1);
        prop_assert!(td.width() < 2);
        prop_assert_eq!(q.holds(&w), cq.holds_in(&w));
    }

    /// NNF preserves semantics on arbitrary EP sentences and their
    /// negations.
    #[test]
    fn nnf_semantics(f in ep_sentence_strategy(), w in digraph_strategy(4, 8)) {
        let g = Formula::not(f.clone());
        prop_assert_eq!(f.nnf().holds(&w), f.holds(&w));
        prop_assert_eq!(g.nnf().holds(&w), !f.holds(&w));
        // Quantifier rank never increases under NNF.
        prop_assert!(g.nnf().quantifier_rank() <= g.quantifier_rank().max(f.quantifier_rank()));
    }

    /// Display-with-vocabulary output of EP sentences re-parses to a
    /// semantically equal formula.
    #[test]
    fn display_parse_roundtrip(f in ep_sentence_strategy(), w in digraph_strategy(4, 8)) {
        let v = Vocabulary::digraph();
        let text = f.display_with(&v);
        let (g, _) = hp_logic::parse_formula(&text, &v)
            .unwrap_or_else(|e| panic!("reparse failed on {text}: {e}"));
        prop_assert_eq!(f.holds(&w), g.holds(&w), "text: {}", text);
    }
}
