//! Model checking for first-order formulas over finite structures.

use hp_structures::{Elem, Structure};

use crate::ast::{Formula, Var};

impl Formula {
    /// Evaluate the formula in `a` under the variable assignment `env`
    /// (`env[v]` is the value of variable `v`; `None` for unassigned).
    ///
    /// Evaluation is the naive recursive semantics — exponential in the
    /// quantifier depth times universe size, which is exactly what the
    /// paper's effectivity arguments assume (first-order model checking on
    /// the small structures in scope). Free variables must be assigned.
    ///
    /// # Panics
    /// Panics if a free variable is unassigned or out of `env`'s range.
    pub fn eval(&self, a: &Structure, env: &mut Vec<Option<Elem>>) -> bool {
        match self {
            Formula::Atom(atom) => {
                let t: Vec<Elem> = atom
                    .args
                    .iter()
                    .map(|&v| env[v as usize].expect("unassigned free variable"))
                    .collect();
                a.contains_tuple(atom.sym, &t)
            }
            Formula::Eq(x, y) => {
                env[*x as usize].expect("unassigned free variable")
                    == env[*y as usize].expect("unassigned free variable")
            }
            Formula::Not(g) => !g.eval(a, env),
            Formula::And(gs) => gs.iter().all(|g| g.eval(a, env)),
            Formula::Or(gs) => gs.iter().any(|g| g.eval(a, env)),
            Formula::Exists(x, g) => self.eval_quant(a, env, *x, g, true),
            Formula::Forall(x, g) => !self.eval_quant(a, env, *x, g, false),
        }
    }

    fn eval_quant(
        &self,
        a: &Structure,
        env: &mut Vec<Option<Elem>>,
        x: Var,
        g: &Formula,
        exists: bool,
    ) -> bool {
        let xi = x as usize;
        if env.len() <= xi {
            env.resize(xi + 1, None);
        }
        let saved = env[xi];
        let mut found = false;
        for e in a.elements() {
            env[xi] = Some(e);
            let v = g.eval(a, env);
            if exists && v {
                found = true;
                break;
            }
            if !exists && !v {
                // Forall: found a counterexample; report "exists ¬g".
                found = true;
                break;
            }
        }
        env[xi] = saved;
        found
    }

    /// Evaluate a **sentence** in `a`.
    ///
    /// # Panics
    /// Panics if the formula has free variables.
    pub fn holds(&self, a: &Structure) -> bool {
        assert!(self.is_sentence(), "holds() requires a sentence");
        let max = self.all_vars().iter().max().map_or(0, |&v| v as usize + 1);
        let mut env = vec![None; max];
        self.eval(a, &mut env)
    }

    /// Evaluate with the given assignment for the free variables, listed as
    /// `(var, value)` pairs.
    pub fn holds_with(&self, a: &Structure, assignment: &[(Var, Elem)]) -> bool {
        let max_formula = self.all_vars().iter().max().map_or(0, |&v| v as usize + 1);
        let max_assign = assignment
            .iter()
            .map(|&(v, _)| v as usize + 1)
            .max()
            .unwrap_or(0);
        let mut env = vec![None; max_formula.max(max_assign)];
        for &(v, e) in assignment {
            env[v as usize] = Some(e);
        }
        self.eval(a, &mut env)
    }

    /// All satisfying assignments of the formula's free variables, in the
    /// order given by `free_vars()`. For a sentence this returns one empty
    /// tuple iff the sentence holds.
    pub fn answers(&self, a: &Structure) -> Vec<Vec<Elem>> {
        let frees: Vec<Var> = self.free_vars().into_iter().collect();
        let max = self.all_vars().iter().max().map_or(0, |&v| v as usize + 1);
        let mut env = vec![None; max];
        let mut out = Vec::new();
        fn rec(
            f: &Formula,
            a: &Structure,
            frees: &[Var],
            i: usize,
            env: &mut Vec<Option<Elem>>,
            out: &mut Vec<Vec<Elem>>,
        ) {
            if i == frees.len() {
                if f.eval(a, env) {
                    out.push(
                        frees
                            .iter()
                            .map(|&v| env[v as usize].expect("assigned"))
                            .collect(),
                    );
                }
                return;
            }
            for e in a.elements() {
                env[frees[i] as usize] = Some(e);
                rec(f, a, frees, i + 1, env, out);
            }
            env[frees[i] as usize] = None;
        }
        rec(self, a, &frees, 0, &mut env, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Formula;
    use hp_structures::generators::{directed_cycle, directed_path, transitive_tournament};
    use hp_structures::{Structure, Vocabulary};

    fn edge(x: Var, y: Var) -> Formula {
        Formula::atom(0usize, &[x, y])
    }

    /// "There is a path of length 2": ∃x∃y∃z (E(x,y) ∧ E(y,z)).
    fn path2() -> Formula {
        Formula::exists(
            0,
            Formula::exists(
                1,
                Formula::exists(2, Formula::And(vec![edge(0, 1), edge(1, 2)])),
            ),
        )
    }

    #[test]
    fn existential_sentences() {
        assert!(path2().holds(&directed_path(3)));
        assert!(!path2().holds(&directed_path(2)));
        assert!(path2().holds(&directed_cycle(3)));
    }

    #[test]
    fn universal_sentences() {
        // "Every element has an outgoing edge": ∀x∃y E(x,y).
        let f = Formula::forall(0, Formula::exists(1, edge(0, 1)));
        assert!(f.holds(&directed_cycle(4)));
        assert!(!f.holds(&directed_path(4)));
    }

    #[test]
    fn negation_and_equality() {
        // "There are two distinct elements with edges both ways" — fails on
        // a tournament, holds on the symmetric 2-cycle.
        let f = Formula::exists(
            0,
            Formula::exists(
                1,
                Formula::And(vec![
                    Formula::not(Formula::Eq(0, 1)),
                    edge(0, 1),
                    edge(1, 0),
                ]),
            ),
        );
        assert!(!f.holds(&transitive_tournament(4)));
        assert!(f.holds(&directed_cycle(2)));
    }

    #[test]
    fn answers_of_free_formula() {
        // E(x0, x1) on the path 0->1->2: answers {(0,1), (1,2)}.
        let f = edge(0, 1);
        let ans = f.answers(&directed_path(3));
        assert_eq!(ans.len(), 2);
        assert!(ans.contains(&vec![Elem(0), Elem(1)]));
        assert!(ans.contains(&vec![Elem(1), Elem(2)]));
    }

    #[test]
    fn holds_with_assignment() {
        let f = Formula::exists(1, edge(0, 1)); // "x0 has an out-edge"
        let p = directed_path(3);
        assert!(f.holds_with(&p, &[(0, Elem(0))]));
        assert!(f.holds_with(&p, &[(0, Elem(1))]));
        assert!(!f.holds_with(&p, &[(0, Elem(2))]));
    }

    #[test]
    fn top_bottom_eval() {
        let a = Structure::new(Vocabulary::digraph(), 0);
        assert!(Formula::top().holds(&a));
        assert!(!Formula::bottom().holds(&a));
        // On the empty structure, ∃x ⊤ is false and ∀x ⊥ is true.
        assert!(!Formula::exists(0, Formula::top()).holds(&a));
        assert!(Formula::forall(0, Formula::bottom()).holds(&a));
    }

    #[test]
    fn answers_of_sentence() {
        let f = path2();
        assert_eq!(f.answers(&directed_path(3)), vec![Vec::<Elem>::new()]);
        assert!(f.answers(&directed_path(2)).is_empty());
    }
}
