//! Unions of conjunctive queries (select-project-join-union queries).

use hp_guard::{Budget, Gauge, Stop};
use hp_structures::{Elem, Structure, Vocabulary};

use crate::ast::{Atom, Formula, Var};
use crate::cq::Cq;
use crate::key::CanonicalCoreKey;
use hp_hom::canonical_form_pointed_gauged;

/// A union of conjunctive queries `q₁ ∨ ⋯ ∨ q_m`, all of the same arity.
///
/// The paper's target syntactic class: a first-order query preserved under
/// homomorphisms on a suitable class is equivalent to one of these
/// (Theorems 3.5 / 4.4 / 5.4), via the disjunction of the canonical queries
/// of its minimal models (Theorem 3.1).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Ucq {
    disjuncts: Vec<Cq>,
    arity: usize,
}

impl Ucq {
    /// The empty union — the unsatisfiable query ⊥ of the given arity.
    pub fn empty(arity: usize) -> Ucq {
        Ucq {
            disjuncts: Vec::new(),
            arity,
        }
    }

    /// Build from disjuncts.
    ///
    /// # Panics
    /// Panics when disjunct arities disagree.
    pub fn new(disjuncts: Vec<Cq>) -> Ucq {
        let arity = disjuncts.first().map_or(0, Cq::arity);
        assert!(
            disjuncts.iter().all(|d| d.arity() == arity),
            "mixed arities in UCQ"
        );
        Ucq { disjuncts, arity }
    }

    /// The disjunction of the **canonical queries** of the given structures
    /// — the Theorem 3.1(1⇒2) construction from a set of minimal models.
    pub fn from_structures<'a, I: IntoIterator<Item = &'a Structure>>(models: I) -> Ucq {
        Ucq::new(models.into_iter().map(Cq::canonical_query).collect())
    }

    /// The disjuncts.
    pub fn disjuncts(&self) -> &[Cq] {
        &self.disjuncts
    }

    /// Query arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of disjuncts.
    pub fn len(&self) -> usize {
        self.disjuncts.len()
    }

    /// True when the union is empty (⊥).
    pub fn is_empty(&self) -> bool {
        self.disjuncts.is_empty()
    }

    /// Add a disjunct.
    ///
    /// # Panics
    /// Panics on arity mismatch (unless the union was empty).
    pub fn push(&mut self, q: Cq) {
        if self.disjuncts.is_empty() {
            self.arity = q.arity();
        }
        assert_eq!(q.arity(), self.arity, "mixed arities in UCQ");
        self.disjuncts.push(q);
    }

    /// Boolean evaluation: some disjunct holds.
    pub fn holds_in(&self, b: &Structure) -> bool {
        self.disjuncts.iter().any(|d| d.holds_in(b))
    }

    /// Evaluation at a fixed answer tuple.
    pub fn holds_with(&self, b: &Structure, tuple: &[Elem]) -> bool {
        self.disjuncts.iter().any(|d| d.holds_with(b, tuple))
    }

    /// All answers over `b` (union over disjuncts, dedup + sorted).
    pub fn answers(&self, b: &Structure) -> Vec<Vec<Elem>> {
        let mut out: Vec<Vec<Elem>> = self.disjuncts.iter().flat_map(|d| d.answers(b)).collect();
        out.sort();
        out.dedup();
        out
    }

    /// **Sagiv–Yannakakis containment**: `self ⊑ other` iff every disjunct
    /// of `self` is contained in *some* disjunct of `other`.
    pub fn is_contained_in(&self, other: &Ucq) -> bool {
        self.disjuncts
            .iter()
            .all(|d| other.disjuncts.iter().any(|e| d.is_contained_in(e)))
    }

    /// Logical equivalence.
    pub fn is_equivalent_to(&self, other: &Ucq) -> bool {
        self.is_contained_in(other) && other.is_contained_in(self)
    }

    /// Gauged Sagiv–Yannakakis containment: every per-disjunct-pair
    /// homomorphism search charges the shared gauge.
    pub fn is_contained_in_gauged(&self, other: &Ucq, gauge: &mut Gauge) -> Result<bool, Stop> {
        for d in &self.disjuncts {
            let mut covered = false;
            for e in &other.disjuncts {
                if d.is_contained_in_gauged(e, gauge)? {
                    covered = true;
                    break;
                }
            }
            if !covered {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Gauged logical equivalence.
    pub fn is_equivalent_to_gauged(&self, other: &Ucq, gauge: &mut Gauge) -> Result<bool, Stop> {
        Ok(self.is_contained_in_gauged(other, gauge)?
            && other.is_contained_in_gauged(self, gauge)?)
    }

    /// Minimize: minimize every disjunct to its core form and drop disjuncts
    /// contained in another kept disjunct. The result is equivalent and
    /// irredundant.
    pub fn minimize(&self) -> Ucq {
        let mut gauge = Budget::unlimited().gauge();
        match self.minimize_gauged(&mut gauge) {
            Ok(u) => u,
            Err(_) => unreachable!("an unlimited budget cannot exhaust"),
        }
    }

    /// [`minimize`](Ucq::minimize) charging an existing gauge.
    pub fn minimize_gauged(&self, gauge: &mut Gauge) -> Result<Ucq, Stop> {
        let mut cores: Vec<Cq> = Vec::with_capacity(self.disjuncts.len());
        for d in &self.disjuncts {
            cores.push(d.minimize_gauged(gauge)?);
        }
        let mut kept: Vec<Cq> = Vec::new();
        'outer: for (i, q) in cores.iter().enumerate() {
            // Drop q if it is contained in a kept disjunct, or in a later
            // disjunct (the later one will be kept or subsumed itself —
            // checking "contained in any other not yet dropped" with a
            // stable rule: keep q unless contained in some kept one or some
            // strictly later one).
            for k in &kept {
                if q.is_contained_in_gauged(k, gauge)? {
                    continue 'outer;
                }
            }
            for later in cores.iter().skip(i + 1) {
                if q.is_contained_in_gauged(later, gauge)? {
                    continue 'outer;
                }
            }
            kept.push(q.clone());
        }
        Ok(Ucq {
            disjuncts: kept,
            arity: self.arity,
        })
    }

    /// The stable [`CanonicalCoreKey`] of the union: minimize to the
    /// irredundant union of cores (unique up to isomorphism of disjuncts),
    /// key each pointed core, and combine order-insensitively. Logically
    /// equivalent UCQs get the identical key.
    pub fn canonical_core_key(&self) -> CanonicalCoreKey {
        let mut gauge = Budget::unlimited().gauge();
        match self.canonical_core_key_gauged(&mut gauge) {
            Ok(k) => k,
            Err(_) => unreachable!("an unlimited budget cannot exhaust"),
        }
    }

    /// [`canonical_core_key`](Ucq::canonical_core_key) charging an
    /// existing gauge.
    pub fn canonical_core_key_gauged(&self, gauge: &mut Gauge) -> Result<CanonicalCoreKey, Stop> {
        let m = self.minimize_gauged(gauge)?;
        let mut keys: Vec<CanonicalCoreKey> = Vec::with_capacity(m.disjuncts.len());
        for d in &m.disjuncts {
            let form = canonical_form_pointed_gauged(d.canonical(), d.free(), gauge)?;
            keys.push(CanonicalCoreKey::of_form(&form));
        }
        Ok(CanonicalCoreKey::combine(self.arity, &keys))
    }

    /// Render as an existential-positive formula (disjunction of prenex
    /// conjunctive formulas over shared free variables).
    ///
    /// Free positions are mapped to variables `0..arity`; the existential
    /// variables of each disjunct are renamed apart automatically.
    pub fn to_formula(&self) -> Formula {
        if self.disjuncts.is_empty() {
            return Formula::bottom();
        }
        let mut parts = Vec::new();
        for d in &self.disjuncts {
            // Variables: free positions first (identified across disjuncts),
            // then the rest of the canonical structure.
            let n = d.canonical().universe_size();
            let arity = self.arity as Var;
            // var_of_elem: free elements get their *position* id; others get
            // arity + dense index. An element serving several free positions
            // takes the first and equalities pin the rest.
            let mut var_of_elem: Vec<Option<Var>> = vec![None; n];
            let mut eqs: Vec<(Var, Var)> = Vec::new();
            for (pos, &fe) in d.free().iter().enumerate() {
                match var_of_elem[fe.index()] {
                    None => var_of_elem[fe.index()] = Some(pos as Var),
                    Some(first) => eqs.push((first, pos as Var)),
                }
            }
            let mut next = arity;
            let mut exist_vars = Vec::new();
            for v in var_of_elem.iter_mut().take(n) {
                if v.is_none() {
                    *v = Some(next);
                    exist_vars.push(next);
                    next += 1;
                }
            }
            let mut conj: Vec<Formula> = eqs.into_iter().map(|(a, b)| Formula::Eq(a, b)).collect();
            for (sym, rel) in d.canonical().relations() {
                for t in rel.iter() {
                    conj.push(Formula::Atom(Atom {
                        sym,
                        args: t
                            .iter()
                            .map(|e| var_of_elem[e.index()].expect("numbered"))
                            .collect(),
                    }));
                }
            }
            let mut body = Formula::And(conj);
            for v in exist_vars.into_iter().rev() {
                body = Formula::exists(v, body);
            }
            parts.push(body);
        }
        Formula::Or(parts)
    }
}

/// Convert an arbitrary **existential-positive** formula to an equivalent
/// UCQ, by renaming binders apart, distributing ∧ and ∃ over ∨ (DNF
/// expansion), and eliminating equalities by unification.
///
/// Returns `Err` when the formula is not existential positive or is
/// ill-formed over `vocab`. The expansion can be exponential in the size of
/// the formula — inherent to the normal form, as the paper notes when
/// rewriting `∃FO^{k,+}` sentences as finite disjunctions of `CQ^k`
/// sentences.
pub fn ucq_of_existential_positive(f: &Formula, vocab: &Vocabulary) -> Result<Ucq, String> {
    if !f.is_existential_positive() {
        return Err(format!("formula is not existential positive: {f}"));
    }
    let free_vars: Vec<Var> = f.free_vars().into_iter().collect();
    let g = f.renamed_apart();
    // DNF over atom/equality literals; binders can be ignored after
    // renaming apart (every bound variable is implicitly existential).
    #[derive(Clone)]
    struct Conj {
        atoms: Vec<Atom>,
        eqs: Vec<(Var, Var)>,
    }
    fn dnf(f: &Formula) -> Vec<Conj> {
        match f {
            Formula::Atom(a) => vec![Conj {
                atoms: vec![a.clone()],
                eqs: vec![],
            }],
            Formula::Eq(x, y) => vec![Conj {
                atoms: vec![],
                eqs: vec![(*x, *y)],
            }],
            Formula::Or(gs) => gs.iter().flat_map(dnf).collect(),
            Formula::And(gs) => {
                let mut acc = vec![Conj {
                    atoms: vec![],
                    eqs: vec![],
                }];
                for g in gs {
                    let parts = dnf(g);
                    let mut next = Vec::with_capacity(acc.len() * parts.len());
                    for a in &acc {
                        for p in &parts {
                            let mut c = a.clone();
                            c.atoms.extend(p.atoms.iter().cloned());
                            c.eqs.extend(p.eqs.iter().copied());
                            next.push(c);
                        }
                    }
                    acc = next;
                }
                acc
            }
            Formula::Exists(_, g) => dnf(g),
            _ => unreachable!("checked existential positive"),
        }
    }
    let mut disjuncts = Vec::new();
    for c in dnf(&g) {
        for a in &c.atoms {
            if a.sym.index() >= vocab.len() || a.args.len() != vocab.arity(a.sym) {
                return Err("atom does not match vocabulary".to_string());
            }
        }
        // Build a conjunctive formula and reuse Cq::from_formula by
        // assembling the pieces directly.
        let mut conj: Vec<Formula> = c.eqs.iter().map(|&(a, b)| Formula::Eq(a, b)).collect();
        conj.extend(c.atoms.iter().map(|a| Formula::Atom(a.clone())));
        let body = Formula::And(conj);
        // Existentially close everything except the original free variables.
        let mut closed = body.clone();
        for &v in body.free_vars().iter().rev() {
            if !free_vars.contains(&v) {
                closed = Formula::exists(v, closed);
            }
        }
        // A disjunct may not mention some free variable of the whole
        // formula (e.g. `E(x,x) ∨ E(y,y)`): such a variable ranges over the
        // entire universe. Represent it as an isolated distinguished
        // element, which Cq::from_formula handles by including the free
        // variable list explicitly.
        let mut d = Cq::from_formula(&closed, vocab)?;
        if d.arity() != free_vars.len() {
            d = pad_free(&d, &free_vars, &closed);
        }
        disjuncts.push(d);
    }
    let mut u = Ucq::empty(free_vars.len());
    for d in disjuncts {
        u.push(d);
    }
    Ok(u)
}

/// Extend a CQ whose formula did not mention every free variable of the
/// surrounding UCQ: append fresh isolated elements for the missing
/// positions, keeping the free tuple aligned with `free_vars` order.
fn pad_free(d: &Cq, free_vars: &[Var], closed: &Formula) -> Cq {
    let present: Vec<Var> = closed.free_vars().into_iter().collect();
    let canon = d.canonical();
    let mut extra = 0u32;
    let mut free_elems: Vec<Elem> = Vec::with_capacity(free_vars.len());
    for &v in free_vars {
        if let Some(pos) = present.iter().position(|&p| p == v) {
            free_elems.push(d.free()[pos]);
        } else {
            free_elems.push(Elem(canon.universe_size() as u32 + extra));
            extra += 1;
        }
    }
    let mut s = Structure::new(
        canon.vocab().clone(),
        canon.universe_size() + extra as usize,
    );
    for (sym, rel) in canon.relations() {
        for t in rel.iter() {
            s.add_tuple(sym, t).expect("copy tuple");
        }
    }
    Cq::with_free(&s, &free_elems)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hp_structures::generators::{
        directed_cycle, directed_path, random_digraph, self_loop, transitive_tournament,
    };

    fn edge(x: Var, y: Var) -> Formula {
        Formula::atom(0usize, &[x, y])
    }

    fn path_q(len: usize) -> Cq {
        Cq::canonical_query(&directed_path(len + 1))
    }

    #[test]
    fn union_semantics() {
        // "path of length 3 OR a loop".
        let loop_q = Cq::canonical_query(&self_loop());
        let u = Ucq::new(vec![path_q(3), loop_q]);
        assert!(u.holds_in(&directed_path(4)));
        assert!(u.holds_in(&self_loop()));
        assert!(!u.holds_in(&directed_path(3)));
        assert!(u.holds_in(&directed_cycle(2))); // wraps: has paths of any length
    }

    #[test]
    fn empty_ucq_is_false() {
        let u = Ucq::empty(0);
        assert!(!u.holds_in(&directed_path(4)));
        assert!(u.is_contained_in(&Ucq::new(vec![path_q(1)])));
        assert!(u.is_empty());
    }

    #[test]
    fn sagiv_yannakakis_containment() {
        // {len-3} ⊑ {len-1, len-2} since len-3 ⊑ len-2 ⊑ len-1.
        let a = Ucq::new(vec![path_q(3)]);
        let b = Ucq::new(vec![path_q(1), path_q(2)]);
        assert!(a.is_contained_in(&b));
        assert!(!b.is_contained_in(&a));
        // {len-1, loop} vs {len-1}: loop ⊑ len-1 (a loop has paths of all
        // lengths: hom from path into loop exists), so equivalent!
        let c = Ucq::new(vec![path_q(1), Cq::canonical_query(&self_loop())]);
        let d = Ucq::new(vec![path_q(1)]);
        assert!(c.is_equivalent_to(&d));
    }

    #[test]
    fn minimize_drops_subsumed_disjuncts() {
        let u = Ucq::new(vec![
            path_q(1),
            path_q(2),
            path_q(3),
            Cq::canonical_query(&self_loop()),
        ]);
        let m = u.minimize();
        // Everything is contained in path_q(1).
        assert_eq!(m.len(), 1);
        assert!(m.is_equivalent_to(&u));
    }

    #[test]
    fn minimize_keeps_incomparable_disjuncts() {
        // "loop" and "two distinct mutually-connected nodes" are
        // incomparable with... use: C2 query and C3 query: hom(C2,C3)? C2 is
        // the directed 2-cycle: no hom into C3 (2-cycle wraps to... a hom
        // C2→C3 needs an edge pair u->v->u in C3: none). hom(C3,C2): needs
        // 3-cycle in C2: 0->1->0->1: h(0)=0,h(1)=1,h(2)=0, edge h(2)->h(0) =
        // 0->0 missing. So incomparable.
        let u = Ucq::new(vec![
            Cq::canonical_query(&directed_cycle(2)),
            Cq::canonical_query(&directed_cycle(3)),
        ]);
        let m = u.minimize();
        assert_eq!(m.len(), 2);
        assert!(m.is_equivalent_to(&u));
    }

    #[test]
    fn ep_to_ucq_distributes() {
        let v = Vocabulary::digraph();
        // ∃x (E(x,x) ∨ ∃y (E(x,y) ∧ E(y,x)))
        let f = Formula::exists(
            0,
            Formula::Or(vec![
                edge(0, 0),
                Formula::exists(1, Formula::And(vec![edge(0, 1), edge(1, 0)])),
            ]),
        );
        let u = ucq_of_existential_positive(&f, &v).unwrap();
        assert_eq!(u.len(), 2);
        // Semantics agree with direct FO evaluation on random digraphs.
        for seed in 0..10 {
            let b = random_digraph(5, 6, seed);
            assert_eq!(u.holds_in(&b), f.holds(&b), "seed {seed}");
        }
    }

    #[test]
    fn ep_to_ucq_conjunction_of_disjunctions() {
        let v = Vocabulary::digraph();
        // (∃x E(x,x) ∨ P3) ∧ (∃y E(y,y) ∨ P2) expands to 4 disjuncts.
        let loop0 = Formula::exists(0, edge(0, 0));
        let p3 = Formula::exists(
            1,
            Formula::exists(2, Formula::And(vec![edge(1, 2), edge(2, 1)])),
        );
        let f = Formula::And(vec![
            Formula::Or(vec![loop0.clone(), p3.clone()]),
            Formula::Or(vec![loop0, p3]),
        ]);
        let u = ucq_of_existential_positive(&f, &v).unwrap();
        assert_eq!(u.len(), 4);
        for seed in 0..10 {
            let b = random_digraph(5, 7, seed + 100);
            assert_eq!(u.holds_in(&b), f.holds(&b), "seed {seed}");
        }
    }

    #[test]
    fn ep_to_ucq_with_free_vars_padding() {
        let v = Vocabulary::digraph();
        // E(x0,x0) ∨ E(x1,x1): each disjunct misses one free variable.
        let f = Formula::Or(vec![edge(0, 0), edge(1, 1)]);
        let u = ucq_of_existential_positive(&f, &v).unwrap();
        assert_eq!(u.arity(), 2);
        let mut b = transitive_tournament(3);
        b.add_tuple_ids(0, &[1, 1]).unwrap(); // loop at 1
        let ans = u.answers(&b);
        // Answers: (1, y) for all y, plus (x, 1) for all x = 3 + 3 - 1 = 5.
        assert_eq!(ans.len(), 5);
        // Cross-check against FO answers.
        let fo = f.answers(&b);
        assert_eq!(ans, fo);
    }

    #[test]
    fn ucq_core_keys_are_stable_under_presentation() {
        // Disjunct order and subsumed disjuncts don't change the key.
        let a = Ucq::new(vec![path_q(1), path_q(3)]);
        let b = Ucq::new(vec![
            path_q(3),
            path_q(1),
            Cq::canonical_query(&self_loop()),
        ]);
        assert!(a.is_equivalent_to(&b));
        assert_eq!(a.canonical_core_key(), b.canonical_core_key());
        // Incomparable unions differ.
        let c = Ucq::new(vec![
            Cq::canonical_query(&directed_cycle(2)),
            Cq::canonical_query(&directed_cycle(3)),
        ]);
        assert_ne!(a.canonical_core_key(), c.canonical_core_key());
        // Both unions collapse to {path_q(1)}: longer paths and the loop
        // are contained in "has an edge".
        assert_eq!(a.minimize().len(), 1);
    }

    #[test]
    fn gauged_ucq_containment_matches_unbudgeted() {
        use hp_guard::Budget;
        let a = Ucq::new(vec![path_q(3)]);
        let b = Ucq::new(vec![path_q(1), path_q(2)]);
        let mut g = Budget::unlimited().gauge();
        assert!(a.is_contained_in_gauged(&b, &mut g).unwrap());
        assert!(!b.is_contained_in_gauged(&a, &mut g).unwrap());
        let mut tiny = Budget::fuel(1).gauge();
        assert!(b.canonical_core_key_gauged(&mut tiny).is_err());
    }

    #[test]
    fn ep_rejects_negation() {
        let v = Vocabulary::digraph();
        let f = Formula::not(edge(0, 1));
        assert!(ucq_of_existential_positive(&f, &v).is_err());
    }

    #[test]
    fn to_formula_matches_semantics() {
        let u = Ucq::new(vec![path_q(2), Cq::canonical_query(&directed_cycle(2))]);
        let f = u.to_formula();
        assert!(f.is_existential_positive());
        for seed in 0..10 {
            let b = random_digraph(5, 6, seed + 50);
            assert_eq!(f.holds(&b), u.holds_in(&b), "seed {seed}");
        }
    }

    #[test]
    fn to_formula_nonboolean_roundtrip() {
        let v = Vocabulary::digraph();
        // Answers of "x0 has an out-neighbor with a loop" style query.
        let f = Formula::exists(1, Formula::And(vec![edge(0, 1), edge(1, 1)]));
        let u = ucq_of_existential_positive(&f, &v).unwrap();
        let g = u.to_formula();
        for seed in 0..6 {
            let b = random_digraph(5, 8, seed + 7);
            assert_eq!(g.answers(&b), u.answers(&b), "seed {seed}");
            assert_eq!(f.answers(&b), u.answers(&b), "seed {seed}");
        }
    }
}
