//! Ehrenfeucht–Fraïssé games for full first-order logic.
//!
//! The paper invokes (proof of Proposition 7.9) the classical fact that
//! *"given a finite directed graph, is it acyclic?" is not first-order
//! definable — "this can be shown using Ehrenfeucht–Fraïssé games"*. This
//! module makes that argument executable: [`duplicator_wins_ef`] decides
//! the r-round EF game, and the classical witness pairs (long directed
//! paths vs long directed cycles) are produced by
//! [`fo_inexpressibility_witness`].
//!
//! Two structures agree on all FO sentences of quantifier rank ≤ r iff the
//! Duplicator wins the r-round EF game on them (Ehrenfeucht's theorem), so
//! a family of pairs (Aᵣ acyclic, Bᵣ cyclic) with Duplicator wins at rank r
//! for every r witnesses that acyclicity is not FO-definable.

use hp_structures::{Elem, Structure};

/// Is `(ā ↦ b̄)` a partial isomorphism? Both directions: tuples among the
/// chosen elements must match exactly, and the pairing must be injective
/// and functional.
fn is_partial_isomorphism(a: &Structure, b: &Structure, pairs: &[(Elem, Elem)]) -> bool {
    // Functionality and injectivity.
    for (i, &(x1, y1)) in pairs.iter().enumerate() {
        for &(x2, y2) in &pairs[i + 1..] {
            if (x1 == x2) != (y1 == y2) {
                return false;
            }
        }
    }
    // Atom agreement both ways, over all tuples of chosen elements.
    let max_ar = a.vocab().max_arity();
    let idx: Vec<usize> = (0..pairs.len()).collect();
    // Enumerate all tuples over `pairs` up to max arity, checking each
    // relation of matching arity.
    fn rec(
        a: &Structure,
        b: &Structure,
        pairs: &[(Elem, Elem)],
        tup: &mut Vec<usize>,
        max_ar: usize,
    ) -> bool {
        if !tup.is_empty() {
            let ar = tup.len();
            let ta: Vec<Elem> = tup.iter().map(|&i| pairs[i].0).collect();
            let tb: Vec<Elem> = tup.iter().map(|&i| pairs[i].1).collect();
            for (sym, s) in a.vocab().iter() {
                if s.arity == ar && a.contains_tuple(sym, &ta) != b.contains_tuple(sym, &tb) {
                    return false;
                }
            }
        }
        if tup.len() == max_ar {
            return true;
        }
        for i in 0..pairs.len() {
            tup.push(i);
            if !rec(a, b, pairs, tup, max_ar) {
                return false;
            }
            tup.pop();
        }
        true
    }
    let _ = idx;
    rec(a, b, pairs, &mut Vec::new(), max_ar)
}

/// Decide the r-round Ehrenfeucht–Fraïssé game on (A, B) by exhaustive
/// minimax: in each round the Spoiler picks an element of either structure,
/// the Duplicator answers in the other; the Duplicator wins when the final
/// pairing is a partial isomorphism.
///
/// Exponential in `r` (the structures' sizes multiply per round); intended
/// for the small witness families below.
pub fn duplicator_wins_ef(a: &Structure, b: &Structure, rounds: usize) -> bool {
    fn play(a: &Structure, b: &Structure, pairs: &mut Vec<(Elem, Elem)>, r: usize) -> bool {
        if !is_partial_isomorphism(a, b, pairs) {
            return false;
        }
        if r == 0 {
            return true;
        }
        // Spoiler plays in A: Duplicator must answer in B.
        for x in a.elements() {
            let mut ok = false;
            for y in b.elements() {
                pairs.push((x, y));
                if play(a, b, pairs, r - 1) {
                    ok = true;
                }
                pairs.pop();
                if ok {
                    break;
                }
            }
            if !ok {
                return false;
            }
        }
        // Spoiler plays in B.
        for y in b.elements() {
            let mut ok = false;
            for x in a.elements() {
                pairs.push((x, y));
                if play(a, b, pairs, r - 1) {
                    ok = true;
                }
                pairs.pop();
                if ok {
                    break;
                }
            }
            if !ok {
                return false;
            }
        }
        true
    }
    play(a, b, &mut Vec::new(), rounds)
}

/// The classical inexpressibility witness for acyclicity at quantifier
/// rank `r`: a long directed path `P` versus `P ⊕ C` (the same path plus a
/// disjoint long cycle). The first is acyclic, the second is not, yet for
/// lengths ≥ 2^{r+1} the Duplicator wins the r-round game by the standard
/// distance-halving strategy — `duplicator_wins_ef` *verifies* the claim
/// rather than trusting it. Returns `(acyclic, cyclic)`.
///
/// (A bare path vs a bare cycle would NOT work: `∀x∃y E(x,y)` is a rank-2
/// sentence separating them via the path's sink. The disjoint-union form
/// keeps the sink on both sides.)
pub fn fo_inexpressibility_witness(r: usize) -> (Structure, Structure) {
    let n = 1usize << (r + 1);
    let path = hp_structures::generators::directed_path(n);
    let cycle = hp_structures::generators::directed_cycle(n);
    let with_cycle = path.disjoint_union(&cycle).expect("same vocabulary");
    (path, with_cycle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hp_structures::generators::{directed_cycle, directed_path, transitive_tournament};

    #[test]
    fn zero_rounds_always_duplicator() {
        let a = directed_path(3);
        let b = directed_cycle(4);
        assert!(duplicator_wins_ef(&a, &b, 0));
    }

    #[test]
    fn one_round_distinguishes_loop() {
        // A has a loop, B does not: Spoiler picks the loop element; any
        // Duplicator answer fails the E(x,x) atom.
        let a = hp_structures::generators::self_loop();
        let b = directed_path(2);
        assert!(!duplicator_wins_ef(&a, &b, 1));
        assert!(duplicator_wins_ef(&a, &b, 0));
    }

    #[test]
    fn small_structures_distinguished_quickly() {
        // P2 vs P3 differ at rank 2 ("there is a path of length 2" needs
        // 3 quantifiers but EF rank 2 suffices to expose the middle).
        let p2 = directed_path(2);
        let p3 = directed_path(3);
        assert!(duplicator_wins_ef(&p2, &p3, 1));
        assert!(!duplicator_wins_ef(&p2, &p3, 2));
    }

    #[test]
    fn isomorphic_structures_never_distinguished() {
        let a = transitive_tournament(3);
        for r in 0..3 {
            assert!(duplicator_wins_ef(&a, &a, r));
        }
    }

    #[test]
    fn acyclicity_witness_rank_1() {
        let (path, cycle) = fo_inexpressibility_witness(1);
        assert!(duplicator_wins_ef(&path, &cycle, 1));
    }

    #[test]
    fn acyclicity_witness_rank_2() {
        // Path and cycle of length ~8: Duplicator survives 2 rounds. This
        // is the executable content of "acyclicity is not FO" (used by
        // Prop 7.9: q(C3, 2) is not first-order definable).
        let (path, cycle) = fo_inexpressibility_witness(2);
        assert!(duplicator_wins_ef(&path, &cycle, 2));
        // Sanity: small path vs cycle ARE distinguished at low rank.
        assert!(!duplicator_wins_ef(
            &directed_path(2),
            &directed_cycle(2),
            2
        ));
    }

    #[test]
    fn ranked_sentences_transfer() {
        // Ehrenfeucht's theorem, sampled: if Duplicator wins r rounds, the
        // structures agree on our quantifier-rank ≤ r sentences.
        use crate::ast::Formula;
        let (a, b) = fo_inexpressibility_witness(2);
        assert!(duplicator_wins_ef(&a, &b, 2));
        let edge = |x, y| Formula::atom(0usize, &[x, y]);
        // Rank-2 sentences.
        let sentences = vec![
            Formula::exists(0, Formula::exists(1, edge(0, 1))),
            Formula::forall(0, Formula::exists(1, edge(0, 1))),
            Formula::exists(0, Formula::forall(1, Formula::not(edge(1, 0)))),
        ];
        for s in sentences {
            assert_eq!(s.holds(&a), s.holds(&b), "sentence {s} distinguishes");
        }
    }
}
