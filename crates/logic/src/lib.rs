//! # hp-logic
//!
//! First-order logic over finite relational structures, and the query
//! classes of the paper: **conjunctive queries** (CQ), **unions of
//! conjunctive queries** (UCQ / existential-positive formulas, a.k.a.
//! select-project-join-union queries), and the **k-variable fragments**
//! `CQ^k` of §7.
//!
//! Provided machinery:
//!
//! - a first-order formula AST ([`Formula`]) with model checking
//!   ([`Formula::holds`]) and a text parser ([`parse_formula`]);
//! - the Chandra–Merlin correspondence (Theorem 2.1): canonical conjunctive
//!   query of a structure ([`Cq::canonical_query`]) and canonical structure
//!   of a conjunctive query; CQ evaluation, containment, and minimization
//!   via cores;
//! - UCQs with the Sagiv–Yannakakis containment test
//!   ([`Ucq::is_contained_in`]);
//! - `CQ^k` formulas with variable reuse ([`CqkFormula`]) and the Lemma 7.2
//!   rewriting into a canonical structure of treewidth `< k` together with a
//!   width-`< k` tree decomposition extracted from the parse tree;
//! - conversion of arbitrary existential-positive formulas to UCQs
//!   ([`ucq_of_existential_positive`]).
//!
//! ```
//! use hp_structures::generators::{directed_cycle, directed_path};
//! use hp_logic::Cq;
//!
//! // Chandra–Merlin: B ⊨ φ_A iff hom(A, B).
//! let phi_p3 = Cq::canonical_query(&directed_path(3));
//! assert!(phi_p3.holds_in(&directed_cycle(3)));   // path wraps around
//! assert!(!phi_p3.holds_in(&directed_path(2)));   // too short
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod cq;
mod cqk;
mod display;
mod ef;
mod eval;
mod key;
mod locality;
mod parser;
mod ucq;

pub use ast::{Atom, Formula, Var};
pub use cq::Cq;
pub use cqk::{cqk_from_decomposition, path_cq2, CqkFormula, ParseTreeDecomposition};
pub use ef::{duplicator_wins_ef, fo_inexpressibility_witness};
pub use key::CanonicalCoreKey;
pub use locality::{hanf_equivalent, NeighborhoodSpectrum};
pub use parser::{parse_formula, ParseError};
pub use ucq::{ucq_of_existential_positive, Ucq};
