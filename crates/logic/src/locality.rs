//! Hanf locality: the neighborhood-type machinery behind Gaifman's
//! locality theorem, which the paper's Theorem 3.2 (Ajtai–Gurevich density
//! lemma) is built on.
//!
//! **Hanf's theorem** (finite, bounded-degree form): if every
//! d-neighborhood isomorphism type occurs the same number of times in `A`
//! and `B` up to a threshold `t` (with `d = 3^r`, `t = r·size-bound`),
//! then `A ≡_r B` (agreement on all FO sentences of quantifier rank ≤ r).
//!
//! This module computes neighborhood-type spectra and the induced
//! sufficient condition, giving a *scalable* FO-equivalence test for
//! bounded-degree structures that complements the exhaustive EF solver in
//! [`crate::duplicator_wins_ef`].

use hp_hom::are_isomorphic_pointed;
use hp_structures::{Elem, Structure};

/// The d-neighborhood **type spectrum** of a structure: representatives of
/// the pointed-isomorphism classes of `(N_d(a), a)` with their counts.
pub struct NeighborhoodSpectrum {
    /// One representative pointed neighborhood per class.
    pub types: Vec<(Structure, Elem)>,
    /// `counts[i]` = number of elements whose pointed d-neighborhood is
    /// isomorphic to `types[i]`.
    pub counts: Vec<usize>,
}

impl NeighborhoodSpectrum {
    /// Compute the spectrum of `a` at radius `d`.
    pub fn compute(a: &Structure, d: usize) -> Self {
        let mut types: Vec<(Structure, Elem)> = Vec::new();
        let mut counts: Vec<usize> = Vec::new();
        for e in a.elements() {
            let (nb, old_of_new) = a.neighborhood_substructure(e, d);
            let center = Elem(
                old_of_new
                    .iter()
                    .position(|&o| o == e)
                    .expect("center in its own neighborhood") as u32,
            );
            let mut found = false;
            for (i, (t, c)) in types.iter().enumerate() {
                if are_isomorphic_pointed(t, &[*c], &nb, &[center]) {
                    counts[i] += 1;
                    found = true;
                    break;
                }
            }
            if !found {
                types.push((nb, center));
                counts.push(1);
            }
        }
        NeighborhoodSpectrum { types, counts }
    }

    /// Number of distinct types.
    pub fn type_count(&self) -> usize {
        self.types.len()
    }
}

/// Hanf's sufficient condition: do `a` and `b` have the same
/// d-neighborhood type spectrum, counting multiplicities only up to
/// `threshold` (counts ≥ threshold are treated as "many")?
///
/// When this returns true with `d ≥ 3^r` and `threshold` large enough
/// relative to `r` and the degree bound, `a` and `b` agree on all FO
/// sentences of quantifier rank ≤ r.
pub fn hanf_equivalent(a: &Structure, b: &Structure, d: usize, threshold: usize) -> bool {
    let sa = NeighborhoodSpectrum::compute(a, d);
    let sb = NeighborhoodSpectrum::compute(b, d);
    let cap = |c: usize| c.min(threshold);
    // Match every type of a against b.
    let mut used = vec![false; sb.types.len()];
    'types: for (i, (t, c)) in sa.types.iter().enumerate() {
        for (j, (t2, c2)) in sb.types.iter().enumerate() {
            if !used[j] && are_isomorphic_pointed(t, &[*c], t2, &[*c2]) {
                if cap(sa.counts[i]) != cap(sb.counts[j]) {
                    return false;
                }
                used[j] = true;
                continue 'types;
            }
        }
        return false; // type of a missing in b
    }
    // Types of b not present in a.
    used.iter().all(|&u| u)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ef::duplicator_wins_ef;
    use hp_structures::generators::{directed_cycle, directed_path, random_bounded_degree};

    #[test]
    fn spectrum_of_path() {
        // Directed path P5, d = 1: types are (source), (sink), (middle) —
        // 3 types with counts 1, 1, 3.
        let p = directed_path(5);
        let s = NeighborhoodSpectrum::compute(&p, 1);
        assert_eq!(s.type_count(), 3);
        let mut counts = s.counts.clone();
        counts.sort_unstable();
        assert_eq!(counts, vec![1, 1, 3]);
    }

    #[test]
    fn spectrum_of_cycle_is_homogeneous() {
        let c = directed_cycle(6);
        for d in 0..3 {
            let s = NeighborhoodSpectrum::compute(&c, d);
            assert_eq!(s.type_count(), 1, "d = {d}");
            assert_eq!(s.counts[0], 6);
        }
    }

    #[test]
    fn hanf_separates_path_from_cycle() {
        // Paths have source/sink types cycles lack.
        assert!(!hanf_equivalent(
            &directed_path(8),
            &directed_cycle(8),
            1,
            3
        ));
    }

    #[test]
    fn hanf_confirms_the_ef_witness_family() {
        // P_n vs P_n ⊕ C_n: the only differing types are the "middle"
        // counts — with a small threshold the spectra agree, matching the
        // EF-game result.
        let n = 8;
        let p = directed_path(n);
        let pc = p.disjoint_union(&directed_cycle(n)).unwrap();
        assert!(hanf_equivalent(&p, &pc, 1, 3));
        assert!(duplicator_wins_ef(&p, &pc, 2));
        // With an exact count (huge threshold) they differ, of course.
        assert!(!hanf_equivalent(&p, &pc, 1, usize::MAX));
    }

    #[test]
    fn hanf_reflexive_and_respects_size_types() {
        let g = random_bounded_degree(30, 3, 200, 5).to_structure();
        assert!(hanf_equivalent(&g, &g, 2, 4));
        // Different degree profiles separate quickly.
        let h = random_bounded_degree(30, 2, 200, 6).to_structure();
        let _ = h; // spectra may or may not differ; just ensure it runs
        let _ = hanf_equivalent(&g, &h, 1, 4);
    }

    #[test]
    fn spectrum_radius_zero_counts_loops() {
        // d = 0: pointed types distinguish loop vs no-loop elements only.
        let mut a = directed_path(4);
        a.add_tuple_ids(0, &[2, 2]).unwrap();
        let s = NeighborhoodSpectrum::compute(&a, 0);
        assert_eq!(s.type_count(), 2);
        let mut counts = s.counts.clone();
        counts.sort_unstable();
        assert_eq!(counts, vec![1, 3]);
    }
}
