//! The first-order formula AST.

use std::collections::BTreeSet;
use std::fmt;

use hp_structures::SymbolId;

/// A first-order variable, identified by a dense index. The pretty-printer
/// renders `Var(i)` as `x{i}`.
pub type Var = u32;

/// An atomic formula `R(x₁, …, x_r)` (variables may repeat).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Atom {
    /// Relation symbol.
    pub sym: SymbolId,
    /// Argument variables.
    pub args: Vec<Var>,
}

/// A first-order formula over a relational vocabulary (§2.2).
///
/// Conjunction and disjunction are n-ary: `And(vec![])` is ⊤ and
/// `Or(vec![])` is ⊥. Equality atoms are a separate constructor so the
/// existential-positive normalizer can eliminate them by substitution.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Formula {
    /// `R(x̄)`.
    Atom(Atom),
    /// `x = y`.
    Eq(Var, Var),
    /// `¬φ`.
    Not(Box<Formula>),
    /// `φ₁ ∧ ⋯ ∧ φ_n` (⊤ when empty).
    And(Vec<Formula>),
    /// `φ₁ ∨ ⋯ ∨ φ_n` (⊥ when empty).
    Or(Vec<Formula>),
    /// `∃x φ`.
    Exists(Var, Box<Formula>),
    /// `∀x φ`.
    Forall(Var, Box<Formula>),
}

impl Formula {
    /// The true formula ⊤.
    pub fn top() -> Formula {
        Formula::And(Vec::new())
    }

    /// The false formula ⊥.
    pub fn bottom() -> Formula {
        Formula::Or(Vec::new())
    }

    /// Shorthand for an atom.
    pub fn atom(sym: impl Into<SymbolId>, args: &[Var]) -> Formula {
        Formula::Atom(Atom {
            sym: sym.into(),
            args: args.to_vec(),
        })
    }

    /// Shorthand for `∃x φ`.
    pub fn exists(x: Var, f: Formula) -> Formula {
        Formula::Exists(x, Box::new(f))
    }

    /// Shorthand for `∀x φ`.
    pub fn forall(x: Var, f: Formula) -> Formula {
        Formula::Forall(x, Box::new(f))
    }

    /// Shorthand for `¬φ`.
    #[allow(clippy::should_implement_trait)] // constructor, not an operator
    pub fn not(f: Formula) -> Formula {
        Formula::Not(Box::new(f))
    }

    /// The set of free variables.
    pub fn free_vars(&self) -> BTreeSet<Var> {
        fn go(f: &Formula, bound: &mut Vec<Var>, out: &mut BTreeSet<Var>) {
            match f {
                Formula::Atom(a) => {
                    for &v in &a.args {
                        if !bound.contains(&v) {
                            out.insert(v);
                        }
                    }
                }
                Formula::Eq(x, y) => {
                    for &v in [x, y] {
                        if !bound.contains(&v) {
                            out.insert(v);
                        }
                    }
                }
                Formula::Not(g) => go(g, bound, out),
                Formula::And(gs) | Formula::Or(gs) => {
                    for g in gs {
                        go(g, bound, out);
                    }
                }
                Formula::Exists(x, g) | Formula::Forall(x, g) => {
                    bound.push(*x);
                    go(g, bound, out);
                    bound.pop();
                }
            }
        }
        let mut out = BTreeSet::new();
        go(self, &mut Vec::new(), &mut out);
        out
    }

    /// All variables occurring (free or bound).
    pub fn all_vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        self.visit(&mut |f| match f {
            Formula::Atom(a) => out.extend(a.args.iter().copied()),
            Formula::Eq(x, y) => {
                out.insert(*x);
                out.insert(*y);
            }
            Formula::Exists(x, _) | Formula::Forall(x, _) => {
                out.insert(*x);
            }
            _ => {}
        });
        out
    }

    /// Number of **distinct** variables — the resource the `CQ^k` and
    /// `∃FO^{k,+}` fragments of §7 bound.
    pub fn distinct_var_count(&self) -> usize {
        self.all_vars().len()
    }

    /// True when the formula is a sentence (no free variables).
    pub fn is_sentence(&self) -> bool {
        self.free_vars().is_empty()
    }

    /// True when the formula is **existential positive**: built from atoms
    /// and equalities using only ∧, ∨, ∃ (§2.2).
    pub fn is_existential_positive(&self) -> bool {
        match self {
            Formula::Atom(_) | Formula::Eq(_, _) => true,
            Formula::And(gs) | Formula::Or(gs) => gs.iter().all(Formula::is_existential_positive),
            Formula::Exists(_, g) => g.is_existential_positive(),
            Formula::Not(_) | Formula::Forall(_, _) => false,
        }
    }

    /// True when the formula is a **primitive-positive / CQ-shaped** formula:
    /// existential positive without disjunction.
    pub fn is_conjunctive(&self) -> bool {
        match self {
            Formula::Atom(_) | Formula::Eq(_, _) => true,
            Formula::And(gs) => gs.iter().all(Formula::is_conjunctive),
            Formula::Exists(_, g) => g.is_conjunctive(),
            _ => false,
        }
    }

    /// Visit every subformula, outside-in.
    pub fn visit(&self, f: &mut impl FnMut(&Formula)) {
        f(self);
        match self {
            Formula::Not(g) | Formula::Exists(_, g) | Formula::Forall(_, g) => g.visit(f),
            Formula::And(gs) | Formula::Or(gs) => {
                for g in gs {
                    g.visit(f);
                }
            }
            _ => {}
        }
    }

    /// Rename bound variables so that **every binder binds a distinct,
    /// fresh variable** (fresh ids start above all existing variable ids).
    /// Free variables are untouched. This is the first step of the
    /// prenexing in Lemma 7.2 and of the existential-positive → UCQ
    /// normalization.
    pub fn renamed_apart(&self) -> Formula {
        fn go(f: &Formula, scope: &mut Vec<(Var, Var)>, next: &mut Var) -> Formula {
            let lookup = |v: Var, scope: &[(Var, Var)]| -> Var {
                scope
                    .iter()
                    .rev()
                    .find(|&&(from, _)| from == v)
                    .map_or(v, |&(_, to)| to)
            };
            match f {
                Formula::Atom(a) => Formula::Atom(Atom {
                    sym: a.sym,
                    args: a.args.iter().map(|&v| lookup(v, scope)).collect(),
                }),
                Formula::Eq(x, y) => Formula::Eq(lookup(*x, scope), lookup(*y, scope)),
                Formula::Not(g) => Formula::not(go(g, scope, next)),
                Formula::And(gs) => Formula::And(gs.iter().map(|g| go(g, scope, next)).collect()),
                Formula::Or(gs) => Formula::Or(gs.iter().map(|g| go(g, scope, next)).collect()),
                Formula::Exists(x, g) => {
                    let fresh = *next;
                    *next += 1;
                    scope.push((*x, fresh));
                    let g2 = go(g, scope, next);
                    scope.pop();
                    Formula::exists(fresh, g2)
                }
                Formula::Forall(x, g) => {
                    let fresh = *next;
                    *next += 1;
                    scope.push((*x, fresh));
                    let g2 = go(g, scope, next);
                    scope.pop();
                    Formula::forall(fresh, g2)
                }
            }
        }
        let mut next = self.all_vars().iter().max().map_or(0, |&v| v + 1);
        go(self, &mut Vec::new(), &mut next)
    }

    /// Rename every variable via `map` (applied to both binders and
    /// occurrences; the map must be injective on the variables in use or the
    /// result may capture).
    pub fn rename_vars(&self, map: &impl Fn(Var) -> Var) -> Formula {
        match self {
            Formula::Atom(a) => Formula::Atom(Atom {
                sym: a.sym,
                args: a.args.iter().map(|&v| map(v)).collect(),
            }),
            Formula::Eq(x, y) => Formula::Eq(map(*x), map(*y)),
            Formula::Not(g) => Formula::not(g.rename_vars(map)),
            Formula::And(gs) => Formula::And(gs.iter().map(|g| g.rename_vars(map)).collect()),
            Formula::Or(gs) => Formula::Or(gs.iter().map(|g| g.rename_vars(map)).collect()),
            Formula::Exists(x, g) => Formula::exists(map(*x), g.rename_vars(map)),
            Formula::Forall(x, g) => Formula::forall(map(*x), g.rename_vars(map)),
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::Atom(a) => {
                write!(f, "R{}(", a.sym.0)?;
                for (i, v) in a.args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "x{v}")?;
                }
                write!(f, ")")
            }
            Formula::Eq(x, y) => write!(f, "x{x}=x{y}"),
            Formula::Not(g) => write!(f, "~({g})"),
            Formula::And(gs) if gs.is_empty() => write!(f, "true"),
            Formula::Or(gs) if gs.is_empty() => write!(f, "false"),
            Formula::And(gs) => {
                write!(f, "(")?;
                for (i, g) in gs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " & ")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, ")")
            }
            Formula::Or(gs) => {
                write!(f, "(")?;
                for (i, g) in gs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, ")")
            }
            Formula::Exists(x, g) => write!(f, "exists x{x}. {g}"),
            Formula::Forall(x, g) => write!(f, "forall x{x}. {g}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(x: Var, y: Var) -> Formula {
        Formula::atom(0usize, &[x, y])
    }

    #[test]
    fn free_and_bound_vars() {
        // exists x0. E(x0, x1)
        let f = Formula::exists(0, edge(0, 1));
        assert_eq!(f.free_vars().into_iter().collect::<Vec<_>>(), vec![1]);
        assert_eq!(f.all_vars().len(), 2);
        assert!(!f.is_sentence());
        let g = Formula::exists(1, f);
        assert!(g.is_sentence());
    }

    #[test]
    fn fragment_recognizers() {
        let cq = Formula::exists(0, Formula::exists(1, edge(0, 1)));
        assert!(cq.is_existential_positive());
        assert!(cq.is_conjunctive());
        let ucq = Formula::Or(vec![cq.clone(), Formula::exists(0, edge(0, 0))]);
        assert!(ucq.is_existential_positive());
        assert!(!ucq.is_conjunctive());
        let neg = Formula::not(edge(0, 1));
        assert!(!neg.is_existential_positive());
        let univ = Formula::forall(0, edge(0, 0));
        assert!(!univ.is_existential_positive());
    }

    #[test]
    fn distinct_var_count_counts_reuse_once() {
        // exists x0 exists x1 (E(x0,x1) & exists x0 E(x1,x0)) — the paper's
        // CQ^2 example shape: 2 distinct variables.
        let f = Formula::exists(
            0,
            Formula::exists(
                1,
                Formula::And(vec![edge(0, 1), Formula::exists(0, edge(1, 0))]),
            ),
        );
        assert_eq!(f.distinct_var_count(), 2);
    }

    #[test]
    fn rename_vars_applies_everywhere() {
        let f = Formula::exists(0, edge(0, 1));
        let g = f.rename_vars(&|v| v + 10);
        assert_eq!(g, Formula::exists(10, edge(10, 11)));
    }

    #[test]
    fn renamed_apart_distinct_binders() {
        // exists x0 (E(x0,x1) & exists x0 E(x1,x0)): both binders get fresh
        // distinct names; free x1 unchanged.
        let f = Formula::exists(
            0,
            Formula::And(vec![edge(0, 1), Formula::exists(0, edge(1, 0))]),
        );
        let g = f.renamed_apart();
        // Collect binder variables.
        let mut binders = Vec::new();
        g.visit(&mut |h| {
            if let Formula::Exists(x, _) = h {
                binders.push(*x);
            }
        });
        assert_eq!(binders.len(), 2);
        assert_ne!(binders[0], binders[1]);
        assert!(g.free_vars().contains(&1));
        // Semantics preserved on a sample structure.
        use hp_structures::generators::directed_cycle;
        let c = directed_cycle(3);
        for e in c.elements() {
            assert_eq!(f.holds_with(&c, &[(1, e)]), g.holds_with(&c, &[(1, e)]));
        }
    }

    #[test]
    fn top_and_bottom() {
        assert!(Formula::top().is_existential_positive());
        assert!(Formula::top().is_sentence());
        assert_eq!(format!("{}", Formula::top()), "true");
        assert_eq!(format!("{}", Formula::bottom()), "false");
    }

    #[test]
    fn display_roundtrip_shape() {
        let f = Formula::exists(0, Formula::And(vec![edge(0, 1), Formula::Eq(0, 1)]));
        assert_eq!(format!("{f}"), "exists x0. (R0(x0,x1) & x0=x1)");
    }
}
