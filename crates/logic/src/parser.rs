//! A small text parser for first-order formulas.
//!
//! Grammar (precedence low→high: `|`, `&`, unary):
//!
//! ```text
//! formula  := or
//! or       := and ('|' and)*
//! and      := unary ('&' unary)*
//! unary    := '~' unary
//!           | ('exists' | 'forall') ident '.' formula
//!           | '(' formula ')'
//!           | 'true' | 'false'
//!           | ident '(' ident (',' ident)* ')'      — relational atom
//!           | ident '=' ident                        — equality
//! ```
//!
//! Relation names resolve against the supplied vocabulary; variables are
//! arbitrary identifiers, numbered in order of first occurrence.

use std::fmt;

use hp_structures::Vocabulary;

use crate::ast::{Atom, Formula, Var};

/// Parse failure, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input where it went wrong.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    text: &'a [u8],
    pos: usize,
    vocab: &'a Vocabulary,
    vars: Vec<String>,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: message.into(),
            offset: self.pos,
        })
    }

    fn skip_ws(&mut self) {
        while self.pos < self.text.len() && self.text[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.text.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), ParseError> {
        if self.eat(c) {
            Ok(())
        } else {
            self.err(format!("expected {:?}", c as char))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.text.len()
            && (self.text[self.pos].is_ascii_alphanumeric() || self.text[self.pos] == b'_')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return self.err("expected identifier");
        }
        Ok(String::from_utf8_lossy(&self.text[start..self.pos]).into_owned())
    }

    fn var(&mut self, name: &str) -> Var {
        if let Some(i) = self.vars.iter().position(|v| v == name) {
            i as Var
        } else {
            self.vars.push(name.to_string());
            (self.vars.len() - 1) as Var
        }
    }

    fn formula(&mut self) -> Result<Formula, ParseError> {
        let mut parts = vec![self.and()?];
        while self.eat(b'|') {
            parts.push(self.and()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one element")
        } else {
            Formula::Or(parts)
        })
    }

    fn and(&mut self) -> Result<Formula, ParseError> {
        let mut parts = vec![self.unary()?];
        while self.eat(b'&') {
            parts.push(self.unary()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one element")
        } else {
            Formula::And(parts)
        })
    }

    fn unary(&mut self) -> Result<Formula, ParseError> {
        if self.eat(b'~') || self.eat(b'!') {
            return Ok(Formula::not(self.unary()?));
        }
        if self.eat(b'(') {
            let f = self.formula()?;
            self.expect(b')')?;
            return Ok(f);
        }
        let name = self.ident()?;
        match name.as_str() {
            "true" => return Ok(Formula::top()),
            "false" => return Ok(Formula::bottom()),
            "exists" | "forall" => {
                let vn = self.ident()?;
                let v = self.var(&vn);
                self.expect(b'.')?;
                let body = self.unary()?;
                return Ok(if name == "exists" {
                    Formula::exists(v, body)
                } else {
                    Formula::forall(v, body)
                });
            }
            _ => {}
        }
        if self.eat(b'(') {
            // Relational atom.
            let sym = match self.vocab.lookup(&name) {
                Some(s) => s,
                None => return self.err(format!("unknown relation symbol {name:?}")),
            };
            let mut args = Vec::new();
            if self.peek() != Some(b')') {
                loop {
                    let vn = self.ident()?;
                    args.push(self.var(&vn));
                    if !self.eat(b',') {
                        break;
                    }
                }
            }
            self.expect(b')')?;
            if args.len() != self.vocab.arity(sym) {
                return self.err(format!(
                    "symbol {name} has arity {}, got {} arguments",
                    self.vocab.arity(sym),
                    args.len()
                ));
            }
            return Ok(Formula::Atom(Atom { sym, args }));
        }
        if self.eat(b'=') {
            let rhs = self.ident()?;
            let x = self.var(&name);
            let y = self.var(&rhs);
            return Ok(Formula::Eq(x, y));
        }
        self.err(format!("expected atom after identifier {name:?}"))
    }
}

/// Parse a formula over `vocab`. Returns the formula and the variable-name
/// table (index `i` is the name of `Var(i)`).
pub fn parse_formula(text: &str, vocab: &Vocabulary) -> Result<(Formula, Vec<String>), ParseError> {
    let mut p = Parser {
        text: text.as_bytes(),
        pos: 0,
        vocab,
        vars: Vec::new(),
    };
    let f = p.formula()?;
    p.skip_ws();
    if p.pos != p.text.len() {
        return p.err("trailing input");
    }
    Ok((f, p.vars))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hp_structures::generators::{directed_cycle, directed_path};

    fn vocab() -> Vocabulary {
        Vocabulary::from_pairs([("E", 2), ("P", 1)])
    }

    #[test]
    fn parse_quantified_conjunction() {
        let (f, vars) = parse_formula("exists x. exists y. (E(x,y) & E(y,x))", &vocab()).unwrap();
        assert_eq!(vars, vec!["x", "y"]);
        assert!(f.is_conjunctive());
        assert!(f.is_sentence());
        assert!(f.holds(&directed_cycle(2)));
        assert!(!f.holds(&directed_path(3)));
    }

    #[test]
    fn parse_precedence_or_lower_than_and() {
        let (f, _) = parse_formula("E(x,y) & E(y,x) | P(x)", &vocab()).unwrap();
        // Must parse as (E&E) | P.
        match f {
            Formula::Or(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(matches!(parts[0], Formula::And(_)));
                assert!(matches!(parts[1], Formula::Atom(_)));
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn parse_negation_and_universal() {
        let (f, _) = parse_formula("forall x. ~E(x,x)", &vocab()).unwrap();
        assert!(!f.is_existential_positive());
        assert!(f.holds(&directed_path(3))); // paths are loop-free
    }

    #[test]
    fn parse_equality() {
        let (f, vars) = parse_formula("exists x. exists y. (E(x,y) & x = y)", &vocab()).unwrap();
        assert_eq!(vars.len(), 2);
        assert!(f.is_existential_positive());
        assert!(!f.holds(&directed_path(2)));
    }

    #[test]
    fn parse_true_false() {
        let (f, _) = parse_formula("true & ~false", &vocab()).unwrap();
        assert!(f.holds(&directed_path(1)));
    }

    #[test]
    fn error_unknown_symbol() {
        let e = parse_formula("Q(x)", &vocab()).unwrap_err();
        assert!(e.message.contains("unknown relation"));
    }

    #[test]
    fn error_wrong_arity() {
        let e = parse_formula("E(x)", &vocab()).unwrap_err();
        assert!(e.message.contains("arity"));
    }

    #[test]
    fn error_trailing_input() {
        let e = parse_formula("P(x) )", &vocab()).unwrap_err();
        assert!(e.message.contains("trailing"));
    }

    #[test]
    fn quantifier_scope_is_tight() {
        // "exists x. P(x) & P(y)" parses as (exists x. P(x)) & P(y): the
        // quantifier body is a unary.
        let (f, vars) = parse_formula("exists x. P(x) & P(y)", &vocab()).unwrap();
        assert!(matches!(f, Formula::And(_)));
        assert_eq!(vars, vec!["x", "y"]);
        assert_eq!(f.free_vars().len(), 1);
    }
}
