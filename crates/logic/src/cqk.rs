//! The k-variable conjunctive fragment `CQ^k` (§7) and the Lemma 7.2
//! rewriting into canonical structures of treewidth `< k`.

use hp_structures::{Elem, Structure, Vocabulary};

use crate::ast::{Formula, Var};
use crate::cq::Cq;

/// A `CQ^k` sentence/formula: a first-order formula built from atoms using
/// only ∧ and ∃, with at most `k` **distinct** variables (each of which may
/// be requantified and reused arbitrarily often).
///
/// The paper's example (§7.1):
/// `∃x₁∃x₂ (E(x₁,x₂) ∧ ∃x₁ (E(x₂,x₁) ∧ ∃x₂ E(x₁,x₂)))` is a `CQ²` formula
/// equivalent to "there is a path of length 3".
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CqkFormula {
    formula: Formula,
    k: usize,
}

/// The width-`< k` tree decomposition Lemma 7.2 extracts from the parse tree
/// of a `CQ^k` formula: one node per subformula, labelled by the free
/// variables of that subformula (as elements of the canonical structure).
///
/// Returned as raw data (bags and tree edges) so that `hp-tw` — which this
/// crate does not depend on — can validate it.
#[derive(Clone, Debug)]
pub struct ParseTreeDecomposition {
    /// `bags[i]` is the label of parse-tree node `i`, as canonical-structure
    /// elements. Empty bags are possible (e.g. the root of a sentence).
    pub bags: Vec<Vec<Elem>>,
    /// Parent–child edges between parse-tree nodes.
    pub edges: Vec<(usize, usize)>,
}

impl ParseTreeDecomposition {
    /// The decomposition's width: max bag size − 1 (−1 ⇒ all bags empty).
    pub fn width(&self) -> isize {
        self.bags.iter().map(Vec::len).max().unwrap_or(0) as isize - 1
    }
}

impl CqkFormula {
    /// Wrap a conjunctive formula, checking the variable budget.
    ///
    /// Returns `Err` when the formula is not conjunctive (equality-free: the
    /// `CQ^k` fragment of the paper is built from relational atoms only) or
    /// uses more than `k` distinct variables.
    pub fn new(formula: Formula, k: usize) -> Result<CqkFormula, String> {
        let mut has_eq = false;
        formula.visit(&mut |f| {
            if matches!(f, Formula::Eq(_, _)) {
                has_eq = true;
            }
        });
        if has_eq || !formula.is_conjunctive() {
            return Err(format!("not a CQ^k formula (atoms, ∧, ∃ only): {formula}"));
        }
        let used = formula.distinct_var_count();
        if used > k {
            return Err(format!(
                "formula uses {used} distinct variables, budget is {k}"
            ));
        }
        Ok(CqkFormula { formula, k })
    }

    /// The underlying formula.
    pub fn formula(&self) -> &Formula {
        &self.formula
    }

    /// The variable budget `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Evaluate as a sentence.
    ///
    /// # Panics
    /// Panics when the formula has free variables.
    pub fn holds(&self, a: &Structure) -> bool {
        self.formula.holds(a)
    }

    /// **Lemma 7.2**: produce the canonical structure `D` whose canonical
    /// conjunctive query is logically equivalent to this formula, together
    /// with a width-`< k` tree decomposition of `D` read off the parse tree.
    ///
    /// The construction renames binders apart, reads each atom as a tuple
    /// over the renamed variables, and labels each parse-tree node by the
    /// free variables of its subformula. Free variables of the overall
    /// formula become distinguished elements of the returned [`Cq`].
    pub fn canonical(&self, vocab: &Vocabulary) -> (Cq, ParseTreeDecomposition) {
        let g = self.formula.renamed_apart();
        // Dense element numbering over all variables of g.
        let vars: Vec<Var> = g.all_vars().into_iter().collect();
        let elem_of =
            |v: Var| -> Elem { Elem(vars.binary_search(&v).expect("var numbered") as u32) };
        let mut structure = Structure::new(vocab.clone(), vars.len());
        g.visit(&mut |f| {
            if let Formula::Atom(a) = f {
                let t: Vec<Elem> = a.args.iter().map(|&v| elem_of(v)).collect();
                structure
                    .add_tuple(a.sym, &t)
                    .expect("atom fits vocabulary");
            }
        });
        let free: Vec<Elem> = g.free_vars().into_iter().map(elem_of).collect();
        // Parse-tree decomposition: recurse, returning node ids.
        let mut bags: Vec<Vec<Elem>> = Vec::new();
        let mut edges: Vec<(usize, usize)> = Vec::new();
        fn walk(
            f: &Formula,
            bags: &mut Vec<Vec<Elem>>,
            edges: &mut Vec<(usize, usize)>,
            elem_of: &dyn Fn(Var) -> Elem,
        ) -> usize {
            let id = bags.len();
            let bag: Vec<Elem> = f.free_vars().into_iter().map(elem_of).collect();
            bags.push(bag);
            match f {
                Formula::And(gs) => {
                    let children: Vec<usize> =
                        gs.iter().map(|g| walk(g, bags, edges, elem_of)).collect();
                    for c in children {
                        edges.push((id, c));
                    }
                }
                Formula::Exists(_, g) => {
                    let c = walk(g, bags, edges, elem_of);
                    edges.push((id, c));
                }
                _ => {}
            }
            id
        }
        walk(&g, &mut bags, &mut edges, &elem_of);
        (
            Cq::with_free(&structure, &free),
            ParseTreeDecomposition { bags, edges },
        )
    }
}

/// The **converse of Lemma 7.2**: from a structure `D` together with a tree
/// decomposition of width `< k` (bags of size ≤ k), build a `CQ^k` sentence
/// logically equivalent to the canonical query `φ_D`, by **reusing k
/// variable slots** along the decomposition tree.
///
/// Slot discipline: entering a bag from its parent, elements shared with
/// the parent keep their slots; elements that left scope free theirs;
/// new elements take free slots under a fresh ∃ (rebinding the same
/// variable name — exactly the reuse the `CQ^k` fragment is about). The
/// connectivity condition of tree decompositions guarantees an element
/// never re-enters scope.
///
/// Returns `Err` when some bag exceeds `k` elements, some tuple is not
/// covered by a bag, or the edges do not form a tree on the bags.
pub fn cqk_from_decomposition(
    d: &Structure,
    bags: &[Vec<u32>],
    edges: &[(usize, usize)],
    k: usize,
) -> Result<CqkFormula, String> {
    if bags.is_empty() {
        if d.universe_size() == 0 {
            return CqkFormula::new(Formula::top(), k);
        }
        return Err("no bags for a non-empty structure".into());
    }
    if edges.len() + 1 != bags.len() {
        return Err("decomposition edges do not form a tree".into());
    }
    for (i, b) in bags.iter().enumerate() {
        if b.len() > k {
            return Err(format!("bag {i} has {} > k = {k} elements", b.len()));
        }
    }
    // Tree adjacency.
    let mut adj = vec![Vec::new(); bags.len()];
    for &(a, b) in edges {
        adj[a].push(b);
        adj[b].push(a);
    }
    // Assign each tuple to one covering bag.
    let mut atoms_at: Vec<Vec<(hp_structures::SymbolId, Vec<Elem>)>> = vec![Vec::new(); bags.len()];
    for (sym, rel) in d.relations() {
        'tuples: for t in rel.iter() {
            for (i, b) in bags.iter().enumerate() {
                if t.iter().all(|e| b.contains(&e.0)) {
                    atoms_at[i].push((sym, t.to_vec()));
                    continue 'tuples;
                }
            }
            return Err(format!("tuple {t:?} not covered by any bag"));
        }
    }
    // Recursive construction with an explicit stack (post-order assembly).
    fn build(
        node: usize,
        parent: usize,
        bags: &[Vec<u32>],
        adj: &[Vec<usize>],
        atoms_at: &[Vec<(hp_structures::SymbolId, Vec<Elem>)>],
        slot_of: &mut std::collections::BTreeMap<u32, Var>,
        k: usize,
    ) -> Result<Formula, String> {
        // Slots freed by elements that left scope.
        let retained: Vec<u32> = bags[node]
            .iter()
            .copied()
            .filter(|e| slot_of.contains_key(e))
            .collect();
        let mut in_use: Vec<bool> = vec![false; k];
        for e in &retained {
            in_use[slot_of[e] as usize] = true;
        }
        // Remove out-of-scope elements (their slots are reusable below,
        // but they must not leak atoms): scope = ancestors' retained ∩ bag.
        // We rebuild slot_of locally: keep only retained entries plus what
        // we add; the caller restores its own map afterward.
        let saved = slot_of.clone();
        slot_of.retain(|e, _| retained.contains(e));
        let mut fresh: Vec<Var> = Vec::new();
        for &e in &bags[node] {
            if slot_of.contains_key(&e) {
                continue;
            }
            let slot = (0..k).find(|&s| !in_use[s]).ok_or("slot overflow")? as Var;
            in_use[slot as usize] = true;
            slot_of.insert(e, slot);
            fresh.push(slot);
        }
        let mut conj: Vec<Formula> = Vec::new();
        for (sym, t) in &atoms_at[node] {
            let args: Vec<Var> = t.iter().map(|e| slot_of[&e.0]).collect();
            conj.push(Formula::atom(sym.index(), &args));
        }
        for &c in &adj[node] {
            if c != parent {
                conj.push(build(c, node, bags, adj, atoms_at, slot_of, k)?);
            }
        }
        let mut body = Formula::And(conj);
        for &v in fresh.iter().rev() {
            body = Formula::exists(v, body);
        }
        *slot_of = saved;
        Ok(body)
    }
    let mut slot_of = std::collections::BTreeMap::new();
    let f = build(0, usize::MAX, bags, &adj, &atoms_at, &mut slot_of, k)?;
    CqkFormula::new(f, k)
}

/// The paper's running `CQ²` example family: "there is a path of length
/// `len`" written with two reused variables:
/// `∃x₀∃x₁ (E(x₀,x₁) ∧ ∃x₀ (E(x₁,x₀) ∧ ∃x₁ (E(x₀,x₁) ∧ …)))`.
pub fn path_cq2(len: usize) -> CqkFormula {
    assert!(len >= 1);
    // Innermost edge uses variables (a, b) depending on parity.
    fn build(remaining: usize, from: Var, to: Var) -> Formula {
        let e = Formula::atom(0usize, &[from, to]);
        if remaining == 1 {
            e
        } else {
            Formula::And(vec![
                e,
                Formula::exists(from, build(remaining - 1, to, from)),
            ])
        }
    }
    let body = Formula::exists(0, Formula::exists(1, build(len, 0, 1)));
    CqkFormula::new(body, 2).expect("path formula is CQ^2")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hp_structures::generators::{directed_cycle, directed_path, random_digraph};
    use hp_structures::Vocabulary;

    fn edge(x: Var, y: Var) -> Formula {
        Formula::atom(0usize, &[x, y])
    }

    #[test]
    fn budget_enforced() {
        let f = Formula::exists(
            0,
            Formula::exists(
                1,
                Formula::exists(2, Formula::And(vec![edge(0, 1), edge(1, 2)])),
            ),
        );
        assert!(CqkFormula::new(f.clone(), 2).is_err());
        assert!(CqkFormula::new(f, 3).is_ok());
    }

    #[test]
    fn equality_rejected() {
        let f = Formula::exists(0, Formula::exists(1, Formula::Eq(0, 1)));
        assert!(CqkFormula::new(f, 2).is_err());
    }

    #[test]
    fn paper_example_path_of_length_3() {
        // The §7.1 example: a CQ^2 sentence equivalent to "path of length 3".
        let q = path_cq2(3);
        assert_eq!(q.formula().distinct_var_count(), 2);
        assert!(q.holds(&directed_path(4)));
        assert!(!q.holds(&directed_path(3)));
        assert!(q.holds(&directed_cycle(3))); // C3 has arbitrarily long walks
    }

    #[test]
    fn canonical_structure_is_the_path() {
        let v = Vocabulary::digraph();
        for len in 1..6 {
            let q = path_cq2(len);
            let (cq, _) = q.canonical(&v);
            // Canonical structure: the directed path with `len` edges.
            assert!(hp_hom::are_isomorphic(
                cq.canonical(),
                &directed_path(len + 1)
            ));
        }
    }

    #[test]
    fn canonical_query_equivalent_to_formula() {
        let v = Vocabulary::digraph();
        let q = path_cq2(4);
        let (cq, _) = q.canonical(&v);
        for seed in 0..12 {
            let b = random_digraph(6, 9, seed);
            assert_eq!(q.holds(&b), cq.holds_in(&b), "seed {seed}");
        }
    }

    #[test]
    fn parse_tree_decomposition_width_below_k() {
        let v = Vocabulary::digraph();
        for len in 1..8 {
            let q = path_cq2(len);
            let (cq, td) = q.canonical(&v);
            assert!(td.width() < 2, "width {} for len {len}", td.width());
            // Every tuple of the canonical structure is inside some bag.
            for (_, rel) in cq.canonical().relations() {
                for t in rel.iter() {
                    assert!(
                        td.bags.iter().any(|b| t.iter().all(|e| b.contains(&e))),
                        "tuple {t:?} not covered"
                    );
                }
            }
            // Connectivity of each element's occurrence set is validated in
            // the hp-tw integration tests (needs the TreeDecomposition type).
            assert_eq!(td.edges.len() + 1, td.bags.len(), "parse tree is a tree");
        }
    }

    #[test]
    fn decomposition_roundtrip_path() {
        // Path decomposition of the directed path: bags {i, i+1}.
        let v = Vocabulary::digraph();
        for len in 1..6 {
            let d = directed_path(len + 1);
            let bags: Vec<Vec<u32>> = (0..len).map(|i| vec![i as u32, i as u32 + 1]).collect();
            let edges: Vec<(usize, usize)> = (1..len).map(|i| (i - 1, i)).collect();
            let q = cqk_from_decomposition(&d, &bags, &edges, 2).unwrap();
            assert!(q.formula().distinct_var_count() <= 2);
            // Equivalent to the canonical query of the path.
            let (cq, _) = q.canonical(&v);
            assert!(cq.is_equivalent_to(&crate::Cq::canonical_query(&d)));
        }
    }

    #[test]
    fn decomposition_roundtrip_cycle_needs_three() {
        // The directed triangle has treewidth 2: CQ³ via the trivial bag.
        let v = Vocabulary::digraph();
        let d = directed_cycle(3);
        let bags = vec![vec![0u32, 1, 2]];
        let q = cqk_from_decomposition(&d, &bags, &[], 3).unwrap();
        let (cq, _) = q.canonical(&v);
        assert!(cq.is_equivalent_to(&crate::Cq::canonical_query(&d)));
        // With k = 2 the bag overflows.
        assert!(cqk_from_decomposition(&d, &bags, &[], 2).is_err());
    }

    #[test]
    fn decomposition_rejects_uncovered_tuple() {
        let d = directed_path(3);
        // Bags missing the 1→2 edge.
        let bags = vec![vec![0u32, 1], vec![2u32]];
        assert!(cqk_from_decomposition(&d, &bags, &[(0, 1)], 2).is_err());
    }

    #[test]
    fn decomposition_slot_reuse_on_caterpillar() {
        // A star-with-path structure exercising slot free/reuse: directed
        // edges 0→1, 1→2, 2→3, with decomposition path of 2-bags.
        let d = directed_path(4);
        let bags: Vec<Vec<u32>> = vec![vec![0, 1], vec![1, 2], vec![2, 3]];
        let edges = vec![(0usize, 1usize), (1, 2)];
        let q = cqk_from_decomposition(&d, &bags, &edges, 2).unwrap();
        for seed in 0..8 {
            let b = random_digraph(5, 8, seed);
            assert_eq!(
                q.holds(&b),
                crate::Cq::canonical_query(&d).holds_in(&b),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn canonical_with_free_variables() {
        let v = Vocabulary::digraph();
        // E(x0, x1) ∧ ∃x0 E(x1, x0): free x1... wait x0 also free (first
        // atom). Both free.
        let f = Formula::And(vec![edge(0, 1), Formula::exists(0, edge(1, 0))]);
        let q = CqkFormula::new(f.clone(), 2).unwrap();
        let (cq, _) = q.canonical(&v);
        assert_eq!(cq.arity(), 2);
        for seed in 0..8 {
            let b = random_digraph(5, 7, seed + 30);
            assert_eq!(f.answers(&b), cq.answers(&b), "seed {seed}");
        }
    }
}
