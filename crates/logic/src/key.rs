//! Stable canonical-core keys: the answer-cache identity of a query.
//!
//! Two CQs (or UCQs) that are logically equivalent — in particular, equal
//! up to variable renaming, redundant atoms, or disjunct subsumption —
//! minimize to isomorphic cores (Chandra–Merlin, §6.2), and isomorphic
//! pointed structures get identical canonical certificates
//! ([`hp_hom::canonical_form_pointed`]). Hashing that certificate yields a
//! key that is *stable across runs and machines*: no pointer values, no
//! randomized hashers, no iteration-order dependence.
//!
//! The key is 128 bits of FNV-1a over the certificate, so distinct cores
//! collide only with hash-collision probability. Exact consumers (an
//! answer cache that must never serve a wrong entry) should treat a key
//! hit as a candidate and confirm with `is_equivalent_to`.

use std::fmt;

use hp_hom::CanonicalForm;

/// A 128-bit canonical-core key. Equal for logically equivalent queries;
/// distinct (modulo hash collisions) otherwise.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CanonicalCoreKey(u128);

impl CanonicalCoreKey {
    /// Key of a canonical form (certificate hash).
    pub fn of_form(form: &CanonicalForm) -> CanonicalCoreKey {
        CanonicalCoreKey(form.key())
    }

    /// Combine per-disjunct keys into a UCQ key: order-insensitive (keys
    /// are sorted first) and arity-tagged, so `⊥` of different arities and
    /// unions differing only in disjunct order keep sensible identities.
    pub fn combine(arity: usize, keys: &[CanonicalCoreKey]) -> CanonicalCoreKey {
        let mut sorted: Vec<u128> = keys.iter().map(|k| k.0).collect();
        sorted.sort_unstable();
        let mut h: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
        let mut absorb = |word: u128| {
            for b in word.to_le_bytes() {
                h ^= b as u128;
                h = h.wrapping_mul(0x0000_0000_0100_0000_0000_0000_0000_013b);
            }
        };
        absorb(arity as u128);
        absorb(sorted.len() as u128);
        for k in sorted {
            absorb(k);
        }
        CanonicalCoreKey(h)
    }

    /// The raw 128-bit value.
    pub fn as_u128(self) -> u128 {
        self.0
    }
}

impl fmt::Display for CanonicalCoreKey {
    /// Rendered as `ck` + 32 lowercase hex digits — the format embedded in
    /// `--format json` output and intended for cache-key strings.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ck{:032x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_fixed_width_hex() {
        let k = CanonicalCoreKey(0xabc);
        let s = k.to_string();
        assert_eq!(s.len(), 2 + 32);
        assert!(s.starts_with("ck"));
        assert!(s.ends_with("abc"));
    }

    #[test]
    fn combine_is_order_insensitive_and_arity_tagged() {
        let a = CanonicalCoreKey(17);
        let b = CanonicalCoreKey(99);
        assert_eq!(
            CanonicalCoreKey::combine(2, &[a, b]),
            CanonicalCoreKey::combine(2, &[b, a])
        );
        assert_ne!(
            CanonicalCoreKey::combine(1, &[a, b]),
            CanonicalCoreKey::combine(2, &[a, b])
        );
        assert_ne!(
            CanonicalCoreKey::combine(2, &[a]),
            CanonicalCoreKey::combine(2, &[a, b])
        );
    }
}
