//! Vocabulary-aware pretty-printing, quantifier rank, and negation normal
//! form for first-order formulas.

use hp_structures::Vocabulary;

use crate::ast::Formula;

impl Formula {
    /// Render with real relation names from `vocab` (the plain `Display`
    /// impl writes `R0`, `R1`, …). Symbols outside the vocabulary fall
    /// back to the numeric form.
    pub fn display_with(&self, vocab: &Vocabulary) -> String {
        fn go(f: &Formula, vocab: &Vocabulary, out: &mut String) {
            match f {
                Formula::Atom(a) => {
                    if a.sym.index() < vocab.len() {
                        out.push_str(&vocab.symbol(a.sym).name);
                    } else {
                        out.push_str(&format!("R{}", a.sym.0));
                    }
                    out.push('(');
                    for (i, v) in a.args.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push_str(&format!("x{v}"));
                    }
                    out.push(')');
                }
                Formula::Eq(x, y) => out.push_str(&format!("x{x}=x{y}")),
                Formula::Not(g) => {
                    out.push_str("~(");
                    go(g, vocab, out);
                    out.push(')');
                }
                Formula::And(gs) if gs.is_empty() => out.push_str("true"),
                Formula::Or(gs) if gs.is_empty() => out.push_str("false"),
                Formula::And(gs) | Formula::Or(gs) => {
                    let sep = if matches!(f, Formula::And(_)) {
                        " & "
                    } else {
                        " | "
                    };
                    out.push('(');
                    for (i, g) in gs.iter().enumerate() {
                        if i > 0 {
                            out.push_str(sep);
                        }
                        go(g, vocab, out);
                    }
                    out.push(')');
                }
                Formula::Exists(x, g) => {
                    out.push_str(&format!("exists x{x}. "));
                    go(g, vocab, out);
                }
                Formula::Forall(x, g) => {
                    out.push_str(&format!("forall x{x}. "));
                    go(g, vocab, out);
                }
            }
        }
        let mut s = String::new();
        go(self, vocab, &mut s);
        s
    }

    /// The quantifier rank (maximum nesting depth of quantifiers) — the
    /// resource the r-round Ehrenfeucht–Fraïssé game measures.
    pub fn quantifier_rank(&self) -> usize {
        match self {
            Formula::Atom(_) | Formula::Eq(_, _) => 0,
            Formula::Not(g) => g.quantifier_rank(),
            Formula::And(gs) | Formula::Or(gs) => {
                gs.iter().map(Formula::quantifier_rank).max().unwrap_or(0)
            }
            Formula::Exists(_, g) | Formula::Forall(_, g) => 1 + g.quantifier_rank(),
        }
    }

    /// Negation normal form: negations pushed to the atoms (via De Morgan
    /// and quantifier duality). Negated atoms stay as `Not(Atom)`.
    pub fn nnf(&self) -> Formula {
        fn pos(f: &Formula) -> Formula {
            match f {
                Formula::Atom(_) | Formula::Eq(_, _) => f.clone(),
                Formula::Not(g) => neg(g),
                Formula::And(gs) => Formula::And(gs.iter().map(pos).collect()),
                Formula::Or(gs) => Formula::Or(gs.iter().map(pos).collect()),
                Formula::Exists(x, g) => Formula::exists(*x, pos(g)),
                Formula::Forall(x, g) => Formula::forall(*x, pos(g)),
            }
        }
        fn neg(f: &Formula) -> Formula {
            match f {
                Formula::Atom(_) | Formula::Eq(_, _) => Formula::not(f.clone()),
                Formula::Not(g) => pos(g),
                Formula::And(gs) => Formula::Or(gs.iter().map(neg).collect()),
                Formula::Or(gs) => Formula::And(gs.iter().map(neg).collect()),
                Formula::Exists(x, g) => Formula::forall(*x, neg(g)),
                Formula::Forall(x, g) => Formula::exists(*x, neg(g)),
            }
        }
        pos(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Var;
    use crate::parser::parse_formula;
    use hp_structures::generators::random_digraph;

    fn vocab() -> Vocabulary {
        Vocabulary::from_pairs([("E", 2), ("P", 1)])
    }

    #[test]
    fn display_with_names() {
        let (f, _) = parse_formula("exists x. (E(x,x) & ~P(x))", &vocab()).unwrap();
        let s = f.display_with(&vocab());
        assert!(s.contains("E(x0,x0)"));
        assert!(s.contains("~(P(x0))"));
    }

    #[test]
    fn display_roundtrips_through_parser() {
        let (f, _) =
            parse_formula("forall x. (E(x,x) | exists y. (E(x,y) & P(y)))", &vocab()).unwrap();
        let text = f.display_with(&vocab());
        let (g, _) = parse_formula(&text, &vocab()).unwrap();
        // Semantic equality on samples (variable numbering matches here).
        for seed in 0..6 {
            let b = random_digraph(4, 6, seed);
            // random_digraph has only E; extend vocab eval by building over
            // the right vocabulary instead:
            let mut s = hp_structures::Structure::new(vocab(), 4);
            for t in b.relation(0usize.into()).iter() {
                s.add_tuple(0usize.into(), t).unwrap();
            }
            assert_eq!(f.holds(&s), g.holds(&s), "seed {seed}");
        }
    }

    #[test]
    fn quantifier_rank_counts_depth() {
        let (f, _) = parse_formula("exists x. exists y. E(x,y)", &vocab()).unwrap();
        assert_eq!(f.quantifier_rank(), 2);
        let (g, _) = parse_formula(
            "(exists x. E(x,x)) & (exists y. exists z. E(y,z))",
            &vocab(),
        )
        .unwrap();
        assert_eq!(g.quantifier_rank(), 2); // max, not sum
        let atom = Formula::atom(0usize, &[0 as Var, 1 as Var]);
        assert_eq!(atom.quantifier_rank(), 0);
    }

    #[test]
    fn nnf_pushes_negations() {
        let (f, _) = parse_formula("~(exists x. (E(x,x) & P(x)))", &vocab()).unwrap();
        let n = f.nnf();
        // Shape: forall x. (~E(x,x) | ~P(x)).
        match &n {
            Formula::Forall(_, body) => match body.as_ref() {
                Formula::Or(parts) => {
                    assert_eq!(parts.len(), 2);
                    assert!(parts.iter().all(|p| matches!(p, Formula::Not(inner)
                        if matches!(inner.as_ref(), Formula::Atom(_)))));
                }
                other => panic!("bad NNF body: {other:?}"),
            },
            other => panic!("bad NNF: {other:?}"),
        }
        // Semantics preserved.
        for seed in 0..8 {
            let b = random_digraph(4, 7, seed);
            let mut s = hp_structures::Structure::new(vocab(), 4);
            for t in b.relation(0usize.into()).iter() {
                s.add_tuple(0usize.into(), t).unwrap();
            }
            assert_eq!(f.holds(&s), n.holds(&s));
        }
    }

    #[test]
    fn nnf_double_negation() {
        let (f, _) = parse_formula("~~E(x,y)", &vocab()).unwrap();
        assert!(matches!(f.nnf(), Formula::Atom(_)));
    }

    #[test]
    fn nnf_fixes_ep_after_negation_of_universal() {
        // ¬∀x ¬E(x,x) → ∃x E(x,x): NNF re-exposes existential positivity.
        let (f, _) = parse_formula("~(forall x. ~E(x,x))", &vocab()).unwrap();
        assert!(!f.is_existential_positive());
        assert!(f.nnf().is_existential_positive());
    }
}
