//! Conjunctive queries and the Chandra–Merlin correspondence (Theorem 2.1).

use hp_structures::{BitSet, Elem, Structure, Vocabulary};

use hp_guard::{Budget, Gauge, Stop};
use hp_hom::{canonical_form_pointed_gauged, HomSearch};

use crate::ast::{Atom, Formula, Var};
use crate::key::CanonicalCoreKey;

/// A conjunctive query in **canonical-structure form**: a finite structure
/// `D` (the canonical structure / tableau) plus a list of distinguished
/// elements standing for the free variables.
///
/// - A Boolean CQ (`free.is_empty()`) holds in `B` iff there is a
///   homomorphism `D → B` (Theorem 2.1).
/// - A non-Boolean CQ's answers over `B` are the images of `free` under all
///   homomorphisms `D → B`.
///
/// This representation makes evaluation, containment (hom the other way),
/// and minimization (core preserving `free`) direct applications of the
/// `hp-hom` engine.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Cq {
    canonical: Structure,
    free: Vec<Elem>,
}

impl Cq {
    /// The canonical (Boolean) conjunctive query `φ_A` of a structure: the
    /// existential closure of A's positive diagram (§2.2).
    pub fn canonical_query(a: &Structure) -> Cq {
        Cq {
            canonical: a.clone(),
            free: Vec::new(),
        }
    }

    /// A CQ with distinguished (free) elements of the canonical structure.
    ///
    /// # Panics
    /// Panics if a distinguished element is out of range.
    pub fn with_free(a: &Structure, free: &[Elem]) -> Cq {
        assert!(
            free.iter().all(|e| e.index() < a.universe_size()),
            "free element out of range"
        );
        Cq {
            canonical: a.clone(),
            free: free.to_vec(),
        }
    }

    /// The canonical structure (tableau).
    pub fn canonical(&self) -> &Structure {
        &self.canonical
    }

    /// The distinguished elements.
    pub fn free(&self) -> &[Elem] {
        &self.free
    }

    /// Arity of the query (number of free positions).
    pub fn arity(&self) -> usize {
        self.free.len()
    }

    /// Number of existential variables a prenex formula form would use —
    /// i.e. the size of the canonical structure.
    pub fn var_count(&self) -> usize {
        self.canonical.universe_size()
    }

    /// Build from a conjunctive first-order formula (atoms, ∧, ∃, =).
    ///
    /// Equalities are eliminated by variable unification (§2.2: "equalities
    /// can be eliminated from existential positive formulas"). The free
    /// variables of the formula become the distinguished elements, in
    /// increasing variable order.
    ///
    /// Returns `Err` when the formula is not conjunctive or uses a symbol
    /// outside `vocab`.
    pub fn from_formula(f: &Formula, vocab: &Vocabulary) -> Result<Cq, String> {
        if !f.is_conjunctive() {
            return Err(format!("formula is not conjunctive: {f}"));
        }
        let free_vars: Vec<Var> = f.free_vars().into_iter().collect();
        let g = f.renamed_apart();
        // Collect atoms and equalities (all binders distinct now, so scope
        // can be ignored).
        let mut atoms: Vec<Atom> = Vec::new();
        let mut eqs: Vec<(Var, Var)> = Vec::new();
        g.visit(&mut |h| match h {
            Formula::Atom(a) => atoms.push(a.clone()),
            Formula::Eq(x, y) => eqs.push((*x, *y)),
            _ => {}
        });
        for a in &atoms {
            if a.sym.index() >= vocab.len() {
                return Err(format!("unknown symbol R{} in formula", a.sym.0));
            }
            if a.args.len() != vocab.arity(a.sym) {
                return Err(format!(
                    "arity mismatch for {} in formula",
                    vocab.symbol(a.sym).name
                ));
            }
        }
        build_cq(vocab, &atoms, &eqs, &free_vars)
    }

    /// Render as a prenex conjunctive formula: element `i` becomes variable
    /// `i`; non-free elements are existentially quantified.
    pub fn to_formula(&self) -> Formula {
        let mut conj: Vec<Formula> = Vec::new();
        for (sym, rel) in self.canonical.relations() {
            for t in rel.iter() {
                conj.push(Formula::Atom(Atom {
                    sym,
                    args: t.iter().map(|e| e.0).collect(),
                }));
            }
        }
        let mut body = Formula::And(conj);
        let free_set: BitSet = self.free.iter().map(|e| e.index()).collect();
        for e in (0..self.canonical.universe_size()).rev() {
            let covered = e < free_set.capacity() && free_set.contains(e);
            if !covered {
                body = Formula::exists(e as Var, body);
            }
        }
        body
    }

    /// Boolean evaluation: `B ⊨ φ_D` iff `hom(D, B)` (Theorem 2.1).
    ///
    /// For non-Boolean queries this asks whether the query has *some*
    /// answer.
    pub fn holds_in(&self, b: &Structure) -> bool {
        HomSearch::new(&self.canonical, b).exists()
    }

    /// Evaluate with a fixed assignment of the free positions.
    pub fn holds_with(&self, b: &Structure, tuple: &[Elem]) -> bool {
        assert_eq!(tuple.len(), self.free.len(), "wrong answer arity");
        let mut s = HomSearch::new(&self.canonical, b);
        for (i, &fe) in self.free.iter().enumerate() {
            s = s.pin(fe, tuple[i]);
        }
        s.exists()
    }

    /// All answers over `B`: the set of images of the free tuple under all
    /// homomorphisms `D → B`, deduplicated and sorted.
    pub fn answers(&self, b: &Structure) -> Vec<Vec<Elem>> {
        let mut out: Vec<Vec<Elem>> = HomSearch::new(&self.canonical, b)
            .enumerate(usize::MAX)
            .into_iter()
            .map(|h| self.free.iter().map(|e| h[e.index()]).collect())
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Containment `self ⊑ other` (every answer of `self` over every
    /// structure is an answer of `other`): by Chandra–Merlin this holds iff
    /// there is a homomorphism from `other`'s canonical structure to
    /// `self`'s mapping free positions pointwise.
    pub fn is_contained_in(&self, other: &Cq) -> bool {
        if self.free.len() != other.free.len() {
            return false;
        }
        let mut s = HomSearch::new(&other.canonical, &self.canonical);
        for (i, &fe) in other.free.iter().enumerate() {
            s = s.pin(fe, self.free[i]);
        }
        s.exists()
    }

    /// Logical equivalence of queries.
    pub fn is_equivalent_to(&self, other: &Cq) -> bool {
        self.is_contained_in(other) && other.is_contained_in(self)
    }

    /// [`is_contained_in`](Cq::is_contained_in) charging an existing
    /// gauge, for budgeted containment sweeps over many query pairs.
    pub fn is_contained_in_gauged(&self, other: &Cq, gauge: &mut Gauge) -> Result<bool, Stop> {
        if self.free.len() != other.free.len() {
            return Ok(false);
        }
        let mut s = HomSearch::new(&other.canonical, &self.canonical);
        for (i, &fe) in other.free.iter().enumerate() {
            s = s.pin(fe, self.free[i]);
        }
        Ok(s.solve_gauged(gauge)?.is_some())
    }

    /// Gauged logical equivalence (containment both ways on one budget).
    pub fn is_equivalent_to_gauged(&self, other: &Cq, gauge: &mut Gauge) -> Result<bool, Stop> {
        Ok(self.is_contained_in_gauged(other, gauge)?
            && other.is_contained_in_gauged(self, gauge)?)
    }

    /// Minimize the query: compute the core of the canonical structure
    /// **relative to the free elements** (they must stay fixed). The result
    /// is the unique (up to isomorphism) minimal equivalent CQ — the
    /// Chandra–Merlin optimal implementation.
    pub fn minimize(&self) -> Cq {
        let mut gauge = Budget::unlimited().gauge();
        match self.minimize_gauged(&mut gauge) {
            Ok(q) => q,
            Err(_) => unreachable!("an unlimited budget cannot exhaust"),
        }
    }

    /// [`minimize`](Cq::minimize) charging an existing gauge. Exhaustion
    /// aborts mid-fold; no partial is returned (re-run with more fuel).
    pub fn minimize_gauged(&self, gauge: &mut Gauge) -> Result<Cq, Stop> {
        let mut current = self.canonical.clone();
        let mut free = self.free.clone();
        'outer: loop {
            for e in current.elements() {
                if free.contains(&e) {
                    continue;
                }
                let mut s = HomSearch::new(&current, &current).forbid_value(e);
                for &fe in &free {
                    s = s.pin(fe, fe);
                }
                if let Some(h) = s.solve_gauged(gauge)? {
                    let mut image = BitSet::new(current.universe_size());
                    for &v in &h {
                        image.insert(v.index());
                    }
                    for &fe in &free {
                        image.insert(fe.index());
                    }
                    let (next, old_of_new) = current.induced(&image);
                    let mut new_of_old = vec![u32::MAX; current.universe_size()];
                    for (new, &old) in old_of_new.iter().enumerate() {
                        new_of_old[old.index()] = new as u32;
                    }
                    free = free.iter().map(|f| Elem(new_of_old[f.index()])).collect();
                    current = next;
                    continue 'outer;
                }
            }
            break;
        }
        Ok(Cq {
            canonical: current,
            free,
        })
    }

    /// The stable [`CanonicalCoreKey`] of this query: minimize to the core
    /// (unique up to isomorphism), canonically label the pointed core, and
    /// hash the certificate. Logically equivalent CQs — in particular any
    /// two presentations differing by variable renaming or redundant atoms
    /// — get the identical key.
    pub fn canonical_core_key(&self) -> CanonicalCoreKey {
        let mut gauge = Budget::unlimited().gauge();
        match self.canonical_core_key_gauged(&mut gauge) {
            Ok(k) => k,
            Err(_) => unreachable!("an unlimited budget cannot exhaust"),
        }
    }

    /// [`canonical_core_key`](Cq::canonical_core_key) charging an existing
    /// gauge: both the core fold and the canonical labelling draw from it.
    pub fn canonical_core_key_gauged(&self, gauge: &mut Gauge) -> Result<CanonicalCoreKey, Stop> {
        let m = self.minimize_gauged(gauge)?;
        let form = canonical_form_pointed_gauged(&m.canonical, &m.free, gauge)?;
        Ok(CanonicalCoreKey::of_form(&form))
    }
}

/// Assemble a CQ from atoms, equalities, and a list of free variables.
fn build_cq(
    vocab: &Vocabulary,
    atoms: &[Atom],
    eqs: &[(Var, Var)],
    free_vars: &[Var],
) -> Result<Cq, String> {
    // Union-find over variable ids, preferring free variables as roots so
    // distinguished positions survive unification.
    use std::collections::BTreeMap;
    let mut vars: Vec<Var> = Vec::new();
    for a in atoms {
        vars.extend(a.args.iter().copied());
    }
    for &(x, y) in eqs {
        vars.push(x);
        vars.push(y);
    }
    vars.extend(free_vars.iter().copied());
    vars.sort_unstable();
    vars.dedup();
    let index: BTreeMap<Var, usize> = vars.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let mut parent: Vec<usize> = (0..vars.len()).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let r = find(parent, parent[i]);
            parent[i] = r;
        }
        parent[i]
    }
    let is_free = |i: usize, vars: &[Var]| free_vars.contains(&vars[i]);
    for &(x, y) in eqs {
        let (a, b) = (index[&x], index[&y]);
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        if ra != rb {
            // Prefer the free representative.
            if is_free(rb, &vars) && !is_free(ra, &vars) {
                parent[ra] = rb;
            } else {
                parent[rb] = ra;
            }
        }
    }
    // Dense numbering of representatives.
    let mut elem_of_root: BTreeMap<usize, u32> = BTreeMap::new();
    let mut count = 0u32;
    let mut elem_of_var = |v: Var, parent: &mut Vec<usize>| -> Elem {
        let r = find(parent, index[&v]);
        let e = *elem_of_root.entry(r).or_insert_with(|| {
            let e = count;
            count += 1;
            e
        });
        Elem(e)
    };
    let mut tuples: Vec<(hp_structures::SymbolId, Vec<Elem>)> = Vec::new();
    for a in atoms {
        let t: Vec<Elem> = a
            .args
            .iter()
            .map(|&v| elem_of_var(v, &mut parent))
            .collect();
        tuples.push((a.sym, t));
    }
    let free: Vec<Elem> = free_vars
        .iter()
        .map(|&v| elem_of_var(v, &mut parent))
        .collect();
    let mut canonical = Structure::new(vocab.clone(), count as usize);
    for (sym, t) in tuples {
        canonical
            .add_tuple(sym, &t)
            .map_err(|e| format!("bad atom: {e}"))?;
    }
    Ok(Cq { canonical, free })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hp_structures::generators::{
        complete_digraph, directed_cycle, directed_path, self_loop, transitive_tournament,
    };

    fn edge(x: Var, y: Var) -> Formula {
        Formula::atom(0usize, &[x, y])
    }

    #[test]
    fn chandra_merlin_three_way() {
        // Theorem 2.1: hom(A,B) ⇔ B ⊨ φ_A ⇔ φ_B ⊢ φ_A.
        let a = directed_path(3);
        let b = directed_cycle(3);
        let phi_a = Cq::canonical_query(&a);
        let phi_b = Cq::canonical_query(&b);
        assert!(hp_hom::hom_exists(&a, &b));
        assert!(phi_a.holds_in(&b));
        // φ_B logically implies φ_A ⇔ q(φ_B) ⊑ q(φ_A).
        assert!(phi_b.is_contained_in(&phi_a));
        // And the converse direction fails all three ways.
        assert!(!hp_hom::hom_exists(&b, &a));
        assert!(!phi_b.holds_in(&a));
        assert!(!phi_a.is_contained_in(&phi_b));
    }

    #[test]
    fn from_formula_basic() {
        let v = Vocabulary::digraph();
        // ∃x0 ∃x1 (E(x0,x1) ∧ E(x1,x0))
        let f = Formula::exists(
            0,
            Formula::exists(1, Formula::And(vec![edge(0, 1), edge(1, 0)])),
        );
        let q = Cq::from_formula(&f, &v).unwrap();
        assert_eq!(q.var_count(), 2);
        assert_eq!(q.arity(), 0);
        assert!(q.holds_in(&directed_cycle(2)));
        assert!(!q.holds_in(&transitive_tournament(5)));
        assert!(q.holds_in(&self_loop())); // fold both onto the loop
    }

    #[test]
    fn from_formula_with_equalities() {
        let v = Vocabulary::digraph();
        // ∃x0 ∃x1 (E(x0,x1) ∧ x0 = x1) ≡ ∃x E(x,x): a loop.
        let f = Formula::exists(
            0,
            Formula::exists(1, Formula::And(vec![edge(0, 1), Formula::Eq(0, 1)])),
        );
        let q = Cq::from_formula(&f, &v).unwrap();
        assert_eq!(q.var_count(), 1);
        assert!(q.holds_in(&self_loop()));
        assert!(!q.holds_in(&directed_cycle(3)));
    }

    #[test]
    fn from_formula_rejects_disjunction() {
        let v = Vocabulary::digraph();
        let f = Formula::Or(vec![edge(0, 1), edge(1, 0)]);
        assert!(Cq::from_formula(&f, &v).is_err());
    }

    #[test]
    fn from_formula_free_variables() {
        let v = Vocabulary::digraph();
        // E(x0, x1) with both free: the edge relation itself.
        let q = Cq::from_formula(&edge(0, 1), &v).unwrap();
        assert_eq!(q.arity(), 2);
        let p = directed_path(3);
        let ans = q.answers(&p);
        assert_eq!(ans, vec![vec![Elem(0), Elem(1)], vec![Elem(1), Elem(2)]]);
        assert!(q.holds_with(&p, &[Elem(0), Elem(1)]));
        assert!(!q.holds_with(&p, &[Elem(1), Elem(0)]));
    }

    #[test]
    fn to_formula_roundtrip_semantics() {
        let q = Cq::canonical_query(&directed_path(3));
        let f = q.to_formula();
        assert!(f.is_conjunctive());
        assert!(f.is_sentence());
        for b in [directed_path(3), directed_cycle(3), directed_path(2)] {
            assert_eq!(f.holds(&b), q.holds_in(&b), "mismatch on {b:?}");
        }
    }

    #[test]
    fn containment_path_lengths() {
        // "Has a path of length 3" ⊑ "has a path of length 2".
        let q3 = Cq::canonical_query(&directed_path(4));
        let q2 = Cq::canonical_query(&directed_path(3));
        assert!(q3.is_contained_in(&q2));
        assert!(!q2.is_contained_in(&q3));
    }

    #[test]
    fn minimize_folds_redundancy() {
        // Canonical query of the transitive tournament on 3: asks for a
        // "triangle with shortcut"; its core is... the tournament is a core
        // actually. Use instead: query of (path of length 2) ∪ (edge):
        // structure 0->1->2 plus extra disjoint edge 3->4 maps into itself
        // minus {3,4}: minimized to the path.
        let mut s = directed_path(3).disjoint_union(&directed_path(2)).unwrap();
        s.add_tuple_ids(0, &[3, 4]).unwrap(); // ensure edge present (already)
        let q = Cq::canonical_query(&s);
        let m = q.minimize();
        assert_eq!(m.var_count(), 3);
        assert!(m.is_equivalent_to(&q));
    }

    #[test]
    fn minimize_preserves_free_positions() {
        // E(x0, x1) ∧ E(x0, x2), x1 free: minimization may fold x2 into x1
        // but must keep x1 distinguished.
        let v = Vocabulary::digraph();
        let f = Formula::And(vec![edge(0, 1), edge(0, 2)]);
        let q = Cq::with_free(Cq::from_formula(&f, &v).unwrap().canonical(), &[Elem(1)]);
        let m = q.minimize();
        assert_eq!(m.arity(), 1);
        assert!(m.var_count() <= q.var_count());
        let p = directed_path(2);
        assert_eq!(m.answers(&p), q.answers(&p));
    }

    #[test]
    fn equivalent_queries_with_different_presentations() {
        // "Path of length 2 into a loop-closed vertex" vs its minimized form.
        let c6 = Cq::canonical_query(&directed_cycle(6));
        let c3 = Cq::canonical_query(&directed_cycle(3));
        // C6 ⊨-query is implied by C3-query? hom(C6→C3) exists so
        // q_{C3} ⊑ q_{C6}: every structure with hom from C3... wait:
        // q_A holds in B iff hom(A,B). q_{C6} ⊑ q_{C3} iff hom(C3, C6)? No:
        // containment via hom(other.canonical → self.canonical) =
        // hom(C3, C6), which fails; and hom(C6, C3) holds so q_{C3} ⊑ q_{C6}.
        assert!(c3.is_contained_in(&c6));
        assert!(!c6.is_contained_in(&c3));
    }

    #[test]
    fn core_keys_identify_equivalent_queries() {
        let v = Vocabulary::digraph();
        // q1: E(x0,x1) ∧ E(x0,x2) with x0,x1 free — x2 folds into x1.
        let q1 = Cq::with_free(
            Cq::from_formula(&Formula::And(vec![edge(0, 1), edge(0, 2)]), &v)
                .unwrap()
                .canonical(),
            &[Elem(0), Elem(1)],
        );
        // q2: same query already minimized, with renamed variables.
        let q2 = Cq::with_free(
            Cq::from_formula(&edge(5, 9), &v).unwrap().canonical(),
            &[Elem(0), Elem(1)],
        );
        assert!(q1.is_equivalent_to(&q2));
        assert_eq!(q1.canonical_core_key(), q2.canonical_core_key());
        // edge(1,0) numbers its elements in the other order, so this is
        // the same query under a different element numbering.
        let q3 = Cq::with_free(
            Cq::from_formula(&edge(1, 0), &v).unwrap().canonical(),
            &[Elem(0), Elem(1)],
        );
        assert!(q2.is_equivalent_to(&q3), "renumbered presentation");
        assert_eq!(q2.canonical_core_key(), q3.canonical_core_key());
        // The genuinely reversed query (answers (a,b) with E(b,a)) differs.
        let q4 = Cq::with_free(
            Cq::from_formula(&edge(0, 1), &v).unwrap().canonical(),
            &[Elem(1), Elem(0)],
        );
        assert!(!q2.is_equivalent_to(&q4));
        assert_ne!(q2.canonical_core_key(), q4.canonical_core_key());
    }

    #[test]
    fn core_key_ignores_boolean_redundancy() {
        // Boolean: C6 and C3 ⊕ C3... not equivalent. But "path of length 2
        // with a detour" ≡ "path of length 2".
        let mut s = directed_path(3).disjoint_union(&directed_path(2)).unwrap();
        s.add_tuple_ids(0, &[3, 4]).unwrap();
        let q = Cq::canonical_query(&s);
        let p = Cq::canonical_query(&directed_path(3));
        assert_eq!(q.canonical_core_key(), p.canonical_core_key());
        assert_ne!(
            p.canonical_core_key(),
            Cq::canonical_query(&directed_path(2)).canonical_core_key()
        );
    }

    #[test]
    fn gauged_variants_agree_and_exhaust() {
        use hp_guard::Budget;
        let q3 = Cq::canonical_query(&directed_path(4));
        let q2 = Cq::canonical_query(&directed_path(3));
        let mut g = Budget::unlimited().gauge();
        assert!(q3.is_contained_in_gauged(&q2, &mut g).unwrap());
        assert!(!q2.is_contained_in_gauged(&q3, &mut g).unwrap());
        assert!(!q2.is_equivalent_to_gauged(&q3, &mut g).unwrap());
        let mut tiny = Budget::fuel(1).gauge();
        assert!(q3.canonical_core_key_gauged(&mut tiny).is_err());
    }

    #[test]
    fn answers_on_complete_digraph() {
        // E(x0,x1) over K3: all 6 ordered pairs of distinct elements.
        let v = Vocabulary::digraph();
        let q = Cq::from_formula(&edge(0, 1), &v).unwrap();
        assert_eq!(q.answers(&complete_digraph(3)).len(), 6);
    }
}
