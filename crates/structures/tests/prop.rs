//! Property-based tests for hp-structures: BitSet against a model,
//! relation/set invariants, structure operations, and format round-trips.

use proptest::prelude::*;
use std::collections::BTreeSet;

use hp_structures::{
    generators, BitSet, Elem, Relation, Structure, SymbolId, TupleStore, Vocabulary,
};

proptest! {
    /// BitSet agrees with a BTreeSet model under arbitrary op sequences.
    #[test]
    fn bitset_matches_model(ops in prop::collection::vec((0usize..3, 0usize..96), 0..200)) {
        let mut bs = BitSet::new(96);
        let mut model: BTreeSet<usize> = BTreeSet::new();
        for (op, i) in ops {
            match op {
                0 => {
                    prop_assert_eq!(bs.insert(i), model.insert(i));
                }
                1 => {
                    prop_assert_eq!(bs.remove(i), model.remove(&i));
                }
                _ => {
                    prop_assert_eq!(bs.contains(i), model.contains(&i));
                }
            }
        }
        prop_assert_eq!(bs.len(), model.len());
        prop_assert_eq!(bs.iter().collect::<Vec<_>>(), model.iter().copied().collect::<Vec<_>>());
    }

    /// Set algebra laws on random pairs.
    #[test]
    fn bitset_algebra_laws(
        a in prop::collection::btree_set(0usize..64, 0..40),
        b in prop::collection::btree_set(0usize..64, 0..40),
    ) {
        let sa = BitSet::from_indices(64, a.iter().copied());
        let sb = BitSet::from_indices(64, b.iter().copied());
        let mut union = sa.clone();
        union.union_with(&sb);
        let mut inter = sa.clone();
        inter.intersect_with(&sb);
        let mut diff = sa.clone();
        diff.difference_with(&sb);
        prop_assert_eq!(union.len(), a.union(&b).count());
        prop_assert_eq!(inter.len(), a.intersection(&b).count());
        prop_assert_eq!(diff.len(), a.difference(&b).count());
        prop_assert_eq!(sa.is_subset(&union), true);
        prop_assert_eq!(inter.is_subset(&sa), true);
        prop_assert_eq!(sa.is_disjoint(&sb), a.is_disjoint(&b));
    }
}

/// Random tuples of a fixed arity over a small element range.
fn tuples_strategy(k: usize, count: usize) -> impl Strategy<Value = Vec<Vec<Elem>>> {
    prop::collection::vec(
        prop::collection::vec((0u32..6).prop_map(Elem), k..=k),
        0..count,
    )
}

proptest! {
    /// The columnar store agrees with a `BTreeSet<Vec<Elem>>` model on
    /// contains, length, sorted iteration order, merge, difference, and
    /// subset — across arities 0..=3 and with seals interleaved at random
    /// points so the sorted-run/pending boundary is exercised (duplicates
    /// may straddle it).
    #[test]
    fn tuple_store_matches_model(
        input in (0usize..=3).prop_flat_map(|k| (
            Just(k),
            tuples_strategy(k, 40),
            tuples_strategy(k, 40),
            prop::collection::vec(any::<bool>(), 40..41),
        ))
    ) {
        let (k, xs, ys, seals) = input;
        let mut s = TupleStore::new(k);
        let mut model: BTreeSet<Vec<Elem>> = BTreeSet::new();
        for (i, t) in xs.iter().enumerate() {
            s.push(t);
            model.insert(t.clone());
            if seals[i] {
                s.seal();
            }
        }
        s.seal();
        prop_assert_eq!(s.len(), model.len());
        let got: Vec<Vec<Elem>> = s.iter().map(|t| t.to_vec()).collect();
        let want: Vec<Vec<Elem>> = model.iter().cloned().collect();
        prop_assert_eq!(got, want, "sorted iteration order");
        for t in &ys {
            prop_assert_eq!(s.contains(t), model.contains(t));
        }

        let mut o = TupleStore::new(k);
        let mut omodel: BTreeSet<Vec<Elem>> = BTreeSet::new();
        for t in &ys {
            o.push(t);
            omodel.insert(t.clone());
        }
        o.seal();

        let mut u = s.clone();
        u.merge(&o);
        let union: Vec<Vec<Elem>> = model.union(&omodel).cloned().collect();
        prop_assert_eq!(u.iter().map(|t| t.to_vec()).collect::<Vec<_>>(), union);

        let d = s.difference(&o);
        let diff: Vec<Vec<Elem>> = model.difference(&omodel).cloned().collect();
        prop_assert_eq!(d.iter().map(|t| t.to_vec()).collect::<Vec<_>>(), diff);

        prop_assert!(s.is_subset(&u));
        prop_assert!(d.is_subset(&s));
        prop_assert_eq!(s.is_subset(&o), model.is_subset(&omodel));
        // Empty stores merge/difference as identities.
        let empty = TupleStore::new(k);
        let mut e2 = s.clone();
        e2.merge(&empty);
        prop_assert_eq!(&e2, &s);
        prop_assert_eq!(s.difference(&empty).len(), s.len());
        prop_assert!(empty.is_subset(&s));
    }

    /// Interleaved insert/remove/seal sequences on the raw store agree with
    /// the model — in particular a tuple that only exists in the *pending*
    /// delta must still be removable (`remove` seals first), and removals
    /// followed by re-pushes of the same tuple must round-trip.
    #[test]
    fn tuple_store_interleaved_ops_match_model(
        input in (1usize..=3).prop_flat_map(|k| (
            Just(k),
            prop::collection::vec(
                (0usize..4, prop::collection::vec((0u32..5).prop_map(Elem), k..=k)),
                0..160,
            ),
        ))
    ) {
        let (k, ops) = input;
        let mut s = TupleStore::new(k);
        let mut model: BTreeSet<Vec<Elem>> = BTreeSet::new();
        for (op, t) in ops {
            match op {
                0 => {
                    // Buffered insert: lands in the pending delta only.
                    s.push(&t);
                    model.insert(t);
                }
                1 => {
                    prop_assert_eq!(s.remove(&t), model.remove(&t), "remove divergence");
                }
                2 => {
                    prop_assert_eq!(s.contains(&t), model.contains(&t), "contains divergence");
                }
                _ => s.seal(),
            }
        }
        s.seal();
        prop_assert_eq!(s.len(), model.len());
        let got: Vec<Vec<Elem>> = s.iter().map(|t| t.to_vec()).collect();
        prop_assert_eq!(got, model.iter().cloned().collect::<Vec<_>>());
    }

    /// `prefix_range` and `intersection` agree with brute-force models.
    #[test]
    fn prefix_range_and_intersection_match_model(
        xs in tuples_strategy(2, 40),
        ys in tuples_strategy(2, 40),
        probe in (0u32..6).prop_map(Elem),
    ) {
        let mut s = TupleStore::new(2);
        let mut model: BTreeSet<Vec<Elem>> = BTreeSet::new();
        for t in &xs {
            s.push(t);
            model.insert(t.clone());
        }
        s.seal();
        let r = s.prefix_range(&[probe]);
        let want: Vec<Vec<Elem>> =
            model.iter().filter(|t| t[0] == probe).cloned().collect();
        let got: Vec<Vec<Elem>> = r.map(|i| s.row(i).to_vec()).collect();
        prop_assert_eq!(got, want, "prefix_range");
        prop_assert_eq!(s.prefix_range(&[]), 0..s.len());

        let mut o = TupleStore::new(2);
        let mut omodel: BTreeSet<Vec<Elem>> = BTreeSet::new();
        for t in &ys {
            o.push(t);
            omodel.insert(t.clone());
        }
        o.seal();
        let inter: Vec<Vec<Elem>> = model.intersection(&omodel).cloned().collect();
        let got: Vec<Vec<Elem>> =
            s.intersection(&o).iter().map(|t| t.to_vec()).collect();
        prop_assert_eq!(got, inter, "intersection");
    }

    /// `CountedStore` agrees with a `BTreeMap<tuple, i64>` multiset model:
    /// after each `apply`, per-tuple counts match and the reported
    /// inserted/removed stores are exactly the set-level membership
    /// transitions.
    #[test]
    fn counted_store_matches_model(
        input in (0usize..=2).prop_flat_map(|k| (
            Just(k),
            prop::collection::vec(
                (prop::collection::vec((0u32..4).prop_map(Elem), k..=k), any::<bool>()),
                0..120,
            ),
            prop::collection::vec(any::<bool>(), 120..121),
        ))
    ) {
        use std::collections::BTreeMap;
        let (k, pushes, applies) = input;
        let mut c = hp_structures::CountedStore::new(k);
        let mut model: BTreeMap<Vec<Elem>, i64> = BTreeMap::new();
        let mut buffered: Vec<(Vec<Elem>, i64)> = Vec::new();
        for (i, (t, _)) in pushes.iter().enumerate() {
            // Keep model counts non-negative: only retract what the model
            // (committed + buffered) currently holds, mirroring how the
            // maintenance algebra only retracts counted derivations.
            let cur = model.get(t).copied().unwrap_or(0)
                + buffered.iter().filter(|(b, _)| b == t).map(|(_, d)| d).sum::<i64>();
            let delta = if pushes[i].1 && cur > 0 { -1 } else { 1 };
            c.push(t, delta);
            buffered.push((t.clone(), delta));
            if applies[i] {
                let before: BTreeSet<Vec<Elem>> = model.keys().cloned().collect();
                for (b, d) in buffered.drain(..) {
                    let e = model.entry(b).or_insert(0);
                    *e += d;
                }
                model.retain(|_, v| *v > 0);
                let after: BTreeSet<Vec<Elem>> = model.keys().cloned().collect();
                let d = c.apply();
                let ins: Vec<Vec<Elem>> =
                    d.inserted.iter().map(|t| t.to_vec()).collect();
                let rem: Vec<Vec<Elem>> =
                    d.removed.iter().map(|t| t.to_vec()).collect();
                prop_assert_eq!(
                    ins,
                    after.difference(&before).cloned().collect::<Vec<_>>(),
                    "inserted transitions"
                );
                prop_assert_eq!(
                    rem,
                    before.difference(&after).cloned().collect::<Vec<_>>(),
                    "removed transitions"
                );
                prop_assert_eq!(c.len(), model.len());
                for (t, &n) in &model {
                    prop_assert_eq!(c.count(t), n, "count mismatch");
                }
            }
        }
    }

    /// `Relation` (the always-sealed wrapper) agrees with the model under
    /// arbitrary insert/remove/contains sequences.
    #[test]
    fn relation_ops_match_model(
        ops in prop::collection::vec((0usize..3, (0u32..5, 0u32..5)), 0..120)
    ) {
        let mut r = Relation::new(2);
        let mut model: BTreeSet<Vec<Elem>> = BTreeSet::new();
        for (op, (a, b)) in ops {
            let t = vec![Elem(a), Elem(b)];
            match op {
                0 => prop_assert_eq!(r.insert(&t), model.insert(t)),
                1 => prop_assert_eq!(r.remove(&t), model.remove(&t)),
                _ => prop_assert_eq!(r.contains(&t), model.contains(&t)),
            }
        }
        prop_assert_eq!(r.len(), model.len());
        let got: Vec<Vec<Elem>> = r.iter().map(|t| t.to_vec()).collect();
        prop_assert_eq!(got, model.iter().cloned().collect::<Vec<_>>());
    }
}

/// Element values chosen to stress the store's dictionary: dense low ids,
/// the extremes of the `u32` range, and isolated powers of two, so dense
/// dictionary ids bear no resemblance to the element values they encode.
fn sparse_elem() -> impl Strategy<Value = Elem> {
    prop_oneof![
        (0u32..4).prop_map(Elem),
        Just(Elem(u32::MAX)),
        Just(Elem(u32::MAX - 17)),
        (2u32..30).prop_map(|i| Elem(1u32 << i)),
    ]
}

proptest! {
    /// Sparse, high element values round-trip through the dictionary: the
    /// store agrees with the model on membership and sorted iteration, and
    /// the dictionary holds exactly the distinct values in play.
    #[test]
    fn sparse_high_elem_values_roundtrip(
        xs in prop::collection::vec(
            (prop::collection::vec(sparse_elem(), 2..=2), any::<bool>()),
            0..60,
        ),
    ) {
        let mut s = TupleStore::new(2);
        let mut model: BTreeSet<Vec<Elem>> = BTreeSet::new();
        for (t, seal) in &xs {
            s.push(t);
            model.insert(t.clone());
            if *seal {
                s.seal();
            }
        }
        s.seal();
        prop_assert_eq!(s.len(), model.len());
        let got: Vec<Vec<Elem>> = s.iter().map(|t| t.to_vec()).collect();
        prop_assert_eq!(got, model.iter().cloned().collect::<Vec<_>>());
        for t in &model {
            prop_assert!(s.contains(t));
        }
        let distinct: BTreeSet<Elem> = model.iter().flatten().copied().collect();
        prop_assert_eq!(s.dict_len(), distinct.len());
    }

    /// Sealing a batch whose values sort *below* existing dictionary
    /// entries forces a dense-id remap of every already-sealed plane; rows
    /// decoded before and after any number of such remaps must be
    /// identical.
    #[test]
    fn dictionary_remap_stable_across_seals(
        batches in prop::collection::vec(
            prop::collection::vec(prop::collection::vec(sparse_elem(), 2..=2), 0..12),
            1..6,
        ),
    ) {
        let mut s = TupleStore::new(2);
        let mut model: BTreeSet<Vec<Elem>> = BTreeSet::new();
        for batch in &batches {
            for t in batch {
                s.push(t);
                model.insert(t.clone());
            }
            s.seal();
            // Everything inserted so far — including rows sealed under an
            // older, smaller dictionary — still decodes to itself.
            prop_assert_eq!(s.len(), model.len());
            let got: Vec<Vec<Elem>> = s.iter().map(|t| t.to_vec()).collect();
            prop_assert_eq!(got, model.iter().cloned().collect::<Vec<_>>());
            for t in &model {
                prop_assert!(s.contains(t), "lost {t:?} after remap");
            }
        }
    }

    /// Arity-0 stores (nullary relations hold at most the empty tuple)
    /// agree with the model under insert/remove/seal interleavings, and
    /// the set algebra degenerates correctly.
    #[test]
    fn arity_zero_store_matches_model(ops in prop::collection::vec(0usize..4, 0..40)) {
        let empty: &[Elem] = &[];
        let mut s = TupleStore::new(0);
        let mut model: BTreeSet<Vec<Elem>> = BTreeSet::new();
        for op in ops {
            match op {
                0 => {
                    s.push(empty);
                    model.insert(Vec::new());
                }
                1 => {
                    prop_assert_eq!(s.remove(empty), model.remove(&Vec::new()));
                }
                2 => {
                    prop_assert_eq!(s.contains(empty), model.contains(&Vec::new()));
                }
                _ => s.seal(),
            }
        }
        s.seal();
        prop_assert_eq!(s.len(), model.len());
        let mut o = TupleStore::new(0);
        o.seal();
        prop_assert_eq!(s.difference(&o).len(), s.len());
        prop_assert_eq!(s.intersection(&o).len(), 0);
        let mut u = s.clone();
        u.merge(&o);
        prop_assert_eq!(u.len(), s.len());
    }

    /// Two stores driven by interleaved pushes and removes — removes
    /// landing while rows are still buffered in the pending delta — with
    /// `difference` checked against the model at random points mid-stream.
    #[test]
    fn interleaved_remove_and_difference_match_model(
        input in (1usize..=2).prop_flat_map(|k| (
            Just(k),
            prop::collection::vec(
                (0usize..5, prop::collection::vec((0u32..5).prop_map(Elem), k..=k)),
                0..120,
            ),
        )),
    ) {
        let (k, ops) = input;
        let mut s = TupleStore::new(k);
        let mut o = TupleStore::new(k);
        let mut ms: BTreeSet<Vec<Elem>> = BTreeSet::new();
        let mut mo: BTreeSet<Vec<Elem>> = BTreeSet::new();
        for (op, t) in ops {
            match op {
                0 => {
                    s.push(&t);
                    ms.insert(t);
                }
                1 => {
                    o.push(&t);
                    mo.insert(t);
                }
                2 => {
                    prop_assert_eq!(s.remove(&t), ms.remove(&t), "remove from s");
                }
                3 => {
                    prop_assert_eq!(o.remove(&t), mo.remove(&t), "remove from o");
                }
                _ => {
                    s.seal();
                    o.seal();
                    let got: Vec<Vec<Elem>> =
                        s.difference(&o).iter().map(|t| t.to_vec()).collect();
                    prop_assert_eq!(
                        got,
                        ms.difference(&mo).cloned().collect::<Vec<_>>(),
                        "mid-stream difference"
                    );
                }
            }
        }
        s.seal();
        o.seal();
        let got: Vec<Vec<Elem>> = s.difference(&o).iter().map(|t| t.to_vec()).collect();
        prop_assert_eq!(got, ms.difference(&mo).cloned().collect::<Vec<_>>());
    }
}

/// A strategy for small random digraph structures.
fn digraph_strategy(max_n: usize, max_m: usize) -> impl Strategy<Value = Structure> {
    (
        1..=max_n,
        prop::collection::vec((0usize..max_n, 0usize..max_n), 0..max_m),
    )
        .prop_map(move |(n, edges)| {
            let mut s = Structure::new(Vocabulary::digraph(), n);
            for (u, v) in edges {
                let _ = s.add_tuple_ids(0, &[(u % n) as u32, (v % n) as u32]);
            }
            s
        })
}

proptest! {
    /// Text-format round trip is the identity.
    #[test]
    fn text_roundtrip(s in digraph_strategy(8, 24)) {
        let back = Structure::from_text(&s.to_text()).unwrap();
        prop_assert_eq!(s, back);
    }

    /// Disjoint union: sizes and tuple counts add; each part embeds.
    #[test]
    fn disjoint_union_invariants(a in digraph_strategy(6, 12), b in digraph_strategy(6, 12)) {
        let u = a.disjoint_union(&b).unwrap();
        prop_assert_eq!(u.universe_size(), a.universe_size() + b.universe_size());
        prop_assert_eq!(u.total_tuples(), a.total_tuples() + b.total_tuples());
        // The identity embedding of a is a hom into u.
        let id: Vec<Elem> = (0..a.universe_size() as u32).map(Elem).collect();
        prop_assert!(a.is_homomorphism(&id, &u));
        // The Gaifman graph of the union has no cross edges.
        let g = u.gaifman_graph();
        for (x, y) in g.edges() {
            let cross = (x as usize) < a.universe_size() && (y as usize) >= a.universe_size();
            prop_assert!(!cross, "cross edge in disjoint union");
        }
    }

    /// Induced substructures are substructures; restriction to the full
    /// set is the identity.
    #[test]
    fn induced_invariants(s in digraph_strategy(7, 20), keep_bits in prop::collection::vec(any::<bool>(), 7)) {
        let n = s.universe_size();
        let keep = BitSet::from_indices(n, (0..n).filter(|&i| *keep_bits.get(i).unwrap_or(&false)));
        let (sub, old) = s.induced(&keep);
        prop_assert_eq!(sub.universe_size(), keep.len());
        // Every tuple of sub maps to a tuple of s under old_of_new.
        for (sym, rel) in sub.relations() {
            for t in rel.iter() {
                let mapped: Vec<Elem> = t.iter().map(|e| old[e.index()]).collect();
                prop_assert!(s.contains_tuple(sym, &mapped));
            }
        }
        let full = BitSet::full(n);
        let (same, _) = s.induced(&full);
        prop_assert_eq!(same, s);
    }

    /// hom_image produces a structure the map is a homomorphism into.
    #[test]
    fn hom_image_receives_hom(s in digraph_strategy(6, 15), target in 1usize..5, seed in any::<u64>()) {
        use rand::Rng;
        let mut r = generators::rng(seed);
        let map: Vec<Elem> = (0..s.universe_size())
            .map(|_| Elem::from(r.gen_range(0..target)))
            .collect();
        let img = s.hom_image(&map, target);
        prop_assert!(s.is_homomorphism(&map, &img));
    }

    /// Gaifman graphs of digraphs: edge count ≤ tuple count; degree bounds.
    #[test]
    fn gaifman_bounds(s in digraph_strategy(8, 30)) {
        let g = s.gaifman_graph();
        prop_assert!(g.edge_count() <= s.total_tuples());
        prop_assert_eq!(g.vertex_count(), s.universe_size());
        prop_assert_eq!(s.degree(), g.max_degree());
    }

    /// d-neighborhoods are monotone in d and bounded by reachability.
    #[test]
    fn neighborhood_monotone(s in digraph_strategy(8, 20), d in 0usize..5) {
        let g = s.gaifman_graph();
        for v in g.vertices() {
            let small = g.neighborhood(v, d);
            let big = g.neighborhood(v, d + 1);
            prop_assert!(small.is_subset(&big));
            prop_assert!(small.contains(v as usize));
        }
    }

    /// one_step_weakenings always yields proper "smaller" structures.
    #[test]
    fn weakenings_shrink(s in digraph_strategy(5, 10)) {
        for w in s.one_step_weakenings() {
            let shrunk = w.total_tuples() < s.total_tuples()
                || w.universe_size() < s.universe_size();
            prop_assert!(shrunk);
        }
    }
}

proptest! {
    /// Generators produce graphs with the advertised vertex/edge counts.
    #[test]
    fn generator_counts(n in 3usize..12) {
        prop_assert_eq!(generators::path(n).edge_count(), n - 1);
        prop_assert_eq!(generators::cycle(n).edge_count(), n);
        prop_assert_eq!(generators::clique(n).edge_count(), n * (n - 1) / 2);
        prop_assert_eq!(generators::star(n).edge_count(), n);
        prop_assert_eq!(generators::wheel(n).edge_count(), 2 * n);
        let s = generators::directed_cycle(n);
        prop_assert_eq!(s.relation(SymbolId(0)).len(), n);
    }

    /// Random trees are trees; random partial k-trees respect degeneracy.
    #[test]
    fn random_family_invariants(n in 4usize..40, seed in any::<u64>()) {
        let t = generators::random_tree(n, seed);
        prop_assert_eq!(t.edge_count(), n - 1);
        prop_assert!(t.is_connected());
        let g = generators::random_bounded_degree(n, 3, 5 * n, seed);
        prop_assert!(g.max_degree() <= 3);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Graph-algorithm consistency: bipartite ⇔ every cycle length found by
    /// girth is even; diameter bounds; subdivision multiplies girth.
    #[test]
    fn graph_algo_consistency(edges in prop::collection::vec((0u32..9, 0u32..9), 0..20)) {
        let mut g = hp_structures::Graph::new(9);
        for (u, v) in edges {
            if u != v {
                g.add_edge(u, v);
            }
        }
        // Bipartite ⇒ no odd girth.
        match (g.is_bipartite(), g.girth()) {
            (true, Some(girth)) => prop_assert_eq!(girth % 2, 0),
            (false, None) => prop_assert!(false, "non-bipartite graphs have a cycle"),
            _ => {}
        }
        // Diameter, when defined, is at most n − 1 and 0 only for trivial.
        if let Some(d) = g.diameter() {
            prop_assert!(d <= 8);
        }
        // Subdividing doubles every cycle length: girth doubles.
        if let Some(girth) = g.girth() {
            prop_assert_eq!(g.subdivided(1).girth(), Some(girth * 2));
        }
        // Bipartition, when it exists, is proper.
        if let Some(side) = g.bipartition() {
            for (u, v) in g.edges() {
                prop_assert_ne!(side[u as usize], side[v as usize]);
            }
        }
        // One subdivision always makes the graph bipartite? No — odd cycles
        // become even cycles: subdivided graphs with `times = 1` ARE
        // bipartite (every edge path has length 2).
        prop_assert!(g.subdivided(1).is_bipartite());
    }
}
