//! A compact fixed-capacity bit set over universe indices.

/// A fixed-capacity bit set used for element subsets, adjacency rows of dense
/// graphs, and CSP domains in the homomorphism solver.
///
/// All operations are over a fixed capacity chosen at construction; indices
/// `>= capacity` are a logic error (checked by `debug_assert`).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// An empty set with room for `capacity` indices.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// The full set `{0, …, capacity-1}`.
    pub fn full(capacity: usize) -> Self {
        let mut s = Self::new(capacity);
        for i in 0..capacity {
            s.insert(i);
        }
        s
    }

    /// Build from an iterator of indices.
    pub fn from_indices<I: IntoIterator<Item = usize>>(capacity: usize, it: I) -> Self {
        let mut s = Self::new(capacity);
        for i in it {
            s.insert(i);
        }
        s
    }

    /// The fixed capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Insert index `i`. Returns true if it was newly inserted.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.capacity);
        let (w, b) = (i / 64, i % 64);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Remove index `i`. Returns true if it was present.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        debug_assert!(i < self.capacity);
        let (w, b) = (i / 64, i % 64);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        had
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.capacity);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no index is set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Remove all members.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place difference (`self \ other`).
    pub fn difference_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// True when `self` and `other` share no member.
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        debug_assert_eq!(self.capacity, other.capacity);
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// True when every member of `self` is in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        debug_assert_eq!(self.capacity, other.capacity);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterate over set indices in increasing order.
    pub fn iter(&self) -> BitSetIter<'_> {
        BitSetIter {
            set: self,
            word: 0,
            bits: self.words.first().copied().unwrap_or(0),
        }
    }

    /// The smallest set index, if any.
    pub fn first(&self) -> Option<usize> {
        self.iter().next()
    }
}

/// Iterator over the members of a [`BitSet`].
pub struct BitSetIter<'a> {
    set: &'a BitSet,
    word: usize,
    bits: u64,
}

impl Iterator for BitSetIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.bits != 0 {
                let b = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1;
                return Some(self.word * 64 + b);
            }
            self.word += 1;
            if self.word >= self.set.words.len() {
                return None;
            }
            self.bits = self.set.words[self.word];
        }
    }
}

impl FromIterator<usize> for BitSet {
    /// Collect indices into a set sized to fit the largest index.
    fn from_iter<I: IntoIterator<Item = usize>>(it: I) -> Self {
        let v: Vec<usize> = it.into_iter().collect();
        let cap = v.iter().max().map_or(0, |m| m + 1);
        BitSet::from_indices(cap, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64));
        assert!(s.contains(129));
        assert!(!s.contains(1));
        assert_eq!(s.len(), 3);
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn iter_in_order() {
        let s = BitSet::from_indices(200, [5, 199, 64, 0]);
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, [0, 5, 64, 199]);
    }

    #[test]
    fn set_algebra() {
        let a = BitSet::from_indices(10, [1, 2, 3]);
        let b = BitSet::from_indices(10, [3, 4]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), [1, 2, 3, 4]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), [3]);
        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), [1, 2]);
        assert!(!a.is_disjoint(&b));
        assert!(i.is_subset(&a));
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn full_and_empty() {
        let f = BitSet::full(65);
        assert_eq!(f.len(), 65);
        assert!(f.contains(64));
        let e = BitSet::new(65);
        assert!(e.is_empty());
        assert!(e.is_disjoint(&f));
        assert!(e.is_subset(&f));
        assert_eq!(f.first(), Some(0));
        assert_eq!(e.first(), None);
    }
}
