//! Columnar tuple storage: a flat arena of [`Elem`]s with arity-stride rows.
//!
//! [`TupleStore`] is the single physical representation behind
//! [`Relation`](crate::Relation) and the evaluator's IDB relations. It keeps
//! tuples in two regions backed by flat `Vec<Elem>` arenas:
//!
//! * a **sorted run** — rows in lexicographic order, deduplicated — over
//!   which all set operations run by binary search and galloping merges, and
//! * a **pending delta** — rows appended in arrival order, possibly
//!   duplicated — which batches inserts so a bulk load costs one sort and
//!   one merge instead of `n` shifting array inserts.
//!
//! [`seal`](TupleStore::seal) folds the pending delta into the sorted run
//! (sort + dedup + one galloping merge). Every read (`contains`, `iter`,
//! equality, hashing) is defined over the *sealed* content; `contains`
//! additionally scans the pending region so unsealed stores still answer
//! membership correctly.
//!
//! Mutating single-row operations ([`insert`](TupleStore::insert),
//! [`remove`](TupleStore::remove)) seal first, so a tuple that only exists
//! in the pending delta is still removable. The binary set operations
//! ([`merge`](TupleStore::merge), [`difference`](TupleStore::difference),
//! [`intersection`](TupleStore::intersection),
//! [`is_subset`](TupleStore::is_subset)) and the probe primitives
//! ([`prefix_range`](TupleStore::prefix_range)) require *both* operands to
//! be sealed — enforced with `debug_assert` — because they gallop over the
//! sorted runs only.
//!
//! Rows are addressed by index: row `i` of an arity-`k` store is
//! `data[i*k .. (i+1)*k]`, handed out as a zero-copy `&[Elem]`. Arity-0
//! relations (nullary predicates) are supported: the arena stays empty and
//! only the explicit row counters distinguish `{}` from `{()}`.

use std::fmt;
use std::hash::{Hash, Hasher};

use crate::elem::Elem;

/// A set of same-arity tuples in columnar (struct-of-rows) layout.
///
/// See the module docs for the layout. Invariants:
///
/// * `data.len() == rows * arity` and `pending.len() == pending_rows * arity`;
/// * rows `0..rows` of `data` are lexicographically sorted and distinct;
/// * `pending` is unordered and may contain duplicates (of itself or of the
///   sorted run) until [`seal`](TupleStore::seal) is called.
///
/// Equality and hashing require a sealed store (checked with
/// `debug_assert`); [`Relation`](crate::Relation) maintains "sealed after
/// every `&mut` method returns" so its comparisons are always canonical.
#[derive(Clone)]
pub struct TupleStore {
    arity: usize,
    /// Number of rows in the sorted run.
    rows: usize,
    /// Sorted-run arena: `rows * arity` elements.
    data: Vec<Elem>,
    /// Number of rows in the pending delta.
    pending_rows: usize,
    /// Pending arena: `pending_rows * arity` elements, insertion order.
    pending: Vec<Elem>,
}

impl TupleStore {
    /// An empty store of the given arity.
    pub fn new(arity: usize) -> Self {
        TupleStore {
            arity,
            rows: 0,
            data: Vec::new(),
            pending_rows: 0,
            pending: Vec::new(),
        }
    }

    /// An empty store with arena capacity reserved for `rows` sealed rows.
    pub fn with_capacity(arity: usize, rows: usize) -> Self {
        TupleStore {
            arity,
            rows: 0,
            data: Vec::with_capacity(rows * arity),
            pending_rows: 0,
            pending: Vec::new(),
        }
    }

    /// The arity (row stride) of the store.
    #[inline]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of rows in the sorted run. Call [`seal`](TupleStore::seal)
    /// first for an exact count when pending rows exist.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True when both the sorted run and the pending delta are empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0 && self.pending_rows == 0
    }

    /// Number of buffered (not yet sealed) rows, duplicates included.
    #[inline]
    pub fn pending_len(&self) -> usize {
        self.pending_rows
    }

    /// True when there is no pending delta.
    #[inline]
    pub fn is_sealed(&self) -> bool {
        self.pending_rows == 0
    }

    /// The `i`-th row of the sorted run, as a zero-copy slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[Elem] {
        debug_assert!(i < self.rows);
        &self.data[i * self.arity..(i + 1) * self.arity]
    }

    /// Iterate the sorted run in lexicographic order (zero-copy).
    pub fn iter(&self) -> Rows<'_> {
        Rows {
            data: &self.data,
            arity: self.arity,
            front: 0,
            back: self.rows,
        }
    }

    /// Append a row to the pending delta (no ordering or dedup work).
    #[inline]
    pub fn push(&mut self, t: &[Elem]) {
        debug_assert_eq!(t.len(), self.arity);
        self.pending.extend_from_slice(t);
        self.pending_rows += 1;
    }

    /// Append one pending row by writing its elements straight into the
    /// arena — the zero-copy emit path for join outputs. `fill` must append
    /// exactly `arity` elements.
    #[inline]
    pub fn push_with(&mut self, fill: impl FnOnce(&mut Vec<Elem>)) {
        #[cfg(debug_assertions)]
        let before = self.pending.len();
        fill(&mut self.pending);
        #[cfg(debug_assertions)]
        debug_assert_eq!(self.pending.len() - before, self.arity);
        self.pending_rows += 1;
    }

    /// Fold the pending delta into the sorted run: sort the pending rows,
    /// drop duplicates, and merge with the existing run in one galloping
    /// pass. Idempotent; a no-op when already sealed.
    ///
    /// Pending row indices are sorted through a `Vec<u32>` to halve the
    /// scratch footprint of the common case; a pending count that does not
    /// fit in `u32` (≥ 2³² buffered rows) automatically takes an equivalent
    /// `usize`-indexed path instead of silently truncating.
    pub fn seal(&mut self) {
        self.seal_impl(self.pending_rows > u32::MAX as usize);
    }

    /// The seal body, with the index-width decision made explicit so the
    /// wide path is unit-testable on small data.
    fn seal_impl(&mut self, wide: bool) {
        if self.pending_rows == 0 {
            return;
        }
        let k = self.arity;
        if k == 0 {
            // The only possible row is `()`; sealing collapses to "present".
            self.rows = 1;
            self.pending_rows = 0;
            self.pending.clear();
            return;
        }
        // Sort row *indices* so the arena itself is never permuted.
        let pend = std::mem::take(&mut self.pending);
        if wide {
            let idx: Vec<usize> =
                sort_dedup_rows((0..self.pending_rows).collect(), |i| i, &pend, k);
            self.merge_sorted_pending(&pend, &idx, |i| i);
        } else {
            debug_assert!(self.pending_rows <= u32::MAX as usize);
            let idx: Vec<u32> = sort_dedup_rows(
                (0..self.pending_rows as u32).collect(),
                |i| i as usize,
                &pend,
                k,
            );
            self.merge_sorted_pending(&pend, &idx, |i| i as usize);
        }
        self.pending_rows = 0;
        self.pending.clear();
    }

    /// Merge sorted, distinct pending row indices (`idx` into `pend`) with
    /// the existing sorted run, deduplicating across the boundary.
    fn merge_sorted_pending<I: Copy>(
        &mut self,
        pend: &[Elem],
        idx: &[I],
        to_usize: impl Fn(I) -> usize,
    ) {
        let k = self.arity;
        let mut out: Vec<Elem> = Vec::with_capacity(self.data.len() + idx.len() * k);
        let mut out_rows = 0usize;
        let mut di = 0usize; // row cursor into the sorted run
        for &pi in idx {
            let pi = to_usize(pi);
            let prow = &pend[pi * k..(pi + 1) * k];
            let hi = self.lower_bound_from(di, prow);
            out.extend_from_slice(&self.data[di * k..hi * k]);
            out_rows += hi - di;
            di = hi;
            if di < self.rows && self.row(di) == prow {
                di += 1; // duplicate across the boundary: keep one copy
            }
            out.extend_from_slice(prow);
            out_rows += 1;
        }
        out.extend_from_slice(&self.data[di * k..]);
        out_rows += self.rows - di;
        self.data = out;
        self.rows = out_rows;
    }

    /// Membership test: binary search in the sorted run plus a linear scan
    /// of the pending delta.
    pub fn contains(&self, t: &[Elem]) -> bool {
        debug_assert_eq!(t.len(), self.arity);
        let i = self.lower_bound_from(0, t);
        if i < self.rows && self.row(i) == t {
            return true;
        }
        if self.pending_rows > 0 {
            if self.arity == 0 {
                return true;
            }
            let k = self.arity;
            return self.pending.chunks_exact(k).any(|row| row == t);
        }
        false
    }

    /// Insert a single row into the sorted run (sealing first if needed).
    /// Returns true when the row was not already present. Prefer batching
    /// through [`push`](TupleStore::push)/[`seal`](TupleStore::seal) — a
    /// sorted-position insert shifts the arena tail.
    pub fn insert(&mut self, t: &[Elem]) -> bool {
        debug_assert_eq!(t.len(), self.arity);
        self.seal();
        let i = self.lower_bound_from(0, t);
        if i < self.rows && self.row(i) == t {
            return false;
        }
        let k = self.arity;
        self.data.splice(i * k..i * k, t.iter().copied());
        self.rows += 1;
        true
    }

    /// Remove a row (sealing first if needed). Returns true if present.
    pub fn remove(&mut self, t: &[Elem]) -> bool {
        debug_assert_eq!(t.len(), self.arity);
        self.seal();
        let i = self.lower_bound_from(0, t);
        if i < self.rows && self.row(i) == t {
            let k = self.arity;
            self.data.drain(i * k..(i + 1) * k);
            self.rows -= 1;
            true
        } else {
            false
        }
    }

    /// Set-union `other` (sealed) into `self` (sealed): one galloping merge
    /// that copies whole runs with `extend_from_slice`.
    pub fn merge(&mut self, other: &TupleStore) {
        debug_assert_eq!(self.arity, other.arity);
        debug_assert!(self.is_sealed() && other.is_sealed());
        if other.rows == 0 {
            return;
        }
        if self.rows == 0 {
            self.data.clear();
            self.data.extend_from_slice(&other.data);
            self.rows = other.rows;
            return;
        }
        let k = self.arity;
        if k > 0 && self.row(self.rows - 1) < other.row(0) {
            // Disjoint append — the common shape for monotone loads.
            self.data.extend_from_slice(&other.data);
            self.rows += other.rows;
            return;
        }
        let mut out: Vec<Elem> = Vec::with_capacity(self.data.len() + other.data.len());
        let mut out_rows = 0usize;
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.rows && j < other.rows {
            let hi = self.lower_bound_from(i, other.row(j));
            out.extend_from_slice(&self.data[i * k..hi * k]);
            out_rows += hi - i;
            i = hi;
            if i >= self.rows {
                break;
            }
            let oj = other.lower_bound_from(j, self.row(i));
            out.extend_from_slice(&other.data[j * k..oj * k]);
            out_rows += oj - j;
            j = oj;
            if j < other.rows && other.row(j) == self.row(i) {
                out.extend_from_slice(self.row(i));
                out_rows += 1;
                i += 1;
                j += 1;
            }
        }
        out.extend_from_slice(&self.data[i * k..]);
        out_rows += self.rows - i;
        out.extend_from_slice(&other.data[j * k..]);
        out_rows += other.rows - j;
        self.data = out;
        self.rows = out_rows;
    }

    /// Rows of `self` (sealed) absent from `other` (sealed), as a new
    /// sealed store. Gallops through `other` so a small `self` against a
    /// large `other` costs `O(|self| · log |other|)`.
    pub fn difference(&self, other: &TupleStore) -> TupleStore {
        debug_assert_eq!(self.arity, other.arity);
        debug_assert!(self.is_sealed() && other.is_sealed());
        let k = self.arity;
        let mut out = TupleStore::new(k);
        let mut j = 0usize;
        for i in 0..self.rows {
            let r = self.row(i);
            j = other.lower_bound_from(j, r);
            if j < other.rows && other.row(j) == r {
                j += 1;
                continue;
            }
            out.data.extend_from_slice(r);
            out.rows += 1;
        }
        out
    }

    /// Rows present in both `self` and `other` (both sealed), as a new
    /// sealed store. Gallops the larger operand from the smaller one so the
    /// cost is `O(min · log max)`.
    pub fn intersection(&self, other: &TupleStore) -> TupleStore {
        debug_assert_eq!(self.arity, other.arity);
        debug_assert!(self.is_sealed() && other.is_sealed());
        let (small, large) = if self.rows <= other.rows {
            (self, other)
        } else {
            (other, self)
        };
        let mut out = TupleStore::new(self.arity);
        let mut j = 0usize;
        for i in 0..small.rows {
            let r = small.row(i);
            j = large.lower_bound_from(j, r);
            if j < large.rows && large.row(j) == r {
                out.data.extend_from_slice(r);
                out.rows += 1;
                j += 1;
            }
        }
        out
    }

    /// The contiguous range of sorted-run row indices whose first
    /// `prefix.len()` elements equal `prefix` (sealed stores only). Two
    /// binary searches; an empty prefix selects every row. This is the probe
    /// primitive behind permuted secondary indexes: sort a copy of the store
    /// with the key columns first, then `prefix_range(key)` is the matching
    /// row set.
    pub fn prefix_range(&self, prefix: &[Elem]) -> std::ops::Range<usize> {
        debug_assert!(self.is_sealed());
        debug_assert!(prefix.len() <= self.arity);
        let p = prefix.len();
        if p == 0 {
            return 0..self.rows;
        }
        let k = self.arity;
        let key = |i: usize| &self.data[i * k..i * k + p];
        // First row whose prefix is >= `prefix`.
        let (mut lo, mut hi) = (0usize, self.rows);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if key(mid) < prefix {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let start = lo;
        // First row whose prefix is > `prefix`.
        let mut hi = self.rows;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if key(mid) <= prefix {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        start..lo
    }

    /// True when every sealed row of `self` is a row of `other` (both
    /// sealed). Galloping merge scan.
    pub fn is_subset(&self, other: &TupleStore) -> bool {
        debug_assert_eq!(self.arity, other.arity);
        debug_assert!(self.is_sealed() && other.is_sealed());
        if self.rows > other.rows {
            return false;
        }
        let mut j = 0usize;
        for i in 0..self.rows {
            let r = self.row(i);
            j = other.lower_bound_from(j, r);
            if j >= other.rows || other.row(j) != r {
                return false;
            }
            j += 1;
        }
        true
    }

    /// Drop all rows (sealed and pending), keeping the arena allocations.
    pub fn clear(&mut self) {
        self.rows = 0;
        self.data.clear();
        self.pending_rows = 0;
        self.pending.clear();
    }

    /// Bytes of heap the arenas hold (capacity, not just length) — the
    /// store's contribution to peak memory. `#![forbid(unsafe_code)]` rules
    /// out a counting allocator, so footprint reporting is analytic.
    pub fn heap_bytes(&self) -> usize {
        (self.data.capacity() + self.pending.capacity()) * std::mem::size_of::<Elem>()
    }

    /// First sorted-run row index `>= t`, searching only `from..rows`.
    /// Exponential gallop then binary search, so repeated calls with an
    /// advancing `from` cursor (merges, subset scans) stay near-linear.
    fn lower_bound_from(&self, from: usize, t: &[Elem]) -> usize {
        let k = self.arity;
        let row = |i: usize| &self.data[i * k..(i + 1) * k];
        if from >= self.rows || row(from) >= t {
            return from;
        }
        // Invariant: row(lo) < t.
        let mut lo = from;
        let mut step = 1usize;
        while lo + step < self.rows && row(lo + step) < t {
            lo += step;
            step <<= 1;
        }
        let mut hi = (lo + step).min(self.rows);
        // row(hi) >= t or hi == rows; binary search in (lo, hi].
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if row(mid) < t {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        hi
    }
}

/// Sort row indices `idx` by the rows they address in the arity-`k` arena
/// `pend`, then drop indices of duplicate rows. Generic over the index type
/// so `seal` can use `u32` scratch in the common case and `usize` when the
/// pending count exceeds `u32::MAX`.
fn sort_dedup_rows<I: Copy>(
    mut idx: Vec<I>,
    to_usize: impl Fn(I) -> usize,
    pend: &[Elem],
    k: usize,
) -> Vec<I> {
    idx.sort_unstable_by(|&i, &j| {
        let (i, j) = (to_usize(i), to_usize(j));
        pend[i * k..(i + 1) * k].cmp(&pend[j * k..(j + 1) * k])
    });
    idx.dedup_by(|a, b| {
        let (a, b) = (to_usize(*a), to_usize(*b));
        pend[a * k..(a + 1) * k] == pend[b * k..(b + 1) * k]
    });
    idx
}

/// Zero-copy iterator over the sorted rows of a [`TupleStore`].
#[derive(Clone)]
pub struct Rows<'a> {
    data: &'a [Elem],
    arity: usize,
    front: usize,
    back: usize,
}

impl<'a> Iterator for Rows<'a> {
    type Item = &'a [Elem];

    #[inline]
    fn next(&mut self) -> Option<&'a [Elem]> {
        if self.front >= self.back {
            return None;
        }
        let i = self.front;
        self.front += 1;
        Some(&self.data[i * self.arity..(i + 1) * self.arity])
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.back - self.front;
        (n, Some(n))
    }
}

impl DoubleEndedIterator for Rows<'_> {
    #[inline]
    fn next_back(&mut self) -> Option<Self::Item> {
        if self.front >= self.back {
            return None;
        }
        self.back -= 1;
        Some(&self.data[self.back * self.arity..(self.back + 1) * self.arity])
    }
}

impl ExactSizeIterator for Rows<'_> {}

impl PartialEq for TupleStore {
    fn eq(&self, other: &Self) -> bool {
        debug_assert!(self.is_sealed() && other.is_sealed());
        self.arity == other.arity && self.rows == other.rows && self.data == other.data
    }
}

impl Eq for TupleStore {}

impl Hash for TupleStore {
    fn hash<H: Hasher>(&self, state: &mut H) {
        debug_assert!(self.is_sealed());
        self.arity.hash(state);
        self.rows.hash(state);
        self.data.hash(state);
    }
}

impl fmt::Debug for TupleStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows_of(s: &TupleStore) -> Vec<Vec<u32>> {
        s.iter().map(|r| r.iter().map(|e| e.0).collect()).collect()
    }

    #[test]
    fn push_seal_sorts_and_dedups() {
        let mut s = TupleStore::new(2);
        for t in [[2u32, 0], [0, 1], [0, 0], [0, 1], [2, 0]] {
            s.push(&[Elem(t[0]), Elem(t[1])]);
        }
        assert!(!s.is_sealed());
        assert!(s.contains(&[Elem(2), Elem(0)])); // pending scan
        s.seal();
        assert_eq!(rows_of(&s), vec![vec![0, 0], vec![0, 1], vec![2, 0]]);
    }

    #[test]
    fn dedup_across_sorted_pending_boundary() {
        let mut s = TupleStore::new(1);
        s.insert(&[Elem(3)]);
        s.insert(&[Elem(7)]);
        s.push(&[Elem(7)]);
        s.push(&[Elem(1)]);
        s.seal();
        assert_eq!(rows_of(&s), vec![vec![1], vec![3], vec![7]]);
    }

    #[test]
    fn merge_and_difference() {
        let mut a = TupleStore::new(1);
        let mut b = TupleStore::new(1);
        for i in [1u32, 3, 5] {
            a.insert(&[Elem(i)]);
        }
        for i in [2u32, 3, 9] {
            b.insert(&[Elem(i)]);
        }
        let d = a.difference(&b);
        assert_eq!(rows_of(&d), vec![vec![1], vec![5]]);
        a.merge(&b);
        assert_eq!(
            rows_of(&a),
            vec![vec![1], vec![2], vec![3], vec![5], vec![9]]
        );
        assert!(d.is_subset(&a));
        assert!(!a.is_subset(&d));
    }

    #[test]
    fn arity_zero_store() {
        let mut s = TupleStore::new(0);
        assert!(!s.contains(&[]));
        s.push(&[]);
        assert!(s.contains(&[]));
        s.push(&[]);
        s.seal();
        assert_eq!(s.len(), 1);
        assert_eq!(s.row(0), &[] as &[Elem]);
        let empty = TupleStore::new(0);
        assert!(empty.is_subset(&s));
        assert!(!s.is_subset(&empty));
        assert_eq!(s.difference(&empty).len(), 1);
        assert_eq!(s.difference(&s).len(), 0);
        let mut t = TupleStore::new(0);
        t.merge(&s);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn insert_remove_round_trip() {
        let mut s = TupleStore::new(2);
        assert!(s.insert(&[Elem(1), Elem(2)]));
        assert!(!s.insert(&[Elem(1), Elem(2)]));
        assert!(s.insert(&[Elem(0), Elem(9)]));
        assert!(s.remove(&[Elem(1), Elem(2)]));
        assert!(!s.remove(&[Elem(1), Elem(2)]));
        assert_eq!(rows_of(&s), vec![vec![0, 9]]);
    }

    #[test]
    fn wide_seal_path_matches_narrow() {
        // Exercise the usize-indexed seal path (taken automatically only
        // when pending_rows > u32::MAX) on small data and check it agrees
        // with the default u32 path.
        let tuples = [[2u32, 0], [0, 1], [0, 0], [0, 1], [2, 0], [1, 9]];
        let mut narrow = TupleStore::new(2);
        let mut wide = TupleStore::new(2);
        for s in [&mut narrow, &mut wide] {
            s.insert(&[Elem(0), Elem(1)]);
            s.insert(&[Elem(5), Elem(5)]);
            for t in tuples {
                s.push(&[Elem(t[0]), Elem(t[1])]);
            }
        }
        narrow.seal_impl(false);
        wide.seal_impl(true);
        assert!(wide.is_sealed());
        assert_eq!(narrow, wide);
        assert_eq!(
            rows_of(&wide),
            vec![vec![0, 0], vec![0, 1], vec![1, 9], vec![2, 0], vec![5, 5]]
        );
    }

    #[test]
    fn intersection_gallops_both_ways() {
        let mut a = TupleStore::new(1);
        let mut b = TupleStore::new(1);
        for i in [1u32, 3, 5, 7] {
            a.insert(&[Elem(i)]);
        }
        for i in [0u32, 3, 4, 7, 9, 11] {
            b.insert(&[Elem(i)]);
        }
        assert_eq!(rows_of(&a.intersection(&b)), vec![vec![3], vec![7]]);
        assert_eq!(a.intersection(&b), b.intersection(&a));
        let empty = TupleStore::new(1);
        assert!(a.intersection(&empty).is_empty());
        assert!(empty.intersection(&a).is_empty());
    }

    #[test]
    fn prefix_range_selects_matching_rows() {
        let mut s = TupleStore::new(2);
        for t in [[0u32, 3], [1, 0], [1, 2], [1, 7], [2, 2]] {
            s.insert(&[Elem(t[0]), Elem(t[1])]);
        }
        assert_eq!(s.prefix_range(&[]), 0..5);
        assert_eq!(s.prefix_range(&[Elem(1)]), 1..4);
        assert_eq!(s.prefix_range(&[Elem(0)]), 0..1);
        assert_eq!(s.prefix_range(&[Elem(2)]), 4..5);
        assert_eq!(s.prefix_range(&[Elem(3)]), 5..5);
        let r = s.prefix_range(&[Elem(1), Elem(2)]);
        assert_eq!(r, 2..3);
        assert_eq!(s.row(2), &[Elem(1), Elem(2)]);
    }

    #[test]
    fn empty_merges() {
        let mut a = TupleStore::new(2);
        let b = TupleStore::new(2);
        a.merge(&b);
        assert!(a.is_empty());
        a.insert(&[Elem(4), Elem(4)]);
        a.merge(&b);
        assert_eq!(a.len(), 1);
        let mut c = TupleStore::new(2);
        c.merge(&a);
        assert_eq!(c.len(), 1);
        assert_eq!(a, c);
    }
}
