//! Column-plane tuple storage: dictionary-encoded SoA layout with chunked
//! galloping kernels.
//!
//! [`TupleStore`] is the single physical representation behind
//! [`Relation`](crate::Relation) and the evaluator's IDB relations. Tuples
//! live in a **structure-of-arrays** layout:
//!
//! * a **per-store dictionary** — the sorted, distinct [`Elem`] values the
//!   store has seen, so dense id `d` decodes as `dict[d]` and, because ids
//!   are ranks, *id order equals element order*;
//! * **column planes** — one `Vec<u32>` of dictionary ids per column, all
//!   of length `rows`, holding the **sorted run**: rows in lexicographic
//!   order, deduplicated, addressed by row index across the planes;
//! * a **pending delta** — raw `Elem` rows appended in arrival order,
//!   possibly duplicated, batching inserts so a bulk load costs one
//!   sort + encode + merge instead of `n` shifting array inserts.
//!
//! [`seal`](TupleStore::seal) folds the pending delta into the sorted run:
//! it extends the dictionary with unseen values (remapping the planes when
//! an insertion lands below the current maximum — appends keep ids stable),
//! encodes the pending rows to ids, sorts them (`u32` values directly at
//! arity 1, packed `u64` pairs at arity 2, an index sort above), and merges
//! with the existing run column by column. Every read (`contains`, `iter`,
//! equality, hashing) is defined over the *sealed* content; `contains`
//! additionally scans the pending region so unsealed stores still answer
//! membership correctly.
//!
//! The galloping kernels (`contains`, [`merge`](TupleStore::merge),
//! [`difference`](TupleStore::difference),
//! [`intersection`](TupleStore::intersection),
//! [`prefix_range`](TupleStore::prefix_range)) run on the **lead plane
//! first**: an exponential gallop plus binary search narrows to a window of
//! at most 64 ids, which a branch-free `(id < target) as usize` counting
//! loop — a shape LLVM autovectorizes — resolves; equal-lead groups then
//! narrow column by column the same way. Cross-store operations never
//! decode: a one-pass **translation table** maps each of the left store's
//! ids to its rank in the right store's dictionary (plus an exact-hit
//! flag), so mixed-dictionary comparisons stay integer compares.
//!
//! Rows are addressed by index and handed out as [`RowRef`] — a `Copy`
//! `(store, row)` handle that decodes on access (see [`crate::row`]).
//! Arity-0 relations (nullary predicates) are supported: the planes stay
//! empty and only the explicit row counters distinguish `{}` from `{()}`.
//!
//! After [`remove`](TupleStore::remove), the dictionary may retain entries
//! no row references (there is no garbage collection); equality and
//! hashing therefore compare *decoded* content, with a planes-only fast
//! path when two stores share a dictionary.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::elem::Elem;
use crate::row::{Row, RowRef};

/// Window size below which galloping searches switch from binary halving
/// to a branch-free counting scan over the id plane (autovectorizable).
const CHUNK: usize = 64;

/// First index in sorted `w` with `w[i] >= t`: binary halving to a
/// `CHUNK`-wide window, then a branch-free count of smaller ids.
#[inline]
fn lb<T: Copy + Ord>(w: &[T], t: T) -> usize {
    let (mut lo, mut hi) = (0usize, w.len());
    while hi - lo > CHUNK {
        let mid = lo + (hi - lo) / 2;
        if w[mid] < t {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo + w[lo..hi].iter().map(|&v| (v < t) as usize).sum::<usize>()
}

/// First index in sorted `w` with `w[i] > t`.
#[inline]
fn ub<T: Copy + Ord>(w: &[T], t: T) -> usize {
    let (mut lo, mut hi) = (0usize, w.len());
    while hi - lo > CHUNK {
        let mid = lo + (hi - lo) / 2;
        if w[mid] <= t {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo + w[lo..hi].iter().map(|&v| (v <= t) as usize).sum::<usize>()
}

/// Like [`lb`], but with an exponential gallop from the front so repeated
/// calls with an advancing cursor (merges, subset scans) stay near-linear.
#[inline]
fn gallop_lb<T: Copy + Ord>(w: &[T], t: T) -> usize {
    if w.is_empty() || w[0] >= t {
        return 0;
    }
    let mut lo = 0usize; // invariant: w[lo] < t
    let mut step = 1usize;
    while lo + step < w.len() && w[lo + step] < t {
        lo += step;
        step <<= 1;
    }
    let hi = (lo + step).min(w.len());
    lo + 1 + lb(&w[lo + 1..hi], t)
}

/// Apply an optional monotone id remap (`None` is the identity).
#[inline]
fn remapped(map: Option<&[u32]>, v: u32) -> u32 {
    match map {
        Some(m) => m[v as usize],
        None => v,
    }
}

/// [`lb`] over ids viewed through an optional monotone remap.
#[inline]
fn lb_m(w: &[u32], t: u32, map: Option<&[u32]>) -> usize {
    let Some(m) = map else { return lb(w, t) };
    let (mut lo, mut hi) = (0usize, w.len());
    while hi - lo > CHUNK {
        let mid = lo + (hi - lo) / 2;
        if m[w[mid] as usize] < t {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo + w[lo..hi]
        .iter()
        .map(|&v| (m[v as usize] < t) as usize)
        .sum::<usize>()
}

/// [`ub`] over ids viewed through an optional monotone remap.
#[inline]
fn ub_m(w: &[u32], t: u32, map: Option<&[u32]>) -> usize {
    let Some(m) = map else { return ub(w, t) };
    let (mut lo, mut hi) = (0usize, w.len());
    while hi - lo > CHUNK {
        let mid = lo + (hi - lo) / 2;
        if m[w[mid] as usize] <= t {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo + w[lo..hi]
        .iter()
        .map(|&v| (m[v as usize] <= t) as usize)
        .sum::<usize>()
}

/// [`gallop_lb`] over ids viewed through an optional monotone remap.
#[inline]
fn gallop_lb_m(w: &[u32], t: u32, map: Option<&[u32]>) -> usize {
    let Some(m) = map else { return gallop_lb(w, t) };
    if w.is_empty() || m[w[0] as usize] >= t {
        return 0;
    }
    let mut lo = 0usize;
    let mut step = 1usize;
    while lo + step < w.len() && m[w[lo + step] as usize] < t {
        lo += step;
        step <<= 1;
    }
    let hi = (lo + step).min(w.len());
    lo + 1 + lb_m(&w[lo + 1..hi], t, map)
}

/// Set union of two sorted, distinct slices, galloping so sorted runs copy
/// with `extend_from_slice`.
fn union_sorted<T: Copy + Ord>(a: &[T], b: &[T]) -> Vec<T> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let hi = i + gallop_lb(&a[i..], b[j]);
        out.extend_from_slice(&a[i..hi]);
        i = hi;
        if i >= a.len() {
            break;
        }
        let oj = j + gallop_lb(&b[j..], a[i]);
        out.extend_from_slice(&b[j..oj]);
        j = oj;
        if j < b.len() && b[j] == a[i] {
            out.push(a[i]);
            i += 1;
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Merge two sorted, distinct dictionaries. Returns the union plus the
/// id remap for each input (`None` when that remap is the identity).
fn union_dicts(a: &[Elem], b: &[Elem]) -> (Vec<Elem>, Option<Vec<u32>>, Option<Vec<u32>>) {
    if a == b {
        return (a.to_vec(), None, None);
    }
    let mut u: Vec<Elem> = Vec::with_capacity(a.len() + b.len());
    let mut ra: Vec<u32> = Vec::with_capacity(a.len());
    let mut rb: Vec<u32> = Vec::with_capacity(b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() || j < b.len() {
        let v = if j >= b.len() || (i < a.len() && a[i] <= b[j]) {
            ra.push(u.len() as u32);
            if j < b.len() && b[j] == a[i] {
                rb.push(u.len() as u32);
                j += 1;
            }
            let v = a[i];
            i += 1;
            v
        } else {
            rb.push(u.len() as u32);
            let v = b[j];
            j += 1;
            v
        };
        u.push(v);
    }
    let ia = ra.iter().enumerate().all(|(x, &y)| x as u32 == y);
    let ib = rb.iter().enumerate().all(|(x, &y)| x as u32 == y);
    (
        u,
        if ia { None } else { Some(ra) },
        if ib { None } else { Some(rb) },
    )
}

/// For each id of the sorted dictionary `from`, its rank in `to` and
/// whether the value is present there (`None` when the dictionaries are
/// identical, i.e. the translation is the exact identity). Because both
/// dictionaries are sorted, ranks are monotone, so translated ids compare
/// exactly like the underlying element values.
fn translation(from: &[Elem], to: &[Elem]) -> Option<Vec<(u32, bool)>> {
    if from == to {
        return None;
    }
    let mut tr = Vec::with_capacity(from.len());
    let mut j = 0usize;
    for &v in from {
        j += gallop_lb(&to[j..], v);
        tr.push((j as u32, j < to.len() && to[j] == v));
    }
    Some(tr)
}

/// Sort row indices `idx` by the rows they address in the arity-`k` id
/// arena `enc`, then drop indices of duplicate rows. Generic over the
/// index type so `seal` can use `u32` scratch in the common case and
/// `usize` when the pending count exceeds `u32::MAX`.
fn sort_dedup_rows<I: Copy>(
    mut idx: Vec<I>,
    to_usize: impl Fn(I) -> usize,
    enc: &[u32],
    k: usize,
) -> Vec<I> {
    idx.sort_unstable_by(|&i, &j| {
        let (i, j) = (to_usize(i), to_usize(j));
        enc[i * k..(i + 1) * k].cmp(&enc[j * k..(j + 1) * k])
    });
    idx.dedup_by(|a, b| {
        let (a, b) = (to_usize(*a), to_usize(*b));
        enc[a * k..(a + 1) * k] == enc[b * k..(b + 1) * k]
    });
    idx
}

/// Element → id encoder built once per `seal`: a direct-indexed table when
/// the value range is dense relative to the dictionary, binary search on
/// the sorted dictionary otherwise (sparse high values).
enum Enc {
    Table(Vec<u32>),
    Search,
}

/// A set of same-arity tuples in dictionary-encoded column-plane layout.
///
/// See the module docs for the layout. Invariants:
///
/// * `dict` is sorted and distinct, so the dense id of a value is its rank
///   and raw id comparisons within one store are element-order compares;
/// * every plane has length `rows` and every stored id is `< dict.len()`
///   (the dictionary may hold extra, unreferenced values after `remove`);
/// * rows `0..rows` are lexicographically sorted and distinct;
/// * `pending` holds `pending_rows * arity` raw elements in insertion
///   order, possibly duplicated, until [`seal`](TupleStore::seal).
///
/// Dictionary ids cannot silently wrap: an id is a rank among distinct
/// `u32` element values, so it always fits the `u32` plane cell. Row
/// *counts* are `usize` throughout; only external consumers that compress
/// row ids to `u32` (the evaluator's hash indexes) need a capacity check.
///
/// Equality and hashing require a sealed store (checked with
/// `debug_assert`) and compare decoded content;
/// [`Relation`](crate::Relation) maintains "sealed after every `&mut`
/// method returns" so its comparisons are always canonical.
#[derive(Clone)]
pub struct TupleStore {
    arity: usize,
    /// Number of rows in the sorted run.
    rows: usize,
    /// Sorted distinct element values; dense id = rank.
    dict: Vec<Elem>,
    /// One id plane per column, each of length `rows`.
    planes: Vec<Vec<u32>>,
    /// Number of rows in the pending delta.
    pending_rows: usize,
    /// Pending arena: `pending_rows * arity` raw elements, insertion order.
    pending: Vec<Elem>,
}

impl TupleStore {
    /// An empty store of the given arity.
    pub fn new(arity: usize) -> Self {
        TupleStore {
            arity,
            rows: 0,
            dict: Vec::new(),
            planes: vec![Vec::new(); arity],
            pending_rows: 0,
            pending: Vec::new(),
        }
    }

    /// An empty store with pending-delta capacity reserved for `rows`
    /// buffered rows (the planes size themselves exactly at seal).
    pub fn with_capacity(arity: usize, rows: usize) -> Self {
        TupleStore {
            arity,
            rows: 0,
            dict: Vec::new(),
            planes: vec![Vec::new(); arity],
            pending_rows: 0,
            pending: Vec::with_capacity(rows * arity),
        }
    }

    /// The arity (number of column planes) of the store.
    #[inline]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of rows in the sorted run. Call [`seal`](TupleStore::seal)
    /// first for an exact count when pending rows exist.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True when both the sorted run and the pending delta are empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0 && self.pending_rows == 0
    }

    /// Number of buffered (not yet sealed) rows, duplicates included.
    #[inline]
    pub fn pending_len(&self) -> usize {
        self.pending_rows
    }

    /// True when there is no pending delta.
    #[inline]
    pub fn is_sealed(&self) -> bool {
        self.pending_rows == 0
    }

    /// Number of distinct values the dictionary currently holds (including
    /// entries orphaned by `remove`). Exposed for memory observability.
    #[inline]
    pub fn dict_len(&self) -> usize {
        self.dict.len()
    }

    /// The `i`-th row of the sorted run, as a zero-copy decoding handle.
    #[inline]
    pub fn row(&self, i: usize) -> RowRef<'_> {
        debug_assert!(i < self.rows);
        RowRef {
            store: self,
            row: i,
        }
    }

    /// Decode the cell at column `c`, row `i` of the sorted run.
    #[inline]
    pub(crate) fn cell(&self, c: usize, i: usize) -> Elem {
        self.dict[self.planes[c][i] as usize]
    }

    /// Borrow the dictionary slot backing column `c`, row `i`.
    #[inline]
    pub(crate) fn cell_ref(&self, c: usize, i: usize) -> &Elem {
        &self.dict[self.planes[c][i] as usize]
    }

    /// Iterate the sorted run in lexicographic order (zero-copy handles).
    pub fn iter(&self) -> Rows<'_> {
        Rows {
            store: self,
            front: 0,
            back: self.rows,
        }
    }

    /// Append a row to the pending delta (no ordering or dedup work).
    #[inline]
    pub fn push<R: Row>(&mut self, t: R) {
        debug_assert_eq!(t.width(), self.arity);
        t.append_to(&mut self.pending);
        self.pending_rows += 1;
    }

    /// Append one pending row by writing its elements straight into the
    /// pending arena — the zero-copy emit path for join outputs. `fill`
    /// must append exactly `arity` elements.
    #[inline]
    pub fn push_with(&mut self, fill: impl FnOnce(&mut Vec<Elem>)) {
        #[cfg(debug_assertions)]
        let before = self.pending.len();
        fill(&mut self.pending);
        #[cfg(debug_assertions)]
        debug_assert_eq!(self.pending.len() - before, self.arity);
        self.pending_rows += 1;
    }

    /// Fold the pending delta into the sorted run: extend the dictionary,
    /// encode, sort and dedup the pending rows, and merge with the
    /// existing run column by column. Idempotent; a no-op when sealed.
    ///
    /// Arity ≤ 2 sorts id values directly (packed `u64` pairs at arity 2);
    /// wider rows sort through a `Vec<u32>` of row indices to halve the
    /// scratch footprint of the common case — a pending count that does
    /// not fit in `u32` (≥ 2³² buffered rows) automatically takes an
    /// equivalent `usize`-indexed path instead of silently truncating.
    pub fn seal(&mut self) {
        self.seal_impl(self.pending_rows > u32::MAX as usize);
    }

    /// The seal body, with the index-width decision made explicit so the
    /// wide path is unit-testable on small data.
    fn seal_impl(&mut self, wide: bool) {
        if self.pending_rows == 0 {
            return;
        }
        let k = self.arity;
        if k == 0 {
            // The only possible row is `()`; sealing collapses to "present".
            self.rows = 1;
            self.pending_rows = 0;
            self.pending.clear();
            return;
        }
        let pend = std::mem::take(&mut self.pending);
        let prows = self.pending_rows;
        self.pending_rows = 0;
        debug_assert_eq!(pend.len(), prows * k);
        self.extend_dict(&pend);
        let enc = self.encoder();
        match k {
            1 => self.seal_unary(&pend, &enc),
            2 => self.seal_binary(&pend, prows, &enc),
            _ => self.seal_wide_arity(&pend, prows, &enc, wide),
        }
    }

    /// Grow the dictionary with the distinct pending values it has not
    /// seen, remapping the planes when insertions land below the current
    /// maximum (pure appends keep existing ids stable).
    fn extend_dict(&mut self, pend: &[Elem]) {
        let maxv = pend.iter().map(|e| e.index()).max().unwrap_or(0);
        let words = maxv / 64 + 1;
        let new_vals: Vec<Elem> = if words <= pend.len() + 1024 {
            // Dense values: mark pending elements in a bitmap, clear the
            // ones the dictionary already knows, scan out the rest sorted.
            let mut bits = vec![0u64; words];
            for e in pend {
                bits[e.index() / 64] |= 1 << (e.index() % 64);
            }
            for d in &self.dict {
                if d.index() <= maxv {
                    bits[d.index() / 64] &= !(1 << (d.index() % 64));
                }
            }
            let mut out = Vec::new();
            for (w, &word) in bits.iter().enumerate() {
                let mut word = word;
                while word != 0 {
                    let b = word.trailing_zeros() as usize;
                    out.push(Elem((w * 64 + b) as u32));
                    word &= word - 1;
                }
            }
            out
        } else {
            // Sparse values: sort-dedup, then subtract the dictionary.
            let mut vals: Vec<u32> = pend.iter().map(|e| e.0).collect();
            vals.sort_unstable();
            vals.dedup();
            let mut out = Vec::new();
            let mut j = 0usize;
            for v in vals {
                j += gallop_lb(&self.dict[j..], Elem(v));
                if j >= self.dict.len() || self.dict[j] != Elem(v) {
                    out.push(Elem(v));
                }
            }
            out
        };
        self.absorb_new_vals(new_vals);
    }

    /// Merge sorted, distinct, previously-unseen values into the
    /// dictionary, rewriting the planes when ids shift.
    fn absorb_new_vals(&mut self, mut new_vals: Vec<Elem>) {
        if new_vals.is_empty() {
            return;
        }
        if self.dict.is_empty() {
            self.dict = new_vals;
            return;
        }
        if new_vals[0] > *self.dict.last().unwrap() {
            self.dict.append(&mut new_vals);
            return;
        }
        let (u, rs, _) = union_dicts(&self.dict, &new_vals);
        if let Some(rs) = rs {
            for p in &mut self.planes {
                for v in p.iter_mut() {
                    *v = rs[*v as usize];
                }
            }
        }
        self.dict = u;
    }

    /// Build the element → id encoder for the current dictionary.
    fn encoder(&self) -> Enc {
        match self.dict.last() {
            None => Enc::Search,
            Some(max) => {
                let slots = max.index() + 1;
                if slots <= 8 * self.dict.len() + 8192 {
                    let mut t = vec![0u32; slots];
                    for (i, d) in self.dict.iter().enumerate() {
                        t[d.index()] = i as u32;
                    }
                    Enc::Table(t)
                } else {
                    Enc::Search
                }
            }
        }
    }

    /// Encode one element through `enc`; the value must be in the
    /// dictionary (guaranteed after [`extend_dict`](Self::extend_dict)).
    #[inline]
    fn encode(&self, enc: &Enc, e: Elem) -> u32 {
        match enc {
            Enc::Table(t) => t[e.index()],
            Enc::Search => {
                self.dict
                    .binary_search(&e)
                    .expect("pending element missing from dictionary") as u32
            }
        }
    }

    fn seal_unary(&mut self, pend: &[Elem], enc: &Enc) {
        let mut ids: Vec<u32> = pend.iter().map(|&e| self.encode(enc, e)).collect();
        ids.sort_unstable();
        ids.dedup();
        if self.rows == 0 {
            self.rows = ids.len();
            self.planes[0] = ids;
            return;
        }
        if *self.planes[0].last().unwrap() < ids[0] {
            self.planes[0].extend_from_slice(&ids);
            self.rows = self.planes[0].len();
            return;
        }
        let u = union_sorted(&self.planes[0], &ids);
        self.rows = u.len();
        self.planes[0] = u;
    }

    fn seal_binary(&mut self, pend: &[Elem], prows: usize, enc: &Enc) {
        let mut packed: Vec<u64> = (0..prows)
            .map(|r| {
                let a = self.encode(enc, pend[2 * r]) as u64;
                let b = self.encode(enc, pend[2 * r + 1]) as u64;
                (a << 32) | b
            })
            .collect();
        packed.sort_unstable();
        packed.dedup();
        let merged: Vec<u64>;
        let rows_packed: &[u64] = if self.rows == 0 {
            &packed
        } else {
            let existing: Vec<u64> = (0..self.rows)
                .map(|i| ((self.planes[0][i] as u64) << 32) | self.planes[1][i] as u64)
                .collect();
            merged = union_sorted(&existing, &packed);
            &merged
        };
        self.rows = rows_packed.len();
        let mut p0 = Vec::with_capacity(rows_packed.len());
        let mut p1 = Vec::with_capacity(rows_packed.len());
        for &p in rows_packed {
            p0.push((p >> 32) as u32);
            p1.push(p as u32);
        }
        self.planes[0] = p0;
        self.planes[1] = p1;
    }

    fn seal_wide_arity(&mut self, pend: &[Elem], prows: usize, enc: &Enc, wide: bool) {
        let k = self.arity;
        let encd: Vec<u32> = pend.iter().map(|&e| self.encode(enc, e)).collect();
        let idx: Vec<usize> = if wide {
            sort_dedup_rows((0..prows).collect(), |i| i, &encd, k)
        } else {
            debug_assert!(prows <= u32::MAX as usize);
            sort_dedup_rows(
                (0..prows as u32).collect::<Vec<u32>>(),
                |i| i as usize,
                &encd,
                k,
            )
            .into_iter()
            .map(|i| i as usize)
            .collect()
        };
        let mut out: Vec<Vec<u32>> = (0..k)
            .map(|_| Vec::with_capacity(self.rows + idx.len()))
            .collect();
        let mut di = 0usize;
        let mut out_rows = 0usize;
        for &pi in &idx {
            let prow = &encd[pi * k..(pi + 1) * k];
            let hi = self.lower_bound_rows(di, prow, None);
            for (o, p) in out.iter_mut().zip(&self.planes) {
                o.extend_from_slice(&p[di..hi]);
            }
            out_rows += hi - di;
            di = hi;
            if di < self.rows && (0..k).all(|c| self.planes[c][di] == prow[c]) {
                di += 1; // duplicate across the boundary: keep one copy
            }
            for c in 0..k {
                out[c].push(prow[c]);
            }
            out_rows += 1;
        }
        for (o, p) in out.iter_mut().zip(&self.planes) {
            o.extend_from_slice(&p[di..]);
        }
        out_rows += self.rows - di;
        self.planes = out;
        self.rows = out_rows;
    }

    /// First sorted-run row `>= target` (raw ids, or ids viewed through
    /// `map`), searching only `from..rows`. Gallops the lead plane, then
    /// narrows the equal-lead group column by column.
    fn lower_bound_rows(&self, from: usize, target: &[u32], map: Option<&[u32]>) -> usize {
        let k = self.arity;
        let (mut lo, mut hi) = (from, self.rows);
        for (c, &t) in target.iter().enumerate().take(k) {
            let w = &self.planes[c][lo..hi];
            let s = if c == 0 {
                gallop_lb_m(w, t, map)
            } else {
                lb_m(w, t, map)
            };
            if s >= w.len() || remapped(map, w[s]) != t {
                return lo + s;
            }
            if c + 1 == k {
                return lo + s;
            }
            hi = lo + s + ub_m(&w[s..], t, map);
            lo += s;
        }
        lo
    }

    /// Seek the row equal to the per-column targets, starting at `from`.
    /// `targets(c)` yields the target id for column `c` plus an exact-hit
    /// flag (false when the sought value is not in this store's
    /// dictionary). Returns the lexicographic lower bound and whether the
    /// row is present.
    fn locate(&self, from: usize, targets: impl Fn(usize) -> (u32, bool)) -> (usize, bool) {
        let k = self.arity;
        debug_assert!(k > 0);
        let (mut lo, mut hi) = (from, self.rows);
        for c in 0..k {
            let (t, exact) = targets(c);
            let w = &self.planes[c][lo..hi];
            let s = if c == 0 { gallop_lb(w, t) } else { lb(w, t) };
            if !exact || s >= w.len() || w[s] != t {
                return (lo + s, false);
            }
            if c + 1 == k {
                return (lo + s, true);
            }
            hi = lo + s + ub(&w[s..], t);
            lo += s;
        }
        (lo, true)
    }

    /// Membership test: chunked-galloping search of the sorted run plus a
    /// linear scan of the pending delta.
    pub fn contains<R: Row>(&self, t: R) -> bool {
        debug_assert_eq!(t.width(), self.arity);
        if self.arity == 0 {
            return self.rows > 0 || self.pending_rows > 0;
        }
        if self.rows > 0 {
            let (_, found) = self.locate(0, |c| match self.dict.binary_search(&t.at(c)) {
                Ok(d) => (d as u32, true),
                Err(d) => (d as u32, false),
            });
            if found {
                return true;
            }
        }
        if self.pending_rows > 0 {
            let k = self.arity;
            return self
                .pending
                .chunks_exact(k)
                .any(|row| (0..k).all(|c| row[c] == t.at(c)));
        }
        false
    }

    /// Insert a single row into the sorted run (sealing first if needed).
    /// Returns true when the row was not already present. Prefer batching
    /// through [`push`](TupleStore::push)/[`seal`](TupleStore::seal) — a
    /// sorted-position insert shifts every plane's tail.
    pub fn insert<R: Row>(&mut self, t: R) -> bool {
        debug_assert_eq!(t.width(), self.arity);
        self.seal();
        let k = self.arity;
        if k == 0 {
            if self.rows == 0 {
                self.rows = 1;
                return true;
            }
            return false;
        }
        let mut missing: Vec<Elem> = Vec::new();
        for c in 0..k {
            if self.dict.binary_search(&t.at(c)).is_err() {
                missing.push(t.at(c));
            }
        }
        if !missing.is_empty() {
            missing.sort_unstable();
            missing.dedup();
            self.absorb_new_vals(missing);
        }
        let ids: Vec<u32> = (0..k)
            .map(|c| {
                self.dict
                    .binary_search(&t.at(c))
                    .expect("value just added to dictionary") as u32
            })
            .collect();
        let (pos, found) = self.locate(0, |c| (ids[c], true));
        if found {
            return false;
        }
        for (p, &id) in self.planes.iter_mut().zip(&ids) {
            p.insert(pos, id);
        }
        self.rows += 1;
        true
    }

    /// Remove a row (sealing first if needed). Returns true if present.
    /// The removed row's values may remain in the dictionary unreferenced.
    pub fn remove<R: Row>(&mut self, t: R) -> bool {
        debug_assert_eq!(t.width(), self.arity);
        self.seal();
        let k = self.arity;
        if k == 0 {
            if self.rows > 0 {
                self.rows = 0;
                return true;
            }
            return false;
        }
        let mut ids = vec![0u32; k];
        for (c, id) in ids.iter_mut().enumerate() {
            match self.dict.binary_search(&t.at(c)) {
                Ok(d) => *id = d as u32,
                Err(_) => return false,
            }
        }
        let (pos, found) = self.locate(0, |c| (ids[c], true));
        if !found {
            return false;
        }
        for c in 0..k {
            self.planes[c].remove(pos);
        }
        self.rows -= 1;
        true
    }

    /// Set-union `other` (sealed) into `self` (sealed): dictionary union
    /// plus one galloping merge that copies whole runs per column. Remaps
    /// are identities (pure slice copies) whenever one dictionary extends
    /// the other at the tail — the common shape for fixpoint rounds.
    pub fn merge(&mut self, other: &TupleStore) {
        debug_assert_eq!(self.arity, other.arity);
        debug_assert!(self.is_sealed() && other.is_sealed());
        let k = self.arity;
        if other.rows == 0 {
            return;
        }
        if k == 0 {
            self.rows = self.rows.max(other.rows);
            return;
        }
        if self.rows == 0 {
            self.dict = other.dict.clone();
            self.planes = other.planes.clone();
            self.rows = other.rows;
            return;
        }
        let (udict, rs, ro) = union_dicts(&self.dict, &other.dict);
        if let Some(rs) = &rs {
            for p in &mut self.planes {
                for v in p.iter_mut() {
                    *v = rs[*v as usize];
                }
            }
        }
        self.dict = udict;
        let ro = ro.as_deref();
        // Disjoint append — the common shape for monotone loads.
        let disjoint = (0..k)
            .find_map(|c| {
                let a = self.planes[c][self.rows - 1];
                let b = remapped(ro, other.planes[c][0]);
                match a.cmp(&b) {
                    Ordering::Less => Some(true),
                    Ordering::Greater => Some(false),
                    Ordering::Equal => None,
                }
            })
            .unwrap_or(false);
        if disjoint {
            for c in 0..k {
                match ro {
                    Some(m) => {
                        self.planes[c].extend(other.planes[c].iter().map(|&v| m[v as usize]))
                    }
                    None => self.planes[c].extend_from_slice(&other.planes[c]),
                }
            }
            self.rows += other.rows;
            return;
        }
        let mut out: Vec<Vec<u32>> = (0..k)
            .map(|_| Vec::with_capacity(self.rows + other.rows))
            .collect();
        let mut buf = vec![0u32; k];
        let (mut i, mut j) = (0usize, 0usize);
        let mut out_rows = 0usize;
        while i < self.rows && j < other.rows {
            for (c, b) in buf.iter_mut().enumerate() {
                *b = remapped(ro, other.planes[c][j]);
            }
            let hi = self.lower_bound_rows(i, &buf, None);
            for (o, p) in out.iter_mut().zip(&self.planes) {
                o.extend_from_slice(&p[i..hi]);
            }
            out_rows += hi - i;
            i = hi;
            if i >= self.rows {
                break;
            }
            for (c, b) in buf.iter_mut().enumerate() {
                *b = self.planes[c][i];
            }
            let oj = other.lower_bound_rows(j, &buf, ro);
            for (o, p) in out.iter_mut().zip(&other.planes) {
                match ro {
                    Some(m) => o.extend(p[j..oj].iter().map(|&v| m[v as usize])),
                    None => o.extend_from_slice(&p[j..oj]),
                }
            }
            out_rows += oj - j;
            j = oj;
            if j < other.rows
                && (0..k).all(|c| remapped(ro, other.planes[c][j]) == self.planes[c][i])
            {
                for (o, p) in out.iter_mut().zip(&self.planes) {
                    o.push(p[i]);
                }
                out_rows += 1;
                i += 1;
                j += 1;
            }
        }
        for (o, p) in out.iter_mut().zip(&self.planes) {
            o.extend_from_slice(&p[i..]);
        }
        out_rows += self.rows - i;
        for (o, p) in out.iter_mut().zip(&other.planes) {
            match ro {
                Some(m) => o.extend(p[j..].iter().map(|&v| m[v as usize])),
                None => o.extend_from_slice(&p[j..]),
            }
        }
        out_rows += other.rows - j;
        self.planes = out;
        self.rows = out_rows;
    }

    /// Rows of `self` (sealed) absent from `other` (sealed), as a new
    /// sealed store sharing `self`'s dictionary. Gallops through `other`
    /// via an id translation table so a small `self` against a large
    /// `other` costs `O(|self| · log |other|)` with no decoding.
    pub fn difference(&self, other: &TupleStore) -> TupleStore {
        debug_assert_eq!(self.arity, other.arity);
        debug_assert!(self.is_sealed() && other.is_sealed());
        let k = self.arity;
        let mut out = TupleStore::new(k);
        if k == 0 {
            out.rows = usize::from(self.rows > 0 && other.rows == 0);
            return out;
        }
        if self.rows == 0 {
            return out;
        }
        if other.rows == 0 {
            return self.clone();
        }
        let tr = translation(&self.dict, &other.dict);
        out.dict = self.dict.clone();
        let mut j = 0usize;
        for i in 0..self.rows {
            let (nj, found) = other.locate(j, |c| {
                let id = self.planes[c][i];
                match &tr {
                    Some(t) => t[id as usize],
                    None => (id, true),
                }
            });
            j = nj;
            if found {
                j += 1;
                continue;
            }
            for c in 0..k {
                out.planes[c].push(self.planes[c][i]);
            }
            out.rows += 1;
        }
        out
    }

    /// Rows present in both `self` and `other` (both sealed), as a new
    /// sealed store sharing `self`'s dictionary. Gallops the larger
    /// operand from the smaller one so the cost is `O(min · log max)`.
    pub fn intersection(&self, other: &TupleStore) -> TupleStore {
        debug_assert_eq!(self.arity, other.arity);
        debug_assert!(self.is_sealed() && other.is_sealed());
        let k = self.arity;
        let mut out = TupleStore::new(k);
        if k == 0 {
            out.rows = self.rows.min(other.rows);
            return out;
        }
        if self.rows == 0 || other.rows == 0 {
            return out;
        }
        out.dict = self.dict.clone();
        if self.rows <= other.rows {
            let tr = translation(&self.dict, &other.dict);
            let mut j = 0usize;
            for i in 0..self.rows {
                let (nj, found) = other.locate(j, |c| {
                    let id = self.planes[c][i];
                    match &tr {
                        Some(t) => t[id as usize],
                        None => (id, true),
                    }
                });
                j = nj;
                if found {
                    for c in 0..k {
                        out.planes[c].push(self.planes[c][i]);
                    }
                    out.rows += 1;
                    j += 1;
                }
            }
        } else {
            let tr = translation(&other.dict, &self.dict);
            let mut i = 0usize;
            for j in 0..other.rows {
                let (ni, found) = self.locate(i, |c| {
                    let id = other.planes[c][j];
                    match &tr {
                        Some(t) => t[id as usize],
                        None => (id, true),
                    }
                });
                i = ni;
                if found {
                    for c in 0..k {
                        out.planes[c].push(self.planes[c][i]);
                    }
                    out.rows += 1;
                    i += 1;
                }
            }
        }
        out
    }

    /// The contiguous range of sorted-run row indices whose first
    /// `prefix.len()` elements equal `prefix` (sealed stores only). One
    /// chunked binary search per prefix column, narrowing the equal group;
    /// an empty prefix selects every row. This is the probe primitive
    /// behind the evaluator's natural and permuted secondary indexes: an
    /// EDB relation whose join key is a column prefix needs *no* index
    /// build at all — `prefix_range(key)` is the matching row set.
    pub fn prefix_range(&self, prefix: &[Elem]) -> std::ops::Range<usize> {
        debug_assert!(self.is_sealed());
        debug_assert!(prefix.len() <= self.arity);
        let (mut lo, mut hi) = (0usize, self.rows);
        for (c, v) in prefix.iter().enumerate() {
            let w = &self.planes[c][lo..hi];
            match self.dict.binary_search(v) {
                Ok(d) => {
                    let id = d as u32;
                    let s = lb(w, id);
                    if s >= w.len() || w[s] != id {
                        return lo + s..lo + s;
                    }
                    hi = lo + s + ub(&w[s..], id);
                    lo += s;
                }
                Err(d) => {
                    let s = lb(w, d as u32);
                    return lo + s..lo + s;
                }
            }
        }
        lo..hi
    }

    /// True when every sealed row of `self` is a row of `other` (both
    /// sealed). Galloping merge scan over translated ids.
    pub fn is_subset(&self, other: &TupleStore) -> bool {
        debug_assert_eq!(self.arity, other.arity);
        debug_assert!(self.is_sealed() && other.is_sealed());
        if self.arity == 0 {
            return self.rows <= other.rows;
        }
        if self.rows > other.rows {
            return false;
        }
        if self.rows == 0 {
            return true;
        }
        let tr = translation(&self.dict, &other.dict);
        let mut j = 0usize;
        for i in 0..self.rows {
            let (nj, found) = other.locate(j, |c| {
                let id = self.planes[c][i];
                match &tr {
                    Some(t) => t[id as usize],
                    None => (id, true),
                }
            });
            if !found {
                return false;
            }
            j = nj + 1;
        }
        true
    }

    /// Drop all rows (sealed and pending) and the dictionary, keeping the
    /// allocations.
    pub fn clear(&mut self) {
        self.rows = 0;
        for p in &mut self.planes {
            p.clear();
        }
        self.dict.clear();
        self.pending_rows = 0;
        self.pending.clear();
    }

    /// Bytes of heap held (capacity, not just length) across the id
    /// planes, the dictionary, and the pending arena — the store's
    /// contribution to peak memory. `#![forbid(unsafe_code)]` rules out a
    /// counting allocator, so footprint reporting is analytic.
    pub fn heap_bytes(&self) -> usize {
        let planes: usize = self.planes.iter().map(Vec::capacity).sum();
        planes * std::mem::size_of::<u32>()
            + self.dict.capacity() * std::mem::size_of::<Elem>()
            + self.pending.capacity() * std::mem::size_of::<Elem>()
    }
}

/// Zero-copy iterator over the sorted rows of a [`TupleStore`].
#[derive(Clone)]
pub struct Rows<'a> {
    store: &'a TupleStore,
    front: usize,
    back: usize,
}

impl<'a> Iterator for Rows<'a> {
    type Item = RowRef<'a>;

    #[inline]
    fn next(&mut self) -> Option<RowRef<'a>> {
        if self.front >= self.back {
            return None;
        }
        let i = self.front;
        self.front += 1;
        Some(RowRef {
            store: self.store,
            row: i,
        })
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.back - self.front;
        (n, Some(n))
    }
}

impl DoubleEndedIterator for Rows<'_> {
    #[inline]
    fn next_back(&mut self) -> Option<Self::Item> {
        if self.front >= self.back {
            return None;
        }
        self.back -= 1;
        Some(RowRef {
            store: self.store,
            row: self.back,
        })
    }
}

impl ExactSizeIterator for Rows<'_> {}

impl PartialEq for TupleStore {
    fn eq(&self, other: &Self) -> bool {
        debug_assert!(self.is_sealed() && other.is_sealed());
        if self.arity != other.arity || self.rows != other.rows {
            return false;
        }
        if self.dict == other.dict {
            return self.planes == other.planes;
        }
        // Dictionaries may differ (stale entries after `remove`): compare
        // decoded content column by column.
        (0..self.arity).all(|c| {
            (0..self.rows).all(|i| {
                self.dict[self.planes[c][i] as usize] == other.dict[other.planes[c][i] as usize]
            })
        })
    }
}

impl Eq for TupleStore {}

impl Hash for TupleStore {
    fn hash<H: Hasher>(&self, state: &mut H) {
        debug_assert!(self.is_sealed());
        self.arity.hash(state);
        self.rows.hash(state);
        // Decode so two stores with equal content but different
        // dictionaries (stale entries) hash alike, consistent with `Eq`.
        for i in 0..self.rows {
            for c in 0..self.arity {
                self.dict[self.planes[c][i] as usize].hash(state);
            }
        }
    }
}

impl fmt::Debug for TupleStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows_of(s: &TupleStore) -> Vec<Vec<u32>> {
        s.iter().map(|r| r.iter().map(|e| e.0).collect()).collect()
    }

    #[test]
    fn push_seal_sorts_and_dedups() {
        let mut s = TupleStore::new(2);
        for t in [[2u32, 0], [0, 1], [0, 0], [0, 1], [2, 0]] {
            s.push(&[Elem(t[0]), Elem(t[1])]);
        }
        assert!(!s.is_sealed());
        assert!(s.contains(&[Elem(2), Elem(0)])); // pending scan
        s.seal();
        assert_eq!(rows_of(&s), vec![vec![0, 0], vec![0, 1], vec![2, 0]]);
    }

    #[test]
    fn dedup_across_sorted_pending_boundary() {
        let mut s = TupleStore::new(1);
        s.insert(&[Elem(3)]);
        s.insert(&[Elem(7)]);
        s.push(&[Elem(7)]);
        s.push(&[Elem(1)]);
        s.seal();
        assert_eq!(rows_of(&s), vec![vec![1], vec![3], vec![7]]);
    }

    #[test]
    fn merge_and_difference() {
        let mut a = TupleStore::new(1);
        let mut b = TupleStore::new(1);
        for i in [1u32, 3, 5] {
            a.insert(&[Elem(i)]);
        }
        for i in [2u32, 3, 9] {
            b.insert(&[Elem(i)]);
        }
        let d = a.difference(&b);
        assert_eq!(rows_of(&d), vec![vec![1], vec![5]]);
        a.merge(&b);
        assert_eq!(
            rows_of(&a),
            vec![vec![1], vec![2], vec![3], vec![5], vec![9]]
        );
        assert!(d.is_subset(&a));
        assert!(!a.is_subset(&d));
    }

    #[test]
    fn arity_zero_store() {
        let mut s = TupleStore::new(0);
        assert!(!s.contains(&[]));
        s.push(&[]);
        assert!(s.contains(&[]));
        s.push(&[]);
        s.seal();
        assert_eq!(s.len(), 1);
        assert_eq!(s.row(0).len(), 0);
        let empty = TupleStore::new(0);
        assert!(empty.is_subset(&s));
        assert!(!s.is_subset(&empty));
        assert_eq!(s.difference(&empty).len(), 1);
        assert_eq!(s.difference(&s).len(), 0);
        let mut t = TupleStore::new(0);
        t.merge(&s);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn insert_remove_round_trip() {
        let mut s = TupleStore::new(2);
        assert!(s.insert(&[Elem(1), Elem(2)]));
        assert!(!s.insert(&[Elem(1), Elem(2)]));
        assert!(s.insert(&[Elem(0), Elem(9)]));
        assert!(s.remove(&[Elem(1), Elem(2)]));
        assert!(!s.remove(&[Elem(1), Elem(2)]));
        assert_eq!(rows_of(&s), vec![vec![0, 9]]);
    }

    #[test]
    fn wide_seal_path_matches_narrow() {
        // Exercise the usize-indexed seal path (taken automatically only
        // when pending_rows > u32::MAX) on small arity-3 data and check it
        // agrees with the default u32 path.
        let tuples = [
            [2u32, 0, 5],
            [0, 1, 1],
            [0, 0, 4],
            [0, 1, 1],
            [2, 0, 5],
            [1, 9, 0],
        ];
        let mut narrow = TupleStore::new(3);
        let mut wide = TupleStore::new(3);
        for s in [&mut narrow, &mut wide] {
            s.insert(&[Elem(0), Elem(1), Elem(1)]);
            s.insert(&[Elem(5), Elem(5), Elem(5)]);
            for t in tuples {
                s.push(&[Elem(t[0]), Elem(t[1]), Elem(t[2])]);
            }
        }
        narrow.seal_impl(false);
        wide.seal_impl(true);
        assert!(wide.is_sealed());
        assert_eq!(narrow, wide);
        assert_eq!(
            rows_of(&wide),
            vec![
                vec![0, 0, 4],
                vec![0, 1, 1],
                vec![1, 9, 0],
                vec![2, 0, 5],
                vec![5, 5, 5]
            ]
        );
    }

    #[test]
    fn intersection_gallops_both_ways() {
        let mut a = TupleStore::new(1);
        let mut b = TupleStore::new(1);
        for i in [1u32, 3, 5, 7] {
            a.insert(&[Elem(i)]);
        }
        for i in [0u32, 3, 4, 7, 9, 11] {
            b.insert(&[Elem(i)]);
        }
        assert_eq!(rows_of(&a.intersection(&b)), vec![vec![3], vec![7]]);
        assert_eq!(a.intersection(&b), b.intersection(&a));
        let empty = TupleStore::new(1);
        assert!(a.intersection(&empty).is_empty());
        assert!(empty.intersection(&a).is_empty());
    }

    #[test]
    fn prefix_range_selects_matching_rows() {
        let mut s = TupleStore::new(2);
        for t in [[0u32, 3], [1, 0], [1, 2], [1, 7], [2, 2]] {
            s.insert(&[Elem(t[0]), Elem(t[1])]);
        }
        assert_eq!(s.prefix_range(&[]), 0..5);
        assert_eq!(s.prefix_range(&[Elem(1)]), 1..4);
        assert_eq!(s.prefix_range(&[Elem(0)]), 0..1);
        assert_eq!(s.prefix_range(&[Elem(2)]), 4..5);
        assert_eq!(s.prefix_range(&[Elem(3)]), 5..5);
        let r = s.prefix_range(&[Elem(1), Elem(2)]);
        assert_eq!(r, 2..3);
        assert_eq!(s.row(2), &[Elem(1), Elem(2)]);
    }

    #[test]
    fn empty_merges() {
        let mut a = TupleStore::new(2);
        let b = TupleStore::new(2);
        a.merge(&b);
        assert!(a.is_empty());
        a.insert(&[Elem(4), Elem(4)]);
        a.merge(&b);
        assert_eq!(a.len(), 1);
        let mut c = TupleStore::new(2);
        c.merge(&a);
        assert_eq!(c.len(), 1);
        assert_eq!(a, c);
    }

    #[test]
    fn sparse_high_values_take_search_paths() {
        // Values near u32::MAX force the sort-based dictionary collection
        // and the binary-search encoder; mixing in small values exercises
        // a non-append dictionary extension with plane remap.
        let mut s = TupleStore::new(2);
        s.push(&[Elem(u32::MAX), Elem(u32::MAX - 7)]);
        s.push(&[Elem(3), Elem(u32::MAX)]);
        s.seal();
        assert_eq!(
            rows_of(&s),
            vec![vec![3, u32::MAX], vec![u32::MAX, u32::MAX - 7]]
        );
        // Second seal inserts a value *below* the existing maximum: ids
        // must be remapped and previously sealed rows keep their content.
        s.push(&[Elem(1), Elem(4)]);
        s.seal();
        assert_eq!(
            rows_of(&s),
            vec![vec![1, 4], vec![3, u32::MAX], vec![u32::MAX, u32::MAX - 7]]
        );
        assert!(s.contains(&[Elem(u32::MAX), Elem(u32::MAX - 7)]));
        assert!(!s.contains(&[Elem(u32::MAX), Elem(4)]));
        assert_eq!(s.prefix_range(&[Elem(u32::MAX)]), 2..3);
    }

    #[test]
    fn cross_dictionary_set_ops_compare_by_value() {
        // a and b have disjoint dictionaries except for one shared value.
        let mut a = TupleStore::new(2);
        let mut b = TupleStore::new(2);
        for t in [[10u32, 20], [30, 40]] {
            a.push(&[Elem(t[0]), Elem(t[1])]);
        }
        for t in [[10u32, 20], [15, 5]] {
            b.push(&[Elem(t[0]), Elem(t[1])]);
        }
        a.seal();
        b.seal();
        let d = a.difference(&b);
        assert_eq!(rows_of(&d), vec![vec![30, 40]]);
        let i = a.intersection(&b);
        assert_eq!(rows_of(&i), vec![vec![10, 20]]);
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(rows_of(&m), vec![vec![10, 20], vec![15, 5], vec![30, 40]]);
    }

    #[test]
    fn stale_dictionary_entries_do_not_break_equality() {
        // `remove` leaves the removed values in the dictionary; a store
        // that never saw them must still compare (and hash) equal.
        let mut a = TupleStore::new(1);
        for i in [1u32, 5, 9] {
            a.insert(&[Elem(i)]);
        }
        a.remove(&[Elem(5)]);
        let mut b = TupleStore::new(1);
        for i in [1u32, 9] {
            b.insert(&[Elem(i)]);
        }
        assert_eq!(a.dict_len(), 3);
        assert_eq!(b.dict_len(), 2);
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
    }

    #[test]
    fn chunked_galloping_crosses_window_boundaries() {
        // More than CHUNK rows so the counting loop and the binary
        // narrowing both run; verify probes against a naive model.
        let n = 1000u32;
        let mut s = TupleStore::new(2);
        for i in (0..n).rev() {
            s.push(&[Elem(i * 3), Elem(i % 7)]);
        }
        s.seal();
        assert_eq!(s.len(), n as usize);
        for i in 0..n {
            assert!(s.contains(&[Elem(i * 3), Elem(i % 7)]));
            assert!(!s.contains(&[Elem(i * 3 + 1), Elem(i % 7)]));
            assert_eq!(
                s.prefix_range(&[Elem(i * 3)]),
                (i as usize)..(i as usize + 1)
            );
        }
        let mut odd = TupleStore::new(2);
        for i in (0..n).filter(|i| i % 2 == 1) {
            odd.push(&[Elem(i * 3), Elem(i % 7)]);
        }
        odd.seal();
        let even = s.difference(&odd);
        assert_eq!(even.len(), 500);
        assert_eq!(s.intersection(&odd).len(), 500);
        assert!(odd.is_subset(&s));
        let mut m = even.clone();
        m.merge(&odd);
        assert_eq!(m, s);
    }

    #[test]
    fn dictionary_remap_is_stable_across_seals() {
        // Interleave seals so each one lands new values below the current
        // dictionary maximum, forcing repeated remaps.
        let mut s = TupleStore::new(1);
        let mut expect: Vec<u32> = Vec::new();
        for round in 0..5u32 {
            for i in 0..20u32 {
                let v = 1000 - round * 100 + i;
                s.push(&[Elem(v)]);
                expect.push(v);
            }
            s.seal();
        }
        expect.sort_unstable();
        expect.dedup();
        assert_eq!(
            rows_of(&s),
            expect.iter().map(|&v| vec![v]).collect::<Vec<_>>()
        );
    }
}
