//! Row handles over the column-plane [`TupleStore`]: the borrowed
//! [`RowRef`] and the [`Row`] trait unifying every row-shaped input.
//!
//! With the structure-of-arrays layout a stored row is no longer a
//! contiguous `&[Elem]` slice — its cells live in `arity` separate column
//! planes as dense dictionary ids. [`RowRef`] is the zero-copy handle the
//! store hands out instead: a `(store, row-index)` pair that decodes cells
//! on access. It is `Copy`, indexes like a slice (`t[i]` yields an
//! [`Elem`] through the store's dictionary), iterates cells by value, and
//! compares by decoded element values so rows from stores with *different*
//! dictionaries still order lexicographically.
//!
//! [`Row`] abstracts over everything callers pass as "a tuple": borrowed
//! slices, `Vec`s, array literals, and `RowRef` itself. Write-side store
//! APIs ([`TupleStore::push`], `contains`, `insert`, `remove`, and the
//! `Relation`/`Structure` wrappers) are generic over it, so call sites keep
//! their pre-refactor shape (`s.push(&[Elem(1), Elem(2)])`,
//! `idb.contains(t)` with `t` a `RowRef`) without materializing rows.

use std::cmp::Ordering;
use std::fmt;
use std::ops::Index;

use crate::elem::Elem;
use crate::store::TupleStore;

/// Anything that can be read as a fixed-width row of [`Elem`]s.
///
/// Implemented for borrowed slices, `Vec`s, arrays (by reference), boxed
/// slices, and [`RowRef`]. Store and structure write paths take
/// `impl Row` so both decoded handles and plain element buffers flow in
/// without copies.
pub trait Row {
    /// Number of cells in the row.
    fn width(&self) -> usize;
    /// The `i`-th cell, decoded to an element value.
    fn at(&self, i: usize) -> Elem;
    /// Append every cell, in order, to `buf`.
    #[inline]
    fn append_to(&self, buf: &mut Vec<Elem>) {
        for i in 0..self.width() {
            buf.push(self.at(i));
        }
    }
    /// The row as an owned `Vec<Elem>`.
    #[inline]
    fn to_elems(&self) -> Vec<Elem> {
        let mut v = Vec::with_capacity(self.width());
        self.append_to(&mut v);
        v
    }
}

impl Row for &[Elem] {
    #[inline]
    fn width(&self) -> usize {
        self.len()
    }
    #[inline]
    fn at(&self, i: usize) -> Elem {
        self[i]
    }
    #[inline]
    fn append_to(&self, buf: &mut Vec<Elem>) {
        buf.extend_from_slice(self);
    }
}

impl Row for &&[Elem] {
    #[inline]
    fn width(&self) -> usize {
        self.len()
    }
    #[inline]
    fn at(&self, i: usize) -> Elem {
        self[i]
    }
    #[inline]
    fn append_to(&self, buf: &mut Vec<Elem>) {
        buf.extend_from_slice(self);
    }
}

impl Row for Vec<Elem> {
    #[inline]
    fn width(&self) -> usize {
        self.len()
    }
    #[inline]
    fn at(&self, i: usize) -> Elem {
        self[i]
    }
    #[inline]
    fn append_to(&self, buf: &mut Vec<Elem>) {
        buf.extend_from_slice(self);
    }
}

impl Row for &Vec<Elem> {
    #[inline]
    fn width(&self) -> usize {
        self.len()
    }
    #[inline]
    fn at(&self, i: usize) -> Elem {
        self[i]
    }
    #[inline]
    fn append_to(&self, buf: &mut Vec<Elem>) {
        buf.extend_from_slice(self);
    }
}

impl Row for Box<[Elem]> {
    #[inline]
    fn width(&self) -> usize {
        self.len()
    }
    #[inline]
    fn at(&self, i: usize) -> Elem {
        self[i]
    }
    #[inline]
    fn append_to(&self, buf: &mut Vec<Elem>) {
        buf.extend_from_slice(self);
    }
}

impl Row for &Box<[Elem]> {
    #[inline]
    fn width(&self) -> usize {
        self.len()
    }
    #[inline]
    fn at(&self, i: usize) -> Elem {
        self[i]
    }
    #[inline]
    fn append_to(&self, buf: &mut Vec<Elem>) {
        buf.extend_from_slice(self);
    }
}

impl<const N: usize> Row for &[Elem; N] {
    #[inline]
    fn width(&self) -> usize {
        N
    }
    #[inline]
    fn at(&self, i: usize) -> Elem {
        self[i]
    }
    #[inline]
    fn append_to(&self, buf: &mut Vec<Elem>) {
        buf.extend_from_slice(self.as_slice());
    }
}

impl Row for RowRef<'_> {
    #[inline]
    fn width(&self) -> usize {
        self.len()
    }
    #[inline]
    fn at(&self, i: usize) -> Elem {
        self.get(i)
    }
}

impl Row for &RowRef<'_> {
    #[inline]
    fn width(&self) -> usize {
        self.len()
    }
    #[inline]
    fn at(&self, i: usize) -> Elem {
        self.get(i)
    }
}

/// A borrowed, zero-copy handle to one sealed row of a [`TupleStore`].
///
/// Cells decode through the store's dictionary on access: `t[i]` and
/// [`get`](RowRef::get) read the `i`-th column plane at this row and map
/// the dense id back to its [`Elem`]. Comparisons (`==`, `<`) are by
/// decoded values, so handles from different stores (different
/// dictionaries) compare lexicographically, exactly as the old contiguous
/// `&[Elem]` rows did.
#[derive(Clone, Copy)]
pub struct RowRef<'a> {
    pub(crate) store: &'a TupleStore,
    pub(crate) row: usize,
}

impl<'a> RowRef<'a> {
    /// The arity of the underlying store (number of cells).
    #[inline]
    pub fn len(&self) -> usize {
        self.store.arity()
    }

    /// True for rows of a nullary relation.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th cell, decoded.
    #[inline]
    pub fn get(&self, i: usize) -> Elem {
        self.store.cell(i, self.row)
    }

    /// Iterate the cells in column order, by value.
    #[inline]
    pub fn iter(&self) -> RowElems<'a> {
        RowElems {
            store: self.store,
            row: self.row,
            front: 0,
            back: self.store.arity(),
        }
    }

    /// The row as an owned `Vec<Elem>`.
    #[inline]
    pub fn to_vec(&self) -> Vec<Elem> {
        let mut v = Vec::with_capacity(self.len());
        for i in 0..self.len() {
            v.push(self.get(i));
        }
        v
    }

    /// The sorted-run index of this row within its store.
    #[inline]
    pub fn index(&self) -> usize {
        self.row
    }
}

impl Index<usize> for RowRef<'_> {
    type Output = Elem;

    #[inline]
    fn index(&self, i: usize) -> &Elem {
        self.store.cell_ref(i, self.row)
    }
}

impl<'a> IntoIterator for RowRef<'a> {
    type Item = Elem;
    type IntoIter = RowElems<'a>;

    #[inline]
    fn into_iter(self) -> RowElems<'a> {
        self.iter()
    }
}

impl<'a> IntoIterator for &RowRef<'a> {
    type Item = Elem;
    type IntoIter = RowElems<'a>;

    #[inline]
    fn into_iter(self) -> RowElems<'a> {
        self.iter()
    }
}

/// By-value cell iterator of a [`RowRef`].
#[derive(Clone)]
pub struct RowElems<'a> {
    store: &'a TupleStore,
    row: usize,
    front: usize,
    back: usize,
}

impl Iterator for RowElems<'_> {
    type Item = Elem;

    #[inline]
    fn next(&mut self) -> Option<Elem> {
        if self.front >= self.back {
            return None;
        }
        let e = self.store.cell(self.front, self.row);
        self.front += 1;
        Some(e)
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.back - self.front;
        (n, Some(n))
    }
}

impl DoubleEndedIterator for RowElems<'_> {
    #[inline]
    fn next_back(&mut self) -> Option<Elem> {
        if self.front >= self.back {
            return None;
        }
        self.back -= 1;
        Some(self.store.cell(self.back, self.row))
    }
}

impl ExactSizeIterator for RowElems<'_> {}

impl PartialEq for RowRef<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && (0..self.len()).all(|i| self.get(i) == other.get(i))
    }
}

impl Eq for RowRef<'_> {}

impl PartialOrd for RowRef<'_> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for RowRef<'_> {
    fn cmp(&self, other: &Self) -> Ordering {
        for i in 0..self.len().min(other.len()) {
            match self.get(i).cmp(&other.get(i)) {
                Ordering::Equal => {}
                ord => return ord,
            }
        }
        self.len().cmp(&other.len())
    }
}

impl PartialEq<[Elem]> for RowRef<'_> {
    fn eq(&self, other: &[Elem]) -> bool {
        self.len() == other.len() && (0..self.len()).all(|i| self.get(i) == other[i])
    }
}

impl PartialEq<&[Elem]> for RowRef<'_> {
    fn eq(&self, other: &&[Elem]) -> bool {
        *self == **other
    }
}

impl<const N: usize> PartialEq<[Elem; N]> for RowRef<'_> {
    fn eq(&self, other: &[Elem; N]) -> bool {
        *self == other[..]
    }
}

impl<const N: usize> PartialEq<&[Elem; N]> for RowRef<'_> {
    fn eq(&self, other: &&[Elem; N]) -> bool {
        *self == other[..]
    }
}

impl PartialEq<Vec<Elem>> for RowRef<'_> {
    fn eq(&self, other: &Vec<Elem>) -> bool {
        *self == other[..]
    }
}

impl PartialEq<RowRef<'_>> for Vec<Elem> {
    fn eq(&self, other: &RowRef<'_>) -> bool {
        *other == self[..]
    }
}

impl fmt::Debug for RowRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}
