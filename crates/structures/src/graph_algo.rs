//! Additional graph predicates and transformations used by the
//! experiments: bipartiteness (§6.2's "core of every non-trivial bipartite
//! graph is K₂"), girth, diameter, and edge subdivision (topological
//! minors).

use std::collections::VecDeque;

use crate::graph::Graph;

impl Graph {
    /// Two-color the graph if bipartite: `Some(side)` with `side[v] ∈ {0,1}`,
    /// or `None` when an odd cycle exists.
    pub fn bipartition(&self) -> Option<Vec<u8>> {
        let n = self.vertex_count();
        let mut side = vec![u8::MAX; n];
        for s in 0..n {
            if side[s] != u8::MAX {
                continue;
            }
            side[s] = 0;
            let mut q = VecDeque::from([s as u32]);
            while let Some(u) = q.pop_front() {
                for &v in self.neighbors(u) {
                    if side[v as usize] == u8::MAX {
                        side[v as usize] = 1 - side[u as usize];
                        q.push_back(v);
                    } else if side[v as usize] == side[u as usize] {
                        return None;
                    }
                }
            }
        }
        Some(side)
    }

    /// Is the graph bipartite (no odd cycle)?
    pub fn is_bipartite(&self) -> bool {
        self.bipartition().is_some()
    }

    /// The girth (length of a shortest cycle), or `None` for forests.
    /// BFS from every vertex; O(n·m).
    pub fn girth(&self) -> Option<usize> {
        let n = self.vertex_count();
        let mut best: Option<usize> = None;
        for s in 0..n as u32 {
            let mut dist = vec![u32::MAX; n];
            let mut parent = vec![u32::MAX; n];
            dist[s as usize] = 0;
            let mut q = VecDeque::from([s]);
            while let Some(u) = q.pop_front() {
                for &v in self.neighbors(u) {
                    if dist[v as usize] == u32::MAX {
                        dist[v as usize] = dist[u as usize] + 1;
                        parent[v as usize] = u;
                        q.push_back(v);
                    } else if parent[u as usize] != v {
                        // Cycle through s of length dist[u] + dist[v] + 1.
                        let len = (dist[u as usize] + dist[v as usize] + 1) as usize;
                        if best.is_none_or(|b| len < b) {
                            best = Some(len);
                        }
                    }
                }
            }
        }
        best
    }

    /// The diameter of a connected graph (longest shortest path), or `None`
    /// when disconnected or empty.
    pub fn diameter(&self) -> Option<usize> {
        let n = self.vertex_count();
        if n == 0 || !self.is_connected() {
            return None;
        }
        let mut best = 0;
        for s in 0..n as u32 {
            let d = self.bfs_distances(s);
            for &x in &d {
                if x == u32::MAX {
                    return None;
                }
                best = best.max(x as usize);
            }
        }
        Some(best)
    }

    /// Subdivide **every edge** `times` times (insert `times` fresh degree-2
    /// vertices per edge). Subdivision preserves topological minors and
    /// planarity, caps the degree of new vertices at 2, and multiplies
    /// distances — handy for building sparse witnesses.
    pub fn subdivided(&self, times: usize) -> Graph {
        if times == 0 {
            return self.clone();
        }
        let n = self.vertex_count();
        let m = self.edge_count();
        let mut g = Graph::new(n + m * times);
        let mut next = n as u32;
        for (u, v) in self.edges() {
            let mut prev = u;
            for _ in 0..times {
                g.add_edge(prev, next);
                prev = next;
                next += 1;
            }
            g.add_edge(prev, v);
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{clique, complete_bipartite, cycle, grid, path, star, wheel};

    #[test]
    fn bipartite_families() {
        assert!(path(7).is_bipartite());
        assert!(cycle(6).is_bipartite());
        assert!(!cycle(5).is_bipartite());
        assert!(grid(4, 5).is_bipartite());
        assert!(complete_bipartite(3, 4).is_bipartite());
        assert!(star(9).is_bipartite());
        assert!(!clique(3).is_bipartite());
        assert!(!wheel(4).is_bipartite()); // hub + any rim edge = triangle
    }

    #[test]
    fn bipartition_is_proper() {
        let g = grid(3, 4);
        let side = g.bipartition().unwrap();
        for (u, v) in g.edges() {
            assert_ne!(side[u as usize], side[v as usize]);
        }
    }

    #[test]
    fn girth_values() {
        assert_eq!(cycle(5).girth(), Some(5));
        assert_eq!(cycle(8).girth(), Some(8));
        assert_eq!(clique(4).girth(), Some(3));
        assert_eq!(grid(3, 3).girth(), Some(4));
        assert_eq!(path(6).girth(), None);
        assert_eq!(star(5).girth(), None);
        assert_eq!(wheel(5).girth(), Some(3));
    }

    #[test]
    fn diameter_values() {
        assert_eq!(path(6).diameter(), Some(5));
        assert_eq!(cycle(8).diameter(), Some(4));
        assert_eq!(clique(5).diameter(), Some(1));
        assert_eq!(grid(3, 4).diameter(), Some(5));
        // Disconnected: no diameter.
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        assert_eq!(g.diameter(), None);
    }

    #[test]
    fn subdivision_properties() {
        let g = clique(4);
        let s = g.subdivided(2);
        assert_eq!(s.vertex_count(), 4 + 6 * 2);
        assert_eq!(s.edge_count(), 6 * 3);
        // Original vertices keep their degree; new ones have degree 2.
        for v in 0..4u32 {
            assert_eq!(s.degree(v), 3);
        }
        for v in 4..s.vertex_count() as u32 {
            assert_eq!(s.degree(v), 2);
        }
        // Subdividing a triangle lengthens its girth.
        assert_eq!(cycle(3).subdivided(1).girth(), Some(6));
        // times = 0 is the identity.
        assert_eq!(g.subdivided(0).edge_count(), g.edge_count());
    }

    #[test]
    fn subdivided_clique_is_still_a_clique_minor() {
        // Topological-minor fact, cross-checked with the exact search via
        // the hp-tw crate in integration tests; here just the degree story:
        // a subdivided K5 has max degree 4 but still "contains" K5.
        let s = clique(5).subdivided(3);
        assert_eq!(s.max_degree(), 4);
        assert!(s.is_bipartite() || !s.is_bipartite()); // structural smoke
        assert_eq!(s.vertex_count(), 5 + 10 * 3);
    }
}
