//! # hp-structures
//!
//! Finite relational structures, graphs, and Gaifman graphs — the universe of
//! discourse of *"On Preservation under Homomorphisms and Unions of
//! Conjunctive Queries"* (Atserias, Dawar, Kolaitis; PODS 2004).
//!
//! A **relational vocabulary** ([`Vocabulary`]) is a finite set of relation
//! symbols with arities. A **σ-structure** ([`Structure`]) is a finite
//! universe together with an interpretation of each symbol. **Graphs**
//! ([`Graph`]) are undirected, loopless, simple — exactly the convention of
//! the paper (§2.1) — and double as the representation of **Gaifman graphs**
//! of structures.
//!
//! The crate also ships generators for every structure family the paper
//! mentions (paths, cycles, cliques, complete bipartite graphs, stars, grids,
//! trees, wheels `W_n`, bicycles `B_n = W_n + K_4`, k-trees, random models),
//! plus structure-level operations: substructures, induced substructures,
//! disjoint unions, homomorphic images, and Gaifman neighborhoods.
//!
//! ## Quick tour
//!
//! ```
//! use hp_structures::{Vocabulary, Structure, Graph, generators};
//!
//! // A directed-graph vocabulary with one binary symbol E.
//! let sigma = Vocabulary::builder().symbol("E", 2).build();
//! let mut c3 = Structure::new(sigma.clone(), 3);
//! for i in 0..3 {
//!     c3.add_tuple_ids(0, &[i, (i + 1) % 3]).unwrap();
//! }
//! assert_eq!(c3.relation(0usize.into()).len(), 3);
//!
//! // The Gaifman graph of the directed triangle is the undirected triangle.
//! let g = c3.gaifman_graph();
//! assert_eq!(g.edge_count(), 3);
//! assert_eq!(g.max_degree(), 2);
//!
//! // Generators: the 4-wheel of §6.2 has 5 vertices and 8 edges.
//! let w4 = generators::wheel(4);
//! assert_eq!((w4.vertex_count(), w4.edge_count()), (5, 8));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitset;
mod counted;
mod elem;
mod error;
mod fmt;
mod gaifman;
mod graph;
mod graph_algo;
mod ops;
mod row;
mod store;
mod structure;
mod vocab;

pub mod generators;

pub use bitset::BitSet;
pub use counted::{CountedDelta, CountedStore};
pub use elem::Elem;
pub use error::StructureError;
pub use gaifman::{is_d_scattered, Neighborhoods};
pub use graph::Graph;
pub use ops::identity_map;
pub use row::{Row, RowElems, RowRef};
pub use store::{Rows, TupleStore};
pub use structure::{Relation, Structure, StructureBuilder};
pub use vocab::{Symbol, SymbolId, Vocabulary, VocabularyBuilder};
