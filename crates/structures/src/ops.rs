//! Structure-level operations: restriction, induced substructures, disjoint
//! unions, homomorphic images, and element/tuple deletion.

use crate::bitset::BitSet;
use crate::elem::Elem;
use crate::error::StructureError;
use crate::structure::Structure;

impl Structure {
    /// The **induced substructure** on the elements in `keep`.
    ///
    /// Elements are renumbered densely in increasing order of their old
    /// index; the returned vector maps each new element to its old index
    /// (`old_of_new[new] = old`).
    pub fn induced(&self, keep: &BitSet) -> (Structure, Vec<Elem>) {
        debug_assert_eq!(keep.capacity(), self.universe_size());
        let old_of_new: Vec<Elem> = keep.iter().map(Elem::from).collect();
        let mut new_of_old = vec![u32::MAX; self.universe_size()];
        for (new, &old) in old_of_new.iter().enumerate() {
            new_of_old[old.index()] = new as u32;
        }
        let mut out = Structure::new(self.vocab().clone(), old_of_new.len());
        let mut buf: Vec<Vec<Elem>> = Vec::new();
        for (id, rel) in self.relations() {
            buf.clear();
            'tuples: for t in rel.iter() {
                let mut mapped = Vec::with_capacity(t.len());
                for e in t.iter() {
                    let n = new_of_old[e.index()];
                    if n == u32::MAX {
                        continue 'tuples;
                    }
                    mapped.push(Elem(n));
                }
                buf.push(mapped);
            }
            out.extend_tuples(id, buf.drain(..))
                .expect("induced tuples valid");
        }
        (out, old_of_new)
    }

    /// The induced substructure obtained by **removing a single element**.
    pub fn remove_element(&self, e: Elem) -> (Structure, Vec<Elem>) {
        let mut keep = BitSet::full(self.universe_size());
        keep.remove(e.index());
        self.induced(&keep)
    }

    /// The **disjoint union** A ⊕ B: universes concatenated, B's elements
    /// shifted up by `|A|`.
    pub fn disjoint_union(&self, other: &Structure) -> Result<Structure, StructureError> {
        if self.vocab() != other.vocab() {
            return Err(StructureError::VocabularyMismatch);
        }
        let shift = self.universe_size() as u32;
        let mut out = Structure::new(
            self.vocab().clone(),
            self.universe_size() + other.universe_size(),
        );
        for (id, rel) in self.relations() {
            out.extend_tuples(id, rel.iter())
                .expect("left tuples valid");
        }
        for (id, rel) in other.relations() {
            out.extend_tuples(
                id,
                rel.iter()
                    .map(|t| t.iter().map(|e| Elem(e.0 + shift)).collect::<Vec<_>>()),
            )
            .expect("right tuples valid");
        }
        Ok(out)
    }

    /// The **homomorphic image** of `self` under `map` into a universe of
    /// size `target_universe`: the structure with universe `target_universe`
    /// whose tuples are exactly `{ h(t) : t ∈ R^A }` for each `R`.
    ///
    /// `map[i]` is the image of element `i`; every image must be
    /// `< target_universe`.
    pub fn hom_image(&self, map: &[Elem], target_universe: usize) -> Structure {
        assert_eq!(
            map.len(),
            self.universe_size(),
            "map must cover the universe"
        );
        assert!(
            map.iter().all(|e| e.index() < target_universe),
            "map image exceeds target universe"
        );
        let mut out = Structure::new(self.vocab().clone(), target_universe);
        for (id, rel) in self.relations() {
            out.extend_tuples(
                id,
                rel.iter()
                    .map(|t| t.iter().map(|e| map[e.index()]).collect::<Vec<_>>()),
            )
            .expect("image tuples valid");
        }
        out
    }

    /// Enumerate all **one-step weakenings** of `self`: structures obtained
    /// by deleting a single tuple, plus structures obtained by deleting a
    /// single element (with its incident tuples). These are exactly the
    /// maximal proper substructures reachable in one step, which is the
    /// descent step used when searching for minimal models (§3).
    pub fn one_step_weakenings(&self) -> Vec<Structure> {
        let mut out = Vec::new();
        for (id, rel) in self.relations() {
            for t in rel.iter() {
                let mut s = self.clone();
                s.remove_tuple(id, t);
                out.push(s);
            }
        }
        for e in self.elements() {
            out.push(self.remove_element(e).0);
        }
        out
    }

    /// True when `map` is a **homomorphism** from `self` to `other`
    /// (preserves every relation; §2.1). `map[i]` is the image of element
    /// `i` and must index into `other`'s universe.
    pub fn is_homomorphism(&self, map: &[Elem], other: &Structure) -> bool {
        if self.vocab() != other.vocab() || map.len() != self.universe_size() {
            return false;
        }
        if map.iter().any(|e| e.index() >= other.universe_size()) {
            return false;
        }
        let mut buf: Vec<Elem> = Vec::new();
        for (id, rel) in self.relations() {
            for t in rel.iter() {
                buf.clear();
                buf.extend(t.iter().map(|e| map[e.index()]));
                if !other.contains_tuple(id, &buf) {
                    return false;
                }
            }
        }
        true
    }

    /// Remove **isolated** elements (those appearing in no tuple), returning
    /// the restriction and the old-of-new map.
    pub fn without_isolated(&self) -> (Structure, Vec<Elem>) {
        let mut used = BitSet::new(self.universe_size());
        for (_, rel) in self.relations() {
            for t in rel.iter() {
                for e in t.iter() {
                    used.insert(e.index());
                }
            }
        }
        self.induced(&used)
    }

    /// The set of elements that occur in at least one tuple.
    pub fn support(&self) -> BitSet {
        let mut used = BitSet::new(self.universe_size());
        for (_, rel) in self.relations() {
            for t in rel.iter() {
                for e in t.iter() {
                    used.insert(e.index());
                }
            }
        }
        used
    }
}

/// Identity map on a universe of size `n` (useful as a base for hom tests).
pub fn identity_map(n: usize) -> Vec<Elem> {
    (0..n as u32).map(Elem).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::{SymbolId, Vocabulary};

    fn path(n: usize) -> Structure {
        let mut s = Structure::new(Vocabulary::digraph(), n);
        for i in 0..n.saturating_sub(1) {
            s.add_tuple_ids(0, &[i as u32, i as u32 + 1]).unwrap();
        }
        s
    }

    #[test]
    fn induced_renumbers_densely() {
        let p = path(4); // 0->1->2->3
        let keep = BitSet::from_indices(4, [1, 3]);
        let (sub, old) = p.induced(&keep);
        assert_eq!(sub.universe_size(), 2);
        assert_eq!(old, vec![Elem(1), Elem(3)]);
        // No edge between 1 and 3 in the path.
        assert_eq!(sub.total_tuples(), 0);
    }

    #[test]
    fn induced_keeps_internal_edges() {
        let p = path(4);
        let keep = BitSet::from_indices(4, [1, 2]);
        let (sub, _) = p.induced(&keep);
        assert_eq!(sub.total_tuples(), 1);
        assert!(sub.contains_tuple(SymbolId(0), &[Elem(0), Elem(1)]));
    }

    #[test]
    fn remove_element_drops_incident_tuples() {
        let p = path(3); // 0->1->2
        let (sub, _) = p.remove_element(Elem(1));
        assert_eq!(sub.universe_size(), 2);
        assert_eq!(sub.total_tuples(), 0);
    }

    #[test]
    fn disjoint_union_shifts() {
        let a = path(2);
        let b = path(3);
        let u = a.disjoint_union(&b).unwrap();
        assert_eq!(u.universe_size(), 5);
        assert_eq!(u.total_tuples(), 3);
        assert!(u.contains_tuple(SymbolId(0), &[Elem(0), Elem(1)]));
        assert!(u.contains_tuple(SymbolId(0), &[Elem(2), Elem(3)]));
        assert!(u.contains_tuple(SymbolId(0), &[Elem(3), Elem(4)]));
    }

    #[test]
    fn disjoint_union_vocab_mismatch() {
        let a = path(2);
        let b = Structure::new(Vocabulary::from_pairs([("R", 3)]), 1);
        assert!(matches!(
            a.disjoint_union(&b),
            Err(StructureError::VocabularyMismatch)
        ));
    }

    #[test]
    fn hom_image_collapses() {
        // Map the path 0->1->2 onto a single self-loop vertex.
        let p = path(3);
        let img = p.hom_image(&[Elem(0), Elem(0), Elem(0)], 1);
        assert_eq!(img.universe_size(), 1);
        assert!(img.contains_tuple(SymbolId(0), &[Elem(0), Elem(0)]));
        assert_eq!(img.total_tuples(), 1);
    }

    #[test]
    fn is_homomorphism_checks_edges() {
        let p2 = path(2); // 0->1
        let p3 = path(3);
        assert!(p2.is_homomorphism(&[Elem(0), Elem(1)], &p3));
        assert!(p2.is_homomorphism(&[Elem(1), Elem(2)], &p3));
        assert!(!p2.is_homomorphism(&[Elem(1), Elem(0)], &p3));
        assert!(!p2.is_homomorphism(&[Elem(0)], &p3)); // wrong length
    }

    #[test]
    fn identity_is_homomorphism_into_superstructure() {
        let p = path(3);
        let mut bigger = p.clone();
        bigger.add_tuple_ids(0, &[2, 0]).unwrap();
        assert!(p.is_homomorphism(&identity_map(3), &bigger));
    }

    #[test]
    fn one_step_weakenings_counts() {
        let p = path(3); // 2 tuples + 3 elements
        let w = p.one_step_weakenings();
        assert_eq!(w.len(), 5);
        assert!(w
            .iter()
            .all(|s| s.is_proper_substructure_of(&p) || s.universe_size() < 3));
    }

    #[test]
    fn without_isolated_strips() {
        let mut s = path(2);
        // grow universe by rebuilding with extra isolated element
        let mut t = Structure::new(Vocabulary::digraph(), 5);
        for (id, rel) in s.relations() {
            for tup in rel.iter() {
                t.add_tuple(id, tup).unwrap();
            }
        }
        s = t;
        let (stripped, old) = s.without_isolated();
        assert_eq!(stripped.universe_size(), 2);
        assert_eq!(old, vec![Elem(0), Elem(1)]);
        assert_eq!(s.support().len(), 2);
    }
}
