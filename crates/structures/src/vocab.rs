//! Relational vocabularies (database schemas).

use std::fmt;
use std::sync::Arc;

/// Identifier of a relation symbol within its vocabulary.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymbolId(pub u16);

impl SymbolId {
    /// The id as a `usize` index into the vocabulary's symbol table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for SymbolId {
    #[inline]
    fn from(v: usize) -> Self {
        debug_assert!(v <= u16::MAX as usize);
        SymbolId(v as u16)
    }
}

impl From<u16> for SymbolId {
    #[inline]
    fn from(v: u16) -> Self {
        SymbolId(v)
    }
}

impl fmt::Debug for SymbolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// A relation symbol: a name and an arity.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Symbol {
    /// The symbol's name, e.g. `"E"`.
    pub name: String,
    /// Number of argument positions. Arity 0 (Boolean flags, as used by the
    /// plebian-companion construction of §6.1) is allowed.
    pub arity: usize,
}

/// A finite relational vocabulary σ: an ordered list of relation symbols.
///
/// Vocabularies are immutable and cheaply clonable (`Arc` inside). Two
/// structures are comparable/combinable only when they share a vocabulary
/// *by value* (same symbol names and arities, in order).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Vocabulary {
    symbols: Arc<Vec<Symbol>>,
}

impl Vocabulary {
    /// Start building a vocabulary.
    pub fn builder() -> VocabularyBuilder {
        VocabularyBuilder {
            symbols: Vec::new(),
        }
    }

    /// The vocabulary with a single binary symbol `E` — directed graphs.
    pub fn digraph() -> Self {
        Self::builder().symbol("E", 2).build()
    }

    /// Construct directly from `(name, arity)` pairs.
    pub fn from_pairs<'a, I: IntoIterator<Item = (&'a str, usize)>>(pairs: I) -> Self {
        let mut b = Self::builder();
        for (n, a) in pairs {
            b = b.symbol(n, a);
        }
        b.build()
    }

    /// Number of relation symbols.
    #[inline]
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// True when the vocabulary has no symbols.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// The symbol with the given id.
    #[inline]
    pub fn symbol(&self, id: SymbolId) -> &Symbol {
        &self.symbols[id.index()]
    }

    /// Arity of the symbol with the given id.
    #[inline]
    pub fn arity(&self, id: SymbolId) -> usize {
        self.symbols[id.index()].arity
    }

    /// Resolve a symbol by name.
    pub fn lookup(&self, name: &str) -> Option<SymbolId> {
        self.symbols
            .iter()
            .position(|s| s.name == name)
            .map(SymbolId::from)
    }

    /// Iterate over `(id, symbol)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SymbolId, &Symbol)> {
        self.symbols
            .iter()
            .enumerate()
            .map(|(i, s)| (SymbolId::from(i), s))
    }

    /// Maximum arity over all symbols (0 for the empty vocabulary).
    pub fn max_arity(&self) -> usize {
        self.symbols.iter().map(|s| s.arity).max().unwrap_or(0)
    }

    /// Extend this vocabulary with additional symbols, returning a new one.
    ///
    /// Used by the plebian-companion construction (§6.1), which adds a symbol
    /// `R_m` for every symbol `R` and partial constant-assignment `m`.
    pub fn extended<'a, I: IntoIterator<Item = (&'a str, usize)>>(&self, pairs: I) -> Self {
        let mut symbols: Vec<Symbol> = (*self.symbols).clone();
        for (n, a) in pairs {
            symbols.push(Symbol {
                name: n.to_string(),
                arity: a,
            });
        }
        Vocabulary {
            symbols: Arc::new(symbols),
        }
    }
}

impl fmt::Debug for Vocabulary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "σ{{")?;
        for (i, s) in self.symbols.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}/{}", s.name, s.arity)?;
        }
        write!(f, "}}")
    }
}

/// Builder for [`Vocabulary`].
pub struct VocabularyBuilder {
    symbols: Vec<Symbol>,
}

impl VocabularyBuilder {
    /// Add a relation symbol with the given name and arity.
    ///
    /// # Panics
    /// Panics if the name duplicates an earlier symbol — vocabularies are
    /// sets of symbols, so duplicates are a programming error.
    pub fn symbol(mut self, name: &str, arity: usize) -> Self {
        assert!(
            !self.symbols.iter().any(|s| s.name == name),
            "duplicate symbol {name:?} in vocabulary"
        );
        self.symbols.push(Symbol {
            name: name.to_string(),
            arity,
        });
        self
    }

    /// Finish building.
    pub fn build(self) -> Vocabulary {
        Vocabulary {
            symbols: Arc::new(self.symbols),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_lookup() {
        let v = Vocabulary::builder().symbol("E", 2).symbol("P", 1).build();
        assert_eq!(v.len(), 2);
        assert_eq!(v.lookup("E"), Some(SymbolId(0)));
        assert_eq!(v.lookup("P"), Some(SymbolId(1)));
        assert_eq!(v.lookup("Q"), None);
        assert_eq!(v.arity(SymbolId(0)), 2);
        assert_eq!(v.max_arity(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate symbol")]
    fn duplicate_symbol_panics() {
        let _ = Vocabulary::builder().symbol("E", 2).symbol("E", 3).build();
    }

    #[test]
    fn equality_is_structural() {
        let a = Vocabulary::digraph();
        let b = Vocabulary::builder().symbol("E", 2).build();
        assert_eq!(a, b);
        let c = Vocabulary::builder().symbol("E", 3).build();
        assert_ne!(a, c);
    }

    #[test]
    fn extended_appends_symbols() {
        let v = Vocabulary::digraph();
        let w = v.extended([("E_c1", 1), ("flag", 0)]);
        assert_eq!(w.len(), 3);
        assert_eq!(w.arity(SymbolId(2)), 0);
        // Original untouched.
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn zero_arity_symbols_allowed() {
        let v = Vocabulary::builder().symbol("T", 0).build();
        assert_eq!(v.arity(SymbolId(0)), 0);
    }

    #[test]
    fn iter_yields_in_order() {
        let v = Vocabulary::from_pairs([("A", 1), ("B", 2), ("C", 3)]);
        let names: Vec<_> = v.iter().map(|(_, s)| s.name.as_str()).collect();
        assert_eq!(names, ["A", "B", "C"]);
    }
}
