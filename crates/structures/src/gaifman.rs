//! Gaifman graphs, degrees of structures, and d-neighborhood machinery (§2.1).

use crate::bitset::BitSet;
use crate::graph::Graph;
use crate::structure::Structure;

impl Structure {
    /// Compute the Gaifman graph 𝒢(A) of this structure.
    ///
    /// The Gaifman graph has the universe of A as vertices and an edge
    /// between distinct `a, a′` whenever they co-occur in some tuple of some
    /// relation (§2.1). The degree / treewidth / minors of a *structure* are
    /// those of its Gaifman graph, so most of `hp-tw` consumes this output.
    pub fn gaifman_graph(&self) -> Graph {
        let mut g = Graph::new(self.universe_size());
        for (_, rel) in self.relations() {
            for t in rel.iter() {
                for i in 0..t.len() {
                    for j in (i + 1)..t.len() {
                        if t[i] != t[j] {
                            g.add_edge(t[i].0, t[j].0);
                        }
                    }
                }
            }
        }
        g
    }

    /// The **degree** of the structure: the maximum degree of its Gaifman
    /// graph (§2.1).
    pub fn degree(&self) -> usize {
        self.gaifman_graph().max_degree()
    }
}

impl Structure {
    /// The induced substructure on the Gaifman `d`-neighborhood of
    /// `center` — the local window Gaifman's locality theorem (which
    /// powers Theorem 3.2) reasons about. Returns the substructure and the
    /// old-of-new element map.
    pub fn neighborhood_substructure(
        &self,
        center: crate::Elem,
        d: usize,
    ) -> (Structure, Vec<crate::Elem>) {
        let g = self.gaifman_graph();
        let ball = g.neighborhood(center.0, d);
        self.induced(&ball)
    }
}

/// Precomputed `d`-neighborhoods of every vertex of a graph, used when many
/// scattered-set queries hit the same graph.
pub struct Neighborhoods {
    /// `sets[u]` is `N_d(u)` as a bit set over the vertex range.
    sets: Vec<BitSet>,
    d: usize,
}

impl Neighborhoods {
    /// Compute all `d`-neighborhoods of `g`.
    pub fn compute(g: &Graph, d: usize) -> Self {
        let sets = g.vertices().map(|u| g.neighborhood(u, d)).collect();
        Neighborhoods { sets, d }
    }

    /// The radius these neighborhoods were computed for.
    #[inline]
    pub fn radius(&self) -> usize {
        self.d
    }

    /// `N_d(u)`.
    #[inline]
    pub fn of(&self, u: u32) -> &BitSet {
        &self.sets[u as usize]
    }

    /// True when `vs` is a **d-scattered set** (§3): the d-neighborhoods of
    /// its members are pairwise disjoint.
    pub fn is_scattered(&self, vs: &[u32]) -> bool {
        for i in 0..vs.len() {
            for j in (i + 1)..vs.len() {
                if !self.sets[vs[i] as usize].is_disjoint(&self.sets[vs[j] as usize]) {
                    return false;
                }
            }
        }
        true
    }
}

/// True when `vs` is a d-scattered set in `g` — convenience one-shot form
/// (equivalent to pairwise distance > 2d).
pub fn is_d_scattered(g: &Graph, d: usize, vs: &[u32]) -> bool {
    Neighborhoods::compute(g, d).is_scattered(vs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::Vocabulary;

    #[test]
    fn gaifman_of_ternary_tuple_is_triangle() {
        let v = Vocabulary::from_pairs([("R", 3)]);
        let mut s = Structure::new(v, 3);
        s.add_tuple_ids(0, &[0, 1, 2]).unwrap();
        let g = s.gaifman_graph();
        assert_eq!(g.edge_count(), 3);
        assert_eq!(s.degree(), 2);
    }

    #[test]
    fn gaifman_ignores_repeated_positions() {
        let v = Vocabulary::from_pairs([("R", 2)]);
        let mut s = Structure::new(v, 2);
        s.add_tuple_ids(0, &[0, 0]).unwrap(); // self-tuple: no Gaifman edge
        s.add_tuple_ids(0, &[0, 1]).unwrap();
        let g = s.gaifman_graph();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn gaifman_of_digraph_is_underlying_undirected() {
        let mut s = Structure::new(Vocabulary::digraph(), 3);
        s.add_tuple_ids(0, &[0, 1]).unwrap();
        s.add_tuple_ids(0, &[1, 0]).unwrap(); // same undirected edge
        s.add_tuple_ids(0, &[1, 2]).unwrap();
        let g = s.gaifman_graph();
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn scattered_set_on_path() {
        // Path 0-1-2-3-4-5-6: {0, 6} is 2-scattered (distance 6 > 4) but
        // {0, 4} is not (N_2(0) = {0,1,2}, N_2(4) = {2,..,6} intersect).
        let g = Graph::from_edges(7, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6)]);
        assert!(is_d_scattered(&g, 2, &[0, 6]));
        assert!(!is_d_scattered(&g, 2, &[0, 4]));
        assert!(is_d_scattered(&g, 1, &[0, 3, 6]));
    }

    #[test]
    fn star_has_no_2scattered_pair_but_leaves_scatter_after_hub_removal() {
        // S_5: hub 0, leaves 1..=5. Any two leaves are at distance 2, so no
        // 1-scattered pair... actually d=1 neighborhoods of leaves all
        // contain the hub. This is the paper's motivating example for s > 0.
        let edges: Vec<(u32, u32)> = (1..=5).map(|i| (0u32, i)).collect();
        let g = Graph::from_edges(6, &edges);
        assert!(!is_d_scattered(&g, 1, &[1, 2]));
        let (h, _) = g.minus(&BitSet::from_indices(6, [0]));
        // All leaves isolated now: any set is d-scattered for any d.
        assert!(is_d_scattered(&h, 3, &[0, 1, 2, 3, 4]));
    }

    #[test]
    fn neighborhoods_cache_matches_oneshot() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let nb = Neighborhoods::compute(&g, 1);
        assert_eq!(nb.radius(), 1);
        for u in g.vertices() {
            assert_eq!(
                nb.of(u).iter().collect::<Vec<_>>(),
                g.neighborhood(u, 1).iter().collect::<Vec<_>>()
            );
        }
    }
}
