//! Counted tuple storage for incremental view maintenance.
//!
//! [`CountedStore`] pairs each distinct tuple with a signed derivation
//! count. It is the bookkeeping structure behind counting-based maintenance
//! of non-recursive Datalog strata: every rule derivation contributes `+1`,
//! every retracted derivation `-1`, and a tuple is *in* the view exactly
//! while its total count is positive. Like [`TupleStore`], it keeps a
//! sorted committed run plus an unsorted pending delta so a maintenance
//! round batches all its signed derivations and pays one sort + merge in
//! [`apply`](CountedStore::apply), which also reports the set-level
//! insertions and deletions (count transitions through zero) as sealed
//! [`TupleStore`]s ready to feed the next stratum.

use crate::elem::Elem;
use crate::store::TupleStore;

/// A multiset of same-arity tuples: sorted distinct rows with signed
/// derivation counts, plus a pending delta of `(row, ±count)` pairs.
///
/// Invariants:
///
/// * committed rows are lexicographically sorted and distinct, with
///   `counts[i] > 0` the derivation count of row `i`;
/// * `data.len() == counts.len() * arity` and
///   `pending.len() == pending_counts.len() * arity`;
/// * the pending region is unordered and may repeat rows (with any signs)
///   until [`apply`](CountedStore::apply) folds it in.
#[derive(Clone, Debug)]
pub struct CountedStore {
    arity: usize,
    /// Committed arena: `counts.len() * arity` elements, sorted rows.
    data: Vec<Elem>,
    /// Per-committed-row derivation counts, all positive.
    counts: Vec<i64>,
    /// Pending arena: `pending_counts.len() * arity` elements.
    pending: Vec<Elem>,
    /// Signed count deltas for the pending rows.
    pending_counts: Vec<i64>,
}

/// The set-level effect of one [`CountedStore::apply`]: tuples whose count
/// rose from zero and tuples whose count fell to zero. Both stores are
/// sealed and sorted.
#[derive(Clone, Debug)]
pub struct CountedDelta {
    /// Tuples newly in the view (count went `0 → positive`).
    pub inserted: TupleStore,
    /// Tuples no longer in the view (count went `positive → 0`).
    pub removed: TupleStore,
}

impl CountedDelta {
    /// True when the apply changed no set-level membership.
    pub fn is_empty(&self) -> bool {
        self.inserted.is_empty() && self.removed.is_empty()
    }
}

impl CountedStore {
    /// An empty counted store of the given arity.
    pub fn new(arity: usize) -> Self {
        CountedStore {
            arity,
            data: Vec::new(),
            counts: Vec::new(),
            pending: Vec::new(),
            pending_counts: Vec::new(),
        }
    }

    /// The arity (row stride) of the store.
    #[inline]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of committed distinct rows (the current view size).
    #[inline]
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True when there are no committed rows and no pending deltas.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty() && self.pending_counts.is_empty()
    }

    /// Buffer a signed derivation-count delta for `t` (no ordering work).
    #[inline]
    pub fn push(&mut self, t: &[Elem], delta: i64) {
        debug_assert_eq!(t.len(), self.arity);
        self.pending.extend_from_slice(t);
        self.pending_counts.push(delta);
    }

    /// The committed derivation count of `t` (0 when absent). Pending
    /// deltas are not visible until [`apply`](CountedStore::apply).
    pub fn count(&self, t: &[Elem]) -> i64 {
        debug_assert_eq!(t.len(), self.arity);
        let k = self.arity;
        if k == 0 {
            return self.counts.first().copied().unwrap_or(0);
        }
        let rows = self.counts.len();
        let row = |i: usize| &self.data[i * k..(i + 1) * k];
        let (mut lo, mut hi) = (0usize, rows);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if row(mid) < t {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo < rows && row(lo) == t {
            self.counts[lo]
        } else {
            0
        }
    }

    /// Iterate the committed `(row, count)` pairs in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = (&[Elem], i64)> + '_ {
        let k = self.arity;
        self.counts.iter().enumerate().map(move |(i, &c)| {
            let row: &[Elem] = &self.data[i * k..(i + 1) * k];
            (row, c)
        })
    }

    /// Move every pending delta of `other` into this store's pending
    /// region. This is the fold step when maintenance rounds accumulate
    /// per-worker counted deltas: workers fill fresh stores, the owner
    /// absorbs them in a deterministic order.
    pub fn absorb_pending(&mut self, other: CountedStore) {
        debug_assert_eq!(self.arity, other.arity);
        debug_assert!(
            other.counts.is_empty(),
            "absorb_pending takes delta-only stores"
        );
        self.pending.extend_from_slice(&other.pending);
        self.pending_counts.extend_from_slice(&other.pending_counts);
    }

    /// Fold the pending deltas into the committed run and report the
    /// set-level changes.
    ///
    /// Equal pending rows are grouped and their signed deltas summed; the
    /// grouped deltas then merge with the committed run. Transitions:
    /// a row whose total becomes positive from absent is **inserted**, one
    /// whose total reaches zero from present is **removed**, and a pending
    /// row whose total cancels to zero without ever being committed is
    /// transient and leaves no trace. Totals are clamped at zero — a
    /// negative total would mean retracting a derivation that was never
    /// counted, which the maintenance algebra never produces
    /// (`debug_assert`ed).
    pub fn apply(&mut self) -> CountedDelta {
        let k = self.arity;
        let mut delta = CountedDelta {
            inserted: TupleStore::new(k),
            removed: TupleStore::new(k),
        };
        if self.pending_counts.is_empty() {
            return delta;
        }
        let pend = std::mem::take(&mut self.pending);
        let pend_counts = std::mem::take(&mut self.pending_counts);
        // Sort pending row indices; equal rows become adjacent groups.
        let mut idx: Vec<usize> = (0..pend_counts.len()).collect();
        idx.sort_unstable_by(|&i, &j| pend[i * k..(i + 1) * k].cmp(&pend[j * k..(j + 1) * k]));

        let old_data = std::mem::take(&mut self.data);
        let old_counts = std::mem::take(&mut self.counts);
        let old_rows = old_counts.len();
        let old_row = |i: usize| &old_data[i * k..(i + 1) * k];
        self.data.reserve(old_data.len());
        self.counts.reserve(old_rows);

        let mut di = 0usize; // cursor into the old committed run
        let mut gi = 0usize; // cursor into the sorted pending indices
        while gi < idx.len() {
            let grow = &pend[idx[gi] * k..(idx[gi] + 1) * k];
            // Copy committed rows strictly before this pending group.
            while di < old_rows && old_row(di) < grow {
                self.data.extend_from_slice(old_row(di));
                self.counts.push(old_counts[di]);
                di += 1;
            }
            // Sum the signed deltas of the whole equal-row group.
            let mut sum = 0i64;
            while gi < idx.len() && &pend[idx[gi] * k..(idx[gi] + 1) * k] == grow {
                sum += pend_counts[idx[gi]];
                gi += 1;
            }
            let existed = di < old_rows && old_row(di) == grow;
            let base = if existed { old_counts[di] } else { 0 };
            if existed {
                di += 1;
            }
            let total = base + sum;
            debug_assert!(total >= 0, "derivation count under-run for {grow:?}");
            let total = total.max(0);
            if total > 0 {
                self.data.extend_from_slice(grow);
                self.counts.push(total);
                if !existed {
                    delta.inserted.push(grow);
                }
            } else if existed {
                delta.removed.push(grow);
            }
        }
        // Tail of the committed run.
        while di < old_rows {
            self.data.extend_from_slice(old_row(di));
            self.counts.push(old_counts[di]);
            di += 1;
        }
        // Groups were visited in sorted order, so these seals are cheap
        // in-order merges into empty runs.
        delta.inserted.seal();
        delta.removed.seal();
        delta
    }

    /// Bytes of heap held by the arenas and count vectors (capacity, not
    /// length) — analytic footprint reporting, matching
    /// [`TupleStore::heap_bytes`].
    pub fn heap_bytes(&self) -> usize {
        (self.data.capacity() + self.pending.capacity()) * std::mem::size_of::<Elem>()
            + (self.counts.capacity() + self.pending_counts.capacity()) * std::mem::size_of::<i64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows_of(s: &TupleStore) -> Vec<Vec<u32>> {
        s.iter().map(|r| r.iter().map(|e| e.0).collect()).collect()
    }

    #[test]
    fn counts_accumulate_and_transition() {
        let mut c = CountedStore::new(1);
        c.push(&[Elem(3)], 1);
        c.push(&[Elem(3)], 1);
        c.push(&[Elem(5)], 1);
        let d = c.apply();
        assert_eq!(rows_of(&d.inserted), vec![vec![3], vec![5]]);
        assert!(d.removed.is_empty());
        assert_eq!(c.count(&[Elem(3)]), 2);
        assert_eq!(c.count(&[Elem(5)]), 1);

        // One retraction of a doubly-derived tuple: count drops, set stays.
        c.push(&[Elem(3)], -1);
        c.push(&[Elem(5)], -1);
        let d = c.apply();
        assert!(d.inserted.is_empty());
        assert_eq!(rows_of(&d.removed), vec![vec![5]]);
        assert_eq!(c.count(&[Elem(3)]), 1);
        assert_eq!(c.count(&[Elem(5)]), 0);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn transient_rows_leave_no_trace() {
        let mut c = CountedStore::new(2);
        c.push(&[Elem(1), Elem(2)], 1);
        c.push(&[Elem(1), Elem(2)], -1);
        let d = c.apply();
        assert!(d.is_empty());
        assert!(c.is_empty());
    }

    #[test]
    fn arity_zero_counts() {
        let mut c = CountedStore::new(0);
        assert_eq!(c.count(&[]), 0);
        c.push(&[], 1);
        c.push(&[], 1);
        let d = c.apply();
        assert_eq!(d.inserted.len(), 1);
        assert_eq!(c.count(&[]), 2);
        c.push(&[], -2);
        let d = c.apply();
        assert_eq!(d.removed.len(), 1);
        assert_eq!(c.count(&[]), 0);
    }

    #[test]
    fn absorb_pending_merges_worker_deltas() {
        let mut owner = CountedStore::new(1);
        let mut w1 = CountedStore::new(1);
        let mut w2 = CountedStore::new(1);
        w1.push(&[Elem(1)], 1);
        w2.push(&[Elem(1)], 1);
        w2.push(&[Elem(2)], -1);
        owner.push(&[Elem(2)], 1);
        owner.apply();
        owner.absorb_pending(w1);
        owner.absorb_pending(w2);
        let d = owner.apply();
        assert_eq!(rows_of(&d.inserted), vec![vec![1]]);
        assert_eq!(rows_of(&d.removed), vec![vec![2]]);
        assert_eq!(owner.count(&[Elem(1)]), 2);
    }
}
