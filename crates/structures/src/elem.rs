//! Universe elements.

use std::fmt;

/// An element of the universe of a finite structure.
///
/// Universes are always `{0, 1, …, n-1}`; an `Elem` is a dense index into
/// that range. Using a `u32` newtype keeps tuples compact (the paper's
/// constructions never need more than a few million elements) while making it
/// a type error to confuse elements with ordinary integers.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Elem(pub u32);

impl Elem {
    /// The element as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for Elem {
    #[inline]
    fn from(v: u32) -> Self {
        Elem(v)
    }
}

impl From<usize> for Elem {
    #[inline]
    fn from(v: usize) -> Self {
        debug_assert!(v <= u32::MAX as usize, "universe too large for Elem");
        Elem(v as u32)
    }
}

impl fmt::Debug for Elem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for Elem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_conversions() {
        let e: Elem = 7u32.into();
        assert_eq!(e.index(), 7);
        let e2: Elem = 7usize.into();
        assert_eq!(e, e2);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Elem(2) < Elem(10));
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", Elem(3)), "3");
        assert_eq!(format!("{:?}", Elem(3)), "e3");
    }
}
