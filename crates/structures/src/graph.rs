//! Undirected, loopless, simple graphs (the paper's graphs, §2.1).

use std::fmt;

use crate::bitset::BitSet;
use crate::elem::Elem;
use crate::structure::Structure;
use crate::vocab::{SymbolId, Vocabulary};

/// An undirected, loopless graph without parallel edges.
///
/// Stored as sorted adjacency lists. Vertices are `0..n`. This is both a
/// standalone graph type (for the combinatorics of §§4–5) and the codomain of
/// [`Structure::gaifman_graph`](crate::Structure::gaifman_graph).
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    adj: Vec<Vec<u32>>,
    edges: usize,
}

impl Graph {
    /// The edgeless graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            edges: 0,
        }
    }

    /// Build from an edge list (duplicates and loops ignored).
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut g = Graph::new(n);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Add the undirected edge `{u, v}`. Loops are ignored (graphs are
    /// irreflexive); re-adding an existing edge is a no-op. Returns true if
    /// the edge was newly added.
    pub fn add_edge(&mut self, u: u32, v: u32) -> bool {
        assert!(
            (u as usize) < self.adj.len() && (v as usize) < self.adj.len(),
            "edge endpoint out of range"
        );
        if u == v {
            return false;
        }
        match self.adj[u as usize].binary_search(&v) {
            Ok(_) => false,
            Err(pu) => {
                self.adj[u as usize].insert(pu, v);
                let pv = self.adj[v as usize].binary_search(&u).unwrap_err();
                self.adj[v as usize].insert(pv, u);
                self.edges += 1;
                true
            }
        }
    }

    /// Remove the edge `{u, v}`. Returns true if it was present.
    pub fn remove_edge(&mut self, u: u32, v: u32) -> bool {
        if let Ok(pu) = self.adj[u as usize].binary_search(&v) {
            self.adj[u as usize].remove(pu);
            let pv = self.adj[v as usize].binary_search(&u).unwrap();
            self.adj[v as usize].remove(pv);
            self.edges -= 1;
            true
        } else {
            false
        }
    }

    /// Adjacency test.
    #[inline]
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.adj[u as usize].binary_search(&v).is_ok()
    }

    /// Neighbors of `u`, sorted.
    #[inline]
    pub fn neighbors(&self, u: u32) -> &[u32] {
        &self.adj[u as usize]
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: u32) -> usize {
        self.adj[u as usize].len()
    }

    /// Maximum degree (0 for the empty graph) — the paper's "degree of a
    /// structure" is the maximum degree of its Gaifman graph.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Iterate over edges as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, ns)| {
            let u = u as u32;
            ns.iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Iterate over vertices.
    pub fn vertices(&self) -> impl Iterator<Item = u32> {
        0..self.vertex_count() as u32
    }

    /// The **induced subgraph** on `keep`, with vertices renumbered densely;
    /// returns the old-of-new map alongside.
    pub fn induced(&self, keep: &BitSet) -> (Graph, Vec<u32>) {
        debug_assert_eq!(keep.capacity(), self.vertex_count());
        let old_of_new: Vec<u32> = keep.iter().map(|i| i as u32).collect();
        let mut new_of_old = vec![u32::MAX; self.vertex_count()];
        for (new, &old) in old_of_new.iter().enumerate() {
            new_of_old[old as usize] = new as u32;
        }
        let mut g = Graph::new(old_of_new.len());
        for &old in &old_of_new {
            for &w in self.neighbors(old) {
                let nw = new_of_old[w as usize];
                if nw != u32::MAX {
                    g.add_edge(new_of_old[old as usize], nw);
                }
            }
        }
        (g, old_of_new)
    }

    /// `G − B`: remove the vertices in `removed` (paper notation, §3).
    /// Vertices are renumbered; the old-of-new map is returned.
    pub fn minus(&self, removed: &BitSet) -> (Graph, Vec<u32>) {
        let mut keep = BitSet::full(self.vertex_count());
        keep.difference_with(removed);
        self.induced(&keep)
    }

    /// Connected components, as a vector of vertex sets.
    pub fn components(&self) -> Vec<Vec<u32>> {
        let n = self.vertex_count();
        let mut seen = vec![false; n];
        let mut out = Vec::new();
        let mut stack = Vec::new();
        for s in 0..n {
            if seen[s] {
                continue;
            }
            seen[s] = true;
            stack.push(s as u32);
            let mut comp = Vec::new();
            while let Some(u) = stack.pop() {
                comp.push(u);
                for &v in self.neighbors(u) {
                    if !seen[v as usize] {
                        seen[v as usize] = true;
                        stack.push(v);
                    }
                }
            }
            comp.sort_unstable();
            out.push(comp);
        }
        out
    }

    /// True when the graph is connected (the empty graph counts as connected).
    pub fn is_connected(&self) -> bool {
        self.components().len() <= 1
    }

    /// Single-source BFS distances; `u32::MAX` marks unreachable vertices.
    pub fn bfs_distances(&self, source: u32) -> Vec<u32> {
        let n = self.vertex_count();
        let mut dist = vec![u32::MAX; n];
        dist[source as usize] = 0;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(source);
        while let Some(u) = queue.pop_front() {
            let du = dist[u as usize];
            for &v in self.neighbors(u) {
                if dist[v as usize] == u32::MAX {
                    dist[v as usize] = du + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// The `d`-neighborhood `N_d(u)` (§2.1): all vertices at distance ≤ d.
    pub fn neighborhood(&self, u: u32, d: usize) -> BitSet {
        let mut out = BitSet::new(self.vertex_count());
        out.insert(u as usize);
        let mut frontier = vec![u];
        for _ in 0..d {
            let mut next = Vec::new();
            for &x in &frontier {
                for &y in self.neighbors(x) {
                    if out.insert(y as usize) {
                        next.push(y);
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }
        out
    }

    /// **Edge contraction** (§2.1): identify `u` and `v` (which need not be
    /// adjacent — for minor-taking we allow identifying any two vertices, the
    /// caller restricts to edges when contracting in the strict sense). The
    /// resulting loop is removed; vertices are renumbered with `v` deleted
    /// and its edges redirected to `u`. Returns the new graph.
    pub fn contract(&self, u: u32, v: u32) -> Graph {
        assert_ne!(u, v, "cannot contract a vertex with itself");
        let n = self.vertex_count();
        // New numbering: delete v, keep order otherwise.
        let renum = |x: u32| -> u32 {
            let x2 = if x == v { u } else { x };
            if x2 > v {
                x2 - 1
            } else {
                x2
            }
        };
        let mut g = Graph::new(n - 1);
        for (a, b) in self.edges() {
            let (na, nb) = (renum(a), renum(b));
            if na != nb {
                g.add_edge(na, nb);
            }
        }
        g
    }

    /// Convert to a σ-structure over the vocabulary `{E/2}` with a
    /// **symmetric** edge relation (both orientations of every edge).
    pub fn to_structure(&self) -> Structure {
        let mut s = Structure::new(Vocabulary::digraph(), self.vertex_count());
        for (u, v) in self.edges() {
            s.add_tuple(SymbolId(0), &[Elem(u), Elem(v)]).unwrap();
            s.add_tuple(SymbolId(0), &[Elem(v), Elem(u)]).unwrap();
        }
        s
    }

    /// The **complement** graph.
    pub fn complement(&self) -> Graph {
        let n = self.vertex_count();
        let mut g = Graph::new(n);
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if !self.has_edge(u, v) {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph(n={}, m={}, edges={:?})",
            self.vertex_count(),
            self.edge_count(),
            self.edges().collect::<Vec<_>>()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_remove_edges() {
        let mut g = Graph::new(4);
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(1, 0));
        assert!(!g.add_edge(2, 2)); // loops ignored
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(1, 0));
        assert!(g.remove_edge(0, 1));
        assert!(!g.remove_edge(0, 1));
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.neighbors(0), &[1, 2, 3]);
        assert_eq!(g.neighbors(2), &[0]);
    }

    #[test]
    fn components_and_connectivity() {
        let g = Graph::from_edges(5, &[(0, 1), (2, 3)]);
        let comps = g.components();
        assert_eq!(comps.len(), 3);
        assert!(!g.is_connected());
        let h = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        assert!(h.is_connected());
    }

    #[test]
    fn bfs_and_neighborhoods() {
        // Path 0-1-2-3-4
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let d = g.bfs_distances(0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        let n1 = g.neighborhood(2, 1);
        assert_eq!(n1.iter().collect::<Vec<_>>(), vec![1, 2, 3]);
        let n0 = g.neighborhood(2, 0);
        assert_eq!(n0.iter().collect::<Vec<_>>(), vec![2]);
        let nbig = g.neighborhood(0, 10);
        assert_eq!(nbig.len(), 5);
    }

    #[test]
    fn induced_and_minus() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let (h, old) = g.minus(&BitSet::from_indices(4, [1]));
        assert_eq!(h.vertex_count(), 3);
        assert_eq!(old, vec![0, 2, 3]);
        assert_eq!(h.edge_count(), 1); // only 2-3 survives
        assert!(h.has_edge(1, 2));
    }

    #[test]
    fn contraction_triangle_to_edge() {
        // Triangle: contracting one edge gives a single edge (loop removed,
        // parallel edges merged).
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let h = g.contract(0, 1);
        assert_eq!(h.vertex_count(), 2);
        assert_eq!(h.edge_count(), 1);
    }

    #[test]
    fn contraction_k33_matching_gives_k4_like() {
        // Contracting a perfect-matching edge of K_{2,2} (a 4-cycle) yields a
        // triangle-ish multigraph simplified to: path/triangle check.
        let g = Graph::from_edges(4, &[(0, 2), (0, 3), (1, 2), (1, 3)]);
        let h = g.contract(0, 2);
        assert_eq!(h.vertex_count(), 3);
        // Edges: {0,2(old3)}, {1,0}, {1,2(old3)} → triangle.
        assert_eq!(h.edge_count(), 3);
    }

    #[test]
    fn to_structure_is_symmetric() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let s = g.to_structure();
        assert!(s.contains_tuple(SymbolId(0), &[Elem(0), Elem(1)]));
        assert!(s.contains_tuple(SymbolId(0), &[Elem(1), Elem(0)]));
        assert_eq!(s.total_tuples(), 2);
    }

    #[test]
    fn complement_of_triangle_is_empty() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(g.complement().edge_count(), 0);
        let e = Graph::new(3);
        assert_eq!(e.complement().edge_count(), 3);
    }

    #[test]
    fn edges_iterator_ordered_pairs() {
        let g = Graph::from_edges(3, &[(2, 1), (0, 2)]);
        let es: Vec<_> = g.edges().collect();
        assert_eq!(es, vec![(0, 2), (1, 2)]);
    }
}
