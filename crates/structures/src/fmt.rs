//! A line-oriented text format for structures.
//!
//! ```text
//! # comment
//! vocab E/2 P/1
//! universe 5
//! E 0 1
//! E 1 2
//! P 3
//! ```
//!
//! The format exists so experiment inputs/outputs can be logged, diffed, and
//! replayed; `parse(render(s)) == s` for every structure.

use crate::error::StructureError;
use crate::structure::Structure;
use crate::vocab::Vocabulary;

impl Structure {
    /// Render to the text format.
    pub fn to_text(&self) -> String {
        let mut out = String::from("vocab");
        for (_, sym) in self.vocab().iter() {
            out.push_str(&format!(" {}/{}", sym.name, sym.arity));
        }
        out.push('\n');
        out.push_str(&format!("universe {}\n", self.universe_size()));
        for (id, rel) in self.relations() {
            let name = &self.vocab().symbol(id).name;
            for t in rel.iter() {
                out.push_str(name);
                for e in t {
                    out.push_str(&format!(" {e}"));
                }
                out.push('\n');
            }
        }
        out
    }

    /// Parse the text format.
    pub fn from_text(text: &str) -> Result<Structure, StructureError> {
        let mut vocab: Option<Vocabulary> = None;
        let mut structure: Option<Structure> = None;
        for (lineno0, raw) in text.lines().enumerate() {
            let lineno = lineno0 + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let head = parts.next().expect("non-empty line has a head token");
            match head {
                "vocab" => {
                    let mut b = Vocabulary::builder();
                    for item in parts {
                        let (name, arity) =
                            item.split_once('/').ok_or_else(|| StructureError::Parse {
                                message: format!("bad symbol spec {item:?}, want name/arity"),
                                line: lineno,
                            })?;
                        let arity: usize = arity.parse().map_err(|_| StructureError::Parse {
                            message: format!("bad arity in {item:?}"),
                            line: lineno,
                        })?;
                        b = b.symbol(name, arity);
                    }
                    vocab = Some(b.build());
                }
                "universe" => {
                    let v = vocab.clone().ok_or_else(|| StructureError::Parse {
                        message: "universe before vocab".into(),
                        line: lineno,
                    })?;
                    let n: usize = parts.next().and_then(|t| t.parse().ok()).ok_or_else(|| {
                        StructureError::Parse {
                            message: "universe needs a size".into(),
                            line: lineno,
                        }
                    })?;
                    structure = Some(Structure::new(v, n));
                }
                sym => {
                    let s = structure.as_mut().ok_or_else(|| StructureError::Parse {
                        message: "tuple before universe".into(),
                        line: lineno,
                    })?;
                    let id = s.vocab().lookup(sym).ok_or_else(|| StructureError::Parse {
                        message: format!("unknown symbol {sym:?}"),
                        line: lineno,
                    })?;
                    let mut tuple: Vec<u32> = Vec::new();
                    for t in parts {
                        tuple.push(t.parse().map_err(|_| StructureError::Parse {
                            message: format!("bad element {t:?}"),
                            line: lineno,
                        })?);
                    }
                    s.add_tuple_ids(id.index(), &tuple)
                        .map_err(|e| StructureError::Parse {
                            message: e.to_string(),
                            line: lineno,
                        })?;
                }
            }
        }
        structure.ok_or_else(|| StructureError::Parse {
            message: "no universe line".into(),
            line: text.lines().count(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::Vocabulary;

    fn sample() -> Structure {
        let v = Vocabulary::from_pairs([("E", 2), ("P", 1)]);
        let mut s = Structure::new(v, 5);
        s.add_tuple_ids(0, &[0, 1]).unwrap();
        s.add_tuple_ids(0, &[1, 2]).unwrap();
        s.add_tuple_ids(1, &[3]).unwrap();
        s
    }

    #[test]
    fn roundtrip() {
        let s = sample();
        let text = s.to_text();
        let back = Structure::from_text(&text).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn parses_comments_and_blanks() {
        let text = "# header\n\nvocab E/2\nuniverse 2\n\nE 0 1\n# done\n";
        let s = Structure::from_text(text).unwrap();
        assert_eq!(s.universe_size(), 2);
        assert_eq!(s.total_tuples(), 1);
    }

    #[test]
    fn error_on_unknown_symbol() {
        let text = "vocab E/2\nuniverse 2\nQ 0 1\n";
        let err = Structure::from_text(text).unwrap_err();
        assert!(matches!(err, StructureError::Parse { line: 3, .. }));
    }

    #[test]
    fn error_on_missing_universe() {
        let err = Structure::from_text("vocab E/2\n").unwrap_err();
        assert!(matches!(err, StructureError::Parse { .. }));
    }

    #[test]
    fn error_on_bad_arity_spec() {
        let err = Structure::from_text("vocab E-2\nuniverse 1\n").unwrap_err();
        assert!(matches!(err, StructureError::Parse { line: 1, .. }));
    }

    #[test]
    fn error_on_out_of_range_tuple() {
        let err = Structure::from_text("vocab E/2\nuniverse 2\nE 0 7\n").unwrap_err();
        assert!(matches!(err, StructureError::Parse { line: 3, .. }));
    }

    #[test]
    fn zero_arity_symbols_roundtrip() {
        let v = Vocabulary::from_pairs([("T", 0)]);
        let mut s = Structure::new(v, 1);
        s.add_tuple_ids(0, &[]).unwrap();
        let back = Structure::from_text(&s.to_text()).unwrap();
        assert_eq!(s, back);
        assert!(back.relation(crate::vocab::SymbolId(0)).len() == 1);
    }
}
