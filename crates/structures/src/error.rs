//! Error type for structure construction and manipulation.

use std::fmt;

/// Errors raised when building or mutating structures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StructureError {
    /// A tuple's length does not match the arity of the symbol it was added to.
    ArityMismatch {
        /// Symbol name involved.
        symbol: String,
        /// Declared arity of the symbol.
        expected: usize,
        /// Length of the offending tuple.
        got: usize,
    },
    /// A tuple references an element outside the universe `0..n`.
    ElementOutOfRange {
        /// The offending element index.
        element: u32,
        /// Size of the universe.
        universe: usize,
    },
    /// A symbol id does not exist in the vocabulary.
    UnknownSymbol {
        /// The name or index that failed to resolve.
        name: String,
    },
    /// Two structures were combined but their vocabularies differ.
    VocabularyMismatch,
    /// A parse error in the text format.
    Parse {
        /// Human-readable description of the problem.
        message: String,
        /// 1-based line on which it occurred.
        line: usize,
    },
    /// A store or index outgrew a fixed-width id space (e.g. more than
    /// `u32::MAX` rows in a row-id index). Raised as a typed error instead
    /// of a debug-only assert so release builds fail loudly rather than
    /// silently wrapping at 10⁸-row scale.
    CapacityExceeded {
        /// What ran out of id space ("row id", "dictionary id", ...).
        what: &'static str,
        /// The count that no longer fits.
        requested: usize,
        /// The largest representable count.
        limit: usize,
    },
}

impl fmt::Display for StructureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StructureError::ArityMismatch {
                symbol,
                expected,
                got,
            } => write!(
                f,
                "arity mismatch for symbol {symbol}: expected {expected}, got {got}"
            ),
            StructureError::ElementOutOfRange { element, universe } => write!(
                f,
                "element {element} out of range for universe of size {universe}"
            ),
            StructureError::UnknownSymbol { name } => write!(f, "unknown relation symbol {name}"),
            StructureError::VocabularyMismatch => {
                write!(f, "structures are over different vocabularies")
            }
            StructureError::Parse { message, line } => {
                write!(f, "parse error on line {line}: {message}")
            }
            StructureError::CapacityExceeded {
                what,
                requested,
                limit,
            } => write!(
                f,
                "capacity exceeded: {what} count {requested} exceeds representable limit {limit}"
            ),
        }
    }
}

impl std::error::Error for StructureError {}
