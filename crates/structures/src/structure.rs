//! Finite σ-structures.

use std::fmt;

use crate::elem::Elem;
use crate::error::StructureError;
use crate::vocab::{SymbolId, Vocabulary};

/// The interpretation of one relation symbol: a set of tuples.
///
/// Tuples are kept sorted lexicographically and deduplicated, so relation
/// equality is structural equality and membership is a binary search.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Relation {
    arity: usize,
    tuples: Vec<Box<[Elem]>>,
}

impl Relation {
    /// An empty relation of the given arity.
    pub fn new(arity: usize) -> Self {
        Relation {
            arity,
            tuples: Vec::new(),
        }
    }

    /// The arity of the relation.
    #[inline]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    #[inline]
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when the relation is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Membership test (binary search).
    pub fn contains(&self, t: &[Elem]) -> bool {
        debug_assert_eq!(t.len(), self.arity);
        self.tuples
            .binary_search_by(|probe| probe.as_ref().cmp(t))
            .is_ok()
    }

    /// Insert a tuple, keeping sort order. Returns true if newly inserted.
    pub fn insert(&mut self, t: &[Elem]) -> bool {
        debug_assert_eq!(t.len(), self.arity);
        match self.tuples.binary_search_by(|probe| probe.as_ref().cmp(t)) {
            Ok(_) => false,
            Err(pos) => {
                self.tuples.insert(pos, t.to_vec().into_boxed_slice());
                true
            }
        }
    }

    /// Remove a tuple. Returns true if it was present.
    pub fn remove(&mut self, t: &[Elem]) -> bool {
        match self.tuples.binary_search_by(|probe| probe.as_ref().cmp(t)) {
            Ok(pos) => {
                self.tuples.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Iterate over the tuples in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = &[Elem]> {
        self.tuples.iter().map(|t| t.as_ref())
    }

    /// The `i`-th tuple in lexicographic order.
    pub fn tuple(&self, i: usize) -> &[Elem] {
        &self.tuples[i]
    }

    /// True when every tuple of `self` is a tuple of `other`.
    pub fn is_subset(&self, other: &Relation) -> bool {
        debug_assert_eq!(self.arity, other.arity);
        // Both sorted: merge scan.
        let mut j = 0;
        for t in &self.tuples {
            while j < other.tuples.len() && other.tuples[j].as_ref() < t.as_ref() {
                j += 1;
            }
            if j >= other.tuples.len() || other.tuples[j].as_ref() != t.as_ref() {
                return false;
            }
            j += 1;
        }
        true
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set()
            .entries(self.tuples.iter().map(|t| t.as_ref()))
            .finish()
    }
}

/// A finite relational structure **A** = (A, R₁^A, …, R_m^A).
///
/// The universe is `{0, …, n-1}` (elements are [`Elem`] indices); the
/// interpretation of each symbol of the [`Vocabulary`] is a [`Relation`].
///
/// Structural equality (`==`) is equality of vocabulary, universe size, and
/// relations — i.e. equality *as labelled structures*, not isomorphism
/// (isomorphism lives in `hp-hom`).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Structure {
    vocab: Vocabulary,
    universe: usize,
    relations: Vec<Relation>,
}

impl Structure {
    /// The empty-relations structure over `universe` elements.
    pub fn new(vocab: Vocabulary, universe: usize) -> Self {
        let relations = vocab.iter().map(|(_, s)| Relation::new(s.arity)).collect();
        Structure {
            vocab,
            universe,
            relations,
        }
    }

    /// Start building a structure with bulk tuple loading.
    pub fn builder(vocab: Vocabulary, universe: usize) -> StructureBuilder {
        StructureBuilder {
            inner: Structure::new(vocab, universe),
        }
    }

    /// The structure's vocabulary.
    #[inline]
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Size of the universe.
    #[inline]
    pub fn universe_size(&self) -> usize {
        self.universe
    }

    /// Iterate over the universe.
    pub fn elements(&self) -> impl Iterator<Item = Elem> {
        (0..self.universe as u32).map(Elem)
    }

    /// The interpretation of a symbol.
    #[inline]
    pub fn relation(&self, id: SymbolId) -> &Relation {
        &self.relations[id.index()]
    }

    /// Iterate over `(id, relation)` pairs.
    pub fn relations(&self) -> impl Iterator<Item = (SymbolId, &Relation)> {
        self.relations
            .iter()
            .enumerate()
            .map(|(i, r)| (SymbolId::from(i), r))
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.iter().map(Relation::len).sum()
    }

    /// Add a tuple to a relation, validating arity and range.
    pub fn add_tuple(&mut self, sym: SymbolId, t: &[Elem]) -> Result<bool, StructureError> {
        let arity = self.vocab.arity(sym);
        if t.len() != arity {
            return Err(StructureError::ArityMismatch {
                symbol: self.vocab.symbol(sym).name.clone(),
                expected: arity,
                got: t.len(),
            });
        }
        for &e in t {
            if e.index() >= self.universe {
                return Err(StructureError::ElementOutOfRange {
                    element: e.0,
                    universe: self.universe,
                });
            }
        }
        Ok(self.relations[sym.index()].insert(t))
    }

    /// Convenience: add a tuple given a raw symbol index and raw element ids.
    pub fn add_tuple_ids(&mut self, sym: usize, t: &[u32]) -> Result<bool, StructureError> {
        let elems: Vec<Elem> = t.iter().map(|&v| Elem(v)).collect();
        self.add_tuple(SymbolId::from(sym), &elems)
    }

    /// Remove a tuple from a relation. Returns true if it was present.
    pub fn remove_tuple(&mut self, sym: SymbolId, t: &[Elem]) -> bool {
        self.relations[sym.index()].remove(t)
    }

    /// Membership test.
    pub fn contains_tuple(&self, sym: SymbolId, t: &[Elem]) -> bool {
        self.relations[sym.index()].contains(t)
    }

    /// True when `self` is a **substructure** of `other` *as labelled
    /// structures*: same vocabulary, `|A| ≤ |B|` with universe `0..n`
    /// identified with the first `n` elements of `other`, and every relation
    /// of `self` a subset of the corresponding relation of `other`.
    ///
    /// Substructures in the paper's sense (§2.1) are *not necessarily
    /// induced*; this check matches that definition for identity embeddings.
    pub fn is_substructure_of(&self, other: &Structure) -> bool {
        self.vocab == other.vocab
            && self.universe <= other.universe
            && self
                .relations
                .iter()
                .zip(&other.relations)
                .all(|(a, b)| a.is_subset(b))
    }

    /// True when `self` is a **proper** substructure of `other` (substructure
    /// and not equal).
    pub fn is_proper_substructure_of(&self, other: &Structure) -> bool {
        self.is_substructure_of(other) && self != other
    }
}

impl fmt::Debug for Structure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Structure(|A|={}, {:?})", self.universe, self.vocab)?;
        for (id, r) in self.relations() {
            writeln!(f, "  {} = {:?}", self.vocab.symbol(id).name, r)?;
        }
        Ok(())
    }
}

/// Bulk builder for [`Structure`] — identical to mutating a fresh structure,
/// provided for fluent construction in tests and generators.
pub struct StructureBuilder {
    inner: Structure,
}

impl StructureBuilder {
    /// Add a tuple by raw ids (panics on arity/range errors — builder misuse
    /// is a programming error).
    pub fn tuple(mut self, sym: usize, t: &[u32]) -> Self {
        self.inner
            .add_tuple_ids(sym, t)
            .expect("invalid tuple in StructureBuilder");
        self
    }

    /// Finish building.
    pub fn build(self) -> Structure {
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digraph3() -> Structure {
        Structure::builder(Vocabulary::digraph(), 3)
            .tuple(0, &[0, 1])
            .tuple(0, &[1, 2])
            .build()
    }

    #[test]
    fn add_and_contains() {
        let s = digraph3();
        assert!(s.contains_tuple(SymbolId(0), &[Elem(0), Elem(1)]));
        assert!(!s.contains_tuple(SymbolId(0), &[Elem(1), Elem(0)]));
        assert_eq!(s.total_tuples(), 2);
    }

    #[test]
    fn duplicate_tuples_are_deduped() {
        let mut s = digraph3();
        assert!(!s.add_tuple_ids(0, &[0, 1]).unwrap());
        assert_eq!(s.total_tuples(), 2);
    }

    #[test]
    fn arity_and_range_validation() {
        let mut s = digraph3();
        assert!(matches!(
            s.add_tuple_ids(0, &[0]),
            Err(StructureError::ArityMismatch { .. })
        ));
        assert!(matches!(
            s.add_tuple_ids(0, &[0, 9]),
            Err(StructureError::ElementOutOfRange { .. })
        ));
    }

    #[test]
    fn remove_tuple_works() {
        let mut s = digraph3();
        assert!(s.remove_tuple(SymbolId(0), &[Elem(0), Elem(1)]));
        assert!(!s.remove_tuple(SymbolId(0), &[Elem(0), Elem(1)]));
        assert_eq!(s.total_tuples(), 1);
    }

    #[test]
    fn substructure_relation() {
        let big = digraph3();
        let mut small = Structure::new(Vocabulary::digraph(), 3);
        small.add_tuple_ids(0, &[0, 1]).unwrap();
        assert!(small.is_substructure_of(&big));
        assert!(small.is_proper_substructure_of(&big));
        assert!(big.is_substructure_of(&big));
        assert!(!big.is_proper_substructure_of(&big));
        assert!(!big.is_substructure_of(&small));
    }

    #[test]
    fn relation_subset_merge_scan() {
        let mut a = Relation::new(1);
        let mut b = Relation::new(1);
        for i in [1u32, 3, 5] {
            a.insert(&[Elem(i)]);
        }
        for i in 0u32..7 {
            b.insert(&[Elem(i)]);
        }
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.is_subset(&a));
    }

    #[test]
    fn tuples_iterate_sorted() {
        let mut r = Relation::new(2);
        r.insert(&[Elem(2), Elem(0)]);
        r.insert(&[Elem(0), Elem(1)]);
        r.insert(&[Elem(0), Elem(0)]);
        let v: Vec<Vec<u32>> = r.iter().map(|t| t.iter().map(|e| e.0).collect()).collect();
        assert_eq!(v, vec![vec![0, 0], vec![0, 1], vec![2, 0]]);
    }

    #[test]
    fn structural_equality() {
        assert_eq!(digraph3(), digraph3());
        let mut other = digraph3();
        other.add_tuple_ids(0, &[2, 0]).unwrap();
        assert_ne!(digraph3(), other);
    }
}
