//! Finite σ-structures.

use std::fmt;

use crate::elem::Elem;
use crate::error::StructureError;
use crate::row::{Row, RowRef};
use crate::store::TupleStore;
use crate::vocab::{SymbolId, Vocabulary};

/// The interpretation of one relation symbol: a set of tuples.
///
/// Backed by a columnar [`TupleStore`] (dictionary-encoded id planes, one
/// per column), kept **sealed** — sorted lexicographically and
/// deduplicated — after every `&mut self` method returns. Relation equality
/// is therefore structural equality, membership is a chunked galloping
/// search, and iteration hands out zero-copy [`RowRef`] handles in
/// lexicographic order.
///
/// For bulk loads use [`extend_tuples`](Relation::extend_tuples), which
/// buffers into the store's pending delta and seals once, instead of n
/// shifting [`insert`](Relation::insert)s.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Relation {
    store: TupleStore,
}

impl Relation {
    /// An empty relation of the given arity.
    pub fn new(arity: usize) -> Self {
        Relation {
            store: TupleStore::new(arity),
        }
    }

    /// Wrap a [`TupleStore`], sealing it so the canonical-order invariant
    /// holds.
    pub fn from_store(mut store: TupleStore) -> Self {
        store.seal();
        Relation { store }
    }

    /// The backing columnar store (always sealed).
    #[inline]
    pub fn store(&self) -> &TupleStore {
        &self.store
    }

    /// The arity of the relation.
    #[inline]
    pub fn arity(&self) -> usize {
        self.store.arity()
    }

    /// Number of tuples.
    #[inline]
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True when the relation is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Membership test (chunked galloping search).
    pub fn contains<R: Row>(&self, t: R) -> bool {
        self.store.contains(t)
    }

    /// Insert a tuple, keeping sort order. Returns true if newly inserted.
    pub fn insert<R: Row>(&mut self, t: R) -> bool {
        self.store.insert(t)
    }

    /// Bulk-insert: buffer every tuple into the pending delta, then sort,
    /// dedup, and merge **once**. Returns the number of newly inserted
    /// tuples. This is the O((n+m)·log m) path generators and builders use
    /// in place of m shifting inserts.
    pub fn extend_tuples<I, T>(&mut self, tuples: I) -> usize
    where
        I: IntoIterator<Item = T>,
        T: Row,
    {
        let before = self.store.len();
        for t in tuples {
            self.store.push(t);
        }
        self.store.seal();
        self.store.len() - before
    }

    /// Set-union `other` into `self` via one sorted-run merge. Returns the
    /// number of newly inserted tuples.
    pub fn merge(&mut self, other: &Relation) -> usize {
        self.merge_store(other.store())
    }

    /// Set-union a sealed [`TupleStore`] into `self` (the evaluator's
    /// delta-merge). Returns the number of newly inserted tuples.
    pub fn merge_store(&mut self, other: &TupleStore) -> usize {
        let before = self.store.len();
        self.store.merge(other);
        self.store.len() - before
    }

    /// Tuples of `self` absent from `other`, as a sealed store (the
    /// evaluator's new-facts filter).
    pub fn difference(&self, other: &Relation) -> TupleStore {
        self.store.difference(other.store())
    }

    /// Remove a tuple. Returns true if it was present.
    pub fn remove<R: Row>(&mut self, t: R) -> bool {
        self.store.remove(t)
    }

    /// Bulk-remove: drop every tuple of the sealed store `other` in one
    /// galloping [`TupleStore::difference`] pass. Returns the number of
    /// tuples actually removed.
    pub fn remove_tuples(&mut self, other: &TupleStore) -> usize {
        let before = self.store.len();
        self.store = self.store.difference(other);
        before - self.store.len()
    }

    /// Drop all tuples, keeping the arena allocation.
    pub fn clear(&mut self) {
        self.store.clear()
    }

    /// Iterate over the tuples in lexicographic order (zero-copy rows).
    pub fn iter(&self) -> crate::store::Rows<'_> {
        self.store.iter()
    }

    /// The `i`-th tuple in lexicographic order.
    pub fn tuple(&self, i: usize) -> RowRef<'_> {
        self.store.row(i)
    }

    /// True when every tuple of `self` is a tuple of `other`.
    pub fn is_subset(&self, other: &Relation) -> bool {
        self.store.is_subset(other.store())
    }

    /// Heap bytes held by the backing arena (see
    /// [`TupleStore::heap_bytes`]).
    pub fn heap_bytes(&self) -> usize {
        self.store.heap_bytes()
    }
}

impl<'a> IntoIterator for &'a Relation {
    type Item = RowRef<'a>;
    type IntoIter = crate::store::Rows<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.store, f)
    }
}

/// A finite relational structure **A** = (A, R₁^A, …, R_m^A).
///
/// The universe is `{0, …, n-1}` (elements are [`Elem`] indices); the
/// interpretation of each symbol of the [`Vocabulary`] is a [`Relation`].
///
/// Structural equality (`==`) is equality of vocabulary, universe size, and
/// relations — i.e. equality *as labelled structures*, not isomorphism
/// (isomorphism lives in `hp-hom`).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Structure {
    vocab: Vocabulary,
    universe: usize,
    relations: Vec<Relation>,
}

impl Structure {
    /// The empty-relations structure over `universe` elements.
    pub fn new(vocab: Vocabulary, universe: usize) -> Self {
        let relations = vocab.iter().map(|(_, s)| Relation::new(s.arity)).collect();
        Structure {
            vocab,
            universe,
            relations,
        }
    }

    /// Start building a structure with bulk tuple loading.
    pub fn builder(vocab: Vocabulary, universe: usize) -> StructureBuilder {
        let buffers = vocab.iter().map(|_| (Vec::new(), 0)).collect();
        StructureBuilder {
            vocab,
            universe,
            buffers,
        }
    }

    /// The structure's vocabulary.
    #[inline]
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Size of the universe.
    #[inline]
    pub fn universe_size(&self) -> usize {
        self.universe
    }

    /// Iterate over the universe.
    pub fn elements(&self) -> impl Iterator<Item = Elem> {
        (0..self.universe as u32).map(Elem)
    }

    /// The interpretation of a symbol.
    #[inline]
    pub fn relation(&self, id: SymbolId) -> &Relation {
        &self.relations[id.index()]
    }

    /// Iterate over `(id, relation)` pairs.
    pub fn relations(&self) -> impl Iterator<Item = (SymbolId, &Relation)> {
        self.relations
            .iter()
            .enumerate()
            .map(|(i, r)| (SymbolId::from(i), r))
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.iter().map(Relation::len).sum()
    }

    /// Heap bytes held by all relation arenas (see
    /// [`Relation::heap_bytes`]); the universe itself stores nothing.
    pub fn heap_bytes(&self) -> usize {
        self.relations.iter().map(Relation::heap_bytes).sum()
    }

    /// Add a tuple to a relation, validating arity and range.
    pub fn add_tuple<R: Row>(&mut self, sym: SymbolId, t: R) -> Result<bool, StructureError> {
        let arity = self.vocab.arity(sym);
        if t.width() != arity {
            return Err(StructureError::ArityMismatch {
                symbol: self.vocab.symbol(sym).name.clone(),
                expected: arity,
                got: t.width(),
            });
        }
        for c in 0..arity {
            let e = t.at(c);
            if e.index() >= self.universe {
                return Err(StructureError::ElementOutOfRange {
                    element: e.0,
                    universe: self.universe,
                });
            }
        }
        Ok(self.relations[sym.index()].insert(t))
    }

    /// Convenience: add a tuple given a raw symbol index and raw element ids.
    pub fn add_tuple_ids(&mut self, sym: usize, t: &[u32]) -> Result<bool, StructureError> {
        let elems: Vec<Elem> = t.iter().map(|&v| Elem(v)).collect();
        self.add_tuple(SymbolId::from(sym), &elems)
    }

    /// Bulk-add tuples to one relation, validating each, with a single
    /// sort+dedup+merge at the end ([`Relation::extend_tuples`]). Returns the
    /// number of newly inserted tuples. On error nothing is inserted.
    pub fn extend_tuples<I, T>(&mut self, sym: SymbolId, tuples: I) -> Result<usize, StructureError>
    where
        I: IntoIterator<Item = T>,
        T: Row,
    {
        let arity = self.vocab.arity(sym);
        let mut buf: Vec<Elem> = Vec::new();
        let mut count = 0usize;
        for t in tuples {
            if t.width() != arity {
                return Err(StructureError::ArityMismatch {
                    symbol: self.vocab.symbol(sym).name.clone(),
                    expected: arity,
                    got: t.width(),
                });
            }
            for c in 0..arity {
                let e = t.at(c);
                if e.index() >= self.universe {
                    return Err(StructureError::ElementOutOfRange {
                        element: e.0,
                        universe: self.universe,
                    });
                }
            }
            t.append_to(&mut buf);
            count += 1;
        }
        let rel = &mut self.relations[sym.index()];
        if arity == 0 {
            // Nullary tuples leave `buf` empty; `chunks_exact(0)` is
            // undefined, so feed the counted empty rows directly.
            return Ok(rel.extend_tuples((0..count).map(|_| [].as_slice())));
        }
        Ok(rel.extend_tuples(buf.chunks_exact(arity)))
    }

    /// Remove a tuple from a relation. Returns true if it was present.
    pub fn remove_tuple<R: Row>(&mut self, sym: SymbolId, t: R) -> bool {
        self.relations[sym.index()].remove(t)
    }

    /// Bulk-remove a sealed batch of tuples from one relation (the EDB
    /// delete path of incremental maintenance). Returns the number of
    /// tuples actually removed.
    pub fn remove_tuples(&mut self, sym: SymbolId, tuples: &TupleStore) -> usize {
        debug_assert_eq!(tuples.arity(), self.vocab.arity(sym));
        self.relations[sym.index()].remove_tuples(tuples)
    }

    /// Membership test.
    pub fn contains_tuple<R: Row>(&self, sym: SymbolId, t: R) -> bool {
        self.relations[sym.index()].contains(t)
    }

    /// True when `self` is a **substructure** of `other` *as labelled
    /// structures*: same vocabulary, `|A| ≤ |B|` with universe `0..n`
    /// identified with the first `n` elements of `other`, and every relation
    /// of `self` a subset of the corresponding relation of `other`.
    ///
    /// Substructures in the paper's sense (§2.1) are *not necessarily
    /// induced*; this check matches that definition for identity embeddings.
    pub fn is_substructure_of(&self, other: &Structure) -> bool {
        self.vocab == other.vocab
            && self.universe <= other.universe
            && self
                .relations
                .iter()
                .zip(&other.relations)
                .all(|(a, b)| a.is_subset(b))
    }

    /// True when `self` is a **proper** substructure of `other` (substructure
    /// and not equal).
    pub fn is_proper_substructure_of(&self, other: &Structure) -> bool {
        self.is_substructure_of(other) && self != other
    }
}

impl fmt::Debug for Structure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Structure(|A|={}, {:?})", self.universe, self.vocab)?;
        for (id, r) in self.relations() {
            writeln!(f, "  {} = {:?}", self.vocab.symbol(id).name, r)?;
        }
        Ok(())
    }
}

/// Bulk builder for [`Structure`] — semantically identical to mutating a
/// fresh structure tuple-by-tuple, but tuples are buffered per symbol and
/// sealed with **one** sort+dedup+merge per relation in
/// [`build`](StructureBuilder::build), so an
/// n-tuple load is O(n log n) instead of the O(n²) of n sorted inserts.
pub struct StructureBuilder {
    vocab: Vocabulary,
    universe: usize,
    /// Per-symbol flat tuple buffers plus explicit row counts (the count
    /// cannot be recovered from buffer length for nullary symbols).
    buffers: Vec<(Vec<Elem>, usize)>,
}

impl StructureBuilder {
    /// Add a tuple by raw ids (panics on arity/range errors — builder misuse
    /// is a programming error).
    pub fn tuple(mut self, sym: usize, t: &[u32]) -> Self {
        let arity = self.vocab.arity(SymbolId::from(sym));
        assert_eq!(
            t.len(),
            arity,
            "invalid tuple in StructureBuilder: arity mismatch for symbol {sym}"
        );
        for &v in t {
            assert!(
                (v as usize) < self.universe,
                "invalid tuple in StructureBuilder: element {v} out of range"
            );
        }
        let (buf, rows) = &mut self.buffers[sym];
        buf.extend(t.iter().map(|&v| Elem(v)));
        *rows += 1;
        self
    }

    /// Finish building: seal each buffered relation in one batch.
    pub fn build(self) -> Structure {
        let mut inner = Structure::new(self.vocab, self.universe);
        for (sym, (buf, rows)) in self.buffers.into_iter().enumerate() {
            let arity = inner.vocab.arity(SymbolId::from(sym));
            let rel = &mut inner.relations[sym];
            if arity == 0 {
                rel.extend_tuples((0..rows).map(|_| [].as_slice()));
            } else {
                rel.extend_tuples(buf.chunks_exact(arity));
            }
        }
        inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digraph3() -> Structure {
        Structure::builder(Vocabulary::digraph(), 3)
            .tuple(0, &[0, 1])
            .tuple(0, &[1, 2])
            .build()
    }

    #[test]
    fn add_and_contains() {
        let s = digraph3();
        assert!(s.contains_tuple(SymbolId(0), &[Elem(0), Elem(1)]));
        assert!(!s.contains_tuple(SymbolId(0), &[Elem(1), Elem(0)]));
        assert_eq!(s.total_tuples(), 2);
    }

    #[test]
    fn duplicate_tuples_are_deduped() {
        let mut s = digraph3();
        assert!(!s.add_tuple_ids(0, &[0, 1]).unwrap());
        assert_eq!(s.total_tuples(), 2);
    }

    #[test]
    fn arity_and_range_validation() {
        let mut s = digraph3();
        assert!(matches!(
            s.add_tuple_ids(0, &[0]),
            Err(StructureError::ArityMismatch { .. })
        ));
        assert!(matches!(
            s.add_tuple_ids(0, &[0, 9]),
            Err(StructureError::ElementOutOfRange { .. })
        ));
    }

    #[test]
    fn remove_tuple_works() {
        let mut s = digraph3();
        assert!(s.remove_tuple(SymbolId(0), &[Elem(0), Elem(1)]));
        assert!(!s.remove_tuple(SymbolId(0), &[Elem(0), Elem(1)]));
        assert_eq!(s.total_tuples(), 1);
    }

    #[test]
    fn substructure_relation() {
        let big = digraph3();
        let mut small = Structure::new(Vocabulary::digraph(), 3);
        small.add_tuple_ids(0, &[0, 1]).unwrap();
        assert!(small.is_substructure_of(&big));
        assert!(small.is_proper_substructure_of(&big));
        assert!(big.is_substructure_of(&big));
        assert!(!big.is_proper_substructure_of(&big));
        assert!(!big.is_substructure_of(&small));
    }

    #[test]
    fn relation_subset_merge_scan() {
        let mut a = Relation::new(1);
        let mut b = Relation::new(1);
        for i in [1u32, 3, 5] {
            a.insert(&[Elem(i)]);
        }
        for i in 0u32..7 {
            b.insert(&[Elem(i)]);
        }
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.is_subset(&a));
    }

    #[test]
    fn tuples_iterate_sorted() {
        let mut r = Relation::new(2);
        r.insert(&[Elem(2), Elem(0)]);
        r.insert(&[Elem(0), Elem(1)]);
        r.insert(&[Elem(0), Elem(0)]);
        let v: Vec<Vec<u32>> = r.iter().map(|t| t.iter().map(|e| e.0).collect()).collect();
        assert_eq!(v, vec![vec![0, 0], vec![0, 1], vec![2, 0]]);
    }

    #[test]
    fn structural_equality() {
        assert_eq!(digraph3(), digraph3());
        let mut other = digraph3();
        other.add_tuple_ids(0, &[2, 0]).unwrap();
        assert_ne!(digraph3(), other);
    }
}
