//! Deterministic graph families.

use crate::graph::Graph;

/// The path graph `P_n` on `n` vertices (`n-1` edges).
pub fn path(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 1..n {
        g.add_edge(i as u32 - 1, i as u32);
    }
    g
}

/// The cycle graph `C_n` on `n ≥ 3` vertices.
///
/// # Panics
/// Panics for `n < 3` (smaller "cycles" are not simple graphs).
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs at least 3 vertices");
    let mut g = path(n);
    g.add_edge(n as u32 - 1, 0);
    g
}

/// The complete graph `K_n`.
pub fn clique(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            g.add_edge(u, v);
        }
    }
    g
}

/// The complete bipartite graph `K_{a,b}`: parts `{0..a}` and `{a..a+b}`.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut g = Graph::new(a + b);
    for u in 0..a as u32 {
        for v in 0..b as u32 {
            g.add_edge(u, a as u32 + v);
        }
    }
    g
}

/// The star `S_n`: one hub (vertex 0) with `n` leaves — the paper's §4
/// example of an arbitrarily large graph with no 2-scattered pair until the
/// hub is removed.
pub fn star(n: usize) -> Graph {
    let mut g = Graph::new(n + 1);
    for i in 1..=n as u32 {
        g.add_edge(0, i);
    }
    g
}

/// The `r × c` grid graph. Grids are planar and bipartite with treewidth
/// `min(r, c)` — the paper's witness (§6.2) that H(T(2)) strictly contains
/// T(2).
pub fn grid(rows: usize, cols: usize) -> Graph {
    let mut g = Graph::new(rows * cols);
    let id = |r: usize, c: usize| (r * cols + c) as u32;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                g.add_edge(id(r, c), id(r + 1, c));
            }
        }
    }
    g
}

/// The wheel `W_n` (§6.2): hub (vertex 0) joined to every vertex of a cycle
/// on `{1, …, n}`. `W_n` is 4-colorable, and a core exactly when `n` is odd.
///
/// # Panics
/// Panics for `n < 3`.
pub fn wheel(n: usize) -> Graph {
    assert!(n >= 3, "wheel needs rim of at least 3");
    let mut g = Graph::new(n + 1);
    for i in 1..=n as u32 {
        g.add_edge(0, i);
        let next = if i == n as u32 { 1 } else { i + 1 };
        g.add_edge(i, next);
    }
    g
}

/// The bicycle `B_n = W_n + K_4` (§6.2): disjoint union of the wheel `W_n`
/// and `K_4`. The core of every bicycle is `K_4`.
pub fn bicycle(n: usize) -> Graph {
    let w = wheel(n);
    let base = w.vertex_count() as u32;
    let mut g = Graph::new(w.vertex_count() + 4);
    for (u, v) in w.edges() {
        g.add_edge(u, v);
    }
    for u in 0..4u32 {
        for v in (u + 1)..4 {
            g.add_edge(base + u, base + v);
        }
    }
    g
}

/// The `r × c` **torus** (grid with wraparound): 4-regular for `r, c ≥ 3`,
/// bounded degree yet non-planar for `r, c ≥ 3` (it contains a K₅ minor) —
/// a clean witness that bounded degree neither bounds treewidth nor
/// excludes minors (§5's closing remark, in a denser form).
pub fn torus(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 3 && cols >= 3, "torus needs both sides ≥ 3");
    let mut g = Graph::new(rows * cols);
    let id = |r: usize, c: usize| (r * cols + c) as u32;
    for r in 0..rows {
        for c in 0..cols {
            g.add_edge(id(r, c), id(r, (c + 1) % cols));
            g.add_edge(id(r, c), id((r + 1) % rows, c));
        }
    }
    g
}

/// A complete balanced binary tree with `depth` levels of edges
/// (`2^(depth+1) - 1` vertices). Trees have treewidth 1.
pub fn binary_tree(depth: usize) -> Graph {
    let n = (1usize << (depth + 1)) - 1;
    let mut g = Graph::new(n);
    for i in 1..n {
        g.add_edge(((i - 1) / 2) as u32, i as u32);
    }
    g
}

/// The full `k`-tree on `n ≥ k + 1` vertices built by the canonical
/// construction: start from `K_{k+1}`, then attach each new vertex to the
/// `k`-clique `{v-1, …, v-k}`. Its treewidth is exactly `k`.
pub fn ktree(k: usize, n: usize) -> Graph {
    assert!(n > k, "k-tree needs at least k+1 vertices");
    let mut g = clique(k + 1);
    let mut full = Graph::new(n);
    for (u, v) in g.edges() {
        full.add_edge(u, v);
    }
    g = full;
    for v in (k + 1)..n {
        for j in 1..=k {
            g.add_edge(v as u32, (v - j) as u32);
        }
    }
    g
}

/// The paper's §5 remark: a degree-3 graph containing `K_k` as a minor,
/// built by replacing every vertex of `K_k` with a binary tree with `k-1`
/// leaves and routing each edge of `K_k` through a distinct pair of leaves.
///
/// Witnesses that bounded degree does **not** imply an excluded minor
/// (so Theorem 3.5 is not a special case of Theorem 5.4).
pub fn expanded_clique_degree3(k: usize) -> Graph {
    assert!(k >= 2);
    let leaves = k - 1;
    // Each gadget: a path-of-trees; we use a "caterpillar": spine of
    // `leaves` nodes, each spine node i has one leaf; degree ≤ 3.
    // spine(i) indices: [gadget*(2*leaves) + i], leaf(i): [... + leaves + i].
    let per = 2 * leaves;
    let mut g = Graph::new(k * per);
    let spine = |gad: usize, i: usize| (gad * per + i) as u32;
    let leaf = |gad: usize, i: usize| (gad * per + leaves + i) as u32;
    for gad in 0..k {
        for i in 1..leaves {
            g.add_edge(spine(gad, i - 1), spine(gad, i));
        }
        for i in 0..leaves {
            g.add_edge(spine(gad, i), leaf(gad, i));
        }
    }
    // Connect gadget a's j-th free leaf to gadget b's corresponding leaf,
    // one distinct leaf pair per edge {a, b} of K_k.
    for a in 0..k {
        for b in (a + 1)..k {
            // Gadget a uses leaf index (b - 1) among its k-1 leaves when
            // paired with b; gadget b uses leaf index a.
            let la = leaf(a, b - 1);
            let lb = leaf(b, a);
            g.add_edge(la, lb);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_and_cycle_counts() {
        assert_eq!(path(5).edge_count(), 4);
        assert_eq!(cycle(5).edge_count(), 5);
        assert!(cycle(5).is_connected());
        assert_eq!(path(1).edge_count(), 0);
    }

    #[test]
    fn clique_counts() {
        let g = clique(5);
        assert_eq!(g.edge_count(), 10);
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn complete_bipartite_counts() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.edge_count(), 12);
        assert_eq!(g.degree(0), 4);
        assert_eq!(g.degree(3), 3);
        // No edges within parts.
        assert!(!g.has_edge(0, 1));
        assert!(!g.has_edge(3, 4));
    }

    #[test]
    fn star_is_k1n() {
        let g = star(6);
        assert_eq!(g.vertex_count(), 7);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.degree(0), 6);
        assert_eq!(g.max_degree(), 6);
    }

    #[test]
    fn grid_counts() {
        let g = grid(3, 4);
        assert_eq!(g.vertex_count(), 12);
        assert_eq!(g.edge_count(), 3 * 3 + 2 * 4); // horizontal + vertical
        assert!(g.is_connected());
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn wheel_counts() {
        let g = wheel(5);
        assert_eq!(g.vertex_count(), 6);
        assert_eq!(g.edge_count(), 10); // 5 spokes + 5 rim
        assert_eq!(g.degree(0), 5);
        assert_eq!(g.degree(1), 3);
        // W_3 = K_4.
        let w3 = wheel(3);
        assert_eq!(w3.edge_count(), 6);
        assert_eq!(w3.max_degree(), 3);
    }

    #[test]
    fn bicycle_is_disjoint_wheel_plus_k4() {
        let g = bicycle(5);
        assert_eq!(g.vertex_count(), 6 + 4);
        assert_eq!(g.edge_count(), 10 + 6);
        assert_eq!(g.components().len(), 2);
    }

    #[test]
    fn binary_tree_counts() {
        let g = binary_tree(3);
        assert_eq!(g.vertex_count(), 15);
        assert_eq!(g.edge_count(), 14);
        assert!(g.is_connected());
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn ktree_construction() {
        let g = ktree(2, 8);
        assert!(g.is_connected());
        // A 2-tree on n vertices has 2n - 3 edges.
        assert_eq!(g.edge_count(), 2 * 8 - 3);
        let g3 = ktree(3, 10);
        // A 3-tree on n vertices has 3n - 6 edges.
        assert_eq!(g3.edge_count(), 3 * 10 - 6);
    }

    #[test]
    fn torus_is_4_regular() {
        let g = torus(4, 5);
        assert_eq!(g.vertex_count(), 20);
        assert_eq!(g.edge_count(), 40);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 4);
        }
        assert!(g.is_connected());
        // 3x3 torus: wraparound may merge parallel edges... each vertex
        // still has degree 4 (neighbors distinct for cols ≥ 3).
        assert_eq!(torus(3, 3).max_degree(), 4);
    }

    #[test]
    fn expanded_clique_has_degree_3() {
        for k in 3..=6 {
            let g = expanded_clique_degree3(k);
            assert!(g.max_degree() <= 3, "k={k} gave degree {}", g.max_degree());
            assert!(g.is_connected(), "k={k} not connected");
        }
    }
}
