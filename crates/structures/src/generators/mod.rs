//! Generators for the structure and graph families used throughout the paper
//! and its experiment suite.
//!
//! Deterministic graph families (paths, cycles, cliques, grids, wheels,
//! bicycles, k-trees, tori), directed/relational families (directed paths
//! and cycles, tournaments, down-trees), and seeded random families
//! (Erdős–Rényi, random trees, random partial k-trees, random
//! bounded-degree graphs, random structures) — all re-exported flat at
//! this level.

mod graphs;
mod random;
mod structures;

pub use graphs::*;
pub use random::*;
pub use structures::*;
