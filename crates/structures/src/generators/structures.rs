//! Deterministic relational-structure families (directed, multi-relational).

use crate::elem::Elem;
use crate::structure::Structure;
use crate::vocab::Vocabulary;

/// The directed path `0 → 1 → ⋯ → n-1` over `{E/2}`.
pub fn directed_path(n: usize) -> Structure {
    let mut s = Structure::new(Vocabulary::digraph(), n);
    for i in 1..n {
        s.add_tuple_ids(0, &[i as u32 - 1, i as u32]).unwrap();
    }
    s
}

/// The directed cycle `C_n` (`0 → 1 → ⋯ → n-1 → 0`) over `{E/2}`.
///
/// `C_3` is the structure of Proposition 7.9.
pub fn directed_cycle(n: usize) -> Structure {
    assert!(n >= 1);
    let mut s = directed_path(n);
    s.add_tuple_ids(0, &[n as u32 - 1, 0]).unwrap();
    s
}

/// The transitive tournament on `n` vertices: `i → j` for all `i < j`.
pub fn transitive_tournament(n: usize) -> Structure {
    let mut s = Structure::new(Vocabulary::digraph(), n);
    for i in 0..n as u32 {
        for j in (i + 1)..n as u32 {
            s.add_tuple_ids(0, &[i, j]).unwrap();
        }
    }
    s
}

/// A single directed self-loop — the terminal object of digraphs: every
/// digraph maps homomorphically into it.
pub fn self_loop() -> Structure {
    let mut s = Structure::new(Vocabulary::digraph(), 1);
    s.add_tuple_ids(0, &[0, 0]).unwrap();
    s
}

/// The complete symmetric digraph on `n` vertices without loops — the
/// structure form of `K_n`, target of `n`-colorings.
pub fn complete_digraph(n: usize) -> Structure {
    let mut s = Structure::new(Vocabulary::digraph(), n);
    for i in 0..n as u32 {
        for j in 0..n as u32 {
            if i != j {
                s.add_tuple_ids(0, &[i, j]).unwrap();
            }
        }
    }
    s
}

/// A two-sorted "same-generation" style structure: a balanced binary tree of
/// the given depth with `Down/2` edges plus a unary `Leaf/1` marking the
/// leaves. Used as a Datalog workload.
pub fn down_tree(depth: usize) -> Structure {
    let n = (1usize << (depth + 1)) - 1;
    let v = Vocabulary::from_pairs([("Down", 2), ("Leaf", 1)]);
    let mut s = Structure::new(v, n);
    for i in 1..n {
        s.add_tuple(0usize.into(), &[Elem::from((i - 1) / 2), Elem::from(i)])
            .unwrap();
    }
    let first_leaf = (1usize << depth) - 1;
    for i in first_leaf..n {
        s.add_tuple(1usize.into(), &[Elem::from(i)]).unwrap();
    }
    s
}

/// The canonical structure of "there is a path of length `len`": a directed
/// path with `len` edges. Its canonical conjunctive query is the UCQ
/// disjunct the paper uses in §7 (`ψ_n` = "there is a path of length n").
pub fn path_query_structure(len: usize) -> Structure {
    directed_path(len + 1)
}

/// The number of candidate tuples `Σ_R n^arity(R)` the exhaustive
/// enumerator would toggle — [`for_each_structure`] visits `2^this` many
/// structures and refuses when it exceeds 24 (use this to pre-check
/// feasibility).
pub fn enumeration_tuple_space(vocab: &Vocabulary, n: usize) -> usize {
    vocab
        .iter()
        .map(|(_, s)| {
            if n == 0 && s.arity > 0 {
                0
            } else {
                n.pow(s.arity as u32).max(if s.arity == 0 { 1 } else { 0 })
            }
        })
        .sum()
}

/// Enumerate **every** structure over `vocab` with universe exactly `n`,
/// invoking `f` on each — the exhaustive generator behind the effective
/// procedures of §8 (minimal-model enumeration).
///
/// The number of structures is `2^t` with `t =`
/// [`enumeration_tuple_space`]`(vocab, n)`.
///
/// # Panics
/// Panics when the tuple space exceeds 24 candidate tuples (16.7M
/// structures) — pre-check with [`enumeration_tuple_space`].
pub fn for_each_structure(vocab: &Vocabulary, n: usize, mut f: impl FnMut(Structure)) {
    let exhaustive: Option<std::convert::Infallible> = try_for_each_structure(vocab, n, |s| {
        f(s);
        std::ops::ControlFlow::Continue(())
    });
    debug_assert!(exhaustive.is_none());
}

/// Early-exit variant of [`for_each_structure`]: the callback returns
/// [`ControlFlow`](std::ops::ControlFlow); `Break` stops the enumeration and
/// its payload is returned (so callers can thread a budget stop — or any
/// other reason to abandon the sweep — through). `None` means the sweep
/// was exhaustive.
///
/// # Panics
/// Same feasibility cap as [`for_each_structure`].
pub fn try_for_each_structure<B>(
    vocab: &Vocabulary,
    n: usize,
    mut f: impl FnMut(Structure) -> std::ops::ControlFlow<B>,
) -> Option<B> {
    let mut all_tuples: Vec<(usize, Vec<u32>)> = Vec::new();
    for (id, sym) in vocab.iter() {
        if n == 0 && sym.arity > 0 {
            continue;
        }
        let mut idx = vec![0u32; sym.arity];
        loop {
            all_tuples.push((id.index(), idx.clone()));
            let mut pos = sym.arity;
            loop {
                if pos == 0 {
                    pos = usize::MAX;
                    break;
                }
                pos -= 1;
                idx[pos] += 1;
                if (idx[pos] as usize) < n {
                    break;
                }
                idx[pos] = 0;
                if pos == 0 {
                    pos = usize::MAX;
                    break;
                }
            }
            if pos == usize::MAX || sym.arity == 0 {
                break;
            }
        }
    }
    let t = all_tuples.len();
    assert!(
        t <= 24,
        "exhaustive enumeration over {t} candidate tuples is infeasible; lower n"
    );
    for mask in 0u32..(1u32 << t) {
        let mut s = Structure::new(vocab.clone(), n);
        for (bit, (sym, tup)) in all_tuples.iter().enumerate() {
            if mask & (1 << bit) != 0 {
                s.add_tuple_ids(*sym, tup).expect("generated tuple valid");
            }
        }
        if let std::ops::ControlFlow::Break(b) = f(s) {
            return Some(b);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::SymbolId;

    #[test]
    fn directed_path_counts() {
        let s = directed_path(4);
        assert_eq!(s.universe_size(), 4);
        assert_eq!(s.total_tuples(), 3);
    }

    #[test]
    fn directed_cycle_counts() {
        let s = directed_cycle(3);
        assert_eq!(s.total_tuples(), 3);
        assert!(s.contains_tuple(SymbolId(0), &[Elem(2), Elem(0)]));
        let one = directed_cycle(1);
        assert_eq!(one.total_tuples(), 1); // single loop
    }

    #[test]
    fn tournament_counts() {
        let s = transitive_tournament(4);
        assert_eq!(s.total_tuples(), 6);
    }

    #[test]
    fn self_loop_absorbs() {
        let l = self_loop();
        let p = directed_path(5);
        let map: Vec<Elem> = vec![Elem(0); 5];
        assert!(p.is_homomorphism(&map, &l));
    }

    #[test]
    fn complete_digraph_counts() {
        let s = complete_digraph(3);
        assert_eq!(s.total_tuples(), 6);
        // K_3 as digraph: no loops.
        assert!(!s.contains_tuple(SymbolId(0), &[Elem(0), Elem(0)]));
    }

    #[test]
    fn down_tree_shape() {
        let s = down_tree(2); // 7 nodes, 6 edges, 4 leaves
        assert_eq!(s.universe_size(), 7);
        assert_eq!(s.relation(SymbolId(0)).len(), 6);
        assert_eq!(s.relation(SymbolId(1)).len(), 4);
    }

    #[test]
    fn for_each_structure_counts() {
        // Digraphs with n = 2: 2^(2²) = 16 structures.
        let mut count = 0;
        for_each_structure(&Vocabulary::digraph(), 2, |_| count += 1);
        assert_eq!(count, 16);
        // n = 0: exactly the empty structure.
        let mut count0 = 0;
        for_each_structure(&Vocabulary::digraph(), 0, |s| {
            assert_eq!(s.universe_size(), 0);
            count0 += 1;
        });
        assert_eq!(count0, 1);
        // Two symbols: E/2 and P/1 with n = 1: 2^(1+1) = 4.
        let v = Vocabulary::from_pairs([("E", 2), ("P", 1)]);
        let mut c = 0;
        for_each_structure(&v, 1, |_| c += 1);
        assert_eq!(c, 4);
    }

    #[test]
    fn try_for_each_structure_breaks_early() {
        let mut seen = 0u32;
        let out = try_for_each_structure(&Vocabulary::digraph(), 2, |_| {
            seen += 1;
            if seen == 5 {
                std::ops::ControlFlow::Break("stopped")
            } else {
                std::ops::ControlFlow::Continue(())
            }
        });
        assert_eq!(out, Some("stopped"));
        assert_eq!(seen, 5);
        // Exhaustive sweep returns None.
        let none: Option<()> = try_for_each_structure(&Vocabulary::digraph(), 1, |_| {
            std::ops::ControlFlow::Continue(())
        });
        assert_eq!(none, None);
    }

    #[test]
    fn path_query_structure_len() {
        let s = path_query_structure(3);
        assert_eq!(s.universe_size(), 4);
        assert_eq!(s.total_tuples(), 3);
    }
}
