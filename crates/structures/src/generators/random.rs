//! Random graph and structure families, seeded for reproducibility.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::elem::Elem;
use crate::graph::Graph;
use crate::structure::Structure;
use crate::vocab::Vocabulary;

/// A deterministic RNG from a seed — all generators in this module take a
/// seed rather than an RNG so experiment tables are reproducible.
pub fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Erdős–Rényi `G(n, p)`.
pub fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    let mut r = rng(seed);
    let mut g = Graph::new(n);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            if r.gen_bool(p) {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// A uniformly random labelled tree on `n` vertices (via a random Prüfer-like
/// attachment: vertex `i` attaches to a uniform earlier vertex). Trees have
/// treewidth ≤ 1 and are the base case of the paper's §4 classes.
pub fn random_tree(n: usize, seed: u64) -> Graph {
    let mut r = rng(seed);
    let mut g = Graph::new(n);
    for i in 1..n {
        let parent = r.gen_range(0..i);
        g.add_edge(parent as u32, i as u32);
    }
    g
}

/// A random **partial k-tree** on `n` vertices: build the canonical k-tree
/// by attaching each new vertex to a random `k`-clique, then keep each edge
/// with probability `keep`. Every partial k-tree has treewidth ≤ k, so this
/// samples the class T(k+1) of the paper.
pub fn random_partial_ktree(k: usize, n: usize, keep: f64, seed: u64) -> Graph {
    assert!(n > k);
    let mut r = rng(seed);
    // Track the k-cliques available for attachment: represented as sorted
    // vertex lists. Start with the base clique.
    let mut g = Graph::new(n);
    let base: Vec<u32> = (0..=k as u32).collect();
    for i in 0..base.len() {
        for j in (i + 1)..base.len() {
            g.add_edge(base[i], base[j]);
        }
    }
    let mut cliques: Vec<Vec<u32>> = vec![];
    // All k-subsets of the base (k+1)-clique.
    for omit in 0..=k {
        let c: Vec<u32> = base.iter().copied().filter(|&v| v != omit as u32).collect();
        cliques.push(c);
    }
    for v in (k + 1)..n {
        let c = cliques[r.gen_range(0..cliques.len())].clone();
        for &u in &c {
            g.add_edge(v as u32, u);
        }
        // New k-cliques: v together with each (k-1)-subset of c.
        for omit in 0..c.len() {
            let mut nc: Vec<u32> = c
                .iter()
                .copied()
                .enumerate()
                .filter(|&(i, _)| i != omit)
                .map(|(_, x)| x)
                .collect();
            nc.push(v as u32);
            nc.sort_unstable();
            cliques.push(nc);
        }
    }
    // Sparsify.
    if keep < 1.0 {
        let edges: Vec<(u32, u32)> = g.edges().collect();
        for (u, v) in edges {
            if !r.gen_bool(keep) {
                g.remove_edge(u, v);
            }
        }
    }
    g
}

/// A random graph of maximum degree ≤ `k`: repeatedly sample candidate edges
/// and keep those that do not violate the degree bound. Samples the
/// bounded-degree classes of Theorem 3.5.
pub fn random_bounded_degree(n: usize, k: usize, attempts: usize, seed: u64) -> Graph {
    let mut r = rng(seed);
    let mut g = Graph::new(n);
    if n < 2 {
        return g;
    }
    for _ in 0..attempts {
        let u = r.gen_range(0..n) as u32;
        let v = r.gen_range(0..n) as u32;
        if u != v && g.degree(u) < k && g.degree(v) < k {
            g.add_edge(u, v);
        }
    }
    g
}

/// A random directed graph as a σ-structure over `{E/2}` with `m` edges
/// (loops allowed with probability proportional to chance; duplicates
/// deduped). The workload for the Datalog / pebble-game experiments.
pub fn random_digraph(n: usize, m: usize, seed: u64) -> Structure {
    let mut r = rng(seed);
    let mut s = Structure::new(Vocabulary::digraph(), n);
    if n == 0 {
        return s;
    }
    let mut edges: Vec<Elem> = Vec::with_capacity(2 * m);
    for _ in 0..m {
        edges.push(Elem(r.gen_range(0..n) as u32));
        edges.push(Elem(r.gen_range(0..n) as u32));
    }
    s.extend_tuples(0usize.into(), edges.chunks_exact(2))
        .expect("generated edges in range");
    s
}

/// A random **acyclic** directed graph: edges only from lower to higher
/// index under a random topological permutation.
pub fn random_dag(n: usize, m: usize, seed: u64) -> Structure {
    let mut r = rng(seed);
    let mut perm: Vec<u32> = (0..n as u32).collect();
    perm.shuffle(&mut r);
    let mut s = Structure::new(Vocabulary::digraph(), n);
    if n < 2 {
        return s;
    }
    let mut edges: Vec<Elem> = Vec::with_capacity(2 * m);
    for _ in 0..m {
        let i = r.gen_range(0..n - 1);
        let j = r.gen_range(i + 1..n);
        edges.push(Elem(perm[i]));
        edges.push(Elem(perm[j]));
    }
    s.extend_tuples(0usize.into(), edges.chunks_exact(2))
        .expect("generated edges in range");
    s
}

/// A random structure over an arbitrary vocabulary: for each symbol of arity
/// `r`, include each of the `n^r` tuples with probability `p` — but sampled
/// sparsely (expected count drawn, then tuples sampled) so large universes
/// stay cheap.
pub fn random_structure(vocab: &Vocabulary, n: usize, p: f64, seed: u64) -> Structure {
    let mut r = rng(seed);
    let mut s = Structure::new(vocab.clone(), n);
    if n == 0 {
        return s;
    }
    let mut flat: Vec<Elem> = Vec::new();
    for (id, sym) in vocab.iter() {
        flat.clear();
        let mut rows = 0usize;
        let total = (n as f64).powi(sym.arity as i32);
        let expected = (total * p).min(1_000_000.0);
        if total <= 4096.0 {
            // Dense sampling: enumerate all tuples.
            let mut idx = vec![0usize; sym.arity];
            loop {
                if r.gen_bool(p) {
                    flat.extend(idx.iter().map(|&i| Elem::from(i)));
                    rows += 1;
                }
                // Increment multi-index.
                let mut pos = sym.arity;
                loop {
                    if pos == 0 {
                        break;
                    }
                    pos -= 1;
                    idx[pos] += 1;
                    if idx[pos] < n {
                        break;
                    }
                    idx[pos] = 0;
                    if pos == 0 {
                        pos = usize::MAX;
                        break;
                    }
                }
                if pos == usize::MAX || sym.arity == 0 {
                    break;
                }
            }
        } else {
            for _ in 0..expected.round() as usize {
                for _ in 0..sym.arity {
                    flat.push(Elem::from(r.gen_range(0..n)));
                }
                rows += 1;
            }
        }
        if sym.arity == 0 {
            s.extend_tuples(id, (0..rows).map(|_| [].as_slice()))
                .unwrap();
        } else {
            s.extend_tuples(id, flat.chunks_exact(sym.arity)).unwrap();
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnp_extremes() {
        let g0 = gnp(10, 0.0, 1);
        assert_eq!(g0.edge_count(), 0);
        let g1 = gnp(10, 1.0, 1);
        assert_eq!(g1.edge_count(), 45);
    }

    #[test]
    fn gnp_is_seeded_deterministic() {
        assert_eq!(
            gnp(20, 0.3, 42).edges().collect::<Vec<_>>(),
            gnp(20, 0.3, 42).edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn random_tree_is_tree() {
        for seed in 0..5 {
            let g = random_tree(30, seed);
            assert_eq!(g.edge_count(), 29);
            assert!(g.is_connected());
        }
    }

    #[test]
    fn random_partial_ktree_edge_bound() {
        // A full k-tree on n vertices has kn - k(k+1)/2 edges.
        let g = random_partial_ktree(3, 20, 1.0, 7);
        assert_eq!(g.edge_count(), 3 * 20 - 3 * 4 / 2);
        let sparse = random_partial_ktree(3, 20, 0.5, 7);
        assert!(sparse.edge_count() < g.edge_count());
    }

    #[test]
    fn random_bounded_degree_respects_bound() {
        let g = random_bounded_degree(50, 3, 500, 9);
        assert!(g.max_degree() <= 3);
        assert!(g.edge_count() > 0);
    }

    #[test]
    fn random_digraph_tuples_in_range() {
        let s = random_digraph(10, 30, 3);
        assert!(s.total_tuples() <= 30);
        assert!(s.total_tuples() > 0);
    }

    #[test]
    fn random_dag_is_acyclic() {
        // Verify acyclicity by Kahn-style peeling.
        let s = random_dag(15, 40, 5);
        let n = s.universe_size();
        let mut indeg = vec![0usize; n];
        let mut out: Vec<Vec<usize>> = vec![vec![]; n];
        for t in s.relation(crate::vocab::SymbolId(0)).iter() {
            out[t[0].index()].push(t[1].index());
            indeg[t[1].index()] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0;
        while let Some(u) = queue.pop() {
            seen += 1;
            for &v in &out[u] {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    queue.push(v);
                }
            }
        }
        assert_eq!(seen, n, "random_dag produced a cycle");
    }

    #[test]
    fn random_structure_dense_and_sparse_paths() {
        let v = Vocabulary::from_pairs([("E", 2), ("P", 1)]);
        let dense = random_structure(&v, 8, 0.5, 11); // 64 + 8 tuples max, dense path
        assert!(dense.total_tuples() > 0);
        let sparse = random_structure(&v, 1000, 0.00001, 11); // sparse path
        assert!(sparse.relation(crate::vocab::SymbolId(0)).len() <= 20);
    }
}
