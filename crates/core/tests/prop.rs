//! Property-based tests for hp-preservation: rewriting correctness on
//! random UCQ queries, minimal-model invariants, density tools, and
//! plebian-companion laws.

use proptest::prelude::*;

use hp_preservation::density::{max_scattered_set, scattered_after_deletions};
use hp_preservation::minimal::{enumerate_minimal_models, minimize_model};
use hp_preservation::plebian::{
    hom_exists_with_constants, hom_exists_with_constants_avoiding, plebian_companion,
};
use hp_preservation::prelude::*;
use hp_preservation::query::{BooleanQuery, UcqQuery};
use hp_preservation::synthesis::{rewrite_to_ucq, validate_rewrite};

fn digraph_strategy(max_n: usize, max_m: usize) -> impl Strategy<Value = Structure> {
    (
        1..=max_n,
        prop::collection::vec((0usize..max_n, 0usize..max_n), 0..max_m),
    )
        .prop_map(move |(n, edges)| {
            let mut s = Structure::new(Vocabulary::digraph(), n);
            for (u, v) in edges {
                let _ = s.add_tuple_ids(0, &[(u % n) as u32, (v % n) as u32]);
            }
            s
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 3.1 round trip on random UCQ queries with small canonical
    /// structures: rewriting from minimal models reproduces an equivalent
    /// UCQ (validated semantically on random inputs).
    #[test]
    fn rewrite_roundtrip_random_ucq(
        a in digraph_strategy(3, 5),
        b in digraph_strategy(3, 5),
    ) {
        let u = Ucq::new(vec![Cq::canonical_query(&a), Cq::canonical_query(&b)]);
        let q = UcqQuery::new(u.clone());
        let rw = rewrite_to_ucq(&q, &Vocabulary::digraph(), 3).unwrap();
        // Semantic agreement on random structures.
        let sample: Vec<Structure> = (0..12)
            .map(|s| generators::random_digraph(4, 7, s))
            .collect();
        prop_assert!(validate_rewrite(&q, &rw.ucq, sample.iter()).is_none());
        // And exact logical equivalence via Sagiv–Yannakakis.
        prop_assert!(rw.ucq.is_equivalent_to(&u));
    }

    /// minimize_model always returns a model below the input, and for
    /// UCQ queries a true minimal one (no weakening satisfies q).
    #[test]
    fn minimize_model_invariants(a in digraph_strategy(4, 8), b in digraph_strategy(3, 5)) {
        let q = UcqQuery::new(Ucq::new(vec![Cq::canonical_query(&b)]));
        if q.eval(&a) {
            let m = minimize_model(&q, &a);
            prop_assert!(q.eval(&m));
            prop_assert!(m.universe_size() <= a.universe_size());
            prop_assert!(m.total_tuples() <= a.total_tuples());
            for w in m.one_step_weakenings() {
                prop_assert!(!q.eval(&w));
            }
            // Minimal models of hom-preserved queries are cores.
            prop_assert!(hp_preservation::hom::is_core(&m));
        }
    }

    /// Minimal-model enumeration is closed under the defining property:
    /// every returned model is a model with no satisfying weakening, and
    /// they are pairwise non-isomorphic.
    #[test]
    fn enumeration_wellformed(b in digraph_strategy(3, 4)) {
        let q = UcqQuery::new(Ucq::new(vec![Cq::canonical_query(&b)]));
        let mm = enumerate_minimal_models(&q, &Vocabulary::digraph(), 3);
        for (i, m) in mm.models().iter().enumerate() {
            prop_assert!(q.eval(m));
            for w in m.one_step_weakenings() {
                prop_assert!(!q.eval(&w));
            }
            for m2 in &mm.models()[i + 1..] {
                prop_assert!(!are_isomorphic(m, m2));
            }
        }
        // The canonical structure's own core must appear (it is a minimal
        // model when |core| ≤ 3).
        let core = core_of(&b);
        if core.structure.universe_size() <= 3 && core.structure.total_tuples() > 0 {
            prop_assert!(
                mm.models().iter().any(|m| are_isomorphic(m, &core.structure)),
                "core of the canonical structure missing from minimal models"
            );
        }
    }

    /// Exact max-scattered-set is at least the greedy one and verifies.
    #[test]
    fn max_scattered_dominates_greedy(a in digraph_strategy(8, 16), d in 0usize..3) {
        let g = a.gaifman_graph();
        let exact = max_scattered_set(&g, d);
        let greedy = hp_preservation::tw::scattered::greedy_scattered(&g, d);
        prop_assert!(exact.len() >= greedy.len());
        prop_assert!(hp_structures::is_d_scattered(&g, d, &exact));
    }

    /// scattered_after_deletions with s = 0 agrees with max_scattered_set.
    #[test]
    fn deletion_free_scatter_agrees(a in digraph_strategy(7, 12), d in 0usize..3) {
        let g = a.gaifman_graph();
        let exact = max_scattered_set(&g, d).len();
        for m in 1..=exact {
            prop_assert!(scattered_after_deletions(&g, 0, d, m).is_some());
        }
        prop_assert!(scattered_after_deletions(&g, 0, d, exact + 1).is_none());
    }

    /// Plebian laws on random inputs: Gaifman subgraph (Obs 6.1) and the
    /// exact hom correspondence (corrected Obs 6.2).
    #[test]
    fn plebian_laws(a in digraph_strategy(5, 9), b in digraph_strategy(5, 12)) {
        let ca = [Elem(0)];
        let cb = [Elem(0)];
        let pa = plebian_companion(&a, &ca);
        let pb = plebian_companion(&b, &cb);
        // Obs 6.1.
        let ga = a.gaifman_graph();
        for (u, v) in pa.structure.gaifman_graph().edges() {
            let (ou, ov) = (pa.old_of_new[u as usize], pa.old_of_new[v as usize]);
            prop_assert!(ga.has_edge(ou.0, ov.0));
        }
        // Corrected Obs 6.2 equivalence + the sound direction.
        let avoiding = hom_exists_with_constants_avoiding(&a, &ca, &b, &cb);
        let companion = hp_hom::hom_exists(&pa.structure, &pb.structure);
        prop_assert_eq!(avoiding, companion);
        if companion {
            prop_assert!(hom_exists_with_constants(&a, &ca, &b, &cb));
        }
    }
}
