//! Non-Boolean (n-ary) query rewriting — the full strength of Theorems
//! 3.5 / 4.4 / 5.4, which the paper proves "for queries of arbitrary
//! arity" via the §6.1 constant-expansion + plebian-companion detour.
//!
//! We implement the reduction **directly in pointed form**, which is
//! equivalent and keeps the machinery in one vocabulary: a *pointed
//! minimal model* of an n-ary query `q` is a pair `(A, ā)` with
//! `ā ∈ q(A)` such that no proper substructure keeping `ā` intact still
//! has `ā` among its answers. For hom-preserved `q`, finitely many pointed
//! minimal models (up to pointed isomorphism) yield the equivalent n-ary
//! UCQ: the disjunction of `Cq::with_free(A, ā)` over them — the precise
//! analogue of Theorem 3.1.

use hp_hom::are_isomorphic_pointed;
use hp_logic::{Cq, Ucq};
use hp_structures::{Elem, Structure, Vocabulary};

/// An n-ary query: an isomorphism-invariant answer-set map (§2.3).
pub trait NaryQuery {
    /// The arity.
    fn arity(&self) -> usize;
    /// The sorted answer set over `a`.
    fn answers(&self, a: &Structure) -> Vec<Vec<Elem>>;

    /// Membership of one tuple (default: scan the answers).
    fn holds_with(&self, a: &Structure, tuple: &[Elem]) -> bool {
        self.answers(a).iter().any(|t| t == tuple)
    }
}

/// A first-order formula with free variables as an n-ary query (free
/// variables in increasing order are the answer positions).
pub struct FoNaryQuery {
    formula: hp_logic::Formula,
    arity: usize,
}

impl FoNaryQuery {
    /// Wrap a formula; its free variables (sorted) become the columns.
    pub fn new(formula: hp_logic::Formula) -> Self {
        let arity = formula.free_vars().len();
        FoNaryQuery { formula, arity }
    }

    /// The wrapped formula.
    pub fn formula(&self) -> &hp_logic::Formula {
        &self.formula
    }
}

impl NaryQuery for FoNaryQuery {
    fn arity(&self) -> usize {
        self.arity
    }

    fn answers(&self, a: &Structure) -> Vec<Vec<Elem>> {
        self.formula.answers(a)
    }
}

/// A pointed structure: the candidate minimal-model form.
#[derive(Clone, Debug)]
pub struct PointedModel {
    /// The structure.
    pub structure: Structure,
    /// The distinguished answer tuple.
    pub point: Vec<Elem>,
}

/// Minimize a pointed model: drop tuples and non-point elements while the
/// point stays an answer. (Point elements are never deleted — they are the
/// constants of the §6.1 expansion.)
pub fn minimize_pointed(q: &dyn NaryQuery, a: &Structure, point: &[Elem]) -> PointedModel {
    assert!(q.holds_with(a, point), "tuple must be an answer");
    let mut cur = a.clone();
    let mut pt: Vec<Elem> = point.to_vec();
    'outer: loop {
        // Tuple deletions: iterate rows by index, borrowing each candidate
        // row straight from `cur`'s arena while the mutated clone is built.
        let rel_sizes: Vec<(hp_structures::SymbolId, usize)> =
            cur.relations().map(|(sym, rel)| (sym, rel.len())).collect();
        for (sym, n) in rel_sizes {
            for ti in 0..n {
                let mut w = cur.clone();
                w.remove_tuple(sym, cur.relation(sym).tuple(ti));
                if q.holds_with(&w, &pt) {
                    cur = w;
                    continue 'outer;
                }
            }
        }
        // Element deletions (not the point).
        for e in cur.elements() {
            if pt.contains(&e) {
                continue;
            }
            let (w, old_of_new) = cur.remove_element(e);
            let mut new_of_old = vec![u32::MAX; cur.universe_size()];
            for (new, &old) in old_of_new.iter().enumerate() {
                new_of_old[old.index()] = new as u32;
            }
            let remapped: Vec<Elem> = pt.iter().map(|p| Elem(new_of_old[p.index()])).collect();
            if q.holds_with(&w, &remapped) {
                cur = w;
                pt = remapped;
                continue 'outer;
            }
        }
        return PointedModel {
            structure: cur,
            point: pt,
        };
    }
}

/// The outcome of the non-Boolean rewriting.
pub struct NaryRewriteOutcome {
    /// Pointed minimal models, pairwise non-isomorphic as pointed
    /// structures.
    pub minimal_models: Vec<PointedModel>,
    /// The equivalent n-ary UCQ.
    pub ucq: Ucq,
}

/// Rewrite an n-ary hom-preserved query into a UCQ by enumerating pointed
/// minimal models with ≤ `max_size` elements — the non-Boolean Theorem 3.1
/// (equivalently: Theorem 3.1 on the §6.1 expansion, pulled back).
pub fn rewrite_nary_to_ucq(
    q: &dyn NaryQuery,
    vocab: &Vocabulary,
    max_size: usize,
) -> NaryRewriteOutcome {
    let mut models: Vec<PointedModel> = Vec::new();
    let mut push = |m: PointedModel| {
        for old in &models {
            if are_isomorphic_pointed(&old.structure, &old.point, &m.structure, &m.point) {
                return;
            }
        }
        models.push(m);
    };
    // Enumerate structures exhaustively (no isolated-element skip: answer
    // tuples may legitimately involve isolated elements, e.g. ⊤(x)).
    for n in 0..=max_size {
        hp_structures::generators::for_each_structure(vocab, n, |s| {
            for ans in q.answers(&s) {
                push(minimize_pointed(q, &s, &ans));
            }
        });
    }
    let ucq = Ucq::new(
        models
            .iter()
            .map(|m| Cq::with_free(&m.structure, &m.point))
            .collect(),
    )
    .minimize();
    NaryRewriteOutcome {
        minimal_models: models,
        ucq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hp_logic::parse_formula;
    use hp_structures::generators::random_digraph;

    #[test]
    fn unary_on_a_cycle_of_length_two() {
        // q(x) = "x lies on a 2-cycle or has a loop" — hom-preserved, EP.
        let v = Vocabulary::digraph();
        let (f, _) = parse_formula("E(x,x) | exists y. (E(x,y) & E(y,x))", &v).unwrap();
        let q = FoNaryQuery::new(f.clone());
        assert_eq!(q.arity(), 1);
        let rw = rewrite_nary_to_ucq(&q, &v, 2);
        // Pointed minimal models: (loop, its element) and (C2, an element).
        assert_eq!(rw.minimal_models.len(), 2, "{:?}", rw.minimal_models);
        assert_eq!(rw.ucq.arity(), 1);
        // Validate answers on random digraphs.
        for seed in 0..15 {
            let b = random_digraph(4, 7, seed);
            assert_eq!(rw.ucq.answers(&b), f.answers(&b), "seed {seed}");
        }
    }

    #[test]
    fn binary_reach_in_two_query() {
        // q(x, y) = E(x,y) ∨ ∃z (E(x,z) ∧ E(z,y)).
        let v = Vocabulary::digraph();
        let (f, _) = parse_formula("E(x,y) | exists z. (E(x,z) & E(z,y))", &v).unwrap();
        let q = FoNaryQuery::new(f.clone());
        assert_eq!(q.arity(), 2);
        let rw = rewrite_nary_to_ucq(&q, &v, 3);
        // Validate.
        for seed in 0..10 {
            let b = random_digraph(4, 6, seed + 70);
            assert_eq!(rw.ucq.answers(&b), f.answers(&b), "seed {seed}");
        }
        // The minimized UCQ has the two expected shapes (direct edge;
        // two-step path) — plus none redundant.
        assert!(rw.ucq.len() <= 2);
    }

    #[test]
    fn pointed_minimization_keeps_point() {
        let v = Vocabulary::digraph();
        let (f, _) = parse_formula("exists y. E(x,y)", &v).unwrap();
        let q = FoNaryQuery::new(f);
        // A cluttered model.
        let mut a = hp_structures::generators::directed_path(4);
        a.add_tuple_ids(0, &[3, 3]).unwrap();
        let m = minimize_pointed(&q, &a, &[Elem(0)]);
        assert!(q.holds_with(&m.structure, &m.point));
        assert_eq!(m.structure.universe_size(), 2);
        assert_eq!(m.structure.total_tuples(), 1);
    }

    #[test]
    fn non_ep_but_preserved_nary_query() {
        // q(x) defined by an FO formula that *is* hom-preserved though not
        // syntactically EP: ~~(E(x,x)). The rewriting normalizes it.
        let v = Vocabulary::digraph();
        let (f, _) = parse_formula("~~E(x,x)", &v).unwrap();
        let q = FoNaryQuery::new(f.clone());
        let rw = rewrite_nary_to_ucq(&q, &v, 2);
        assert_eq!(rw.minimal_models.len(), 1);
        assert_eq!(rw.ucq.len(), 1);
        for seed in 0..8 {
            let b = random_digraph(4, 7, seed + 30);
            assert_eq!(rw.ucq.answers(&b), f.answers(&b));
        }
    }
}

/// A Datalog IDB as an n-ary query: its fixpoint relation (§7's infinitary
/// UCQs, in n-ary form). Hom-preserved by construction, so the pointed
/// rewriting applies whenever the program is bounded.
pub struct DatalogNaryQuery {
    program: hp_datalog::Program,
    idb: usize,
}

impl DatalogNaryQuery {
    /// Wrap a program and an IDB name.
    pub fn new(program: hp_datalog::Program, idb: &str) -> Result<Self, String> {
        let idb = program
            .idb_index(idb)
            .ok_or_else(|| format!("no IDB named {idb}"))?;
        Ok(DatalogNaryQuery { program, idb })
    }
}

impl NaryQuery for DatalogNaryQuery {
    fn arity(&self) -> usize {
        self.program.idbs()[self.idb].1
    }

    fn answers(&self, a: &Structure) -> Vec<Vec<Elem>> {
        self.program.evaluate(a).relations[self.idb]
            .iter()
            .map(|t| t.to_vec())
            .collect()
    }
}

#[cfg(test)]
mod datalog_nary_tests {
    use super::*;
    use hp_datalog::Program;
    use hp_structures::generators::random_digraph;

    #[test]
    fn bounded_datalog_idb_rewrites_as_nary_ucq() {
        // Two-hop: bounded, so the pointed rewriting is exact.
        let p = Program::parse("P2(x,y) :- E(x,z), E(z,y).", &Vocabulary::digraph()).unwrap();
        let q = DatalogNaryQuery::new(p, "P2").unwrap();
        assert_eq!(q.arity(), 2);
        let rw = rewrite_nary_to_ucq(&q, &Vocabulary::digraph(), 3);
        for seed in 0..10 {
            let b = random_digraph(4, 7, seed + 11);
            assert_eq!(rw.ucq.answers(&b), q.answers(&b), "seed {seed}");
        }
        assert_eq!(rw.ucq.len(), 1);
    }

    #[test]
    fn unbounded_datalog_idb_rewriting_is_only_partial() {
        // Transitive closure: unbounded — the size-3 rewriting only covers
        // reachability witnessed by ≤3-element minimal models (paths of
        // length ≤ 2 and small cycles), so it under-approximates on longer
        // paths. This is Theorem 7.5 seen from the rewriting side.
        let p = Program::parse(
            "T(x,y) :- E(x,y).\nT(x,y) :- E(x,z), T(z,y).",
            &Vocabulary::digraph(),
        )
        .unwrap();
        let q = DatalogNaryQuery::new(p, "T").unwrap();
        let rw = rewrite_nary_to_ucq(&q, &Vocabulary::digraph(), 3);
        let long = hp_structures::generators::directed_path(5);
        let full = q.answers(&long);
        let approx = rw.ucq.answers(&long);
        assert!(approx.len() < full.len(), "must miss distance-4 pairs");
        // But everything it reports is correct (soundness).
        for t in &approx {
            assert!(full.contains(t));
        }
    }
}
