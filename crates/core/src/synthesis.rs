//! **Theorem 3.1**: the equivalence between "finitely many minimal models"
//! and "definable by an existential-positive sentence", in both directions
//! and constructively.

use hp_guard::{Budget, Budgeted};
use hp_logic::{Cq, Ucq};
use hp_structures::{Structure, Vocabulary};

use crate::minimal::{
    enumerate_minimal_models, enumerate_minimal_models_with_budget, MinimalModels,
};
use crate::query::BooleanQuery;

/// Direction (1) ⇒ (2) of Theorem 3.1: the disjunction of the canonical
/// conjunctive queries of the minimal models, minimized.
pub fn ucq_from_minimal_models(models: &MinimalModels) -> Ucq {
    Ucq::new(
        models
            .models()
            .iter()
            .map(Cq::canonical_query)
            .collect::<Vec<_>>(),
    )
    .minimize()
}

/// Direction (2) ⇒ (1) of Theorem 3.1: from a defining UCQ, a bound on the
/// size of every minimal model — the maximum canonical-structure size.
/// (Every minimal model is a homomorphic image of some canonical
/// structure.)
pub fn minimal_model_size_bound(u: &Ucq) -> usize {
    u.disjuncts().iter().map(Cq::var_count).max().unwrap_or(0)
}

/// The result of the effective rewriting procedure (§8).
#[derive(Debug)]
pub struct RewriteOutcome {
    /// Pairwise non-isomorphic minimal models with ≤ `search_size`
    /// elements.
    pub minimal_models: Vec<Structure>,
    /// The synthesized UCQ (disjunction of canonical queries, minimized).
    pub ucq: Ucq,
}

/// The **effective procedure** the paper's §8 promises: given a Boolean
/// query preserved under homomorphisms and a size bound (supplied by the
/// theorems — Lemma 3.4 / 4.2 / Theorem 5.3 for the class at hand),
/// enumerate the minimal models up to the bound and synthesize the
/// equivalent UCQ.
///
/// The output is exactly equivalent to `q` on all structures whose minimal
/// models fall within `search_size`; the preservation theorems guarantee
/// that bound exists for first-order `q` on the classes they cover.
pub fn rewrite_to_ucq(
    q: &dyn BooleanQuery,
    vocab: &Vocabulary,
    search_size: usize,
) -> Result<RewriteOutcome, String> {
    let mm = enumerate_minimal_models(q, vocab, search_size);
    let ucq = ucq_from_minimal_models(&mm);
    Ok(RewriteOutcome {
        minimal_models: mm.into_models(),
        ucq,
    })
}

/// Budgeted [`rewrite_to_ucq`]: the minimal-model sweep charges the shared
/// budget (one fuel unit per candidate structure). On exhaustion the
/// partial is a [`RewriteOutcome`] built from the minimal models found so
/// far — its UCQ is a sound **under-approximation** of `q` (every disjunct
/// implies `q`), just possibly missing disjuncts the unswept candidates
/// would have contributed.
pub fn rewrite_to_ucq_with_budget(
    q: &dyn BooleanQuery,
    vocab: &Vocabulary,
    search_size: usize,
    budget: &Budget,
) -> Budgeted<RewriteOutcome, RewriteOutcome> {
    let outcome = |mm: MinimalModels| {
        let ucq = ucq_from_minimal_models(&mm);
        RewriteOutcome {
            minimal_models: mm.into_models(),
            ucq,
        }
    };
    enumerate_minimal_models_with_budget(q, vocab, search_size, budget)
        .map(outcome)
        .map_err(|e| e.map_partial(outcome))
}

/// Cross-validate a rewriting on a sample: the UCQ and the original query
/// must agree on every structure. Returns the first disagreement.
pub fn validate_rewrite<'a>(
    q: &dyn BooleanQuery,
    ucq: &Ucq,
    sample: impl IntoIterator<Item = &'a Structure>,
) -> Option<Structure> {
    for a in sample {
        if q.eval(a) != ucq.holds_in(a) {
            return Some(a.clone());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{FoQuery, UcqQuery};
    use hp_structures::generators::{directed_cycle, directed_path, random_digraph, self_loop};

    #[test]
    fn theorem_3_1_forward_for_path_query() {
        // q = "path of length 2". Minimal models (≤ 3 elems): P2, C2, C1.
        let q = UcqQuery::new(Ucq::new(vec![Cq::canonical_query(&directed_path(3))]));
        let rw = rewrite_to_ucq(&q, &Vocabulary::digraph(), 3).unwrap();
        assert_eq!(rw.minimal_models.len(), 3);
        // The synthesized UCQ minimizes back to the single path disjunct:
        // C1 → P2? hom(P2, C1) exists (fold into loop) so q_{C1} ⊑ q_{P2};
        // minimization keeps only the weakest... Sagiv–Yannakakis keeps the
        // containing disjunct P2.
        assert_eq!(rw.ucq.len(), 1);
        // Agreement on a sample.
        let sample: Vec<Structure> = (0..20).map(|s| random_digraph(5, 6, s)).collect();
        assert!(validate_rewrite(&q, &rw.ucq, sample.iter()).is_none());
    }

    #[test]
    fn theorem_3_1_forward_for_union_query() {
        // q = "loop or 2-cycle" — two incomparable minimal models... C1 and
        // C2: hom(C1,C2)? needs a loop in C2: no. hom(C2,C1): 2-cycle into
        // loop: yes! So q_{C1} ⊑ q_{C2}... wait q_{C2} holds in B iff
        // hom(C2,B); hom(C2,C1) means q_{C2}(C1)... The UCQ minimization:
        // disjunct q_{C2} contained in q_{C1}? q_{C2} ⊑ q_{C1} iff
        // hom(C1, C2): false. q_{C1} ⊑ q_{C2} iff hom(C2, C1): true — the
        // loop disjunct is subsumed by the 2-cycle disjunct!
        let q = UcqQuery::new(Ucq::new(vec![
            Cq::canonical_query(&self_loop()),
            Cq::canonical_query(&directed_cycle(2)),
        ]));
        let rw = rewrite_to_ucq(&q, &Vocabulary::digraph(), 3).unwrap();
        // Minimal models: C1 and C2 (C1 ⊆ nothing smaller; C2's proper
        // substructures have no loop and no 2-cycle).
        assert_eq!(rw.minimal_models.len(), 2);
        assert_eq!(rw.ucq.len(), 1); // subsumption leaves the 2-cycle CQ
        let sample: Vec<Structure> = (0..20).map(|s| random_digraph(4, 7, s + 99)).collect();
        assert!(validate_rewrite(&q, &rw.ucq, sample.iter()).is_none());
    }

    #[test]
    fn theorem_3_1_for_fo_query_preserved_under_homs() {
        // FO but hom-preserved: ∃x∃y∃z (E(x,y) ∧ E(y,z) ∧ E(z,x)) — "has a
        // closed 3-walk". Its rewriting from minimal models of size ≤ 3.
        let (f, _) = hp_logic::parse_formula(
            "exists x. exists y. exists z. (E(x,y) & E(y,z) & E(z,x))",
            &Vocabulary::digraph(),
        )
        .unwrap();
        let q = FoQuery::new(f);
        let rw = rewrite_to_ucq(&q, &Vocabulary::digraph(), 3).unwrap();
        // Minimal models: C1 and C3 (a 2-cycle has no closed 3-walk —
        // parity!, wait 0->1->0->1 is a closed walk of length... x=0,y=1,
        // z=0: E(0,1),E(1,0),E(0,0)? no. So C2 is not a model; C3 and C1
        // are).
        assert_eq!(rw.minimal_models.len(), 2);
        let sample: Vec<Structure> = (0..25).map(|s| random_digraph(4, 6, s)).collect();
        assert!(validate_rewrite(&q, &rw.ucq, sample.iter()).is_none());
    }

    #[test]
    fn backward_direction_size_bound() {
        let u = Ucq::new(vec![
            Cq::canonical_query(&directed_path(4)),
            Cq::canonical_query(&directed_cycle(2)),
        ]);
        assert_eq!(minimal_model_size_bound(&u), 4);
        // And indeed every minimal model of the UCQ query fits the bound.
        let q = UcqQuery::new(u.clone());
        let mm = enumerate_minimal_models(&q, &Vocabulary::digraph(), 3);
        for m in mm.models() {
            assert!(m.universe_size() <= 4);
        }
        assert_eq!(minimal_model_size_bound(&Ucq::empty(0)), 0);
    }

    #[test]
    fn rewrite_of_unsatisfiable_query() {
        let q = UcqQuery::new(Ucq::empty(0));
        let rw = rewrite_to_ucq(&q, &Vocabulary::digraph(), 2).unwrap();
        assert!(rw.minimal_models.is_empty());
        assert!(rw.ucq.is_empty());
    }

    #[test]
    fn validate_rewrite_catches_mismatch() {
        let q = UcqQuery::new(Ucq::new(vec![Cq::canonical_query(&self_loop())]));
        let wrong = Ucq::new(vec![Cq::canonical_query(&directed_path(2))]);
        // A path has an edge but no loop: q false, wrong true.
        let sample = [directed_path(2)];
        assert!(validate_rewrite(&q, &wrong, sample.iter()).is_some());
    }

    use hp_structures::{Structure, Vocabulary};
}
